(* Tests for the observability layer: the metrics registry (get-or-create,
   shape checking, per-cpu sharding), the exporters, the sim-time sampler,
   the Enoki-C self-profiler — and the zero-perturbation contract: a run
   with a registry, profiler and armed sampler attached must produce a
   bit-identical scheduling trace to the same run without them. *)

module R = Metrics.Registry
module H = Stats.Histogram

let check = Alcotest.check

let one_socket = Kernsim.Topology.one_socket

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* ---------- registry semantics ---------- *)

let test_get_or_create () =
  let reg = R.create ~nr_cpus:4 () in
  let a = R.counter reg ~help:"a counter" "x_total" in
  let b = R.counter reg "x_total" in
  R.incr a ();
  R.incr b ~n:2 ();
  check Alcotest.int "handles alias one metric" 3 (R.counter_value a);
  check Alcotest.int "second handle agrees" 3 (R.counter_value b);
  let g = R.gauge reg "g" in
  R.set g 1.5;
  check (Alcotest.float 0.0) "gauge set/read" 1.5 (R.gauge_value (R.gauge reg "g"))

let test_shape_mismatch () =
  let reg = R.create () in
  ignore (R.counter reg "m");
  expect_invalid "counter as gauge" (fun () -> R.gauge reg "m");
  expect_invalid "counter as histogram" (fun () -> R.histogram reg "m");
  ignore (R.histogram reg "h");
  expect_invalid "histogram as counter" (fun () -> R.counter reg "h");
  expect_invalid "probe over counter" (fun () -> R.gauge_probe reg "m" (fun () -> 0.))

let test_sharding () =
  let reg = R.create ~nr_cpus:4 () in
  check Alcotest.int "nr_cpus" 4 (R.nr_cpus reg);
  let c = R.counter reg "sharded_total" in
  for cpu = 0 to 3 do
    R.incr c ~cpu ()
  done;
  (* out-of-range cpus fold onto shard 0 rather than being lost *)
  R.incr c ~cpu:99 ();
  R.incr c ~cpu:(-1) ();
  check Alcotest.int "value sums all shards" 6 (R.counter_value c);
  let h = R.histogram reg "sharded_ns" in
  for i = 1 to 100 do
    R.observe h ~cpu:(i mod 4) (i * 10)
  done;
  R.observe h ~cpu:42 1_000_000;
  let m = R.merged h in
  check Alcotest.int "merged count sums all shards" 101 (H.count m);
  check Alcotest.int "merged keeps min" 10 (H.min m);
  check Alcotest.int "merged keeps max" 1_000_000 (H.max m)

let test_probe_and_iter () =
  let reg = R.create () in
  let c = R.counter reg "a_total" in
  let live = ref 0.0 in
  R.gauge_probe reg "depth" (fun () -> !live);
  ignore (R.histogram reg "lat_ns");
  R.incr c ~n:7 ();
  live := 3.0;
  let seen = ref [] in
  R.iter reg (fun ~name ~help:_ v -> seen := (name, v) :: !seen);
  let seen = List.rev !seen in
  check (Alcotest.list Alcotest.string) "registration order"
    [ "a_total"; "depth"; "lat_ns" ]
    (List.map fst seen);
  (match List.assoc "depth" seen with
  | R.Gauge_v g -> check (Alcotest.float 0.0) "probe runs at read time" 3.0 g
  | _ -> Alcotest.fail "probe should read as a gauge");
  check Alcotest.bool "find_counter hit" true (R.find_counter reg "a_total" <> None);
  check Alcotest.bool "find_counter miss" true (R.find_counter reg "nope" = None);
  check Alcotest.bool "find_histogram wrong shape" true (R.find_histogram reg "a_total" = None)

(* ---------- histogram merge: bucket-exact, percentile-bounded ---------- *)

(* Merging per-cpu shards must be bucket-identical to recording the same
   stream into one histogram, and the merged percentile must stay within
   the log-linear bucket resolution of the exact (sorted-list) percentile:
   exact <= reported <= exact * 1.05 + 1. *)
let merged_percentile_prop =
  QCheck.Test.make ~count:200 ~name:"merged shards match single histogram and bound exact percentiles"
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 300) (int_range 1 5_000_000)))
    (fun (shards, values) ->
      let reg = R.create ~nr_cpus:shards () in
      let h = R.histogram reg "h" in
      List.iteri (fun i v -> R.observe h ~cpu:(i mod shards) v) values;
      let merged = R.merged h in
      let single = H.create () in
      List.iter (H.record single) values;
      if H.to_buckets merged <> H.to_buckets single then
        QCheck.Test.fail_report "merged buckets differ from single-histogram buckets";
      let sorted = List.sort compare values in
      let n = List.length sorted in
      List.for_all
        (fun p ->
          let rank = Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
          let exact = List.nth sorted (rank - 1) in
          let got = H.percentile merged p in
          if got <> H.percentile single p then
            QCheck.Test.fail_reportf "p%.0f: merged %d <> single %d" p got
              (H.percentile single p);
          if not (exact <= got && float_of_int got <= (float_of_int exact *. 1.05) +. 1.) then
            QCheck.Test.fail_reportf "p%.0f: reported %d outside [%d, %d*1.05+1]" p got exact
              exact;
          true)
        [ 50.0; 95.0; 99.0; 99.9 ])

let test_to_buckets () =
  let h = H.create () in
  List.iter (H.record h) [ 1; 1; 3; 500; 500; 500; 123_456 ];
  let buckets = H.to_buckets h in
  check Alcotest.int "counts sum to total" (H.count h)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
  let bounds = List.map fst buckets in
  check Alcotest.bool "ascending bounds" true (List.sort compare bounds = bounds);
  check Alcotest.bool "all counts positive" true (List.for_all (fun (_, c) -> c > 0) buckets);
  check Alcotest.bool "max within last bound" true
    (match List.rev bounds with last :: _ -> last >= H.max h | [] -> false)

(* ---------- exporters ---------- *)

let sample_registry () =
  let reg = R.create ~nr_cpus:2 () in
  let c = R.counter reg ~help:"total frobs" "frobs_total" in
  R.incr c ~n:5 ();
  let g = R.gauge reg ~help:"queue depth" "depth" in
  R.set g 2.0;
  let h = R.histogram reg ~help:"latency" "lat_ns" in
  List.iter (fun v -> R.observe h v) [ 10; 100; 1000; 1000 ];
  reg

let test_prometheus () =
  let reg = sample_registry () in
  let out = Metrics.Export.prometheus reg in
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "HELP line" true (has "# HELP frobs_total total frobs");
  check Alcotest.bool "counter TYPE" true (has "# TYPE frobs_total counter");
  check Alcotest.bool "counter value" true (has "frobs_total 5");
  check Alcotest.bool "gauge TYPE" true (has "# TYPE depth gauge");
  check Alcotest.bool "histogram TYPE" true (has "# TYPE lat_ns histogram");
  check Alcotest.bool "cumulative buckets" true (has "lat_ns_bucket{le=");
  check Alcotest.bool "+Inf bucket" true (has "le=\"+Inf\"} 4");
  check Alcotest.bool "count series" true (has "lat_ns_count 4")

let test_json_summary_roundtrip () =
  let reg = sample_registry () in
  let j = Metrics.Export.json_summary ~extra:[ ("suite", Metrics.Json.String "t") ] reg in
  (* the exporter's output must survive our own parser *)
  match Metrics.Json.parse (Metrics.Json.to_string ~pretty:true j) with
  | Error e -> Alcotest.failf "summary does not reparse: %s" e
  | Ok j ->
    let member k v = Option.get (Metrics.Json.member k v) in
    check Alcotest.string "extra field" "t" (Option.get (Metrics.Json.to_str (member "suite" j)));
    let frobs = member "frobs_total" (member "counters" j) in
    check Alcotest.int "counter value" 5 (Option.get (Metrics.Json.to_int frobs));
    check (Alcotest.float 0.0) "gauge value" 2.0
      (Option.get (Metrics.Json.to_float (member "depth" (member "gauges" j))));
    let lat = member "lat_ns" (member "histograms" j) in
    check Alcotest.int "histogram count" 4
      (Option.get (Metrics.Json.to_int (member "count" lat)));
    check Alcotest.bool "p99 present" true (Metrics.Json.member "p99" lat <> None)

let test_json_parse_errors () =
  (match Metrics.Json.parse "{\"a\": [1, 2.5, true, null, \"s\"]}" with
  | Ok (Metrics.Json.Obj [ ("a", Metrics.Json.List l) ]) ->
    check Alcotest.int "list arity" 5 (List.length l)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  check Alcotest.bool "trailing garbage rejected" true
    (match Metrics.Json.parse "{} x" with Error _ -> true | Ok _ -> false);
  check Alcotest.bool "truncated rejected" true
    (match Metrics.Json.parse "[1," with Error _ -> true | Ok _ -> false)

let test_format_of_path () =
  let fmt = function
    | Metrics.Export.Prometheus -> "prom"
    | Metrics.Export.Csv -> "csv"
    | Metrics.Export.Json_summary -> "json"
  in
  check Alcotest.string "prom" "prom" (fmt (Metrics.Export.format_of_path "m.prom"));
  check Alcotest.string "csv" "csv" (fmt (Metrics.Export.format_of_path "runs/m.csv"));
  check Alcotest.string "json default" "json" (fmt (Metrics.Export.format_of_path "m.json"));
  check Alcotest.string "unknown is json" "json" (fmt (Metrics.Export.format_of_path "metrics"))

(* ---------- sampler ---------- *)

(* Drive the sampler with a toy agenda standing in for the machine's timer
   wheel: ticks fire every [interval], hooks observe the tick timestamp,
   and snapshots capture counters as they grow. *)
let test_sampler_ticks () =
  let reg = R.create ~nr_cpus:1 () in
  let c = R.counter reg "work_total" in
  let smp = Metrics.Sampler.create ~interval:100 reg in
  check Alcotest.int "interval" 100 (Metrics.Sampler.interval smp);
  let hook_ts = ref [] in
  Metrics.Sampler.on_flush smp (fun ~ts -> hook_ts := ts :: !hook_ts);
  let now = ref 0 in
  let agenda = ref [] in
  let defer ~delay f = agenda := (!now + delay, f) :: !agenda in
  Metrics.Sampler.start smp ~now:(fun () -> !now) ~defer;
  let rec loop () =
    match List.sort (fun (a, _) (b, _) -> compare a b) !agenda with
    | (t, f) :: rest when t <= 500 ->
      agenda := rest;
      now := t;
      R.incr c ();
      f ();
      loop ()
    | _ -> ()
  in
  loop ();
  check Alcotest.int "five ticks in 500ns" 5 (Metrics.Sampler.ticks smp);
  check (Alcotest.list Alcotest.int) "hooks saw every tick ts" [ 100; 200; 300; 400; 500 ]
    (List.rev !hook_ts);
  let samples = Metrics.Sampler.samples smp in
  check (Alcotest.list Alcotest.int) "samples oldest first" [ 100; 200; 300; 400; 500 ]
    (List.map (fun (s : Metrics.Sampler.sample) -> s.ts) samples);
  (* counters are snapshotted live: the k-th tick saw k increments *)
  List.iteri
    (fun i (s : Metrics.Sampler.sample) ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "tick %d counter snapshot" (i + 1))
        (float_of_int (i + 1))
        (List.assoc "work_total" s.values))
    samples;
  (* the csv exporter renders one row per tick over these snapshots *)
  let csv = Metrics.Export.csv smp in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "csv header + one row per tick" 6 (List.length lines);
  (match lines with
  | header :: _ ->
    check Alcotest.bool "ts column first" true
      (String.length header >= 5 && String.sub header 0 5 = "ts_ns")
  | [] -> Alcotest.fail "empty csv")

(* ---------- label parity across exporters ---------- *)

(* Registry.split must invert Registry.labeled for any label set, including
   values that embed the escape-worthy characters. *)
let prop_labeled_split_roundtrip labels =
  (* keys must be identifier-ish (labeled does not escape keys); values are
     arbitrary *)
  let labels =
    List.mapi (fun i (k, v) -> (Printf.sprintf "k%d_%s" i (String.map (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else 'x') k), v))
      labels
  in
  let name = R.labeled "fleet_latency_ns" labels in
  let base, parsed = R.split name in
  if base <> "fleet_latency_ns" then
    QCheck.Test.fail_reportf "base %S from %S" base name
  else if parsed <> labels then
    QCheck.Test.fail_reportf "labels did not roundtrip through %S" name
  else true

let test_split_escapes () =
  let labels = [ ("tenant", "we\"b,1"); ("host", "a\\b\nc") ] in
  let name = R.labeled "m" labels in
  check
    (Alcotest.pair Alcotest.string (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)))
    "escaped values roundtrip" ("m", labels) (R.split name);
  check
    (Alcotest.pair Alcotest.string (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)))
    "unlabeled passes through" ("plain", []) (R.split "plain")

(* csv_split must invert csv_cell for any cell list — this is what keeps a
   labelled series name (embedded commas, quotes) one CSV column. *)
let prop_csv_cell_roundtrip cells =
  (* an empty line is one empty cell in CSV, so [] cannot roundtrip *)
  let cells = if cells = [] then [ "" ] else cells in
  let line = String.concat "," (List.map Metrics.Export.csv_cell cells) in
  let back = Metrics.Export.csv_split line in
  if back <> cells then
    QCheck.Test.fail_reportf "cells did not roundtrip through %S" line
  else true

(* End to end: a registry with labelled series, sampled and exported to
   CSV, must come back with every labelled column intact — header cells
   parse with csv_split, then split back into (base, labels). *)
let test_labeled_csv_roundtrip () =
  let reg = R.create ~nr_cpus:1 () in
  let labels = [ ("tenant", "we\"b"); ("sched", "wfq,2") ] in
  let c = R.counter reg (R.labeled "fleet_completed_total" labels) in
  R.incr c ~n:3 ();
  let smp = Metrics.Sampler.create ~interval:10 reg in
  Metrics.Sampler.flush smp ~ts:10;
  let csv = Metrics.Export.csv smp in
  match String.split_on_char '\n' (String.trim csv) with
  | header :: _ :: _ ->
    (match Metrics.Export.csv_split header with
    | [ ts; col ] ->
      check Alcotest.string "ts column" "ts_ns" ts;
      check
        (Alcotest.pair Alcotest.string
           (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)))
        "labelled column survives csv" ("fleet_completed_total", labels) (R.split col)
    | cells -> Alcotest.failf "expected 2 header cells, got %d" (List.length cells))
  | _ -> Alcotest.fail "expected header + row"

(* And the JSON summary: labelled series names are object keys; they must
   survive our own parser byte for byte. *)
let test_labeled_json_roundtrip () =
  let reg = R.create ~nr_cpus:1 () in
  let name = R.labeled "fleet_completed_total" [ ("tenant", "we\"b") ] in
  R.incr (R.counter reg name) ~n:7 ();
  let j = Metrics.Export.json_summary reg in
  match Metrics.Json.parse (Metrics.Json.to_string ~pretty:true j) with
  | Error e -> Alcotest.failf "summary does not reparse: %s" e
  | Ok j ->
    let counters = Option.get (Metrics.Json.member "counters" j) in
    (match Option.bind (Metrics.Json.member name counters) Metrics.Json.to_int with
    | Some v -> check Alcotest.int "labelled key intact" 7 v
    | None -> Alcotest.failf "labelled key %S lost in json round-trip" name)

(* ---------- profiler ---------- *)

let test_profile_rows () =
  let p = Profile.create () in
  Profile.record p ~sched:"wfq" ~call:"pick_next_task" ~sim_ns:100 ~wall_ns:5.0;
  Profile.record p ~sched:"wfq" ~call:"pick_next_task" ~sim_ns:50 ~wall_ns:3.0;
  Profile.record p ~sched:"wfq" ~call:"task_wakeup" ~sim_ns:10 ~wall_ns:1.0;
  check Alcotest.int "crossings" 3 (Profile.crossings p);
  let rows = Profile.rows p in
  check Alcotest.int "one row per (sched, call)" 2 (List.length rows);
  let r = List.find (fun (r : Profile.row) -> r.call = "pick_next_task") rows in
  check Alcotest.int "aggregated count" 2 r.Profile.count;
  check Alcotest.int "aggregated sim ns" 150 r.Profile.sim_ns;
  check (Alcotest.float 0.001) "aggregated wall ns" 8.0 r.Profile.wall_ns;
  (match rows with
  | r0 :: _ -> check Alcotest.string "busiest callback first" "pick_next_task" r0.Profile.call
  | [] -> ());
  List.iter
    (fun row -> check Alcotest.int "table arity" (List.length Profile.table_header) (List.length row))
    (Profile.table_rows p);
  Profile.clear p;
  check Alcotest.int "clear resets" 0 (Profile.crossings p)

(* ---------- end to end: wiring and zero perturbation ---------- *)

let run_pipe ~metered () =
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let registry = if metered then Some (R.create ~nr_cpus ()) else None in
  let profile = if metered then Some (Profile.create ()) else None in
  let b =
    Workloads.Setup.build ~tracer ?registry ?profile ~topology:one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  let m = b.Workloads.Setup.machine in
  let sampler =
    Option.map
      (fun reg ->
        let smp = Metrics.Sampler.create ~interval:50_000 reg in
        Metrics.Sampler.on_flush smp (fun ~ts ->
            Trace.Tracer.emit tracer ~ts ~cpu:0
              (Trace.Event.Metric_flush { tick = Metrics.Sampler.ticks smp }));
        Metrics.Sampler.start smp
          ~now:(fun () -> Kernsim.Machine.now m)
          ~defer:(fun ~delay f -> Kernsim.Machine.at m ~delay f);
        smp)
      registry
  in
  ignore (Workloads.Pipe_bench.run b ~messages:2_000 ());
  (b, tracer, sampler, profile)

let is_flush (e : Trace.Event.t) =
  match e.Trace.Event.kind with Trace.Event.Metric_flush _ -> true | _ -> false

let test_zero_perturbation () =
  let b0, tr0, _, _ = run_pipe ~metered:false () in
  let b1, tr1, sampler, profile = run_pipe ~metered:true () in
  (* the metered run really measured things... *)
  let smp = Option.get sampler in
  check Alcotest.bool "sampler ticked" true (Metrics.Sampler.ticks smp > 0);
  check Alcotest.bool "profiler recorded crossings" true
    (Profile.crossings (Option.get profile) > 0);
  let reg = Option.get b1.Workloads.Setup.registry in
  let counter name =
    match R.find_counter reg name with Some c -> R.counter_value c | None -> -1
  in
  check Alcotest.bool "machine recorded schedules" true (counter "sched_schedules_total" > 0);
  check Alcotest.bool "boundary recorded calls" true (counter "enoki_calls_total" > 0);
  (match R.find_histogram reg "workload_request_latency_ns" with
  | Some h -> check Alcotest.bool "workload recorded latencies" true (H.count (R.merged h) > 0)
  | None -> Alcotest.fail "workload latency histogram missing");
  (* ...and yet scheduling was bit-identical: same final sim time, same
     event stream once the sampler's own flush markers are filtered out. *)
  check Alcotest.int "same final sim time"
    (Kernsim.Machine.now b0.Workloads.Setup.machine)
    (Kernsim.Machine.now b1.Workloads.Setup.machine);
  let evs0 = List.map Trace.Event.to_string (Trace.Tracer.events tr0) in
  let evs1 =
    List.map Trace.Event.to_string
      (List.filter (fun e -> not (is_flush e)) (Trace.Tracer.events tr1))
  in
  check Alcotest.bool "trace is non-trivial" true (List.length evs0 > 1_000);
  check Alcotest.int "same event count" (List.length evs0) (List.length evs1);
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.failf "traces diverge at event %d:\n  bare:    %s\n  metered: %s" i a b)
    (List.combine evs0 evs1)

let test_flush_events_present () =
  let _, tr, sampler, _ = run_pipe ~metered:true () in
  let flushes = List.filter is_flush (Trace.Tracer.events tr) in
  check Alcotest.bool "metric_flush events in stream" true (List.length flushes > 0);
  check Alcotest.int "one event per tick"
    (Metrics.Sampler.ticks (Option.get sampler))
    (List.length flushes)

let test_sanitizer_ignores_flush () =
  (* an armed sampler + sanitizer on the same tracer: flush markers must
     not trip any scheduling invariant *)
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let san = Trace.Sanitizer.create ~nr_cpus () in
  Trace.Sanitizer.attach san tracer;
  let registry = R.create ~nr_cpus () in
  let b =
    Workloads.Setup.build ~tracer ~registry ~topology:one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  let m = b.Workloads.Setup.machine in
  let smp = Metrics.Sampler.create ~interval:50_000 registry in
  Metrics.Sampler.on_flush smp (fun ~ts ->
      Trace.Tracer.emit tracer ~ts ~cpu:0
        (Trace.Event.Metric_flush { tick = Metrics.Sampler.ticks smp }));
  Metrics.Sampler.start smp
    ~now:(fun () -> Kernsim.Machine.now m)
    ~defer:(fun ~delay f -> Kernsim.Machine.at m ~delay f);
  ignore (Workloads.Pipe_bench.run b ~messages:1_000 ());
  check Alcotest.bool "sampler ticked" true (Metrics.Sampler.ticks smp > 0);
  check Alcotest.int "no sanitizer violations" 0
    (List.length (Trace.Sanitizer.violations san))

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_get_or_create;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "per-cpu sharding" `Quick test_sharding;
          Alcotest.test_case "probes and iteration" `Quick test_probe_and_iter;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest merged_percentile_prop;
          Alcotest.test_case "to_buckets" `Quick test_to_buckets;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus;
          Alcotest.test_case "json summary roundtrip" `Quick test_json_summary_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parse_errors;
          Alcotest.test_case "format from path" `Quick test_format_of_path;
        ] );
      ("sampler", [ Alcotest.test_case "periodic ticks" `Quick test_sampler_ticks ]);
      ( "labels",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:200 ~name:"split inverts labeled"
               QCheck.(small_list (pair string string))
               prop_labeled_split_roundtrip);
          Alcotest.test_case "split handles escapes" `Quick test_split_escapes;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:200 ~name:"csv_split inverts csv_cell"
               QCheck.(small_list string)
               prop_csv_cell_roundtrip);
          Alcotest.test_case "labelled series survive csv" `Quick test_labeled_csv_roundtrip;
          Alcotest.test_case "labelled series survive json" `Quick test_labeled_json_roundtrip;
        ] );
      ("profile", [ Alcotest.test_case "row aggregation" `Quick test_profile_rows ]);
      ( "zero-perturbation",
        [
          Alcotest.test_case "bit-identical trace" `Quick test_zero_perturbation;
          Alcotest.test_case "flush events emitted" `Quick test_flush_events_present;
          Alcotest.test_case "sanitizer ignores flush" `Quick test_sanitizer_ignores_flush;
        ] );
    ]
