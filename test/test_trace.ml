(* Tests for the schedtrace subsystem: tracer transport, derived spans,
   exporters, and the online invariant sanitizer — including deliberately
   broken schedulers proving each invariant class fires. *)

module M = Kernsim.Machine
module T = Kernsim.Task
module Sched = Enoki.Schedulable

let check = Alcotest.check

let one_socket = Kernsim.Topology.one_socket

(* ---------- a minimal JSON syntax validator ----------

   Enough to assert the Chrome export is well-formed JSON without taking a
   dependency: validates the full value grammar and fails on trailing
   garbage. *)
module Json_check = struct
  exception Bad of int

  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance () else raise (Bad !pos)
    in
    let literal lit =
      String.iter (fun c -> expect c) lit
    in
    let string_lit () =
      expect '"';
      let rec body () =
        match peek () with
        | None -> raise (Bad !pos)
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> raise (Bad !pos)
            done
          | _ -> raise (Bad !pos));
          body ()
        | Some _ ->
          advance ();
          body ()
      in
      body ()
    in
    let number () =
      let digits () =
        let any = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
            any := true;
            advance ();
            go ()
          | _ -> ()
        in
        go ();
        if not !any then raise (Bad !pos)
      in
      if peek () = Some '-' then advance ();
      digits ();
      if peek () = Some '.' then begin
        advance ();
        digits ()
      end;
      match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> raise (Bad !pos));
      skip_ws ()
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> raise (Bad !pos)
        in
        members ()
      end
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          value ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> raise (Bad !pos)
        in
        elements ()
      end
    in
    value ();
    if !pos <> n then raise (Bad !pos)
end

(* ---------- tracer transport ---------- *)

let test_tracer_counts_and_drops () =
  let tr = Trace.Tracer.create ~capacity:4 ~nr_cpus:2 () in
  let seen = ref 0 in
  Trace.Tracer.subscribe tr (fun _ -> incr seen);
  for i = 1 to 6 do
    Trace.Tracer.emit tr ~ts:(i * 10) ~cpu:0 Trace.Event.Tick
  done;
  Trace.Tracer.emit tr ~ts:5 ~cpu:1 (Trace.Event.Dispatch { pid = 7 });
  check Alcotest.int "emitted counts every offer" 7 (Trace.Tracer.emitted tr);
  check Alcotest.int "cpu 0 overran by 2" 2 (Trace.Tracer.dropped_of_cpu tr 0);
  check Alcotest.int "total drops" 2 (Trace.Tracer.dropped tr);
  check Alcotest.int "subscriber saw every event pre-drop" 7 !seen;
  check Alcotest.int "buffered = kept events" 5 (Trace.Tracer.buffered tr);
  let events = Trace.Tracer.events tr in
  check Alcotest.int "drained all kept events" 5 (List.length events);
  check Alcotest.bool "timestamp sorted" true
    (List.for_all2
       (fun (a : Trace.Event.t) (b : Trace.Event.t) -> a.ts <= b.ts)
       (List.filteri (fun i _ -> i < 4) events)
       (List.tl events));
  check Alcotest.int "drain is destructive" 0 (List.length (Trace.Tracer.events tr))

let test_tracer_folds_out_of_range_cpu () =
  let tr = Trace.Tracer.create ~nr_cpus:2 () in
  Trace.Tracer.emit tr ~ts:1 ~cpu:99 Trace.Event.Tick;
  Trace.Tracer.emit tr ~ts:2 ~cpu:(-1) Trace.Event.Idle;
  match Trace.Tracer.events tr with
  | [ a; b ] ->
    check Alcotest.int "folded onto cpu 0" 0 a.Trace.Event.cpu;
    check Alcotest.int "negative folded too" 0 b.Trace.Event.cpu
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* ---------- derived spans ---------- *)

let ev ts cpu kind = { Trace.Event.ts; cpu; kind }

let test_spans_from_synthetic_stream () =
  let events =
    [
      ev 10 0 (Trace.Event.Wakeup { pid = 5; waker_cpu = 0; affinity = None });
      ev 30 1 (Trace.Event.Dispatch { pid = 5 });
      ev 50 1 (Trace.Event.Preempt { pid = 5 });
      ev 80 1 (Trace.Event.Dispatch { pid = 5 });
      ev 90 1 (Trace.Event.Block { pid = 5 });
    ]
  in
  let spans = Trace.Spans.of_events events in
  let wd = List.filter (fun (s : Trace.Spans.t) -> s.kind = Trace.Spans.Wakeup_to_dispatch) spans in
  let pr = List.filter (fun (s : Trace.Spans.t) -> s.kind = Trace.Spans.Preempt_to_resched) spans in
  (match wd with
  | [ s ] ->
    check Alcotest.int "wakeup->dispatch duration" 20 (Trace.Spans.duration s);
    check Alcotest.int "span pid" 5 s.pid
  | l -> Alcotest.failf "expected 1 wakeup span, got %d" (List.length l));
  match pr with
  | [ s ] -> check Alcotest.int "preempt->resched duration" 30 (Trace.Spans.duration s)
  | l -> Alcotest.failf "expected 1 preempt span, got %d" (List.length l)

(* A migration span covers the full off-cpu displacement, first Migrate to
   the next Dispatch, even when the task hops through several cpus. *)
let test_spans_migration () =
  let events =
    [
      ev 10 0 (Trace.Event.Migrate { pid = 5; from_cpu = 0; to_cpu = 1 });
      ev 25 1 (Trace.Event.Migrate { pid = 5; from_cpu = 1; to_cpu = 2 });
      ev 40 2 (Trace.Event.Dispatch { pid = 5 });
      (* a blocked task's pending migration must not leak a span *)
      ev 50 0 (Trace.Event.Migrate { pid = 7; from_cpu = 0; to_cpu = 1 });
      ev 60 0 (Trace.Event.Block { pid = 7 });
      ev 70 1 (Trace.Event.Dispatch { pid = 7 });
    ]
  in
  let mg =
    List.filter
      (fun (s : Trace.Spans.t) -> s.kind = Trace.Spans.Migration)
      (Trace.Spans.of_events events)
  in
  match mg with
  | [ s ] ->
    check Alcotest.int "span pid" 5 s.pid;
    check Alcotest.int "chained hops measured from the first" 30 (Trace.Spans.duration s);
    check Alcotest.int "closed on the dispatching cpu" 2 s.cpu
  | l -> Alcotest.failf "expected 1 migration span, got %d" (List.length l)

(* Ingress-wait spans are keyed by request-id, not pid, and must survive a
   fleet-orchestration event stream interleaved between enqueue and take. *)
let test_spans_ingress_wait_interleaved () =
  let events =
    [
      ev 100 0 (Trace.Event.Req_enqueue { req = 41; tenant = 0 });
      ev 105 0 (Trace.Event.Fleet_op { host = 1; op = "drain" });
      ev 110 0 (Trace.Event.Req_enqueue { req = 42; tenant = 1 });
      ev 120 1 (Trace.Event.Wakeup { pid = 9; waker_cpu = 0; affinity = None });
      ev 130 1 (Trace.Event.Dispatch { pid = 9 });
      (* later requests may be taken first (work stealing off the queue) *)
      ev 140 1 (Trace.Event.Req_take { req = 42; pid = 9 });
      ev 150 0 (Trace.Event.Fleet_op { host = 1; op = "admit" });
      ev 160 2 (Trace.Event.Req_take { req = 41; pid = 8 });
      ev 170 2 (Trace.Event.Req_done { req = 41; pid = 8 });
      (* a take with no enqueue (pre-trace backlog) must be ignored *)
      ev 180 2 (Trace.Event.Req_take { req = 99; pid = 8 });
    ]
  in
  let ing =
    List.filter
      (fun (s : Trace.Spans.t) -> s.kind = Trace.Spans.Ingress_wait)
      (Trace.Spans.of_events events)
  in
  match List.sort (fun (a : Trace.Spans.t) b -> compare a.start_ts b.start_ts) ing with
  | [ a; b ] ->
    check Alcotest.int "req 41 waited enqueue->take" 60 (Trace.Spans.duration a);
    check Alcotest.int "req 41 span pid = taker" 8 a.pid;
    check Alcotest.int "req 42 waited enqueue->take" 30 (Trace.Spans.duration b);
    check Alcotest.int "req 42 span pid = taker" 9 b.pid
  | l -> Alcotest.failf "expected 2 ingress spans, got %d" (List.length l)

(* ---------- exporters, on a real run ---------- *)

let traced_pipe_run kind =
  let tracer = Trace.Tracer.create ~nr_cpus:(Kernsim.Topology.nr_cpus one_socket) () in
  let b = Workloads.Setup.build ~tracer ~topology:one_socket kind in
  ignore (Workloads.Pipe_bench.run b ~messages:2_000 ());
  Trace.Tracer.events tracer

let test_chrome_export_is_valid_json () =
  let events = traced_pipe_run (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  check Alcotest.bool "events captured" true (List.length events > 100);
  let json = Trace.Export.chrome_json events in
  (try Json_check.validate json
   with Json_check.Bad pos -> Alcotest.failf "invalid JSON at byte %d" pos);
  (* sched_switch events must appear for at least two distinct cpus *)
  let switch_cpus =
    List.filter_map
      (fun (e : Trace.Event.t) ->
        match e.kind with Trace.Event.Sched_switch _ -> Some e.cpu | _ -> None)
      events
    |> List.sort_uniq Int.compare
  in
  check Alcotest.bool "sched_switch on >= 2 cpus" true (List.length switch_cpus >= 2);
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has traceEvents" true (contains "\"traceEvents\"");
  check Alcotest.bool "has sched_switch instants" true (contains "\"sched_switch\"");
  check Alcotest.bool "names the machine process" true (contains "\"machine\"")

let test_ftrace_export_format () =
  let events = traced_pipe_run (Workloads.Setup.Enoki_sched (module Schedulers.Fifo_sched)) in
  let text = Trace.Export.ftrace events in
  let lines = String.split_on_char '\n' text in
  check Alcotest.bool "has header" true
    (match lines with first :: _ -> first = "# tracer: schedtrace" | [] -> false);
  let body = List.filter (fun l -> l <> "" && l.[0] <> '#') lines in
  check Alcotest.int "one line per event (plus header)" (List.length events) (List.length body);
  check Alcotest.bool "lines carry the enoki- prefix" true
    (List.for_all
       (fun l ->
         let rec find i =
           i + 6 <= String.length l && (String.sub l i 6 = "enoki-" || find (i + 1))
         in
         find 0)
       body)

let test_format_of_string_roundtrip () =
  check Alcotest.bool "chrome" true (Trace.Export.format_of_string "chrome" = Some Trace.Export.Chrome);
  check Alcotest.bool "ftrace" true (Trace.Export.format_of_string "ftrace" = Some Trace.Export.Ftrace);
  check Alcotest.bool "unknown rejected" true (Trace.Export.format_of_string "perf" = None)

(* ---------- sanitizer: clean runs for every in-tree scheduler ---------- *)

let sanitized_run ?(config = Trace.Sanitizer.default_config) kind workload =
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let s = Trace.Sanitizer.create ~config ~nr_cpus () in
  Trace.Sanitizer.attach s tracer;
  let b = Workloads.Setup.build ~tracer ~topology:one_socket kind in
  workload b;
  (s, b)

let pipe b = ignore (Workloads.Pipe_bench.run b ~messages:2_000 ())

let assert_clean name (s, _) =
  check Alcotest.bool "events were checked" true (Trace.Sanitizer.events_seen s > 0);
  if not (Trace.Sanitizer.ok s) then
    Alcotest.failf "%s: %s" name (Trace.Sanitizer.report_string s)

let clean_case name kind =
  ( name ^ " sanitizes clean",
    `Quick,
    fun () -> assert_clean name (sanitized_run kind pipe) )

let test_arachne_sanitizes_clean () =
  (* a core arbiter is neither work-conserving nor starvation-free for
     parked activations (the arbiter grants only the requested cores), so
     those two invariant classes are off; everything else must hold on its
     natural workload *)
  let config =
    { Trace.Sanitizer.default_config with
      Trace.Sanitizer.disabled = [ Trace.Sanitizer.Work_conservation; Starvation ]
    }
  in
  let memcached b =
    ignore
      (Workloads.Memcached.run b
         (Workloads.Memcached.default_params ~mode:Workloads.Memcached.Arachne_enoki
            ~load_kreqs:100. ()))
  in
  assert_clean "arachne"
    (sanitized_run ~config (Workloads.Setup.Enoki_sched (module Schedulers.Arachne)) memcached)

(* ---------- broken schedulers: each invariant class must fire ----------

   One delegating scheduler wrapping FIFO, with the sabotage selected by a
   global before the machine is built (schedulers are constructed at
   factory time, so the ref is read per-build). *)

type sabotage = Starve | Pin_cpu0 | Forge_token

let sabotage_mode = ref Starve

module Broken_sched = struct
  module F = Schedulers.Fifo_sched

  type t = { inner : F.t; mode : sabotage; mutable stash : Sched.t option }

  let name = "broken"

  let create ctx = { inner = F.create ctx; mode = !sabotage_mode; stash = None }

  let get_policy t = F.get_policy t.inner

  let pick_next_task t ~cpu ~curr ~curr_runtime =
    match t.mode with
    | Starve -> None (* never dispatch anything: starves every runnable task *)
    | Pin_cpu0 ->
      if cpu = 0 then F.pick_next_task t.inner ~cpu ~curr ~curr_runtime else None
    | Forge_token -> (
      match F.pick_next_task t.inner ~cpu ~curr ~curr_runtime with
      | Some tok when t.stash = None && Sched.cpu tok = cpu ->
        t.stash <- Some tok;
        (* forge a token claiming another core: Enoki-C must reject it *)
        Some (Sched.Private.create ~pid:(Sched.pid tok) ~cpu:(cpu + 1) ~gen:(Sched.generation tok))
      | r -> r)

  let pnt_err t ~cpu ~pid ~err ~sched =
    ignore (err, sched);
    match t.stash with
    | Some tok ->
      t.stash <- None;
      F.pnt_err t.inner ~cpu ~pid ~err:"recovered" ~sched:(Some tok)
    | None -> ()

  let select_task_rq t ~pid ~waker_cpu ~allowed =
    match t.mode with
    | Pin_cpu0 -> 0 (* wedge every task onto one run-queue *)
    | Starve | Forge_token -> F.select_task_rq t.inner ~pid ~waker_cpu ~allowed

  let balance t ~cpu =
    match t.mode with Pin_cpu0 | Starve -> None | Forge_token -> F.balance t.inner ~cpu

  let task_dead t = F.task_dead t.inner

  let task_blocked t = F.task_blocked t.inner

  let task_wakeup t = F.task_wakeup t.inner

  let task_new t = F.task_new t.inner

  let task_preempt t = F.task_preempt t.inner

  let task_yield t = F.task_yield t.inner

  let task_departed t = F.task_departed t.inner

  let task_affinity_changed t = F.task_affinity_changed t.inner

  let task_prio_changed t = F.task_prio_changed t.inner

  let task_tick t = F.task_tick t.inner

  let migrate_task_rq t = F.migrate_task_rq t.inner

  let balance_err t = F.balance_err t.inner

  let reregister_prepare _ = None

  let reregister_init ctx _ = create ctx

  let parse_hint t = F.parse_hint t.inner
end

let hog ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let broken_run mode ~hogs ~for_ =
  sabotage_mode := mode;
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let s = Trace.Sanitizer.create ~nr_cpus () in
  Trace.Sanitizer.attach s tracer;
  let b =
    Workloads.Setup.build ~tracer ~topology:one_socket
      (Workloads.Setup.Enoki_sched (module Broken_sched))
  in
  List.iter
    (fun i ->
      ignore
        (M.spawn b.machine
           { (T.default_spec ~name:(Printf.sprintf "h%d" i)
                (hog ~chunk:(Kernsim.Time.ms 1) ~steps:2_000))
             with
             T.policy = b.policy }))
    (List.init hogs Fun.id);
  M.run_for b.machine for_;
  s

let test_sanitizer_catches_starvation () =
  let s = broken_run Starve ~hogs:2 ~for_:(Kernsim.Time.ms 300) in
  let vs = Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Starvation in
  check Alcotest.bool "starvation reported" true (vs <> []);
  check Alcotest.bool "violations carry trailing context" true
    (List.for_all (fun (v : Trace.Sanitizer.violation) -> v.window <> []) vs)

let test_sanitizer_catches_work_conservation () =
  let s = broken_run Pin_cpu0 ~hogs:4 ~for_:(Kernsim.Time.ms 100) in
  check Alcotest.bool "work conservation violated" true
    (Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Work_conservation <> [])

let test_sanitizer_catches_token_discipline () =
  let s = broken_run Forge_token ~hogs:2 ~for_:(Kernsim.Time.ms 50) in
  let vs = Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Token_discipline in
  check Alcotest.bool "forged token surfaced as pnt_err violation" true (vs <> [])

(* double-run and lock imbalance cannot be produced through the machine
   (it validates picks and the Lock module brackets every critical
   section), so the checks are proven on synthetic event feeds *)

let test_sanitizer_catches_double_run () =
  let s = Trace.Sanitizer.create ~nr_cpus:4 () in
  Trace.Sanitizer.feed s (ev 10 0 (Trace.Event.Dispatch { pid = 3 }));
  Trace.Sanitizer.feed s (ev 20 1 (Trace.Event.Dispatch { pid = 3 }));
  check Alcotest.int "double run detected" 1
    (List.length (Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Double_run));
  (* same pid redispatched on the same cpu is not a double-run *)
  let s2 = Trace.Sanitizer.create ~nr_cpus:4 () in
  Trace.Sanitizer.feed s2 (ev 10 0 (Trace.Event.Dispatch { pid = 3 }));
  Trace.Sanitizer.feed s2 (ev 20 0 (Trace.Event.Dispatch { pid = 3 }));
  check Alcotest.bool "same-cpu redispatch ok" true (Trace.Sanitizer.ok s2)

let test_sanitizer_catches_lock_imbalance () =
  let s = Trace.Sanitizer.create ~nr_cpus:2 () in
  Trace.Sanitizer.feed s (ev 10 0 (Trace.Event.Lock_acquire { lock_id = 1 }));
  Trace.Sanitizer.feed s (ev 20 0 (Trace.Event.Lock_release { lock_id = 2 }));
  Trace.Sanitizer.feed s (ev 30 1 (Trace.Event.Lock_release { lock_id = 1 }));
  check Alcotest.int "out-of-order and never-acquired releases flagged" 2
    (List.length (Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Lock_imbalance));
  (* balanced LIFO nesting is clean *)
  let s2 = Trace.Sanitizer.create ~nr_cpus:2 () in
  List.iter (Trace.Sanitizer.feed s2)
    [
      ev 1 0 (Trace.Event.Lock_acquire { lock_id = 1 });
      ev 2 0 (Trace.Event.Lock_acquire { lock_id = 2 });
      ev 3 0 (Trace.Event.Lock_release { lock_id = 2 });
      ev 4 0 (Trace.Event.Lock_release { lock_id = 1 });
    ];
  check Alcotest.bool "balanced nesting clean" true (Trace.Sanitizer.ok s2)

let test_disabled_silences_only_that_kind () =
  let config =
    { Trace.Sanitizer.default_config with
      Trace.Sanitizer.disabled = [ Trace.Sanitizer.Double_run ]
    }
  in
  let s = Trace.Sanitizer.create ~config ~nr_cpus:4 () in
  Trace.Sanitizer.feed s (ev 10 0 (Trace.Event.Dispatch { pid = 3 }));
  Trace.Sanitizer.feed s (ev 20 1 (Trace.Event.Dispatch { pid = 3 }));
  Trace.Sanitizer.feed s (ev 30 0 (Trace.Event.Lock_release { lock_id = 9 }));
  check Alcotest.bool "disabled kind silenced" true
    (Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Double_run = []);
  check Alcotest.bool "other kinds still fire" true
    (Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Lock_imbalance <> [])

(* ---------- lock events through the real tap ---------- *)

let test_lock_events_traced_and_balanced () =
  let (s, b) =
    sanitized_run (Workloads.Setup.Enoki_sched (module Schedulers.Fifo_sched)) pipe
  in
  ignore b;
  assert_clean "fifo lock pairing" (s, b);
  check Alcotest.bool "lock events observed" true (Trace.Sanitizer.events_seen s > 0)

let () =
  Alcotest.run "trace"
    [
      ( "tracer",
        [
          ("counts, drops, subscribers", `Quick, test_tracer_counts_and_drops);
          ("out-of-range cpu folded", `Quick, test_tracer_folds_out_of_range_cpu);
        ] );
      ( "spans",
        [
          ("synthetic stream", `Quick, test_spans_from_synthetic_stream);
          ("migration span covers chained hops", `Quick, test_spans_migration);
          ( "ingress wait keyed by request, fleet ops interleaved",
            `Quick,
            test_spans_ingress_wait_interleaved );
        ] );
      ( "export",
        [
          ("chrome JSON is valid and multi-cpu", `Quick, test_chrome_export_is_valid_json);
          ("ftrace text format", `Quick, test_ftrace_export_format);
          ("format parsing", `Quick, test_format_of_string_roundtrip);
        ] );
      ( "sanitizer-clean",
        [
          clean_case "cfs" Workloads.Setup.Cfs;
          clean_case "fifo" (Workloads.Setup.Enoki_sched (module Schedulers.Fifo_sched));
          clean_case "wfq" (Workloads.Setup.Enoki_sched (module Schedulers.Wfq));
          clean_case "shinjuku" (Workloads.Setup.Enoki_sched (module Schedulers.Shinjuku));
          clean_case "locality" (Workloads.Setup.Enoki_sched (module Schedulers.Locality));
          clean_case "edf" (Workloads.Setup.Enoki_sched (module Schedulers.Edf));
          clean_case "nest" (Workloads.Setup.Enoki_sched (module Schedulers.Nest));
          clean_case "rt-fifo" (Workloads.Setup.Enoki_sched (module Schedulers.Rt_fifo));
          clean_case "ghost-sol" (Workloads.Setup.Ghost Schedulers.Ghost_sim.Sol);
          clean_case "ghost-fifo" (Workloads.Setup.Ghost Schedulers.Ghost_sim.Fifo_per_cpu);
          clean_case "ghost-shinjuku" (Workloads.Setup.Ghost Schedulers.Ghost_sim.Gshinjuku);
          ("arachne (arbiter invariants)", `Quick, test_arachne_sanitizes_clean);
        ] );
      ( "sanitizer-fires",
        [
          ("starvation", `Quick, test_sanitizer_catches_starvation);
          ("work conservation", `Quick, test_sanitizer_catches_work_conservation);
          ("token discipline", `Quick, test_sanitizer_catches_token_discipline);
          ("double run (synthetic)", `Quick, test_sanitizer_catches_double_run);
          ("lock imbalance (synthetic)", `Quick, test_sanitizer_catches_lock_imbalance);
          ("disabled kinds silenced", `Quick, test_disabled_silences_only_that_kind);
        ] );
      ( "lock-tap",
        [ ("lock events traced and balanced", `Quick, test_lock_events_traced_and_balanced) ] );
    ]
