(* Unit and property tests for the data-structure substrate (lib/ds). *)

module IntRb = Ds.Rbtree.Make (Int)

let check = Alcotest.check

(* ---------- Rbtree unit tests ---------- *)

let rb_of_list l = List.fold_left (fun t k -> IntRb.add k (k * 10) t) IntRb.empty l

let test_rb_empty () =
  check Alcotest.bool "is_empty" true (IntRb.is_empty IntRb.empty);
  check Alcotest.int "cardinal" 0 (IntRb.cardinal IntRb.empty);
  check Alcotest.bool "min none" true (IntRb.min_binding_opt IntRb.empty = None)

let test_rb_add_find () =
  let t = rb_of_list [ 5; 3; 8; 1; 4 ] in
  check Alcotest.int "cardinal" 5 (IntRb.cardinal t);
  check Alcotest.(option int) "find 3" (Some 30) (IntRb.find_opt 3 t);
  check Alcotest.(option int) "find 9" None (IntRb.find_opt 9 t);
  check Alcotest.bool "mem 8" true (IntRb.mem 8 t)

let test_rb_replace () =
  let t = IntRb.add 1 100 (IntRb.add 1 10 IntRb.empty) in
  check Alcotest.int "cardinal" 1 (IntRb.cardinal t);
  check Alcotest.(option int) "replaced" (Some 100) (IntRb.find_opt 1 t)

let test_rb_min_max () =
  let t = rb_of_list [ 5; 3; 8; 1; 4 ] in
  check Alcotest.(option (pair int int)) "min" (Some (1, 10)) (IntRb.min_binding_opt t);
  check Alcotest.(option (pair int int)) "max" (Some (8, 80)) (IntRb.max_binding_opt t)

let test_rb_remove () =
  let t = rb_of_list [ 5; 3; 8; 1; 4 ] in
  let t = IntRb.remove 3 t in
  check Alcotest.int "cardinal after remove" 4 (IntRb.cardinal t);
  check Alcotest.bool "gone" false (IntRb.mem 3 t);
  let t = IntRb.remove 42 t in
  check Alcotest.int "remove absent is noop" 4 (IntRb.cardinal t)

let test_rb_remove_all () =
  let keys = [ 7; 2; 9; 4; 1; 8; 3; 6; 5; 0 ] in
  let t = rb_of_list keys in
  let t = List.fold_left (fun t k -> IntRb.remove k t) t keys in
  check Alcotest.bool "empty after removing all" true (IntRb.is_empty t)

let test_rb_to_list_sorted () =
  let t = rb_of_list [ 5; 3; 8; 1; 4 ] in
  check
    Alcotest.(list (pair int int))
    "sorted"
    [ (1, 10); (3, 30); (4, 40); (5, 50); (8, 80) ]
    (IntRb.to_list t)

let test_rb_nth () =
  let t = rb_of_list [ 5; 3; 8 ] in
  check Alcotest.(pair int int) "nth 0" (3, 30) (IntRb.nth t 0);
  check Alcotest.(pair int int) "nth 2" (8, 80) (IntRb.nth t 2);
  Alcotest.check_raises "nth out of range" (Invalid_argument "Rbtree.nth") (fun () ->
      ignore (IntRb.nth t 3))

let test_rb_fold_iter () =
  let t = rb_of_list [ 2; 1; 3 ] in
  let sum = IntRb.fold (fun k _ acc -> acc + k) t 0 in
  check Alcotest.int "fold sum" 6 sum;
  let seen = ref [] in
  IntRb.iter (fun k _ -> seen := k :: !seen) t;
  check Alcotest.(list int) "iter order" [ 3; 2; 1 ] !seen

let test_rb_large_sequential () =
  let n = 2000 in
  let t = ref IntRb.empty in
  for i = 1 to n do
    t := IntRb.add i i !t
  done;
  check Alcotest.int "cardinal" n (IntRb.cardinal !t);
  check Alcotest.bool "no red-red" true (IntRb.invariant_no_red_red !t);
  check Alcotest.bool "black height" true (IntRb.invariant_black_height !t);
  for i = 1 to n / 2 do
    t := IntRb.remove (i * 2) !t
  done;
  check Alcotest.int "cardinal after deletes" (n / 2) (IntRb.cardinal !t);
  check Alcotest.bool "no red-red after deletes" true (IntRb.invariant_no_red_red !t);
  check Alcotest.bool "black height after deletes" true (IntRb.invariant_black_height !t);
  check Alcotest.(option (pair int int)) "min is 1" (Some (1, 1)) (IntRb.min_binding_opt !t)

(* ---------- Rbtree property tests ---------- *)

(* Apply a random sequence of add/remove operations and compare against
   Stdlib.Map while checking the red-black invariants throughout. *)
let ops_gen =
  QCheck.Gen.(
    list_size (int_bound 300)
      (pair bool (int_bound 50) >|= fun (add, k) -> if add then `Add k else `Remove k))

let ops_arbitrary =
  QCheck.make ops_gen ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function `Add k -> Printf.sprintf "+%d" k | `Remove k -> Printf.sprintf "-%d" k)
           ops))

module IntMap = Map.Make (Int)

let prop_rb_model ops =
  let apply (t, m) = function
    | `Add k -> (IntRb.add k k t, IntMap.add k k m)
    | `Remove k -> (IntRb.remove k t, IntMap.remove k m)
  in
  let t, m = List.fold_left apply (IntRb.empty, IntMap.empty) ops in
  IntRb.to_list t = IntMap.bindings m

let prop_rb_invariants ops =
  let apply t = function `Add k -> IntRb.add k k t | `Remove k -> IntRb.remove k t in
  let rec go t = function
    | [] -> true
    | op :: rest ->
      let t = apply t op in
      IntRb.invariant_no_red_red t && IntRb.invariant_black_height t
      && IntRb.invariant_ordered t && go t rest
  in
  go IntRb.empty ops

let prop_rb_cardinal ops =
  let apply t = function `Add k -> IntRb.add k k t | `Remove k -> IntRb.remove k t in
  let t = List.fold_left apply IntRb.empty ops in
  IntRb.cardinal t = List.length (IntRb.to_list t)

let prop_rb_min ops =
  let apply t = function `Add k -> IntRb.add k k t | `Remove k -> IntRb.remove k t in
  let t = List.fold_left apply IntRb.empty ops in
  match (IntRb.min_binding_opt t, IntRb.to_list t) with
  | None, [] -> true
  | Some (k, _), (k', _) :: _ -> k = k'
  | _ -> false

(* ---------- Ring buffer ---------- *)

let test_ring_basic () =
  let r = Ds.Ring_buffer.create ~capacity:3 in
  check Alcotest.bool "empty" true (Ds.Ring_buffer.is_empty r);
  check Alcotest.bool "push1" true (Ds.Ring_buffer.push r 1);
  check Alcotest.bool "push2" true (Ds.Ring_buffer.push r 2);
  check Alcotest.bool "push3" true (Ds.Ring_buffer.push r 3);
  check Alcotest.bool "full" true (Ds.Ring_buffer.is_full r);
  check Alcotest.bool "push4 dropped" false (Ds.Ring_buffer.push r 4);
  check Alcotest.int "dropped" 1 (Ds.Ring_buffer.dropped r);
  check Alcotest.(option int) "pop fifo" (Some 1) (Ds.Ring_buffer.pop r);
  check Alcotest.(option int) "peek" (Some 2) (Ds.Ring_buffer.peek r);
  check Alcotest.int "length" 2 (Ds.Ring_buffer.length r)

let test_ring_wraparound () =
  let r = Ds.Ring_buffer.create ~capacity:2 in
  for i = 1 to 10 do
    check Alcotest.bool "push" true (Ds.Ring_buffer.push r i);
    check Alcotest.(option int) "pop" (Some i) (Ds.Ring_buffer.pop r)
  done;
  check Alcotest.int "no drops" 0 (Ds.Ring_buffer.dropped r)

let test_ring_drain () =
  let r = Ds.Ring_buffer.create ~capacity:4 in
  List.iter (fun i -> ignore (Ds.Ring_buffer.push r i)) [ 1; 2; 3 ];
  check Alcotest.(list int) "drain order" [ 1; 2; 3 ] (Ds.Ring_buffer.drain r);
  check Alcotest.bool "empty after drain" true (Ds.Ring_buffer.is_empty r)

let test_ring_clear_resets_drop_accounting () =
  (* regression: [clear] used to keep the old [dropped] count, so a reused
     ring (e.g. a record ring between runs) blamed fresh runs for stale
     overruns *)
  let r = Ds.Ring_buffer.create ~capacity:2 in
  ignore (Ds.Ring_buffer.push r 1);
  ignore (Ds.Ring_buffer.push r 2);
  check Alcotest.bool "overflow push rejected" false (Ds.Ring_buffer.push r 3);
  check Alcotest.int "drop counted" 1 (Ds.Ring_buffer.dropped r);
  Ds.Ring_buffer.clear r;
  check Alcotest.bool "empty after clear" true (Ds.Ring_buffer.is_empty r);
  check Alcotest.int "drop accounting reset" 0 (Ds.Ring_buffer.dropped r);
  check Alcotest.bool "reusable" true (Ds.Ring_buffer.push r 4)

let test_ring_invalid () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Ring_buffer.create") (fun () ->
      ignore (Ds.Ring_buffer.create ~capacity:0))

let prop_ring_fifo pushes =
  (* with a big enough ring, pop order equals push order *)
  let r = Ds.Ring_buffer.create ~capacity:(List.length pushes + 1) in
  List.iter (fun x -> ignore (Ds.Ring_buffer.push r x)) pushes;
  Ds.Ring_buffer.drain r = pushes

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Ds.Heap.create ~compare:Int.compare () in
  List.iter (Ds.Heap.add h) [ 5; 1; 4; 2; 3 ];
  let out = List.filter_map (fun _ -> Ds.Heap.pop h) [ 1; 2; 3; 4; 5 ] in
  check Alcotest.(list int) "sorted pops" [ 1; 2; 3; 4; 5 ] out;
  check Alcotest.bool "empty" true (Ds.Heap.is_empty h)

let test_heap_peek () =
  let h = Ds.Heap.create ~compare:Int.compare () in
  check Alcotest.(option int) "peek empty" None (Ds.Heap.peek h);
  Ds.Heap.add h 3;
  Ds.Heap.add h 1;
  check Alcotest.(option int) "peek min" (Some 1) (Ds.Heap.peek h);
  check Alcotest.int "len" 2 (Ds.Heap.length h)

let test_heap_remove_if () =
  let h = Ds.Heap.create ~compare:Int.compare () in
  List.iter (Ds.Heap.add h) [ 1; 2; 3; 4; 5; 6 ];
  Ds.Heap.remove_if h (fun x -> x mod 2 = 0);
  let out = List.filter_map (fun _ -> Ds.Heap.pop h) [ 1; 2; 3 ] in
  check Alcotest.(list int) "odds remain" [ 1; 3; 5 ] out

let prop_heap_sorts l =
  let h = Ds.Heap.create ~compare:Int.compare () in
  List.iter (Ds.Heap.add h) l;
  let rec drain acc =
    match Ds.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain [] = List.sort Int.compare l

(* heap growth past the initial capacity, with stable (key, seq) ordering *)
let test_heap_growth_stability () =
  let cmp (t1, s1) (t2, s2) = if t1 <> t2 then Int.compare t1 t2 else Int.compare s1 s2 in
  let h = Ds.Heap.create ~compare:cmp () in
  let n = 10_000 in
  (* many duplicate keys inserted with increasing seq, in a scrambled order *)
  for i = 0 to n - 1 do
    Ds.Heap.add h ((i * 7919) mod 97, i)
  done;
  check Alcotest.int "length" n (Ds.Heap.length h);
  let rec drain prev count =
    match Ds.Heap.pop h with
    | None -> count
    | Some ((t, s) as e) ->
      if cmp prev e > 0 then
        Alcotest.failf "out of order: (%d,%d) after (%d,%d)" t s (fst prev) (snd prev);
      drain e (count + 1)
  in
  check Alcotest.int "drained all" n (drain (min_int, min_int) 0)

(* on_move position tracking + remove_at cancellation *)
let test_heap_remove_at () =
  let pos = Hashtbl.create 16 in
  let h =
    Ds.Heap.create
      ~on_move:(fun x i -> Hashtbl.replace pos x i)
      ~compare:Int.compare ()
  in
  List.iter (Ds.Heap.add h) [ 50; 10; 40; 20; 30; 60 ];
  (* cancel 40 via its tracked index *)
  let removed = Ds.Heap.remove_at h (Hashtbl.find pos 40) in
  check Alcotest.int "removed the tracked element" 40 removed;
  Hashtbl.remove pos 40;
  (* remaining elements pop in order, and the index map stays consistent *)
  let rec drain acc =
    match Ds.Heap.peek h with
    | None -> List.rev acc
    | Some x ->
      check Alcotest.int "tracked index of min is 0" 0 (Hashtbl.find pos x);
      ignore (Ds.Heap.pop h);
      drain (x :: acc)
  in
  check Alcotest.(list int) "rest sorted" [ 10; 20; 30; 50; 60 ] (drain []);
  check Alcotest.bool "remove_at out of bounds raises" true
    (try
       ignore (Ds.Heap.remove_at h 0);
       false
     with Invalid_argument _ -> true)

(* ---------- Timer wheel ---------- *)

module W = Ds.Timer_wheel

let test_wheel_fifo_ties () =
  let w = W.create ~dummy:(-1) () in
  List.iteri (fun i v -> W.add w ~time:100 ~seq:i v) [ 10; 11; 12 ];
  W.add w ~time:50 ~seq:3 9;
  let out = List.init 4 (fun _ -> W.pop_exn w) in
  check Alcotest.(list int) "fifo at equal time" [ 9; 10; 11; 12 ] out;
  check Alcotest.bool "empty" true (W.is_empty w)

let test_wheel_cancel () =
  let w = W.create ~dummy:(-1) () in
  let t1 = W.make_timer w 1 in
  let t2 = W.make_timer w 2 in
  W.arm w t1 ~time:10 ~seq:0;
  W.arm w t2 ~time:20 ~seq:1;
  check Alcotest.bool "t1 pending" true (W.pending t1);
  W.cancel w t1;
  check Alcotest.bool "t1 cancelled" false (W.pending t1);
  check Alcotest.int "one left" 1 (W.length w);
  check Alcotest.int "t2 pops" 2 (W.pop_exn w);
  check Alcotest.bool "fired timer not pending" false (W.pending t2);
  (* cancel after fire and double-cancel are no-ops *)
  W.cancel w t2;
  W.cancel w t1;
  check Alcotest.bool "empty" true (W.is_empty w)

let test_wheel_rearm_replaces () =
  let w = W.create ~dummy:(-1) () in
  let t1 = W.make_timer w 7 in
  W.arm w t1 ~time:500 ~seq:0;
  (* re-arming replaces the previous arm entirely *)
  W.arm w t1 ~time:5 ~seq:1;
  W.add w ~time:50 ~seq:2 8;
  check Alcotest.int "rearmed fires at new time" 7 (W.pop_exn w);
  check Alcotest.int "then the one-shot" 8 (W.pop_exn w);
  check Alcotest.bool "nothing at the old time" true (W.is_empty w)

let test_wheel_overflow () =
  (* events beyond the 2^32 horizon land in the overflow heap and still
     pop in global (time, seq) order *)
  let w = W.create ~dummy:(-1) () in
  let far = 1 lsl 33 in
  W.add w ~time:far ~seq:0 1;
  W.add w ~time:5 ~seq:1 2;
  W.add w ~time:(far + 1) ~seq:2 3;
  W.add w ~time:far ~seq:3 4;
  check Alcotest.int "near first" 2 (W.pop_exn w);
  check Alcotest.int "far" 1 (W.pop_exn w);
  check Alcotest.int "far ties fifo" 4 (W.pop_exn w);
  check Alcotest.int "far+1" 3 (W.pop_exn w)

let test_wheel_cascade_boundaries () =
  (* times straddling every level boundary (2^8, 2^16, 2^24) pop sorted:
     cascading from upper levels re-files into lower slots correctly *)
  let times =
    [ 254; 255; 256; 257; 65535; 65536; 65537; 16777215; 16777216; 16777217; 511; 1 ]
  in
  let w = W.create ~dummy:(-1) () in
  List.iteri (fun i t -> W.add w ~time:t ~seq:i t) times;
  let rec drain acc = if W.is_empty w then List.rev acc else drain (W.pop_exn w :: acc) in
  check Alcotest.(list int) "sorted across boundaries" (List.sort Int.compare times) (drain [])

let test_wheel_next_before () =
  let w = W.create ~dummy:(-1) () in
  W.add w ~time:1000 ~seq:0 1;
  (* probing below the earliest event must not move the cursor past it *)
  check Alcotest.int "nothing before 500" max_int (W.next_before w ~until:500);
  W.add w ~time:400 ~seq:1 2;
  check Alcotest.int "new earlier event visible" 400 (W.next_before w ~until:2000);
  check Alcotest.int "earlier event pops first" 2 (W.pop_exn w);
  check Alcotest.int "then the original" 1 (W.pop_exn w)

(* The wheel against a sorted-list model, under random interleavings of
   one-shot inserts, pops, timer arms, re-arms, and cancels — including
   far-future times that exercise the overflow heap. *)
let prop_wheel_model ops =
  let w = W.create ~dummy:(-1) () in
  let timers = Array.init 4 (fun i -> W.make_timer w (1000 + i)) in
  let timer_seq = Array.make 4 None in
  (* model: (time, seq, v) list, min by (time, seq) *)
  let model = ref [] in
  let seq = ref 0 and clock = ref 0 and next_v = ref 0 and ok = ref true in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let offset arg =
    let base = (arg * 37) mod 100_000 in
    if arg mod 13 = 0 then base + (1 lsl 33) else base
  in
  let m_insert time s v = model := (time, s, v) :: !model in
  let m_remove_seq s = model := List.filter (fun (_, s', _) -> s' <> s) !model in
  let pop_both () =
    let m = List.fold_left (fun acc e -> if acc <= e then acc else e) (max_int, max_int, 0) !model in
    if m = (max_int, max_int, 0) && !model = [] then begin
      if not (W.is_empty w) then ok := false
    end
    else begin
      let ((t, s, v) as e) = m in
      model := List.filter (fun e' -> e' <> e) !model;
      clock := t;
      let got = W.pop_exn w in
      if got <> v then ok := false;
      ignore s;
      if v >= 1000 then timer_seq.(v - 1000) <- None
    end
  in
  List.iter
    (fun (k, arg) ->
      match k mod 5 with
      | 0 | 1 ->
        let s = fresh_seq () in
        let time = !clock + offset arg in
        let v = !next_v in
        next_v := (!next_v + 1) mod 1000;
        W.add w ~time ~seq:s v;
        m_insert time s v
      | 2 -> pop_both ()
      | 3 ->
        (* toggle: cancel when pending, arm when idle *)
        let i = arg mod 4 in
        (match timer_seq.(i) with
        | Some s ->
          W.cancel w timers.(i);
          m_remove_seq s;
          timer_seq.(i) <- None
        | None ->
          let s = fresh_seq () in
          let time = !clock + offset arg in
          W.arm w timers.(i) ~time ~seq:s;
          m_insert time s (1000 + i);
          timer_seq.(i) <- Some s)
      | _ ->
        (* unconditional (re-)arm: replaces any previous arm *)
        let i = arg mod 4 in
        (match timer_seq.(i) with Some s -> m_remove_seq s | None -> ());
        let s = fresh_seq () in
        let time = !clock + offset arg in
        W.arm w timers.(i) ~time ~seq:s;
        m_insert time s (1000 + i);
        timer_seq.(i) <- Some s)
    ops;
  if W.length w <> List.length !model then ok := false;
  while !model <> [] do
    pop_both ()
  done;
  !ok && W.is_empty w

(* ---------- Deque ---------- *)

let test_deque_basic () =
  let d = Ds.Deque.create () in
  Ds.Deque.push_back d 1;
  Ds.Deque.push_back d 2;
  Ds.Deque.push_front d 0;
  check Alcotest.(list int) "order" [ 0; 1; 2 ] (Ds.Deque.to_list d);
  check Alcotest.(option int) "pop_front" (Some 0) (Ds.Deque.pop_front d);
  check Alcotest.(option int) "pop_back" (Some 2) (Ds.Deque.pop_back d);
  check Alcotest.int "length" 1 (Ds.Deque.length d)

let test_deque_growth () =
  let d = Ds.Deque.create () in
  for i = 1 to 100 do
    Ds.Deque.push_back d i
  done;
  check Alcotest.int "length" 100 (Ds.Deque.length d);
  check Alcotest.(option int) "front" (Some 1) (Ds.Deque.peek_front d);
  check Alcotest.(option int) "back" (Some 100) (Ds.Deque.peek_back d)

let test_deque_remove () =
  let d = Ds.Deque.create () in
  List.iter (Ds.Deque.push_back d) [ 1; 2; 3; 2 ];
  check Alcotest.bool "removed" true (Ds.Deque.remove d ~eq:Int.equal 2);
  check Alcotest.(list int) "first occurrence gone" [ 1; 3; 2 ] (Ds.Deque.to_list d);
  check Alcotest.bool "absent" false (Ds.Deque.remove d ~eq:Int.equal 9)

let test_deque_mixed_ends () =
  let d = Ds.Deque.create () in
  (* interleave front/back pushes across the growth boundary *)
  for i = 1 to 20 do
    if i mod 2 = 0 then Ds.Deque.push_back d i else Ds.Deque.push_front d i
  done;
  check Alcotest.int "length" 20 (Ds.Deque.length d);
  check Alcotest.(option int) "front is 19" (Some 19) (Ds.Deque.peek_front d);
  check Alcotest.(option int) "back is 20" (Some 20) (Ds.Deque.peek_back d)

let prop_deque_queue l =
  (* push_back + pop_front behaves as a FIFO *)
  let d = Ds.Deque.create () in
  List.iter (Ds.Deque.push_back d) l;
  let rec drain acc =
    match Ds.Deque.pop_front d with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain [] = l

let prop_deque_stack l =
  (* push_back + pop_back behaves as a LIFO *)
  let d = Ds.Deque.create () in
  List.iter (Ds.Deque.push_back d) l;
  let rec drain acc =
    match Ds.Deque.pop_back d with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain [] = List.rev l

(* ---------- Stats: Prng ---------- *)

let test_prng_deterministic () =
  let a = Stats.Prng.create ~seed:42 and b = Stats.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Stats.Prng.next a) (Stats.Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Stats.Prng.create ~seed:1 and b = Stats.Prng.create ~seed:2 in
  let all_eq = ref true in
  for _ = 1 to 20 do
    if Stats.Prng.next a <> Stats.Prng.next b then all_eq := false
  done;
  check Alcotest.bool "streams differ" false !all_eq

let test_prng_float_range () =
  let r = Stats.Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let f = Stats.Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_int_range () =
  let r = Stats.Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Stats.Prng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int") (fun () ->
      ignore (Stats.Prng.int r 0))

let test_prng_split_independent () =
  let a = Stats.Prng.create ~seed:5 in
  let b = Stats.Prng.split a in
  let eq = ref 0 in
  for _ = 1 to 50 do
    if Stats.Prng.next a = Stats.Prng.next b then incr eq
  done;
  check Alcotest.bool "split stream distinct" true (!eq < 5)

let test_prng_shuffle_permutation () =
  let r = Stats.Prng.create ~seed:3 in
  let arr = Array.init 50 Fun.id in
  Stats.Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

(* ---------- Stats: Dist ---------- *)

let rng () = Stats.Prng.create ~seed:123

let test_dist_constant () =
  check (Alcotest.float 0.0) "constant" 5.0
    (Stats.Dist.sample (Stats.Dist.constant 5.0) (rng ()))

let test_dist_uniform_bounds () =
  let d = Stats.Dist.uniform ~lo:2.0 ~hi:4.0 in
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Stats.Dist.sample d r in
    if x < 2.0 || x >= 4.0 then Alcotest.failf "uniform out of bounds: %f" x
  done

let test_dist_exponential_mean () =
  let d = Stats.Dist.exponential ~mean:10.0 in
  let m = Stats.Dist.mean_of_samples d (rng ()) ~n:20000 in
  check (Alcotest.float 0.5) "mean ~10" 10.0 m

let test_dist_pareto_bounds () =
  let d = Stats.Dist.pareto ~alpha:1.5 ~lo:1.0 ~hi:100.0 in
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Stats.Dist.sample d r in
    if x < 0.99 || x > 100.01 then Alcotest.failf "pareto out of bounds: %f" x
  done

let test_dist_mixture_weights () =
  (* 90/10 mixture of constants: sample mean must sit near 10 *)
  let d =
    Stats.Dist.mixture [ (0.9, Stats.Dist.constant 0.0); (0.1, Stats.Dist.constant 100.0) ]
  in
  let m = Stats.Dist.mean_of_samples d (rng ()) ~n:20000 in
  check (Alcotest.float 1.0) "mixture mean" 10.0 m

let test_dist_zipf_skew () =
  let d = Stats.Dist.zipf ~n:100 ~s:1.2 in
  let r = rng () in
  let zero = ref 0 and total = 10000 in
  for _ = 1 to total do
    if Stats.Dist.sample d r = 0.0 then incr zero
  done;
  (* rank 0 of a zipf(1.2) over 100 items has probability ~0.26 *)
  check Alcotest.bool "rank 0 dominates" true (!zero > total / 8)

let test_dist_lognormal_positive () =
  let d = Stats.Dist.lognormal ~mu:1.0 ~sigma:0.5 in
  let r = rng () in
  for _ = 1 to 1000 do
    if Stats.Dist.sample d r <= 0.0 then Alcotest.fail "lognormal must be positive"
  done

(* ---------- Stats: Histogram ---------- *)

let test_hist_empty () =
  let h = Stats.Histogram.create () in
  check Alcotest.int "count" 0 (Stats.Histogram.count h);
  check Alcotest.int "p50 of empty" 0 (Stats.Histogram.percentile h 50.0)

let test_hist_single () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h 1000;
  check Alcotest.int "count" 1 (Stats.Histogram.count h);
  check Alcotest.int "min" 1000 (Stats.Histogram.min h);
  check Alcotest.int "max" 1000 (Stats.Histogram.max h);
  let p99 = Stats.Histogram.percentile h 99.0 in
  check Alcotest.bool "p99 near value" true (abs (p99 - 1000) <= 1000 / 16)

let test_hist_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.record h i
  done;
  let p50 = Stats.Histogram.percentile h 50.0 in
  let p99 = Stats.Histogram.percentile h 99.0 in
  check Alcotest.bool "p50 ~500" true (abs (p50 - 500) < 40);
  check Alcotest.bool "p99 ~990" true (abs (p99 - 990) < 60);
  check Alcotest.bool "p50 <= p99" true (p50 <= p99)

let test_hist_mean () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record h) [ 10; 20; 30 ];
  check (Alcotest.float 0.01) "mean" 20.0 (Stats.Histogram.mean h)

let test_hist_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.record a 10;
  Stats.Histogram.record b 1000;
  Stats.Histogram.merge ~dst:a ~src:b;
  check Alcotest.int "count" 2 (Stats.Histogram.count a);
  check Alcotest.int "min" 10 (Stats.Histogram.min a);
  check Alcotest.int "max" 1000 (Stats.Histogram.max a)

let test_hist_clamps_zero () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h 0;
  Stats.Histogram.record h (-5);
  check Alcotest.int "count" 2 (Stats.Histogram.count h);
  check Alcotest.int "min clamped to 1" 1 (Stats.Histogram.min h)

let prop_hist_percentile_monotone values =
  let h = Stats.Histogram.create () in
  List.iter (fun v -> Stats.Histogram.record h (abs v + 1)) values;
  let ps = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
  let qs = List.map (Stats.Histogram.percentile h) ps in
  let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
  mono qs

let prop_hist_bounded_error v =
  (* percentile of a single recorded value has bounded relative error *)
  let v = (abs v mod 1_000_000_000) + 1 in
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h v;
  let q = Stats.Histogram.percentile h 100.0 in
  let err = Float.abs (float_of_int (q - v)) /. float_of_int v in
  err <= 0.07

(* ---------- Stats: Summary ---------- *)

let test_summary_mean_stdev () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.Summary.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "stdev" 1.0 (Stats.Summary.stdev [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Stats.Summary.mean [])

let test_summary_geomean () =
  check (Alcotest.float 1e-6) "geomean" 2.0 (Stats.Summary.geomean [ 1.0; 4.0 ]);
  check (Alcotest.float 1e-6) "geomean abs" 2.0 (Stats.Summary.geomean [ -1.0; -4.0 ])

let test_summary_percent_diff () =
  check (Alcotest.float 1e-9) "slower" 10.0
    (Stats.Summary.percent_diff ~baseline:100.0 ~value:90.0);
  check (Alcotest.float 1e-9) "faster" (-10.0)
    (Stats.Summary.percent_diff ~baseline:100.0 ~value:110.0);
  check (Alcotest.float 1e-9) "zero baseline" 0.0
    (Stats.Summary.percent_diff ~baseline:0.0 ~value:5.0)

(* ---------- suite ---------- *)

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let () =
  Alcotest.run "ds-and-stats"
    [
      ( "rbtree",
        [
          Alcotest.test_case "empty" `Quick test_rb_empty;
          Alcotest.test_case "add/find" `Quick test_rb_add_find;
          Alcotest.test_case "replace" `Quick test_rb_replace;
          Alcotest.test_case "min/max" `Quick test_rb_min_max;
          Alcotest.test_case "remove" `Quick test_rb_remove;
          Alcotest.test_case "remove all" `Quick test_rb_remove_all;
          Alcotest.test_case "sorted to_list" `Quick test_rb_to_list_sorted;
          Alcotest.test_case "nth" `Quick test_rb_nth;
          Alcotest.test_case "fold/iter" `Quick test_rb_fold_iter;
          Alcotest.test_case "large sequential" `Quick test_rb_large_sequential;
        ] );
      ( "rbtree-properties",
        [
          qtest "models Map" ops_arbitrary prop_rb_model;
          qtest "red-black invariants hold" ops_arbitrary prop_rb_invariants;
          qtest "cardinal consistent" ops_arbitrary prop_rb_cardinal;
          qtest "min is first" ops_arbitrary prop_rb_min;
        ] );
      ( "ring_buffer",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "drain" `Quick test_ring_drain;
          Alcotest.test_case "invalid capacity" `Quick test_ring_invalid;
          Alcotest.test_case "clear resets drop accounting" `Quick
            test_ring_clear_resets_drop_accounting;
          qtest "fifo order" QCheck.(list small_int) prop_ring_fifo;
        ] );
      ( "heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_order;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "remove_if" `Quick test_heap_remove_if;
          Alcotest.test_case "growth + stability" `Quick test_heap_growth_stability;
          Alcotest.test_case "remove_at" `Quick test_heap_remove_at;
          qtest "heapsort" QCheck.(list small_int) prop_heap_sorts;
        ] );
      ( "timer_wheel",
        [
          Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "rearm replaces" `Quick test_wheel_rearm_replaces;
          Alcotest.test_case "overflow horizon" `Quick test_wheel_overflow;
          Alcotest.test_case "cascade boundaries" `Quick test_wheel_cascade_boundaries;
          Alcotest.test_case "next_before gating" `Quick test_wheel_next_before;
          qtest "wheel = sorted-list model" QCheck.(list (pair small_int small_int))
            prop_wheel_model;
        ] );
      ( "deque",
        [
          Alcotest.test_case "basic" `Quick test_deque_basic;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "remove" `Quick test_deque_remove;
          Alcotest.test_case "mixed ends" `Quick test_deque_mixed_ends;
          qtest "fifo" QCheck.(list small_int) prop_deque_queue;
          qtest "lifo" QCheck.(list small_int) prop_deque_stack;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "constant" `Quick test_dist_constant;
          Alcotest.test_case "uniform bounds" `Quick test_dist_uniform_bounds;
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "pareto bounds" `Quick test_dist_pareto_bounds;
          Alcotest.test_case "mixture weights" `Quick test_dist_mixture_weights;
          Alcotest.test_case "zipf skew" `Quick test_dist_zipf_skew;
          Alcotest.test_case "lognormal positive" `Quick test_dist_lognormal_positive;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single value" `Quick test_hist_single;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "mean" `Quick test_hist_mean;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "clamps nonpositive" `Quick test_hist_clamps_zero;
          qtest "percentiles monotone" QCheck.(list small_int) prop_hist_percentile_monotone;
          qtest "bounded relative error" QCheck.int prop_hist_bounded_error;
        ] );
      ( "summary",
        [
          Alcotest.test_case "mean/stdev" `Quick test_summary_mean_stdev;
          Alcotest.test_case "geomean" `Quick test_summary_geomean;
          Alcotest.test_case "percent_diff" `Quick test_summary_percent_diff;
        ] );
    ]
