(* Tests for the extension schedulers (Nest, EDF, RT-FIFO) and the
   policy-switching / task_departed machinery they exercise. *)

module T = Kernsim.Task
module M = Kernsim.Machine

let check = Alcotest.check

let build kind = Workloads.Setup.build ~topology:Kernsim.Topology.one_socket kind

let hog ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

(* periodic sparse task: brief work, long sleep *)
let sparse ~work ~sleep ~iters =
  let left = ref iters and st = ref `Work in
  fun (_ : T.ctx) ->
    match !st with
    | `Work ->
      if !left = 0 then T.Exit
      else begin
        decr left;
        st := `Sleep;
        T.Compute work
      end
    | `Sleep ->
      st := `Work;
      T.Sleep sleep

let cores_touched (b : Workloads.Setup.built) ~group =
  ignore group;
  let mets = M.metrics b.machine in
  List.length
    (List.filter
       (fun c -> Kernsim.Accounting.busy_of_cpu mets c > Kernsim.Time.us 50)
       (List.init 8 Fun.id))

(* ---------- Nest ---------- *)

let test_nest_consolidates_sparse_load () =
  (* 3 sparse tasks on 8 cores: Nest must keep them on few warm cores
     while CFS's idle-first placement spreads them *)
  let run kind =
    let b = build kind in
    for i = 1 to 3 do
      ignore
        (M.spawn b.machine
           {
             (T.default_spec ~name:(Printf.sprintf "sparse%d" i)
                (sparse ~work:(Kernsim.Time.us 300) ~sleep:(Kernsim.Time.ms 2) ~iters:200))
             with
             T.policy = b.policy;
           })
    done;
    M.run_for b.machine (Kernsim.Time.sec 1);
    (b, cores_touched b ~group:"sparse")
  in
  let _, cfs_cores = run Workloads.Setup.Cfs in
  let nest_b, nest_cores = run (Workloads.Setup.Enoki_sched (module Schedulers.Nest)) in
  check Alcotest.bool "nest touches fewer cores" true (nest_cores <= cfs_cores);
  check Alcotest.bool "nest stays compact" true (nest_cores <= 4);
  (* and no task starved *)
  List.iter
    (fun (t : T.t) ->
      if t.T.group = "sparse" then
        check Alcotest.bool "sparse task finished under nest" true (t.T.state = T.Dead))
    (M.tasks nest_b.machine)

let test_nest_work_conserving_under_load () =
  (* 16 hogs on 8 cores: consolidation must not strand runnable work *)
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Nest)) in
  let pids =
    List.init 16 (fun i ->
        M.spawn b.machine
          { (T.default_spec ~name:(Printf.sprintf "h%d" i)
               (hog ~chunk:(Kernsim.Time.ms 1) ~steps:10))
            with
            T.policy = b.policy })
  in
  M.run_for b.machine (Kernsim.Time.ms 100);
  List.iter
    (fun pid ->
      check Alcotest.bool "finished" true
        ((Option.get (M.find_task b.machine pid)).T.state = T.Dead))
    pids

let test_nest_unit_nest_tracking () =
  let ctx = Enoki.Ctx.inert ~nr_cpus:8 () in
  let n = Schedulers.Nest.create ctx in
  check Alcotest.(list int) "initial nest is core 0" [ 0 ] (Schedulers.Nest.nest_cpus n)

(* ---------- EDF ---------- *)

let test_edf_orders_by_deadline () =
  Schedulers.Hints.register_codecs ();
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Edf)) in
  let m = b.machine in
  let order = ref [] in
  (* a long blocker occupies cpu 0 from 0.5ms on, so all three contenders
     wake during its run and queue behind it in EDF order *)
  M.at m ~delay:(Kernsim.Time.us 500) (fun () ->
      ignore
        (M.spawn m
           { (T.default_spec ~name:"blocker" (hog ~chunk:(Kernsim.Time.ms 3) ~steps:1)) with
             T.policy = b.policy;
             affinity = Some [ 0 ];
           }));
  (* three tasks arrive in pid order but with inverted deadlines *)
  List.iteri
    (fun i relative ->
      let beh =
        let st = ref `Hint in
        fun (ctx : T.ctx) ->
          match !st with
          | `Hint ->
            st := `Nap;
            T.Send_hint (Schedulers.Hints.Deadline { pid = ctx.T.self; relative })
          | `Nap ->
            (* block so the wakeup opens a deadline window *)
            st := `Run;
            T.Sleep (Kernsim.Time.ms 1)
          | `Run ->
            order := i :: !order;
            T.Exit
      in
      ignore
        (M.spawn m
           { (T.default_spec ~name:(Printf.sprintf "dl%d" i) beh) with
             T.policy = b.policy;
             affinity = Some [ 0 ];
           }))
    [ Kernsim.Time.ms 9; Kernsim.Time.ms 5; Kernsim.Time.ms 1 ];
  M.run_for m (Kernsim.Time.ms 50);
  check Alcotest.(list int) "earliest deadline first" [ 2; 1; 0 ] (List.rev !order)

let test_edf_default_deadline_applies () =
  let ctx = Enoki.Ctx.inert () in
  let e = Schedulers.Edf.create ctx in
  check Alcotest.(option int) "no hint, no custom deadline" None
    (Schedulers.Edf.relative_deadline_of e ~pid:1);
  Schedulers.Edf.parse_hint e ~pid:0
    ~hint:(Schedulers.Hints.Deadline { pid = 1; relative = Kernsim.Time.ms 3 });
  check Alcotest.(option int) "hint registered" (Some (Kernsim.Time.ms 3))
    (Schedulers.Edf.relative_deadline_of e ~pid:1)

let test_edf_runs_plain_tasks () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Edf)) in
  let pids =
    List.init 6 (fun i ->
        M.spawn b.machine
          { (T.default_spec ~name:(Printf.sprintf "e%d" i)
               (hog ~chunk:(Kernsim.Time.ms 1) ~steps:5))
            with
            T.policy = b.policy })
  in
  M.run_for b.machine (Kernsim.Time.ms 100);
  List.iter
    (fun pid ->
      check Alcotest.bool "finished" true
        ((Option.get (M.find_task b.machine pid)).T.state = T.Dead))
    pids

(* ---------- RT-FIFO ---------- *)

let test_rt_priority_preempts () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Rt_fifo)) in
  let m = b.machine in
  (* low-prio hog starts first; a high-prio task arrives later and must
     run long before the hog completes *)
  let lo =
    M.spawn m
      { (T.default_spec ~name:"lo" (hog ~chunk:(Kernsim.Time.ms 20) ~steps:1)) with
        T.policy = b.policy;
        nice = 10;
        affinity = Some [ 0 ];
      }
  in
  let hi_done = ref (-1) in
  M.at m ~delay:(Kernsim.Time.ms 2) (fun () ->
      ignore
        (M.spawn m
           {
             (T.default_spec ~name:"hi" (fun (ctx : T.ctx) ->
                  if !hi_done >= 0 then T.Exit
                  else begin
                    hi_done := ctx.T.now;
                    T.Compute (Kernsim.Time.ms 1)
                  end))
             with
             T.policy = b.policy;
             nice = -5;
             affinity = Some [ 0 ];
           }));
  M.run_for m (Kernsim.Time.ms 60);
  check Alcotest.bool "high-prio started promptly (preempted the hog)" true
    (!hi_done >= 0 && !hi_done < Kernsim.Time.ms 4);
  check Alcotest.bool "low-prio still finished" true
    ((Option.get (M.find_task m lo)).T.state = T.Dead)

let test_rt_fifo_within_priority () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Rt_fifo)) in
  let m = b.machine in
  let order = ref [] in
  (* an initial blocker so contenders queue *)
  ignore
    (M.spawn m
       { (T.default_spec ~name:"first" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:1)) with
         T.policy = b.policy;
         affinity = Some [ 0 ];
       });
  for i = 1 to 4 do
    let beh =
      let st = ref `Go in
      fun (_ : T.ctx) ->
        match !st with
        | `Go ->
          order := i :: !order;
          st := `End;
          T.Compute (Kernsim.Time.us 100)
        | `End -> T.Exit
    in
    ignore
      (M.spawn m
         { (T.default_spec ~name:(Printf.sprintf "fifo%d" i) beh) with
           T.policy = b.policy;
           affinity = Some [ 0 ];
         })
  done;
  M.run_for m (Kernsim.Time.ms 20);
  check Alcotest.(list int) "arrival order preserved" [ 1; 2; 3; 4 ] (List.rev !order)

let test_rt_starves_low_priority_under_overload () =
  (* defining behaviour: a busy high-priority task starves a low one *)
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Rt_fifo)) in
  let m = b.machine in
  ignore
    (M.spawn m
       { (T.default_spec ~name:"spin-hi" (fun _ -> T.Compute (Kernsim.Time.ms 1))) with
         T.policy = b.policy;
         nice = -10;
         affinity = Some [ 0 ];
       });
  let lo =
    M.spawn m
      { (T.default_spec ~name:"lo" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:1)) with
        T.policy = b.policy;
        nice = 10;
        affinity = Some [ 0 ];
      }
  in
  M.run_for m (Kernsim.Time.ms 100);
  let lo_task = Option.get (M.find_task m lo) in
  check Alcotest.bool "low-prio starved" true (lo_task.T.state <> T.Dead);
  check Alcotest.int "got zero cpu" 0 lo_task.T.sum_exec

(* ---------- policy switching / task_departed ---------- *)

let test_set_policy_moves_between_classes () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  let m = b.machine in
  let pid =
    M.spawn m
      { (T.default_spec ~name:"migrant" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:40)) with
        T.policy = b.policy }
  in
  M.run_for m (Kernsim.Time.ms 5);
  (* move it to CFS mid-run: the Enoki class sees task_departed *)
  M.set_policy m ~pid ~policy:b.cfs_policy;
  M.run_for m (Kernsim.Time.ms 100);
  let task = Option.get (M.find_task m pid) in
  check Alcotest.int "now on cfs" b.cfs_policy task.T.policy;
  check Alcotest.bool "finished under cfs" true (task.T.state = T.Dead);
  match b.enoki with
  | Some e -> check Alcotest.int "no violations through departure" 0 (Enoki.Enoki_c.violations e)
  | None -> ()

let test_set_policy_roundtrip () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Fifo_sched)) in
  let m = b.machine in
  let pid =
    M.spawn m
      { (T.default_spec ~name:"yoyo" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:60)) with
        T.policy = b.policy }
  in
  for i = 1 to 4 do
    M.at m ~delay:(i * Kernsim.Time.ms 8) (fun () ->
        let task = Option.get (M.find_task m pid) in
        if task.T.state <> T.Dead then
          M.set_policy m ~pid ~policy:(if task.T.policy = 0 then 1 else 0))
  done;
  M.run_for m (Kernsim.Time.ms 200);
  check Alcotest.bool "survived repeated policy flips" true
    ((Option.get (M.find_task m pid)).T.state = T.Dead)

(* ---------- wfq no-steal ablation variant ---------- *)

let test_wfq_nosteal_still_correct () =
  let (module NS) = Schedulers.Wfq.without_steal in
  let b = build (Workloads.Setup.Enoki_sched (module NS)) in
  let pids =
    List.init 8 (fun i ->
        M.spawn b.machine
          { (T.default_spec ~name:(Printf.sprintf "n%d" i)
               (hog ~chunk:(Kernsim.Time.ms 1) ~steps:10))
            with
            T.policy = b.policy })
  in
  M.run_for b.machine (Kernsim.Time.ms 200);
  List.iter
    (fun pid ->
      check Alcotest.bool "finished without stealing" true
        ((Option.get (M.find_task b.machine pid)).T.state = T.Dead))
    pids

let () =
  Alcotest.run "extensions"
    [
      ( "nest",
        [
          Alcotest.test_case "consolidates sparse load" `Quick test_nest_consolidates_sparse_load;
          Alcotest.test_case "work conserving" `Quick test_nest_work_conserving_under_load;
          Alcotest.test_case "nest tracking" `Quick test_nest_unit_nest_tracking;
        ] );
      ( "edf",
        [
          Alcotest.test_case "orders by deadline" `Quick test_edf_orders_by_deadline;
          Alcotest.test_case "deadline hints" `Quick test_edf_default_deadline_applies;
          Alcotest.test_case "runs plain tasks" `Quick test_edf_runs_plain_tasks;
        ] );
      ( "rt-fifo",
        [
          Alcotest.test_case "priority preempts" `Quick test_rt_priority_preempts;
          Alcotest.test_case "fifo within priority" `Quick test_rt_fifo_within_priority;
          Alcotest.test_case "starves low prio" `Quick test_rt_starves_low_priority_under_overload;
        ] );
      ( "policy-switch",
        [
          Alcotest.test_case "enoki to cfs" `Quick test_set_policy_moves_between_classes;
          Alcotest.test_case "roundtrip flips" `Quick test_set_policy_roundtrip;
        ] );
      ( "ablation-variants",
        [ Alcotest.test_case "wfq no-steal correct" `Quick test_wfq_nosteal_still_correct ] );
    ]
