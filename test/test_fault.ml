(* lib/fault: deterministic fault plans, injection through the module
   boundary, panic isolation with CFS failover, per-call budgets, and
   watchdog-driven rollback. *)

let check = Alcotest.check

module M = Kernsim.Machine

let one_socket = Kernsim.Topology.one_socket

let plan_of s =
  match Fault.Plan.parse s with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse %S: %s" s m

(* ---------- plan grammar ---------- *)

let test_plan_parse_roundtrip () =
  List.iter
    (fun spec ->
      let p = plan_of spec in
      let printed = Fault.Plan.to_string p in
      let p' = plan_of printed in
      check Alcotest.string spec printed (Fault.Plan.to_string p'))
    [
      "panic@task_wakeup:after=400,max=1";
      "wrong-reply:p=0.02";
      "latency:p=0.01,ns=250000";
      "wedge@pick_next_task:after=800";
      "corrupt-hint:p=0.5";
      "panic@balance;wrong-reply:p=0.5;bad-select";
    ]

let test_plan_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.Plan.parse spec with
      | Ok _ -> Alcotest.failf "%S must not parse" spec
      | Error _ -> ())
    [ ""; "frobnicate"; "panic:p=nope"; "latency:bogus=3"; "panic@" ]

let test_presets_parse () =
  List.iter
    (fun (name, p) ->
      check Alcotest.bool (name ^ " nonempty") true (p <> []);
      match Fault.Plan.parse name with
      | Ok p' -> check Alcotest.string name (Fault.Plan.to_string p) (Fault.Plan.to_string p')
      | Error m -> Alcotest.failf "preset %s: %s" name m)
    Fault.Plan.presets

(* ---------- faulted runs ---------- *)

let faulted_run ?call_budget ?config ~plan ~seed () =
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let s = Trace.Sanitizer.create ?config ~nr_cpus () in
  Trace.Sanitizer.attach s tracer;
  let m = Fault.Inject.wrap ~seed ~plan:(plan_of plan) (module Schedulers.Wfq) in
  let b =
    Workloads.Setup.build ~tracer ?call_budget ~topology:one_socket
      (Workloads.Setup.Enoki_sched m)
  in
  let r = Workloads.Pipe_bench.run b ~messages:3_000 () in
  (b, tracer, s, r)

let event_names tracer =
  List.map (fun (e : Trace.Event.t) -> Trace.Event.name e.kind) (Trace.Tracer.events tracer)

let count_kind s k = List.length (Trace.Sanitizer.violations_of_kind s k)

(* same (plan, seed, workload) -> bit-identical runs *)
let test_deterministic_replay () =
  let once () =
    let b, tracer, _, r = faulted_run ~plan:"chaos" ~seed:5 () in
    let evs = List.map Trace.Event.to_string (Trace.Tracer.events tracer) in
    let f = Enoki.Enoki_c.failover_stats (Option.get b.Workloads.Setup.enoki) in
    (evs, r.Workloads.Pipe_bench.us_per_wakeup, f)
  in
  let e1, us1, f1 = once () in
  let e2, us2, f2 = once () in
  check Alcotest.int "same event count" (List.length e1) (List.length e2);
  check Alcotest.bool "bit-identical event stream" true (e1 = e2);
  check (Alcotest.float 0.0) "identical wakeup metric" us1 us2;
  check Alcotest.int "same panic count" f1.Enoki.Enoki_c.panics f2.Enoki.Enoki_c.panics

(* a module panic mid-run: the sim completes, the module is quarantined,
   tasks fail over to built-in CFS, and the boundary leaks no invariant *)
let test_panic_quarantines_and_fails_over () =
  let b, tracer, s, r = faulted_run ~plan:"panic" ~seed:1 () in
  let e = Option.get b.Workloads.Setup.enoki in
  let f = Enoki.Enoki_c.failover_stats e in
  check Alcotest.bool "workload completed" true r.Workloads.Pipe_bench.completed;
  check Alcotest.int "one panic" 1 f.Enoki.Enoki_c.panics;
  check Alcotest.int "one failover" 1 f.Enoki.Enoki_c.failovers;
  check Alcotest.bool "quarantined" true (f.Enoki.Enoki_c.quarantined <> None);
  check Alcotest.bool "blackout measured" true (f.Enoki.Enoki_c.blackout <> None);
  let names = event_names tracer in
  check Alcotest.bool "panic event traced" true (List.mem "panic" names);
  check Alcotest.bool "failover event traced" true (List.mem "failover" names);
  check Alcotest.int "no double-run" 0 (count_kind s Trace.Sanitizer.Double_run);
  check Alcotest.int "no token violation" 0 (count_kind s Trace.Sanitizer.Token_discipline)

let test_bad_select_contained () =
  let b, _, s, r = faulted_run ~plan:"bad-select:p=0.2" ~seed:3 () in
  let e = Option.get b.Workloads.Setup.enoki in
  check Alcotest.bool "workload completed" true r.Workloads.Pipe_bench.completed;
  check Alcotest.bool "absurd cpus rejected and counted" true
    (List.mem_assoc "bad_select_cpu" (Enoki.Enoki_c.violation_breakdown e));
  check Alcotest.int "no double-run" 0 (count_kind s Trace.Sanitizer.Double_run)

let test_call_budget_overruns () =
  let b, tracer, _, r =
    faulted_run ~plan:"wedge@pick_next_task:after=100,max=5" ~call_budget:1_000_000 ~seed:1 ()
  in
  let e = Option.get b.Workloads.Setup.enoki in
  let f = Enoki.Enoki_c.failover_stats e in
  check Alcotest.bool "workload completed" true r.Workloads.Pipe_bench.completed;
  check Alcotest.int "each wedge overruns the budget" 5 f.Enoki.Enoki_c.overruns;
  check Alcotest.bool "overrun events traced" true (List.mem "overrun" (event_names tracer))

(* ---------- the watchdog ---------- *)

(* a wedged scheduler (every pick charges 20ms against a 1ms budget): the
   watchdog must detect the overrun burst, re-register a good module, and
   the workload must still complete -- with the pause (blackout) reported *)
let test_watchdog_detects_wedged_module () =
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let s = Trace.Sanitizer.create ~nr_cpus () in
  Trace.Sanitizer.attach s tracer;
  let m =
    Fault.Inject.wrap ~seed:1
      ~plan:(plan_of "wedge@pick_next_task:after=200")
      (module Schedulers.Wfq)
  in
  let b =
    Workloads.Setup.build ~tracer ~call_budget:1_000_000 ~topology:one_socket
      (Workloads.Setup.Enoki_sched m)
  in
  let e = Option.get b.Workloads.Setup.enoki in
  let recovered = ref 0 in
  let w =
    Fault.Watchdog.create ~sanitizer:s
      ~action:(fun ~reason:_ ~at:_ ->
        (* recovery re-enters the scheduler: defer out of the dispatch *)
        M.at b.Workloads.Setup.machine ~delay:0 (fun () ->
            match
              match Enoki.Enoki_c.previous e with
              | Some _ -> Enoki.Enoki_c.rollback e
              | None -> Enoki.Enoki_c.upgrade e (module Schedulers.Wfq)
            with
            | Ok _ -> incr recovered
            | Error exn -> raise exn))
      ()
  in
  Fault.Watchdog.attach w tracer;
  let r = Workloads.Pipe_bench.run b ~messages:3_000 () in
  check Alcotest.bool "workload completed" true r.Workloads.Pipe_bench.completed;
  check Alcotest.bool "watchdog fired" true (Fault.Watchdog.fires w <> []);
  check Alcotest.bool "recovery ran" true (!recovered >= 1);
  check Alcotest.string "wedged module replaced by the pristine one" "wfq"
    (Enoki.Enoki_c.scheduler_name e);
  check Alcotest.bool "re-registration blackout reported" true
    (List.exists (fun (u : Enoki.Upgrade.stats) -> u.pause >= 0) (Enoki.Enoki_c.upgrades e));
  check Alcotest.bool "watchdog_fire traced" true (List.mem "watchdog_fire" (event_names tracer));
  check Alcotest.int "no double-run" 0 (count_kind s Trace.Sanitizer.Double_run);
  check Alcotest.int "no token violation" 0 (count_kind s Trace.Sanitizer.Token_discipline)

(* upgrade to a wedged version mid-run; the watchdog rolls back to the
   previous (pristine) version through the upgrade history *)
let test_watchdog_rolls_back_bad_upgrade () =
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let b =
    Workloads.Setup.build ~tracer ~call_budget:1_000_000 ~topology:one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  let e = Option.get b.Workloads.Setup.enoki in
  let wedged =
    Fault.Inject.wrap ~seed:1 ~plan:(plan_of "wedge@pick_next_task") (module Schedulers.Wfq)
  in
  M.at b.Workloads.Setup.machine ~delay:(Kernsim.Time.ms 10) (fun () ->
      match Enoki.Enoki_c.upgrade e wedged with Ok _ -> () | Error exn -> raise exn);
  let rollbacks = ref 0 in
  let w =
    Fault.Watchdog.create
      ~action:(fun ~reason:_ ~at:_ ->
        M.at b.Workloads.Setup.machine ~delay:0 (fun () ->
            match Enoki.Enoki_c.rollback e with
            | Ok _ -> incr rollbacks
            | Error exn -> raise exn))
      ()
  in
  Fault.Watchdog.attach w tracer;
  let r = Workloads.Pipe_bench.run b ~messages:3_000 () in
  check Alcotest.bool "workload completed" true r.Workloads.Pipe_bench.completed;
  check Alcotest.bool "watchdog fired on the wedged upgrade" true (Fault.Watchdog.fires w <> []);
  check Alcotest.bool "rolled back" true (!rollbacks >= 1);
  check Alcotest.string "previous version re-registered" "wfq" (Enoki.Enoki_c.scheduler_name e)

(* a panic storm quarantines the module; a later upgrade must clear the
   quarantine, re-adopt the tasks from kernel ground truth and finish *)
let test_upgrade_clears_quarantine () =
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let s = Trace.Sanitizer.create ~nr_cpus () in
  Trace.Sanitizer.attach s tracer;
  let m =
    Fault.Inject.wrap ~seed:2
      ~plan:(plan_of "panic@task_wakeup:p=0.5,max=3")
      (module Schedulers.Wfq)
  in
  let b = Workloads.Setup.build ~tracer ~topology:one_socket (Workloads.Setup.Enoki_sched m) in
  let e = Option.get b.Workloads.Setup.enoki in
  M.at b.Workloads.Setup.machine ~delay:(Kernsim.Time.ms 20) (fun () ->
      match Enoki.Enoki_c.upgrade e (module Schedulers.Wfq) with
      | Ok _ -> ()
      | Error exn -> raise exn);
  let r = Workloads.Pipe_bench.run b ~messages:3_000 () in
  let f = Enoki.Enoki_c.failover_stats e in
  check Alcotest.bool "workload completed" true r.Workloads.Pipe_bench.completed;
  check Alcotest.bool "was quarantined" true (f.Enoki.Enoki_c.panics >= 1);
  check Alcotest.bool "quarantine cleared by the upgrade" true
    (f.Enoki.Enoki_c.quarantined = None);
  check Alcotest.string "healthy module registered" "wfq" (Enoki.Enoki_c.scheduler_name e);
  check Alcotest.int "no double-run" 0 (count_kind s Trace.Sanitizer.Double_run);
  check Alcotest.int "no token violation" 0 (count_kind s Trace.Sanitizer.Token_discipline)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          ("spec round-trip", `Quick, test_plan_parse_roundtrip);
          ("bad specs rejected", `Quick, test_plan_parse_errors);
          ("presets parse to themselves", `Quick, test_presets_parse);
        ] );
      ( "inject",
        [
          ("same plan+seed replays bit-identically", `Quick, test_deterministic_replay);
          ("panic quarantines, fails over to cfs", `Quick, test_panic_quarantines_and_fails_over);
          ("absurd select_task_rq contained", `Quick, test_bad_select_contained);
          ("call budget overruns detected", `Quick, test_call_budget_overruns);
        ] );
      ( "watchdog",
        [
          ("wedged module detected and replaced", `Quick, test_watchdog_detects_wedged_module);
          ("bad upgrade rolled back", `Quick, test_watchdog_rolls_back_bad_upgrade);
          ("upgrade clears quarantine", `Quick, test_upgrade_clears_quarantine);
        ] );
    ]
