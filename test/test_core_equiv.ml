(* Backend equivalence: the timer-wheel event queue must be observationally
   identical to the reference binary heap.

   Every scheduler in the matrix runs its workload twice — once per
   backend — with a schedtrace tracer attached, and the two full event
   streams (every dispatch, wakeup, context switch, lock op, boundary
   crossing, with timestamps) must match event-for-event.  This is the
   strongest cheap check we have that swapping the queue implementation
   cannot change a single scheduling decision. *)

let one_socket = Kernsim.Topology.one_socket

let nr_cpus = Kernsim.Topology.nr_cpus one_socket

type driver = Pipe | Memcached

(* The whole registry, so a newly registered scheduler is covered without
   touching this file.  Core arbiters (Arachne) renounce the pipe workload
   by design and are driven through the memcached runtime instead. *)
let matrix : (string * Workloads.Setup.kind * driver) list =
  List.map
    (fun (e : Schedulers.Registry.entry) ->
      let kind =
        match e.kind with
        | Schedulers.Registry.Builtin_cfs -> Workloads.Setup.Cfs
        | Schedulers.Registry.Enoki m -> Workloads.Setup.Enoki_sched m
        | Schedulers.Registry.Ghost p -> Workloads.Setup.Ghost p
      in
      (e.name, kind, if e.arbiter then Memcached else Pipe))
    Schedulers.Registry.all

let run_traced kind driver backend =
  let tracer = Trace.Tracer.create ~nr_cpus () in
  let b = Workloads.Setup.build ~tracer ~sim_backend:backend ~topology:one_socket kind in
  (match driver with
  | Pipe -> ignore (Workloads.Pipe_bench.run b ~messages:2_000 ())
  | Memcached ->
    ignore
      (Workloads.Memcached.run b
         (Workloads.Memcached.default_params ~mode:Workloads.Memcached.Arachne_enoki
            ~load_kreqs:50. ())));
  ( Trace.Tracer.events tracer,
    Trace.Tracer.dropped tracer,
    Kernsim.Machine.events_dispatched b.Workloads.Setup.machine )

let event_str (e : Trace.Event.t) =
  Printf.sprintf "ts=%d cpu=%d %s" e.Trace.Event.ts e.Trace.Event.cpu
    (Trace.Event.name e.Trace.Event.kind)

let test_equiv (name, kind, driver) () =
  let wheel_ev, wheel_drop, wheel_n = run_traced kind driver `Wheel in
  let heap_ev, heap_drop, heap_n = run_traced kind driver `Heap in
  Alcotest.(check int) "same trace length" (List.length heap_ev) (List.length wheel_ev);
  Alcotest.(check int) "same ring drops" heap_drop wheel_drop;
  List.iteri
    (fun i (h, w) ->
      if h <> w then
        Alcotest.failf "%s: event %d differs: heap [%s] vs wheel [%s]" name i (event_str h)
          (event_str w))
    (List.combine heap_ev wheel_ev);
  (* the machines dispatched comparable event counts: the wheel never
     dead-dispatches tombstones, so its count can only be <= the heap's
     (both backends share the Sim.timer cancellation path, so in practice
     they are equal) *)
  Alcotest.(check int) "same dispatch count" heap_n wheel_n

let () =
  Alcotest.run "core-equiv"
    [
      ( "wheel vs heap, full event stream",
        List.map
          (fun ((name, _, _) as row) -> Alcotest.test_case name `Quick (test_equiv row))
          matrix );
    ]
