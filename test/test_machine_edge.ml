(* Edge-case tests for the machine substrate: idle-state costs, custom
   timers, NUMA balancing, hint delivery, charge semantics, and the
   framework behaviours that only show under unusual sequences. *)

module T = Kernsim.Task
module M = Kernsim.Machine

let check = Alcotest.check

let machine ?(topology = Kernsim.Topology.one_socket) ?costs () =
  M.create ?costs ~topology ~classes:[ Kernsim.Cfs.factory ~debug_checks:true () ] ()

let one_shot compute =
  let done_ = ref false in
  fun (_ : T.ctx) ->
    if !done_ then T.Exit
    else begin
      done_ := true;
      T.Compute compute
    end

(* ---------- idle-state model ---------- *)

let wakeup_p50_with_sleep sleep =
  let m = machine () in
  let beh =
    let n = ref 50 and st = ref `Work in
    fun (_ : T.ctx) ->
      match !st with
      | `Work ->
        if !n = 0 then T.Exit
        else begin
          decr n;
          st := `Sleep;
          T.Compute (Kernsim.Time.us 20)
        end
      | `Sleep ->
        st := `Work;
        T.Sleep sleep
  in
  ignore (M.spawn m (T.default_spec ~name:"sleeper" beh));
  M.run_for m (Kernsim.Time.sec 1);
  Stats.Histogram.percentile (Kernsim.Accounting.wakeup_latency (M.metrics m)) 50.0

let test_deep_idle_costs_more () =
  (* short sleeps keep the core shallow; long sleeps hit the deep state *)
  let shallow = wakeup_p50_with_sleep (Kernsim.Time.us 50) in
  let deep = wakeup_p50_with_sleep (Kernsim.Time.ms 2) in
  check Alcotest.bool "deep idle exit dominates" true (deep > 5 * shallow);
  check Alcotest.bool "deep ~= configured exit cost" true
    (deep >= Kernsim.Costs.default.deep_idle_exit)

let test_costs_are_configurable () =
  let costs = { Kernsim.Costs.default with deep_idle_exit = Kernsim.Costs.default.idle_exit } in
  let m = machine ~costs () in
  let beh =
    let n = ref 20 and st = ref `Work in
    fun (_ : T.ctx) ->
      match !st with
      | `Work ->
        if !n = 0 then T.Exit
        else begin
          decr n;
          st := `Sleep;
          T.Compute (Kernsim.Time.us 20)
        end
      | `Sleep ->
        st := `Work;
        T.Sleep (Kernsim.Time.ms 2)
  in
  ignore (M.spawn m (T.default_spec ~name:"s" beh));
  M.run_for m (Kernsim.Time.sec 1);
  let p50 = Stats.Histogram.percentile (Kernsim.Accounting.wakeup_latency (M.metrics m)) 50.0 in
  check Alcotest.bool "flattened idle exit flattens wakeups" true (p50 < Kernsim.Time.us 5)

(* ---------- custom per-cpu timers through the Enoki ctx ---------- *)

module Timer_probe = struct
  include Schedulers.Fifo_sched

  let name = "timer-probe"

  let fired = ref 0

  let saved_ctx : Enoki.Ctx.t option ref = ref None

  let create ctx =
    saved_ctx := Some ctx;
    fired := 0;
    Schedulers.Fifo_sched.create ctx

  let task_tick t ~cpu ~queued =
    incr fired;
    Schedulers.Fifo_sched.task_tick t ~cpu ~queued
end

let test_ctx_timer_fires_task_tick () =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Timer_probe))
  in
  ignore
    (M.spawn b.machine
       { (T.default_spec ~name:"x" (one_shot (Kernsim.Time.us 100))) with T.policy = b.policy });
  M.run_for b.machine (Kernsim.Time.us 50);
  let before = !Timer_probe.fired in
  (match !Timer_probe.saved_ctx with
  | Some ctx ->
    ctx.set_timer ~cpu:3 (Kernsim.Time.us 10);
    ctx.set_timer ~cpu:3 (Kernsim.Time.us 20) (* re-arm replaces *)
  | None -> Alcotest.fail "scheduler never created");
  M.run_for b.machine (Kernsim.Time.us 15);
  check Alcotest.int "replaced timer did not fire early" before !Timer_probe.fired;
  M.run_for b.machine (Kernsim.Time.us 10);
  check Alcotest.bool "re-armed timer fired" true (!Timer_probe.fired > before);
  (match !Timer_probe.saved_ctx with
  | Some ctx ->
    let f = !Timer_probe.fired in
    ctx.set_timer ~cpu:2 (Kernsim.Time.us 10);
    ctx.cancel_timer ~cpu:2;
    M.run_for b.machine (Kernsim.Time.us 50);
    (* the global 1ms tick has not happened yet inside this window *)
    check Alcotest.int "cancelled timer never fired" f !Timer_probe.fired
  | None -> ())

(* ---------- NUMA-thresholded balancing in CFS ---------- *)

let test_cfs_numa_threshold () =
  (* two-socket box: a pile on node 0 gets pulled by node-1 cpus only when
     the imbalance exceeds the threshold; a single surplus task does not
     cross nodes while its own node can serve it *)
  let m =
    M.create ~topology:Kernsim.Topology.two_socket
      ~classes:[ Kernsim.Cfs.factory ~debug_checks:true () ]
      ()
  in
  (* fill node 0 (cpus 0-39) with exactly one hog per cpu, plus 8 extra *)
  let node0 = List.init 40 Fun.id in
  let extras =
    List.init 48 (fun i ->
        M.spawn m
          {
            (T.default_spec ~name:(Printf.sprintf "n0-%d" i)
               (one_shot (Kernsim.Time.ms 40)))
            with
            T.affinity = None;
          })
  in
  ignore node0;
  M.run_for m (Kernsim.Time.ms 200);
  (* all 48 finish: the 8 surplus tasks migrated somewhere, possibly across
     the node; work conservation holds *)
  List.iter
    (fun pid ->
      check Alcotest.bool "finished" true ((Option.get (M.find_task m pid)).T.state = T.Dead))
    extras

(* ---------- hint delivery plumbing ---------- *)

let test_hint_ring_overflow_counted () =
  Schedulers.Hints.register_codecs ();
  let enoki = Enoki.Enoki_c.create ~hint_capacity:1 (module Schedulers.Locality) in
  let m =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  (* the ring drains synchronously on every push, so a capacity-1 ring
     still accepts a burst sent one action at a time *)
  let beh =
    let n = ref 5 in
    fun (ctx : T.ctx) ->
      if !n = 0 then T.Exit
      else begin
        decr n;
        T.Send_hint (Schedulers.Hints.Locality { pid = ctx.T.self; group = !n })
      end
  in
  ignore (M.spawn m { (T.default_spec ~name:"h" beh) with T.policy = 0 });
  M.run_for m (Kernsim.Time.ms 5);
  check Alcotest.int "no drops with synchronous drain" 0 (Enoki.Enoki_c.hints_dropped enoki)

let test_reverse_queue_reaches_inbox () =
  (* kernel-to-user messages land in the task inbox at its next action *)
  let got = ref [] in
  let module Announcer = struct
    include Schedulers.Fifo_sched

    let name = "announcer"

    let create (ctx : Enoki.Ctx.t) =
      let t = Schedulers.Fifo_sched.create ctx in
      t

    let task_new inner ~pid ~runtime ~prio ~sched =
      Schedulers.Fifo_sched.task_new inner ~pid ~runtime ~prio ~sched
  end in
  let saved : Enoki.Ctx.t option ref = ref None in
  let module With_ctx = struct
    include Announcer

    let create ctx =
      saved := Some ctx;
      Announcer.create ctx
  end in
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module With_ctx))
  in
  let beh =
    let n = ref 3 in
    fun (ctx : T.ctx) ->
      List.iter
        (fun h ->
          match h with Schedulers.Hints.Core_reclaim { slot } -> got := slot :: !got | _ -> ())
        ctx.T.inbox;
      if !n = 0 then T.Exit
      else begin
        decr n;
        T.Compute (Kernsim.Time.us 50)
      end
  in
  let pid = M.spawn b.machine { (T.default_spec ~name:"listener" beh) with T.policy = b.policy } in
  M.at b.machine ~delay:(Kernsim.Time.us 10) (fun () ->
      match !saved with
      | Some ctx -> ctx.send_user ~pid (Schedulers.Hints.Core_reclaim { slot = 7 })
      | None -> Alcotest.fail "no ctx");
  M.run_for b.machine (Kernsim.Time.ms 5);
  check Alcotest.(list int) "message delivered" [ 7 ] !got

(* ---------- metrics ---------- *)

let test_metrics_reset_clears_window () =
  let m = machine () in
  ignore (M.spawn m (T.default_spec ~name:"a" (one_shot (Kernsim.Time.ms 1))));
  M.run_for m (Kernsim.Time.ms 5);
  let mets = M.metrics m in
  check Alcotest.bool "activity recorded" true (Kernsim.Accounting.schedules mets > 0);
  Kernsim.Accounting.reset mets;
  check Alcotest.int "schedules cleared" 0 (Kernsim.Accounting.schedules mets);
  check Alcotest.int "busy cleared" 0 (Kernsim.Accounting.total_busy mets);
  check Alcotest.int "wakeup samples cleared" 0
    (Stats.Histogram.count (Kernsim.Accounting.wakeup_latency mets))

let test_busy_by_group_partitions () =
  let m = machine () in
  let spawn name group =
    M.spawn m
      { (T.default_spec ~name (one_shot (Kernsim.Time.ms 2))) with T.group }
  in
  ignore (spawn "a" "alpha");
  ignore (spawn "b" "beta");
  M.run_for m (Kernsim.Time.ms 10);
  let mets = M.metrics m in
  let alpha = Kernsim.Accounting.busy_of_group mets "alpha" in
  let beta = Kernsim.Accounting.busy_of_group mets "beta" in
  check Alcotest.bool "both groups measured" true
    (alpha >= Kernsim.Time.ms 2 && beta >= Kernsim.Time.ms 2);
  check Alcotest.int "groups sum to total" (Kernsim.Accounting.total_busy mets) (alpha + beta)

(* ---------- blocked-state policy switch ---------- *)

let test_set_policy_while_blocked () =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Fifo_sched))
  in
  let m = b.machine in
  let ch = M.new_chan m in
  let beh =
    let st = ref `Wait in
    fun (_ : T.ctx) ->
      match !st with
      | `Wait ->
        st := `Work;
        T.Block ch
      | `Work -> T.Exit
  in
  let pid = M.spawn m { (T.default_spec ~name:"b" beh) with T.policy = b.policy } in
  M.run_for m (Kernsim.Time.ms 1);
  check Alcotest.bool "blocked" true ((Option.get (M.find_task m pid)).T.state = T.Blocked);
  (* switch while blocked, then wake: the new class adopts at wakeup *)
  M.set_policy m ~pid ~policy:b.cfs_policy;
  let waker =
    let st = ref `Go in
    fun (_ : T.ctx) ->
      match !st with
      | `Go ->
        st := `End;
        T.Wake ch
      | `End -> T.Exit
  in
  ignore (M.spawn m { (T.default_spec ~name:"w" waker) with T.policy = b.cfs_policy });
  M.run_for m (Kernsim.Time.ms 10);
  let task = Option.get (M.find_task m pid) in
  check Alcotest.int "policy switched" b.cfs_policy task.T.policy;
  check Alcotest.bool "completed under new class" true (task.T.state = T.Dead)

(* ---------- record during upgrade (paper: unsupported, must not corrupt) ---------- *)

let test_record_across_upgrade_is_harmless () =
  let record = Enoki.Record.create () in
  let b =
    Workloads.Setup.build ~record ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  ignore
    (M.spawn b.machine
       { (T.default_spec ~name:"x" (one_shot (Kernsim.Time.ms 20))) with T.policy = b.policy });
  let e = Option.get b.enoki in
  M.at b.machine ~delay:(Kernsim.Time.ms 5) (fun () ->
      match Enoki.Enoki_c.upgrade e (module Schedulers.Wfq) with
      | Ok _ -> ()
      | Error exn -> raise exn);
  M.run_for b.machine (Kernsim.Time.ms 50);
  (* the paper does not support replaying across an upgrade; the log must
     still parse, even if replay semantics are undefined *)
  let entries = Enoki.Replay.parse (Enoki.Record.contents record) in
  check Alcotest.bool "log still parses" true (List.length entries > 0)

let () =
  Alcotest.run "machine-edge"
    [
      ( "idle-states",
        [
          Alcotest.test_case "deep idle costs more" `Quick test_deep_idle_costs_more;
          Alcotest.test_case "costs configurable" `Quick test_costs_are_configurable;
        ] );
      ("timers", [ Alcotest.test_case "ctx timers" `Quick test_ctx_timer_fires_task_tick ]);
      ("numa", [ Alcotest.test_case "threshold balancing" `Quick test_cfs_numa_threshold ]);
      ( "hints",
        [
          Alcotest.test_case "ring overflow accounting" `Quick test_hint_ring_overflow_counted;
          Alcotest.test_case "reverse queue to inbox" `Quick test_reverse_queue_reaches_inbox;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "reset clears window" `Quick test_metrics_reset_clears_window;
          Alcotest.test_case "group partitions" `Quick test_busy_by_group_partitions;
        ] );
      ( "policy",
        [ Alcotest.test_case "switch while blocked" `Quick test_set_policy_while_blocked ] );
      ( "record",
        [ Alcotest.test_case "record across upgrade" `Quick test_record_across_upgrade_is_harmless ] );
    ]
