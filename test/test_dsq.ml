(* Tests for lib/dsq: the dispatch-queue structure itself (FIFO stability,
   vtime ordering, silent transfer primitives), the scx policy family built
   on Dsq_sched.Make (sanitizer-clean runs, record/replay stream
   equivalence, live-upgrade round trips, cross-policy rejection), and the
   dual-queue promotion bound via the exposed pick_source decision. *)

module T = Kernsim.Task
module M = Kernsim.Machine
module Sched = Enoki.Schedulable

let check = Alcotest.check

let dsq_schedulers : (string * (module Enoki.Sched_trait.S)) list =
  List.filter_map
    (fun name ->
      match Schedulers.Registry.find name with
      | Some e ->
        Option.map (fun m -> (name, m)) (Schedulers.Registry.enoki_module e)
      | None -> None)
    Schedulers.Registry.dsq_names

let inert_queue ?mode name =
  Enoki.Lock.set_passthrough_mode ();
  Dsq.create ?mode (Enoki.Ctx.inert ()) name

let token ?(cpu = 0) pid = Sched.Private.create ~pid ~cpu ~gen:1

(* ---------- queue unit tests ---------- *)

let test_fifo_basic () =
  let q = inert_queue "t" in
  check Alcotest.bool "empty" true (Dsq.is_empty q);
  List.iter (fun pid -> Dsq.insert q (token pid)) [ 3; 1; 2 ];
  check Alcotest.int "length" 3 (Dsq.length q);
  check Alcotest.int "inserts counted" 3 (Dsq.inserts q);
  let order = List.map (fun (e : Dsq.entry) -> e.Dsq.pid) (Dsq.to_list q) in
  check Alcotest.(list int) "FIFO order" [ 3; 1; 2 ] order;
  check Alcotest.(option int) "peek is head" (Some 3)
    (Option.map (fun (e : Dsq.entry) -> e.Dsq.pid) (Dsq.peek q));
  let consumed = ref [] in
  let rec drain () =
    match Dsq.consume q with
    | Some e ->
      consumed := e.Dsq.pid :: !consumed;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "consume order" [ 3; 1; 2 ] (List.rev !consumed);
  check Alcotest.int "consumes counted" 3 (Dsq.consumes q)

let test_vtime_ordering () =
  let q = inert_queue ~mode:Dsq.Vtime "v" in
  List.iter
    (fun (pid, vt) -> Dsq.insert q ~vtime:vt (token pid))
    [ (1, 30); (2, 10); (3, 20); (4, 10) ];
  let order = List.map (fun (e : Dsq.entry) -> e.Dsq.pid) (Dsq.to_list q) in
  (* min vtime first; the two vtime-10 entries keep insertion order *)
  check Alcotest.(list int) "vtime order, stable ties" [ 2; 4; 3; 1 ] order

let test_take_for_and_silent_moves () =
  let q = inert_queue "cpus" in
  Dsq.insert q (token ~cpu:0 1);
  Dsq.insert q (token ~cpu:1 2);
  Dsq.insert q (token ~cpu:0 3);
  (* take_for skips entries licensed for other cpus *)
  let e = Option.get (Dsq.take_for q ~cpu:1) in
  check Alcotest.int "took the cpu-1 entry" 2 e.Dsq.pid;
  check Alcotest.(option Alcotest.int) "no more cpu-1 work" None
    (Option.map (fun (e : Dsq.entry) -> e.Dsq.pid) (Dsq.take_for q ~cpu:1));
  (* silent transfer: put appends, put_front restores the head, neither
     counts as an insert *)
  let inserts_before = Dsq.inserts q in
  let local = inert_queue "local" in
  Dsq.put local e;
  check Alcotest.int "moved entry keeps its stamp" e.Dsq.inserted_at
    (Option.get (Dsq.peek local)).Dsq.inserted_at;
  let head = Option.get (Dsq.consume q) in
  Dsq.put_front q head;
  check Alcotest.(option int) "put_front restores the head" (Some head.Dsq.pid)
    (Option.map (fun (e : Dsq.entry) -> e.Dsq.pid) (Dsq.peek q));
  check Alcotest.int "silent ops are not inserts" inserts_before (Dsq.inserts q);
  (* remove by pid from the middle *)
  let r = Option.get (Dsq.remove q ~pid:3) in
  check Alcotest.int "removed pid 3" 3 r.Dsq.pid;
  check Alcotest.int "one entry left" 1 (Dsq.length q)

(* ---------- queue properties ---------- *)

let prop_fifo_stable n =
  let n = n mod 100 in
  let q = inert_queue "p" in
  for pid = 0 to n - 1 do
    Dsq.insert q (token pid)
  done;
  let rec drain acc =
    match Dsq.consume q with Some e -> drain (e.Dsq.pid :: acc) | None -> List.rev acc
  in
  drain [] = List.init n Fun.id

let prop_vtime_monotone vtimes =
  let q = inert_queue ~mode:Dsq.Vtime "p" in
  List.iteri (fun pid vt -> Dsq.insert q ~vtime:vt (token pid)) vtimes;
  let rec drain acc =
    match Dsq.consume q with Some e -> drain (e :: acc) | None -> List.rev acc
  in
  let out = drain [] in
  List.length out = List.length vtimes
  &&
  let rec sorted = function
    | (a : Dsq.entry) :: (b : Dsq.entry) :: rest ->
      (* consume order is non-decreasing vtime, insertion order on ties *)
      (a.Dsq.vtime < b.Dsq.vtime || (a.Dsq.vtime = b.Dsq.vtime && a.Dsq.pid < b.Dsq.pid))
      && sorted (b :: rest)
    | _ -> true
  in
  sorted out

(* The dual-queue promotion bound, on the pure decision function: replay
   the adapter's streak updates over an arbitrary low_queued history and
   check the low queue never waits through more than [promote_after]
   consecutive high dispatches. *)
let prop_promotion_bound history =
  let streak = ref 0 and waited = ref 0 and ok = ref true in
  List.iter
    (fun low_queued ->
      match Schedulers.Scx_prio_dq.pick_source ~streak:!streak ~low_queued with
      | `Low ->
        if not low_queued then ok := false;
        streak := 0;
        waited := 0
      | `High ->
        if low_queued then begin
          incr streak;
          incr waited;
          if !waited > Schedulers.Scx_prio_dq.promote_after then ok := false
        end
        else waited := 0)
    history;
  !ok

(* ---------- the policy family, end to end ---------- *)

let build_sched ?record ?tracer sched =
  Workloads.Setup.build ?record ?tracer ~topology:Kernsim.Topology.one_socket
    (Workloads.Setup.Enoki_sched sched)

let test_registry_lists_dsq_family () =
  check Alcotest.int "three DSQ policies" 3 (List.length dsq_schedulers);
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " in --sched vocabulary") true
        (List.mem name Schedulers.Registry.names))
    Schedulers.Registry.dsq_names

let test_policies_run_sanitizer_clean () =
  List.iter
    (fun (name, sched) ->
      let nr_cpus = Kernsim.Topology.nr_cpus Kernsim.Topology.one_socket in
      let tracer = Trace.Tracer.create ~nr_cpus () in
      let s = Trace.Sanitizer.create ~nr_cpus () in
      Trace.Sanitizer.attach s tracer;
      let b = build_sched ~tracer sched in
      let r = Workloads.Pipe_bench.run b ~messages:2_000 () in
      check Alcotest.bool (name ^ ": pipe completed") true r.Workloads.Pipe_bench.completed;
      check Alcotest.int
        (name ^ ": no framework violations")
        0
        (Enoki.Enoki_c.violations (Option.get b.Workloads.Setup.enoki));
      if not (Trace.Sanitizer.ok s) then
        Alcotest.failf "%s: sanitizer found violations:\n%s" name
          (Trace.Sanitizer.report_string s))
    dsq_schedulers

let test_record_replay_stream_equivalence () =
  (* as test_enoki's cross-scheduler check: text and streamed binary logs
     of the same deterministic run are entry-equal, and the binary log
     replays clean against the same policy *)
  List.iter
    (fun (name, sched) ->
      Enoki.Lock.set_passthrough_mode ();
      let run_with record =
        let b = build_sched ~record sched in
        ignore (Workloads.Pipe_bench.run b ~messages:500 ())
      in
      let text = Enoki.Record.create ~format:Enoki.Record.Text () in
      run_with text;
      let text_log = Enoki.Record.contents text in
      let path = Filename.temp_file "enoki-dsq" ".rec" in
      let bin = Enoki.Record.create_file ~path () in
      run_with bin;
      Enoki.Record.close bin;
      let bin_log = Enoki.Record.load_file ~path in
      Sys.remove path;
      let t_entries = Enoki.Replay.parse text_log in
      let b_entries = Enoki.Replay.parse bin_log in
      check Alcotest.int (name ^ ": entry counts equal") (List.length t_entries)
        (List.length b_entries);
      List.iter2
        (fun a b' ->
          check Alcotest.string (name ^ ": entries equal") (Enoki.Replay.entry_line a)
            (Enoki.Replay.entry_line b'))
        t_entries b_entries;
      let report = Enoki.Replay.run sched ~log:bin_log in
      check
        Alcotest.(list (pair int string))
        (name ^ ": binary log replays clean")
        [] report.Enoki.Replay.mismatches)
    dsq_schedulers

let hog ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let test_live_upgrade_round_trip () =
  List.iter
    (fun (name, sched) ->
      let b = build_sched sched in
      let pids =
        List.init 6 (fun i ->
            M.spawn b.Workloads.Setup.machine
              { (T.default_spec ~name:(Printf.sprintf "h%d" i)
                   (hog ~chunk:(Kernsim.Time.ms 1) ~steps:30))
                with
                T.policy = b.Workloads.Setup.policy })
      in
      let e = Option.get b.Workloads.Setup.enoki in
      let stats = ref None in
      M.at b.Workloads.Setup.machine ~delay:(Kernsim.Time.ms 10) (fun () ->
          match Enoki.Enoki_c.upgrade e sched with
          | Ok s -> stats := Some s
          | Error exn -> raise exn);
      M.run_for b.Workloads.Setup.machine (Kernsim.Time.ms 200);
      (match !stats with
      | Some s ->
        check Alcotest.bool (name ^ ": state transferred") true s.Enoki.Upgrade.transferred;
        check Alcotest.bool (name ^ ": tasks carried") true (s.Enoki.Upgrade.tasks_carried >= 6)
      | None -> Alcotest.failf "%s: upgrade did not run" name);
      check Alcotest.int (name ^ ": no violations across upgrade") 0
        (Enoki.Enoki_c.violations e);
      List.iter
        (fun pid ->
          check Alcotest.bool (name ^ ": task survived upgrade") true
            ((Option.get (M.find_task b.Workloads.Setup.machine pid)).T.state = T.Dead))
        pids)
    dsq_schedulers

let expect_incompatible ~from_name from_sched to_sched =
  let b = build_sched from_sched in
  ignore
    (M.spawn b.Workloads.Setup.machine
       { (T.default_spec ~name:"h" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:50)) with
         T.policy = b.Workloads.Setup.policy });
  M.run_for b.Workloads.Setup.machine (Kernsim.Time.ms 5);
  let e = Option.get b.Workloads.Setup.enoki in
  (match Enoki.Enoki_c.upgrade e to_sched with
  | Error (Enoki.Upgrade.Incompatible _) -> ()
  | Error exn -> raise exn
  | Ok _ -> Alcotest.failf "%s: incompatible upgrade must be rejected" from_name);
  check Alcotest.string (from_name ^ " still registered") from_name
    (Enoki.Enoki_c.scheduler_name e);
  (* the rejected upgrade must leave the machine fully functional *)
  M.run_for b.Workloads.Setup.machine (Kernsim.Time.ms 200);
  check Alcotest.int (from_name ^ ": no tasks alive") 0
    (List.length
       (List.filter
          (fun (t : T.t) -> t.T.state <> T.Dead)
          (M.tasks b.Workloads.Setup.machine)))

let test_cross_policy_upgrade_rejected () =
  (* a Dsq_state transfer names its policy: another DSQ policy must refuse
     it, as must a non-DSQ scheduler (and vice versa) *)
  expect_incompatible ~from_name:"scx-simple" (module Schedulers.Scx_simple : Enoki.Sched_trait.S)
    (module Schedulers.Scx_rr : Enoki.Sched_trait.S);
  expect_incompatible ~from_name:"scx-simple" (module Schedulers.Scx_simple : Enoki.Sched_trait.S)
    (module Schedulers.Wfq : Enoki.Sched_trait.S);
  expect_incompatible ~from_name:"wfq" (module Schedulers.Wfq : Enoki.Sched_trait.S)
    (module Schedulers.Scx_prio_dq : Enoki.Sched_trait.S)

(* ---------- suite ---------- *)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let () =
  Alcotest.run "dsq"
    [
      ( "queue",
        [
          Alcotest.test_case "fifo basics" `Quick test_fifo_basic;
          Alcotest.test_case "vtime ordering" `Quick test_vtime_ordering;
          Alcotest.test_case "take_for and silent moves" `Quick test_take_for_and_silent_moves;
          qtest "FIFO consume order is insert order" QCheck.small_nat prop_fifo_stable;
          qtest "vtime consume order is monotone, ties stable"
            QCheck.(list small_nat)
            prop_vtime_monotone;
        ] );
      ( "prio-dq",
        [
          qtest ~count:200 "promotion bounds low-queue wait"
            QCheck.(list bool)
            prop_promotion_bound;
        ] );
      ( "policies",
        [
          Alcotest.test_case "registry lists the family" `Quick test_registry_lists_dsq_family;
          Alcotest.test_case "sanitizer-clean pipe runs" `Quick test_policies_run_sanitizer_clean;
          Alcotest.test_case "record/replay stream equivalence" `Quick
            test_record_replay_stream_equivalence;
          Alcotest.test_case "live upgrade round trip" `Quick test_live_upgrade_round_trip;
          Alcotest.test_case "cross-policy upgrade rejected" `Quick
            test_cross_policy_upgrade_rejected;
        ] );
    ]
