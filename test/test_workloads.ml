(* Integration tests of the workload generators: each experiment's moving
   parts produce sane, direction-correct results on scaled-down inputs. *)

let check = Alcotest.check

let one_socket = Kernsim.Topology.one_socket

let build kind = Workloads.Setup.build ~topology:one_socket kind

let cfs () = build Workloads.Setup.Cfs

let wfq () = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))

(* ---------- pipe ---------- *)

let test_pipe_completes () =
  let r = Workloads.Pipe_bench.run (cfs ()) ~messages:2_000 () in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.int "wakeups" 4_000 r.wakeups;
  check Alcotest.bool "latency in range" true (r.us_per_wakeup > 1.0 && r.us_per_wakeup < 20.0)

let test_pipe_same_core_cheaper_than_cross () =
  (* one core avoids IPIs and idle exits on this benchmark *)
  let one = Workloads.Pipe_bench.run (cfs ()) ~same_core:true ~messages:2_000 () in
  let two = Workloads.Pipe_bench.run (cfs ()) ~same_core:false ~messages:2_000 () in
  check Alcotest.bool "one-core cheaper" true (one.us_per_wakeup < two.us_per_wakeup)

let test_pipe_enoki_overhead_positive () =
  let c = Workloads.Pipe_bench.run (cfs ()) ~messages:2_000 () in
  let w = Workloads.Pipe_bench.run (wfq ()) ~messages:2_000 () in
  let delta = w.us_per_wakeup -. c.us_per_wakeup in
  (* the paper: ~0.4-0.6us of Enoki overhead per wakeup *)
  check Alcotest.bool "some overhead" true (delta > 0.1);
  check Alcotest.bool "not excessive" true (delta < 2.0)

let test_pipe_userlevel_is_fast () =
  let r = Workloads.Pipe_bench.run_userlevel (cfs ()) ~messages:2_000 () in
  check Alcotest.bool "sub-microsecond wakeups" true (r.us_per_wakeup < 0.5)

(* ---------- schbench ---------- *)

let quick_schbench =
  {
    (Workloads.Schbench.default_params ()) with
    warmup = Kernsim.Time.ms 100;
    duration = Kernsim.Time.ms 600;
    message_work = Kernsim.Time.ms 5;
  }

let test_schbench_produces_samples () =
  let r = Workloads.Schbench.run (cfs ()) quick_schbench in
  check Alcotest.bool "samples collected" true (r.samples > 50);
  check Alcotest.bool "p50 <= p99" true (r.p50 <= r.p99)

let test_schbench_pinned_tail_worse () =
  let spread = Workloads.Schbench.run (cfs ()) quick_schbench in
  let pinned =
    Workloads.Schbench.run (cfs ()) { quick_schbench with pin_one_core = true }
  in
  (* Table 6's claim: pinning everything to one core destroys the tail *)
  check Alcotest.bool "pinned p99 much worse" true (pinned.p99 > 3 * spread.p99)

let test_schbench_hints_beat_random () =
  let locality () = build (Workloads.Setup.Enoki_sched (module Schedulers.Locality)) in
  let random = Workloads.Schbench.run (locality ()) quick_schbench in
  let hinted =
    Workloads.Schbench.run (locality ()) { quick_schbench with locality_hints = true }
  in
  check Alcotest.bool "hints reduce p99" true (hinted.p99 < random.p99)

(* ---------- apps ---------- *)

let test_apps_all_families_complete () =
  let quick =
    [
      Workloads.Apps.
        { name = "pc"; unit_ = "x"; seed = 1;
          family = Parallel_compute { tasks_per_core = 1.0; chunk = Kernsim.Time.us 200; steps = 10; barrier = true } };
      Workloads.Apps.
        { name = "fj"; unit_ = "x"; seed = 2;
          family = Fork_join { waves = 3; tasks_per_wave = 4; work = Kernsim.Time.us 300; skew = 0.5 } };
      Workloads.Apps.
        { name = "pcons"; unit_ = "x"; seed = 3;
          family = Producer_consumer { pairs = 2; items = 50; work = Kernsim.Time.us 100 } };
      Workloads.Apps.
        { name = "io"; unit_ = "x"; seed = 4;
          family = Io_mix { tasks = 6; compute = Kernsim.Time.us 100; sleep = Kernsim.Time.us 200; iters = 20 } };
      Workloads.Apps.
        { name = "unbal"; unit_ = "x"; seed = 5;
          family = Unbalanced { tasks = 6; base = Kernsim.Time.us 500; skew = 2.0; steps = 5 } };
    ]
  in
  List.iter
    (fun app ->
      let r = Workloads.Apps.run (cfs ()) app in
      if r.score <= 0.0 then Alcotest.failf "%s: nonpositive score" app.Workloads.Apps.name;
      if r.elapsed <= 0 then Alcotest.failf "%s: no elapsed time" app.Workloads.Apps.name)
    quick

let test_apps_catalog_sizes () =
  check Alcotest.int "9 NAS apps" 9 (List.length Workloads.Apps.nas);
  check Alcotest.int "27 Phoronix apps" 27 (List.length Workloads.Apps.phoronix)

let test_apps_wfq_close_to_cfs () =
  (* one representative app: the schedulers must be within a few percent *)
  let app = List.nth Workloads.Apps.nas 4 (* IS *) in
  let c = (Workloads.Apps.run (cfs ()) app).score in
  let w = (Workloads.Apps.run (wfq ()) app).score in
  let diff = Float.abs (Stats.Summary.percent_diff ~baseline:c ~value:w) in
  check Alcotest.bool "within 5%" true (diff < 5.0)

(* ---------- rocksdb ---------- *)

let quick_rocksdb load =
  {
    (Workloads.Rocksdb.default_params ~load_kreqs:load ~with_batch:false ()) with
    warmup = Kernsim.Time.ms 100;
    duration = Kernsim.Time.ms 500;
  }

let test_rocksdb_achieves_offered_load () =
  let r = Workloads.Rocksdb.run (cfs ()) (quick_rocksdb 30.0) in
  check Alcotest.bool "achieved within 10% of offered" true
    (Float.abs (r.achieved_kreqs -. 30.0) < 3.0)

let test_rocksdb_shinjuku_beats_cfs_tail () =
  let c = Workloads.Rocksdb.run (cfs ()) (quick_rocksdb 50.0) in
  let s =
    Workloads.Rocksdb.run
      (build (Workloads.Setup.Enoki_sched (module Schedulers.Shinjuku)))
      (quick_rocksdb 50.0)
  in
  (* the Figure 2a claim at moderate-high load *)
  check Alcotest.bool "shinjuku tail lower" true (s.p99_us < c.p99_us)

let test_rocksdb_batch_share_declines () =
  let quick load =
    {
      (Workloads.Rocksdb.default_params ~load_kreqs:load ~with_batch:true ()) with
      warmup = Kernsim.Time.ms 100;
      duration = Kernsim.Time.ms 500;
    }
  in
  let low = Workloads.Rocksdb.run (cfs ()) (quick 20.0) in
  let high = Workloads.Rocksdb.run (cfs ()) (quick 70.0) in
  check Alcotest.bool "batch cpus decline with load" true (high.batch_cpus < low.batch_cpus);
  check Alcotest.bool "batch gets something" true (low.batch_cpus > 1.0)

(* ---------- memcached ---------- *)

let quick_mc mode load =
  {
    (Workloads.Memcached.default_params ~mode ~load_kreqs:load ()) with
    warmup = Kernsim.Time.ms 100;
    duration = Kernsim.Time.ms 500;
  }

let test_memcached_cfs_serves () =
  let r = Workloads.Memcached.run (cfs ()) (quick_mc Workloads.Memcached.Cfs 100.0) in
  check Alcotest.bool "achieved close to offered" true
    (Float.abs (r.achieved_kreqs -. 100.0) < 10.0)

let test_memcached_arachne_scales_cores () =
  let arachne () = build (Workloads.Setup.Enoki_sched (module Schedulers.Arachne)) in
  let low =
    Workloads.Memcached.run (arachne ()) (quick_mc Workloads.Memcached.Arachne_enoki 50.0)
  in
  let high =
    Workloads.Memcached.run (arachne ()) (quick_mc Workloads.Memcached.Arachne_enoki 300.0)
  in
  check Alcotest.bool "more load, more cores" true (high.avg_cores > low.avg_cores +. 1.0);
  check Alcotest.bool "scales within 2..7" true (high.avg_cores <= 7.2)

(* ---------- fairness (appendix) ---------- *)

let test_fairness_colocated_5x () =
  let work = Kernsim.Time.ms 50 in
  let spread = Workloads.Fairness.fair_share (cfs ()) ~colocated:false ~work in
  let colocated = Workloads.Fairness.fair_share (cfs ()) ~colocated:true ~work in
  let ratio = Stats.Summary.mean colocated /. Stats.Summary.mean spread in
  check Alcotest.bool "~5x when sharing one core" true (ratio > 4.0 && ratio < 6.5)

let test_fairness_low_prio_finishes_last () =
  let work = Kernsim.Time.ms 50 in
  let normals, low = Workloads.Fairness.weighted (wfq ()) ~work in
  List.iter
    (fun n -> check Alcotest.bool "low-prio finishes after normals" true (low >= n))
    normals

let test_fairness_placement_stdev () =
  let work = Kernsim.Time.ms 50 in
  let _, stdev_stay = Workloads.Fairness.placement (cfs ()) ~move:false ~work in
  check Alcotest.bool "clean placement has tiny variation" true (stdev_stay < 0.01)

(* ---------- setup ---------- *)

(* Zero-alloc proof for the event hot path: with tracing and metrics off
   (the default [Setup.build]), a pinned pipe-bench segment must allocate
   (amortised) almost nothing per dispatched event.  The ceiling of 8
   bytes/event leaves room for the fixed setup cost (task spawn, channels,
   behaviour closures) spread over the run while still failing loudly if
   any per-event boxing sneaks back in — a single 3-word record per event
   would read as ~24 B/event here. *)
let test_pipe_zero_alloc () =
  let messages = 5_000 in
  let b = build Workloads.Setup.Cfs in
  let before = Gc.allocated_bytes () in
  ignore (Workloads.Pipe_bench.run b ~messages ());
  let after = Gc.allocated_bytes () in
  let events = Kernsim.Machine.events_dispatched b.Workloads.Setup.machine in
  let per_event = (after -. before) /. float_of_int events in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "bytes/event %.2f below 8.0 (%d events)" per_event events)
    true
    (per_event < 8.0)

let test_setup_labels () =
  check Alcotest.string "cfs" "cfs" (Workloads.Setup.label Workloads.Setup.Cfs);
  check Alcotest.string "ghost" "ghost-sol"
    (Workloads.Setup.label (Workloads.Setup.Ghost Schedulers.Ghost_sim.Sol));
  check Alcotest.string "enoki" "enoki:wfq"
    (Workloads.Setup.label (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)))

let test_setup_agent_core () =
  let g = build (Workloads.Setup.Ghost Schedulers.Ghost_sim.Sol) in
  check Alcotest.(option int) "sol reserves last cpu" (Some 7) g.agent_core;
  let c = cfs () in
  check Alcotest.(option int) "cfs reserves none" None c.agent_core

let () =
  Alcotest.run "workloads"
    [
      ( "pipe",
        [
          Alcotest.test_case "completes" `Quick test_pipe_completes;
          Alcotest.test_case "same-core cheaper" `Quick test_pipe_same_core_cheaper_than_cross;
          Alcotest.test_case "enoki overhead bounded" `Quick test_pipe_enoki_overhead_positive;
          Alcotest.test_case "userlevel fast" `Quick test_pipe_userlevel_is_fast;
        ] );
      ( "schbench",
        [
          Alcotest.test_case "produces samples" `Quick test_schbench_produces_samples;
          Alcotest.test_case "pinned tail worse" `Quick test_schbench_pinned_tail_worse;
          Alcotest.test_case "hints beat random" `Quick test_schbench_hints_beat_random;
        ] );
      ( "apps",
        [
          Alcotest.test_case "all families complete" `Quick test_apps_all_families_complete;
          Alcotest.test_case "catalog sizes" `Quick test_apps_catalog_sizes;
          Alcotest.test_case "wfq close to cfs" `Quick test_apps_wfq_close_to_cfs;
        ] );
      ( "rocksdb",
        [
          Alcotest.test_case "achieves offered load" `Quick test_rocksdb_achieves_offered_load;
          Alcotest.test_case "shinjuku beats cfs tail" `Quick test_rocksdb_shinjuku_beats_cfs_tail;
          Alcotest.test_case "batch share declines" `Quick test_rocksdb_batch_share_declines;
        ] );
      ( "memcached",
        [
          Alcotest.test_case "cfs serves" `Quick test_memcached_cfs_serves;
          Alcotest.test_case "arachne scales cores" `Quick test_memcached_arachne_scales_cores;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "colocated 5x" `Quick test_fairness_colocated_5x;
          Alcotest.test_case "low prio last" `Quick test_fairness_low_prio_finishes_last;
          Alcotest.test_case "placement stdev" `Quick test_fairness_placement_stdev;
        ] );
      ( "setup",
        [
          Alcotest.test_case "labels" `Quick test_setup_labels;
          Alcotest.test_case "agent core" `Quick test_setup_agent_core;
          Alcotest.test_case "pipe hot path zero-alloc" `Quick test_pipe_zero_alloc;
        ] );
    ]
