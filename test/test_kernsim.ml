(* Integration tests for the kernel simulator with the native CFS class. *)

module T = Kernsim.Task
module M = Kernsim.Machine

let check = Alcotest.check

let make_machine ?(topology = Kernsim.Topology.one_socket) () =
  M.create ~topology ~classes:[ Kernsim.Cfs.factory () ] ()

(* A task that computes [compute] then exits. *)
let one_shot compute =
  let done_ = ref false in
  fun (_ : T.ctx) ->
    if !done_ then T.Exit
    else begin
      done_ := true;
      T.Compute compute
    end

(* A task computing [chunk] per step, [steps] times. *)
let hog ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let test_sim_event_order () =
  let sim = Kernsim.Sim.create () in
  let log = ref [] in
  Kernsim.Sim.at sim ~time:20 (fun () -> log := 2 :: !log);
  Kernsim.Sim.at sim ~time:10 (fun () -> log := 1 :: !log);
  Kernsim.Sim.at sim ~time:20 (fun () -> log := 3 :: !log);
  Kernsim.Sim.run sim;
  check Alcotest.(list int) "time then insertion order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "clock at last event" 20 (Kernsim.Sim.now sim)

let test_sim_run_until () =
  let sim = Kernsim.Sim.create () in
  let fired = ref 0 in
  Kernsim.Sim.at sim ~time:10 (fun () -> incr fired);
  Kernsim.Sim.at sim ~time:30 (fun () -> incr fired);
  Kernsim.Sim.run_until sim ~until:20;
  check Alcotest.int "only first fired" 1 !fired;
  check Alcotest.int "clock advanced to until" 20 (Kernsim.Sim.now sim)

(* A negative delay is a caller bug (broken cost model) and must fail
   loudly on both backends instead of being clamped into a silent
   same-tick reorder; zero stays legal. *)
let test_sim_negative_delay () =
  List.iter
    (fun backend ->
      let sim = Kernsim.Sim.create ~backend () in
      let fired = ref 0 in
      Alcotest.check_raises "after rejects negative"
        (Invalid_argument "Sim.after: negative delay") (fun () ->
          Kernsim.Sim.after sim ~delay:(-1) (fun () -> incr fired));
      let tm = Kernsim.Sim.timer sim (fun () -> incr fired) in
      Alcotest.check_raises "arm_after rejects negative"
        (Invalid_argument "Sim.arm_after: negative delay") (fun () ->
          Kernsim.Sim.arm_after sim tm ~delay:(-7));
      (* zero-delay events are legal and run at the current clock *)
      Kernsim.Sim.after sim ~delay:0 (fun () -> incr fired);
      Kernsim.Sim.arm_after sim tm ~delay:0;
      Kernsim.Sim.run sim;
      check Alcotest.int "zero-delay events fired" 2 !fired;
      check Alcotest.int "clock unmoved" 0 (Kernsim.Sim.now sim))
    [ `Wheel; `Heap ]

(* Both Sim backends must produce bit-identical dispatch orders under
   arbitrary arm -> re-arm -> cancel interleavings, including operations
   performed from inside event callbacks and across run_until segment
   boundaries.  The script is generated once from the seed and replayed
   against each backend. *)
let prop_sim_backend_equiv seed =
  let script =
    let rng = Stats.Prng.create ~seed in
    List.init 64 (fun _ ->
        (Stats.Prng.int rng 400, Stats.Prng.int rng 8, Stats.Prng.int rng 3, Stats.Prng.int rng 600))
  in
  let run backend =
    let sim = Kernsim.Sim.create ~backend () in
    let log = ref [] in
    let timers = Array.init 8 (fun i -> Kernsim.Sim.timer sim (fun () -> log := (1000 + i) :: !log)) in
    List.iteri
      (fun k (at, j, action, d) ->
        Kernsim.Sim.at sim ~time:at (fun () ->
            log := -(k + 1) :: !log;
            match action with
            | 0 -> Kernsim.Sim.arm_after sim timers.(j) ~delay:d
            | 1 -> Kernsim.Sim.cancel sim timers.(j)
            | _ -> Kernsim.Sim.after sim ~delay:d (fun () -> log := (2000 + k) :: !log)))
      script;
    (* chunked bounded runs exercise the until-gating, then drain *)
    Kernsim.Sim.run_until sim ~until:300;
    Kernsim.Sim.run_until sim ~until:700;
    Kernsim.Sim.run sim;
    (List.rev !log, Kernsim.Sim.now sim, Kernsim.Sim.dispatched sim)
  in
  let w = run `Wheel and h = run `Heap in
  if w <> h then
    QCheck.Test.fail_reportf "backends diverged on seed %d (wheel %d events, heap %d events)" seed
      (match w with _, _, n -> n)
      (match h with _, _, n -> n);
  true

let test_single_task_runs_and_exits () =
  let m = make_machine () in
  let pid = M.spawn m (T.default_spec ~name:"solo" (one_shot (Kernsim.Time.ms 5))) in
  M.run_for m (Kernsim.Time.ms 20);
  let task = Option.get (M.find_task m pid) in
  check Alcotest.bool "task exited" true (task.T.state = T.Dead);
  check Alcotest.bool "consumed ~5ms cpu"
    true
    (abs (task.T.sum_exec - Kernsim.Time.ms 5) < Kernsim.Time.us 10)

let test_tasks_spread_across_cores () =
  let m = make_machine () in
  let pids =
    List.init 8 (fun i ->
        M.spawn m (T.default_spec ~name:(Printf.sprintf "hog%d" i) (one_shot (Kernsim.Time.ms 50))))
  in
  M.run_for m (Kernsim.Time.ms 10);
  let cpus = List.map (fun pid -> (Option.get (M.find_task m pid)).T.cpu) pids in
  let distinct = List.sort_uniq Int.compare cpus in
  check Alcotest.int "8 hogs on 8 distinct cores" 8 (List.length distinct)

let test_fair_sharing_one_core () =
  (* two equal hogs pinned to one core must each get ~half the cpu *)
  let m = make_machine () in
  let spec name =
    { (T.default_spec ~name (hog ~chunk:(Kernsim.Time.ms 1) ~steps:200)) with T.affinity = Some [ 0 ] }
  in
  let a = M.spawn m (spec "a") and b = M.spawn m (spec "b") in
  M.run_for m (Kernsim.Time.ms 100);
  let ta = Option.get (M.find_task m a) and tb = Option.get (M.find_task m b) in
  let ra = float_of_int ta.T.sum_exec and rb = float_of_int tb.T.sum_exec in
  check Alcotest.bool "both ran" true (ra > 0.0 && rb > 0.0);
  let ratio = ra /. rb in
  if ratio < 0.8 || ratio > 1.25 then
    Alcotest.failf "unfair split: %f vs %f (ratio %f)" ra rb ratio

let test_weighted_sharing () =
  (* nice 0 vs nice 5: weights 1024 vs 335, expect ~3x the cpu time *)
  let m = make_machine () in
  let spec name nice =
    {
      (T.default_spec ~name (hog ~chunk:(Kernsim.Time.ms 1) ~steps:500)) with
      T.affinity = Some [ 0 ];
      nice;
    }
  in
  let a = M.spawn m (spec "hi" 0) and b = M.spawn m (spec "lo" 5) in
  M.run_for m (Kernsim.Time.ms 200);
  let ta = Option.get (M.find_task m a) and tb = Option.get (M.find_task m b) in
  let ratio = float_of_int ta.T.sum_exec /. float_of_int (max 1 tb.T.sum_exec) in
  if ratio < 2.0 || ratio > 4.5 then
    Alcotest.failf "weighted split off: %d vs %d (ratio %f, want ~3)" ta.T.sum_exec tb.T.sum_exec
      ratio

let test_block_wake_pingpong () =
  (* two tasks bouncing a message: both must make progress and block/wake
     counts must match *)
  let m = make_machine () in
  let ch_ab = M.new_chan m and ch_ba = M.new_chan m in
  let iters = 100 in
  let mk_ping () =
    let n = ref 0 and st = ref `Send in
    fun (_ : T.ctx) ->
      match !st with
      | `Send ->
        st := `Wait;
        T.Wake ch_ab
      | `Wait ->
        st := `Step;
        T.Block ch_ba
      | `Step ->
        incr n;
        if !n >= iters then T.Exit
        else begin
          st := `Wait;
          T.Wake ch_ab
        end
  in
  let mk_pong () =
    let n = ref 0 and st = ref `Wait in
    fun (_ : T.ctx) ->
      match !st with
      | `Wait ->
        if !n >= iters then T.Exit
        else begin
          st := `Reply;
          T.Block ch_ab
        end
      | `Reply ->
        incr n;
        st := `Wait;
        T.Wake ch_ba
  in
  let a = M.spawn m (T.default_spec ~name:"ping" (mk_ping ())) in
  let b = M.spawn m (T.default_spec ~name:"pong" (mk_pong ())) in
  M.run_for m (Kernsim.Time.sec 2);
  let ta = Option.get (M.find_task m a) and tb = Option.get (M.find_task m b) in
  check Alcotest.bool "ping exited" true (ta.T.state = T.Dead);
  check Alcotest.bool "pong exited" true (tb.T.state = T.Dead)

let test_sleep_wakes_up () =
  let m = make_machine () in
  let woke_at = ref (-1) in
  let beh =
    let st = ref `Sleep in
    fun (ctx : T.ctx) ->
      match !st with
      | `Sleep ->
        st := `After;
        T.Sleep (Kernsim.Time.ms 3)
      | `After ->
        woke_at := ctx.T.now;
        T.Exit
  in
  ignore (M.spawn m (T.default_spec ~name:"sleeper" beh));
  M.run_for m (Kernsim.Time.ms 10);
  check Alcotest.bool "woke after ~3ms" true (!woke_at >= Kernsim.Time.ms 3);
  check Alcotest.bool "woke promptly" true (!woke_at < Kernsim.Time.ms 4)

let test_spawn_action () =
  let m = make_machine () in
  let child_ran = ref false in
  let child_beh (_ : T.ctx) =
    child_ran := true;
    T.Exit
  in
  let parent =
    let st = ref `Spawn in
    fun (_ : T.ctx) ->
      match !st with
      | `Spawn ->
        st := `Done;
        T.Spawn (T.default_spec ~name:"child" child_beh)
      | `Done -> T.Exit
  in
  ignore (M.spawn m (T.default_spec ~name:"parent" parent));
  M.run_for m (Kernsim.Time.ms 5);
  check Alcotest.bool "child ran" true !child_ran

let test_yield_alternates () =
  let m = make_machine () in
  let order = ref [] in
  let mk tag =
    let n = ref 0 in
    fun (_ : T.ctx) ->
      if !n >= 3 then T.Exit
      else begin
        incr n;
        order := tag :: !order;
        T.Yield
      end
  in
  let spec name beh = { (T.default_spec ~name beh) with T.affinity = Some [ 0 ] } in
  ignore (M.spawn m (spec "a" (mk "a")));
  ignore (M.spawn m (spec "b" (mk "b")));
  M.run_for m (Kernsim.Time.ms 5);
  let seq = List.rev !order in
  check Alcotest.int "both ran 3 times" 6 (List.length seq);
  check Alcotest.bool "interleaved" true (List.exists (( = ) "b") seq)

let test_wakeup_latency_recorded () =
  let m = make_machine () in
  ignore (M.spawn m (T.default_spec ~name:"s" (one_shot (Kernsim.Time.us 100))));
  M.run_for m (Kernsim.Time.ms 2);
  let h = Kernsim.Accounting.wakeup_latency (M.metrics m) in
  check Alcotest.bool "samples exist" true (Stats.Histogram.count h >= 1)

let test_busy_accounting () =
  let m = make_machine () in
  ignore (M.spawn m (T.default_spec ~name:"x" (one_shot (Kernsim.Time.ms 2)))) ;
  M.run_for m (Kernsim.Time.ms 10);
  let busy = Kernsim.Accounting.total_busy (M.metrics m) in
  check Alcotest.bool "~2ms busy" true (busy >= Kernsim.Time.ms 2 && busy < Kernsim.Time.ms 3)

let test_set_nice_applies () =
  let m = make_machine () in
  let pid = M.spawn m (T.default_spec ~name:"n" (one_shot (Kernsim.Time.ms 50))) in
  M.run_for m (Kernsim.Time.ms 1);
  M.set_nice m ~pid ~nice:10;
  let task = Option.get (M.find_task m pid) in
  check Alcotest.int "nice set" 10 task.T.nice

let test_affinity_restricts () =
  let m = make_machine () in
  let spec =
    { (T.default_spec ~name:"pin" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:20)) with
      T.affinity = Some [ 3 ] }
  in
  let pid = M.spawn m spec in
  M.run_for m (Kernsim.Time.ms 5);
  let task = Option.get (M.find_task m pid) in
  check Alcotest.int "stays on cpu 3" 3 task.T.cpu

let test_chan_semaphore_semantics () =
  (* a Wake before any Block must not be lost *)
  let m = make_machine () in
  let ch = M.new_chan m in
  let consumer_done = ref false in
  let producer =
    let st = ref `Go in
    fun (_ : T.ctx) ->
      match !st with
      | `Go ->
        st := `Done;
        T.Wake ch
      | `Done -> T.Exit
  in
  let consumer =
    let st = ref `Sleep in
    fun (_ : T.ctx) ->
      match !st with
      | `Sleep ->
        st := `Take;
        T.Sleep (Kernsim.Time.ms 2) (* let the producer signal first *)
      | `Take ->
        st := `Done;
        T.Block ch
      | `Done ->
        consumer_done := true;
        T.Exit
  in
  ignore (M.spawn m (T.default_spec ~name:"prod" producer));
  ignore (M.spawn m (T.default_spec ~name:"cons" consumer));
  M.run_for m (Kernsim.Time.ms 10);
  check Alcotest.bool "signal not lost" true !consumer_done

let test_many_tasks_many_cores_progress () =
  let m = make_machine ~topology:Kernsim.Topology.two_socket () in
  let pids =
    List.init 120 (fun i ->
        M.spawn m (T.default_spec ~name:(Printf.sprintf "w%d" i) (hog ~chunk:(Kernsim.Time.us 500) ~steps:20)))
  in
  M.run_for m (Kernsim.Time.ms 100);
  let finished =
    List.length (List.filter (fun pid -> (Option.get (M.find_task m pid)).T.state = T.Dead) pids)
  in
  check Alcotest.int "all 120 finished (work conservation)" 120 finished

let test_cfs_weight_table () =
  check Alcotest.int "nice 0" 1024 (Kernsim.Cfs.weight_of_nice 0);
  check Alcotest.int "nice -20" 88761 (Kernsim.Cfs.weight_of_nice (-20));
  check Alcotest.int "nice 19" 15 (Kernsim.Cfs.weight_of_nice 19);
  check Alcotest.int "clamped" 15 (Kernsim.Cfs.weight_of_nice 40)

let test_topology () =
  let t = Kernsim.Topology.two_socket in
  check Alcotest.int "cpus" 80 (Kernsim.Topology.nr_cpus t);
  check Alcotest.int "node of 0" 0 (Kernsim.Topology.node_of t 0);
  check Alcotest.int "node of 79" 1 (Kernsim.Topology.node_of t 79);
  check Alcotest.bool "same node" true (Kernsim.Topology.same_node t 0 39);
  check Alcotest.bool "cross node" false (Kernsim.Topology.same_node t 39 40);
  check Alcotest.int "node size" 40 (List.length (Kernsim.Topology.node_cpus t 5))

let test_time_pp () =
  check Alcotest.string "us" "3.6us" (Kernsim.Time.to_string 3600);
  check Alcotest.string "ns" "500ns" (Kernsim.Time.to_string 500);
  check Alcotest.string "ms" "2.00ms" (Kernsim.Time.to_string (Kernsim.Time.ms 2))

let () =
  Alcotest.run "kernsim"
    [
      ( "sim",
        [
          Alcotest.test_case "event order" `Quick test_sim_event_order;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "negative delay rejected" `Quick test_sim_negative_delay;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:100 ~name:"backend equivalence under arm/re-arm/cancel"
               QCheck.(int_bound 1_000_000)
               prop_sim_backend_equiv);
        ] );
      ( "machine",
        [
          Alcotest.test_case "single task" `Quick test_single_task_runs_and_exits;
          Alcotest.test_case "spread across cores" `Quick test_tasks_spread_across_cores;
          Alcotest.test_case "block/wake pingpong" `Quick test_block_wake_pingpong;
          Alcotest.test_case "sleep wakes" `Quick test_sleep_wakes_up;
          Alcotest.test_case "spawn action" `Quick test_spawn_action;
          Alcotest.test_case "yield alternates" `Quick test_yield_alternates;
          Alcotest.test_case "wakeup latency metric" `Quick test_wakeup_latency_recorded;
          Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
          Alcotest.test_case "set_nice" `Quick test_set_nice_applies;
          Alcotest.test_case "affinity" `Quick test_affinity_restricts;
          Alcotest.test_case "chan semaphore" `Quick test_chan_semaphore_semantics;
          Alcotest.test_case "many tasks progress" `Quick test_many_tasks_many_cores_progress;
        ] );
      ( "cfs",
        [
          Alcotest.test_case "fair sharing" `Quick test_fair_sharing_one_core;
          Alcotest.test_case "weighted sharing" `Quick test_weighted_sharing;
          Alcotest.test_case "weight table" `Quick test_cfs_weight_table;
        ] );
      ( "topology",
        [
          Alcotest.test_case "two socket" `Quick test_topology;
          Alcotest.test_case "time pp" `Quick test_time_pp;
        ] );
    ]
