(* Cross-cutting property tests: invariants that must hold for every
   scheduler on randomly generated workloads.

   - liveness / work conservation: every spawned task eventually finishes
     when the machine has capacity;
   - safety: no Schedulable violations ever arise from correct schedulers;
   - record/replay: a recorded run replays against the same scheduler code
     with every reply matching (the §3.4 determinism argument). *)

module T = Kernsim.Task
module M = Kernsim.Machine

let schedulers : (string * (module Enoki.Sched_trait.S)) list =
  [
    ("fifo", (module Schedulers.Fifo_sched));
    ("wfq", (module Schedulers.Wfq));
    ("shinjuku", (module Schedulers.Shinjuku));
    ("locality", (module Schedulers.Locality));
    ("nest", (module Schedulers.Nest));
    ("edf", (module Schedulers.Edf));
  ]

(* a random but finite task mix: compute bursts, sleeps, channel traffic *)
let spawn_random_workload m ~policy ~rng ~tasks =
  let ch = M.new_chan m in
  let total_work = ref 0 in
  let pids =
    List.init tasks (fun i ->
        let steps = ref (5 + Stats.Prng.int rng 15) in
        let beh (_ : T.ctx) =
          if !steps = 0 then T.Exit
          else begin
            decr steps;
            match Stats.Prng.int rng 6 with
            | 0 | 1 ->
              let d = 1 + Stats.Prng.int rng 800_000 in
              total_work := !total_work + d;
              T.Compute d
            | 2 -> T.Sleep (1 + Stats.Prng.int rng 300_000)
            | 3 -> T.Wake ch
            | 4 -> T.Yield
            | _ -> if Stats.Prng.bool rng then T.Wake ch else T.Block ch
          end
        in
        let affinity = if Stats.Prng.int rng 4 = 0 then Some [ Stats.Prng.int rng 8 ] else None in
        M.spawn m
          {
            (T.default_spec ~name:(Printf.sprintf "r%d" i) beh) with
            T.policy;
            nice = Stats.Prng.int rng 20 - 10;
            affinity;
          })
  in
  (pids, ch, total_work)

(* blocked-forever tasks are legitimate (a Block with no matching Wake);
   release them by flooding the channel at the end *)
let release m ch =
  let flood =
    let n = ref 64 in
    fun (_ : T.ctx) ->
      if !n = 0 then T.Exit
      else begin
        decr n;
        T.Wake ch
      end
  in
  ignore (M.spawn m (T.default_spec ~name:"flood" flood))

let prop_tasks_finish (name, modul) seed =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched modul)
  in
  let rng = Stats.Prng.create ~seed in
  let pids, ch, total_work = spawn_random_workload b.machine ~policy:b.policy ~rng ~tasks:10 in
  M.run_for b.machine (Kernsim.Time.ms 400);
  release b.machine ch;
  M.run_for b.machine (Kernsim.Time.ms 200);
  let unfinished =
    List.filter
      (fun pid -> (Option.get (M.find_task b.machine pid)).T.state <> T.Dead)
      pids
  in
  (match b.enoki with
  | Some e ->
    if Enoki.Enoki_c.violations e > 0 then
      QCheck.Test.fail_reportf "%s: %d Schedulable violations (seed %d)" name
        (Enoki.Enoki_c.violations e) seed
  | None -> ());
  if unfinished <> [] then
    QCheck.Test.fail_reportf "%s: %d tasks never finished (seed %d)" name
      (List.length unfinished) seed;
  (* the consumed cpu time covers the generated compute demand *)
  let consumed =
    List.fold_left
      (fun acc pid -> acc + (Option.get (M.find_task b.machine pid)).T.sum_exec)
      0 pids
  in
  if consumed < !total_work then
    QCheck.Test.fail_reportf "%s: consumed %d < demanded %d (seed %d)" name consumed !total_work
      seed;
  true

let prop_record_replay_roundtrip seed =
  (* record a random workload on WFQ, replay against the same code *)
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create ~capacity:(1 lsl 18) () in
  let b =
    Workloads.Setup.build ~record ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  let rng = Stats.Prng.create ~seed in
  let _, ch, _ = spawn_random_workload b.machine ~policy:b.policy ~rng ~tasks:8 in
  M.run_for b.machine (Kernsim.Time.ms 200);
  release b.machine ch;
  M.run_for b.machine (Kernsim.Time.ms 100);
  let log = Enoki.Record.contents record in
  let report = Enoki.Replay.run (module Schedulers.Wfq) ~log in
  if report.Enoki.Replay.mismatches <> [] then
    QCheck.Test.fail_reportf "replay diverged on seed %d: %d mismatches (first: %s)" seed
      (List.length report.Enoki.Replay.mismatches)
      (match report.Enoki.Replay.mismatches with
      | (line, msg) :: _ -> Printf.sprintf "line %d: %s" line msg
      | [] -> "");
  report.Enoki.Replay.total_calls > 0

let prop_message_fuzz_roundtrip (pid, cpu, gen, runtime) =
  let pid = abs pid and cpu = abs cpu mod 128 and gen = abs gen and runtime = abs runtime in
  let s = Enoki.Schedulable.Private.create ~pid ~cpu ~gen in
  let calls =
    [
      Enoki.Message.Task_wakeup { pid; runtime; waker_cpu = cpu; sched = s };
      Enoki.Message.Task_blocked { pid; runtime; cpu };
      Enoki.Message.Select_task_rq { pid; waker_cpu = cpu; allowed = [ cpu; cpu + 1 ] };
      Enoki.Message.Pick_next_task { cpu; curr = Some s; curr_runtime = runtime };
    ]
  in
  List.for_all
    (fun c ->
      let line = Enoki.Message.encode_call c in
      Enoki.Message.encode_call (Enoki.Message.decode_call line) = line
      &&
      let buf = Buffer.create 64 in
      Enoki.Message.put_call buf c;
      let cur = Enoki.Wire.cursor (Buffer.contents buf) in
      let c' = Enoki.Message.get_call cur in
      Enoki.Wire.at_end cur && Enoki.Message.encode_call c' = line)
    calls

(* payloads chosen to break a delimiter-based log: the text codec must
   escape them onto one line, the binary codec must keep them byte-exact *)
let adversarial_string =
  let gen =
    QCheck.Gen.(
      let fragment =
        oneof
          [
            return " => ";
            return "\n";
            return "%";
            return " ";
            return "# enoki-record: events=1 dropped=2";
            return "C 3 pick_next_task";
            string_size ~gen:printable (int_range 0 16);
          ]
      in
      map (String.concat "") (list_size (int_range 0 12) fragment))
  in
  QCheck.make ~print:String.escaped gen

let binary_call_roundtrip c =
  let buf = Buffer.create 64 in
  Enoki.Message.put_call buf c;
  let cur = Enoki.Wire.cursor (Buffer.contents buf) in
  let c' = Enoki.Message.get_call cur in
  Enoki.Wire.at_end cur && Enoki.Message.encode_call c' = Enoki.Message.encode_call c

let prop_adversarial_payload_roundtrip (err, payload) =
  let s = Enoki.Schedulable.Private.create ~pid:7 ~cpu:1 ~gen:2 in
  let calls =
    [
      Enoki.Message.Pnt_err { cpu = 1; pid = 7; err; sched = Some s };
      Enoki.Message.Pnt_err { cpu = 0; pid = 3; err; sched = None };
      Enoki.Message.Parse_hint { pid = 7; hint = Enoki.Hint_codec.Opaque payload };
    ]
  in
  List.for_all
    (fun c ->
      let line = Enoki.Message.encode_call c in
      (* the text form must survive the line-delimited debug log *)
      (not (String.contains line '\n'))
      && Enoki.Message.encode_call (Enoki.Message.decode_call line) = line
      && binary_call_roundtrip c)
    calls
  (* and the binary form must hand back the payload bytes untouched *)
  && (let buf = Buffer.create 64 in
      Enoki.Message.put_call buf (Enoki.Message.Parse_hint { pid = 1; hint = Enoki.Hint_codec.Opaque payload });
      match Enoki.Message.get_call (Enoki.Wire.cursor (Buffer.contents buf)) with
      | Enoki.Message.Parse_hint { hint = Enoki.Hint_codec.Opaque p; _ } -> p = payload
      | _ -> false)

let prop_binary_reply_roundtrip (n, pid) =
  let s = Enoki.Schedulable.Private.create ~pid:(abs pid) ~cpu:0 ~gen:1 in
  let replies =
    [
      Enoki.Message.R_unit;
      Enoki.Message.R_int n;
      Enoki.Message.R_pid_opt (if pid mod 2 = 0 then Some (abs pid) else None);
      Enoki.Message.R_sched_opt (if pid mod 3 = 0 then Some s else None);
    ]
  in
  List.for_all
    (fun r ->
      let buf = Buffer.create 16 in
      Enoki.Message.put_reply buf r;
      let cur = Enoki.Wire.cursor (Buffer.contents buf) in
      let r' = Enoki.Message.get_reply cur in
      Enoki.Wire.at_end cur
      && Enoki.Message.encode_reply r' = Enoki.Message.encode_reply r)
    replies

let prop_upgrade_preserves_tasks seed =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  let rng = Stats.Prng.create ~seed in
  let pids, ch, _ = spawn_random_workload b.machine ~policy:b.policy ~rng ~tasks:8 in
  let e = Option.get b.enoki in
  (* several upgrades at random times under load *)
  for i = 1 to 3 do
    M.at b.machine
      ~delay:((i * Kernsim.Time.ms 20) + Stats.Prng.int rng (Kernsim.Time.ms 10))
      (fun () ->
        match Enoki.Enoki_c.upgrade e (module Schedulers.Wfq) with
        | Ok _ -> ()
        | Error exn -> raise exn)
  done;
  M.run_for b.machine (Kernsim.Time.ms 300);
  release b.machine ch;
  M.run_for b.machine (Kernsim.Time.ms 200);
  List.for_all
    (fun pid -> (Option.get (M.find_task b.machine pid)).T.state = T.Dead)
    pids
  && Enoki.Enoki_c.violations e = 0

(* a failed (incompatible) upgrade attempted during a fault storm must
   leave the old scheduler registered with the quiescing lock released —
   dispatch keeps working, every task still finishes, no token is lost *)
let prop_failed_upgrade_under_faults seed =
  let plan =
    match Fault.Plan.parse "latency:p=0.05,ns=100000" with
    | Ok p -> p
    | Error m -> failwith m
  in
  let wrapped = Fault.Inject.wrap ~seed ~plan (module Schedulers.Wfq) in
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched wrapped)
  in
  let rng = Stats.Prng.create ~seed in
  let pids, ch, _ = spawn_random_workload b.machine ~policy:b.policy ~rng ~tasks:8 in
  let e = Option.get b.enoki in
  (* Shinjuku does not recognise WFQ's transfer state: every attempt must
     fail with Incompatible and change nothing *)
  for i = 1 to 3 do
    M.at b.machine
      ~delay:((i * Kernsim.Time.ms 20) + Stats.Prng.int rng (Kernsim.Time.ms 10))
      (fun () ->
        match Enoki.Enoki_c.upgrade e (module Schedulers.Shinjuku) with
        | Error (Enoki.Upgrade.Incompatible _) -> ()
        | Error exn -> raise exn
        | Ok _ -> QCheck.Test.fail_report "incompatible upgrade must fail")
  done;
  M.run_for b.machine (Kernsim.Time.ms 300);
  release b.machine ch;
  M.run_for b.machine (Kernsim.Time.ms 200);
  if Enoki.Enoki_c.scheduler_name e <> "wfq+fault" then
    QCheck.Test.fail_reportf "old scheduler lost: %s registered (seed %d)"
      (Enoki.Enoki_c.scheduler_name e) seed;
  let unfinished =
    List.filter (fun pid -> (Option.get (M.find_task b.machine pid)).T.state <> T.Dead) pids
  in
  if unfinished <> [] then
    QCheck.Test.fail_reportf
      "%d tasks never finished after failed upgrades (seed %d): lock leaked or tokens lost"
      (List.length unfinished) seed;
  Enoki.Enoki_c.violations e = 0

let qtest ?(count = 25) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let seeds = QCheck.(int_bound 100_000)

let () =
  Alcotest.run "properties"
    [
      ( "liveness",
        List.map
          (fun ((name, _) as sched) ->
            qtest
              (Printf.sprintf "%s: random workloads finish, no violations" name)
              seeds (prop_tasks_finish sched))
          schedulers );
      ( "record-replay",
        [ qtest ~count:10 "recorded runs replay exactly" seeds prop_record_replay_roundtrip ] );
      ( "messages",
        [
          qtest ~count:200 "fuzzed encode/decode" QCheck.(quad int int int int)
            prop_message_fuzz_roundtrip;
          qtest ~count:200 "adversarial payloads round-trip both codecs"
            QCheck.(pair adversarial_string adversarial_string)
            prop_adversarial_payload_roundtrip;
          qtest ~count:100 "binary replies round-trip" QCheck.(pair int int)
            prop_binary_reply_roundtrip;
        ] );
      ( "upgrade",
        [
          qtest ~count:10 "upgrades under load lose nothing" seeds prop_upgrade_preserves_tasks;
          qtest ~count:10 "failed upgrades under faults leave the old version intact" seeds
            prop_failed_upgrade_under_faults;
        ] );
    ]
