(* Tests for the Enoki framework (lib/core): capabilities, messages, locks,
   dispatch, live upgrade, hints, record/replay. *)

module T = Kernsim.Task
module M = Kernsim.Machine
module Sched = Enoki.Schedulable

let check = Alcotest.check

(* ---------- Schedulable ---------- *)

let test_schedulable_fields () =
  let s = Sched.Private.create ~pid:7 ~cpu:2 ~gen:5 in
  check Alcotest.int "pid" 7 (Sched.pid s);
  check Alcotest.int "cpu" 2 (Sched.cpu s);
  check Alcotest.int "gen" 5 (Sched.generation s);
  check Alcotest.bool "live" true (Sched.is_live s)

let test_schedulable_consume () =
  let s = Sched.Private.create ~pid:1 ~cpu:0 ~gen:1 in
  Sched.Private.consume s;
  check Alcotest.bool "dead after consume" false (Sched.is_live s);
  check Alcotest.bool "describe mentions consumed" true
    (String.length (Sched.describe s) > 0)

(* ---------- Message encode/decode ---------- *)

let roundtrip_call c =
  let line = Enoki.Message.encode_call c in
  let c' = Enoki.Message.decode_call line in
  check Alcotest.string "call roundtrip" line (Enoki.Message.encode_call c')

let test_message_roundtrips () =
  let s = Sched.Private.create ~pid:3 ~cpu:1 ~gen:9 in
  List.iter roundtrip_call
    [
      Get_policy;
      Pick_next_task { cpu = 2; curr = None; curr_runtime = 0 };
      Pick_next_task { cpu = 2; curr = Some s; curr_runtime = 123 };
      Pnt_err { cpu = 1; pid = 3; err = "wrong_cpu"; sched = Some s };
      Task_dead { pid = 42 };
      Task_blocked { pid = 1; runtime = 555; cpu = 3 };
      Task_wakeup { pid = 1; runtime = 10; waker_cpu = 0; sched = s };
      Task_new { pid = 1; runtime = 0; prio = -20; sched = s };
      Task_preempt { pid = 1; runtime = 99; cpu = 2; sched = s };
      Task_yield { pid = 1; runtime = 98; cpu = 2; sched = s };
      Task_departed { pid = 5; cpu = 0 };
      Task_affinity_changed { pid = 5; allowed = [ 1; 2; 3 ] };
      Task_affinity_changed { pid = 5; allowed = [] };
      Task_prio_changed { pid = 5; prio = 10 };
      Task_tick { cpu = 7; queued = true };
      Select_task_rq { pid = 9; waker_cpu = 4; allowed = [ 0; 1 ] };
      Migrate_task_rq { pid = 9; from_cpu = 1; sched = s };
      Balance { cpu = 6 };
      Balance_err { cpu = 6; pid = 9; sched = None };
    ]

let test_reply_roundtrips () =
  let s = Sched.Private.create ~pid:3 ~cpu:1 ~gen:9 in
  List.iter
    (fun r ->
      let line = Enoki.Message.encode_reply r in
      check Alcotest.string "reply roundtrip" line
        (Enoki.Message.encode_reply (Enoki.Message.decode_reply line)))
    [ R_unit; R_int 5; R_int (-3); R_pid_opt None; R_pid_opt (Some 8); R_sched_opt None;
      R_sched_opt (Some s) ]

let test_reply_matching () =
  let s1 = Sched.Private.create ~pid:3 ~cpu:1 ~gen:9 in
  let s2 = Sched.Private.create ~pid:3 ~cpu:1 ~gen:22 in
  let s3 = Sched.Private.create ~pid:4 ~cpu:1 ~gen:9 in
  check Alcotest.bool "same pid+cpu matches despite gen" true
    (Enoki.Message.reply_matches (R_sched_opt (Some s1)) (R_sched_opt (Some s2)));
  check Alcotest.bool "different pid mismatch" false
    (Enoki.Message.reply_matches (R_sched_opt (Some s1)) (R_sched_opt (Some s3)));
  check Alcotest.bool "unit vs int mismatch" false
    (Enoki.Message.reply_matches R_unit (R_int 0))

let test_decode_failure () =
  (match Enoki.Message.decode_call "nonsense here" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected decode failure");
  match Enoki.Message.decode_reply "what" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected reply decode failure"

(* ---------- Hint codec ---------- *)

let test_hint_codec () =
  Schedulers.Hints.register_codecs ();
  let h = Schedulers.Hints.Locality { pid = 12; group = 3 } in
  let enc = Enoki.Hint_codec.encode h in
  (match Enoki.Hint_codec.decode enc with
  | Schedulers.Hints.Locality { pid; group } ->
    check Alcotest.int "pid" 12 pid;
    check Alcotest.int "group" 3 group
  | _ -> Alcotest.fail "decoded to wrong constructor");
  let r = Schedulers.Hints.Core_request { pid = 4; cores = 6 } in
  (match Enoki.Hint_codec.decode (Enoki.Hint_codec.encode r) with
  | Schedulers.Hints.Core_request { pid; cores } ->
    check Alcotest.int "pid" 4 pid;
    check Alcotest.int "cores" 6 cores
  | _ -> Alcotest.fail "core_request roundtrip failed")

let test_hint_codec_opaque () =
  (* unregistered hints survive as opaque strings *)
  match Enoki.Hint_codec.decode "nosuchcodec:payload" with
  | Enoki.Hint_codec.Opaque s -> check Alcotest.string "payload" "payload" s
  | _ -> Alcotest.fail "expected Opaque"

(* ---------- Lock ---------- *)

let test_lock_passthrough () =
  Enoki.Lock.set_passthrough_mode ();
  let l = Enoki.Lock.create ~name:"t" () in
  check Alcotest.int "with_lock result" 42 (Enoki.Lock.with_lock l (fun () -> 42))

let test_lock_record_events () =
  let events = ref [] in
  Enoki.Lock.reset_ids ();
  Enoki.Lock.set_record_mode
    ~sink:(fun e -> events := e :: !events)
    ~tid:(fun () -> 3);
  let l = Enoki.Lock.create () in
  ignore (Enoki.Lock.with_lock l (fun () -> 1));
  Enoki.Lock.set_passthrough_mode ();
  let evs = List.rev !events in
  check Alcotest.int "three events" 3 (List.length evs);
  (match evs with
  | [ a; b; c ] ->
    check Alcotest.bool "create" true (a.Enoki.Lock.op = Enoki.Lock.Create);
    check Alcotest.bool "acquire" true (b.Enoki.Lock.op = Enoki.Lock.Acquire);
    check Alcotest.bool "release" true (c.Enoki.Lock.op = Enoki.Lock.Release);
    check Alcotest.int "tid recorded" 3 b.Enoki.Lock.tid
  | _ -> Alcotest.fail "expected 3 events")

let test_lock_replay_order () =
  (* two threads must acquire in the recorded order 2;1;2 *)
  Enoki.Lock.reset_ids ();
  let table = Hashtbl.create 4 in
  let table_mu = Mutex.create () in
  let my_tid () =
    Mutex.lock table_mu;
    let v = try Hashtbl.find table (Thread.id (Thread.self ())) with Not_found -> -1 in
    Mutex.unlock table_mu;
    v
  in
  Enoki.Lock.set_replay_mode ~order:(fun _ -> [ 2; 1; 2 ]) ~tid:my_tid;
  let l = Enoki.Lock.create () in
  let log = ref [] and log_mu = Mutex.create () in
  let work tid n () =
    Mutex.lock table_mu;
    Hashtbl.replace table (Thread.id (Thread.self ())) tid;
    Mutex.unlock table_mu;
    for _ = 1 to n do
      Enoki.Lock.with_lock l (fun () ->
          Mutex.lock log_mu;
          log := tid :: !log;
          Mutex.unlock log_mu)
    done
  in
  let t1 = Thread.create (work 1 1) () in
  let t2 = Thread.create (work 2 2) () in
  Thread.join t1;
  Thread.join t2;
  Enoki.Lock.set_passthrough_mode ();
  check Alcotest.(list int) "recorded order enforced" [ 2; 1; 2 ] (List.rev !log)

(* ---------- Enoki_c end-to-end on a machine ---------- *)

let build_fifo ?record () =
  Workloads.Setup.build ?record ~topology:Kernsim.Topology.one_socket
    (Workloads.Setup.Enoki_sched (module Schedulers.Fifo_sched))

let one_shot compute =
  let done_ = ref false in
  fun (_ : T.ctx) ->
    if !done_ then T.Exit
    else begin
      done_ := true;
      T.Compute compute
    end

let test_enoki_runs_tasks () =
  let b = build_fifo () in
  let pids =
    List.init 4 (fun i ->
        M.spawn b.machine
          { (T.default_spec ~name:(Printf.sprintf "t%d" i) (one_shot (Kernsim.Time.ms 2))) with
            T.policy = b.policy })
  in
  M.run_for b.machine (Kernsim.Time.ms 50);
  List.iter
    (fun pid ->
      let task = Option.get (M.find_task b.machine pid) in
      check Alcotest.bool "task completed under enoki fifo" true (task.T.state = T.Dead))
    pids;
  match b.enoki with
  | Some e ->
    check Alcotest.bool "dispatches happened" true (Enoki.Enoki_c.calls e > 0);
    check Alcotest.int "no violations" 0 (Enoki.Enoki_c.violations e)
  | None -> Alcotest.fail "expected enoki handle"

let test_enoki_coexists_with_cfs () =
  (* enoki tasks and cfs tasks share the machine; enoki cedes idle cycles *)
  let b = build_fifo () in
  let epid =
    M.spawn b.machine
      { (T.default_spec ~name:"enoki-task" (one_shot (Kernsim.Time.ms 1))) with T.policy = b.policy }
  in
  let cpid =
    M.spawn b.machine
      { (T.default_spec ~name:"cfs-task" (one_shot (Kernsim.Time.ms 1))) with
        T.policy = b.cfs_policy }
  in
  M.run_for b.machine (Kernsim.Time.ms 20);
  check Alcotest.bool "enoki task done" true
    ((Option.get (M.find_task b.machine epid)).T.state = T.Dead);
  check Alcotest.bool "cfs task done" true
    ((Option.get (M.find_task b.machine cpid)).T.state = T.Dead)

(* a scheduler that deliberately returns a wrong-cpu Schedulable once, to
   exercise the pnt_err path *)
module Bad_sched = struct
  type t = {
    inner : Schedulers.Fifo_sched.t;
    mutable sabotage_left : int;
    mutable stash : Sched.t option; (* the real token kept during sabotage *)
    mutable pnt_errs : int;
  }

  let name = "bad"

  let create ctx =
    { inner = Schedulers.Fifo_sched.create ctx; sabotage_left = 1; stash = None; pnt_errs = 0 }

  let get_policy t = Schedulers.Fifo_sched.get_policy t.inner

  let pick_next_task t ~cpu ~curr ~curr_runtime =
    match Schedulers.Fifo_sched.pick_next_task t.inner ~cpu ~curr ~curr_runtime with
    | Some tok when t.sabotage_left > 0 && Sched.cpu tok = cpu ->
      t.sabotage_left <- t.sabotage_left - 1;
      t.stash <- Some tok;
      (* forge a token claiming a different core: must be rejected *)
      Some (Sched.Private.create ~pid:(Sched.pid tok) ~cpu:(cpu + 1) ~gen:(Sched.generation tok))
    | r -> r

  let pnt_err t ~cpu ~pid ~err ~sched =
    t.pnt_errs <- t.pnt_errs + 1;
    ignore (err, sched);
    (* recover: hand the stashed real token back to the queue *)
    match t.stash with
    | Some tok ->
      t.stash <- None;
      Schedulers.Fifo_sched.pnt_err t.inner ~cpu ~pid ~err:"recovered" ~sched:(Some tok)
    | None -> ()

  let task_dead t = Schedulers.Fifo_sched.task_dead t.inner

  let task_blocked t = Schedulers.Fifo_sched.task_blocked t.inner

  let task_wakeup t = Schedulers.Fifo_sched.task_wakeup t.inner

  let task_new t = Schedulers.Fifo_sched.task_new t.inner

  let task_preempt t = Schedulers.Fifo_sched.task_preempt t.inner

  let task_yield t = Schedulers.Fifo_sched.task_yield t.inner

  let task_departed t = Schedulers.Fifo_sched.task_departed t.inner

  let task_affinity_changed t = Schedulers.Fifo_sched.task_affinity_changed t.inner

  let task_prio_changed t = Schedulers.Fifo_sched.task_prio_changed t.inner

  let task_tick t = Schedulers.Fifo_sched.task_tick t.inner

  let select_task_rq t = Schedulers.Fifo_sched.select_task_rq t.inner

  let migrate_task_rq t = Schedulers.Fifo_sched.migrate_task_rq t.inner

  let balance t = Schedulers.Fifo_sched.balance t.inner

  let balance_err t = Schedulers.Fifo_sched.balance_err t.inner

  let reregister_prepare _ = None

  let reregister_init ctx _ = create ctx

  let parse_hint t = Schedulers.Fifo_sched.parse_hint t.inner
end

let test_schedulable_violation_recovered () =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Bad_sched))
  in
  let pid =
    M.spawn b.machine
      { (T.default_spec ~name:"victim" (one_shot (Kernsim.Time.ms 1))) with T.policy = b.policy }
  in
  M.run_for b.machine (Kernsim.Time.ms 50);
  let e = Option.get b.enoki in
  check Alcotest.bool "violation detected" true (Enoki.Enoki_c.violations e >= 1);
  check Alcotest.bool "wrong_cpu classified" true
    (List.mem_assoc "wrong_cpu" (Enoki.Enoki_c.violation_breakdown e));
  (* the task must still complete: pnt_err returned ownership and the
     scheduler recovered *)
  check Alcotest.bool "task survived the bad pick" true
    ((Option.get (M.find_task b.machine pid)).T.state = T.Dead)

(* ---------- live upgrade ---------- *)

let hog ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let test_live_upgrade_same_module () =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  let pids =
    List.init 6 (fun i ->
        M.spawn b.machine
          { (T.default_spec ~name:(Printf.sprintf "h%d" i)
               (hog ~chunk:(Kernsim.Time.ms 1) ~steps:30))
            with
            T.policy = b.policy })
  in
  let e = Option.get b.enoki in
  let stats = ref None in
  M.at b.machine ~delay:(Kernsim.Time.ms 10) (fun () ->
      match Enoki.Enoki_c.upgrade e (module Schedulers.Wfq) with
      | Ok s -> stats := Some s
      | Error exn -> raise exn);
  M.run_for b.machine (Kernsim.Time.ms 200);
  (match !stats with
  | Some s ->
    check Alcotest.bool "state transferred" true s.Enoki.Upgrade.transferred;
    check Alcotest.bool "pause is positive" true (s.Enoki.Upgrade.pause > 0);
    check Alcotest.bool "pause is microseconds-scale" true
      (s.Enoki.Upgrade.pause < Kernsim.Time.us 100);
    check Alcotest.bool "tasks carried" true (s.Enoki.Upgrade.tasks_carried >= 6)
  | None -> Alcotest.fail "upgrade did not run");
  (* no task may be lost across the upgrade *)
  List.iter
    (fun pid ->
      check Alcotest.bool "task survived upgrade" true
        ((Option.get (M.find_task b.machine pid)).T.state = T.Dead))
    pids

let test_live_upgrade_incompatible_rejected () =
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
  in
  ignore
    (M.spawn b.machine
       { (T.default_spec ~name:"h" (hog ~chunk:(Kernsim.Time.ms 1) ~steps:50)) with
         T.policy = b.policy });
  M.run_for b.machine (Kernsim.Time.ms 5);
  let e = Option.get b.enoki in
  (* Shinjuku does not recognise WFQ's transfer state *)
  (match Enoki.Enoki_c.upgrade e (module Schedulers.Shinjuku) with
  | Error (Enoki.Upgrade.Incompatible _) -> ()
  | Error e -> raise e
  | Ok _ -> Alcotest.fail "incompatible upgrade must fail");
  check Alcotest.string "old scheduler still registered" "wfq" (Enoki.Enoki_c.scheduler_name e);
  (* and the machine keeps running fine *)
  M.run_for b.machine (Kernsim.Time.ms 100);
  check Alcotest.int "no tasks alive" 0
    (List.length
       (List.filter (fun (t : T.t) -> t.T.state <> T.Dead) (M.tasks b.machine)))

let test_upgrade_pause_scales_with_tasks () =
  let pause_for n =
    let b =
      Workloads.Setup.build ~topology:Kernsim.Topology.two_socket
        (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
    in
    for i = 1 to n do
      ignore
        (M.spawn b.machine
           { (T.default_spec ~name:(Printf.sprintf "h%d" i)
                (hog ~chunk:(Kernsim.Time.ms 1) ~steps:100))
             with
             T.policy = b.policy })
    done;
    let e = Option.get b.enoki in
    let pause = ref 0 in
    M.at b.machine ~delay:(Kernsim.Time.ms 5) (fun () ->
        match Enoki.Enoki_c.upgrade e (module Schedulers.Wfq) with
        | Ok s -> pause := s.Enoki.Upgrade.pause
        | Error exn -> raise exn);
    M.run_for b.machine (Kernsim.Time.ms 10);
    !pause
  in
  let small = pause_for 4 and large = pause_for 80 in
  check Alcotest.bool "more tasks, longer pause" true (large > small)

(* ---------- hints ---------- *)

let test_hints_reach_scheduler () =
  Schedulers.Hints.register_codecs ();
  let b =
    Workloads.Setup.build ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched (module Schedulers.Locality))
  in
  let beh =
    let st = ref `Hint in
    fun (ctx : T.ctx) ->
      match !st with
      | `Hint ->
        st := `Work;
        T.Send_hint (Schedulers.Hints.Locality { pid = ctx.T.self; group = 1 })
      | `Work -> T.Exit
  in
  ignore (M.spawn b.machine { (T.default_spec ~name:"hinter" beh) with T.policy = b.policy });
  M.run_for b.machine (Kernsim.Time.ms 10);
  match b.enoki with
  | Some e -> check Alcotest.int "no hints dropped" 0 (Enoki.Enoki_c.hints_dropped e)
  | None -> Alcotest.fail "no enoki"

(* ---------- record / replay ---------- *)

let pingpong_workload b ~iters =
  let m = b.Workloads.Setup.machine in
  let ch_ab = M.new_chan m and ch_ba = M.new_chan m in
  let mk ~send ~recv ~first =
    let n = ref 0 and st = ref (if first then `Send else `Recv0) in
    fun (_ : T.ctx) ->
      match !st with
      | `Recv0 ->
        st := `Send;
        T.Block recv
      | `Send ->
        st := `Recv;
        T.Wake send
      | `Recv ->
        incr n;
        if !n >= iters then T.Exit
        else begin
          st := `Send;
          T.Block recv
        end
  in
  ignore
    (M.spawn m
       { (T.default_spec ~name:"ping" (mk ~send:ch_ab ~recv:ch_ba ~first:true)) with
         T.policy = b.Workloads.Setup.policy });
  ignore
    (M.spawn m
       { (T.default_spec ~name:"pong" (mk ~send:ch_ba ~recv:ch_ab ~first:false)) with
         T.policy = b.Workloads.Setup.policy })

let test_record_produces_log () =
  let record = Enoki.Record.create () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:50;
  M.run_for b.machine (Kernsim.Time.ms 100);
  Enoki.Record.drain record;
  check Alcotest.bool "log non-empty" true (Enoki.Record.length record > 100);
  check Alcotest.int "nothing dropped" 0 (Enoki.Record.dropped record);
  (* every line parses *)
  let entries = Enoki.Replay.parse (Enoki.Record.contents record) in
  check Alcotest.bool "entries parsed" true (List.length entries > 100)

let test_record_ring_overrun_drops () =
  let record = Enoki.Record.create ~capacity:8 () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:200;
  M.run_for b.machine (Kernsim.Time.ms 200);
  (* tiny ring, high rate: the paper's "events may be dropped" behaviour *)
  check Alcotest.bool "drops counted" true (Enoki.Record.dropped record > 0)

let test_replay_matches_record () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:100;
  M.run_for b.machine (Kernsim.Time.ms 200);
  let log = Enoki.Record.contents record in
  (* replay the identical scheduler code at userspace *)
  let report = Enoki.Replay.run (module Schedulers.Fifo_sched) ~log in
  check Alcotest.bool "replayed calls" true (report.Enoki.Replay.total_calls > 200);
  check Alcotest.(list (pair int string)) "no mismatches" [] report.Enoki.Replay.mismatches;
  check Alcotest.bool "multiple kernel threads" true (report.Enoki.Replay.threads >= 1)

let test_replay_detects_divergence () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:50;
  M.run_for b.machine (Kernsim.Time.ms 100);
  let log = Enoki.Record.contents record in
  (* replay against a different scheduler: replies must diverge *)
  let report = Enoki.Replay.run (module Schedulers.Shinjuku) ~log in
  check Alcotest.bool "divergence flagged" true (report.Enoki.Replay.mismatches <> [])

let test_record_length_counts_undrained () =
  (* regression: [length] used to return only lines already drained, so a
     freshly tapped record reported 0 *)
  let record = Enoki.Record.create () in
  Enoki.Record.tap_lock record { Enoki.Lock.lock_id = 0; op = Enoki.Lock.Create; tid = 0 };
  Enoki.Record.tap_lock record { Enoki.Lock.lock_id = 0; op = Enoki.Lock.Acquire; tid = 1 };
  check Alcotest.int "undrained lines counted" 2 (Enoki.Record.length record);
  Enoki.Record.drain record;
  check Alcotest.int "no double counting after drain" 2 (Enoki.Record.length record)

let test_record_overrun_reported_and_log_usable () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create ~capacity:64 () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:300;
  M.run_for b.machine (Kernsim.Time.ms 500);
  (* the tiny ring must overrun, and the drop count must say so *)
  check Alcotest.bool "drops reported" true (Enoki.Record.dropped record > 0);
  (* drops are whole lines, so everything kept still parses *)
  let entries = Enoki.Replay.parse (Enoki.Record.contents record) in
  check Alcotest.bool "surviving lines parse" true (List.length entries > 0)

let test_replay_of_truncated_log_validates () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create ~format:Enoki.Record.Text () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:100;
  M.run_for b.machine (Kernsim.Time.ms 200);
  let log = Enoki.Record.contents record in
  check Alcotest.int "full log lost nothing" 0 (Enoki.Record.dropped record);
  (* keep only the first two thirds of the lines: the log records lock
     events strictly before the call they bracket, so a prefix cut leaves
     at worst dangling trailing lock entries, never an orphaned call *)
  let lines = String.split_on_char '\n' log in
  let keep = List.length lines * 2 / 3 in
  let truncated = String.concat "\n" (List.filteri (fun i _ -> i < keep) lines) in
  let report = Enoki.Replay.run (module Schedulers.Fifo_sched) ~log:truncated in
  check Alcotest.bool "truncated log replays calls" true
    (report.Enoki.Replay.total_calls > 0
    && report.Enoki.Replay.total_calls < List.length lines);
  check
    Alcotest.(list (pair int string))
    "truncated log still validates" [] report.Enoki.Replay.mismatches

let test_binary_truncation_salvages_frames () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:100;
  M.run_for b.machine (Kernsim.Time.ms 200);
  let log = Enoki.Record.contents record in
  let full = Enoki.Replay.parse log in
  (* chop the final byte: the trailer frame is now cut mid-frame, which is
     what a crash mid-write leaves behind *)
  let cut = String.sub log 0 (String.length log - 1) in
  let entries, info = Enoki.Replay.parse_full cut in
  check Alcotest.bool "binary detected" true info.Enoki.Replay.binary;
  check Alcotest.bool "truncation flagged" true info.Enoki.Replay.truncated;
  check
    Alcotest.(option int)
    "trailer lost with the cut" None info.Enoki.Replay.recorded_events;
  check Alcotest.int "complete frames salvaged" (List.length full) (List.length entries);
  (* the salvaged prefix still replays and validates *)
  let report = Enoki.Replay.run (module Schedulers.Fifo_sched) ~log:cut in
  check Alcotest.bool "salvaged frames replay calls" true
    (report.Enoki.Replay.total_calls > 0);
  check
    Alcotest.(list (pair int string))
    "salvaged frames validate" [] report.Enoki.Replay.mismatches

let test_replay_fails_fast_on_drops () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create ~capacity:8 () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:200;
  M.run_for b.machine (Kernsim.Time.ms 200);
  let dropped = Enoki.Record.dropped record in
  check Alcotest.bool "ring overran" true (dropped > 0);
  let log = Enoki.Record.contents record in
  let info = Enoki.Replay.info log in
  check Alcotest.(option int) "trailer names the drop count" (Some dropped) info.Enoki.Replay.dropped;
  (* a recording with holes must not silently replay as if complete *)
  (match Enoki.Replay.run (module Schedulers.Fifo_sched) ~log with
  | exception Enoki.Replay.Incomplete_log { dropped = d } ->
    check Alcotest.int "exception names the drop count" dropped d
  | _ -> Alcotest.fail "expected Incomplete_log");
  (* explicit opt-in still replays what survived *)
  let report = Enoki.Replay.run ~allow_drops:true (module Schedulers.Fifo_sched) ~log in
  check Alcotest.bool "forced replay completes" true (report.Enoki.Replay.wall_seconds >= 0.)

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_pp_report_names_log_lines () =
  Enoki.Lock.set_passthrough_mode ();
  let record = Enoki.Record.create () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:50;
  M.run_for b.machine (Kernsim.Time.ms 100);
  let log = Enoki.Record.contents record in
  let report = Enoki.Replay.run (module Schedulers.Shinjuku) ~log in
  check Alcotest.bool "divergence flagged" true (report.Enoki.Replay.mismatches <> []);
  let rendered = Format.asprintf "%a" Enoki.Replay.pp_report report in
  let first_seq =
    match report.Enoki.Replay.mismatches with (s, _) :: _ -> s | [] -> assert false
  in
  check Alcotest.bool "report names the first mismatch position" true
    (contains rendered (Printf.sprintf "line %d:" first_seq))

let test_bisect_pinpoints_injected_wrong_reply () =
  Enoki.Lock.set_passthrough_mode ();
  let plan =
    match Fault.Plan.parse "wrong-reply:p=0.05" with Ok p -> p | Error e -> failwith e
  in
  let faulty = Fault.Inject.wrap ~seed:7 ~plan (module Schedulers.Wfq) in
  let record = Enoki.Record.create () in
  let b =
    Workloads.Setup.build ~record ~topology:Kernsim.Topology.one_socket
      (Workloads.Setup.Enoki_sched faulty)
  in
  pingpong_workload b ~iters:100;
  M.run_for b.machine (Kernsim.Time.ms 200);
  let log = Enoki.Record.contents record in
  (* replay the clean scheduler: the injected wrong replies must diverge *)
  let report = Enoki.Replay.run (module Schedulers.Wfq) ~log in
  check Alcotest.bool "injected fault visible on replay" true
    (report.Enoki.Replay.mismatches <> []);
  match Enoki.Replay.bisect (module Schedulers.Wfq) ~log with
  | None -> Alcotest.fail "bisect found no divergence in a diverging log"
  | Some d ->
    let first_seq =
      match report.Enoki.Replay.mismatches with (s, _) :: _ -> s | [] -> assert false
    in
    check Alcotest.int "bisect pinpoints the first divergent call" first_seq
      d.Enoki.Replay.seq;
    check Alcotest.bool "minimal failing prefix found" true (d.Enoki.Replay.failing_prefix >= 1);
    check Alcotest.bool "context window populated" true (d.Enoki.Replay.context <> [])

let test_streaming_record_memory_bounded () =
  let path = Filename.temp_file "enoki" ".rec" in
  let record = Enoki.Record.create_file ~path ~capacity:4096 () in
  let total = 1_000_000 in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  for i = 0 to total - 1 do
    Enoki.Record.tap_lock record
      { Enoki.Lock.lock_id = i land 7; op = Enoki.Lock.Acquire; tid = i land 3 };
    if i land 2047 = 2047 then Enoki.Record.drain record
  done;
  Enoki.Record.close record;
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  (* streaming must not accumulate the log in the heap: a megaevent run
     buffered in memory would hold several MB; the drained path keeps only
     the ring and a scratch buffer *)
  check Alcotest.bool "heap growth bounded" true (after - before < 262_144);
  let log = Enoki.Record.load_file ~path in
  Sys.remove path;
  let info = Enoki.Replay.info log in
  check Alcotest.(option int) "all events reached the file" (Some total)
    info.Enoki.Replay.recorded_events;
  check Alcotest.(option int) "no drops" (Some 0) info.Enoki.Replay.dropped;
  check Alcotest.bool "log complete" false info.Enoki.Replay.truncated

let test_stream_equivalence_across_schedulers () =
  (* the same deterministic run recorded through the in-memory text path
     and the streamed binary-file path must yield byte-equal histories,
     and the streamed log must replay clean on its own scheduler *)
  let scheds : (string * (module Enoki.Sched_trait.S)) list =
    [
      ("fifo", (module Schedulers.Fifo_sched));
      ("wfq", (module Schedulers.Wfq));
      ("rt_fifo", (module Schedulers.Rt_fifo));
      ("edf", (module Schedulers.Edf));
      ("shinjuku", (module Schedulers.Shinjuku));
      ("locality", (module Schedulers.Locality));
      ("nest", (module Schedulers.Nest));
      ("arachne", (module Schedulers.Arachne));
    ]
  in
  List.iter
    (fun (name, sched) ->
      Enoki.Lock.set_passthrough_mode ();
      let run_with record =
        let b =
          Workloads.Setup.build ~record ~topology:Kernsim.Topology.one_socket
            (Workloads.Setup.Enoki_sched sched)
        in
        pingpong_workload b ~iters:30;
        M.run_for b.machine (Kernsim.Time.ms 100)
      in
      let text = Enoki.Record.create ~format:Enoki.Record.Text () in
      run_with text;
      let text_log = Enoki.Record.contents text in
      let path = Filename.temp_file "enoki" ".rec" in
      let bin = Enoki.Record.create_file ~path () in
      run_with bin;
      Enoki.Record.close bin;
      let bin_log = Enoki.Record.load_file ~path in
      Sys.remove path;
      let t_entries = Enoki.Replay.parse text_log in
      let b_entries = Enoki.Replay.parse bin_log in
      check Alcotest.int (name ^ ": entry counts equal") (List.length t_entries)
        (List.length b_entries);
      List.iter2
        (fun a b' ->
          check Alcotest.string (name ^ ": entries equal") (Enoki.Replay.entry_line a)
            (Enoki.Replay.entry_line b'))
        t_entries b_entries;
      let report = Enoki.Replay.run sched ~log:bin_log in
      check
        Alcotest.(list (pair int string))
        (name ^ ": streamed binary log replays clean")
        [] report.Enoki.Replay.mismatches)
    scheds

let test_record_save_load () =
  let record = Enoki.Record.create () in
  let b = build_fifo ~record () in
  pingpong_workload b ~iters:20;
  M.run_for b.machine (Kernsim.Time.ms 50);
  let path = Filename.temp_file "enoki" ".rec" in
  Enoki.Record.save record ~path;
  let loaded = Enoki.Record.load_file ~path in
  Sys.remove path;
  check Alcotest.string "file roundtrip" (Enoki.Record.contents record) loaded

(* ---------- suite ---------- *)

let () =
  Alcotest.run "enoki-core"
    [
      ( "schedulable",
        [
          Alcotest.test_case "fields" `Quick test_schedulable_fields;
          Alcotest.test_case "consume" `Quick test_schedulable_consume;
        ] );
      ( "message",
        [
          Alcotest.test_case "call roundtrips" `Quick test_message_roundtrips;
          Alcotest.test_case "reply roundtrips" `Quick test_reply_roundtrips;
          Alcotest.test_case "reply matching" `Quick test_reply_matching;
          Alcotest.test_case "decode failure" `Quick test_decode_failure;
        ] );
      ( "hints",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_hint_codec;
          Alcotest.test_case "opaque fallback" `Quick test_hint_codec_opaque;
          Alcotest.test_case "hints reach scheduler" `Quick test_hints_reach_scheduler;
        ] );
      ( "lock",
        [
          Alcotest.test_case "passthrough" `Quick test_lock_passthrough;
          Alcotest.test_case "record events" `Quick test_lock_record_events;
          Alcotest.test_case "replay order" `Quick test_lock_replay_order;
        ] );
      ( "enoki_c",
        [
          Alcotest.test_case "runs tasks" `Quick test_enoki_runs_tasks;
          Alcotest.test_case "coexists with cfs" `Quick test_enoki_coexists_with_cfs;
          Alcotest.test_case "violation recovered via pnt_err" `Quick
            test_schedulable_violation_recovered;
        ] );
      ( "upgrade",
        [
          Alcotest.test_case "same module" `Quick test_live_upgrade_same_module;
          Alcotest.test_case "incompatible rejected" `Quick
            test_live_upgrade_incompatible_rejected;
          Alcotest.test_case "pause scales" `Quick test_upgrade_pause_scales_with_tasks;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "record produces log" `Quick test_record_produces_log;
          Alcotest.test_case "ring overrun drops" `Quick test_record_ring_overrun_drops;
          Alcotest.test_case "length counts undrained lines" `Quick
            test_record_length_counts_undrained;
          Alcotest.test_case "overrun reported, log usable" `Quick
            test_record_overrun_reported_and_log_usable;
          Alcotest.test_case "truncated log validates" `Quick
            test_replay_of_truncated_log_validates;
          Alcotest.test_case "replay matches" `Quick test_replay_matches_record;
          Alcotest.test_case "replay detects divergence" `Quick test_replay_detects_divergence;
          Alcotest.test_case "save/load" `Quick test_record_save_load;
          Alcotest.test_case "binary truncation salvages frames" `Quick
            test_binary_truncation_salvages_frames;
          Alcotest.test_case "replay fails fast on drops" `Quick test_replay_fails_fast_on_drops;
          Alcotest.test_case "report names log lines" `Quick test_pp_report_names_log_lines;
          Alcotest.test_case "bisect pinpoints injected wrong reply" `Quick
            test_bisect_pinpoints_injected_wrong_reply;
          Alcotest.test_case "streaming memory bounded" `Quick
            test_streaming_record_memory_bounded;
          Alcotest.test_case "text/binary stream equivalence" `Quick
            test_stream_equivalence_across_schedulers;
        ] );
    ]
