(* Tests for lib/cluster: the open-loop traffic engine (deterministic
   replay, window-size independence, bounded live-flow memory under 1M+
   flow churn, diurnal rate integration), the load balancer (consistent
   hashing remap bounds under churn, drained-host avoidance under random
   op sequences, smooth-WRR proportions), and the fleet tier (bit-for-bit
   determinism, rolling-upgrade pause/blackout accounting, chaos-drill
   convergence). *)

module Traffic = Cluster.Traffic
module Lb = Cluster.Lb
module Fleet = Cluster.Fleet

let check = Alcotest.check

let ms = Kernsim.Time.ms

let small_mix ?(connections = 16) ?(load = 20.0) () =
  Traffic.standard_mix ~connections ~flow_len:4.0 ~load_kreqs:load ()

let entries names =
  List.map
    (fun n ->
      match Schedulers.Registry.find n with
      | Some e -> e
      | None -> Alcotest.failf "unknown scheduler %s" n)
    names

(* ---------- traffic engine ---------- *)

(* Same seed must give the same stream whether drained in one window or in
   many small ones (the slot-pool design's epoch-independence), and a
   different seed must give a different stream. *)
let test_traffic_deterministic_window_independent () =
  let mk seed = Traffic.create ~seed ~start:0 (small_mix ()) in
  let big = Traffic.next_window (mk 42) ~until:(ms 50) in
  let stepped =
    let tr = mk 42 in
    let acc = ref [] in
    for i = 1 to 50 do
      acc := List.rev_append (Traffic.next_window tr ~until:(ms i)) !acc
    done;
    List.rev !acc
  in
  check Alcotest.int "same request count" (List.length big) (List.length stepped);
  check Alcotest.bool "streams identical across window sizes" true (big = stepped);
  let other = Traffic.next_window (mk 43) ~until:(ms 50) in
  check Alcotest.bool "different seed differs" true (big <> other)

(* Churn through over a million flows and confirm the live-flow count
   never moves off the slot-pool size: memory is bounded by construction,
   independent of flow count. *)
let test_bounded_live_flows_under_churn () =
  let mix = Traffic.standard_mix ~connections:64 ~flow_len:1.2 ~load_kreqs:600.0 () in
  let pool = List.fold_left (fun n (tn : Traffic.tenant) -> n + tn.connections) 0 mix in
  let tr = Traffic.create ~seed:9 ~start:0 mix in
  check Alcotest.int "live flows = slot pool at start" pool (Traffic.live_flows tr);
  let t = ref 0 in
  while Traffic.flows_completed tr < 1_000_000 do
    t := !t + ms 100;
    ignore (Traffic.next_window tr ~until:!t);
    if Traffic.live_flows tr <> pool then
      Alcotest.failf "live flows grew to %d (pool %d) at %d completed flows"
        (Traffic.live_flows tr) pool (Traffic.flows_completed tr)
  done;
  check Alcotest.bool "churned 1M+ flows" true (Traffic.flows_completed tr >= 1_000_000);
  check Alcotest.bool "emitted at least one request per flow" true
    (Traffic.requests_emitted tr >= Traffic.flows_completed tr)

(* The thinned diurnal process must integrate to its mean rate over whole
   periods (statistical: ~5000 expected arrivals, so 10% is > 4 sigma). *)
let prop_diurnal_integrates seed =
  let period = ms 20 in
  let tenant =
    {
      Traffic.name = "d";
      arrival = Traffic.Diurnal { mean_rate = 50_000.0; amplitude = 0.7; period };
      service = Stats.Dist.constant 1_000.0;
      flow_len_mean = 4.0;
      connections = 64;
    }
  in
  let tr = Traffic.create ~seed ~start:0 [ tenant ] in
  let horizon = 5 * period in
  let n = List.length (Traffic.next_window tr ~until:horizon) in
  let expected = 50_000.0 *. (float_of_int horizon /. 1e9) in
  let err = Float.abs ((float_of_int n /. expected) -. 1.0) in
  if err > 0.10 then
    QCheck.Test.fail_reportf "diurnal drifted %.1f%% off mean rate (%d vs %.0f, seed %d)"
      (100.0 *. err) n expected seed
  else true

(* ---------- load balancer ---------- *)

(* Draining one host must only remap that host's keys (the classic
   consistent-hashing bound), and re-admitting it must restore the
   original placement exactly. *)
let prop_consistent_hash_remap seed =
  let hosts = 8 in
  let lb = Lb.create ~policy:Lb.Consistent_hash ~hosts ~seed () in
  let keys = List.init 2_000 (fun i -> (i * 0x9E37) lxor (seed * 7919)) in
  let place () = List.map (fun k -> (k, Option.get (Lb.pick lb ~key:k))) keys in
  let before = place () in
  let victim = seed mod hosts in
  Lb.drain lb victim;
  let after = place () in
  List.iter2
    (fun (k, b) (_, a) ->
      if b <> victim && a <> b then
        QCheck.Test.fail_reportf "key %d moved %d -> %d though only host %d drained (seed %d)" k
          b a victim seed;
      if a = victim then
        QCheck.Test.fail_reportf "key %d still on drained host %d (seed %d)" k victim seed)
    before after;
  Lb.admit lb victim;
  if place () <> before then
    QCheck.Test.fail_reportf "placement not restored after re-admit (seed %d)" seed
  else true

(* Random op soup over a 4-host balancer: pick must never return a drained
   host, and must return None exactly when all hosts are drained. *)
let prop_pick_never_drained (policy_ix, ops) =
  let hosts = 4 in
  let policy =
    List.nth [ Lb.Round_robin; Lb.Least_outstanding; Lb.Weighted; Lb.Consistent_hash ]
      (policy_ix mod 4)
  in
  let lb = Lb.create ~policy ~hosts ~seed:11 () in
  let all_drained () = List.for_all (Lb.drained lb) (List.init hosts Fun.id) in
  List.iter
    (fun (op, arg) ->
      let h = arg mod hosts in
      match op mod 4 with
      | 0 -> Lb.drain lb h
      | 1 -> Lb.admit lb h
      | 2 -> if Lb.outstanding lb h > 0 then Lb.complete lb h
      | _ -> (
        match Lb.pick lb ~key:arg with
        | None ->
          if not (all_drained ()) then
            QCheck.Test.fail_reportf "%s: pick returned None with hosts up"
              (Lb.policy_name policy)
        | Some h ->
          if Lb.drained lb h then
            QCheck.Test.fail_reportf "%s: picked drained host %d" (Lb.policy_name policy) h;
          Lb.dispatch lb h))
    ops;
  true

(* Smooth WRR serves hosts in exact proportion to their weights over any
   whole number of cycles. *)
let test_weighted_exact_proportions () =
  let lb = Lb.create ~weights:[| 6; 3; 1 |] ~policy:Lb.Weighted ~hosts:3 ~seed:1 () in
  let counts = Array.make 3 0 in
  for i = 1 to 1_000 do
    let h = Option.get (Lb.pick lb ~key:i) in
    counts.(h) <- counts.(h) + 1
  done;
  check Alcotest.(array int) "6:3:1 over 100 cycles" [| 600; 300; 100 |] counts

(* ---------- fleet tier ---------- *)

let small_fleet ?upgrade ?chaos ~seed () =
  Fleet.create ?upgrade ?chaos ~workers:4 ~warmup:(ms 50) ~seed
    ~hosts:(entries [ "wfq"; "cfs" ])
    ~tenants:(small_mix ~connections:32 ~load:40.0 ())
    ()

let test_fleet_deterministic () =
  let run seed =
    let f = small_fleet ~seed () in
    Fleet.run f ~until:(ms 200);
    (Fleet.tenant_stats f, Fleet.host_stats f, Fleet.clock f)
  in
  check Alcotest.bool "same seed, bit-identical results" true (run 5 = run 5);
  check Alcotest.bool "different seed differs" true (run 5 <> run 6)

let test_rolling_upgrade_pause_and_blackout () =
  let f =
    (* both hosts need an Enoki module: CFS hosts have nothing to upgrade *)
    Fleet.create
      ~upgrade:{ Fleet.at = ms 120; stagger = ms 20 }
      ~workers:4 ~warmup:(ms 50) ~seed:3
      ~hosts:(entries [ "wfq"; "shinjuku" ])
      ~tenants:(small_mix ~connections:32 ~load:40.0 ())
      ()
  in
  Fleet.run f ~until:(ms 300);
  let ups = Fleet.upgrades f in
  check Alcotest.int "every host upgraded" 2 (List.length ups);
  check Alcotest.int "no upgrade failures" 0 (Fleet.upgrade_failures f);
  List.iter
    (fun (h, pause) ->
      if pause <= 0 then Alcotest.failf "host %d reported a zero-length upgrade pause" h)
    ups;
  check Alcotest.bool "blackout window saw completions under load" true
    (Stats.Histogram.count (Fleet.blackout f) > 0);
  let op_hosts op =
    List.filter_map (fun (_, h, o) -> if o = op then Some h else None) (Fleet.oplog f)
  in
  check Alcotest.(list int) "oplog: staggered host order" [ 0; 1 ] (op_hosts "upgrade")

let test_chaos_drill_converges () =
  let f =
    Fleet.create
      ~chaos:{ Fleet.victim = 1; after_calls = 2_000; recovery = ms 5 }
      ~workers:4 ~warmup:(ms 50) ~seed:7
      ~hosts:(entries [ "wfq"; "wfq"; "wfq"; "wfq" ])
      ~tenants:(small_mix ~connections:32 ~load:40.0 ())
      ()
  in
  Fleet.run f ~until:(ms 300);
  let ops = List.map (fun (_, h, op) -> (h, op)) (Fleet.oplog f) in
  check Alcotest.bool "victim drained" true (List.mem (1, "drain") ops);
  check Alcotest.bool "victim re-admitted" true (List.mem (1, "admit") ops);
  check Alcotest.bool "drill converged" true (Fleet.converged f);
  check Alcotest.bool "victim sanitizer clean" true (Fleet.sanitizer_ok f);
  let victim = List.nth (Fleet.host_stats f) 1 in
  check Alcotest.bool "victim failed over (module quarantined)" true victim.Fleet.quarantined;
  check Alcotest.bool "victim back in rotation" false victim.Fleet.drained

let lb_policies = [ Lb.Round_robin; Lb.Least_outstanding; Lb.Weighted; Lb.Consistent_hash ]

(* ---------- parallel fleet execution ---------- *)

(* The whole observable surface of a run, down to exported bytes: if any
   host-shared effect were applied off the coordinating domain, or merged
   in a claim-order-dependent order, one of these components would drift. *)
let fleet_fingerprint f =
  let anat =
    match Fleet.anatomy f with
    | None -> ""
    | Some a ->
      Printf.sprintf "%d|%d|%s"
        (List.length (Trace.Anatomy.exemplars a))
        (Trace.Anatomy.max_sum_error a)
        (Trace.Anatomy.chrome_json a)
  in
  ( Fleet.tenant_stats f,
    Fleet.host_stats f,
    Fleet.clock f,
    Fleet.oplog f,
    Fleet.events_dispatched f,
    Metrics.Export.prometheus (Fleet.registry f),
    anat )

let par_scheds = [| "wfq"; "cfs"; "shinjuku"; "scx-simple" |]

(* The hard contract from fleet.mli: a run is byte-identical for any pool
   size.  Random (seed, host mix, lb policy, k in 1..4), sequential vs a
   k-domain pool, compared on the full fingerprint plus the record log —
   the strictest equality the stack offers (every scheduler call of host 0
   in order, so a lock id or trace tap leaking across domains shows up as
   a byte diff). *)
let prop_fleet_parallel_deterministic (seed, nhosts_r, lb_ix, k_r) =
  let nhosts = 2 + (nhosts_r mod 4) in
  let k = 1 + (k_r mod 4) in
  let lb = List.nth lb_policies (lb_ix mod List.length lb_policies) in
  let hosts =
    List.init nhosts (fun i ->
        par_scheds.((seed + i) mod Array.length par_scheds))
  in
  let run pool =
    let record = Enoki.Record.create () in
    let f =
      Fleet.create ?pool ~workers:4 ~warmup:(ms 30) ~lb ~anatomy:true ~record ~seed
        ~hosts:(entries hosts)
        ~tenants:(small_mix ~connections:16 ~load:30.0 ())
        ()
    in
    Fleet.run f ~until:(ms 150);
    (fleet_fingerprint f, Enoki.Record.contents record)
  in
  let seq = run None in
  let pool = Ds.Domain_pool.create ~domains:k () in
  let par = Fun.protect (fun () -> run (Some pool)) ~finally:(fun () -> Ds.Domain_pool.shutdown pool) in
  if fst seq <> fst par then
    QCheck.Test.fail_reportf "fleet diverged at -j %d (seed %d, hosts %s, lb %s)" k seed
      (String.concat "," hosts) (Lb.policy_name lb)
  else if snd seq <> snd par then
    QCheck.Test.fail_reportf "record log not byte-identical at -j %d (seed %d)" k seed
  else true

(* Chaos drills are the most side-effectful path (panic injection, drain /
   admit oplog writes, sanitizer over the victim's trace): the drill must
   converge identically with hosts advancing on separate domains. *)
let test_chaos_drill_parallel_identical () =
  let run pool =
    let f =
      Fleet.create ?pool
        ~chaos:{ Fleet.victim = 1; after_calls = 2_000; recovery = ms 5 }
        ~workers:4 ~warmup:(ms 50) ~seed:7
        ~hosts:(entries [ "wfq"; "wfq"; "wfq"; "wfq" ])
        ~tenants:(small_mix ~connections:32 ~load:40.0 ())
        ()
    in
    Fleet.run f ~until:(ms 300);
    (Fleet.converged f, Fleet.sanitizer_ok f, fleet_fingerprint f)
  in
  let seq = run None in
  let pool = Ds.Domain_pool.create ~domains:3 () in
  let par = Fun.protect (fun () -> run (Some pool)) ~finally:(fun () -> Ds.Domain_pool.shutdown pool) in
  let converged, sanitizer, _ = par in
  check Alcotest.bool "drill converged under -j 3" true converged;
  check Alcotest.bool "victim sanitizer clean under -j 3" true sanitizer;
  check Alcotest.bool "chaos run byte-identical sequential vs -j 3" true (seq = par)

(* ---------- request anatomy ---------- *)

module Anatomy = Trace.Anatomy

(* Run a small fleet with anatomy on, asserting on every completion that
   the six phase durations are non-negative and sum exactly — not within
   epsilon — to the measured end-to-end latency. *)
let assert_exact_sums ?(lb = Lb.Least_outstanding) ~seed ~hosts () =
  let f =
    Fleet.create ~workers:4 ~warmup:(ms 50) ~lb ~anatomy:true ~seed ~hosts:(entries hosts)
      ~tenants:(small_mix ~connections:16 ~load:30.0 ())
      ()
  in
  let a = Option.get (Fleet.anatomy f) in
  let seen = ref 0 in
  Anatomy.on_complete a (fun c ->
      incr seen;
      let sum = Array.fold_left ( + ) 0 c.Anatomy.durations in
      if sum <> Anatomy.e2e c then
        Alcotest.failf "req %d: phases sum to %d, e2e is %d (%s)" c.Anatomy.req sum
          (Anatomy.e2e c) (String.concat "," hosts);
      Array.iteri
        (fun i d ->
          if d < 0 then
            Alcotest.failf "req %d: negative %s (%d)" c.Anatomy.req
              (Anatomy.phase_name (List.nth Anatomy.phases i))
              d)
        c.Anatomy.durations);
  Fleet.run f ~until:(ms 150);
  if !seen = 0 then Alcotest.fail "anatomy saw no completions";
  check Alcotest.int "exact-sum error counter" 0 (Anatomy.max_sum_error a);
  check Alcotest.int "no orphaned observations" 0 (Anatomy.orphans a);
  f

(* The decomposition must hold under every scheduler a host can run, not
   just the ones the fleet suite happens to use — wakeup clamping and the
   preemption/migration split are where a new policy would break it. *)
let test_anatomy_sums_every_scheduler () =
  List.iter
    (fun (e : Schedulers.Registry.entry) ->
      (* arbiters schedule other schedulers, not worker tasks *)
      if not e.Schedulers.Registry.arbiter then
        ignore (assert_exact_sums ~seed:5 ~hosts:[ e.Schedulers.Registry.name ] ()))
    Schedulers.Registry.all

let test_anatomy_sums_every_lb () =
  List.iter (fun lb -> ignore (assert_exact_sums ~lb ~seed:6 ~hosts:[ "wfq"; "cfs" ] ())) lb_policies

let prop_anatomy_sums (sched_ix, lb_ix, seed) =
  let workers =
    List.filter (fun e -> not e.Schedulers.Registry.arbiter) Schedulers.Registry.all
  in
  let e = List.nth workers (sched_ix mod List.length workers) in
  let lb = List.nth lb_policies (lb_ix mod List.length lb_policies) in
  ignore (assert_exact_sums ~lb ~seed ~hosts:[ e.Schedulers.Registry.name; "cfs" ] ());
  true

(* Anatomy must be a pure observer: with it on or off, the same seed has
   to produce byte-identical Enoki record logs (the strictest equality the
   stack offers — every scheduler call in order) and identical stats. *)
let test_anatomy_zero_perturbation () =
  let run anatomy =
    let record = Enoki.Record.create () in
    let f =
      Fleet.create ~workers:4 ~warmup:(ms 50) ~anatomy ~record ~seed:9
        ~hosts:(entries [ "wfq"; "cfs" ])
        ~tenants:(small_mix ~connections:16 ~load:30.0 ())
        ()
    in
    Fleet.run f ~until:(ms 200);
    (Enoki.Record.contents record, Fleet.tenant_stats f, Fleet.clock f)
  in
  let log_on, stats_on, clock_on = run true in
  let log_off, stats_off, clock_off = run false in
  check Alcotest.bool "record captured scheduler calls" true (String.length log_off > 0);
  check Alcotest.bool "record logs byte-identical" true (log_on = log_off);
  check Alcotest.bool "tenant stats identical" true (stats_on = stats_off);
  check Alcotest.int "clocks identical" clock_off clock_on

let test_anatomy_exemplars_deterministic () =
  let run () =
    let f =
      Fleet.create ~workers:4 ~warmup:(ms 50) ~anatomy:true ~anatomy_top:4 ~seed:11
        ~hosts:(entries [ "wfq"; "cfs" ])
        ~tenants:(small_mix ~connections:16 ~load:30.0 ())
        ()
    in
    Fleet.run f ~until:(ms 200);
    Option.get (Fleet.anatomy f)
  in
  let a = run () in
  let key (c : Anatomy.completion) = (c.Anatomy.req, Anatomy.e2e c, c.Anatomy.durations) in
  check Alcotest.bool "same seed, same exemplars" true
    (List.map key (Anatomy.exemplars a) = List.map key (Anatomy.exemplars (run ())));
  let es = Anatomy.exemplars a in
  check Alcotest.bool "ring bounded by top_k" true (List.length es <= 4 && es <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Anatomy.e2e a >= Anatomy.e2e b && sorted rest
    | _ -> true
  in
  check Alcotest.bool "exemplars worst-first" true (sorted es);
  let json = Anatomy.chrome_json a in
  check Alcotest.bool "chrome flow export non-empty" true (String.length json > 2);
  (* every exemplar's flow arrows ride on its request-id *)
  List.iter
    (fun (c : Anatomy.completion) ->
      let needle = Printf.sprintf "\"id\":%d" c.Anatomy.req in
      let found =
        let n = String.length needle and l = String.length json in
        let rec scan i = i + n <= l && (String.sub json i n = needle || scan (i + 1)) in
        scan 0
      in
      if not found then Alcotest.failf "exemplar req %d missing from chrome export" c.Anatomy.req)
    es

(* ---------- seed plumbing (the Setup.workload_seed satellite) ---------- *)

let test_workload_seed_splitter () =
  check Alcotest.int "canonical schbench seed" 42 (Workloads.Setup.workload_seed "schbench");
  check Alcotest.int "canonical rocksdb seed" 7 (Workloads.Setup.workload_seed "rocksdb");
  check Alcotest.int "canonical memcached seed" 11 (Workloads.Setup.workload_seed "memcached");
  let a = Workloads.Setup.workload_seed ~seed:123 "schbench" in
  check Alcotest.int "stable for (root, name)" a
    (Workloads.Setup.workload_seed ~seed:123 "schbench");
  check Alcotest.bool "names decorrelate" true
    (a <> Workloads.Setup.workload_seed ~seed:123 "rocksdb");
  check Alcotest.bool "roots decorrelate" true
    (a <> Workloads.Setup.workload_seed ~seed:124 "schbench");
  check Alcotest.bool "non-negative" true (a >= 0)

(* ---------- suite ---------- *)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let () =
  Alcotest.run "cluster"
    [
      ( "traffic",
        [
          Alcotest.test_case "deterministic and window-independent" `Quick
            test_traffic_deterministic_window_independent;
          Alcotest.test_case "live flows bounded under 1M+ flow churn" `Slow
            test_bounded_live_flows_under_churn;
          qtest ~count:10 "diurnal integrates to mean rate" QCheck.small_nat
            prop_diurnal_integrates;
        ] );
      ( "lb",
        [
          qtest ~count:25 "consistent hash: churn remaps only the victim" QCheck.small_nat
            prop_consistent_hash_remap;
          qtest ~count:100 "pick never returns a drained host"
            QCheck.(pair small_nat (small_list (pair small_nat small_nat)))
            prop_pick_never_drained;
          Alcotest.test_case "smooth WRR exact proportions" `Quick
            test_weighted_exact_proportions;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "bit-for-bit deterministic from seed" `Quick
            test_fleet_deterministic;
          Alcotest.test_case "rolling upgrade: pause and blackout attribution" `Quick
            test_rolling_upgrade_pause_and_blackout;
          Alcotest.test_case "chaos drill: panic, drain, failover, re-admit" `Quick
            test_chaos_drill_converges;
        ] );
      ( "parallel",
        [
          qtest ~count:6 "fleet -j k byte-identical to sequential"
            QCheck.(quad small_nat small_nat small_nat small_nat)
            prop_fleet_parallel_deterministic;
          Alcotest.test_case "chaos drill under parallelism: identical" `Quick
            test_chaos_drill_parallel_identical;
        ] );
      ( "anatomy",
        [
          Alcotest.test_case "phases sum exactly: every scheduler" `Slow
            test_anatomy_sums_every_scheduler;
          Alcotest.test_case "phases sum exactly: every LB policy" `Quick
            test_anatomy_sums_every_lb;
          qtest ~count:8 "phases sum exactly: random sched x lb x seed"
            QCheck.(triple small_nat small_nat small_nat)
            prop_anatomy_sums;
          Alcotest.test_case "anatomy on/off: zero perturbation" `Quick
            test_anatomy_zero_perturbation;
          Alcotest.test_case "exemplars deterministic, worst-first, exported" `Quick
            test_anatomy_exemplars_deterministic;
        ] );
      ( "seeds",
        [ Alcotest.test_case "workload_seed splitter" `Quick test_workload_seed_splitter ] );
    ]
