(* The reproduction harness: one section per table and figure of the
   paper's evaluation (§5), plus bechamel microbenchmarks of the framework
   and data-structure hot paths.

     dune exec bench/main.exe                      -- everything
     dune exec bench/main.exe -- table3 fig2a ...  -- a subset

   Simulated results are printed next to the paper's numbers where the
   paper reports scalars.  Absolute values come from a calibrated simulator
   (see DESIGN.md); the claim under reproduction is the *shape*: who wins,
   by roughly what factor, and where the crossovers sit. *)

module M = Kernsim.Machine
module T = Kernsim.Task

let one_socket = Kernsim.Topology.one_socket

let two_socket = Kernsim.Topology.two_socket

(* ---------- schedtrace options ----------

   --trace=PATH / --trace-format=chrome|ftrace / --sanitize apply to every
   machine the experiments build; traces are exported and the sanitizer
   verdicts reported after the experiments finish. *)

let trace_format = ref Trace.Export.Chrome

let sanitize = ref false

(* --seed=N overrides every workload's PRNG seed (each workload has its own
   canonical default, printed in the run header, so results are reproducible
   either way) *)
let seed : int option ref = ref None

let seed_or d = Option.value !seed ~default:d

let schbench_params () = Workloads.Schbench.default_params ?seed:!seed ()

let rocksdb_params ~load_kreqs ~with_batch =
  Workloads.Rocksdb.default_params ?seed:!seed ~load_kreqs ~with_batch ()

let memcached_params ~mode ~load_kreqs =
  Workloads.Memcached.default_params ?seed:!seed ~mode ~load_kreqs ()

(* ---------- -j N: the domain pool ----------

   Bench cells are independent simulations — each builds its own machine,
   registry and tracer, and the Lock shim's mode/tap/id state is
   domain-local — so the matrix experiments (perf, speed, sanity, chaos)
   compute their rows with a small pool of domains and print them in input
   order afterwards.  Tables are byte-identical to a sequential run (the
   simulations are deterministic); only wall clock changes.  Trace export
   (--trace=) names files by registration order, so tracing forces the
   pool down to one domain. *)

let jobs = ref 1

let trace_path : string option ref = ref None

let effective_jobs () = if !trace_path <> None then 1 else max 1 !jobs

(* bytes allocated inside the pool's domains, for the per-experiment
   footer (Gc.allocated_bytes is domain-local) *)
let cells_allocated = Atomic.make 0

(* one shared pool for the whole bench run, spawned lazily on the first
   parallel batch and parked between batches; every cell starts from a
   fresh Lock context so no mode/tap/id state leaks between cells or from
   the main domain into a worker *)
let the_pool : Ds.Domain_pool.t option ref = ref None

let get_pool () =
  match !the_pool with
  | Some p -> p
  | None ->
    let p =
      Ds.Domain_pool.create
        ~on_task:(fun () -> Enoki.Lock.install_ctx (Enoki.Lock.fresh_ctx ()))
        ~domains:(effective_jobs ()) ()
    in
    the_pool := Some p;
    p

let () = at_exit (fun () -> Option.iter Ds.Domain_pool.shutdown !the_pool)

let parallel_map (xs : 'a list) ~(f : 'a -> 'b) : 'b list =
  if effective_jobs () <= 1 || List.length xs <= 1 then List.map f xs
  else begin
    let pool = get_pool () in
    (* the main domain claims cells too, and the on_task hook resets its
       Lock context per cell — restore it once the batch settles *)
    let ctx = Enoki.Lock.capture_ctx () in
    let a0 = Ds.Domain_pool.allocated_bytes pool in
    let out =
      Fun.protect
        (fun () -> Ds.Domain_pool.map_list pool xs ~f)
        ~finally:(fun () -> Enoki.Lock.install_ctx ctx)
    in
    ignore
      (Atomic.fetch_and_add cells_allocated
         (int_of_float (Ds.Domain_pool.allocated_bytes pool -. a0)));
    out
  end

let traced : (string * Trace.Tracer.t * Trace.Sanitizer.t option) list ref = ref []

let traced_mutex = Mutex.create ()

let add_traced entry = Mutex.protect traced_mutex (fun () -> traced := entry :: !traced)

let build ?costs ?record ~topology kind =
  if !trace_path = None && not !sanitize then
    Workloads.Setup.build ?costs ?record ~topology kind
  else begin
    let nr_cpus = Kernsim.Topology.nr_cpus topology in
    let tracer = Trace.Tracer.create ~nr_cpus () in
    let sanitizer =
      if !sanitize then begin
        let s = Trace.Sanitizer.create ~nr_cpus () in
        Trace.Sanitizer.attach s tracer;
        Some s
      end
      else None
    in
    add_traced (Workloads.Setup.label kind, tracer, sanitizer);
    Workloads.Setup.build ?costs ?record ~tracer ~topology kind
  end

let finish_tracing () =
  let entries = List.rev !traced in
  (match !trace_path with
  | None -> ()
  | Some base ->
    List.iteri
      (fun i (label, tracer, _) ->
        let path =
          if List.length entries = 1 then base else Printf.sprintf "%s.%d-%s" base i label
        in
        let events = Trace.Tracer.events tracer in
        Trace.Export.save ~path !trace_format events;
        Printf.printf "trace: %s -> %s (%d events, %d dropped)\n" label path
          (List.length events) (Trace.Tracer.dropped tracer))
      entries);
  if !sanitize && entries <> [] then begin
    Report.section "Sanitizer summary";
    List.iter
      (fun (label, _, sanitizer) ->
        match sanitizer with
        | Some s ->
          Printf.printf "  %-24s %9d events, %d violations\n" label
            (Trace.Sanitizer.events_seen s)
            (List.length (Trace.Sanitizer.violations s));
          if not (Trace.Sanitizer.ok s) then print_endline (Trace.Sanitizer.report_string s)
        | None -> ())
      entries
  end

(* the scheduler matrix of Tables 3 and 4 *)
let matrix =
  [
    ("CFS", `Kind Workloads.Setup.Cfs);
    ("GhOSt SOL", `Kind (Workloads.Setup.Ghost Schedulers.Ghost_sim.Sol));
    ("GhOSt FIFO", `Kind (Workloads.Setup.Ghost Schedulers.Ghost_sim.Fifo_per_cpu));
    ("WFQ", `Kind (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)));
    ("Shinjuku", `Kind (Workloads.Setup.Enoki_sched (module Schedulers.Shinjuku)));
    ("Locality", `Kind (Workloads.Setup.Enoki_sched (module Schedulers.Locality)));
    ("Arachne", `Userlevel);
  ]

(* ---------- Table 3: perf bench sched pipe ---------- *)

let table3 () =
  Report.section "Table 3: sched-pipe message latency (us per wakeup)";
  let paper = [ ("CFS", (3.0, 3.6)); ("GhOSt SOL", (6.0, 5.8)); ("GhOSt FIFO", (9.1, 7.0));
                ("WFQ", (3.6, 4.0)); ("Shinjuku", (4.0, 4.4)); ("Locality", (3.5, 3.9));
                ("Arachne", (0.1, 0.2)) ] in
  let messages = 50_000 in
  let rows =
    List.map
      (fun (name, how) ->
        let run ~same_core =
          match how with
          | `Kind kind ->
            (Workloads.Pipe_bench.run (build ~topology:one_socket kind) ~same_core ~messages ())
              .Workloads.Pipe_bench.us_per_wakeup
          | `Userlevel ->
            (Workloads.Pipe_bench.run_userlevel
               (build ~topology:one_socket Workloads.Setup.Cfs)
               ~same_core ~messages ())
              .Workloads.Pipe_bench.us_per_wakeup
        in
        let one = run ~same_core:true and two = run ~same_core:false in
        let p1, p2 = List.assoc name paper in
        [ name; Report.fmt_f2 one; Report.fmt_f1 p1; Report.fmt_f2 two; Report.fmt_f1 p2 ])
      matrix
  in
  Report.table
    ~header:[ "scheduler"; "one core"; "(paper)"; "two cores"; "(paper)" ]
    rows

(* ---------- Table 4: schbench scalability ---------- *)

let table4 () =
  Report.section "Table 4: schbench wakeup latency, 80-core box (us)";
  let paper =
    [ ("CFS", (74, 101, 139, 320)); ("GhOSt SOL", (66, 132, 192, 1354));
      ("GhOSt FIFO", (101, 170, 152, 1806)); ("WFQ", (78, 104, 170, 323));
      ("Shinjuku", (79, 109, 168, 307)); ("Locality", (80, 105, 175, 324));
      ("Arachne", (1, 1, 1, 1)) ]
  in
  let run_one how workers =
    let params =
      { (schbench_params ()) with
        workers;
        warmup = Kernsim.Time.ms 500;
        duration = Kernsim.Time.ms 1500;
      }
    in
    match how with
    | `Kind kind -> Workloads.Schbench.run (build ~topology:two_socket kind) params
    | `Userlevel ->
      Workloads.Schbench.run_userlevel (build ~topology:two_socket Workloads.Setup.Cfs) params
  in
  let rows =
    List.map
      (fun (name, how) ->
        let small = run_one how 2 in
        let large = run_one how 40 in
        let p50s, p99s, p50l, p99l = List.assoc name paper in
        [
          name;
          Report.fmt_f1 (Kernsim.Time.to_us small.Workloads.Schbench.p50);
          Report.fmt_f1 (Kernsim.Time.to_us small.Workloads.Schbench.p99);
          Printf.sprintf "(%d/%d)" p50s p99s;
          Report.fmt_f1 (Kernsim.Time.to_us large.Workloads.Schbench.p50);
          Report.fmt_f1 (Kernsim.Time.to_us large.Workloads.Schbench.p99);
          Printf.sprintf "(%d/%d)" p50l p99l;
        ])
      matrix
  in
  Report.table
    ~header:
      [ "scheduler"; "2 tasks p50"; "p99"; "(paper p50/p99)"; "40 tasks p50"; "p99";
        "(paper p50/p99)" ]
    rows;
  Report.note "paper: 2 message threads with 2 or 40 workers each; shapes to match:";
  Report.note "ghOSt tails blow up at 40 workers; WFQ/Shinjuku/Locality track CFS; Arachne ~1us."

(* ---------- Table 5: NAS + Phoronix application suite ---------- *)

let table5 () =
  Report.section "Table 5: application benchmarks, CFS vs Enoki WFQ (percent slowdown)";
  let run_app kind app =
    (Workloads.Apps.run (build ~topology:one_socket kind) app).Workloads.Apps.score
  in
  let bench_rows apps =
    List.map
      (fun (app : Workloads.Apps.app) ->
        let cfs = run_app Workloads.Setup.Cfs app in
        let wfq = run_app (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) app in
        let diff = Stats.Summary.percent_diff ~baseline:cfs ~value:wfq in
        (app.Workloads.Apps.name, cfs, wfq, diff))
      apps
  in
  let nas = bench_rows Workloads.Apps.nas in
  let phoronix = bench_rows Workloads.Apps.phoronix in
  let to_row (name, cfs, wfq, diff) =
    [ name; Printf.sprintf "%.1f" cfs; Printf.sprintf "%.1f" wfq; Report.fmt_pct diff ]
  in
  Report.note "NAS Parallel Benchmarks (synthetic analogues, score = work/s):";
  Report.table ~header:[ "benchmark"; "CFS"; "WFQ"; "diff" ] (List.map to_row nas);
  Report.note "";
  Report.note "Phoronix multicore (synthetic analogues):";
  Report.table ~header:[ "benchmark"; "CFS"; "WFQ"; "diff" ] (List.map to_row phoronix);
  let all = nas @ phoronix in
  let diffs = List.map (fun (_, _, _, d) -> d) all in
  let geo = Stats.Summary.geomean diffs in
  let worst = List.fold_left Float.max neg_infinity diffs in
  Report.note "";
  Report.note (Printf.sprintf "geometric mean of |diff| = %.2f%%   (paper: 0.74%%)" geo);
  Report.note (Printf.sprintf "max slowdown          = %.2f%%   (paper: 8.57%%)" worst)

(* ---------- Figure 2: RocksDB + Shinjuku ---------- *)

let fig2_kinds =
  [
    ("CFS", Workloads.Setup.Cfs);
    ("ghOSt-Shinjuku", Workloads.Setup.Ghost Schedulers.Ghost_sim.Gshinjuku);
    ("Enoki-Shinjuku", Workloads.Setup.Enoki_sched (module Schedulers.Shinjuku));
  ]

let fig2_loads = [ 20.; 30.; 40.; 50.; 60.; 70.; 80. ]

let fig2_run ~with_batch =
  List.map
    (fun load ->
      ( load,
        List.map
          (fun (name, kind) ->
            let b = build ~topology:one_socket kind in
            ( name,
              Workloads.Rocksdb.run b (rocksdb_params ~load_kreqs:load ~with_batch) ))
          fig2_kinds ))
    fig2_loads

let fig2a () =
  Report.section "Figure 2a: RocksDB 99% latency (us) vs load, no batch";
  let results = fig2_run ~with_batch:false in
  Report.table
    ~header:("load (k req/s)" :: List.map fst fig2_kinds)
    (List.map
       (fun (load, per) ->
         Printf.sprintf "%.0f" load
         :: List.map (fun (_, (p : Workloads.Rocksdb.point)) -> Report.fmt_f1 p.p99_us) per)
       results);
  Report.note "shape to match (paper, log-scale): CFS climbs to 10^3-10^4 us well before";
  Report.note "saturation; both Shinjuku schedulers stay at 10^1-10^2 us until ~80k, with";
  Report.note "Enoki ~30% below ghOSt at high load."

let fig2bc () =
  Report.section "Figure 2b: RocksDB 99% latency (us) vs load, batch co-located";
  let results = fig2_run ~with_batch:true in
  Report.table
    ~header:("load (k req/s)" :: List.map fst fig2_kinds)
    (List.map
       (fun (load, per) ->
         Printf.sprintf "%.0f" load
         :: List.map (fun (_, (p : Workloads.Rocksdb.point)) -> Report.fmt_f1 p.p99_us) per)
       results);
  Report.note "shape: Shinjuku tails unaffected by the batch app; CFS tail worsens.";
  Report.section "Figure 2c: CPU share of the co-located batch app (cores)";
  Report.table
    ~header:("load (k req/s)" :: List.map fst fig2_kinds)
    (List.map
       (fun (load, per) ->
         Printf.sprintf "%.0f" load
         :: List.map (fun (_, (p : Workloads.Rocksdb.point)) -> Report.fmt_f2 p.batch_cpus) per)
       results);
  Report.note "shape: CFS and Enoki give the batch app a similar declining share;";
  Report.note "ghOSt gives less (the userspace scheduler eats cycles)."

(* ---------- Table 6: locality hints ---------- *)

let table6 () =
  Report.section "Table 6: modified schbench wakeup latency with locality hints (us)";
  let run kind ~hints ~pin =
    let params =
      { (schbench_params ()) with
        Workloads.Schbench.messages = 2;
        workers = 2;
        warmup = Kernsim.Time.ms 500;
        duration = Kernsim.Time.sec 2;
        locality_hints = hints;
        pin_one_core = pin;
      }
    in
    Workloads.Schbench.run (build ~topology:one_socket kind) params
  in
  let configs =
    [
      ("CFS", run Workloads.Setup.Cfs ~hints:false ~pin:false, (33, 50));
      ("CFS One Core", run Workloads.Setup.Cfs ~hints:false ~pin:true, (17, 32032));
      ( "Random (no hints)",
        run (Workloads.Setup.Enoki_sched (module Schedulers.Locality)) ~hints:false ~pin:false,
        (46, 49) );
      ( "Hints",
        run (Workloads.Setup.Enoki_sched (module Schedulers.Locality)) ~hints:true ~pin:false,
        (2, 4) );
    ]
  in
  Report.table
    ~header:[ "config"; "p50"; "p99"; "(paper p50/p99)" ]
    (List.map
       (fun (name, (r : Workloads.Schbench.result), (p50, p99)) ->
         [
           name;
           Report.fmt_f1 (Kernsim.Time.to_us r.p50);
           Report.fmt_f1 (Kernsim.Time.to_us r.p99);
           Printf.sprintf "(%d/%d)" p50 p99;
         ])
       configs);
  Report.note "shape: hints beat CFS and random placement; pinning everything to one";
  Report.note "core destroys the tail."

(* ---------- Figure 3: memcached + Arachne ---------- *)

let fig3 () =
  Report.section "Figure 3: memcached 99% latency (us) vs load";
  let modes =
    [
      ("CFS", Workloads.Memcached.Cfs, Workloads.Setup.Cfs);
      ( "Arachne",
        Workloads.Memcached.Arachne_native,
        Workloads.Setup.Enoki_sched (module Schedulers.Arachne) );
      ( "Enoki-Arachne",
        Workloads.Memcached.Arachne_enoki,
        Workloads.Setup.Enoki_sched (module Schedulers.Arachne) );
    ]
  in
  let loads = [ 50.; 100.; 150.; 200.; 250.; 300.; 350.; 390. ] in
  let results =
    List.map
      (fun load ->
        ( load,
          List.map
            (fun (name, mode, kind) ->
              let b = build ~topology:one_socket kind in
              ( name, Workloads.Memcached.run b (memcached_params ~mode ~load_kreqs:load) ))
            modes ))
      loads
  in
  Report.table
    ~header:("load (k req/s)" :: List.map (fun (n, _, _) -> n) modes)
    (List.map
       (fun (load, per) ->
         Printf.sprintf "%.0f" load
         :: List.map (fun (_, (p : Workloads.Memcached.point)) -> Report.fmt_f1 p.p99_us) per)
       results);
  Report.note "";
  Report.note "server cores held (Arachne scales 2-7, CFS uses all 8):";
  Report.table
    ~header:("load (k req/s)" :: List.map (fun (n, _, _) -> n) modes)
    (List.map
       (fun (load, per) ->
         Printf.sprintf "%.0f" load
         :: List.map (fun (_, (p : Workloads.Memcached.point)) -> Report.fmt_f2 p.avg_cores) per)
       results);
  Report.note "shape: Enoki-Arachne tracks native Arachne; both beat CFS at high load."

(* ---------- §5.7: live upgrade ---------- *)

let upgrade () =
  Report.section "Live upgrade pause (5.7)";
  let measure ~topology ~workers =
    let b = build ~topology (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
    let params =
      { (schbench_params ()) with
        Workloads.Schbench.workers;
        warmup = Kernsim.Time.ms 50;
        duration = Kernsim.Time.ms 400;
      }
    in
    let e = Option.get b.Workloads.Setup.enoki in
    let pauses = ref [] in
    (* three upgrades, averaged, as the paper averages three runs *)
    List.iter
      (fun delay ->
        M.at b.Workloads.Setup.machine ~delay (fun () ->
            match Enoki.Enoki_c.upgrade e (module Schedulers.Wfq) with
            | Ok s -> pauses := Kernsim.Time.to_us s.Enoki.Upgrade.pause :: !pauses
            | Error exn -> raise exn))
      [ Kernsim.Time.ms 100; Kernsim.Time.ms 200; Kernsim.Time.ms 300 ];
    ignore (Workloads.Schbench.run b params);
    Stats.Summary.mean !pauses
  in
  let rows =
    [
      ("one socket, 2 msg x 2 workers", measure ~topology:one_socket ~workers:2, 1.5);
      ("two socket, 2 msg x 2 workers", measure ~topology:two_socket ~workers:2, 9.9);
      ("two socket, 2 msg x 40 workers", measure ~topology:two_socket ~workers:40, 10.1);
    ]
  in
  Report.table
    ~header:[ "configuration"; "pause (us)"; "paper (us)" ]
    (List.map (fun (n, v, p) -> [ n; Report.fmt_f2 v; Report.fmt_f1 p ]) rows);
  Report.note "shape: microsecond-scale pause, growing with machine/task-state size."

(* §5.8 record/replay lives after the speed suite: it shares the
   Gc.allocated_bytes measurement pattern and the JSON snapshot plumbing. *)

(* ---------- Appendix A.1: WFQ functional equivalence ---------- *)

let appendix () =
  Report.section "Appendix A.1: WFQ functional equivalence";
  let work = Kernsim.Time.ms 200 in
  let both f =
    let cfs = f (build ~topology:one_socket Workloads.Setup.Cfs) in
    let wfq =
      f (build ~topology:one_socket (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)))
    in
    (cfs, wfq)
  in
  let c_spread, w_spread = both (fun b -> Workloads.Fairness.fair_share b ~colocated:false ~work) in
  let c_col, w_col = both (fun b -> Workloads.Fairness.fair_share b ~colocated:true ~work) in
  Report.table
    ~header:[ "experiment"; "CFS (s)"; "WFQ (s)" ]
    [
      [
        "5 hogs spread: mean completion";
        Report.fmt_f2 (Stats.Summary.mean c_spread);
        Report.fmt_f2 (Stats.Summary.mean w_spread);
      ];
      [
        "5 hogs one core: mean completion";
        Report.fmt_f2 (Stats.Summary.mean c_col);
        Report.fmt_f2 (Stats.Summary.mean w_col);
      ];
    ];
  Report.note "expected: ~5x longer when co-located; identical across schedulers";
  let (c_norm, c_low), (w_norm, w_low) = both (fun b -> Workloads.Fairness.weighted b ~work) in
  Report.table
    ~header:[ "experiment"; "CFS (s)"; "WFQ (s)" ]
    [
      [
        "4 normal hogs mean completion";
        Report.fmt_f2 (Stats.Summary.mean c_norm);
        Report.fmt_f2 (Stats.Summary.mean w_norm);
      ];
      [ "nice-19 hog completion"; Report.fmt_f2 c_low; Report.fmt_f2 w_low ];
    ];
  Report.note "expected: the minimum-priority hog finishes last on both schedulers";
  let c_stay, w_stay = both (fun b -> Workloads.Fairness.placement b ~move:false ~work) in
  let c_move, w_move = both (fun b -> Workloads.Fairness.placement b ~move:true ~work) in
  Report.table
    ~header:[ "experiment"; "CFS mean/stdev (s)"; "WFQ mean/stdev (s)" ]
    [
      [
        "1 hog per core";
        Printf.sprintf "%.3f / %.4f" (fst c_stay) (snd c_stay);
        Printf.sprintf "%.3f / %.4f" (fst w_stay) (snd w_stay);
      ];
      [
        "with forced move";
        Printf.sprintf "%.3f / %.4f" (fst c_move) (snd c_move);
        Printf.sprintf "%.3f / %.4f" (fst w_move) (snd w_move);
      ];
    ];
  Report.note "expected: same means; WFQ shows more completion variation after a forced move"

(* ---------- Table 2 analogue: component sizes ---------- *)

let loc () =
  Report.section "Table 2 analogue: lines of code of our components";
  let count_dir dir =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
      |> List.fold_left
           (fun acc f ->
             let ic = open_in (Filename.concat dir f) in
             let n = ref 0 in
             (try
                while true do
                  ignore (input_line ic);
                  incr n
                done
              with End_of_file -> close_in ic);
             acc + !n)
           0
    else -1
  in
  let rows =
    List.filter_map
      (fun (name, dir, paper) ->
        let n = count_dir dir in
        if n >= 0 then Some [ name; string_of_int n; paper ] else None)
      [
        ("kernel simulator (Enoki-C analogue + sched core)", "lib/kernsim", "Enoki-C: 2411 (C)");
        ("Enoki framework (libEnoki analogue)", "lib/core", "libEnoki: 962+5870 (Rust)");
        ( "schedulers (FIFO/WFQ/Shinjuku/Locality/Arachne/ghOSt)",
          "lib/schedulers",
          "646+285+203+579 (Rust)" );
        ("workload generators", "lib/workloads", "benchmark suites");
        ("data structures", "lib/ds", "-");
      ]
  in
  if rows = [] then Report.note "sources not found (run from the repository root)"
  else Report.table ~header:[ "component"; "LoC"; "paper analogue" ] rows

(* ---------- ablations of the design choices DESIGN.md calls out ---------- *)

let ablation () =
  Report.section "Ablation: Shinjuku preemption slice (RocksDB @ 55k req/s)";
  (* §4.2.2 picks 10us "to prevent overloading the scheduler"; sweep it *)
  let rows =
    List.map
      (fun slice_us ->
        let (module S) = Schedulers.Shinjuku.with_slice (Kernsim.Time.us slice_us) in
        let b = build ~topology:one_socket (Workloads.Setup.Enoki_sched (module S)) in
        let r = Workloads.Rocksdb.run b (rocksdb_params ~load_kreqs:55.0 ~with_batch:false) in
        [
          Printf.sprintf "%d us" slice_us;
          Report.fmt_f1 r.Workloads.Rocksdb.p50_us;
          Report.fmt_f1 r.Workloads.Rocksdb.p99_us;
          Report.fmt_f1 r.Workloads.Rocksdb.achieved_kreqs;
        ])
      [ 2; 5; 10; 50; 250 ]
  in
  Report.table ~header:[ "slice"; "p50 (us)"; "p99 (us)"; "achieved (k/s)" ] rows;
  Report.note "expected: tiny slices burn throughput on preemption overhead; large";
  Report.note "slices let range queries block GETs; 5-10us is the sweet spot.";

  Report.section "Ablation: Enoki per-invocation overhead (sched-pipe, two cores)";
  (* the paper measures 100-150ns/invocation; what if the framework cost more? *)
  let rows =
    List.map
      (fun call_ns ->
        let costs = { Kernsim.Costs.default with enoki_call = call_ns } in
        let b =
          build ~costs ~topology:one_socket (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
        in
        let r = Workloads.Pipe_bench.run b ~messages:20_000 () in
        [ Printf.sprintf "%d ns" call_ns; Report.fmt_f2 r.Workloads.Pipe_bench.us_per_wakeup ])
      [ 0; 125; 250; 500; 1000; 2000 ]
  in
  Report.table ~header:[ "per-call overhead"; "us/wakeup" ] rows;
  Report.note "expected: ~4 invocations per schedule op, so us/wakeup grows by ~4x the";
  Report.note "per-call cost; at 125ns (measured by the paper) Enoki stays within ~0.6us of CFS.";

  Report.section "Ablation: WFQ idle-stealing (skewed tasks, completion score)";
  let unbalanced =
    {
      Workloads.Apps.name = "skewed";
      unit_ = "score";
      seed = seed_or 33;
      family = Workloads.Apps.Unbalanced { tasks = 12; base = Kernsim.Time.ms 4; skew = 3.0; steps = 12 };
    }
  in
  let steal =
    (Workloads.Apps.run
       (build ~topology:one_socket (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)))
       unbalanced)
      .Workloads.Apps.score
  in
  let (module NS) = Schedulers.Wfq.without_steal in
  let nosteal =
    (Workloads.Apps.run
       (build ~topology:one_socket (Workloads.Setup.Enoki_sched (module NS)))
       unbalanced)
      .Workloads.Apps.score
  in
  Report.table
    ~header:[ "variant"; "score"; "vs stealing" ]
    [
      [ "wfq (steals when idle)"; Report.fmt_f1 steal; "-" ];
      [
        "wfq-nosteal";
        Report.fmt_f1 nosteal;
        Report.fmt_pct (Stats.Summary.percent_diff ~baseline:steal ~value:nosteal);
      ];
    ];
  Report.note "expected: without §4.2.1's longest-queue stealing, skewed task lengths";
  Report.note "strand work behind long tasks and the score drops.";

  Report.section "Ablation: record ring capacity vs dropped events";
  let rows =
    List.map
      (fun capacity ->
        let record = Enoki.Record.create ~capacity () in
        let b =
          build ~record ~topology:one_socket (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
        in
        ignore (Workloads.Pipe_bench.run b ~messages:5_000 ());
        Enoki.Record.drain record;
        [
          string_of_int capacity;
          string_of_int (Enoki.Record.length record);
          string_of_int (Enoki.Record.dropped record);
        ])
      [ 64; 1024; 65536 ]
  in
  Report.table ~header:[ "ring capacity"; "lines kept"; "lines dropped" ] rows;
  Report.note "the paper: \"if the buffer overruns, events may be dropped\" -- quantified.";

  Report.section "Ablation: Nest-style warm cores vs CFS (sparse periodic load)";
  let sparse_run kind =
    let b = build ~topology:one_socket kind in
    let m = b.Workloads.Setup.machine in
    for i = 1 to 6 do
      let beh =
        let left = ref 1500 and st = ref `Work in
        fun (_ : T.ctx) ->
          match !st with
          | `Work ->
            if !left = 0 then T.Exit
            else begin
              decr left;
              st := `Sleep;
              T.Compute (Kernsim.Time.us 50)
            end
          | `Sleep ->
            st := `Work;
            T.Sleep (Kernsim.Time.us 250)
      in
      ignore
        (M.spawn m
           { (T.default_spec ~name:(Printf.sprintf "sparse%d" i) beh) with
             T.policy = b.Workloads.Setup.policy })
    done;
    M.run_for m (Kernsim.Time.sec 1);
    let mets = M.metrics m in
    let cores =
      List.length
        (List.filter
           (fun c -> Kernsim.Accounting.busy_of_cpu mets c > Kernsim.Time.us 100)
           (List.init 8 Fun.id))
    in
    let p50 = Stats.Histogram.percentile (Kernsim.Accounting.wakeup_latency mets) 50.0 in
    (cores, p50)
  in
  let cfs_cores, cfs_p50 = sparse_run Workloads.Setup.Cfs in
  let nest_cores, nest_p50 = sparse_run (Workloads.Setup.Enoki_sched (module Schedulers.Nest)) in
  Report.table
    ~header:[ "scheduler"; "cores touched"; "wakeup p50" ]
    [
      [ "CFS"; string_of_int cfs_cores; Kernsim.Time.to_string cfs_p50 ];
      [ "Nest (Enoki)"; string_of_int nest_cores; Kernsim.Time.to_string nest_p50 ];
    ];
  Report.note "expected (Nest, EuroSys '22, cited in the paper's motivation): reusing";
  Report.note "warm cores touches fewer cores AND wakes faster -- cold cores pay the";
  Report.note "deep idle-state exit on every wakeup."

(* ---------- sanity: the full scheduler matrix under the sanitizer ---------- *)

let sanity () =
  Report.section "Sanity: every in-tree scheduler under the invariant sanitizer";
  (* each scheduler runs its default workload; arachne is a core arbiter
     (tasks are activations, only dispatched once its runtime requests
     cores), so it is driven by the memcached runtime rather than raw pipe
     tasks *)
  let pipe b = ignore (Workloads.Pipe_bench.run b ~messages:5_000 ()) in
  let memcached b =
    ignore
      (Workloads.Memcached.run b
         (memcached_params ~mode:Workloads.Memcached.Arachne_enoki ~load_kreqs:100.))
  in
  let all = Trace.Sanitizer.default_config in
  (* a core arbiter is neither work-conserving nor starvation-free for
     parked activations: those two invariants are renounced by design *)
  let arbiter =
    { all with Trace.Sanitizer.disabled = [ Trace.Sanitizer.Work_conservation; Starvation ] }
  in
  let kinds =
    List.map
      (fun (e : Schedulers.Registry.entry) ->
        let kind = Workloads.Setup.of_registry e in
        if e.Schedulers.Registry.arbiter then (kind, memcached, arbiter) else (kind, pipe, all))
      Schedulers.Registry.all
  in
  let cells =
    parallel_map kinds ~f:(fun (kind, workload, config) ->
        let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
        let tracer = Trace.Tracer.create ~nr_cpus () in
        let s = Trace.Sanitizer.create ~config ~nr_cpus () in
        Trace.Sanitizer.attach s tracer;
        (* register for --trace= export; sanitizer stays local so the row
           verdict below is the single report *)
        if !trace_path <> None then
          add_traced (Workloads.Setup.label kind, tracer, None);
        let b = Workloads.Setup.build ~tracer ~topology:one_socket kind in
        workload b;
        let verdict =
          if Trace.Sanitizer.ok s then "clean"
          else Printf.sprintf "%d VIOLATIONS" (List.length (Trace.Sanitizer.violations s))
        in
        let report =
          if Trace.Sanitizer.ok s then None else Some (Trace.Sanitizer.report_string s)
        in
        ( [
            Workloads.Setup.label kind;
            string_of_int (Trace.Sanitizer.events_seen s);
            string_of_int (Trace.Tracer.dropped tracer);
            verdict;
          ],
          report ))
  in
  List.iter (fun (_, report) -> Option.iter print_endline report) cells;
  let rows = List.map fst cells in
  Report.table ~header:[ "scheduler"; "events checked"; "ring drops"; "verdict" ] rows;
  Report.note "invariants: no double-run, no starvation, work conservation,";
  Report.note "Schedulable token discipline, lock acquire/release pairing."

(* ---------- chaos: fault injection and recovery across the matrix ---------- *)

let chaos () =
  Report.section "Chaos: fault injection, failover and watchdog recovery";
  let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
  let pipe b = (Workloads.Pipe_bench.run b ~messages:5_000 ()).Workloads.Pipe_bench.completed in
  let memcached b =
    ignore
      (Workloads.Memcached.run b
         (memcached_params ~mode:Workloads.Memcached.Arachne_enoki ~load_kreqs:100.));
    true
  in
  let all = Trace.Sanitizer.default_config in
  (* arachne is a core arbiter; see sanity() for why these two invariants
     are renounced by design *)
  let arbiter =
    { all with Trace.Sanitizer.disabled = [ Trace.Sanitizer.Work_conservation; Starvation ] }
  in
  let mods : (string * (module Enoki.Sched_trait.S) * _ * _) list =
    (* every Enoki module in the registry gets the full plan matrix; the
       non-module entries (CFS, ghOSt) become controls below *)
    List.filter_map
      (fun (e : Schedulers.Registry.entry) ->
        Option.map
          (fun m ->
            if e.Schedulers.Registry.arbiter then (e.Schedulers.Registry.name, m, memcached, arbiter)
            else (e.Schedulers.Registry.name, m, pipe, all))
          (Schedulers.Registry.enoki_module e))
      Schedulers.Registry.all
  in
  (* plan name, spec, per-call budget, watchdog armed *)
  let plans =
    [
      ("panic", "panic", None, false);
      ("chaos", "chaos", None, false);
      ("wedge+wd", "wedge@pick_next_task:after=500", Some 1_000_000, true);
    ]
  in
  let run_one name (module S : Enoki.Sched_trait.S) workload config ~plan_name ~spec ~budget
      ~watchdog =
    let tracer = Trace.Tracer.create ~nr_cpus () in
    let s = Trace.Sanitizer.create ~config ~nr_cpus () in
    Trace.Sanitizer.attach s tracer;
    if !trace_path <> None then
      add_traced (Printf.sprintf "chaos-%s-%s" name plan_name, tracer, None);
    let plan =
      match Fault.Plan.parse spec with Ok p -> p | Error m -> failwith ("chaos: " ^ m)
    in
    let tally = Hashtbl.create 8 in
    let wrapped = Fault.Inject.wrap ~tally ~seed:1 ~plan (module S) in
    let b =
      Workloads.Setup.build ~tracer ?call_budget:budget ~topology:one_socket
        (Workloads.Setup.Enoki_sched wrapped)
    in
    let e = Option.get b.Workloads.Setup.enoki in
    let rollbacks = ref 0 in
    let wd =
      if not watchdog then None
      else begin
        let w =
          Fault.Watchdog.create ~sanitizer:s
            ~action:(fun ~reason:_ ~at:_ ->
              (* recovery re-enters the scheduler: defer out of the
                 emitting dispatch; pre-upgrade, last-known-good is the
                 pristine unwrapped module *)
              Kernsim.Machine.at b.Workloads.Setup.machine ~delay:0 (fun () ->
                  match
                    match Enoki.Enoki_c.previous e with
                    | Some _ -> Enoki.Enoki_c.rollback e
                    | None -> Enoki.Enoki_c.upgrade e (module S)
                  with
                  | Ok _ -> incr rollbacks
                  | Error _ -> ()))
            ()
        in
        Fault.Watchdog.attach w tracer;
        Some w
      end
    in
    let completed = workload b in
    let f = Enoki.Enoki_c.failover_stats e in
    let injected = Hashtbl.fold (fun _ v acc -> acc + v) tally 0 in
    [
      name;
      plan_name;
      string_of_int injected;
      string_of_int f.Enoki.Enoki_c.panics;
      string_of_int f.Enoki.Enoki_c.failovers;
      (match f.Enoki.Enoki_c.blackout with Some ns -> Kernsim.Time.to_string ns | None -> "-");
      string_of_int f.Enoki.Enoki_c.overruns;
      (match wd with
      | Some w -> string_of_int (List.length (Fault.Watchdog.fires w))
      | None -> "-");
      (if watchdog then string_of_int !rollbacks else "-");
      (if Trace.Sanitizer.ok s then "clean"
       else Printf.sprintf "%d violations" (List.length (Trace.Sanitizer.violations s)));
      (if completed then "yes" else "NO");
    ]
  in
  let control (label, kind) =
    let tracer = Trace.Tracer.create ~nr_cpus () in
    let s = Trace.Sanitizer.create ~config:all ~nr_cpus () in
    Trace.Sanitizer.attach s tracer;
    let b = Workloads.Setup.build ~tracer ~topology:one_socket kind in
    let completed = pipe b in
    [
      label; "(control)"; "0"; "-"; "-"; "-"; "-"; "-"; "-";
      (if Trace.Sanitizer.ok s then "clean"
       else Printf.sprintf "%d violations" (List.length (Trace.Sanitizer.violations s)));
      (if completed then "yes" else "NO");
    ]
  in
  let cells =
    List.concat_map
      (fun (name, m, workload, config) ->
        List.map
          (fun (plan_name, spec, budget, watchdog) ->
            `Inject (name, m, workload, config, plan_name, spec, budget, watchdog))
          plans)
      mods
    @ List.filter_map
        (fun (e : Schedulers.Registry.entry) ->
          match Schedulers.Registry.enoki_module e with
          | Some _ -> None
          | None ->
            Some (`Control (e.Schedulers.Registry.name, Workloads.Setup.of_registry e)))
        Schedulers.Registry.all
  in
  let rows =
    parallel_map cells ~f:(function
      | `Inject (name, m, workload, config, plan_name, spec, budget, watchdog) ->
        run_one name m workload config ~plan_name ~spec ~budget ~watchdog
      | `Control c -> control c)
  in
  Report.table
    ~header:
      [ "scheduler"; "plan"; "injected"; "panics"; "failovers"; "blackout"; "overruns";
        "wd fires"; "rollbacks"; "sanitizer"; "done" ]
    rows;
  Report.note "panic plans must stay clean: the module dies, the boundary quarantines it";
  Report.note "and fails over to built-in CFS with no double-run or token leak.";
  Report.note "chaos plans inject wrong replies, so token-discipline violations there";
  Report.note "are the injected fault surfacing downstream, not a framework bug.";
  Report.note "wedge+wd: the watchdog detects call-budget overruns and re-registers the";
  Report.note "pristine module; rollbacks > 0 with a clean verdict means recovery worked."

(* ---------- microbenchmarks ---------- *)

let micro () =
  Report.section "Microbenchmarks (bechamel, wall clock of hot paths)";
  let open Bechamel in
  let rb_tests =
    let module Rb = Ds.Rbtree.Make (Int) in
    let t = ref Rb.empty in
    for i = 0 to 1023 do
      t := Rb.add i i !t
    done;
    [
      Test.make ~name:"rbtree add+remove (1k tree)"
        (Staged.stage (fun () ->
             let t' = Rb.add 2000 0 !t in
             ignore (Rb.remove 2000 t')));
      Test.make ~name:"rbtree min_binding (1k tree)"
        (Staged.stage (fun () -> ignore (Rb.min_binding_opt !t)));
    ]
  in
  let msg_tests =
    let s = Enoki.Schedulable.Private.create ~pid:1 ~cpu:2 ~gen:3 in
    let call = Enoki.Message.Task_wakeup { pid = 1; runtime = 5000; waker_cpu = 0; sched = s } in
    let line = Enoki.Message.encode_call call in
    [
      Test.make ~name:"message encode" (Staged.stage (fun () -> ignore (Enoki.Message.encode_call call)));
      Test.make ~name:"message decode" (Staged.stage (fun () -> ignore (Enoki.Message.decode_call line)));
    ]
  in
  let dispatch_test =
    let ctx = Enoki.Ctx.inert () in
    let st = Schedulers.Fifo_sched.create ctx in
    let packed = Enoki.Sched_trait.Packed ((module Schedulers.Fifo_sched), st) in
    [
      Test.make ~name:"libEnoki dispatch (task_tick)"
        (Staged.stage (fun () ->
             ignore
               (Enoki.Lib_enoki.process packed (Enoki.Message.Task_tick { cpu = 0; queued = false }))));
    ]
  in
  let hist_test =
    let h = Stats.Histogram.create () in
    [ Test.make ~name:"histogram record" (Staged.stage (fun () -> Stats.Histogram.record h 1234)) ]
  in
  let tests = rb_tests @ msg_tests @ dispatch_test @ hist_test in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let est =
              match Analyze.OLS.estimates ols_result with
              | Some (v :: _) -> Printf.sprintf "%.1f ns/op" v
              | Some [] | None -> "n/a"
            in
            [ name; est ] :: acc)
          analyzed [])
      tests
  in
  Report.table ~header:[ "operation"; "cost" ] rows

(* ---------- perf: versioned benchmark snapshot + regression gate ----------

   `perf` runs the full scheduler matrix with the metrics registry and the
   Enoki-C self-profiler attached and writes BENCH_<suite>.json — the
   versioned snapshot CI archives.  `regress` reruns the suite and diffs
   the simulation-deterministic numbers (wakeup p99, throughput) against a
   committed baseline in bench/baselines/; wall-clock columns are recorded
   but never gated on, since they vary run to run. *)

let quick = ref false

let bench_out : string option ref = ref None

let baseline_path : string option ref = ref None

let tolerance : float option ref = ref None

(* minimum parallel-fleet speedup fleetgate demands at -j N; None derives
   a floor from the domains the host can actually run concurrently *)
let speedup_floor : float option ref = ref None

let regress_failed = ref false

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if rev = "" then "unknown" else rev
  with _ -> "unknown"

(* The full scheduler matrix — everything in the registry.  Core arbiters
   (activations are dispatched only once their runtime requests cores) are
   driven by the memcached runtime instead of raw pipe tasks, as in
   sanity(). *)
let perf_matrix : (string * Workloads.Setup.kind) list =
  List.map
    (fun (e : Schedulers.Registry.entry) ->
      (e.Schedulers.Registry.name, Workloads.Setup.of_registry e))
    Schedulers.Registry.all

let is_arbiter name =
  match Schedulers.Registry.find name with
  | Some e -> e.Schedulers.Registry.arbiter
  | None -> false

type perf_result = {
  pr_name : string;
  pr_workload : string;
  pr_wakeup : Stats.Histogram.t;
  pr_throughput : float; (* requests (or wakeups) per simulated second *)
  pr_callbacks : Profile.row list;
}

let perf_suite () = if !quick then "quick" else "perf"

let perf_collect () =
  let messages = if !quick then 2_000 else 20_000 in
  parallel_map perf_matrix ~f:(fun (name, kind) ->
      let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
      let reg = Metrics.Registry.create ~nr_cpus () in
      let prof = Profile.create () in
      let b = Workloads.Setup.build ~registry:reg ~profile:prof ~topology:one_socket kind in
      let pr_workload, pr_throughput =
        if is_arbiter name then begin
          let load_kreqs = if !quick then 50. else 100. in
          let r =
            Workloads.Memcached.run b
              (memcached_params ~mode:Workloads.Memcached.Arachne_enoki ~load_kreqs)
          in
          ("memcached", r.Workloads.Memcached.achieved_kreqs *. 1000.)
        end
        else begin
          let r = Workloads.Pipe_bench.run b ~messages () in
          let throughput =
            if r.Workloads.Pipe_bench.elapsed > 0 then
              float_of_int r.Workloads.Pipe_bench.wakeups
              /. (float_of_int r.Workloads.Pipe_bench.elapsed /. 1e9)
            else 0.
          in
          ("pipe", throughput)
        end
      in
      let pr_wakeup =
        match Metrics.Registry.find_histogram reg "sched_wakeup_latency_ns" with
        | Some h -> Metrics.Registry.merged h
        | None -> Stats.Histogram.create ()
      in
      { pr_name = name; pr_workload; pr_wakeup; pr_throughput; pr_callbacks = Profile.rows prof })

let perf_json results =
  let open Metrics.Json in
  let hist_json h =
    Obj
      [
        ("count", Int (Stats.Histogram.count h));
        ("mean", Float (Stats.Histogram.mean h));
        ("p50", Int (Stats.Histogram.percentile h 50.0));
        ("p95", Int (Stats.Histogram.percentile h 95.0));
        ("p99", Int (Stats.Histogram.percentile h 99.0));
        ("p999", Int (Stats.Histogram.percentile h 99.9));
      ]
  in
  let callback_json (r : Profile.row) =
    Obj
      [
        ("call", String r.Profile.call);
        ("count", Int r.Profile.count);
        ("sim_ns_mean", Float (float_of_int r.Profile.sim_ns /. float_of_int (max 1 r.Profile.count)));
        ("wall_ns_mean", Float (r.Profile.wall_ns /. float_of_int (max 1 r.Profile.count)));
      ]
  in
  Obj
    [
      ("schema_version", Int 1);
      ("suite", String (perf_suite ()));
      ("git_rev", String (git_rev ()));
      ( "results",
        List
          (List.map
             (fun pr ->
               Obj
                 [
                   ("scheduler", String pr.pr_name);
                   ("workload", String pr.pr_workload);
                   ("wakeup_ns", hist_json pr.pr_wakeup);
                   ("throughput_per_s", Float pr.pr_throughput);
                   ("callbacks", List (List.map callback_json pr.pr_callbacks));
                 ])
             results) );
    ]

let perf_out_path () =
  Option.value !bench_out ~default:(Printf.sprintf "BENCH_%s.json" (perf_suite ()))

let perf_table results =
  Report.table
    ~header:[ "scheduler"; "workload"; "wakeup p50"; "p99"; "throughput/s"; "crossings" ]
    (List.map
       (fun pr ->
         [
           pr.pr_name;
           pr.pr_workload;
           Kernsim.Time.to_string (Stats.Histogram.percentile pr.pr_wakeup 50.0);
           Kernsim.Time.to_string (Stats.Histogram.percentile pr.pr_wakeup 99.0);
           Printf.sprintf "%.0f" pr.pr_throughput;
           string_of_int (List.fold_left (fun a (r : Profile.row) -> a + r.Profile.count) 0 pr.pr_callbacks);
         ])
       results)

let perf () =
  Report.section (Printf.sprintf "Perf suite (%s): per-scheduler benchmark snapshot" (perf_suite ()));
  let results = perf_collect () in
  perf_table results;
  let path = perf_out_path () in
  Metrics.Json.save ~path (perf_json results);
  Printf.printf "wrote %s (git %s)\n" path (git_rev ())

(* Default drift tolerances: the simulated numbers are deterministic for a
   fixed seed, so these only need to absorb intentional cost-model churn;
   --tolerance=PCT overrides both. *)
let default_p99_tolerance = 25.0

let default_throughput_tolerance = 10.0

let regress () =
  Report.section (Printf.sprintf "Regression gate (%s suite)" (perf_suite ()));
  let path =
    Option.value !baseline_path
      ~default:(Printf.sprintf "bench/baselines/BENCH_%s.json" (perf_suite ()))
  in
  match Metrics.Json.parse_file ~path with
  | Error msg ->
    Printf.eprintf "regress: cannot read baseline %s: %s\n" path msg;
    regress_failed := true
  | Ok base ->
    let tol_p99 = Option.value !tolerance ~default:default_p99_tolerance in
    let tol_tp = Option.value !tolerance ~default:default_throughput_tolerance in
    let base_rev =
      Option.value ~default:"?" Option.(bind (Metrics.Json.member "git_rev" base) Metrics.Json.to_str)
    in
    let base_results =
      Option.value ~default:[]
        Option.(bind (Metrics.Json.member "results" base) Metrics.Json.to_list)
    in
    let find_base name =
      List.find_opt
        (fun j ->
          Option.(bind (Metrics.Json.member "scheduler" j) Metrics.Json.to_str) = Some name)
        base_results
    in
    let results = perf_collect () in
    let rows =
      List.map
        (fun pr ->
          let cur_p99 = float_of_int (Stats.Histogram.percentile pr.pr_wakeup 99.0) in
          match find_base pr.pr_name with
          | None -> [ pr.pr_name; "-"; "-"; "-"; "-"; "new (no baseline)" ]
          | Some bj ->
            let get path_fn = Option.bind (path_fn bj) Metrics.Json.to_float in
            let base_p99 =
              get (fun j -> Option.bind (Metrics.Json.member "wakeup_ns" j) (Metrics.Json.member "p99"))
            in
            let base_tp = get (Metrics.Json.member "throughput_per_s") in
            let verdicts = ref [] in
            (match base_p99 with
            | Some bp when bp > 0. && cur_p99 > (bp *. (1. +. (tol_p99 /. 100.))) +. 1. ->
              verdicts := Printf.sprintf "p99 +%.1f%%" (100. *. ((cur_p99 /. bp) -. 1.)) :: !verdicts
            | _ -> ());
            (match base_tp with
            | Some bt when bt > 0. && pr.pr_throughput < bt *. (1. -. (tol_tp /. 100.)) ->
              verdicts :=
                Printf.sprintf "throughput %.1f%%" (100. *. ((pr.pr_throughput /. bt) -. 1.))
                :: !verdicts
            | _ -> ());
            if !verdicts <> [] then regress_failed := true;
            [
              pr.pr_name;
              (match base_p99 with Some b -> Printf.sprintf "%.0f" b | None -> "-");
              Printf.sprintf "%.0f" cur_p99;
              (match base_tp with Some b -> Printf.sprintf "%.0f" b | None -> "-");
              Printf.sprintf "%.0f" pr.pr_throughput;
              (if !verdicts = [] then "ok" else "REGRESSED: " ^ String.concat ", " !verdicts);
            ])
        results
    in
    Report.table
      ~header:
        [ "scheduler"; "base p99 (ns)"; "now"; "base thpt/s"; "now"; "verdict" ]
      rows;
    Report.note
      (Printf.sprintf "baseline %s (git %s); tolerance p99 %.0f%%, throughput %.0f%%" path
         base_rev tol_p99 tol_tp);
    if !regress_failed then print_endline "regress: FAIL (see verdicts above)"
    else print_endline "regress: ok"

(* ---------- speed: simulator-throughput suite ----------

   `speed` measures the simulator itself, not the schedulers: how many
   simulated events the machine dispatches per host second, host ns per
   event, and allocated bytes per event.  Two kinds of rows:

   - machine rows: the full machine running pipe-bench per scheduler
     (best-of-N wall clock; bytes and event counts are deterministic);
   - core rows: the bare event loop at fixed queue depth, timer wheel vs
     the reference heap.  The heap degrades with depth (O(log n) sift),
     the wheel stays flat, so deep queues are where the wheel's >= 3x
     shows up; at depth 1 the heap's tiny constant wins.

   The snapshot goes to BENCH_speed.json; `speedgate` diffs a committed
   baseline.  The gate holds the deterministic columns (events,
   bytes/event), the wheel-vs-heap ratio (measured under identical
   conditions in the same process), and — since the hot-path overhaul —
   absolute ceilings on the built-in CFS row: ns/event and bytes/event
   must stay under fixed bounds, locking in the tentpole's >= 2x win over
   the ~510 ns/event seed.  Other wall-clock columns are recorded, never
   gated. *)

type speed_machine_row = {
  sm_name : string;
  sm_events : int;
  sm_wall_s : float; (* best of 3; gated only via the cfs-row ns ceiling *)
  sm_bytes_per_event : float; (* deterministic, gated *)
}

type speed_core_row = {
  sc_depth : int;
  sc_wheel_ns : float;
  sc_heap_ns : float;
  sc_wheel_bytes : float;
  sc_heap_bytes : float;
}

let speed_matrix = List.filter (fun (n, _) -> not (is_arbiter n)) perf_matrix

let speed_machine_cell (name, kind) =
  let messages = if !quick then 10_000 else 50_000 in
  (* best-of-5 even in quick mode: the CFS ns/event column is gated with
     an absolute ceiling, and a small sample is too noisy to hold a gate *)
  let runs = 5 in
  let best_wall = ref infinity and bytes = ref 0. and events = ref 0 in
  (* untimed warm-up: the first run through a scheduler pays first-touch
     costs (code paging, heap growth) that would pollute a gated reading *)
  (let b = Workloads.Setup.build ~topology:one_socket kind in
   ignore (Workloads.Pipe_bench.run b ~messages:(messages / 4) ()));
  for _ = 1 to runs do
    let b = Workloads.Setup.build ~topology:one_socket kind in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (Workloads.Pipe_bench.run b ~messages ());
    let wall = Unix.gettimeofday () -. t0 in
    (* bytes and events are identical across runs (the simulation is
       deterministic); wall clock takes the best *)
    bytes := Gc.allocated_bytes () -. a0;
    events := M.events_dispatched b.Workloads.Setup.machine;
    if wall < !best_wall then best_wall := wall
  done;
  {
    sm_name = name;
    sm_events = !events;
    sm_wall_s = !best_wall;
    sm_bytes_per_event = !bytes /. float_of_int (max 1 !events);
  }

(* Steady-state event loop at fixed queue depth: [depth] self-rescheduling
   events, each firing re-arms itself one horizon ahead, so the queue
   holds exactly [depth] events throughout. *)
let speed_core_cycle backend ~depth ~cycles =
  let sim = Kernsim.Sim.create ~backend () in
  let remaining = ref cycles in
  let rec fire () =
    if !remaining > 0 then begin
      decr remaining;
      Kernsim.Sim.after sim ~delay:(depth * 100) fire
    end
  in
  for i = 1 to depth do
    Kernsim.Sim.at sim ~time:(i * 100) fire
  done;
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  Kernsim.Sim.run sim;
  let wall = Unix.gettimeofday () -. t0 in
  let bytes = Gc.allocated_bytes () -. a0 in
  let n = float_of_int (Kernsim.Sim.dispatched sim) in
  (wall *. 1e9 /. n, bytes /. n)

let speed_core_depths = [ 1; 64; 512; 4096; 32768 ]

let speed_core_cell depth =
  let cycles = if !quick then 200_000 else 1_000_000 in
  (* alternate and take the best of 3 interleaved pairs, so transient host
     noise hits both backends alike *)
  let best = ref (infinity, 0., infinity, 0.) in
  for _ = 1 to (if !quick then 1 else 3) do
    let w_ns, w_b = speed_core_cycle `Wheel ~depth ~cycles in
    let h_ns, h_b = speed_core_cycle `Heap ~depth ~cycles in
    let bw, _, bh, _ = !best in
    best := (min bw w_ns, w_b, min bh h_ns, h_b)
  done;
  let w_ns, w_b, h_ns, h_b = !best in
  { sc_depth = depth; sc_wheel_ns = w_ns; sc_heap_ns = h_ns; sc_wheel_bytes = w_b; sc_heap_bytes = h_b }

let speed_collect () =
  (* both row families run sequentially: the CFS machine row's ns/event is
     gated, so machine rows are wall-clock measurements too and competing
     domains would perturb them *)
  let machine = List.map speed_machine_cell speed_matrix in
  let core = List.map speed_core_cell speed_core_depths in
  (machine, core)

let speed_suite () = if !quick then "speed-quick" else "speed"

let speed_json (machine, core) =
  let open Metrics.Json in
  let core_speedup_max =
    List.fold_left (fun acc r -> Float.max acc (r.sc_heap_ns /. r.sc_wheel_ns)) 0. core
  in
  Obj
    [
      ("schema_version", Int 1);
      ("suite", String (speed_suite ()));
      ("git_rev", String (git_rev ()));
      ( "machine",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("scheduler", String r.sm_name);
                   ("events", Int r.sm_events);
                   ("wall_s", Float r.sm_wall_s);
                   ("ns_per_event", Float (r.sm_wall_s *. 1e9 /. float_of_int (max 1 r.sm_events)));
                   ("events_per_s", Float (float_of_int r.sm_events /. r.sm_wall_s));
                   ("bytes_per_event", Float r.sm_bytes_per_event);
                 ])
             machine) );
      ( "core",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("depth", Int r.sc_depth);
                   ("wheel_ns_per_event", Float r.sc_wheel_ns);
                   ("heap_ns_per_event", Float r.sc_heap_ns);
                   ("wheel_bytes_per_event", Float r.sc_wheel_bytes);
                   ("heap_bytes_per_event", Float r.sc_heap_bytes);
                   ("speedup", Float (r.sc_heap_ns /. r.sc_wheel_ns));
                 ])
             core) );
      ("core_speedup_max", Float core_speedup_max);
    ]

let speed_table (machine, core) =
  Report.note "machine rows: full machine + scheduler running pipe-bench;";
  Report.note "wall/ns columns are host measurements (gated only as the cfs-row";
  Report.note "absolute ceiling), events and bytes/event are deterministic.";
  Report.table
    ~header:[ "scheduler"; "events"; "wall (s)"; "ns/event"; "events/s"; "B/event" ]
    (List.map
       (fun r ->
         [
           r.sm_name;
           string_of_int r.sm_events;
           Printf.sprintf "%.3f" r.sm_wall_s;
           Printf.sprintf "%.0f" (r.sm_wall_s *. 1e9 /. float_of_int (max 1 r.sm_events));
           Printf.sprintf "%.0f" (float_of_int r.sm_events /. r.sm_wall_s);
           Printf.sprintf "%.1f" r.sm_bytes_per_event;
         ])
       machine);
  Report.note "";
  Report.note "core rows: bare event loop at steady queue depth, wheel vs heap:";
  Report.table
    ~header:[ "queue depth"; "wheel ns/ev"; "heap ns/ev"; "speedup"; "wheel B/ev"; "heap B/ev" ]
    (List.map
       (fun r ->
         [
           string_of_int r.sc_depth;
           Printf.sprintf "%.0f" r.sc_wheel_ns;
           Printf.sprintf "%.0f" r.sc_heap_ns;
           Printf.sprintf "%.2fx" (r.sc_heap_ns /. r.sc_wheel_ns);
           Printf.sprintf "%.1f" r.sc_wheel_bytes;
           Printf.sprintf "%.1f" r.sc_heap_bytes;
         ])
       core);
  Report.note "expected shape: heap ns/ev grows with depth (log n sift), wheel stays";
  Report.note "flat; the crossover sits near depth 64 and deep queues reach >= 3x."

let speed () =
  Report.section (Printf.sprintf "Speed suite (%s): simulator throughput" (speed_suite ()));
  let results = speed_collect () in
  speed_table results;
  let path = Option.value !bench_out ~default:(Printf.sprintf "BENCH_%s.json" (speed_suite ())) in
  Metrics.Json.save ~path (speed_json results);
  Printf.printf "wrote %s (git %s)\n" path (git_rev ())

(* The speed gate: diff against a committed BENCH_speed baseline.  Gated
   columns — machine [events] (exact-ish: drift > 1%% means the event
   stream changed) and [bytes_per_event] (allocation regressions), plus
   the deep-queue wheel-vs-heap speedup floor and the absolute cfs-row
   ns/event + bytes/event ceilings below.  Other wall-derived columns are
   reported, never gated. *)
let default_bytes_tolerance = 20.0

(* Absolute hot-path ceilings for the built-in CFS machine row (tracing and
   metrics off).  These are ratchets, not drift checks: the seed sat at
   ~510 ns/event and ~500 B/event; the SoA task table, int-encoded events
   and batched wheel expiry brought that to ~220 ns and ~0 B, and the gate
   pins the budget so a hot-path allocation or slow path cannot creep
   back in unnoticed. *)
let cfs_ns_ceiling = 250.

let cfs_bytes_ceiling = 64.

let speedgate () =
  Report.section (Printf.sprintf "Speed gate (%s suite)" (speed_suite ()));
  let path =
    Option.value !baseline_path
      ~default:(Printf.sprintf "bench/baselines/BENCH_%s.json" (speed_suite ()))
  in
  match Metrics.Json.parse_file ~path with
  | Error msg ->
    Printf.eprintf "speedgate: cannot read baseline %s: %s\n" path msg;
    regress_failed := true
  | Ok base ->
    let tol_bytes = Option.value !tolerance ~default:default_bytes_tolerance in
    let machine, core = speed_collect () in
    let base_machine =
      Option.value ~default:[]
        Option.(bind (Metrics.Json.member "machine" base) Metrics.Json.to_list)
    in
    let find_base name =
      List.find_opt
        (fun j ->
          Option.(bind (Metrics.Json.member "scheduler" j) Metrics.Json.to_str) = Some name)
        base_machine
    in
    let rows =
      List.map
        (fun r ->
          match find_base r.sm_name with
          | None -> [ r.sm_name; "-"; "-"; "-"; "-"; "new (no baseline)" ]
          | Some bj ->
            let get k = Option.bind (Metrics.Json.member k bj) Metrics.Json.to_float in
            let verdicts = ref [] in
            (match get "events" with
            | Some be when be > 0. ->
              let drift =
                100. *. Float.abs ((float_of_int r.sm_events /. be) -. 1.)
              in
              if drift > 1. then
                verdicts := Printf.sprintf "events drifted %.1f%%" drift :: !verdicts
            | _ -> ());
            (match get "bytes_per_event" with
            | Some bb when bb > 0. && r.sm_bytes_per_event > bb *. (1. +. (tol_bytes /. 100.)) ->
              verdicts :=
                Printf.sprintf "bytes/event +%.1f%%" (100. *. ((r.sm_bytes_per_event /. bb) -. 1.))
                :: !verdicts
            | _ -> ());
            if !verdicts <> [] then regress_failed := true;
            [
              r.sm_name;
              (match get "events" with Some b -> Printf.sprintf "%.0f" b | None -> "-");
              string_of_int r.sm_events;
              (match get "bytes_per_event" with Some b -> Printf.sprintf "%.1f" b | None -> "-");
              Printf.sprintf "%.1f" r.sm_bytes_per_event;
              (if !verdicts = [] then "ok" else "REGRESSED: " ^ String.concat ", " !verdicts);
            ])
        machine
    in
    Report.table
      ~header:[ "scheduler"; "base events"; "now"; "base B/ev"; "now"; "verdict" ]
      rows;
    (* deep-queue speedup floor: the wheel must keep beating the heap where
       it matters.  The best ratio across the deep rows (depth >= 512) and
       generous slack absorb host noise; a real backend regression (the
       wheel degrading to heap-like behaviour) trips it. *)
    let now_ratio =
      List.fold_left
        (fun acc r ->
          if r.sc_depth >= 512 then Float.max acc (r.sc_heap_ns /. r.sc_wheel_ns) else acc)
        0. core
    in
    let base_floor =
      Option.value ~default:3.0
        Option.(bind (Metrics.Json.member "core_speedup_max" base) Metrics.Json.to_float)
    in
    let floor = Float.max 2.0 (base_floor *. 0.5) in
    if now_ratio < floor then begin
      regress_failed := true;
      Printf.printf "deep-queue core speedup: %.2fx < floor %.2fx REGRESSED\n" now_ratio floor
    end
    else Printf.printf "deep-queue core speedup: %.2fx (floor %.2fx) ok\n" now_ratio floor;
    (* absolute hot-path ceilings on the built-in CFS row *)
    (match List.find_opt (fun r -> r.sm_name = "cfs") machine with
    | None ->
      regress_failed := true;
      print_endline "cfs machine row missing: cannot check hot-path ceilings REGRESSED"
    | Some r ->
      let ns_of x = x.sm_wall_s *. 1e9 /. float_of_int (max 1 x.sm_events) in
      let ns = ns_of r in
      (* sustained host contention can poison even a best-of-N sample;
         confirm an apparent breach with one fresh measurement before
         failing the gate *)
      let ns =
        if ns > cfs_ns_ceiling then
          match List.find_opt (fun (n, _) -> n = "cfs") speed_matrix with
          | Some cell -> Float.min ns (ns_of (speed_machine_cell cell))
          | None -> ns
        else ns
      in
      if ns > cfs_ns_ceiling then begin
        regress_failed := true;
        Printf.printf "cfs hot path: %.0f ns/event > ceiling %.0f REGRESSED\n" ns cfs_ns_ceiling
      end
      else Printf.printf "cfs hot path: %.0f ns/event (ceiling %.0f) ok\n" ns cfs_ns_ceiling;
      if r.sm_bytes_per_event > cfs_bytes_ceiling then begin
        regress_failed := true;
        Printf.printf "cfs hot path: %.1f B/event > ceiling %.0f REGRESSED\n"
          r.sm_bytes_per_event cfs_bytes_ceiling
      end
      else
        Printf.printf "cfs hot path: %.1f B/event (ceiling %.0f) ok\n" r.sm_bytes_per_event
          cfs_bytes_ceiling);
    Report.note
      (Printf.sprintf
         "baseline %s; bytes tolerance %.0f%%; cfs row gated at %.0f ns/event and %.0f B/event; \
          other wall columns never gated"
         path tol_bytes cfs_ns_ceiling cfs_bytes_ceiling);
    if !regress_failed then print_endline "speedgate: FAIL (see verdicts above)"
    else print_endline "speedgate: ok"

(* ---------- dsq: the DSQ scheduler family vs built-in CFS ----------

   The dual-queue O(1) priority scheduler that scx-prio-dq reproduces
   claims 65% lower dispatch latency and 33% fewer context switches than
   CFS.  `dsq` runs built-in CFS and the DSQ family (scx-simple, scx-rr,
   scx-prio-dq) over pipe/schbench/rocksdb/memcached and snapshots
   BENCH_dsq*.json: per row the kernel wakeup-to-dispatch latency (the
   CFS-comparable dispatch-latency measure), the DSQ-internal
   enqueue-to-consume wait histogram, context switches, throughput, and
   the deltas against the CFS row of the same workload, printed next to
   the paper's claims.  `dsqgate` diffs the deterministic columns against
   a committed baseline in bench/baselines/. *)

let dsq_suite () = if !quick then "dsq-quick" else "dsq"

type dsq_row = {
  dq_sched : string;
  dq_workload : string;
  dq_wakeup : Stats.Histogram.t;  (* kernel wakeup -> dispatch, all rows *)
  dq_dsq_wait : Stats.Histogram.t option;  (* DSQ insert -> consume; None for cfs *)
  dq_ctxsw : int;
  dq_throughput : float;
}

let dsq_workloads () : (string * (Workloads.Setup.built -> float)) list =
  let pipe b =
    let messages = if !quick then 5_000 else 20_000 in
    let r = Workloads.Pipe_bench.run b ~messages () in
    if r.Workloads.Pipe_bench.elapsed > 0 then
      float_of_int r.Workloads.Pipe_bench.wakeups
      /. (float_of_int r.Workloads.Pipe_bench.elapsed /. 1e9)
    else 0.
  in
  let schbench b =
    let duration = Kernsim.Time.ms (if !quick then 400 else 1500) in
    let params =
      { (schbench_params ()) with Workloads.Schbench.warmup = Kernsim.Time.ms 200; duration }
    in
    let r = Workloads.Schbench.run b params in
    float_of_int r.Workloads.Schbench.samples /. (float_of_int duration /. 1e9)
  in
  let rocksdb b =
    let load_kreqs = if !quick then 20. else 50. in
    let r = Workloads.Rocksdb.run b (rocksdb_params ~load_kreqs ~with_batch:false) in
    r.Workloads.Rocksdb.achieved_kreqs *. 1000.
  in
  let memcached b =
    (* stock-memcached server shape (a blocking thread pool under the
       scheduler under test), so CFS and the DSQ family run identical
       request streams *)
    let load_kreqs = if !quick then 50. else 100. in
    let r =
      Workloads.Memcached.run b (memcached_params ~mode:Workloads.Memcached.Cfs ~load_kreqs)
    in
    r.Workloads.Memcached.achieved_kreqs *. 1000.
  in
  [ ("pipe", pipe); ("schbench", schbench); ("rocksdb", rocksdb); ("memcached", memcached) ]

let dsq_schedulers () =
  List.filter
    (fun (e : Schedulers.Registry.entry) ->
      e.Schedulers.Registry.name = "cfs"
      || List.mem e.Schedulers.Registry.name Schedulers.Registry.dsq_names)
    Schedulers.Registry.all

let dsq_collect () =
  let cells =
    List.concat_map
      (fun (e : Schedulers.Registry.entry) -> List.map (fun w -> (e, w)) (dsq_workloads ()))
      (dsq_schedulers ())
  in
  parallel_map cells ~f:(fun ((e : Schedulers.Registry.entry), (wname, workload)) ->
      let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
      let reg = Metrics.Registry.create ~nr_cpus () in
      let b =
        Workloads.Setup.build ~registry:reg ~topology:one_socket (Workloads.Setup.of_registry e)
      in
      let dq_throughput = workload b in
      let mets = M.metrics b.Workloads.Setup.machine in
      let dq_dsq_wait =
        Option.map Metrics.Registry.merged
          (Metrics.Registry.find_histogram reg "dsq_dispatch_latency_ns")
      in
      {
        dq_sched = e.Schedulers.Registry.name;
        dq_workload = wname;
        dq_wakeup = Kernsim.Accounting.wakeup_latency mets;
        dq_dsq_wait;
        dq_ctxsw = Kernsim.Accounting.context_switches mets;
        dq_throughput;
      })

(* deltas against the CFS row of the same workload, in percent (negative =
   better than CFS on both measures) *)
let dsq_deltas rows r =
  match
    List.find_opt (fun c -> c.dq_sched = "cfs" && c.dq_workload = r.dq_workload) rows
  with
  | Some c when r.dq_sched <> "cfs" ->
    let p99 h = float_of_int (Stats.Histogram.percentile h 99.0) in
    let wakeup =
      if p99 c.dq_wakeup > 0. then Some (100. *. ((p99 r.dq_wakeup /. p99 c.dq_wakeup) -. 1.))
      else None
    in
    let ctxsw =
      if c.dq_ctxsw > 0 then
        Some (100. *. ((float_of_int r.dq_ctxsw /. float_of_int c.dq_ctxsw) -. 1.))
      else None
    in
    (wakeup, ctxsw)
  | _ -> (None, None)

let dsq_json rows =
  let open Metrics.Json in
  let hist_json h =
    Obj
      [
        ("count", Int (Stats.Histogram.count h));
        ("mean", Float (Stats.Histogram.mean h));
        ("p50", Int (Stats.Histogram.percentile h 50.0));
        ("p99", Int (Stats.Histogram.percentile h 99.0));
        ("p999", Int (Stats.Histogram.percentile h 99.9));
      ]
  in
  let row_json r =
    let wakeup_delta, ctxsw_delta = dsq_deltas rows r in
    let opt k = function Some v -> [ (k, Float v) ] | None -> [] in
    Obj
      ([
         ("scheduler", String r.dq_sched);
         ("workload", String r.dq_workload);
         ("wakeup_ns", hist_json r.dq_wakeup);
         ("context_switches", Int r.dq_ctxsw);
         ("throughput_per_s", Float r.dq_throughput);
       ]
      @ (match r.dq_dsq_wait with Some h -> [ ("dsq_wait_ns", hist_json h) ] | None -> [])
      @ opt "wakeup_p99_vs_cfs_pct" wakeup_delta
      @ opt "context_switches_vs_cfs_pct" ctxsw_delta)
  in
  Obj
    [
      ("schema_version", Int 1);
      ("suite", String (dsq_suite ()));
      ("git_rev", String (git_rev ()));
      ( "claims",
        Obj
          [
            ("dispatch_latency_vs_cfs_pct", Float (-65.));
            ("context_switches_vs_cfs_pct", Float (-33.));
          ] );
      ("results", List (List.map row_json rows));
    ]

let dsq () =
  Report.section
    (Printf.sprintf "DSQ suite (%s): dispatch-queue schedulers vs built-in CFS" (dsq_suite ()));
  let rows = dsq_collect () in
  let fmt_delta = function Some d -> Printf.sprintf "%+.0f%%" d | None -> "-" in
  Report.table
    ~header:
      [ "scheduler"; "workload"; "wakeup p50"; "p99"; "vs cfs"; "dsq wait p99"; "ctxsw";
        "vs cfs"; "thpt/s" ]
    (List.map
       (fun r ->
         let wakeup_delta, ctxsw_delta = dsq_deltas rows r in
         [
           r.dq_sched;
           r.dq_workload;
           Kernsim.Time.to_string (Stats.Histogram.percentile r.dq_wakeup 50.0);
           Kernsim.Time.to_string (Stats.Histogram.percentile r.dq_wakeup 99.0);
           fmt_delta wakeup_delta;
           (match r.dq_dsq_wait with
           | Some h -> Kernsim.Time.to_string (Stats.Histogram.percentile h 99.0)
           | None -> "-");
           string_of_int r.dq_ctxsw;
           fmt_delta ctxsw_delta;
           Printf.sprintf "%.0f" r.dq_throughput;
         ])
       rows);
  Report.note "dual-queue paper claims vs CFS: 65% lower dispatch latency and 33% fewer";
  Report.note "context switches -- read the scx-prio-dq rows' \"vs cfs\" columns against";
  Report.note "them.  \"dsq wait\" is the DSQ-internal enqueue-to-consume histogram.";
  let path = Option.value !bench_out ~default:(Printf.sprintf "BENCH_%s.json" (dsq_suite ())) in
  Metrics.Json.save ~path (dsq_json rows);
  Printf.printf "wrote %s (git %s)\n" path (git_rev ())

(* The DSQ gate: like regress/speedgate, but keyed by scheduler x workload.
   Gated columns are all simulation-deterministic: wakeup p99 and
   throughput under the regress tolerances, context switches near-exactly
   (drift > 1% means the scheduling decision stream changed). *)
let dsqgate () =
  Report.section (Printf.sprintf "DSQ gate (%s suite)" (dsq_suite ()));
  let path =
    Option.value !baseline_path
      ~default:(Printf.sprintf "bench/baselines/BENCH_%s.json" (dsq_suite ()))
  in
  match Metrics.Json.parse_file ~path with
  | Error msg ->
    Printf.eprintf "dsqgate: cannot read baseline %s: %s\n" path msg;
    regress_failed := true
  | Ok base ->
    let tol_p99 = Option.value !tolerance ~default:default_p99_tolerance in
    let tol_tp = Option.value !tolerance ~default:default_throughput_tolerance in
    let base_results =
      Option.value ~default:[]
        Option.(bind (Metrics.Json.member "results" base) Metrics.Json.to_list)
    in
    let find_base sched workload =
      List.find_opt
        (fun j ->
          Option.(bind (Metrics.Json.member "scheduler" j) Metrics.Json.to_str) = Some sched
          && Option.(bind (Metrics.Json.member "workload" j) Metrics.Json.to_str)
             = Some workload)
        base_results
    in
    let results = dsq_collect () in
    let rows =
      List.map
        (fun r ->
          let label = r.dq_sched ^ "/" ^ r.dq_workload in
          let cur_p99 = float_of_int (Stats.Histogram.percentile r.dq_wakeup 99.0) in
          match find_base r.dq_sched r.dq_workload with
          | None -> [ label; "-"; "-"; "-"; "-"; "new (no baseline)" ]
          | Some bj ->
            let get path_fn = Option.bind (path_fn bj) Metrics.Json.to_float in
            let base_p99 =
              get (fun j ->
                  Option.bind (Metrics.Json.member "wakeup_ns" j) (Metrics.Json.member "p99"))
            in
            let base_ctxsw = get (Metrics.Json.member "context_switches") in
            let base_tp = get (Metrics.Json.member "throughput_per_s") in
            let verdicts = ref [] in
            (match base_p99 with
            | Some bp when bp > 0. && cur_p99 > (bp *. (1. +. (tol_p99 /. 100.))) +. 1. ->
              verdicts := Printf.sprintf "p99 +%.1f%%" (100. *. ((cur_p99 /. bp) -. 1.)) :: !verdicts
            | _ -> ());
            (match base_ctxsw with
            | Some bc when bc > 0. ->
              let drift = 100. *. Float.abs ((float_of_int r.dq_ctxsw /. bc) -. 1.) in
              if drift > 1. then
                verdicts := Printf.sprintf "ctxsw drifted %.1f%%" drift :: !verdicts
            | _ -> ());
            (match base_tp with
            | Some bt when bt > 0. && r.dq_throughput < bt *. (1. -. (tol_tp /. 100.)) ->
              verdicts :=
                Printf.sprintf "throughput %.1f%%" (100. *. ((r.dq_throughput /. bt) -. 1.))
                :: !verdicts
            | _ -> ());
            if !verdicts <> [] then regress_failed := true;
            [
              label;
              (match base_p99 with Some b -> Printf.sprintf "%.0f" b | None -> "-");
              Printf.sprintf "%.0f" cur_p99;
              (match base_ctxsw with Some b -> Printf.sprintf "%.0f" b | None -> "-");
              string_of_int r.dq_ctxsw;
              (if !verdicts = [] then "ok" else "REGRESSED: " ^ String.concat ", " !verdicts);
            ])
        results
    in
    Report.table
      ~header:[ "scheduler/workload"; "base p99 (ns)"; "now"; "base ctxsw"; "now"; "verdict" ]
      rows;
    Report.note
      (Printf.sprintf "baseline %s; tolerance p99 %.0f%%, throughput %.0f%%, ctxsw 1%%" path
         tol_p99 tol_tp);
    if !regress_failed then print_endline "dsqgate: FAIL (see verdicts above)"
    else print_endline "dsqgate: ok"

(* ---------- §5.8: record and replay ----------

   Three identical WFQ pipe runs — no recording, the text debug format
   into memory, and the binary streaming format into a file — measured
   like the speed suite: simulated elapsed (the record_msg cost model),
   host wall clock, and Gc.allocated_bytes.  The machine is deterministic,
   so the allocation delta over the unrecorded run divided by the recorded
   event count is the record tap's own cost per event, and the text/binary
   ratio is the headline: the binary streaming path must be >= 3x cheaper.
   The binary log then replays, validating end to end. *)

type rr_mode = {
  rr_name : string;
  rr_elapsed : int; (* simulated ns *)
  rr_wall_s : float;
  rr_alloc : float; (* GC bytes allocated during run+flush *)
  rr_events : int; (* machine events dispatched *)
  rr_recorded : int; (* record-log events (0 when not recording) *)
  rr_dropped : int;
  rr_wire_bytes : int; (* encoded log size *)
  rr_log : string option; (* binary log kept for the replay phase *)
}

let rr_suite () = if !quick then "recordreplay-quick" else "recordreplay"

let recordreplay () =
  Report.section "Record and replay overhead (5.8)";
  let messages = if !quick then 5_000 else 20_000 in
  Enoki.Lock.set_passthrough_mode ();
  let run_one rr_name record ~flush ~stats =
    let b =
      build ?record ~topology:one_socket (Workloads.Setup.Enoki_sched (module Schedulers.Wfq))
    in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let r = Workloads.Pipe_bench.run b ~messages () in
    flush ();
    let rr_alloc = Gc.allocated_bytes () -. a0 in
    let rr_wall_s = Unix.gettimeofday () -. t0 in
    let rr_recorded, rr_dropped, rr_wire_bytes, rr_log = stats () in
    {
      rr_name;
      rr_elapsed = r.Workloads.Pipe_bench.elapsed;
      rr_wall_s;
      rr_alloc;
      rr_events = M.events_dispatched b.Workloads.Setup.machine;
      rr_recorded;
      rr_dropped;
      rr_wire_bytes;
      rr_log;
    }
  in
  let none = run_one "none" None ~flush:(fun () -> ()) ~stats:(fun () -> (0, 0, 0, None)) in
  let text =
    let r = Enoki.Record.create ~format:Enoki.Record.Text () in
    run_one "text (memory)" (Some r)
      ~flush:(fun () -> Enoki.Record.drain r)
      ~stats:(fun () ->
        let log = Enoki.Record.contents r in
        (Enoki.Record.length r, Enoki.Record.dropped r, String.length log, None))
  in
  let path = Filename.temp_file "enoki-rr" ".rec" in
  let binary =
    let r = Enoki.Record.create_file ~path () in
    run_one "binary (file)" (Some r)
      ~flush:(fun () -> Enoki.Record.close r)
      ~stats:(fun () ->
        let log = Enoki.Record.load_file ~path in
        (Enoki.Record.length r, Enoki.Record.dropped r, String.length log, Some log))
  in
  Sys.remove path;
  let slowdown m = float_of_int m.rr_elapsed /. float_of_int (max 1 none.rr_elapsed) in
  let alloc_per_event m = m.rr_alloc /. float_of_int (max 1 m.rr_events) in
  (* record-attributable allocation: delta over the unrecorded run, per
     recorded event (the machine's own work cancels out — same event
     stream in all three runs) *)
  let rec_alloc m = (m.rr_alloc -. none.rr_alloc) /. float_of_int (max 1 m.rr_recorded) in
  let wire_per_event m = float_of_int m.rr_wire_bytes /. float_of_int (max 1 m.rr_recorded) in
  let alloc_ratio = rec_alloc text /. Float.max 1e-9 (rec_alloc binary) in
  let wire_ratio = wire_per_event text /. Float.max 1e-9 (wire_per_event binary) in
  Report.table
    ~header:[ "mode"; "simulated"; "slowdown"; "wall (s)"; "B/machine-event"; "DROPPED" ]
    (List.map
       (fun m ->
         [
           m.rr_name;
           Kernsim.Time.to_string m.rr_elapsed;
           Printf.sprintf "%.2fx" (slowdown m);
           Printf.sprintf "%.3f" m.rr_wall_s;
           Printf.sprintf "%.1f" (alloc_per_event m);
           (if m.rr_dropped > 0 then Printf.sprintf "%d EVENTS DROPPED" m.rr_dropped
            else if m.rr_name = "none" then "-"
            else "0");
         ])
       [ none; text; binary ]);
  Report.note "paper: record costs ~7.5x in service time on real hardware; here the";
  Report.note "record_msg cost model drives the simulated slowdown.";
  Report.table
    ~header:[ "record cost per event"; "text"; "binary"; "text/binary" ]
    [
      [
        "GC-allocated bytes";
        Printf.sprintf "%.1f" (rec_alloc text);
        Printf.sprintf "%.1f" (rec_alloc binary);
        Printf.sprintf "%.2fx" alloc_ratio;
      ];
      [
        "wire bytes";
        Printf.sprintf "%.1f" (wire_per_event text);
        Printf.sprintf "%.1f" (wire_per_event binary);
        Printf.sprintf "%.2fx" wire_ratio;
      ];
    ];
  Printf.printf "binary vs text allocation: %.2fx cheaper (target >= 3x): %s\n" alloc_ratio
    (if alloc_ratio >= 3.0 then "ok" else "SHORTFALL");
  (* replay the binary log end to end *)
  let log = Option.get binary.rr_log in
  let report =
    Enoki.Replay.run ~allow_drops:(binary.rr_dropped > 0) (module Schedulers.Wfq) ~log
  in
  Report.table
    ~header:[ "replay"; "result"; "paper" ]
    [
      [ "calls replayed"; string_of_int report.Enoki.Replay.total_calls; "-" ];
      [ "wall time"; Printf.sprintf "%.2f s" report.Enoki.Replay.wall_seconds; "~180 s @ 1M msgs" ];
      [
        "validation";
        (match report.Enoki.Replay.mismatches with
        | [] -> "all replies matched"
        | l -> Printf.sprintf "%d MISMATCHES" (List.length l));
        "matches";
      ];
    ];
  Report.note "shape: record costs several-fold in service time; replay is offline and validates.";
  let json =
    let open Metrics.Json in
    let mode_json m =
      Obj
        [
          ("mode", String m.rr_name);
          ("sim_elapsed_ns", Int m.rr_elapsed);
          ("wall_s", Float m.rr_wall_s);
          ("alloc_bytes", Float m.rr_alloc);
          ("machine_events", Int m.rr_events);
          ("recorded_events", Int m.rr_recorded);
          ("dropped", Int m.rr_dropped);
          ("wire_bytes", Int m.rr_wire_bytes);
        ]
    in
    Obj
      [
        ("schema_version", Int 1);
        ("suite", String (rr_suite ()));
        ("git_rev", String (git_rev ()));
        ("messages", Int messages);
        ("modes", List (List.map mode_json [ none; text; binary ]));
        ("record_alloc_bytes_per_event_text", Float (rec_alloc text));
        ("record_alloc_bytes_per_event_binary", Float (rec_alloc binary));
        ("record_alloc_ratio_text_over_binary", Float alloc_ratio);
        ("wire_bytes_per_event_text", Float (wire_per_event text));
        ("wire_bytes_per_event_binary", Float (wire_per_event binary));
        ("wire_ratio_text_over_binary", Float wire_ratio);
        ( "replay",
          Obj
            [
              ("wall_s", Float report.Enoki.Replay.wall_seconds);
              ("total_calls", Int report.Enoki.Replay.total_calls);
              ("threads", Int report.Enoki.Replay.threads);
              ("mismatches", Int (List.length report.Enoki.Replay.mismatches));
            ] );
      ]
  in
  let out = Option.value !bench_out ~default:(Printf.sprintf "BENCH_%s.json" (rr_suite ())) in
  Metrics.Json.save ~path:out json;
  Printf.printf "wrote %s (git %s)\n" out (git_rev ())

(* ---------- fleet: the cluster tier ----------

   Drives lib/cluster end to end: a steady-state heterogeneous fleet under
   the three-tenant antagonist mix (per-tenant tail latency), a
   load-balancer policy sweep, §5.7 rolling live upgrades under peak vs
   idle load (pause + blackout-window tail attribution), and a chaos drill
   (victim panic -> drain -> failover -> re-admit).  Snapshots
   BENCH_fleet*.json; `fleetgate` diffs the deterministic columns against
   bench/baselines/.  Every row carries the root seed: the whole fleet is
   bit-for-bit reproducible from it. *)

let fleet_suite () = if !quick then "fleet-quick" else "fleet"

let fleet_seed () = Option.value !seed ~default:1

let fleet_entries names =
  List.map
    (fun n ->
      match Schedulers.Registry.find n with
      | Some e -> e
      | None -> failwith ("fleet: unknown scheduler " ^ n))
    names

let fleet_mix ?(scale = 1.0) () =
  Cluster.Traffic.standard_mix
    ~connections:(if !quick then 128 else 256)
    ~load_kreqs:(scale *. if !quick then 80. else 240.)
    ()

let fleet_duration () = Kernsim.Time.ms (if !quick then 400 else 2000)

let fleet_warmup = Kernsim.Time.ms 100

(* steady state: 8 heterogeneous hosts, least-outstanding *)
let fleet_steady_scheds = [ "wfq"; "shinjuku"; "cfs"; "scx-simple" ]

let fleet_steady ?pool () =
  let hosts = fleet_entries (List.init 8 (fun i -> List.nth fleet_steady_scheds (i mod 4))) in
  let f =
    Cluster.Fleet.create ?pool ~warmup:fleet_warmup ~seed:(fleet_seed ()) ~hosts
      ~tenants:(fleet_mix ()) ()
  in
  Cluster.Fleet.run f ~until:(fleet_duration ());
  f

(* parallel fleet execution: the same steady fleet advanced across a
   j-domain pool.  The fingerprint digests every deterministic output the
   fleet exposes — identical for every j is the byte-identity contract. *)
let fleet_par_fingerprint f =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( Cluster.Fleet.tenant_stats f,
            Cluster.Fleet.host_stats f,
            Cluster.Fleet.clock f,
            Cluster.Fleet.events_dispatched f,
            Metrics.Export.prometheus (Cluster.Fleet.registry f) )
          []))

let fleet_par_run j =
  let pool = if j > 1 then Some (Ds.Domain_pool.create ~domains:j ()) else None in
  let t0 = Unix.gettimeofday () in
  let f = fleet_steady ?pool () in
  let wall = Unix.gettimeofday () -. t0 in
  Option.iter Ds.Domain_pool.shutdown pool;
  (f, wall)

let fleet_lb_cells () =
  parallel_map
    [ Cluster.Lb.Round_robin; Cluster.Lb.Least_outstanding; Cluster.Lb.Weighted;
      Cluster.Lb.Consistent_hash ]
    ~f:(fun policy ->
      let hosts = fleet_entries [ "wfq"; "wfq"; "wfq"; "wfq" ] in
      let weights =
        match policy with Cluster.Lb.Weighted -> Some [| 4; 2; 1; 1 |] | _ -> None
      in
      let f =
        Cluster.Fleet.create ~warmup:fleet_warmup ?weights ~lb:policy ~seed:(fleet_seed ())
          ~hosts
          ~tenants:(fleet_mix ~scale:0.5 ())
          ()
      in
      Cluster.Fleet.run f ~until:(fleet_duration ());
      let completed = List.fold_left (fun n (h : Cluster.Fleet.host_stat) -> n + h.completed) 0 (Cluster.Fleet.host_stats f) in
      let p99, p999 =
        match Cluster.Fleet.tenant_stats f with
        | w :: _ -> (w.Cluster.Fleet.p99, w.Cluster.Fleet.p999)
        | [] -> (0, 0)
      in
      (Cluster.Lb.policy_name policy, completed, p99, p999, Cluster.Fleet.host_stats f))

(* rolling upgrade at 60% of the run, staggered, under peak and idle load *)
let fleet_upgrade_cells () =
  parallel_map
    [ ("peak", 1.0); ("idle", 0.05) ]
    ~f:(fun (label, scale) ->
      let hosts = fleet_entries [ "wfq"; "wfq"; "wfq"; "wfq" ] in
      let d = fleet_duration () in
      let f =
        Cluster.Fleet.create ~warmup:fleet_warmup
          ~upgrade:{ Cluster.Fleet.at = d * 6 / 10; stagger = d / 20 }
          ~seed:(fleet_seed ()) ~hosts ~tenants:(fleet_mix ~scale ()) ()
      in
      Cluster.Fleet.run f ~until:d;
      (label, Cluster.Fleet.upgrades f, Cluster.Fleet.upgrade_failures f, Cluster.Fleet.blackout f))

let fleet_chaos_run () =
  let hosts = fleet_entries [ "wfq"; "wfq"; "wfq"; "wfq" ] in
  let f =
    Cluster.Fleet.create ~warmup:fleet_warmup
      ~chaos:
        {
          Cluster.Fleet.victim = 1;
          after_calls = (if !quick then 3_000 else 20_000);
          recovery = Kernsim.Time.ms 20;
        }
      ~seed:(fleet_seed ()) ~hosts
      ~tenants:(fleet_mix ~scale:0.5 ())
      ()
  in
  Cluster.Fleet.run f ~until:(fleet_duration ());
  f

let fleet_hist_json h =
  let open Metrics.Json in
  Obj
    [
      ("count", Int (Stats.Histogram.count h));
      ("p50", Int (Stats.Histogram.percentile h 50.0));
      ("p99", Int (Stats.Histogram.percentile h 99.0));
      ("p999", Int (Stats.Histogram.percentile h 99.9));
    ]

let fleet () =
  Report.section
    (Printf.sprintf "Fleet suite (%s): cluster tier under multi-tenant open-loop load"
       (fleet_suite ()));
  let seed = fleet_seed () in
  let open Metrics.Json in
  (* steady state *)
  let steady = fleet_steady () in
  let tr = Cluster.Fleet.traffic steady in
  let tstats = Cluster.Fleet.tenant_stats steady in
  Printf.printf "steady: 8 hosts (%sx2), %d flows churned (%d live), seed %d\n"
    (String.concat "," fleet_steady_scheds)
    (Cluster.Traffic.flows_completed tr)
    (Cluster.Traffic.live_flows tr) seed;
  Report.table
    ~header:[ "tenant"; "completed"; "dropped"; "rejected"; "p50"; "p99"; "p999" ]
    (List.map
       (fun (s : Cluster.Fleet.tenant_stat) ->
         [
           s.tenant;
           string_of_int s.completed;
           string_of_int s.dropped;
           string_of_int s.rejected;
           Kernsim.Time.to_string s.p50;
           Kernsim.Time.to_string s.p99;
           Kernsim.Time.to_string s.p999;
         ])
       tstats);
  (* lb policy sweep *)
  let lb_rows = fleet_lb_cells () in
  Report.table
    ~header:[ "lb policy"; "completed"; "web p99"; "web p999"; "per-host" ]
    (List.map
       (fun (name, completed, p99, p999, hstats) ->
         [
           name;
           string_of_int completed;
           Kernsim.Time.to_string p99;
           Kernsim.Time.to_string p999;
           String.concat "/"
             (List.map
                (fun (h : Cluster.Fleet.host_stat) -> string_of_int h.completed)
                hstats);
         ])
       lb_rows);
  (* rolling upgrade, peak vs idle *)
  let up_rows = fleet_upgrade_cells () in
  Report.table
    ~header:[ "upgrade"; "hosts upgraded"; "max pause"; "blackout reqs"; "p50"; "p99"; "p999" ]
    (List.map
       (fun (label, ups, fails, bl) ->
         let max_pause = List.fold_left (fun m (_, p) -> max m p) 0 ups in
         [
           label ^ (if fails > 0 then "(FAILURES)" else "");
           string_of_int (List.length ups);
           Kernsim.Time.to_string max_pause;
           string_of_int (Stats.Histogram.count bl);
           Kernsim.Time.to_string (Stats.Histogram.percentile bl 50.0);
           Kernsim.Time.to_string (Stats.Histogram.percentile bl 99.0);
           Kernsim.Time.to_string (Stats.Histogram.percentile bl 99.9);
         ])
       up_rows);
  Report.note "blackout: completions landing inside a host's upgrade pause window (pause +";
  Report.note "one epoch); the peak-vs-idle pair is the fleet-scale read of the paper's §5.7.";
  (* chaos drill *)
  let cf = fleet_chaos_run () in
  let rejected =
    List.fold_left (fun n (s : Cluster.Fleet.tenant_stat) -> n + s.rejected) 0
      (Cluster.Fleet.tenant_stats cf)
  in
  let op_at name =
    List.find_map (fun (ts, _, op) -> if op = name then Some ts else None) (Cluster.Fleet.oplog cf)
  in
  Printf.printf "chaos drill: %s, sanitizer %s, %d rejected during blackout%s%s\n"
    (if Cluster.Fleet.converged cf then "converged" else "NOT CONVERGED")
    (if Cluster.Fleet.sanitizer_ok cf then "clean" else "VIOLATIONS")
    rejected
    (match op_at "drain" with
    | Some ts -> Printf.sprintf ", drained at %s" (Kernsim.Time.to_string ts)
    | None -> "")
    (match op_at "admit" with
    | Some ts -> Printf.sprintf ", re-admitted at %s" (Kernsim.Time.to_string ts)
    | None -> "");
  (* parallel execution: the steady fleet across a domain pool *)
  let par_rows =
    List.map
      (fun j ->
        let f, wall = fleet_par_run j in
        (j, wall, Cluster.Fleet.events_dispatched f, fleet_par_fingerprint f))
      [ 1; 2; 4; 8 ]
  in
  let base_wall, base_fp =
    match par_rows with (_, w, _, fp) :: _ -> (w, fp) | [] -> (0., "")
  in
  Report.table
    ~header:[ "-j"; "wall"; "events/s"; "speedup"; "fingerprint" ]
    (List.map
       (fun (j, wall, events, fp) ->
         [
           string_of_int j;
           Printf.sprintf "%.2fs" wall;
           Printf.sprintf "%.2fM" (float_of_int events /. wall /. 1e6);
           Printf.sprintf "%.2fx" (base_wall /. wall);
           (String.sub fp 0 12 ^ if fp = base_fp then "" else " DIVERGED");
         ])
       par_rows);
  Report.note
    (Printf.sprintf
       "steady fleet advanced on a -j domain pool (host has %d); fingerprint digests tenant/host"
       (Domain.recommended_domain_count ()));
  Report.note "stats, clock, events and the metrics export — identical down the column is the";
  Report.note "parallel-determinism contract.";
  (* snapshot *)
  let tenant_json (s : Cluster.Fleet.tenant_stat) =
    Obj
      [
        ("tenant", String s.tenant);
        ("seed", Int seed);
        ("completed", Int s.completed);
        ("dropped", Int s.dropped);
        ("rejected", Int s.rejected);
        ("p50_ns", Int s.p50);
        ("p99_ns", Int s.p99);
        ("p999_ns", Int s.p999);
      ]
  in
  let json =
    Obj
      [
        ("schema_version", Int 1);
        ("suite", String (fleet_suite ()));
        ("git_rev", String (git_rev ()));
        ("seed", Int seed);
        ( "steady",
          Obj
            [
              ("seed", Int seed);
              ("flows", Int (Cluster.Traffic.flows_completed tr));
              ("live_flows", Int (Cluster.Traffic.live_flows tr));
              ("tenants", List (List.map tenant_json tstats));
            ] );
        ( "lb",
          List
            (List.map
               (fun (name, completed, p99, p999, _) ->
                 Obj
                   [
                     ("policy", String name);
                     ("seed", Int seed);
                     ("completed", Int completed);
                     ("web_p99_ns", Int p99);
                     ("web_p999_ns", Int p999);
                   ])
               lb_rows) );
        ( "upgrade",
          List
            (List.map
               (fun (label, ups, fails, bl) ->
                 Obj
                   [
                     ("load", String label);
                     ("seed", Int seed);
                     ("hosts_upgraded", Int (List.length ups));
                     ("failures", Int fails);
                     ( "max_pause_ns",
                       Int (List.fold_left (fun m (_, p) -> max m p) 0 ups) );
                     ("blackout", fleet_hist_json bl);
                   ])
               up_rows) );
        ( "chaos",
          Obj
            [
              ("seed", Int seed);
              ("converged", Bool (Cluster.Fleet.converged cf));
              ("sanitizer_ok", Bool (Cluster.Fleet.sanitizer_ok cf));
              ("rejected", Int rejected);
            ] );
        ( "par",
          List
            (List.map
               (fun (j, wall, events, fp) ->
                 Obj
                   [
                     ("jobs", Int j);
                     ("seed", Int seed);
                     ("wall_s", Float wall);
                     ("events_per_s", Float (float_of_int events /. wall));
                     ("speedup", Float (base_wall /. wall));
                     ("deterministic", Bool (fp = base_fp));
                     ("fingerprint", String fp);
                   ])
               par_rows) );
      ]
  in
  let path = Option.value !bench_out ~default:(Printf.sprintf "BENCH_%s.json" (fleet_suite ())) in
  Metrics.Json.save ~path json;
  Printf.printf "wrote %s (git %s)\n" path (git_rev ())

(* The fleet gate: the simulation is deterministic, so the gated columns
   only move when the scheduling/traffic decision stream changes.
   Completion counts gate at 1% drift, tails at the regress tolerance; the
   chaos drill must stay converged and sanitizer-clean. *)
let fleetgate () =
  Report.section (Printf.sprintf "Fleet gate (%s suite)" (fleet_suite ()));
  let path =
    Option.value !baseline_path
      ~default:(Printf.sprintf "bench/baselines/BENCH_%s.json" (fleet_suite ()))
  in
  match Metrics.Json.parse_file ~path with
  | Error msg ->
    Printf.eprintf "fleetgate: cannot read baseline %s: %s\n" path msg;
    regress_failed := true
  | Ok base ->
    let tol = Option.value !tolerance ~default:default_p99_tolerance in
    let member_int j k = Option.(bind (Metrics.Json.member k j) Metrics.Json.to_float) in
    let rows = ref [] in
    let check label ~base_v ~cur ~max_drift =
      match base_v with
      | None -> rows := [ label; "-"; Printf.sprintf "%.0f" cur; "new (no baseline)" ] :: !rows
      | Some b ->
        let drift = if b = 0. then 0. else 100. *. Float.abs ((cur /. b) -. 1.) in
        let ok = drift <= max_drift in
        if not ok then regress_failed := true;
        rows :=
          [
            label;
            Printf.sprintf "%.0f" b;
            Printf.sprintf "%.0f" cur;
            (if ok then "ok" else Printf.sprintf "REGRESSED: drifted %.1f%%" drift);
          ]
          :: !rows
    in
    (* steady tenants (timed: the sequential side of the parallel checks) *)
    let steady, seq_wall = fleet_par_run 1 in
    let base_tenants =
      Option.value ~default:[]
        Option.(
          bind (Metrics.Json.member "steady" base) (fun s ->
              bind (Metrics.Json.member "tenants" s) Metrics.Json.to_list))
    in
    List.iter
      (fun (s : Cluster.Fleet.tenant_stat) ->
        let bj =
          List.find_opt
            (fun j ->
              Option.(bind (Metrics.Json.member "tenant" j) Metrics.Json.to_str) = Some s.tenant)
            base_tenants
        in
        check
          ("steady/" ^ s.tenant ^ " completed")
          ~base_v:(Option.bind bj (fun j -> member_int j "completed"))
          ~cur:(float_of_int s.completed) ~max_drift:1.;
        check
          ("steady/" ^ s.tenant ^ " p999")
          ~base_v:(Option.bind bj (fun j -> member_int j "p999_ns"))
          ~cur:(float_of_int s.p999) ~max_drift:tol)
      (Cluster.Fleet.tenant_stats steady);
    (* lb sweep *)
    let base_lb =
      Option.value ~default:[] Option.(bind (Metrics.Json.member "lb" base) Metrics.Json.to_list)
    in
    List.iter
      (fun (name, completed, _, _, _) ->
        let bj =
          List.find_opt
            (fun j ->
              Option.(bind (Metrics.Json.member "policy" j) Metrics.Json.to_str) = Some name)
            base_lb
        in
        check ("lb/" ^ name ^ " completed")
          ~base_v:(Option.bind bj (fun j -> member_int j "completed"))
          ~cur:(float_of_int completed) ~max_drift:1.)
      (fleet_lb_cells ());
    (* chaos drill invariants *)
    let cf = fleet_chaos_run () in
    let conv = Cluster.Fleet.converged cf and clean = Cluster.Fleet.sanitizer_ok cf in
    if not (conv && clean) then regress_failed := true;
    rows :=
      [
        "chaos drill";
        "converged+clean";
        (Printf.sprintf "%s+%s"
           (if conv then "converged" else "NOT-CONVERGED")
           (if clean then "clean" else "VIOLATIONS"));
        (if conv && clean then "ok" else "REGRESSED");
      ]
      :: !rows;
    (* parallel execution: at -j N the steady fleet must be byte-identical
       to the sequential run and clear the speedup floor.  The derived
       floor only engages for the domains the host can actually run
       concurrently — on a one-core runner it degrades to determinism-only
       (override with --speedup-floor=). *)
    let j = effective_jobs () in
    if j > 1 then begin
      let par, par_wall = fleet_par_run j in
      let same = fleet_par_fingerprint steady = fleet_par_fingerprint par in
      if not same then regress_failed := true;
      rows :=
        [
          Printf.sprintf "par/-j %d determinism" j;
          "identical";
          (if same then "identical" else "DIVERGED");
          (if same then "ok" else "REGRESSED");
        ]
        :: !rows;
      let speedup = seq_wall /. par_wall in
      let avail = min j (Domain.recommended_domain_count ()) in
      let floor =
        match !speedup_floor with
        | Some f -> f
        | None -> if avail <= 1 then 0.0 else 1.0 +. (0.15 *. float_of_int (avail - 1))
      in
      let ok = speedup >= floor in
      if not ok then regress_failed := true;
      rows :=
        [
          Printf.sprintf "par/-j %d speedup" j;
          Printf.sprintf ">= %.2fx" floor;
          Printf.sprintf "%.2fx" speedup;
          (if ok then "ok" else "REGRESSED: below floor");
        ]
        :: !rows
    end;
    Report.table ~header:[ "check"; "baseline"; "now"; "verdict" ] (List.rev !rows);
    Report.note
      (Printf.sprintf "baseline %s; completion drift 1%%, tails %.0f%%, chaos must converge" path
         tol);
    if !regress_failed then print_endline "fleetgate: FAIL (see verdicts above)"
    else print_endline "fleetgate: ok"

(* ---------- obs: observability-overhead suite ----------

   How much does watching cost?  `obs` prices each observability layer in
   host ns/event and allocated bytes/event, at two scales:

   - machine rows: pipe-bench per scheduler under four configurations —
     no observability, schedtrace tracer, metrics registry, both.  The
     simulation is deterministic and the hooks must never perturb it, so
     the [events] column has to be identical down a scheduler's configs;
   - fleet rows: the cluster tier with observability off
     ([observe:false], the no-observability baseline), the default
     metrics pipeline, and the full request-anatomy decomposition.

   The snapshot goes to BENCH_obs*.json; `obsgate` enforces (a) the
   zero-perturbation invariant (event streams identical across configs),
   (b) events and bytes/event drift against the committed baseline, (c)
   the anatomy exact-sum invariant, and (d) the fast-path budget: the
   default fleet must stay within 5% wall clock of the no-observability
   baseline (best-of-N, interleaved so host noise hits both alike).  On
   failure it writes the anatomy exemplar timeline for the CI artifact. *)

let obs_suite () = if !quick then "obs-quick" else "obs"

type obs_machine_row = {
  om_sched : string;
  om_config : string;
  om_events : int;
  om_wall_s : float;  (* best of N, recorded; only the in-process ratio gates *)
  om_bytes_per_event : float;  (* deterministic, gated *)
}

let obs_machine_scheds = [ "wfq"; "cfs" ]

let obs_machine_configs = [ "none"; "tracer"; "metrics"; "both" ]

let obs_machine_cell ~sched ~config =
  let kind =
    match Schedulers.Registry.find sched with
    | Some e -> Workloads.Setup.of_registry e
    | None -> failwith ("obs: unknown scheduler " ^ sched)
  in
  let messages = if !quick then 10_000 else 50_000 in
  let runs = if !quick then 1 else 3 in
  let best_wall = ref infinity and bytes = ref 0. and events = ref 0 in
  for _ = 1 to runs do
    let nr_cpus = Kernsim.Topology.nr_cpus one_socket in
    let tracer =
      if config = "tracer" || config = "both" then Some (Trace.Tracer.create ~nr_cpus ())
      else None
    in
    let registry =
      if config = "metrics" || config = "both" then Some (Metrics.Registry.create ()) else None
    in
    let b = Workloads.Setup.build ?tracer ?registry ~topology:one_socket kind in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (Workloads.Pipe_bench.run b ~messages ());
    let wall = Unix.gettimeofday () -. t0 in
    bytes := Gc.allocated_bytes () -. a0;
    events := M.events_dispatched b.Workloads.Setup.machine;
    if wall < !best_wall then best_wall := wall
  done;
  {
    om_sched = sched;
    om_config = config;
    om_events = !events;
    om_wall_s = !best_wall;
    om_bytes_per_event = !bytes /. float_of_int (max 1 !events);
  }

(* machine cells run sequentially: the wall column would be perturbed by
   competing domains, and the point of the suite is the overhead price *)
let obs_machine_cells () =
  List.concat_map
    (fun sched -> List.map (fun config -> obs_machine_cell ~sched ~config) obs_machine_configs)
    obs_machine_scheds

type obs_fleet_row = {
  ofl_config : string;
  ofl_events : int;
  ofl_wall_s : float;
  ofl_bytes_per_event : float;
  ofl_completed : int;
}

let obs_fleet_configs = [ "baseline"; "metrics"; "anatomy" ]

let obs_fleet_build config =
  Cluster.Fleet.create ~warmup:fleet_warmup ~observe:(config <> "baseline")
    ~anatomy:(config = "anatomy") ~seed:(fleet_seed ())
    ~hosts:(fleet_entries [ "wfq"; "cfs" ])
    ~tenants:(fleet_mix ~scale:0.25 ())
    ()

let obs_fleet_duration () = Kernsim.Time.ms (if !quick then 600 else 1500)

(* Interleaved best-of-N: each round runs baseline, metrics and anatomy
   back to back, so transient host noise lands on all three alike — the
   fast-path ratio is gated, so it must not be an artifact of when the
   config happened to run. *)
let obs_fleet_cells () =
  let n = List.length obs_fleet_configs in
  let rounds = 3 in
  let best_wall = Array.make n infinity in
  let kept = Array.make n None in
  for _ = 1 to rounds do
    List.iteri
      (fun i config ->
        let f = obs_fleet_build config in
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        Cluster.Fleet.run f ~until:(obs_fleet_duration ());
        let wall = Unix.gettimeofday () -. t0 in
        let bytes = Gc.allocated_bytes () -. a0 in
        if wall < best_wall.(i) then best_wall.(i) <- wall;
        (* events, bytes and completions are deterministic across rounds *)
        kept.(i) <- Some (f, bytes))
      obs_fleet_configs
  done;
  List.mapi
    (fun i config ->
      let f, bytes = Option.get kept.(i) in
      let events = Cluster.Fleet.events_dispatched f in
      let completed =
        List.fold_left
          (fun acc (s : Cluster.Fleet.tenant_stat) -> acc + s.completed)
          0 (Cluster.Fleet.tenant_stats f)
      in
      ( {
          ofl_config = config;
          ofl_events = events;
          ofl_wall_s = best_wall.(i);
          ofl_bytes_per_event = bytes /. float_of_int (max 1 events);
          ofl_completed = completed;
        },
        Cluster.Fleet.anatomy f ))
    obs_fleet_configs

let obs_collect () = (obs_machine_cells (), obs_fleet_cells ())

let obs_fastpath_ratio fleet_rows =
  let wall config =
    List.find_map
      (fun (r, _) -> if r.ofl_config = config then Some r.ofl_wall_s else None)
      fleet_rows
  in
  match (wall "baseline", wall "metrics") with
  | Some b, Some m when b > 0. -> m /. b
  | _ -> nan

let obs_json (machine, fleet_rows) =
  let open Metrics.Json in
  Obj
    [
      ("schema_version", Int 1);
      ("suite", String (obs_suite ()));
      ("git_rev", String (git_rev ()));
      ("seed", Int (fleet_seed ()));
      ( "machine",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("scheduler", String r.om_sched);
                   ("config", String r.om_config);
                   ("events", Int r.om_events);
                   ("wall_s", Float r.om_wall_s);
                   ("ns_per_event", Float (r.om_wall_s *. 1e9 /. float_of_int (max 1 r.om_events)));
                   ("bytes_per_event", Float r.om_bytes_per_event);
                 ])
             machine) );
      ( "fleet",
        List
          (List.map
             (fun (r, anat) ->
               Obj
                 ([
                    ("config", String r.ofl_config);
                    ("events", Int r.ofl_events);
                    ("wall_s", Float r.ofl_wall_s);
                    ( "ns_per_event",
                      Float (r.ofl_wall_s *. 1e9 /. float_of_int (max 1 r.ofl_events)) );
                    ("bytes_per_event", Float r.ofl_bytes_per_event);
                    ("completed", Int r.ofl_completed);
                  ]
                 @
                 match anat with
                 | None -> []
                 | Some a ->
                   [
                     ("anatomy_completions", Int (Trace.Anatomy.completions a));
                     ("anatomy_max_sum_error", Int (Trace.Anatomy.max_sum_error a));
                   ]))
             fleet_rows) );
      ("fastpath_ratio", Float (obs_fastpath_ratio fleet_rows));
    ]

let obs_table (machine, fleet_rows) =
  Report.note "machine rows: pipe-bench per scheduler x observability config; the";
  Report.note "events column must be identical down a scheduler's configs (the hooks";
  Report.note "never perturb the simulation).  Wall columns are host measurements.";
  let base_wall sched =
    List.find_map
      (fun r -> if r.om_sched = sched && r.om_config = "none" then Some r.om_wall_s else None)
      machine
  in
  Report.table
    ~header:[ "scheduler"; "config"; "events"; "wall (s)"; "ns/event"; "B/event"; "vs none" ]
    (List.map
       (fun r ->
         [
           r.om_sched;
           r.om_config;
           string_of_int r.om_events;
           Printf.sprintf "%.3f" r.om_wall_s;
           Printf.sprintf "%.0f" (r.om_wall_s *. 1e9 /. float_of_int (max 1 r.om_events));
           Printf.sprintf "%.1f" r.om_bytes_per_event;
           (match base_wall r.om_sched with
           | Some b when b > 0. -> Printf.sprintf "%.2fx" (r.om_wall_s /. b)
           | _ -> "-");
         ])
       machine);
  Report.note "";
  Report.note "fleet rows: cluster tier (wfq+cfs hosts) with observability off, the";
  Report.note "default metrics pipeline, and full request anatomy:";
  Report.table
    ~header:[ "config"; "events"; "completed"; "wall (s)"; "ns/event"; "B/event"; "anatomy" ]
    (List.map
       (fun (r, anat) ->
         [
           r.ofl_config;
           string_of_int r.ofl_events;
           string_of_int r.ofl_completed;
           Printf.sprintf "%.3f" r.ofl_wall_s;
           Printf.sprintf "%.0f" (r.ofl_wall_s *. 1e9 /. float_of_int (max 1 r.ofl_events));
           Printf.sprintf "%.1f" r.ofl_bytes_per_event;
           (match anat with
           | None -> "-"
           | Some a ->
             Printf.sprintf "%d reqs, sum err %d" (Trace.Anatomy.completions a)
               (Trace.Anatomy.max_sum_error a));
         ])
       fleet_rows);
  let ratio = obs_fastpath_ratio fleet_rows in
  if not (Float.is_nan ratio) then
    Report.note
      (Printf.sprintf "fast path: default fleet at %.3fx the no-observability baseline wall"
         ratio)

let obs () =
  Report.section
    (Printf.sprintf "Observability suite (%s): what watching costs" (obs_suite ()));
  let results = obs_collect () in
  obs_table results;
  let path = Option.value !bench_out ~default:(Printf.sprintf "BENCH_%s.json" (obs_suite ())) in
  Metrics.Json.save ~path (obs_json results);
  Printf.printf "wrote %s (git %s)\n" path (git_rev ())

(* Where obsgate drops the anatomy exemplar timeline on failure, so CI can
   upload it as an artifact next to the gate log.  Under _build so a failed
   gate never litters the repo root. *)
let obs_exemplar_path = "_build/obs-exemplars.trace.json"

let obsgate () =
  Report.section (Printf.sprintf "Observability gate (%s suite)" (obs_suite ()));
  let machine, fleet_rows = obs_collect () in
  let rows = ref [] in
  let verdict label baseline now ok why =
    if not ok then regress_failed := true;
    rows := [ label; baseline; now; (if ok then "ok" else "REGRESSED: " ^ why) ] :: !rows
  in
  (* (a) zero perturbation: within a scheduler, every config dispatches the
     exact same event count — no baseline needed, the run argues with
     itself *)
  List.iter
    (fun sched ->
      let events =
        List.filter_map
          (fun r -> if r.om_sched = sched then Some r.om_events else None)
          machine
      in
      match events with
      | [] -> ()
      | e0 :: _ ->
        let ok = List.for_all (fun e -> e = e0) events in
        verdict
          (Printf.sprintf "machine/%s events identical" sched)
          (string_of_int e0)
          (String.concat "/" (List.map string_of_int events))
          ok "observability perturbed the event stream")
    obs_machine_scheds;
  (match List.map (fun (r, _) -> r.ofl_events) fleet_rows with
  | [] -> ()
  | e0 :: _ as events ->
    verdict "fleet events identical" (string_of_int e0)
      (String.concat "/" (List.map string_of_int events))
      (List.for_all (fun e -> e = e0) events)
      "observability perturbed the fleet");
  (* (c) anatomy invariants: phases must sum exactly, and the decomposition
     must actually have seen traffic *)
  let anat = List.find_map (fun (_, a) -> a) fleet_rows in
  (match anat with
  | None ->
    verdict "anatomy present" "yes" "no" false "anatomy fleet row missing"
  | Some a ->
    verdict "anatomy sum error" "0"
      (string_of_int (Trace.Anatomy.max_sum_error a))
      (Trace.Anatomy.max_sum_error a = 0)
      "phase durations no longer sum to e2e";
    verdict "anatomy completions" "> 0"
      (string_of_int (Trace.Anatomy.completions a))
      (Trace.Anatomy.completions a > 0)
      "anatomy observed no requests");
  (* (d) the fast-path budget: metrics-on fleet within 5% of the
     no-observability baseline, measured interleaved in this process *)
  let ratio = obs_fastpath_ratio fleet_rows in
  verdict "fleet fast path" "<= 1.05x"
    (if Float.is_nan ratio then "nan" else Printf.sprintf "%.3fx" ratio)
    ((not (Float.is_nan ratio)) && ratio <= 1.05)
    "observability on costs more than 5% wall clock";
  (* (b) drift against the committed baseline *)
  let path =
    Option.value !baseline_path
      ~default:(Printf.sprintf "bench/baselines/BENCH_%s.json" (obs_suite ()))
  in
  (match Metrics.Json.parse_file ~path with
  | Error msg ->
    Printf.eprintf "obsgate: cannot read baseline %s: %s\n" path msg;
    regress_failed := true
  | Ok base ->
    let tol_bytes = Option.value !tolerance ~default:default_bytes_tolerance in
    let get_float j k = Option.bind (Metrics.Json.member k j) Metrics.Json.to_float in
    let get_str j k = Option.bind (Metrics.Json.member k j) Metrics.Json.to_str in
    let diff label bj ~events ~bytes =
      match bj with
      | None -> rows := [ label; "-"; "-"; "new (no baseline)" ] :: !rows
      | Some bj ->
        (match get_float bj "events" with
        | Some be when be > 0. ->
          let drift = 100. *. Float.abs ((float_of_int events /. be) -. 1.) in
          verdict (label ^ " events")
            (Printf.sprintf "%.0f" be)
            (string_of_int events)
            (drift <= 1.)
            (Printf.sprintf "drifted %.1f%%" drift)
        | _ -> ());
        (match get_float bj "bytes_per_event" with
        | Some bb when bb > 0. ->
          verdict (label ^ " B/event")
            (Printf.sprintf "%.1f" bb)
            (Printf.sprintf "%.1f" bytes)
            (bytes <= bb *. (1. +. (tol_bytes /. 100.)))
            (Printf.sprintf "+%.1f%%" (100. *. ((bytes /. bb) -. 1.)))
        | _ -> ())
    in
    let base_machine =
      Option.value ~default:[]
        Option.(bind (Metrics.Json.member "machine" base) Metrics.Json.to_list)
    in
    List.iter
      (fun r ->
        let bj =
          List.find_opt
            (fun j -> get_str j "scheduler" = Some r.om_sched && get_str j "config" = Some r.om_config)
            base_machine
        in
        diff
          (Printf.sprintf "machine/%s/%s" r.om_sched r.om_config)
          bj ~events:r.om_events ~bytes:r.om_bytes_per_event)
      machine;
    let base_fleet =
      Option.value ~default:[]
        Option.(bind (Metrics.Json.member "fleet" base) Metrics.Json.to_list)
    in
    List.iter
      (fun (r, _) ->
        let bj =
          List.find_opt (fun j -> get_str j "config" = Some r.ofl_config) base_fleet
        in
        diff ("fleet/" ^ r.ofl_config) bj ~events:r.ofl_events ~bytes:r.ofl_bytes_per_event)
      fleet_rows);
  Report.table ~header:[ "check"; "baseline"; "now"; "verdict" ] (List.rev !rows);
  Report.note
    (Printf.sprintf
       "baseline %s; events drift 1%%, bytes %.0f%%, fast path 5%%; wall never gated vs disk"
       path
       (Option.value !tolerance ~default:default_bytes_tolerance));
  if !regress_failed then begin
    (match anat with
    | Some a ->
      Trace.Anatomy.save_chrome a ~path:obs_exemplar_path;
      Printf.printf "obsgate: wrote %s (worst-request timeline for the CI artifact)\n"
        obs_exemplar_path
    | None -> ());
    print_endline "obsgate: FAIL (see verdicts above)"
  end
  else print_endline "obsgate: ok"

(* ---------- driver ---------- *)

let experiments =
  [
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("fig2a", fig2a);
    ("fig2bc", fig2bc);
    ("fig3", fig3);
    ("upgrade", upgrade);
    ("recordreplay", recordreplay);
    ("appendix", appendix);
    ("ablation", ablation);
    ("loc", loc);
    ("micro", micro);
    ("sanity", sanity);
    ("chaos", chaos);
    ("perf", perf);
    ("regress", regress);
    ("speed", speed);
    ("speedgate", speedgate);
    ("dsq", dsq);
    ("dsqgate", dsqgate);
    ("fleet", fleet);
    ("fleetgate", fleetgate);
    ("obs", obs);
    ("obsgate", obsgate);
  ]

let () =
  let has_prefix ~prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  let cut ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix) in
  (* a bare -j defaults to the host's domain count, but may be refined by a
     following integer argument ("-j 4"), matching make/dune convention *)
  let jobs_pending = ref false in
  let unknown_name = ref false in
  let names =
    List.filter
      (fun arg ->
        let was_jobs_arg = !jobs_pending in
        jobs_pending := false;
        if arg = "--sanitize" then begin
          sanitize := true;
          false
        end
        else if has_prefix ~prefix:"--trace=" arg then begin
          trace_path := Some (cut ~prefix:"--trace=" arg);
          false
        end
        else if has_prefix ~prefix:"--trace-format=" arg then begin
          (match Trace.Export.format_of_string (cut ~prefix:"--trace-format=" arg) with
          | Some f -> trace_format := f
          | None -> Printf.eprintf "unknown trace format in %s (chrome|ftrace)\n" arg);
          false
        end
        else if has_prefix ~prefix:"--seed=" arg then begin
          (match int_of_string_opt (cut ~prefix:"--seed=" arg) with
          | Some n -> seed := Some n
          | None -> Printf.eprintf "bad seed in %s\n" arg);
          false
        end
        else if arg = "--quick" then begin
          quick := true;
          false
        end
        else if arg = "-j" then begin
          (* bare -j: size the pool to the host *)
          jobs := Domain.recommended_domain_count ();
          jobs_pending := true;
          false
        end
        else if was_jobs_arg && int_of_string_opt arg <> None then begin
          (match int_of_string_opt arg with
          | Some n when n >= 1 -> jobs := n
          | _ -> Printf.eprintf "bad job count in -j %s\n" arg);
          false
        end
        else if has_prefix ~prefix:"--jobs=" arg then begin
          (match int_of_string_opt (cut ~prefix:"--jobs=" arg) with
          | Some n when n >= 1 -> jobs := n
          | _ -> Printf.eprintf "bad job count in %s\n" arg);
          false
        end
        else if has_prefix ~prefix:"-j" arg then begin
          (match int_of_string_opt (cut ~prefix:"-j" arg) with
          | Some n when n >= 1 -> jobs := n
          | _ -> Printf.eprintf "bad job count in %s (try -jN or --jobs=N)\n" arg);
          false
        end
        else if has_prefix ~prefix:"--bench-out=" arg then begin
          bench_out := Some (cut ~prefix:"--bench-out=" arg);
          false
        end
        else if has_prefix ~prefix:"--baseline=" arg then begin
          baseline_path := Some (cut ~prefix:"--baseline=" arg);
          false
        end
        else if has_prefix ~prefix:"--tolerance=" arg then begin
          (match float_of_string_opt (cut ~prefix:"--tolerance=" arg) with
          | Some pct -> tolerance := Some pct
          | None -> Printf.eprintf "bad tolerance in %s (percent expected)\n" arg);
          false
        end
        else if has_prefix ~prefix:"--speedup-floor=" arg then begin
          (match float_of_string_opt (cut ~prefix:"--speedup-floor=" arg) with
          | Some x -> speedup_floor := Some x
          | None -> Printf.eprintf "bad speedup floor in %s (e.g. 1.3)\n" arg);
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  (* perf and regress are explicit gating targets, not part of "run
     everything" (regress needs a committed baseline to diff against) *)
  let default_set =
    List.filter
      (fun n -> not (List.mem n [ "perf"; "regress"; "speed"; "speedgate"; "dsq"; "dsqgate"; "fleet"; "fleetgate"; "obs"; "obsgate" ]))
      (List.map fst experiments)
  in
  let requested = match names with [] -> default_set | ns -> ns in
  Printf.printf "workload seed: %s\n"
    (match !seed with
    | Some n -> string_of_int n
    | None -> "per-workload defaults (schbench 42, rocksdb 7, memcached 11)");
  if !jobs > 1 then
    Printf.printf "job pool: %d domains%s\n" (effective_jobs ())
      (if effective_jobs () = 1 then " requested, forced sequential by --trace=" else "");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let t = Unix.gettimeofday () in
        let a0 = Gc.allocated_bytes () and c0 = Atomic.get cells_allocated in
        let g0 = Gc.quick_stat () in
        f ();
        (* allocation aggregated across the main domain and the pool *)
        let mb =
          (Gc.allocated_bytes () -. a0 +. float_of_int (Atomic.get cells_allocated - c0))
          /. 1e6
        in
        let g1 = Gc.quick_stat () in
        Printf.printf "  [%s took %.1fs, %.0f MB allocated, %d minor / %d major gcs]\n%!" name
          (Unix.gettimeofday () -. t)
          mb
          (g1.Gc.minor_collections - g0.Gc.minor_collections)
          (g1.Gc.major_collections - g0.Gc.major_collections)
      | None ->
        unknown_name := true;
        Printf.eprintf "unknown experiment %s; available: %s\n" name
          (String.concat " " (List.map fst experiments)))
    requested;
  finish_tracing ();
  Printf.printf "\nall requested experiments done in %.1fs\n" (Unix.gettimeofday () -. t0);
  if !unknown_name then exit 2;
  if !regress_failed then exit 4
