(* Live upgrade (§3.2): replace a running scheduler with a new version of
   itself without stopping the machine or losing any task.

     dune exec examples/live_upgrade.exe

   WFQ v2 here is WFQ recompiled with a provocative name; its
   [reregister_init] claims the old version's run-queues through the
   transfer value, so every queued task keeps its vruntime.  The same
   mechanism rejects an upgrade to a scheduler with an incompatible state
   layout, which this example also demonstrates. *)

module T = Kernsim.Task
module M = Kernsim.Machine

module Wfq_v2 : Enoki.Sched_trait.S = struct
  include Schedulers.Wfq

  let name = "wfq-v2"
end

let () =
  let enoki = Enoki.Enoki_c.create (module Schedulers.Wfq) in
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  (* a steady mixed load so the upgrade happens under fire *)
  let ch = M.new_chan machine in
  for i = 0 to 9 do
    let beh =
      let st = ref `Work in
      fun _ ->
        match !st with
        | `Work ->
          st := `Nap;
          T.Compute (Kernsim.Time.us 500)
        | `Nap ->
          st := `Work;
          if i mod 2 = 0 then T.Sleep (Kernsim.Time.us 200) else T.Wake ch
    in
    ignore
      (M.spawn machine { (T.default_spec ~name:(Printf.sprintf "load-%d" i) beh) with T.policy = 0 })
  done;
  Printf.printf "running under: %s\n" (Enoki.Enoki_c.scheduler_name enoki);
  (* upgrade to v2 at t = 50ms *)
  M.at machine ~delay:(Kernsim.Time.ms 50) (fun () ->
      match Enoki.Enoki_c.upgrade enoki (module Wfq_v2) with
      | Ok stats ->
        Printf.printf "t=50ms: upgraded to %s -- pause %s, %d tasks carried, state %s\n"
          (Enoki.Enoki_c.scheduler_name enoki)
          (Kernsim.Time.to_string stats.Enoki.Upgrade.pause)
          stats.tasks_carried
          (if stats.transferred then "transferred" else "fresh")
      | Error e -> raise e);
  (* and demonstrate the rejection path at t = 100ms *)
  M.at machine ~delay:(Kernsim.Time.ms 100) (fun () ->
      match Enoki.Enoki_c.upgrade enoki (module Schedulers.Shinjuku) with
      | Ok _ -> failwith "shinjuku must not accept wfq state"
      | Error (Enoki.Upgrade.Incompatible reason) ->
        Printf.printf "t=100ms: upgrade to shinjuku rejected (%s); still running %s\n" reason
          (Enoki.Enoki_c.scheduler_name enoki)
      | Error e -> raise e);
  M.run_for machine (Kernsim.Time.ms 200);
  let alive =
    List.length (List.filter (fun (t : T.t) -> t.T.state <> T.Dead) (M.tasks machine))
  in
  Printf.printf "after 200ms: %d tasks still being scheduled, %d violations\n" alive
    (Enoki.Enoki_c.violations enoki);
  assert (Enoki.Enoki_c.violations enoki = 0);
  print_endline "live upgrade OK"
