(* Quickstart: write a scheduler against the EnokiScheduler trait, load it
   into a simulated kernel, and run tasks on it.

     dune exec examples/quickstart.exe

   This is the paper's §3.1 worked example: a round-robin scheduler with
   per-core first-come-first-serve queues.  It implements the full trait by
   delegating the boilerplate to the library FIFO scheduler and overriding
   the decision points, which is how downstream users are expected to start
   (§B.5 of the paper's artifact appendix recommends copying a scheduler
   skeleton and editing the policy). *)

module T = Kernsim.Task
module M = Kernsim.Machine

(* A tiny scheduler: per-cpu FCFS queues, shortest-queue placement, idle
   stealing.  The heavy lifting — Schedulable ownership, message parsing,
   run-queue mechanics — is the framework's job, not ours. *)
module My_sched : Enoki.Sched_trait.S = struct
  include Schedulers.Fifo_sched

  let name = "my-first-scheduler"
end

let () =
  (* 1. prepare the scheduler module for registration *)
  let enoki = Enoki.Enoki_c.create (module My_sched) in
  (* 2. boot a simulated 8-core machine with the module loaded above CFS *)
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  (* 3. attach tasks to policy 0 (our scheduler) and let them run *)
  let hog name ms =
    let left = ref ms in
    M.spawn machine
      {
        (T.default_spec ~name (fun _ ->
             if !left = 0 then T.Exit
             else begin
               decr left;
               T.Compute (Kernsim.Time.ms 1)
             end))
        with
        T.policy = 0;
      }
  in
  let pids = List.init 12 (fun i -> hog (Printf.sprintf "task-%02d" i) (10 + (i * 3))) in
  M.run_for machine (Kernsim.Time.ms 200);
  (* 4. inspect what happened *)
  Printf.printf "scheduler: %s\n" (Enoki.Enoki_c.scheduler_name enoki);
  List.iter
    (fun pid ->
      let task = Option.get (M.find_task machine pid) in
      Printf.printf "  %-8s ran %6.1f ms on cpu %d, %s\n" task.T.name
        (Kernsim.Time.to_ms task.T.sum_exec)
        task.T.cpu
        (Format.asprintf "%a" T.pp_state task.T.state))
    pids;
  Printf.printf "framework: %d scheduler invocations, %d Schedulable violations\n"
    (Enoki.Enoki_c.calls enoki) (Enoki.Enoki_c.violations enoki);
  assert (Enoki.Enoki_c.violations enoki = 0);
  print_endline "quickstart OK"
