examples/live_upgrade.mli:
