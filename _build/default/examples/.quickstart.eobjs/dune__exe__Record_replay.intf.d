examples/record_replay.mli:
