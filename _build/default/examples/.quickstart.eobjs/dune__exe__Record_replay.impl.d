examples/record_replay.ml: Enoki Filename Format Kernsim List Printf Schedulers Sys
