examples/quickstart.ml: Enoki Format Kernsim List Option Printf Schedulers
