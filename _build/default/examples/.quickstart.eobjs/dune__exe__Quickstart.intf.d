examples/quickstart.mli:
