examples/locality_hints.mli:
