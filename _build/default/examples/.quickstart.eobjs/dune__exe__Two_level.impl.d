examples/two_level.ml: Array Enoki Kernsim List Printf Schedulers String
