examples/live_upgrade.ml: Enoki Kernsim List Printf Schedulers
