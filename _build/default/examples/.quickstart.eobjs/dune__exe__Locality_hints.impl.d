examples/locality_hints.ml: Enoki Kernsim List Printf Schedulers
