(* Record and replay (§3.4): run a workload with the record tap on, save
   the scheduler's message log, then replay the log against the identical
   scheduler code at "userspace" — on real OS threads, with every lock
   admitting threads in the recorded order — and validate the replies.

     dune exec examples/record_replay.exe *)

module T = Kernsim.Task
module M = Kernsim.Machine

let () =
  (* 1. record a run of the WFQ scheduler under a mixed workload *)
  let record = Enoki.Record.create () in
  let enoki = Enoki.Enoki_c.create ~record (module Schedulers.Wfq) in
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  let ch = M.new_chan machine in
  for i = 0 to 5 do
    let beh =
      let steps = ref 200 in
      fun _ ->
        if !steps = 0 then T.Exit
        else begin
          decr steps;
          match !steps mod 4 with
          | 0 -> T.Compute (Kernsim.Time.us 300)
          | 1 -> T.Wake ch
          | 2 -> if i mod 2 = 0 then T.Block ch else T.Yield
          | _ -> T.Sleep (Kernsim.Time.us 100)
        end
    in
    ignore
      (M.spawn machine { (T.default_spec ~name:(Printf.sprintf "mix-%d" i) beh) with T.policy = 0 })
  done;
  M.run_for machine (Kernsim.Time.ms 500);
  let path = Filename.temp_file "wfq" ".rec" in
  Enoki.Record.save record ~path;
  Printf.printf "recorded %d log lines to %s (%d dropped)\n" (Enoki.Record.length record) path
    (Enoki.Record.dropped record);

  (* 2. replay the log against the same scheduler code, at userspace *)
  let log = Enoki.Record.load_file ~path in
  let report = Enoki.Replay.run (module Schedulers.Wfq) ~log in
  Format.printf "%a@." Enoki.Replay.pp_report report;

  (* 3. replaying a *different* scheduler flags divergence, as the paper's
     replay validates responses against the recording *)
  let wrong = Enoki.Replay.run (module Schedulers.Fifo_sched) ~log in
  Printf.printf "replaying the wrong scheduler: %d reply mismatches flagged\n"
    (List.length wrong.Enoki.Replay.mismatches);
  Sys.remove path;
  assert (report.Enoki.Replay.mismatches = []);
  assert (wrong.Enoki.Replay.mismatches <> []);
  print_endline "record/replay OK"
