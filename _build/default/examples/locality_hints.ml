(* Custom scheduler hints (§3.3): an application tells the locality-aware
   scheduler which of its tasks communicate, and the scheduler co-locates
   them — without the application naming any core, unlike cpusets.

     dune exec examples/locality_hints.exe

   Three producer/consumer pairs bounce messages.  With hints, each pair
   shares a core and the handoff is a cheap local switch; without, the
   pairs land wherever random placement puts them and every message pays
   cross-core wakeup costs.  The example prints both configurations. *)

module T = Kernsim.Task
module M = Kernsim.Machine

let run ~hints =
  Schedulers.Hints.register_codecs ();
  let enoki = Enoki.Enoki_c.create (module Schedulers.Locality) in
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  let messages = 5_000 in
  let done_count = ref 0 in
  for pair = 0 to 2 do
    let there = M.new_chan machine and back = M.new_chan machine in
    let producer =
      let n = ref 0 and st = ref (if hints then `Hint else `Work) in
      fun (ctx : T.ctx) ->
        match !st with
        | `Hint ->
          st := `Work;
          T.Send_hint (Schedulers.Hints.Locality { pid = ctx.T.self; group = pair })
        | `Work ->
          (* produce the message payload *)
          st := `Send;
          T.Compute (Kernsim.Time.us 1)
        | `Send ->
          st := `Wait;
          T.Wake there
        | `Wait ->
          st := `Step;
          T.Block back
        | `Step ->
          incr n;
          if !n >= messages then begin
            incr done_count;
            T.Exit
          end
          else begin
            st := `Send;
            T.Compute (Kernsim.Time.us 1)
          end
    in
    let consumer =
      let n = ref 0 and st = ref (if hints then `Hint else `Recv) in
      fun (ctx : T.ctx) ->
        match !st with
        | `Hint ->
          st := `Recv;
          T.Send_hint (Schedulers.Hints.Locality { pid = ctx.T.self; group = pair })
        | `Recv ->
          if !n >= messages then begin
            incr done_count;
            T.Exit
          end
          else begin
            st := `Consume;
            T.Block there
          end
        | `Consume ->
          (* handle the message before replying *)
          st := `Reply;
          T.Compute (Kernsim.Time.us 1)
        | `Reply ->
          incr n;
          st := `Recv;
          T.Wake back
    in
    ignore
      (M.spawn machine
         { (T.default_spec ~name:(Printf.sprintf "prod-%d" pair) producer) with T.policy = 0 });
    ignore
      (M.spawn machine
         { (T.default_spec ~name:(Printf.sprintf "cons-%d" pair) consumer) with T.policy = 0 })
  done;
  let started = M.now machine in
  M.run_for machine (Kernsim.Time.sec 10);
  let finish =
    List.fold_left
      (fun acc (t : T.t) -> match t.T.exited_at with Some e -> max acc e | None -> acc)
      started (M.tasks machine)
  in
  let per_msg = Kernsim.Time.to_us (finish - started) /. float_of_int (2 * messages) in
  Printf.printf "%-22s %d/6 tasks finished, %.2f us per message\n"
    (if hints then "with locality hints:" else "random placement:")
    !done_count per_msg;
  per_msg

let () =
  let without = run ~hints:false in
  let with_hints = run ~hints:true in
  Printf.printf "hints made messaging %.1fx cheaper\n" (without /. with_hints);
  assert (with_hints < without);
  print_endline "locality hints OK"
