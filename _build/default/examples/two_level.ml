(* Two-level scheduling (§4.2.4): the Enoki re-implementation of the
   Arachne core arbiter.  An application runtime requests cores over the
   user-to-kernel hint queue; the arbiter grants cores to scheduler
   activations and reclaims them over the kernel-to-user reverse queue when
   the request shrinks.

     dune exec examples/two_level.exe *)

module T = Kernsim.Task
module M = Kernsim.Machine

let n_activations = 5

let () =
  Schedulers.Hints.register_codecs ();
  let enoki = Enoki.Enoki_c.create (module Schedulers.Arachne) in
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  (* activations spin on their granted core; a reclaim parks them *)
  let reclaim = Array.make n_activations false in
  let park = Array.init n_activations (fun _ -> M.new_chan machine) in
  let work_done = Array.make n_activations 0 in
  for slot = 0 to n_activations - 1 do
    let beh (_ : T.ctx) =
      if reclaim.(slot) then begin
        reclaim.(slot) <- false;
        T.Block park.(slot)
      end
      else begin
        work_done.(slot) <- work_done.(slot) + 1;
        T.Compute (Kernsim.Time.us 100)
      end
    in
    ignore
      (M.spawn machine
         { (T.default_spec ~name:(Printf.sprintf "activation-%d" slot) beh) with T.policy = 0 })
  done;
  (* the runtime walks its core demand up and down: 1 -> 4 -> 2 cores *)
  let timeline = ref [] in
  let runtime =
    let phases = ref [ (1, Kernsim.Time.ms 20); (4, Kernsim.Time.ms 40); (2, Kernsim.Time.ms 40) ] in
    fun (ctx : T.ctx) ->
      List.iter
        (fun h ->
          match h with
          | Schedulers.Hints.Core_grant { slot; cpu } ->
            timeline := Printf.sprintf "t=%s: slot %d granted cpu %d"
                          (Kernsim.Time.to_string ctx.T.now) slot cpu :: !timeline;
            reclaim.(slot) <- false
          | Schedulers.Hints.Core_reclaim { slot } ->
            timeline := Printf.sprintf "t=%s: slot %d reclaimed"
                          (Kernsim.Time.to_string ctx.T.now) slot :: !timeline;
            reclaim.(slot) <- true
          | _ -> ())
        ctx.T.inbox;
      match !phases with
      | [] -> T.Exit
      | (want, hold) :: rest ->
        phases := (-want, hold) :: rest;
        if want > 0 then T.Send_hint (Schedulers.Hints.Core_request { pid = ctx.T.self; cores = want })
        else begin
          phases := rest;
          T.Sleep hold
        end
  in
  ignore
    (M.spawn machine
       { (T.default_spec ~name:"runtime" runtime) with T.policy = 1; affinity = Some [ 0 ] });
  M.run_for machine (Kernsim.Time.ms 150);
  List.iter print_endline (List.rev !timeline);
  Array.iteri (fun slot n -> Printf.printf "activation %d ran %d quanta\n" slot n) work_done;
  let grants = List.length (List.filter (fun s -> String.length s > 0) (List.rev !timeline)) in
  assert (grants >= 4);
  print_endline "two-level scheduling OK"
