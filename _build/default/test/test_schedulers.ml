(* Behavioural tests for the scheduler implementations (lib/schedulers). *)

module T = Kernsim.Task
module M = Kernsim.Machine

let check = Alcotest.check

let build kind = Workloads.Setup.build ~topology:Kernsim.Topology.one_socket kind

let hog ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let spawn_hog (b : Workloads.Setup.built) ?(nice = 0) ?affinity ~name ~work () =
  M.spawn b.machine
    {
      (T.default_spec ~name (hog ~chunk:(Kernsim.Time.ms 1) ~steps:(work / Kernsim.Time.ms 1)))
      with
      T.policy = b.policy;
      nice;
      affinity;
    }

let runtime_of b pid = (Option.get (M.find_task b.Workloads.Setup.machine pid)).T.sum_exec

let state_of b pid = (Option.get (M.find_task b.Workloads.Setup.machine pid)).T.state

(* ---------- WFQ ---------- *)

let test_wfq_fair_two_hogs () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  let a = spawn_hog b ~name:"a" ~affinity:[ 0 ] ~work:(Kernsim.Time.ms 300) () in
  let c = spawn_hog b ~name:"c" ~affinity:[ 0 ] ~work:(Kernsim.Time.ms 300) () in
  M.run_for b.machine (Kernsim.Time.ms 100);
  let ra = float_of_int (runtime_of b a) and rc = float_of_int (runtime_of b c) in
  let ratio = ra /. Float.max 1.0 rc in
  if ratio < 0.7 || ratio > 1.4 then Alcotest.failf "wfq unfair: %f vs %f" ra rc

let test_wfq_weighted () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  let hi = spawn_hog b ~name:"hi" ~nice:0 ~affinity:[ 0 ] ~work:(Kernsim.Time.ms 400) () in
  let lo = spawn_hog b ~name:"lo" ~nice:5 ~affinity:[ 0 ] ~work:(Kernsim.Time.ms 400) () in
  M.run_for b.machine (Kernsim.Time.ms 120);
  let ratio = float_of_int (runtime_of b hi) /. Float.max 1.0 (float_of_int (runtime_of b lo)) in
  (* weights 1024 vs 335: expect roughly 3x *)
  if ratio < 1.8 || ratio > 5.0 then Alcotest.failf "wfq weighting off: ratio %f" ratio

let test_wfq_steals_when_idle () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  (* 16 tasks on an 8-core box: all must finish, so idle cores stole work *)
  let pids = List.init 16 (fun i -> spawn_hog b ~name:(Printf.sprintf "w%d" i) ~work:(Kernsim.Time.ms 10) ()) in
  M.run_for b.machine (Kernsim.Time.ms 200);
  List.iter (fun pid -> check Alcotest.bool "finished" true (state_of b pid = T.Dead)) pids

let test_wfq_work_conserving () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  let pids = List.init 8 (fun i -> spawn_hog b ~name:(Printf.sprintf "w%d" i) ~work:(Kernsim.Time.ms 20) ()) in
  M.run_for b.machine (Kernsim.Time.ms 100);
  (* 8 tasks, 8 cores: total runtime ~ 8 x 20ms consumed in ~20ms wall *)
  List.iter (fun pid -> check Alcotest.bool "done" true (state_of b pid = T.Dead)) pids;
  let total = List.fold_left (fun acc pid -> acc + runtime_of b pid) 0 pids in
  check Alcotest.bool "all work done" true (total >= 8 * Kernsim.Time.ms 20)

let test_wfq_vruntime_visible () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Wfq)) in
  let pid = spawn_hog b ~name:"v" ~affinity:[ 0 ] ~work:(Kernsim.Time.ms 50) () in
  let _other = spawn_hog b ~name:"o" ~affinity:[ 0 ] ~work:(Kernsim.Time.ms 50) () in
  M.run_for b.machine (Kernsim.Time.ms 20);
  match b.enoki with
  | Some _ -> (
    (* reach through the registered module is not exposed; spot-check via a
       fresh instance instead *)
    let ctx = Enoki.Ctx.inert () in
    let w = Schedulers.Wfq.create ctx in
    check Alcotest.(option int) "unknown pid has no vruntime" None
      (Schedulers.Wfq.vruntime_of w ~pid);
    check Alcotest.int "fresh queues empty" 0 (Schedulers.Wfq.queue_length w ~cpu:0))
  | None -> Alcotest.fail "no enoki"

(* ---------- Shinjuku ---------- *)

let test_shinjuku_preempts_long_tasks () =
  (* one long task + short tasks on one effective core: shorts must finish
     quickly because the long task is preempted every 10us *)
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Shinjuku)) in
  let affinity = Some [ 0 ] in
  let long =
    M.spawn b.machine
      { (T.default_spec ~name:"long" (hog ~chunk:(Kernsim.Time.ms 10) ~steps:1)) with
        T.policy = b.policy; affinity }
  in
  let short_done = ref [] in
  for i = 1 to 5 do
    let beh =
      let st = ref `Go in
      fun (ctx : T.ctx) ->
        match !st with
        | `Go ->
          st := `End;
          T.Compute (Kernsim.Time.us 20)
        | `End ->
          short_done := ctx.T.now :: !short_done;
          T.Exit
    in
    ignore
      (M.spawn b.machine
         { (T.default_spec ~name:(Printf.sprintf "short%d" i) beh) with T.policy = b.policy; affinity })
  done;
  M.run_for b.machine (Kernsim.Time.ms 30);
  check Alcotest.int "all shorts finished" 5 (List.length !short_done);
  List.iter
    (fun t ->
      if t > Kernsim.Time.ms 2 then
        Alcotest.failf "short task finished too late (%s): not preempting" (Kernsim.Time.to_string t))
    !short_done;
  check Alcotest.bool "long eventually finishes" true (state_of b long = T.Dead || runtime_of b long > 0)

let test_shinjuku_fcfs_order () =
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Shinjuku)) in
  let affinity = Some [ 0 ] in
  let order = ref [] in
  for i = 1 to 4 do
    let beh =
      let st = ref `Go in
      fun (_ : T.ctx) ->
        match !st with
        | `Go ->
          order := i :: !order;
          st := `End;
          T.Compute (Kernsim.Time.us 5)
        | `End -> T.Exit
    in
    ignore
      (M.spawn b.machine
         { (T.default_spec ~name:(Printf.sprintf "t%d" i) beh) with T.policy = b.policy; affinity })
  done;
  M.run_for b.machine (Kernsim.Time.ms 5);
  check Alcotest.(list int) "first-come-first-served" [ 1; 2; 3; 4 ] (List.rev !order)

let test_shinjuku_with_slice_variant () =
  let (module S50) = Schedulers.Shinjuku.with_slice (Kernsim.Time.us 50) in
  let b = build (Workloads.Setup.Enoki_sched (module S50)) in
  let pid = spawn_hog b ~name:"x" ~work:(Kernsim.Time.ms 5) () in
  M.run_for b.machine (Kernsim.Time.ms 50);
  check Alcotest.bool "variant slice scheduler works" true (state_of b pid = T.Dead)

(* ---------- Locality ---------- *)

let test_locality_groups_colocated () =
  Schedulers.Hints.register_codecs ();
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Locality)) in
  let group_cpus : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* 4 groups x 3 tasks; each task hints its group then records its cpu *)
  for g = 0 to 3 do
    for i = 0 to 2 do
      let beh =
        let st = ref `Hint in
        fun (ctx : T.ctx) ->
          match !st with
          | `Hint ->
            st := `Sleep;
            T.Send_hint (Schedulers.Hints.Locality { pid = ctx.T.self; group = g })
          | `Sleep ->
            (* block so the next wakeup applies the group placement *)
            st := `Record;
            T.Sleep (Kernsim.Time.ms 1)
          | `Record ->
            Hashtbl.replace group_cpus ((g * 10) + i) ctx.T.cpu;
            T.Exit
      in
      ignore
        (M.spawn b.machine
           { (T.default_spec ~name:(Printf.sprintf "g%d-%d" g i) beh) with T.policy = b.policy })
    done
  done;
  M.run_for b.machine (Kernsim.Time.ms 50);
  (* within each group all cpus equal; distinct groups on distinct cpus *)
  let cpu_of g i = Hashtbl.find group_cpus ((g * 10) + i) in
  let group_cpu = Array.init 4 (fun g -> cpu_of g 0) in
  for g = 0 to 3 do
    for i = 1 to 2 do
      check Alcotest.int (Printf.sprintf "group %d task %d colocated" g i) group_cpu.(g) (cpu_of g i)
    done
  done;
  let distinct = List.sort_uniq Int.compare (Array.to_list group_cpu) in
  check Alcotest.int "groups spread over distinct cpus" 4 (List.length distinct)

let test_locality_ignores_hint_when_overloaded () =
  let ctx = Enoki.Ctx.inert ~nr_cpus:2 () in
  let l = Schedulers.Locality.create ctx in
  (* no hints: placement must still answer within the allowed set *)
  let cpu = Schedulers.Locality.select_task_rq l ~pid:1 ~waker_cpu:0 ~allowed:[ 1 ] in
  check Alcotest.int "respects allowed" 1 cpu

(* ---------- Arachne ---------- *)

let test_arachne_grants_and_reclaims () =
  Schedulers.Hints.register_codecs ();
  let b = build (Workloads.Setup.Enoki_sched (module Schedulers.Arachne)) in
  let m = b.machine in
  let grants = ref [] and reclaims = ref [] in
  (* activations: spin until reclaimed *)
  let park = Array.init 3 (fun _ -> M.new_chan m) in
  let parked = Array.make 3 false in
  for slot = 0 to 2 do
    let beh (_ : T.ctx) =
      if parked.(slot) then begin
        parked.(slot) <- false;
        T.Block park.(slot)
      end
      else T.Compute (Kernsim.Time.us 50)
    in
    ignore
      (M.spawn m
         { (T.default_spec ~name:(Printf.sprintf "act%d" slot) beh) with T.policy = b.policy })
  done;
  (* runtime: ask for 2 cores, then shrink to 1 *)
  let runtime =
    let st = ref `Ask2 in
    fun (ctx : T.ctx) ->
      List.iter
        (fun h ->
          match h with
          | Schedulers.Hints.Core_grant { slot; cpu } -> grants := (slot, cpu) :: !grants
          | Schedulers.Hints.Core_reclaim { slot } ->
            reclaims := slot :: !reclaims;
            if slot < 3 then parked.(slot) <- true
          | _ -> ())
        ctx.T.inbox;
      match !st with
      | `Ask2 ->
        st := `Wait1;
        T.Send_hint (Schedulers.Hints.Core_request { pid = ctx.T.self; cores = 2 })
      | `Wait1 ->
        st := `Ask1;
        T.Sleep (Kernsim.Time.ms 5)
      | `Ask1 ->
        st := `Wait2;
        T.Send_hint (Schedulers.Hints.Core_request { pid = ctx.T.self; cores = 1 })
      | `Wait2 ->
        st := `Check;
        T.Sleep (Kernsim.Time.ms 5)
      | `Check -> T.Exit
  in
  ignore
    (M.spawn m
       { (T.default_spec ~name:"runtime" runtime) with
         T.policy = b.cfs_policy;
         affinity = Some [ 0 ];
       });
  M.run_for m (Kernsim.Time.ms 30);
  check Alcotest.bool "cores were granted" true (List.length !grants >= 2);
  check Alcotest.bool "a core was reclaimed" true (List.length !reclaims >= 1);
  (* granted cpus are managed cores (not cpu 0) *)
  List.iter (fun (_, cpu) -> check Alcotest.bool "managed core" true (cpu >= 1)) !grants

(* ---------- ghOSt ---------- *)

let test_ghost_policies_run_tasks () =
  List.iter
    (fun policy ->
      let b = build (Workloads.Setup.Ghost policy) in
      let pids =
        List.init 4 (fun i -> spawn_hog b ~name:(Printf.sprintf "g%d" i) ~work:(Kernsim.Time.ms 5) ())
      in
      M.run_for b.machine (Kernsim.Time.ms 200);
      List.iter
        (fun pid -> check Alcotest.bool "ghost task completed" true (state_of b pid = T.Dead))
        pids)
    [ Schedulers.Ghost_sim.Fifo_per_cpu; Schedulers.Ghost_sim.Sol; Schedulers.Ghost_sim.Gshinjuku ]

let test_ghost_agent_core_reserved () =
  check Alcotest.(option int) "sol agent on last cpu" (Some 7)
    (Schedulers.Ghost_sim.agent_cpu Schedulers.Ghost_sim.Sol ~nr_cpus:8);
  check Alcotest.(option int) "per-cpu fifo has no dedicated core" None
    (Schedulers.Ghost_sim.agent_cpu Schedulers.Ghost_sim.Fifo_per_cpu ~nr_cpus:8)

let test_ghost_slower_than_cfs_on_pipe () =
  let cfs = Workloads.Pipe_bench.run (build Workloads.Setup.Cfs) ~messages:5000 () in
  let sol =
    Workloads.Pipe_bench.run (build (Workloads.Setup.Ghost Schedulers.Ghost_sim.Sol)) ~messages:5000 ()
  in
  check Alcotest.bool "ghost adds latency" true (sol.us_per_wakeup > cfs.us_per_wakeup)

(* ---------- CFS consistency under stress ---------- *)

let test_cfs_consistent_under_stress () =
  (* mixed priorities, affinities, blocking and migration with the internal
     consistency checker enabled: any divergence raises *)
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Kernsim.Cfs.factory ~debug_checks:true () ]
      ()
  in
  let rng = Stats.Prng.create ~seed:99 in
  let ch = M.new_chan machine in
  for i = 0 to 19 do
    let beh =
      let steps = ref (10 + Stats.Prng.int rng 20) in
      fun (_ : T.ctx) ->
        if !steps = 0 then T.Exit
        else begin
          decr steps;
          match Stats.Prng.int rng 4 with
          | 0 -> T.Compute (Stats.Prng.int rng 500_000 + 1)
          | 1 -> T.Sleep (Stats.Prng.int rng 200_000 + 1)
          | 2 -> T.Wake ch
          | _ -> if Stats.Prng.bool rng then T.Block ch else T.Yield
        end
    in
    let affinity = if i mod 3 = 0 then Some [ i mod 8 ] else None in
    ignore
      (M.spawn machine
         { (T.default_spec ~name:(Printf.sprintf "s%d" i) beh) with
           T.nice = Stats.Prng.int rng 40 - 20;
           affinity;
         })
  done;
  (* release any stragglers then let everything finish *)
  M.run_for machine (Kernsim.Time.ms 200);
  check Alcotest.bool "no consistency failure" true true

let prop_cfs_random_workloads_consistent seed =
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Kernsim.Cfs.factory ~debug_checks:true () ]
      ()
  in
  let rng = Stats.Prng.create ~seed in
  let ch = M.new_chan machine in
  for i = 0 to 9 do
    let beh =
      let steps = ref (5 + Stats.Prng.int rng 10) in
      fun (_ : T.ctx) ->
        if !steps = 0 then T.Exit
        else begin
          decr steps;
          match Stats.Prng.int rng 5 with
          | 0 -> T.Compute (Stats.Prng.int rng 2_000_000 + 1)
          | 1 -> T.Sleep (Stats.Prng.int rng 500_000 + 1)
          | 2 -> T.Wake ch
          | 3 -> T.Block ch
          | _ -> T.Yield
        end
    in
    ignore
      (M.spawn machine
         { (T.default_spec ~name:(Printf.sprintf "p%d" i) beh) with
           T.nice = Stats.Prng.int rng 40 - 20 })
  done;
  M.run_for machine (Kernsim.Time.ms 100);
  true

let qtest ?(count = 30) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let () =
  Alcotest.run "schedulers"
    [
      ( "wfq",
        [
          Alcotest.test_case "fair two hogs" `Quick test_wfq_fair_two_hogs;
          Alcotest.test_case "weighted" `Quick test_wfq_weighted;
          Alcotest.test_case "steals when idle" `Quick test_wfq_steals_when_idle;
          Alcotest.test_case "work conserving" `Quick test_wfq_work_conserving;
          Alcotest.test_case "introspection" `Quick test_wfq_vruntime_visible;
        ] );
      ( "shinjuku",
        [
          Alcotest.test_case "preempts long tasks" `Quick test_shinjuku_preempts_long_tasks;
          Alcotest.test_case "fcfs order" `Quick test_shinjuku_fcfs_order;
          Alcotest.test_case "slice variant" `Quick test_shinjuku_with_slice_variant;
        ] );
      ( "locality",
        [
          Alcotest.test_case "groups colocated" `Quick test_locality_groups_colocated;
          Alcotest.test_case "respects allowed" `Quick test_locality_ignores_hint_when_overloaded;
        ] );
      ( "arachne",
        [ Alcotest.test_case "grants and reclaims" `Quick test_arachne_grants_and_reclaims ] );
      ( "ghost",
        [
          Alcotest.test_case "policies run tasks" `Quick test_ghost_policies_run_tasks;
          Alcotest.test_case "agent core" `Quick test_ghost_agent_core_reserved;
          Alcotest.test_case "slower than cfs on pipe" `Quick test_ghost_slower_than_cfs_on_pipe;
        ] );
      ( "cfs-stress",
        [
          Alcotest.test_case "consistent under stress" `Quick test_cfs_consistent_under_stress;
          qtest "random workloads keep invariants" QCheck.(int_bound 10_000)
            prop_cfs_random_workloads_consistent;
        ] );
    ]
