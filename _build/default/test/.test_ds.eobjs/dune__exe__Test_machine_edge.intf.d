test/test_machine_edge.mli:
