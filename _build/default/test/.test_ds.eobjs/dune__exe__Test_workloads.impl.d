test/test_workloads.ml: Alcotest Float Kernsim List Schedulers Stats Workloads
