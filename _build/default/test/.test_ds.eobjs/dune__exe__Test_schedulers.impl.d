test/test_schedulers.ml: Alcotest Array Enoki Float Hashtbl Int Kernsim List Option Printf QCheck QCheck_alcotest Schedulers Stats Workloads
