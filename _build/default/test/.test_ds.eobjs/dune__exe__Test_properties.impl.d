test/test_properties.ml: Alcotest Enoki Kernsim List Option Printf QCheck QCheck_alcotest Schedulers Stats Workloads
