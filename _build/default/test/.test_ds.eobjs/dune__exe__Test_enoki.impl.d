test/test_enoki.ml: Alcotest Enoki Filename Hashtbl Kernsim List Mutex Option Printf Schedulers String Sys Thread Workloads
