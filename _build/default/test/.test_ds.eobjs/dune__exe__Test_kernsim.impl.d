test/test_kernsim.ml: Alcotest Int Kernsim List Option Printf Stats
