test/test_machine_edge.ml: Alcotest Enoki Fun Kernsim List Option Printf Schedulers Stats Workloads
