test/test_ds.ml: Alcotest Array Ds Float Fun Int List Map Printf QCheck QCheck_alcotest Stats String
