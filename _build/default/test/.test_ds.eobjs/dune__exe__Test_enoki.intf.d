test/test_enoki.mli:
