test/test_kernsim.mli:
