test/test_extensions.ml: Alcotest Enoki Fun Kernsim List Option Printf Schedulers Workloads
