module Sched = Enoki.Schedulable

let default_relative_deadline = Kernsim.Time.ms 10

module Key = struct
  type t = int * int (* absolute deadline, pid *)

  let compare (d1, p1) (d2, p2) =
    match Int.compare d1 d2 with 0 -> Int.compare p1 p2 | c -> c
end

module Tree = Ds.Rbtree.Make (Key)

type ent = { mutable relative : int; mutable abs_deadline : int }

type t = {
  ctx : Enoki.Ctx.t;
  mutable queue : Sched.t Tree.t; (* global EDF order of waiting tasks *)
  ents : (int, ent) Hashtbl.t;
  running : (int * int) option array; (* per-cpu (pid, abs_deadline) *)
  mutable misses : int;
  lock : Enoki.Lock.t;
}

let name = "edf"

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    queue = Tree.empty;
    ents = Hashtbl.create 64;
    running = Array.make ctx.nr_cpus None;
    misses = 0;
    lock = Enoki.Lock.create ~name:"edf" ();
  }

let get_policy t = t.ctx.policy

let ent_of t pid =
  match Hashtbl.find_opt t.ents pid with
  | Some e -> e
  | None ->
    let e = { relative = default_relative_deadline; abs_deadline = max_int } in
    Hashtbl.replace t.ents pid e;
    e

let enqueue t ~pid sched ~fresh_deadline =
  let e = ent_of t pid in
  if fresh_deadline then e.abs_deadline <- t.ctx.now () + e.relative;
  t.queue <- Tree.add (e.abs_deadline, pid) sched t.queue

let remove t pid =
  match Hashtbl.find_opt t.ents pid with
  | None -> None
  | Some e -> (
    match Tree.find_opt (e.abs_deadline, pid) t.queue with
    | Some sched ->
      t.queue <- Tree.remove (e.abs_deadline, pid) t.queue;
      Some sched
    | None -> None)

let task_new t ~pid ~runtime:_ ~prio:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid sched ~fresh_deadline:true)

(* each wakeup opens a new deadline window *)
let task_wakeup t ~pid ~runtime:_ ~waker_cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid sched ~fresh_deadline:true)

let task_blocked t ~pid ~runtime:_ ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      (match t.running.(cpu) with Some (p, _) when p = pid -> t.running.(cpu) <- None | _ -> ());
      ignore (remove t pid))

(* preemption keeps the current window: the task goes back in EDF order *)
let requeue t ~pid ~cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      (match t.running.(cpu) with Some (p, _) when p = pid -> t.running.(cpu) <- None | _ -> ());
      ignore (remove t pid);
      enqueue t ~pid sched ~fresh_deadline:false)

let task_preempt t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_yield t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      Array.iteri
        (fun cpu r -> match r with Some (p, _) when p = pid -> t.running.(cpu) <- None | _ -> ())
        t.running;
      ignore (remove t pid);
      Hashtbl.remove t.ents pid)

let task_departed t ~pid ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      (match t.running.(cpu) with Some (p, _) when p = pid -> t.running.(cpu) <- None | _ -> ());
      let tok = remove t pid in
      Hashtbl.remove t.ents pid;
      tok)

let select_task_rq t ~pid:_ ~waker_cpu ~allowed =
  Enoki.Lock.with_lock t.lock (fun () ->
      match List.find_opt (fun c -> t.running.(c) = None) allowed with
      | Some c -> c
      | None -> ( match allowed with c :: _ -> c | [] -> waker_cpu))

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      (* earliest-deadline waiting task that already sits on this rq *)
      let found = ref None in
      (try
         Tree.iter
           (fun (dl, pid) sched ->
             if !found = None && Sched.cpu sched = cpu then begin
               found := Some (dl, pid, sched);
               raise Exit
             end)
           t.queue
       with Exit -> ());
      match !found with
      | Some (dl, pid, sched) ->
        t.queue <- Tree.remove (dl, pid) t.queue;
        t.running.(cpu) <- Some (pid, dl);
        if dl < t.ctx.now () then t.misses <- t.misses + 1;
        Some sched
      | None ->
        t.running.(cpu) <- Option.map (fun c -> (Sched.pid c, max_int)) curr;
        curr)

let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
  match sched with
  | Some tok ->
    Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid tok ~fresh_deadline:false)
  | None -> ()

(* the global head migrates to any cpu running a later deadline or idling
   behind a busy rq, as Shinjuku's balance does for FCFS order *)
let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) <> None then None
      else
        match Tree.min_binding_opt t.queue with
        | Some ((_, pid), sched) when Sched.cpu sched <> cpu -> (
          match t.running.(Sched.cpu sched) with Some _ -> Some pid | None -> None)
        | Some _ | None -> None)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let old = remove t pid in
      enqueue t ~pid sched ~fresh_deadline:false;
      old)

(* preempt whenever a waiting task's deadline beats the running one's *)
let task_tick t ~cpu ~queued =
  Enoki.Lock.with_lock t.lock (fun () ->
      if queued then
        match (t.running.(cpu), Tree.min_binding_opt t.queue) with
        | Some (_, running_dl), Some ((waiting_dl, _), _) when waiting_dl < running_dl ->
          t.ctx.resched ~cpu
        | _ -> ())

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed _ ~pid:_ ~prio:_ = ()

let parse_hint t ~pid:_ ~hint =
  match hint with
  | Hints.Deadline { pid; relative } ->
    Enoki.Lock.with_lock t.lock (fun () -> (ent_of t pid).relative <- max 1 relative)
  | _ -> ()

type Enoki.Upgrade.transfer +=
  | Edf_state of {
      queue : Sched.t Tree.t;
      ents : (int, ent) Hashtbl.t;
      running : (int * int) option array;
    }

let reregister_prepare t = Some (Edf_state { queue = t.queue; ents = t.ents; running = t.running })

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Edf_state { queue; ents; running }) ->
    { ctx; queue; ents; running; misses = 0; lock = Enoki.Lock.create ~name:"edf" () }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "edf: unrecognised transfer state")

let deadline_misses t = t.misses

let relative_deadline_of t ~pid =
  match Hashtbl.find_opt t.ents pid with
  | Some e when e.relative <> default_relative_deadline -> Some e.relative
  | Some _ | None -> None
