(** The locality-aware scheduler (§4.2.3).

    Co-locates tasks that communicate heavily: the application sends a
    {!Hints.Locality} hint naming a task and a locality value, and every
    task sharing that value is placed on the same core.  Unlike pinning
    with cpusets, the hint names only the {e co-location}, not the core —
    the scheduler picks the core, spreads distinct groups across cores, and
    ignores the hint when a core already has too many tasks.  Tasks without
    hints get random placement, which is the paper's no-hints baseline in
    Table 6. *)

include Enoki.Sched_trait.S

(** Core currently hosting a locality group, if assigned. *)
val cpu_of_group : t -> group:int -> int option

(** Number of hints applied so far. *)
val hints_seen : t -> int
