module Sched = Enoki.Schedulable

type t = {
  ctx : Enoki.Ctx.t;
  queues : (int * Sched.t) Ds.Deque.t array; (* per-cpu FCFS of (pid, token) *)
  running : int option array; (* pid running per cpu, by our own picks *)
  lock : Enoki.Lock.t;
}

let name = "fifo"

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    queues = Array.init ctx.nr_cpus (fun _ -> Ds.Deque.create ());
    running = Array.make ctx.nr_cpus None;
    lock = Enoki.Lock.create ~name:"fifo-rq" ();
  }

let get_policy t = t.ctx.policy

let remove_everywhere t pid =
  let found = ref None in
  Array.iter
    (fun q ->
      match Ds.Deque.remove_first q ~f:(fun (p, _) -> p = pid) with
      | Some (_, tok) -> found := Some tok
      | None -> ())
    t.queues;
  !found

let shortest_queue t ~allowed =
  let best = ref (match allowed with c :: _ -> c | [] -> 0) and best_len = ref max_int in
  List.iter
    (fun cpu ->
      if cpu >= 0 && cpu < Array.length t.queues then begin
        let len = Ds.Deque.length t.queues.(cpu) + if t.running.(cpu) = None then 0 else 1 in
        if len < !best_len then begin
          best := cpu;
          best_len := len
        end
      end)
    allowed;
  !best

let select_task_rq t ~pid:_ ~waker_cpu:_ ~allowed =
  Enoki.Lock.with_lock t.lock (fun () -> shortest_queue t ~allowed)

let enqueue t ~cpu ~pid sched =
  Enoki.Lock.with_lock t.lock (fun () -> Ds.Deque.push_back t.queues.(cpu) (pid, sched))

let task_new t ~pid ~runtime:_ ~prio:_ ~sched = enqueue t ~cpu:(Sched.cpu sched) ~pid sched

let task_wakeup t ~pid ~runtime:_ ~waker_cpu:_ ~sched = enqueue t ~cpu:(Sched.cpu sched) ~pid sched

let task_preempt t ~pid ~runtime:_ ~cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      Ds.Deque.push_back t.queues.(cpu) (pid, sched))

let task_yield = task_preempt

let task_blocked t ~pid ~runtime:_ ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (remove_everywhere t pid))

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      Array.iteri (fun cpu r -> if r = Some pid then t.running.(cpu) <- None) t.running;
      ignore (remove_everywhere t pid))

let task_departed t ~pid ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      remove_everywhere t pid)

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Ds.Deque.pop_front t.queues.(cpu) with
      | Some (pid, sched) ->
        t.running.(cpu) <- Some pid;
        (* if the kernel handed us a still-runnable current task, requeue it *)
        (match curr with
        | Some c when Sched.pid c <> pid -> Ds.Deque.push_back t.queues.(cpu) (Sched.pid c, c)
        | Some _ | None -> ());
        Some sched
      | None ->
        t.running.(cpu) <- None;
        curr)

let pnt_err t ~cpu ~pid ~err:_ ~sched =
  (* ownership of the rejected token returns to us: requeue so the task is
     not lost *)
  match sched with
  | Some tok -> enqueue t ~cpu ~pid tok
  | None -> ()

let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if Ds.Deque.is_empty t.queues.(cpu) && t.running.(cpu) = None then begin
        (* steal the oldest task from the longest queue *)
        let longest = ref None in
        Array.iteri
          (fun other q ->
            if other <> cpu then
              (* only steal from a core that cannot drain itself promptly *)
              let len =
                if t.running.(other) <> None then Ds.Deque.length q
                else if Ds.Deque.length q >= 2 then Ds.Deque.length q
                else 0
              in
              match !longest with
              | Some (_, blen) when blen >= len -> ()
              | _ -> if len > 0 then longest := Some (other, len))
          t.queues;
        match !longest with
        | Some (other, _) -> (
          match Ds.Deque.peek_front t.queues.(other) with
          | Some (pid, _) -> Some pid
          | None -> None)
        | None -> None
      end
      else None)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let old = remove_everywhere t pid in
      Ds.Deque.push_back t.queues.(Sched.cpu sched) (pid, sched);
      old)

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed _ ~pid:_ ~prio:_ = ()

let task_tick _ ~cpu:_ ~queued:_ = ()

let parse_hint _ ~pid:_ ~hint:_ = ()

(* live upgrade: export the queues verbatim *)
type Enoki.Upgrade.transfer += Fifo_state of (int * Sched.t) Ds.Deque.t array * int option array

let reregister_prepare t = Some (Fifo_state (t.queues, t.running))

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Fifo_state (queues, running)) ->
    { ctx; queues; running; lock = Enoki.Lock.create ~name:"fifo-rq" () }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "fifo: unrecognised transfer state")

let queue_length t ~cpu = Ds.Deque.length t.queues.(cpu)
