module Sched = Enoki.Schedulable

(* a core with this many runnable tasks stops attracting its group *)
let overload_threshold = 16

type t = {
  ctx : Enoki.Ctx.t;
  queues : (int * Sched.t) Ds.Deque.t array;
  running : int option array;
  pid_group : (int, int) Hashtbl.t;
  pid_cpu : (int, int) Hashtbl.t; (* last placement, for stability *)
  group_cpu : (int, int) Hashtbl.t;
  mutable next_group_cpu : int;
  mutable hints_seen : int;
  rng : Stats.Prng.t;
  lock : Enoki.Lock.t;
}

let name = "locality"

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    queues = Array.init ctx.nr_cpus (fun _ -> Ds.Deque.create ());
    running = Array.make ctx.nr_cpus None;
    pid_group = Hashtbl.create 64;
    pid_cpu = Hashtbl.create 64;
    group_cpu = Hashtbl.create 16;
    next_group_cpu = 0;
    hints_seen = 0;
    rng = Stats.Prng.create ~seed:0x10c;
    lock = Enoki.Lock.create ~name:"locality-rq" ();
  }

let get_policy t = t.ctx.policy

let load_of t cpu =
  Ds.Deque.length t.queues.(cpu) + if t.running.(cpu) = None then 0 else 1

(* random placement with two choices: random enough to be the Table 6
   no-hints baseline, loaded-core-avoiding enough for Table 3 *)
let random_place t ~allowed =
  match allowed with
  | [] -> 0
  | l ->
    let n = List.length l in
    let a = List.nth l (Stats.Prng.int t.rng n) and b = List.nth l (Stats.Prng.int t.rng n) in
    if load_of t a <= load_of t b then a else b

let place t ~pid ~allowed =
  let ok cpu = List.mem cpu allowed in
  match Hashtbl.find_opt t.pid_group pid with
  | Some group -> (
    match Hashtbl.find_opt t.group_cpu group with
    | Some cpu when ok cpu && load_of t cpu < overload_threshold -> cpu
    | Some _ | None -> random_place t ~allowed)
  | None -> (
    (* unhinted: stay where we last ran unless that core has work queued *)
    match Hashtbl.find_opt t.pid_cpu pid with
    | Some prev when ok prev && load_of t prev = 0 -> prev
    | Some _ | None -> random_place t ~allowed)

let note_placement t ~pid ~cpu = Hashtbl.replace t.pid_cpu pid cpu

let select_task_rq t ~pid ~waker_cpu:_ ~allowed =
  Enoki.Lock.with_lock t.lock (fun () -> place t ~pid ~allowed)

let enqueue t ~pid sched =
  note_placement t ~pid ~cpu:(Sched.cpu sched);
  Ds.Deque.push_back t.queues.(Sched.cpu sched) (pid, sched)

let task_new t ~pid ~runtime:_ ~prio:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid sched)

let task_wakeup t ~pid ~runtime:_ ~waker_cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid sched)

let drop_everywhere t pid =
  let found = ref None in
  Array.iter
    (fun q ->
      match Ds.Deque.remove_first q ~f:(fun (p, _) -> p = pid) with
      | Some (_, tok) -> found := Some tok
      | None -> ())
    t.queues;
  !found

let task_blocked t ~pid ~runtime:_ ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (drop_everywhere t pid))

let requeue t ~pid ~cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (drop_everywhere t pid);
      enqueue t ~pid sched)

let task_preempt t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_yield t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      Array.iteri (fun cpu r -> if r = Some pid then t.running.(cpu) <- None) t.running;
      ignore (drop_everywhere t pid);
      Hashtbl.remove t.pid_group pid;
      Hashtbl.remove t.pid_cpu pid)

let task_departed t ~pid ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      Hashtbl.remove t.pid_group pid;
      drop_everywhere t pid)

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Ds.Deque.pop_front t.queues.(cpu) with
      | Some (pid, sched) ->
        t.running.(cpu) <- Some pid;
        (match curr with
        | Some c when Sched.pid c <> pid -> enqueue t ~pid:(Sched.pid c) c
        | Some _ | None -> ());
        Some sched
      | None ->
        t.running.(cpu) <- Option.map Sched.pid curr;
        curr)

let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
  match sched with
  | Some tok -> Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid tok)
  | None -> ()

let balance _ ~cpu:_ = None

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let old = drop_everywhere t pid in
      enqueue t ~pid sched;
      old)

(* round-robin slice so co-located groups share their core fairly *)
let task_tick t ~cpu ~queued =
  Enoki.Lock.with_lock t.lock (fun () ->
      if queued && Ds.Deque.length t.queues.(cpu) > 0 then t.ctx.resched ~cpu)

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed _ ~pid:_ ~prio:_ = ()

let select_group_cpu t =
  (* spread groups across distinct cores *)
  let cpu = t.next_group_cpu in
  t.next_group_cpu <- (t.next_group_cpu + 1) mod Array.length t.queues;
  cpu

let parse_hint t ~pid:_ ~hint =
  match hint with
  | Hints.Locality { pid; group } ->
    Enoki.Lock.with_lock t.lock (fun () ->
        t.hints_seen <- t.hints_seen + 1;
        Hashtbl.replace t.pid_group pid group;
        if not (Hashtbl.mem t.group_cpu group) then
          Hashtbl.replace t.group_cpu group (select_group_cpu t))
  | _ -> ()

type Enoki.Upgrade.transfer +=
  | Locality_state of {
      queues : (int * Sched.t) Ds.Deque.t array;
      running : int option array;
      pid_group : (int, int) Hashtbl.t;
      group_cpu : (int, int) Hashtbl.t;
    }

let reregister_prepare t =
  Some
    (Locality_state
       { queues = t.queues; running = t.running; pid_group = t.pid_group; group_cpu = t.group_cpu })

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Locality_state { queues; running; pid_group; group_cpu }) ->
    {
      ctx;
      queues;
      running;
      pid_group;
      pid_cpu = Hashtbl.create 64;
      group_cpu;
      next_group_cpu = Hashtbl.length group_cpu mod max 1 ctx.nr_cpus;
      hints_seen = 0;
      rng = Stats.Prng.create ~seed:0x10c;
      lock = Enoki.Lock.create ~name:"locality-rq" ();
    }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "locality: unrecognised transfer state")

let cpu_of_group t ~group = Hashtbl.find_opt t.group_cpu group

let hints_seen t = t.hints_seen
