module Sched = Enoki.Schedulable

module Key = struct
  type t = int * int (* priority, arrival sequence *)

  let compare (p1, s1) (p2, s2) =
    match Int.compare p1 p2 with 0 -> Int.compare s1 s2 | c -> c
end

module Tree = Ds.Rbtree.Make (Key)

type ent = { mutable prio : int; mutable key : (int * int) option (* present in tree *) }

type t = {
  ctx : Enoki.Ctx.t;
  queues : (int * Sched.t) Tree.t array; (* per-cpu queues of (pid, token) *)
  running : (int * int) option array; (* per-cpu (pid, prio) *)
  ents : (int, ent) Hashtbl.t;
  mutable seq : int;
  lock : Enoki.Lock.t;
}

let name = "rt-fifo"

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    queues = Array.make ctx.nr_cpus Tree.empty;
    running = Array.make ctx.nr_cpus None;
    ents = Hashtbl.create 64;
    seq = 0;
    lock = Enoki.Lock.create ~name:"rt" ();
  }

let get_policy t = t.ctx.policy

let ent_of t pid ~prio =
  match Hashtbl.find_opt t.ents pid with
  | Some e -> e
  | None ->
    let e = { prio; key = None } in
    Hashtbl.replace t.ents pid e;
    e

let enqueue t ~cpu ~pid sched =
  let e = ent_of t pid ~prio:0 in
  t.seq <- t.seq + 1;
  let key = (e.prio, t.seq) in
  e.key <- Some key;
  t.queues.(cpu) <- Tree.add key (pid, sched) t.queues.(cpu);
  (* strict preemption: an urgent arrival kicks a less urgent runner *)
  match t.running.(cpu) with
  | Some (_, running_prio) when e.prio < running_prio -> t.ctx.resched ~cpu
  | Some _ | None -> ()

let remove t pid =
  match Hashtbl.find_opt t.ents pid with
  | Some ({ key = Some key; _ } as e) ->
    let found = ref None in
    Array.iteri
      (fun cpu q ->
        match Tree.find_opt key q with
        | Some (p, sched) when p = pid ->
          t.queues.(cpu) <- Tree.remove key q;
          found := Some sched
        | Some _ | None -> ())
      t.queues;
    e.key <- None;
    !found
  | Some _ | None -> None

let task_new t ~pid ~runtime:_ ~prio ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      (ent_of t pid ~prio).prio <- prio;
      enqueue t ~cpu:(Sched.cpu sched) ~pid sched)

let task_wakeup t ~pid ~runtime:_ ~waker_cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~cpu:(Sched.cpu sched) ~pid sched)

let clear_running t pid =
  Array.iteri
    (fun cpu r -> match r with Some (p, _) when p = pid -> t.running.(cpu) <- None | _ -> ())
    t.running

let task_blocked t ~pid ~runtime:_ ~cpu:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      clear_running t pid;
      ignore (remove t pid))

let requeue t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      clear_running t pid;
      ignore (remove t pid);
      enqueue t ~cpu:(Sched.cpu sched) ~pid sched)

let task_preempt t ~pid ~runtime:_ ~cpu:_ ~sched = requeue t ~pid ~sched

let task_yield t ~pid ~runtime:_ ~cpu:_ ~sched = requeue t ~pid ~sched

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      clear_running t pid;
      ignore (remove t pid);
      Hashtbl.remove t.ents pid)

let task_departed t ~pid ~cpu:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      clear_running t pid;
      let tok = remove t pid in
      Hashtbl.remove t.ents pid;
      tok)

let select_task_rq t ~pid:_ ~waker_cpu ~allowed =
  Enoki.Lock.with_lock t.lock (fun () ->
      (* lowest-priority-pressure cpu: idle first, else the one whose
         runner is least urgent *)
      match List.find_opt (fun c -> t.running.(c) = None) allowed with
      | Some c -> c
      | None -> (
        let score c = match t.running.(c) with Some (_, p) -> p | None -> max_int in
        match allowed with
        | [] -> waker_cpu
        | c0 :: _ -> List.fold_left (fun a c -> if score c > score a then c else a) c0 allowed))

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Tree.min_binding_opt t.queues.(cpu) with
      | Some (((prio, _) as key), (pid, sched)) ->
        t.queues.(cpu) <- Tree.remove key t.queues.(cpu);
        (match Hashtbl.find_opt t.ents pid with Some e -> e.key <- None | None -> ());
        t.running.(cpu) <- Some (pid, prio);
        Some sched
      | None ->
        t.running.(cpu) <- Option.map (fun c -> (Sched.pid c, 0)) curr;
        curr)

let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
  match sched with
  | Some tok ->
    Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~cpu:(Sched.cpu tok) ~pid tok)
  | None -> ()

let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) <> None || not (Tree.is_empty t.queues.(cpu)) then None
      else begin
        (* pull the most urgent waiter stuck behind a busy cpu *)
        let best = ref None in
        Array.iteri
          (fun other q ->
            if other <> cpu && t.running.(other) <> None then
              match Tree.min_binding_opt q with
              | Some ((prio, _), (pid, _)) -> (
                match !best with
                | Some (bp, _) when bp <= prio -> ()
                | _ -> best := Some (prio, pid))
              | None -> ())
          t.queues;
        Option.map snd !best
      end)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let old = remove t pid in
      enqueue t ~cpu:(Sched.cpu sched) ~pid sched;
      old)

(* no time slicing: the tick only matters if a more urgent task waits *)
let task_tick t ~cpu ~queued =
  Enoki.Lock.with_lock t.lock (fun () ->
      if queued then
        match (t.running.(cpu), Tree.min_binding_opt t.queues.(cpu)) with
        | Some (_, running_prio), Some ((waiting_prio, _), _) when waiting_prio < running_prio ->
          t.ctx.resched ~cpu
        | _ -> ())

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed t ~pid ~prio =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.ents pid with
      | Some e -> (
        match e.key with
        | Some _ -> (
          (* re-queue under the new priority *)
          match remove t pid with
          | Some sched ->
            e.prio <- prio;
            enqueue t ~cpu:(Sched.cpu sched) ~pid sched
          | None -> e.prio <- prio)
        | None -> e.prio <- prio)
      | None -> ())

let parse_hint _ ~pid:_ ~hint:_ = ()

type Enoki.Upgrade.transfer +=
  | Rt_state of {
      queues : (int * Sched.t) Tree.t array;
      running : (int * int) option array;
      ents : (int, ent) Hashtbl.t;
      seq : int;
    }

let reregister_prepare t =
  Some (Rt_state { queues = t.queues; running = t.running; ents = t.ents; seq = t.seq })

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Rt_state { queues; running; ents; seq }) ->
    { ctx; queues; running; ents; seq; lock = Enoki.Lock.create ~name:"rt" () }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "rt-fifo: unrecognised transfer state")

let queue_length t ~cpu = Tree.cardinal t.queues.(cpu)
