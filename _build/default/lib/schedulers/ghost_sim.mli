(** A model of the ghOSt userspace-scheduling framework, the paper's main
    baseline (§4.2.2, §7).

    GhOSt forwards scheduling events to a userspace agent and applies its
    decisions asynchronously: the kernel does not wait for the agent, so a
    core needing work may idle until the agent's decision lands.  This
    class reproduces ghOSt's two structural costs:

    - {e agent dispatch}: a cpu asking for work with no decision ready
      posts a request and idles; the decision arrives after the agent
      latency.  Per-CPU agents ([Fifo_per_cpu]) run on the target core and
      consume its cycles; global agents ([Sol], [Gshinjuku]) run on a
      dedicated core (the highest-numbered cpu) with a faster turnaround.
    - {e messaging}: every scheduler event pays a message-enqueue cost in
      kernel context.

    [Sol] is ghOSt's latency-optimised global FIFO; [Gshinjuku] is ghOSt's
    version of the Shinjuku policy (global FCFS + 10 us preemption).
    Policy logic itself is exact; only the userspace round-trips are
    modelled with calibrated costs ({!Kernsim.Costs}). *)

type policy = Fifo_per_cpu | Sol | Gshinjuku

(** The core the global agent occupies (none for per-CPU agents). *)
val agent_cpu : policy -> nr_cpus:int -> int option

val factory : policy -> Kernsim.Sched_class.factory
