(** The paper's §3.1 worked example: per-core first-come-first-serve
    queues.

    Tasks are assigned to the core with the shortest queue; each core runs
    its queue in arrival order; an idle core steals waiting work from the
    longest queue through [balance].  Small on purpose — this is the
    scheduler the quickstart example builds. *)

include Enoki.Sched_trait.S

(** Queue length on one cpu (tests observe placement through this). *)
val queue_length : t -> cpu:int -> int
