(** A Nest-style warm-core scheduler (extension).

    The paper's motivation (§2) cites Nest [Lawall et al., EuroSys '22]:
    for jobs with fewer tasks than cores, energy efficiency and even
    latency improve by reusing a small set of {e warm} cores instead of
    spreading tasks across many cold ones — a cold core pays a deep
    idle-state exit on every wakeup and ramps its frequency from scratch.

    This scheduler demonstrates that the policy fits naturally in Enoki's
    trait: it keeps a compact primary nest of cores, places wakeups onto
    nest cores while they have capacity, expands the nest only under
    sustained pressure, and lets unused cores fall out of the nest after
    an idle period.  The [ablation] bench compares it against CFS on a
    sparse periodic workload: similar latency, far fewer cores touched. *)

include Enoki.Sched_trait.S

(** Cores currently in the primary nest. *)
val nest_cpus : t -> int list

(** How long an unused core stays warm before leaving the nest. *)
val warmth_timeout : Kernsim.Time.ns
