module Sched = Enoki.Schedulable

(* core 0 is left to the rest of the system (background tasks, CFS) *)
let first_managed_cpu = 1

type activation = {
  slot : int;
  pid : int;
  mutable token : Sched.t option; (* held while the activation is runnable *)
  mutable cpu : int option; (* granted core *)
}

type t = {
  ctx : Enoki.Ctx.t;
  mutable activations : activation list; (* attach order = slot order *)
  assigned : int option array; (* cpu -> slot *)
  mutable runtime_pid : int option; (* destination for reverse-queue messages *)
  mutable desired : int;
  lock : Enoki.Lock.t;
}

let name = "arachne-arbiter"

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    activations = [];
    assigned = Array.make ctx.nr_cpus None;
    runtime_pid = None;
    desired = 0;
    lock = Enoki.Lock.create ~name:"arbiter" ();
  }

let get_policy t = t.ctx.policy

let find_act t pid = List.find_opt (fun a -> a.pid = pid) t.activations

let find_slot t slot = List.find_opt (fun a -> a.slot = slot) t.activations

let granted t = Array.fold_left (fun n a -> if a = None then n else n + 1) 0 t.assigned

let managed_cpus t =
  List.init (t.ctx.nr_cpus - first_managed_cpu) (fun i -> i + first_managed_cpu)

(* Reconcile grants with the runtime's latest request: grant free managed
   cores to parked activations, or reclaim surplus cores via the reverse
   queue.  The runtime reacts in userspace (waking / parking activations),
   exactly the split Arachne's two-level design prescribes. *)
let reconcile t =
  let want = min t.desired (t.ctx.nr_cpus - first_managed_cpu) in
  let have = granted t in
  if have < want then begin
    let free = List.filter (fun c -> t.assigned.(c) = None) (managed_cpus t) in
    let parked = List.filter (fun a -> a.cpu = None) t.activations in
    let rec grant cpus acts n =
      if n <= 0 then ()
      else
        match (cpus, acts) with
        | cpu :: cpus', act :: acts' ->
          t.assigned.(cpu) <- Some act.slot;
          act.cpu <- Some cpu;
          Option.iter
            (fun rpid -> t.ctx.send_user ~pid:rpid (Hints.Core_grant { slot = act.slot; cpu }))
            t.runtime_pid;
          t.ctx.resched ~cpu;
          grant cpus' acts' (n - 1)
        | _, _ -> ()
    in
    grant free parked (want - have)
  end
  else if have > want then begin
    (* reclaim the highest-numbered granted cores *)
    let surplus = have - want in
    let granted_cpus = List.rev (List.filter (fun c -> t.assigned.(c) <> None) (managed_cpus t)) in
    List.iteri
      (fun i cpu ->
        if i < surplus then
          match t.assigned.(cpu) with
          | Some slot ->
            Option.iter
              (fun rpid -> t.ctx.send_user ~pid:rpid (Hints.Core_reclaim { slot }))
              t.runtime_pid
          | None -> ())
      granted_cpus
  end

let task_new t ~pid ~runtime:_ ~prio:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let slot = List.length t.activations in
      t.activations <- t.activations @ [ { slot; pid; token = Some sched; cpu = None } ];
      reconcile t)

let task_wakeup t ~pid ~runtime:_ ~waker_cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      match find_act t pid with
      | Some act ->
        act.token <- Some sched;
        (match act.cpu with Some cpu -> t.ctx.resched ~cpu | None -> reconcile t)
      | None -> ())

let task_blocked t ~pid ~runtime:_ ~cpu:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match find_act t pid with
      | Some act ->
        act.token <- None;
        (* a parked activation frees its core for regranting *)
        (match act.cpu with
        | Some cpu ->
          t.assigned.(cpu) <- None;
          act.cpu <- None
        | None -> ());
        reconcile t
      | None -> ())

let task_preempt t ~pid ~runtime:_ ~cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      match find_act t pid with Some act -> act.token <- Some sched | None -> ())

let task_yield = task_preempt

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      (match find_act t pid with
      | Some act -> (
        match act.cpu with
        | Some cpu ->
          t.assigned.(cpu) <- None;
          act.cpu <- None
        | None -> ())
      | None -> ());
      t.activations <- List.filter (fun a -> a.pid <> pid) t.activations)

let task_departed t ~pid ~cpu:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match find_act t pid with
      | Some act ->
        let tok = act.token in
        act.token <- None;
        (match act.cpu with
        | Some cpu ->
          t.assigned.(cpu) <- None;
          act.cpu <- None
        | None -> ());
        t.activations <- List.filter (fun a -> a.pid <> pid) t.activations;
        tok
      | None -> None)

let select_task_rq t ~pid ~waker_cpu:_ ~allowed =
  Enoki.Lock.with_lock t.lock (fun () ->
      let fallback = match allowed with c :: _ -> c | [] -> first_managed_cpu in
      match find_act t pid with
      | Some { cpu = Some cpu; _ } when List.mem cpu allowed -> cpu
      | Some _ | None -> if List.mem first_managed_cpu allowed then first_managed_cpu else fallback)

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match t.assigned.(cpu) with
      | Some slot -> (
        match find_slot t slot with
        | Some act -> (
          match act.token with
          | Some tok when Sched.cpu tok = cpu ->
            act.token <- None;
            Some tok
          | Some _ | None -> curr)
        | None -> curr)
      | None -> curr)

let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      match find_act t pid with Some act -> act.token <- sched | None -> ())

(* an activation granted a core but sitting on another run-queue is pulled
   over by the kernel through balance *)
let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      match t.assigned.(cpu) with
      | Some slot -> (
        match find_slot t slot with
        | Some act -> (
          match act.token with
          | Some tok when Sched.cpu tok <> cpu -> Some act.pid
          | Some _ | None -> None)
        | None -> None)
      | None -> None)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      match find_act t pid with
      | Some act ->
        let old = act.token in
        act.token <- Some sched;
        old
      | None -> None)

let task_tick _ ~cpu:_ ~queued:_ = ()

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed _ ~pid:_ ~prio:_ = ()

let parse_hint t ~pid:_ ~hint =
  match hint with
  | Hints.Core_request { pid; cores } ->
    Enoki.Lock.with_lock t.lock (fun () ->
        t.runtime_pid <- Some pid;
        t.desired <- max 0 cores;
        reconcile t)
  | _ -> ()

type Enoki.Upgrade.transfer +=
  | Arbiter_state of {
      activations : activation list;
      assigned : int option array;
      runtime_pid : int option;
      desired : int;
    }

let reregister_prepare t =
  Some
    (Arbiter_state
       {
         activations = t.activations;
         assigned = t.assigned;
         runtime_pid = t.runtime_pid;
         desired = t.desired;
       })

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Arbiter_state { activations; assigned; runtime_pid; desired }) ->
    { ctx; activations; assigned; runtime_pid; desired; lock = Enoki.Lock.create ~name:"arbiter" () }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "arachne: unrecognised transfer state")

let granted_cores t = Enoki.Lock.with_lock t.lock (fun () -> granted t)

let slot_of_cpu t ~cpu = Enoki.Lock.with_lock t.lock (fun () -> t.assigned.(cpu))
