lib/schedulers/rt_fifo.ml: Array Ds Enoki Hashtbl Int List Option
