lib/schedulers/fifo_sched.mli: Enoki
