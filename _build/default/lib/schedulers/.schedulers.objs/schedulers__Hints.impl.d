lib/schedulers/hints.ml: Enoki Kernsim Printf String
