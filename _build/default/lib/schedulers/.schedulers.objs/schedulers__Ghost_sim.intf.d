lib/schedulers/ghost_sim.mli: Kernsim
