lib/schedulers/nest.mli: Enoki Kernsim
