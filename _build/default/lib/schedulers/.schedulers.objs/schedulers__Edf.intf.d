lib/schedulers/edf.mli: Enoki Kernsim
