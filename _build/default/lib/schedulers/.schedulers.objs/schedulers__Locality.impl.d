lib/schedulers/locality.ml: Array Ds Enoki Hashtbl Hints List Option Stats
