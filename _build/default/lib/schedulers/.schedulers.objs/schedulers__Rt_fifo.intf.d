lib/schedulers/rt_fifo.mli: Enoki
