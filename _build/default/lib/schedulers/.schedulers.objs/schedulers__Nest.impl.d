lib/schedulers/nest.ml: Array Ds Enoki Fun Int Kernsim List Option
