lib/schedulers/ghost_sim.ml: Array Ds Fun Hashtbl Kernsim List Shinjuku
