lib/schedulers/locality.mli: Enoki
