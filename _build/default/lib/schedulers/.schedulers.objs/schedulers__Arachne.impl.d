lib/schedulers/arachne.ml: Array Enoki Hints List Option
