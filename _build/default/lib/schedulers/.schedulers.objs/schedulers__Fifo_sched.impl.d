lib/schedulers/fifo_sched.ml: Array Ds Enoki List
