lib/schedulers/arachne.mli: Enoki
