lib/schedulers/shinjuku.ml: Array Ds Enoki Kernsim List Option Printf
