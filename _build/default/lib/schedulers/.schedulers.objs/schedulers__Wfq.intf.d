lib/schedulers/wfq.mli: Enoki
