lib/schedulers/shinjuku.mli: Enoki Kernsim
