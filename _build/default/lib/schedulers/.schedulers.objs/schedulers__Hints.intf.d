lib/schedulers/hints.mli: Kernsim
