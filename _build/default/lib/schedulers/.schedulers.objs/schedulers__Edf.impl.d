lib/schedulers/edf.ml: Array Ds Enoki Hashtbl Hints Int Kernsim List Option
