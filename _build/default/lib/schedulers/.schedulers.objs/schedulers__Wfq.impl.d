lib/schedulers/wfq.ml: Array Ds Enoki Hashtbl Int Kernsim List Option
