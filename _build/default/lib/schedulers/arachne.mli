(** The Enoki re-implementation of the Arachne core arbiter (§4.2.4).

    Arachne is a two-level scheduler: applications request cores and manage
    their own user-level threads on whatever cores they are granted.  The
    paper replaces the original userspace arbiter (cpusets + sockets +
    shared memory) with an Enoki kernel scheduler that uses the
    bidirectional hint queues: {!Hints.Core_request} flows user-to-kernel,
    {!Hints.Core_grant} / {!Hints.Core_reclaim} flow kernel-to-user.

    The arbiter manages a contiguous range of cores (leaving core 0 for
    background work, as the paper's memcached setup reserves a core).  Each
    granted core runs exactly one scheduler activation; unassigned
    activations are not picked, and reclaimed activations park themselves
    when the runtime relays the reclaim. *)

include Enoki.Sched_trait.S

(** Cores currently granted. *)
val granted_cores : t -> int

(** Activation slot running on a cpu, if any. *)
val slot_of_cpu : t -> cpu:int -> int option
