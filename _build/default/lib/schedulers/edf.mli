(** An earliest-deadline-first scheduler (extension).

    Linux ships a deadline scheduler as one of its three mainline classes
    (§2); this is its Enoki rendering, driven by userspace hints: a task
    declares its relative deadline with {!Hints.Deadline}, and on every
    wakeup it is queued with an absolute deadline of [now + relative].
    Tasks without a hint get {!default_relative_deadline}.

    Scheduling is a single global EDF queue with Shinjuku-style migration
    through [balance], plus tick-driven preemption when an earlier deadline
    is waiting.  Missed-deadline accounting is exposed for tests and the
    ablation bench. *)

include Enoki.Sched_trait.S

val default_relative_deadline : Kernsim.Time.ns

(** Completed dispatches whose deadline had already passed when the task
    got the cpu. *)
val deadline_misses : t -> int

(** The relative deadline currently registered for a task, if hinted. *)
val relative_deadline_of : t -> pid:int -> Kernsim.Time.ns option
