(** The Enoki weighted-fair-queuing scheduler (§4.2.1).

    Computes CFS-style vruntime for per-core time slices but uses a much
    simpler placement policy: a waking task goes back to its previous core
    unless that core has queued work; a core about to become idle steals
    waiting work from the core with the longest queue; there is no other
    rebalancing.  The paper's version is 646 lines of Rust against CFS's
    6247 of C and lands within 0.74% of CFS geomean across 36 application
    benchmarks — the property Table 5 checks.

    Slice preemption is tick-driven: a task is preempted once it has run
    for its weighted share of the latency period, or when a shorter-
    vruntime task is waiting (as the paper describes, preemption happens
    when a system timer ticks). *)

include Enoki.Sched_trait.S

(** Waiting tasks queued on one cpu (tests observe stealing through it). *)
val queue_length : t -> cpu:int -> int

(** Current vruntime of a task, if known. *)
val vruntime_of : t -> pid:int -> int option

(** Ablation variant with work stealing disabled: [balance] never pulls,
    so an idle core stays idle while another's queue is long.  Used by the
    bench harness to quantify what the paper's "steal from the core with
    the longest queue" buys. *)
val without_steal : (module Enoki.Sched_trait.S)
