module Sched = Enoki.Schedulable

module Key = struct
  type t = int * int (* vruntime, pid *)

  let compare (v1, p1) (v2, p2) =
    match Int.compare v1 v2 with 0 -> Int.compare p1 p2 | c -> c
end

module Tree = Ds.Rbtree.Make (Key)

let nice_0_load = 1024

let sched_latency = Kernsim.Time.us 6_000

let min_slice = Kernsim.Time.us 750

let wakeup_thresh = Kernsim.Time.us 3_000

type ent = {
  pid : int;
  mutable vruntime : int;
  mutable weight : int;
  mutable last_runtime : int; (* kernel-supplied runtime at last message *)
  mutable cpu : int;
}

type rq = {
  mutable tree : Sched.t Tree.t;
  mutable min_vruntime : int;
  mutable running : int option;
  mutable ticks_since_dispatch : int;
}

type t = { ctx : Enoki.Ctx.t; rqs : rq array; ents : (int, ent) Hashtbl.t; lock : Enoki.Lock.t }

let name = "wfq"

let make_rqs n =
  Array.init n (fun _ ->
      { tree = Tree.empty; min_vruntime = 0; running = None; ticks_since_dispatch = 0 })

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    rqs = make_rqs ctx.nr_cpus;
    ents = Hashtbl.create 64;
    lock = Enoki.Lock.create ~name:"wfq-rq" ();
  }

let get_policy t = t.ctx.policy

let ent_of t ~pid ~prio =
  match Hashtbl.find_opt t.ents pid with
  | Some e -> e
  | None ->
    let e =
      {
        pid;
        vruntime = 0;
        weight = Kernsim.Cfs.weight_of_nice prio;
        last_runtime = 0;
        cpu = 0;
      }
    in
    Hashtbl.replace t.ents pid e;
    e

let calc_delta delta weight = delta * nice_0_load / max 1 weight

(* fold kernel-reported runtime into vruntime *)
let advance_vruntime e ~runtime =
  let delta = runtime - e.last_runtime in
  if delta > 0 then begin
    e.last_runtime <- runtime;
    e.vruntime <- e.vruntime + calc_delta delta e.weight
  end

let update_min rq =
  match Tree.min_binding_opt rq.tree with
  | Some ((v, _), _) -> if v > rq.min_vruntime then rq.min_vruntime <- v
  | None -> ()

let insert t ~cpu e sched =
  let rq = t.rqs.(cpu) in
  e.cpu <- cpu;
  rq.tree <- Tree.add (e.vruntime, e.pid) sched rq.tree

let remove_from t e =
  let rq = t.rqs.(e.cpu) in
  match Tree.find_opt (e.vruntime, e.pid) rq.tree with
  | Some sched ->
    rq.tree <- Tree.remove (e.vruntime, e.pid) rq.tree;
    Some sched
  | None -> None

let nr_queued rq = Tree.cardinal rq.tree

let nr_running rq = nr_queued rq + if rq.running = None then 0 else 1

(* ---------- trait implementation ---------- *)

let task_new t ~pid ~runtime ~prio ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let cpu = Sched.cpu sched in
      let e = ent_of t ~pid ~prio in
      e.weight <- Kernsim.Cfs.weight_of_nice prio;
      e.last_runtime <- runtime;
      e.vruntime <- t.rqs.(cpu).min_vruntime;
      insert t ~cpu e sched)

let task_wakeup t ~pid ~runtime ~waker_cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let cpu = Sched.cpu sched in
      let e = ent_of t ~pid ~prio:0 in
      advance_vruntime e ~runtime;
      let rq = t.rqs.(cpu) in
      let floor_v = rq.min_vruntime - calc_delta wakeup_thresh e.weight in
      if e.vruntime < floor_v then e.vruntime <- floor_v;
      insert t ~cpu e sched)

let task_blocked t ~pid ~runtime ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.ents pid with
      | None -> ()
      | Some e ->
        ignore (remove_from t e);
        advance_vruntime e ~runtime;
        let rq = t.rqs.(cpu) in
        if rq.running = Some pid then rq.running <- None;
        update_min rq)

let requeue t ~pid ~runtime ~cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let e = ent_of t ~pid ~prio:0 in
      ignore (remove_from t e);
      advance_vruntime e ~runtime;
      let rq = t.rqs.(cpu) in
      if rq.running = Some pid then rq.running <- None;
      insert t ~cpu e sched;
      update_min rq)

let task_preempt = requeue

let task_yield = requeue

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      (match Hashtbl.find_opt t.ents pid with
      | Some e ->
        ignore (remove_from t e);
        let rq = t.rqs.(e.cpu) in
        if rq.running = Some pid then rq.running <- None
      | None -> ());
      Hashtbl.remove t.ents pid)

let task_departed t ~pid ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      let token =
        match Hashtbl.find_opt t.ents pid with Some e -> remove_from t e | None -> None
      in
      let rq = t.rqs.(cpu) in
      if rq.running = Some pid then rq.running <- None;
      Hashtbl.remove t.ents pid;
      token)

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      let rq = t.rqs.(cpu) in
      match Tree.min_binding_opt rq.tree with
      | Some ((v, pid), sched) ->
        rq.tree <- Tree.remove (v, pid) rq.tree;
        rq.running <- Some pid;
        rq.ticks_since_dispatch <- 0;
        if rq.min_vruntime < v then rq.min_vruntime <- v;
        Some sched
      | None ->
        rq.running <- Option.map Sched.pid curr;
        curr)

let pnt_err t ~cpu ~pid ~err:_ ~sched =
  match sched with
  | None -> ()
  | Some tok ->
    Enoki.Lock.with_lock t.lock (fun () ->
        let e = ent_of t ~pid ~prio:0 in
        insert t ~cpu e tok)

let select_task_rq t ~pid ~waker_cpu ~allowed =
  Enoki.Lock.with_lock t.lock (fun () ->
      (* go back to the previous cpu unless it has queued work; otherwise
         take the emptiest allowed queue *)
      let ok cpu = List.mem cpu allowed && cpu >= 0 && cpu < Array.length t.rqs in
      let prev = match Hashtbl.find_opt t.ents pid with Some e -> e.cpu | None -> waker_cpu in
      if ok prev && nr_running t.rqs.(prev) = 0 then prev
      else begin
        let best = ref (match allowed with c :: _ -> c | [] -> prev)
        and best_n = ref max_int in
        List.iter
          (fun cpu ->
            if ok cpu then begin
              let n = nr_running t.rqs.(cpu) in
              if n < !best_n then begin
                best := cpu;
                best_n := n
              end
            end)
          allowed;
        !best
      end)

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.ents pid with
      | None ->
        let e = ent_of t ~pid ~prio:0 in
        insert t ~cpu:(Sched.cpu sched) e sched;
        None
      | Some e ->
        let old = remove_from t e in
        let from_rq = t.rqs.(e.cpu) and to_rq = t.rqs.(Sched.cpu sched) in
        if from_rq.running = Some pid then from_rq.running <- None;
        e.vruntime <- e.vruntime - from_rq.min_vruntime + to_rq.min_vruntime;
        insert t ~cpu:(Sched.cpu sched) e sched;
        old)

(* steal from the longest queue only when this core is about to idle *)
let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      let rq = t.rqs.(cpu) in
      if nr_queued rq > 0 || rq.running <> None then None
      else begin
        let longest = ref None in
        Array.iteri
          (fun other o ->
            if other <> cpu then
              (* only steal from a core that cannot drain itself promptly *)
              let n = if o.running <> None then nr_queued o else if nr_queued o >= 2 then nr_queued o else 0 in
              match !longest with
              | Some (_, ln) when ln >= n -> ()
              | _ -> if n > 0 then longest := Some (other, n))
          t.rqs;
        match !longest with
        | Some (other, _) -> (
          match Tree.min_binding_opt t.rqs.(other).tree with
          | Some ((_, pid), _) -> Some pid
          | None -> None)
        | None -> None
      end)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let slice rq e =
  let nr = max 1 (nr_running rq) in
  max min_slice (sched_latency * e.weight / (nice_0_load * nr))

let task_tick t ~cpu ~queued =
  Enoki.Lock.with_lock t.lock (fun () ->
      let rq = t.rqs.(cpu) in
      if queued then begin
        rq.ticks_since_dispatch <- rq.ticks_since_dispatch + 1;
        match rq.running with
        | Some pid when nr_queued rq > 0 -> (
          match Hashtbl.find_opt t.ents pid with
          | Some e ->
            let ran = rq.ticks_since_dispatch * Kernsim.Time.ms 1 in
            let slice_exceeded = ran >= slice rq e in
            let curr_v_est = e.vruntime + calc_delta ran e.weight in
            let waiting_shorter =
              match Tree.min_binding_opt rq.tree with
              | Some ((v, _), _) -> v < curr_v_est
              | None -> false
            in
            if slice_exceeded || waiting_shorter then t.ctx.resched ~cpu
          | None -> ())
        | Some _ | None -> ()
      end)

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed t ~pid ~prio =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.ents pid with
      | Some e -> (
        (* reinsert under the key ordering if queued *)
        match remove_from t e with
        | Some sched ->
          e.weight <- Kernsim.Cfs.weight_of_nice prio;
          insert t ~cpu:e.cpu e sched
        | None -> e.weight <- Kernsim.Cfs.weight_of_nice prio)
      | None -> ())

let parse_hint _ ~pid:_ ~hint:_ = ()

(* ---------- live upgrade ---------- *)

type Enoki.Upgrade.transfer +=
  | Wfq_state of { rqs : rq array; ents : (int, ent) Hashtbl.t }

let reregister_prepare t = Some (Wfq_state { rqs = t.rqs; ents = t.ents })

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Wfq_state { rqs; ents }) ->
    { ctx; rqs; ents; lock = Enoki.Lock.create ~name:"wfq-rq" () }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "wfq: unrecognised transfer state")

let without_steal : (module Enoki.Sched_trait.S) =
  (module struct
    type nonrec t = t

    let name = "wfq-nosteal"

    let create = create

    let get_policy = get_policy

    let pick_next_task = pick_next_task

    let pnt_err = pnt_err

    let task_dead = task_dead

    let task_blocked = task_blocked

    let task_wakeup = task_wakeup

    let task_new = task_new

    let task_preempt = task_preempt

    let task_yield = task_yield

    let task_departed = task_departed

    let task_affinity_changed = task_affinity_changed

    let task_prio_changed = task_prio_changed

    let task_tick = task_tick

    let select_task_rq = select_task_rq

    let migrate_task_rq = migrate_task_rq

    let balance _ ~cpu:_ = None

    let balance_err = balance_err

    let reregister_prepare = reregister_prepare

    let reregister_init = reregister_init

    let parse_hint = parse_hint
  end)

let queue_length t ~cpu = nr_queued t.rqs.(cpu)

let vruntime_of t ~pid =
  match Hashtbl.find_opt t.ents pid with Some e -> Some e.vruntime | None -> None
