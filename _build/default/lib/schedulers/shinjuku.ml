module Sched = Enoki.Schedulable

let default_slice = Kernsim.Time.us 10

type t = {
  ctx : Enoki.Ctx.t;
  slice : Kernsim.Time.ns;
  queue : (int * Sched.t) Ds.Deque.t; (* global FCFS of (pid, token) *)
  running : int option array; (* per-cpu running pid (our picks) *)
  mutable rr_cpu : int; (* round-robin pointer for initial placement *)
  lock : Enoki.Lock.t;
}

let name = "shinjuku"

let make (ctx : Enoki.Ctx.t) ~slice =
  {
    ctx;
    slice;
    queue = Ds.Deque.create ();
    running = Array.make ctx.nr_cpus None;
    rr_cpu = 0;
    lock = Enoki.Lock.create ~name:"shinjuku-q" ();
  }

let create ctx = make ctx ~slice:default_slice

let get_policy t = t.ctx.policy

(* every operation re-arms the preemption timer, as §5.2 notes ("our
   version of the Shinjuku scheduler starts a reschedule timer on every
   operation") *)
let arm t ~cpu = t.ctx.set_timer ~cpu t.slice

let enqueue_back t ~pid sched = Ds.Deque.push_back t.queue (pid, sched)

let task_new t ~pid ~runtime:_ ~prio:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      enqueue_back t ~pid sched;
      ignore (arm : t -> cpu:int -> unit))

let task_wakeup t ~pid ~runtime:_ ~waker_cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      enqueue_back t ~pid sched;
      arm t ~cpu:waker_cpu)

let task_blocked t ~pid ~runtime:_ ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (Ds.Deque.remove_first t.queue ~f:(fun (p, _) -> p = pid)))

let requeue t ~pid ~cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (Ds.Deque.remove_first t.queue ~f:(fun (p, _) -> p = pid));
      enqueue_back t ~pid sched)

let task_preempt t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_yield t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      Array.iteri (fun cpu r -> if r = Some pid then t.running.(cpu) <- None) t.running;
      ignore (Ds.Deque.remove_first t.queue ~f:(fun (p, _) -> p = pid)))

let task_departed t ~pid ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      Option.map snd (Ds.Deque.remove_first t.queue ~f:(fun (p, _) -> p = pid)))

(* initial/wakeup run-queue: round-robin across cpus; the global FCFS queue
   plus balance-time migration does the real placement *)
let select_task_rq t ~pid:_ ~waker_cpu:_ ~allowed =
  Enoki.Lock.with_lock t.lock (fun () ->
      (* prefer an allowed cpu with nothing running, else round-robin the
         allowed set *)
      match List.find_opt (fun c -> t.running.(c) = None) allowed with
      | Some c -> c
      | None -> (
        t.rr_cpu <- t.rr_cpu + 1;
        match allowed with
        | [] -> 0
        | l -> List.nth l (t.rr_cpu mod List.length l)))

(* centralized FCFS: a cpu picking work takes the queue head; if the head
   belongs to another run-queue, balance asks the kernel to migrate it here
   first *)
let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) <> None then None
      else
        match Ds.Deque.peek_front t.queue with
        | Some (pid, sched)
          when Sched.cpu sched <> cpu && t.running.(Sched.cpu sched) <> None ->
          (* the head is stuck behind a busy core; pull it here *)
          Some pid
        | Some _ | None -> None)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Ds.Deque.remove_first t.queue ~f:(fun (p, _) -> p = pid) with
      | Some (_, old) ->
        (* keep queue position at the front: migration happens for the head *)
        Ds.Deque.push_front t.queue (pid, sched);
        Some old
      | None ->
        enqueue_back t ~pid sched;
        None)

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      arm t ~cpu;
      (* take the first queued task already on this run-queue *)
      match Ds.Deque.remove_first t.queue ~f:(fun (_, s) -> Sched.cpu s = cpu) with
      | Some (pid, sched) ->
        t.running.(cpu) <- Some pid;
        (match curr with
        | Some c when Sched.pid c <> pid -> enqueue_back t ~pid:(Sched.pid c) c
        | Some _ | None -> ());
        Some sched
      | None ->
        t.running.(cpu) <- Option.map Sched.pid curr;
        curr)

let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
  match sched with
  | Some tok -> Enoki.Lock.with_lock t.lock (fun () -> enqueue_back t ~pid tok)
  | None -> ()

(* the preemption timer: if anything is waiting, preempt the current task *)
let task_tick t ~cpu ~queued =
  Enoki.Lock.with_lock t.lock (fun () ->
      if queued && Ds.Deque.length t.queue > 0 then t.ctx.resched ~cpu;
      if queued then arm t ~cpu)

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed _ ~pid:_ ~prio:_ = ()

let parse_hint _ ~pid:_ ~hint:_ = ()

type Enoki.Upgrade.transfer +=
  | Shinjuku_state of (int * Sched.t) Ds.Deque.t * int option array

let reregister_prepare t = Some (Shinjuku_state (t.queue, t.running))

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Shinjuku_state (queue, running)) ->
    {
      ctx;
      slice = default_slice;
      queue;
      running;
      rr_cpu = 0;
      lock = Enoki.Lock.create ~name:"shinjuku-q" ();
    }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "shinjuku: unrecognised transfer state")

let queue_depth t = Ds.Deque.length t.queue

let with_slice slice : (module Enoki.Sched_trait.S) =
  (module struct
    type nonrec t = t

    let name = Printf.sprintf "shinjuku-%dus" (slice / 1000)

    let create ctx = make ctx ~slice

    let get_policy = get_policy

    let pick_next_task = pick_next_task

    let pnt_err = pnt_err

    let task_dead = task_dead

    let task_blocked = task_blocked

    let task_wakeup = task_wakeup

    let task_new = task_new

    let task_preempt = task_preempt

    let task_yield = task_yield

    let task_departed = task_departed

    let task_affinity_changed = task_affinity_changed

    let task_prio_changed = task_prio_changed

    let task_tick = task_tick

    let select_task_rq = select_task_rq

    let migrate_task_rq = migrate_task_rq

    let balance = balance

    let balance_err = balance_err

    let reregister_prepare = reregister_prepare

    let reregister_init ctx transfer =
      match transfer with None -> create ctx | Some _ -> reregister_init ctx transfer

    let parse_hint = parse_hint
  end)
