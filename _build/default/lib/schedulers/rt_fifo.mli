(** A fixed-priority real-time scheduler (extension).

    The Enoki rendering of Linux's SCHED_FIFO class (one of the three
    mainline schedulers §2 counts): strictly preemptive fixed priorities
    with FIFO order within a priority level and no time slicing.  The
    task's nice value doubles as its priority (lower = more urgent,
    matching the kernel's convention for this simulator).

    Being strict, it can and will starve low-priority work under overload —
    the test suite asserts that, since it is the defining behaviour. *)

include Enoki.Sched_trait.S

(** Waiting tasks on one cpu. *)
val queue_length : t -> cpu:int -> int
