(** The Enoki Shinjuku scheduler (§4.2.2).

    Approximates Shinjuku's centralized first-come-first-serve queue with
    fast preemption on top of the kernel's multiple run-queues: all waiting
    tasks sit in one global FCFS queue; when a cpu needs work it takes the
    head (migrating it to its own run-queue via [balance] if needed); a
    reschedule timer is armed on {e every} operation so any task that has
    run for the preemption slice is placed back at the tail.  The paper
    uses a 10 us slice (instead of Shinjuku's 5 us) to avoid overloading
    the scheduler; long range-queries therefore cannot starve short GETs,
    which is the whole point of Figure 2.

    Pass a different [slice] via {!create_with_slice} ablations. *)

include Enoki.Sched_trait.S

(** Global queue depth. *)
val queue_depth : t -> int

(** Default preemption slice (10 us, as in §4.2.2). *)
val default_slice : Kernsim.Time.ns

(** A variant module with a custom preemption slice (ablation benches). *)
val with_slice : Kernsim.Time.ns -> (module Enoki.Sched_trait.S)
