module Sched = Enoki.Schedulable

let warmth_timeout = Kernsim.Time.ms 20

(* a nest core with this many runnable tasks stops attracting wakeups *)
let spill_threshold = 3

type t = {
  ctx : Enoki.Ctx.t;
  queues : (int * Sched.t) Ds.Deque.t array;
  running : int option array;
  last_used : int array; (* per-cpu: last time we placed or ran work there *)
  mutable nest : int list; (* warm cores, most recently used first *)
  lock : Enoki.Lock.t;
}

let name = "nest"

let create (ctx : Enoki.Ctx.t) =
  {
    ctx;
    queues = Array.init ctx.nr_cpus (fun _ -> Ds.Deque.create ());
    running = Array.make ctx.nr_cpus None;
    last_used = Array.make ctx.nr_cpus min_int;
    nest = [ 0 ];
    lock = Enoki.Lock.create ~name:"nest" ();
  }

let get_policy t = t.ctx.policy

let load_of t cpu = Ds.Deque.length t.queues.(cpu) + if t.running.(cpu) = None then 0 else 1

let touch t cpu =
  t.last_used.(cpu) <- t.ctx.now ();
  if not (List.mem cpu t.nest) then t.nest <- cpu :: t.nest

(* drop cores that have cooled off *)
let prune t =
  let now = t.ctx.now () in
  t.nest <-
    (match
       List.filter
         (fun c -> load_of t c > 0 || now - t.last_used.(c) < warmth_timeout)
         t.nest
     with
    | [] -> [ 0 ]
    | l -> l)

(* Place onto the emptiest warm core with spare capacity; expand the nest
   with the most recently cooled core only when every warm core is full. *)
let place t ~allowed =
  prune t;
  let ok c = List.mem c allowed in
  let candidates = List.filter ok t.nest in
  let best =
    List.fold_left
      (fun acc c ->
        match acc with
        | Some (_, l) when l <= load_of t c -> acc
        | _ -> Some (c, load_of t c))
      None candidates
  in
  match best with
  | Some (c, l) when l < spill_threshold -> c
  | _ -> (
    (* expand: warmest core outside the nest *)
    let outside =
      List.filter (fun c -> ok c && not (List.mem c t.nest)) (List.init t.ctx.nr_cpus Fun.id)
    in
    match outside with
    | [] -> ( match best with Some (c, _) -> c | None -> (match allowed with c :: _ -> c | [] -> 0))
    | l -> List.fold_left (fun a c -> if t.last_used.(c) > t.last_used.(a) then c else a) (List.hd l) l)

let select_task_rq t ~pid:_ ~waker_cpu:_ ~allowed =
  Enoki.Lock.with_lock t.lock (fun () -> place t ~allowed)

let enqueue t ~pid sched =
  let cpu = Sched.cpu sched in
  touch t cpu;
  Ds.Deque.push_back t.queues.(cpu) (pid, sched)

let task_new t ~pid ~runtime:_ ~prio:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid sched)

let task_wakeup t ~pid ~runtime:_ ~waker_cpu:_ ~sched =
  Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid sched)

let drop t pid =
  let found = ref None in
  Array.iter
    (fun q ->
      match Ds.Deque.remove_first q ~f:(fun (p, _) -> p = pid) with
      | Some (_, tok) -> found := Some tok
      | None -> ())
    t.queues;
  !found

let task_blocked t ~pid ~runtime:_ ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (drop t pid))

let requeue t ~pid ~cpu ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      ignore (drop t pid);
      enqueue t ~pid sched)

let task_preempt t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_yield t ~pid ~runtime:_ ~cpu ~sched = requeue t ~pid ~cpu ~sched

let task_dead t ~pid =
  Enoki.Lock.with_lock t.lock (fun () ->
      Array.iteri (fun cpu r -> if r = Some pid then t.running.(cpu) <- None) t.running;
      ignore (drop t pid))

let task_departed t ~pid ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if t.running.(cpu) = Some pid then t.running.(cpu) <- None;
      drop t pid)

let pick_next_task t ~cpu ~curr ~curr_runtime:_ =
  Enoki.Lock.with_lock t.lock (fun () ->
      match Ds.Deque.pop_front t.queues.(cpu) with
      | Some (pid, sched) ->
        t.running.(cpu) <- Some pid;
        touch t cpu;
        (match curr with
        | Some c when Sched.pid c <> pid -> Ds.Deque.push_back t.queues.(cpu) (Sched.pid c, c)
        | Some _ | None -> ());
        Some sched
      | None ->
        t.running.(cpu) <- Option.map Sched.pid curr;
        curr)

let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
  match sched with
  | Some tok -> Enoki.Lock.with_lock t.lock (fun () -> enqueue t ~pid tok)
  | None -> ()

(* work conservation: an idle core may still steal from an overloaded nest
   core — consolidation must not strand runnable work *)
let balance t ~cpu =
  Enoki.Lock.with_lock t.lock (fun () ->
      if load_of t cpu > 0 then None
      else
        let victim = ref None in
        Array.iteri
          (fun other q ->
            if other <> cpu && t.running.(other) <> None && Ds.Deque.length q >= spill_threshold
            then
              match !victim with
              | Some (_, n) when n >= Ds.Deque.length q -> ()
              | _ -> victim := Some (other, Ds.Deque.length q))
          t.queues;
        match !victim with
        | Some (other, _) ->
          Option.map (fun (pid, _) -> pid) (Ds.Deque.peek_front t.queues.(other))
        | None -> None)

let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

let migrate_task_rq t ~pid ~sched =
  Enoki.Lock.with_lock t.lock (fun () ->
      let old = drop t pid in
      enqueue t ~pid sched;
      old)

let task_tick t ~cpu ~queued =
  Enoki.Lock.with_lock t.lock (fun () ->
      if queued && Ds.Deque.length t.queues.(cpu) > 0 then t.ctx.resched ~cpu)

let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

let task_prio_changed _ ~pid:_ ~prio:_ = ()

let parse_hint _ ~pid:_ ~hint:_ = ()

type Enoki.Upgrade.transfer +=
  | Nest_state of {
      queues : (int * Sched.t) Ds.Deque.t array;
      running : int option array;
      last_used : int array;
      nest : int list;
    }

let reregister_prepare t =
  Some (Nest_state { queues = t.queues; running = t.running; last_used = t.last_used; nest = t.nest })

let reregister_init (ctx : Enoki.Ctx.t) transfer =
  match transfer with
  | None -> create ctx
  | Some (Nest_state { queues; running; last_used; nest }) ->
    { ctx; queues; running; last_used; nest; lock = Enoki.Lock.create ~name:"nest" () }
  | Some _ -> raise (Enoki.Upgrade.Incompatible "nest: unrecognised transfer state")

let nest_cpus t = Enoki.Lock.with_lock t.lock (fun () -> List.sort_uniq Int.compare t.nest)
