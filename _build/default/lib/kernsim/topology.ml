type t = { cores : int; cores_per_llc : int; cores_per_node : int }

let create ~cores ~cores_per_llc ~cores_per_node =
  if cores <= 0 || cores_per_llc <= 0 || cores_per_node <= 0 then
    invalid_arg "Topology.create";
  if cores mod cores_per_llc <> 0 || cores mod cores_per_node <> 0 then
    invalid_arg "Topology.create: cores must divide evenly";
  { cores; cores_per_llc; cores_per_node }

let one_socket = create ~cores:8 ~cores_per_llc:8 ~cores_per_node:8

let two_socket = create ~cores:80 ~cores_per_llc:40 ~cores_per_node:40

let nr_cpus t = t.cores

let node_of t cpu = cpu / t.cores_per_node

let llc_of t cpu = cpu / t.cores_per_llc

let group_cpus size cpu total =
  let base = cpu / size * size in
  List.init (min size (total - base)) (fun i -> base + i)

let node_cpus t cpu = group_cpus t.cores_per_node cpu t.cores

let llc_cpus t cpu = group_cpus t.cores_per_llc cpu t.cores

let same_node t a b = node_of t a = node_of t b

let same_llc t a b = llc_of t a = llc_of t b

let all_cpus t = List.init t.cores Fun.id
