(** Simulated time.

    The whole simulator counts nanoseconds in a plain [int]; 63 bits covers
    ~292 simulated years, far beyond any experiment here. *)

type ns = int

val ns : int -> ns

val us : int -> ns

val ms : int -> ns

val sec : int -> ns

val to_us : ns -> float

val to_ms : ns -> float

val to_sec : ns -> float

(** Human-readable rendering with an adaptive unit (e.g. "3.6us"). *)
val pp : Format.formatter -> ns -> unit

val to_string : ns -> string
