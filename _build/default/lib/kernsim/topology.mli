(** Machine topology: cores grouped into last-level-cache domains grouped
    into NUMA nodes.

    Two presets mirror the paper's testbeds (§5.1): an 8-core single-socket
    desktop and an 80-core two-socket server. *)

type t

(** [create ~cores ~cores_per_llc ~cores_per_node]. [cores] must be a
    positive multiple of both grouping factors. *)
val create : cores:int -> cores_per_llc:int -> cores_per_node:int -> t

(** 8 cores, one LLC, one node — the Intel i7-9700 box. *)
val one_socket : t

(** 80 cores, 2 nodes of 40, LLC per node — the two-socket Xeon Gold box. *)
val two_socket : t

val nr_cpus : t -> int

val node_of : t -> int -> int

val llc_of : t -> int -> int

(** All cpus in the same NUMA node as [cpu], including [cpu]. *)
val node_cpus : t -> int -> int list

(** All cpus sharing [cpu]'s last-level cache, including [cpu]. *)
val llc_cpus : t -> int -> int list

val same_node : t -> int -> int -> bool

val same_llc : t -> int -> int -> bool

val all_cpus : t -> int list
