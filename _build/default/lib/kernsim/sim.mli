(** The discrete-event engine: a virtual clock and an ordered queue of
    callbacks.

    Events at equal timestamps fire in scheduling order (a monotonically
    increasing sequence number breaks ties), which makes whole simulations
    deterministic. *)

type t

val create : unit -> t

val now : t -> Time.ns

(** [at t ~time f] schedules [f] to run when the clock reaches [time]
    (clamped to [now] if in the past). *)
val at : t -> time:Time.ns -> (unit -> unit) -> unit

(** [after t ~delay f] is [at t ~time:(now t + delay) f]. *)
val after : t -> delay:Time.ns -> (unit -> unit) -> unit

(** Run events until the clock passes [until] or the queue empties.
    Events scheduled exactly at [until] are executed. *)
val run_until : t -> until:Time.ns -> unit

(** Run until the event queue is empty. *)
val run : t -> unit

val pending : t -> int
