lib/kernsim/sim.ml: Ds Int Time
