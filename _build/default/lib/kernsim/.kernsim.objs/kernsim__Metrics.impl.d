lib/kernsim/metrics.ml: Array Hashtbl Stats
