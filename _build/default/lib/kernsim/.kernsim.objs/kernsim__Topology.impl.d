lib/kernsim/topology.ml: Fun List
