lib/kernsim/sim.mli: Time
