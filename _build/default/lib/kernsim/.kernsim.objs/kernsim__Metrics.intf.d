lib/kernsim/metrics.mli: Stats Time
