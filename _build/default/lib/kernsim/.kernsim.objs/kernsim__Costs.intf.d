lib/kernsim/costs.mli: Time
