lib/kernsim/task.mli: Format Time
