lib/kernsim/task.ml: Format List Time
