lib/kernsim/machine.mli: Costs Metrics Sched_class Task Time Topology
