lib/kernsim/costs.ml: Time
