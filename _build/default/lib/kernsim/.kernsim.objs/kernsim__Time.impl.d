lib/kernsim/time.ml: Format
