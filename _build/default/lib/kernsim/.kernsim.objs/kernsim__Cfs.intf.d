lib/kernsim/cfs.mli: Sched_class Time
