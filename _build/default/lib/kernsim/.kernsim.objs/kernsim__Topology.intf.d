lib/kernsim/topology.mli:
