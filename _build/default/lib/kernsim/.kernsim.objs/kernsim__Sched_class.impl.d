lib/kernsim/sched_class.ml: Costs Task Time Topology
