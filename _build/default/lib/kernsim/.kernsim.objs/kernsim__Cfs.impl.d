lib/kernsim/cfs.ml: Array Ds Hashtbl Int List Printf Sched_class Task Time Topology
