lib/kernsim/machine.ml: Array Costs Ds Format Hashtbl List Metrics Printf Sched_class Sim Task Time Topology
