lib/kernsim/sched_class.mli: Costs Task Time Topology
