lib/kernsim/time.mli: Format
