type event = { time : Time.ns; seq : int; thunk : unit -> unit }

type t = { events : event Ds.Heap.t; mutable clock : Time.ns; mutable next_seq : int }

let compare_event a b =
  match Int.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create () = { events = Ds.Heap.create ~compare:compare_event; clock = 0; next_seq = 0 }

let now t = t.clock

let at t ~time f =
  let time = max time t.clock in
  Ds.Heap.add t.events { time; seq = t.next_seq; thunk = f };
  t.next_seq <- t.next_seq + 1

let after t ~delay f = at t ~time:(t.clock + max 0 delay) f

let run_until t ~until =
  let rec loop () =
    match Ds.Heap.peek t.events with
    | Some ev when ev.time <= until ->
      ignore (Ds.Heap.pop t.events);
      t.clock <- ev.time;
      ev.thunk ();
      loop ()
    | Some _ | None -> t.clock <- max t.clock until
  in
  loop ()

let run t =
  let rec loop () =
    match Ds.Heap.pop t.events with
    | Some ev ->
      t.clock <- ev.time;
      ev.thunk ();
      loop ()
    | None -> ()
  in
  loop ()

let pending t = Ds.Heap.length t.events
