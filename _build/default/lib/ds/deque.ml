type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of the front element *)
  mutable len : int;
}

let create () = { buf = Array.make 8 None; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let index t i = (t.head + i) mod Array.length t.buf

let grow t =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let nbuf = Array.make (cap * 2) None in
    for i = 0 to t.len - 1 do
      nbuf.(i) <- t.buf.(index t i)
    done;
    t.buf <- nbuf;
    t.head <- 0
  end

let push_back t x =
  grow t;
  t.buf.(index t t.len) <- Some x;
  t.len <- t.len + 1

let push_front t x =
  grow t;
  t.head <- (t.head - 1 + Array.length t.buf) mod Array.length t.buf;
  t.buf.(t.head) <- Some x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- index t 1;
    t.len <- t.len - 1;
    x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let i = index t (t.len - 1) in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.len <- t.len - 1;
    x
  end

let peek_front t = if t.len = 0 then None else t.buf.(t.head)

let peek_back t = if t.len = 0 then None else t.buf.(index t (t.len - 1))

let to_list t =
  let rec go i acc =
    if i < 0 then acc
    else
      match t.buf.(index t i) with
      | Some x -> go (i - 1) (x :: acc)
      | None -> go (i - 1) acc
  in
  go (t.len - 1) []

let iter f t = List.iter f (to_list t)

let exists f t = List.exists f (to_list t)

let remove t ~eq x =
  let items = to_list t in
  if List.exists (eq x) items then begin
    (* rebuild without the first matching element *)
    let removed = ref false in
    let kept =
      List.filter
        (fun y ->
          if (not !removed) && eq x y then begin
            removed := true;
            false
          end
          else true)
        items
    in
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.len <- 0;
    List.iter (push_back t) kept;
    true
  end
  else false

let remove_first t ~f =
  let items = to_list t in
  let rec split acc = function
    | [] -> None
    | x :: rest -> if f x then Some (x, List.rev_append acc rest) else split (x :: acc) rest
  in
  match split [] items with
  | None -> None
  | Some (x, kept) ->
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.len <- 0;
    List.iter (push_back t) kept;
    Some x

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
