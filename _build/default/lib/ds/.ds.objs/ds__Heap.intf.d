lib/ds/heap.mli:
