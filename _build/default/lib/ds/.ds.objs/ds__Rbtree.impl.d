lib/ds/rbtree.ml: List Option
