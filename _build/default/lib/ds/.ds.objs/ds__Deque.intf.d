lib/ds/deque.mli:
