lib/ds/deque.ml: Array List
