lib/ds/ring_buffer.mli:
