lib/ds/ring_buffer.ml: Array List
