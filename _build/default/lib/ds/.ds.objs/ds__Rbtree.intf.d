lib/ds/rbtree.mli:
