(** Mutable binary min-heaps.

    Used for the simulator's event queue and timer wheel ({!Kernsim.Sim}).
    The comparison is supplied at creation; ties are broken by insertion
    order only if the caller encodes a sequence number into the element (the
    simulator does, to keep runs deterministic). *)

type 'a t

(** [create ~compare] makes an empty heap ordered by [compare]. *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. *)
val pop : 'a t -> 'a option

(** Remove every element for which [f] holds. O(n log n). *)
val remove_if : 'a t -> ('a -> bool) -> unit

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
