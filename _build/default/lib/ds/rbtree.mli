(** Immutable red-black trees with ordered keys.

    This is the runqueue structure used by the native CFS implementation
    ({!Kernsim.Cfs}): tasks are keyed by [(vruntime, pid)] and the scheduler
    repeatedly needs the minimum key.  The tree is persistent; all operations
    are O(log n).

    The implementation maintains the two classical red-black invariants
    (no red node has a red child; every root-to-leaf path crosses the same
    number of black nodes), which the property-based test suite checks
    explicitly. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) : sig
  type key = Key.t

  type 'a t

  val empty : 'a t

  val is_empty : 'a t -> bool

  (** Number of bindings; O(1). *)
  val cardinal : 'a t -> int

  (** [add k v t] binds [k] to [v], replacing any previous binding of [k]. *)
  val add : key -> 'a -> 'a t -> 'a t

  (** [remove k t] is [t] without the binding for [k] (unchanged if absent). *)
  val remove : key -> 'a t -> 'a t

  val mem : key -> 'a t -> bool

  val find_opt : key -> 'a t -> 'a option

  (** Binding with the smallest key, or [None] when empty; O(log n). *)
  val min_binding_opt : 'a t -> (key * 'a) option

  val max_binding_opt : 'a t -> (key * 'a) option

  (** In key order. *)
  val iter : (key -> 'a -> unit) -> 'a t -> unit

  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

  val to_list : 'a t -> (key * 'a) list

  val of_list : (key * 'a) list -> 'a t

  (** [nth t i] is the [i]-th smallest binding; O(n). Raises
      [Invalid_argument] when out of range. *)
  val nth : 'a t -> int -> key * 'a

  (** Internal invariant checks, exposed for the property-based tests. *)

  val invariant_no_red_red : 'a t -> bool

  val invariant_black_height : 'a t -> bool

  val invariant_ordered : 'a t -> bool
end
