(** Resizable double-ended queues.

    The Enoki WFQ scheduler keeps a deque of waiting tasks per core: the
    owner pushes and pops at the back, and an idle core steals from the
    front of the longest queue (§4.2.1 of the paper). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val pop_back : 'a t -> 'a option

val pop_front : 'a t -> 'a option

val peek_front : 'a t -> 'a option

val peek_back : 'a t -> 'a option

(** Remove the first (oldest) element equal to [x] under [eq]; returns
    whether something was removed. O(n). *)
val remove : 'a t -> eq:('a -> 'a -> bool) -> 'a -> bool

(** Remove and return the first (oldest) element satisfying [f]. O(n). *)
val remove_first : 'a t -> f:('a -> bool) -> 'a option

(** Front-to-back order. *)
val to_list : 'a t -> 'a list

val iter : ('a -> unit) -> 'a t -> unit

val exists : ('a -> bool) -> 'a t -> bool

val clear : 'a t -> unit
