(* Persistent red-black trees.

   Insertion is Okasaki's classic formulation.  Deletion follows Germane &
   Might, "Deletion: the curse of the red-black tree" (JFP 24(4), 2014):
   a transient double-black colour [BB] (and double-black leaf [EE]) absorbs
   the missing black unit and is bubbled up by [rotate]/[balance] until it
   disappears.  Both invariants are re-checked by the qcheck suite. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) = struct
  type key = Key.t

  type color = R | B | BB

  type 'a tree =
    | E
    | EE (* double-black leaf; only exists transiently during deletion *)
    | T of color * 'a tree * (key * 'a) * 'a tree

  type 'a t = { tree : 'a tree; size : int }

  let empty = { tree = E; size = 0 }

  let is_empty t = t.size = 0

  let cardinal t = t.size

  let rec find_opt_tree k = function
    | E | EE -> None
    | T (_, l, (k', v), r) ->
      let c = Key.compare k k' in
      if c < 0 then find_opt_tree k l
      else if c > 0 then find_opt_tree k r
      else Some v

  let find_opt k t = find_opt_tree k t.tree

  let mem k t = Option.is_some (find_opt k t)

  (* Okasaki's balance, extended with the double-black cases used by
     deletion: resolving a red-red violation under a BB node consumes the
     extra black unit, so the result root is B rather than R. *)
  let balance color l kv r =
    match (color, l, kv, r) with
    | B, T (R, T (R, a, x, b), y, c), z, d
    | B, T (R, a, x, T (R, b, y, c)), z, d
    | B, a, x, T (R, T (R, b, y, c), z, d)
    | B, a, x, T (R, b, y, T (R, c, z, d)) ->
      T (R, T (B, a, x, b), y, T (B, c, z, d))
    | BB, T (R, T (R, a, x, b), y, c), z, d
    | BB, T (R, a, x, T (R, b, y, c)), z, d
    | BB, a, x, T (R, T (R, b, y, c), z, d)
    | BB, a, x, T (R, b, y, T (R, c, z, d)) ->
      T (B, T (B, a, x, b), y, T (B, c, z, d))
    | c, l, x, r -> T (c, l, x, r)

  let add k v t =
    let rec ins = function
      | E | EE -> T (R, E, (k, v), E)
      | T (color, l, ((k', _) as kv), r) ->
        let c = Key.compare k k' in
        if c < 0 then balance color (ins l) kv r
        else if c > 0 then balance color l kv (ins r)
        else T (color, l, (k, v), r)
    in
    let tree =
      match ins t.tree with
      | T (_, l, kv, r) -> T (B, l, kv, r)
      | (E | EE) as leaf -> leaf
    in
    let size = if mem k t then t.size else t.size + 1 in
    { tree; size }

  (* [rotate] from Germane & Might: pushes a double black up one level,
     restructuring so [balance] can absorb it. *)
  let rotate color l kv r =
    match (color, l, kv, r) with
    (* red parent, double-black child, black sibling *)
    | R, EE, y, T (B, c, z, d) -> balance B (T (R, E, y, c)) z d
    | R, T (BB, a, x, b), y, T (B, c, z, d) ->
      balance B (T (R, T (B, a, x, b), y, c)) z d
    | R, T (B, a, x, b), y, EE -> balance B a x (T (R, b, y, E))
    | R, T (B, a, x, b), y, T (BB, c, z, d) ->
      balance B a x (T (R, b, y, T (B, c, z, d)))
    (* black parent, double-black child, black sibling *)
    | B, EE, y, T (B, c, z, d) -> balance BB (T (R, E, y, c)) z d
    | B, T (BB, a, x, b), y, T (B, c, z, d) ->
      balance BB (T (R, T (B, a, x, b), y, c)) z d
    | B, T (B, a, x, b), y, EE -> balance BB a x (T (R, b, y, E))
    | B, T (B, a, x, b), y, T (BB, c, z, d) ->
      balance BB a x (T (R, b, y, T (B, c, z, d)))
    (* black parent, double-black child, red sibling *)
    | B, EE, x, T (R, T (B, b, y, c), z, d) ->
      T (B, balance B (T (R, E, x, b)) y c, z, d)
    | B, T (BB, a, w, b), x, T (R, T (B, c, y, d), z, e) ->
      T (B, balance B (T (R, T (B, a, w, b), x, c)) y d, z, e)
    | B, T (R, a, w, T (B, b, x, c)), y, EE ->
      T (B, a, w, balance B b x (T (R, c, y, E)))
    | B, T (R, a, w, T (B, b, x, c)), y, T (BB, d, z, e) ->
      T (B, a, w, balance B b x (T (R, c, y, T (B, d, z, e))))
    | c, l, x, r -> T (c, l, x, r)

  (* Delete the minimum binding; the returned tree may carry a double black. *)
  let rec min_del = function
    | T (R, E, y, E) -> (y, E)
    | T (B, E, y, E) -> (y, EE)
    | T (B, E, y, T (R, E, z, E)) -> (y, T (B, E, z, E))
    | T (c, a, y, b) ->
      let m, a' = min_del a in
      (m, rotate c a' y b)
    | E | EE -> invalid_arg "Rbtree.min_del: empty"

  let remove k t =
    let rec del = function
      | E | EE -> E
      | T (R, E, ((k', _) as y), E) -> if Key.compare k k' = 0 then E else T (R, E, y, E)
      | T (B, E, ((k', _) as y), E) -> if Key.compare k k' = 0 then EE else T (B, E, y, E)
      | T (B, T (R, E, y, E), ((kz, _) as z), E) ->
        let c = Key.compare k kz in
        if c < 0 then T (B, del (T (R, E, y, E)), z, E)
        else if c = 0 then T (B, E, y, E)
        else T (B, T (R, E, y, E), z, E)
      | T (c, a, ((k', _) as y), b) ->
        let cmp = Key.compare k k' in
        if cmp < 0 then rotate c (del a) y b
        else if cmp > 0 then rotate c a y (del b)
        else
          let m, b' = min_del b in
          rotate c a m b'
    in
    if not (mem k t) then t
    else
      let tree =
        (* redden: giving the root a red coat lets a double black emerging
           from below be absorbed without escaping through the root *)
        match t.tree with
        | T (B, (T (B, _, _, _) as l), y, (T (B, _, _, _) as r)) ->
          del (T (R, l, y, r))
        | tr -> del tr
      in
      let tree =
        match tree with
        | T (_, l, kv, r) -> T (B, l, kv, r)
        | E | EE -> E
      in
      { tree; size = t.size - 1 }

  let rec min_binding_tree = function
    | E | EE -> None
    | T (_, E, kv, _) -> Some kv
    | T (_, l, _, _) -> min_binding_tree l

  let min_binding_opt t = min_binding_tree t.tree

  let rec max_binding_tree = function
    | E | EE -> None
    | T (_, _, kv, E) -> Some kv
    | T (_, _, _, r) -> max_binding_tree r

  let max_binding_opt t = max_binding_tree t.tree

  let rec iter_tree f = function
    | E | EE -> ()
    | T (_, l, (k, v), r) ->
      iter_tree f l;
      f k v;
      iter_tree f r

  let iter f t = iter_tree f t.tree

  let rec fold_tree f tr acc =
    match tr with
    | E | EE -> acc
    | T (_, l, (k, v), r) -> fold_tree f r (f k v (fold_tree f l acc))

  let fold f t acc = fold_tree f t.tree acc

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let of_list l = List.fold_left (fun t (k, v) -> add k v t) empty l

  let nth t i =
    if i < 0 || i >= t.size then invalid_arg "Rbtree.nth";
    match List.nth_opt (to_list t) i with
    | Some kv -> kv
    | None -> invalid_arg "Rbtree.nth"

  let rec no_red_red = function
    | E | EE -> true
    | T (R, T (R, _, _, _), _, _) | T (R, _, _, T (R, _, _, _)) -> false
    | T (_, l, _, r) -> no_red_red l && no_red_red r

  let invariant_no_red_red t = no_red_red t.tree

  (* Black height of every path, or None when paths disagree or a transient
     colour leaked out of deletion. *)
  let rec black_height = function
    | E -> Some 1
    | EE -> None
    | T (c, l, _, r) -> (
      match (black_height l, black_height r) with
      | Some hl, Some hr when hl = hr -> (
        match c with R -> Some hl | B -> Some (hl + 1) | BB -> None)
      | _ -> None)

  let invariant_black_height t = Option.is_some (black_height t.tree)

  let invariant_ordered t =
    let l = to_list t in
    let rec sorted = function
      | (k1, _) :: ((k2, _) :: _ as rest) ->
        Key.compare k1 k2 < 0 && sorted rest
      | [ _ ] | [] -> true
    in
    sorted l
end
