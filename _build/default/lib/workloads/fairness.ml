module T = Kernsim.Task
module M = Kernsim.Machine

let hog ~chunk ~work =
  let left = ref (work / chunk) in
  fun (_ : T.ctx) ->
    if !left <= 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let completion m pid =
  match M.find_task m pid with
  | Some { T.exited_at = Some t; spawned_at; _ } -> Kernsim.Time.to_sec (t - spawned_at)
  | Some _ | None -> Float.nan

let spawn_hogs (b : Setup.built) ~n ~work ~affinity ~nice =
  List.init n (fun i ->
      M.spawn b.machine
        {
          (T.default_spec ~name:(Printf.sprintf "hog-%d" i) (hog ~chunk:(Kernsim.Time.ms 1) ~work))
          with
          T.policy = b.policy;
          group = "hog";
          affinity;
          nice = nice i;
        })

let run_all (b : Setup.built) ~budget = M.run_for b.machine budget

let fair_share (b : Setup.built) ~colocated ~work =
  let affinity = if colocated then Some [ 0 ] else None in
  let pids = spawn_hogs b ~n:5 ~work ~affinity ~nice:(fun _ -> 0) in
  run_all b ~budget:(30 * work);
  List.map (completion b.machine) pids

let weighted (b : Setup.built) ~work =
  let pids =
    spawn_hogs b ~n:5 ~work ~affinity:(Some [ 0 ]) ~nice:(fun i -> if i = 4 then 19 else 0)
  in
  run_all b ~budget:(60 * work);
  match List.rev_map (completion b.machine) pids with
  | low :: rest -> (List.rev rest, low)
  | [] -> ([], Float.nan)

let placement (b : Setup.built) ~move ~work =
  let nr = Kernsim.Topology.nr_cpus (M.topology b.machine) in
  let pids = spawn_hogs b ~n:nr ~work ~affinity:None ~nice:(fun _ -> 0) in
  (match (move, pids) with
  | true, first :: _ ->
    (* force the first task onto its neighbour's core partway through *)
    M.at b.machine ~delay:(work / 3) (fun () ->
        M.set_affinity b.machine ~pid:first (Some [ 1 ]));
    M.at b.machine ~delay:(work / 2) (fun () -> M.set_affinity b.machine ~pid:first None)
  | _, _ -> ());
  run_all b ~budget:(10 * work);
  let times = List.map (completion b.machine) pids in
  (Stats.Summary.mean times, Stats.Summary.stdev times)
