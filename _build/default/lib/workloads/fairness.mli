(** The WFQ functional-equivalence checks of Appendix A.1.

    Three behavioural benchmarks establishing that the Enoki WFQ scheduler
    implements the behaviour expected of a weighted-fair-queuing scheduler,
    by comparing against CFS:

    - fair sharing: equal CPU-bound tasks complete together, co-located or
      spread;
    - weighting: a minimum-priority task finishes well after its siblings;
    - placement: one task per core, with and without a forced migration. *)

(** [fair_share b ~colocated ~work] runs five CPU hogs of [work] each and
    returns their completion times (seconds), in pid order. *)
val fair_share :
  Setup.built -> colocated:bool -> work:Kernsim.Time.ns -> float list

(** [weighted b ~work] runs five co-located hogs, one at nice 19.  Returns
    [(normal_completions, low_prio_completion)] in seconds. *)
val weighted : Setup.built -> work:Kernsim.Time.ns -> float list * float

(** [placement b ~move ~work] runs one hog per core; with [move], one task
    is forced onto a neighbour's core mid-run.  Returns (mean, stdev) of
    completion times in seconds. *)
val placement : Setup.built -> move:bool -> work:Kernsim.Time.ns -> float * float
