(** The [perf bench sched pipe] microbenchmark (§5.2, Table 3).

    Two tasks bounce messages over a pipe: the sender wakes the receiver
    and sleeps until the reply.  Schedulers by default place the tasks on
    different cores; [same_core] pins both to cpu 0, the benchmark's
    one-core variant.  The reported metric is microseconds per wakeup. *)

type result = {
  us_per_wakeup : float;
  wakeups : int;
  elapsed : Kernsim.Time.ns;
  completed : bool;  (** both tasks exited within the time budget *)
}

val run :
  Setup.built ->
  ?same_core:bool ->
  ?messages:int ->
  ?work:Kernsim.Time.ns ->
  unit ->
  result

(** The Arachne row of Tables 3 and 4: the ping-pong runs between
    user-level threads inside one kernel task, so each wakeup costs only a
    userspace context switch — no kernel scheduling at all.  The two-core
    variant additionally bounces a cache line between cores. *)
val run_userlevel : Setup.built -> ?same_core:bool -> ?messages:int -> unit -> result
