module T = Kernsim.Task
module M = Kernsim.Machine

type family =
  | Parallel_compute of { tasks_per_core : float; chunk : Kernsim.Time.ns; steps : int; barrier : bool }
  | Fork_join of { waves : int; tasks_per_wave : int; work : Kernsim.Time.ns; skew : float }
  | Producer_consumer of { pairs : int; items : int; work : Kernsim.Time.ns }
  | Io_mix of { tasks : int; compute : Kernsim.Time.ns; sleep : Kernsim.Time.ns; iters : int }
  | Unbalanced of { tasks : int; base : Kernsim.Time.ns; skew : float; steps : int }

type app = { name : string; unit_ : string; family : family; seed : int }

let us = Kernsim.Time.us

let ms = Kernsim.Time.ms

(* The NAS kernels all run one task per core over barrier-separated
   phases; they differ in phase length and communication intensity. *)
let nas =
  [
    { name = "BT"; unit_ = "Mop/s"; seed = 101;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 4; steps = 40; barrier = true } };
    { name = "CG"; unit_ = "Mop/s"; seed = 102;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 400; steps = 300; barrier = true } };
    { name = "EP"; unit_ = "Mop/s"; seed = 103;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 20; steps = 8; barrier = false } };
    { name = "FT"; unit_ = "Mop/s"; seed = 104;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 2; steps = 60; barrier = true } };
    { name = "IS"; unit_ = "Mop/s"; seed = 105;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 250; steps = 250; barrier = true } };
    { name = "LU"; unit_ = "Mop/s"; seed = 106;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 150; steps = 600; barrier = true } };
    { name = "MG"; unit_ = "Mop/s"; seed = 107;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 1; steps = 120; barrier = true } };
    { name = "SP"; unit_ = "Mop/s"; seed = 108;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 600; steps = 250; barrier = true } };
    { name = "UA"; unit_ = "Mop/s"; seed = 109;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 800; steps = 150; barrier = true } };
  ]

(* Phoronix apps mapped onto the family whose scheduling behaviour matches
   the real benchmark (names follow the paper's Table 7). *)
let phoronix =
  [
    { name = "Arrayfire BLAS"; unit_ = "GFLOPS"; seed = 201;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 3; steps = 40; barrier = true } };
    { name = "Arrayfire CG"; unit_ = "ms"; seed = 202;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 500; steps = 200; barrier = true } };
    { name = "Cassandra Writes"; unit_ = "op/s"; seed = 203;
      family = Io_mix { tasks = 32; compute = us 120; sleep = us 200; iters = 300 } };
    { name = "ASKAP Hogbom"; unit_ = "iter/s"; seed = 204;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 1; steps = 100; barrier = true } };
    { name = "Cpuminer 3xSHA"; unit_ = "kH/s"; seed = 205;
      family = Parallel_compute { tasks_per_core = 2.0; chunk = ms 5; steps = 12; barrier = false } };
    { name = "Cpuminer 4xSHA"; unit_ = "kH/s"; seed = 206;
      family = Parallel_compute { tasks_per_core = 2.0; chunk = ms 4; steps = 15; barrier = false } };
    { name = "Cpuminer Myriad"; unit_ = "kH/s"; seed = 207;
      family = Parallel_compute { tasks_per_core = 4.0; chunk = ms 3; steps = 10; barrier = false } };
    { name = "Cpuminer Blake2"; unit_ = "kH/s"; seed = 208;
      family = Parallel_compute { tasks_per_core = 2.0; chunk = ms 6; steps = 10; barrier = false } };
    { name = "Cpuminer Skein"; unit_ = "kH/s"; seed = 209;
      family = Parallel_compute { tasks_per_core = 4.0; chunk = ms 2; steps = 14; barrier = false } };
    { name = "Ffmpeg x264 Live"; unit_ = "s"; seed = 210;
      family = Fork_join { waves = 40; tasks_per_wave = 12; work = us 800; skew = 0.5 } };
    { name = "GraphicsMagick Resize"; unit_ = "iter/m"; seed = 211;
      family = Fork_join { waves = 30; tasks_per_wave = 16; work = us 600; skew = 0.3 } };
    { name = "OIDN RT.hdr"; unit_ = "img/s"; seed = 212;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 8; steps = 12; barrier = true } };
    { name = "OIDN RT.ldr"; unit_ = "img/s"; seed = 213;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 8; steps = 12; barrier = true } };
    { name = "OIDN RTLightmap"; unit_ = "img/s"; seed = 214;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 16; steps = 8; barrier = true } };
    { name = "Rodinia Leukocyte"; unit_ = "s"; seed = 215;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 2; steps = 80; barrier = true } };
    { name = "Zstd 3 Long"; unit_ = "MB/s"; seed = 216;
      family = Unbalanced { tasks = 12; base = ms 2; skew = 3.0; steps = 25 } };
    { name = "Zstd 8 Long"; unit_ = "MB/s"; seed = 217;
      family = Unbalanced { tasks = 12; base = ms 5; skew = 4.0; steps = 12 } };
    { name = "AVIFEnc 6 Lossless"; unit_ = "s"; seed = 218;
      family = Fork_join { waves = 20; tasks_per_wave = 10; work = ms 1; skew = 0.8 } };
    { name = "Libgav1 Summer 1080p"; unit_ = "FPS"; seed = 219;
      family = Producer_consumer { pairs = 4; items = 400; work = us 300 } };
    { name = "Libgav1 Summer 4k"; unit_ = "FPS"; seed = 220;
      family = Producer_consumer { pairs = 4; items = 150; work = us 900 } };
    { name = "Libgav1 Chimera 1080p"; unit_ = "FPS"; seed = 221;
      family = Producer_consumer { pairs = 6; items = 300; work = us 350 } };
    { name = "Libgav1 Chimera 10bit"; unit_ = "FPS"; seed = 222;
      family = Producer_consumer { pairs = 6; items = 200; work = us 500 } };
    { name = "OneDNN IP 1D"; unit_ = "ms"; seed = 223;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 120; steps = 400; barrier = true } };
    { name = "OneDNN IP 3D"; unit_ = "ms"; seed = 224;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 250; steps = 300; barrier = true } };
    { name = "OneDNN RNN f32"; unit_ = "ms"; seed = 225;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = ms 1; steps = 150; barrier = true } };
    { name = "OneDNN RNN u8"; unit_ = "ms"; seed = 226;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 700; steps = 180; barrier = true } };
    { name = "OneDNN RNN bf16"; unit_ = "ms"; seed = 227;
      family = Parallel_compute { tasks_per_core = 1.0; chunk = us 900; steps = 160; barrier = true } };
  ]

type result = { score : float; elapsed : Kernsim.Time.ns }

(* ---------- behaviours ---------- *)

(* barrier worker: compute a chunk, signal arrival, wait for release *)
let barrier_worker ~arrive ~release ~chunk ~steps =
  let left = ref steps and st = ref `Work in
  fun (_ : T.ctx) ->
    match !st with
    | `Work ->
      if !left = 0 then T.Exit
      else begin
        decr left;
        st := `Arrive;
        T.Compute chunk
      end
    | `Arrive ->
      st := `Waitrel;
      T.Wake arrive
    | `Waitrel ->
      st := `Work;
      T.Block release

(* barrier coordinator: collect [n] arrivals, release everyone, repeat *)
let barrier_master ~arrive ~releases ~n ~steps =
  let step = ref 0 and st = ref (`Collect n) in
  fun (_ : T.ctx) ->
    match !st with
    | `Collect 0 ->
      incr step;
      if !step >= steps then begin
        (* last release lets workers observe exit condition *)
        st := `Release (releases, true);
        T.Compute 1
      end
      else begin
        st := `Release (releases, false);
        T.Compute 1
      end
    | `Collect k ->
      st := `Collect (k - 1);
      T.Block arrive
    | `Release ([], final) ->
      if final then T.Exit
      else begin
        st := `Collect n;
        T.Compute 1
      end
    | `Release (r :: rest, final) ->
      st := `Release (rest, final);
      T.Wake r

let plain_worker ~chunk ~steps =
  let left = ref steps in
  fun (_ : T.ctx) ->
    if !left = 0 then T.Exit
    else begin
      decr left;
      T.Compute chunk
    end

let io_worker ~compute ~sleep ~iters ~rng =
  let left = ref iters and st = ref `Work in
  fun (_ : T.ctx) ->
    match !st with
    | `Work ->
      if !left = 0 then T.Exit
      else begin
        decr left;
        st := `Sleep;
        T.Compute compute
      end
    | `Sleep ->
      st := `Work;
      (* jittered I/O wait *)
      T.Sleep (sleep + Stats.Prng.int rng (max 1 (sleep / 2)))

let producer ~items ~work ~chan =
  let left = ref items and st = ref `Work in
  fun (_ : T.ctx) ->
    match !st with
    | `Work ->
      if !left = 0 then T.Exit
      else begin
        decr left;
        st := `Send;
        T.Compute work
      end
    | `Send ->
      st := `Work;
      T.Wake chan

let consumer ~items ~work ~chan =
  let left = ref items and st = ref `Recv in
  fun (_ : T.ctx) ->
    match !st with
    | `Recv ->
      if !left = 0 then T.Exit
      else begin
        decr left;
        st := `Work;
        T.Block chan
      end
    | `Work ->
      st := `Recv;
      T.Compute work

(* wave spawner for fork-join apps *)
let forker ~waves ~tasks_per_wave ~work ~skew ~rng ~policy =
  let wave = ref 0 and st = ref `Spawn and spawned = ref 0 in
  fun (_ : T.ctx) ->
    match !st with
    | `Spawn ->
      if !wave >= waves then T.Exit
      else if !spawned >= tasks_per_wave then begin
        spawned := 0;
        incr wave;
        st := `Wait;
        (* the parent works while the wave runs *)
        T.Compute (work / 2)
      end
      else begin
        incr spawned;
        let jitter = 1.0 +. (skew *. Stats.Prng.float rng) in
        let w = int_of_float (float_of_int work *. jitter) in
        T.Spawn
          {
            (T.default_spec ~name:"wave-task" (plain_worker ~chunk:w ~steps:1)) with
            T.policy;
            group = "app";
          }
      end
    | `Wait ->
      st := `Spawn;
      T.Compute 1

(* ---------- work accounting ---------- *)

let total_work nr_cpus = function
  | Parallel_compute { tasks_per_core; chunk; steps; _ } ->
    let tasks = max 1 (int_of_float (tasks_per_core *. float_of_int nr_cpus)) in
    float_of_int (tasks * chunk * steps)
  | Fork_join { waves; tasks_per_wave; work; skew } ->
    float_of_int (waves * tasks_per_wave * work) *. (1.0 +. (skew /. 2.0))
  | Producer_consumer { pairs; items; work } -> float_of_int (2 * pairs * items * work)
  | Io_mix { tasks; compute; iters; _ } -> float_of_int (tasks * compute * iters)
  | Unbalanced { tasks; base; skew; steps } ->
    float_of_int (tasks * base * steps) *. (1.0 +. (skew /. 2.0))

let run (b : Setup.built) (app : app) =
  let m = b.machine in
  let nr = Kernsim.Topology.nr_cpus (M.topology m) in
  let rng = Stats.Prng.create ~seed:app.seed in
  let spec name beh = { (T.default_spec ~name beh) with T.policy = b.policy; group = "app" } in
  (match app.family with
  | Parallel_compute { tasks_per_core; chunk; steps; barrier } ->
    let tasks = max 1 (int_of_float (tasks_per_core *. float_of_int nr)) in
    if barrier then begin
      let arrive = M.new_chan m in
      let releases = List.init tasks (fun _ -> M.new_chan m) in
      List.iteri
        (fun i release ->
          ignore
            (M.spawn m
               (spec (Printf.sprintf "%s-w%d" app.name i)
                  (barrier_worker ~arrive ~release ~chunk ~steps))))
        releases;
      ignore (M.spawn m (spec (app.name ^ "-master") (barrier_master ~arrive ~releases ~n:tasks ~steps)))
    end
    else
      for i = 0 to tasks - 1 do
        ignore (M.spawn m (spec (Printf.sprintf "%s-w%d" app.name i) (plain_worker ~chunk ~steps)))
      done
  | Fork_join { waves; tasks_per_wave; work; skew } ->
    ignore
      (M.spawn m
         (spec (app.name ^ "-fork") (forker ~waves ~tasks_per_wave ~work ~skew ~rng ~policy:b.policy)))
  | Producer_consumer { pairs; items; work } ->
    for i = 0 to pairs - 1 do
      let chan = M.new_chan m in
      ignore (M.spawn m (spec (Printf.sprintf "%s-prod%d" app.name i) (producer ~items ~work ~chan)));
      ignore (M.spawn m (spec (Printf.sprintf "%s-cons%d" app.name i) (consumer ~items ~work ~chan)))
    done
  | Io_mix { tasks; compute; sleep; iters } ->
    for i = 0 to tasks - 1 do
      let rng = Stats.Prng.split rng in
      ignore
        (M.spawn m (spec (Printf.sprintf "%s-io%d" app.name i) (io_worker ~compute ~sleep ~iters ~rng)))
    done
  | Unbalanced { tasks; base; skew; steps } ->
    for i = 0 to tasks - 1 do
      let jitter = 1.0 +. (skew *. Stats.Prng.float rng) in
      let chunk = int_of_float (float_of_int base *. jitter) in
      ignore (M.spawn m (spec (Printf.sprintf "%s-u%d" app.name i) (plain_worker ~chunk ~steps)))
    done);
  let started = M.now m in
  (* run to completion, with a generous safety cap *)
  let cap = Kernsim.Time.sec 120 in
  let rec drain () =
    M.run_for m (Kernsim.Time.ms 100);
    let alive =
      List.exists (fun (task : T.t) -> task.T.state <> T.Dead) (M.tasks m)
    in
    if alive && M.now m - started < cap then drain ()
  in
  drain ();
  (* completion = the last task exit, not the polling step boundary *)
  let last_exit =
    List.fold_left
      (fun acc (task : T.t) ->
        match task.T.exited_at with Some t -> max acc (t - started) | None -> acc)
      0 (M.tasks m)
  in
  let elapsed = max 1 (if last_exit > 0 then last_exit else M.now m - started) in
  { score = total_work nr app.family /. float_of_int elapsed *. 1000.0; elapsed }
