lib/workloads/pipe_bench.ml: Kernsim List Setup
