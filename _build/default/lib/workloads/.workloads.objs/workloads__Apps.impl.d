lib/workloads/apps.ml: Kernsim List Printf Setup Stats
