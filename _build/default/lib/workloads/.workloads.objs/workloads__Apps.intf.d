lib/workloads/apps.mli: Kernsim Setup
