lib/workloads/fairness.mli: Kernsim Setup
