lib/workloads/setup.mli: Enoki Kernsim Schedulers
