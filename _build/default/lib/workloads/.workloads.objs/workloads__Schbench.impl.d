lib/workloads/schbench.ml: Kernsim List Printf Schedulers Setup Stats
