lib/workloads/rocksdb.mli: Kernsim Setup
