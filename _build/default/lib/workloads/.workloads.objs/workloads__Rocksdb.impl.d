lib/workloads/rocksdb.ml: Kernsim Printf Queue Setup Stats
