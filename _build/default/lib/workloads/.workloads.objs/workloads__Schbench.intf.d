lib/workloads/schbench.mli: Kernsim Setup
