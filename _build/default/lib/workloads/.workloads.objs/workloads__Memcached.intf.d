lib/workloads/memcached.mli: Kernsim Setup
