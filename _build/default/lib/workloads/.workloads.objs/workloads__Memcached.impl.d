lib/workloads/memcached.ml: Array Kernsim List Printf Queue Schedulers Setup Stats
