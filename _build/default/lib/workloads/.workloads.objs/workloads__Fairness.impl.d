lib/workloads/fairness.ml: Float Kernsim List Printf Setup Stats
