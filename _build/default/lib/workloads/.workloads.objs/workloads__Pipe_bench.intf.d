lib/workloads/pipe_bench.mli: Kernsim Setup
