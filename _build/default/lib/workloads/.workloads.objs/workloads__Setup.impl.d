lib/workloads/setup.ml: Enoki Kernsim Schedulers
