(** The Table 5 application-benchmark suite: 9 NAS-like and 27
    Phoronix-like synthetic applications.

    The paper compares CFS against the Enoki WFQ scheduler on the NAS
    Parallel Benchmarks and the Phoronix multicore suite.  We cannot run
    those binaries inside a simulator, so each is replaced by a synthetic
    application from one of five families chosen to span the same axis the
    suites span — {e sensitivity to load balancing}:

    - [Parallel_compute]: one task per core (optionally barrier-phased) —
      the NAS pattern; placement barely matters.
    - [Fork_join]: waves of short-lived tasks — placement of fresh tasks
      matters (video encoders, compile-like).
    - [Producer_consumer]: pipeline pairs — wakeup placement matters.
    - [Io_mix]: many tasks blocking on I/O timers — idle balancing matters
      (database/server-style, e.g. Cassandra).
    - [Unbalanced]: tasks of skewed lengths — periodic rebalancing matters
      most (compression with long mode, e.g. Zstd).

    Each app reports a throughput score (work per wall time); the bench
    harness prints the CFS-vs-WFQ percentage difference per app and the
    geometric mean, as Table 5 does. *)

type family =
  | Parallel_compute of { tasks_per_core : float; chunk : Kernsim.Time.ns; steps : int; barrier : bool }
  | Fork_join of { waves : int; tasks_per_wave : int; work : Kernsim.Time.ns; skew : float }
  | Producer_consumer of { pairs : int; items : int; work : Kernsim.Time.ns }
  | Io_mix of { tasks : int; compute : Kernsim.Time.ns; sleep : Kernsim.Time.ns; iters : int }
  | Unbalanced of { tasks : int; base : Kernsim.Time.ns; skew : float; steps : int }

type app = { name : string; unit_ : string; family : family; seed : int }

(** The 9 NAS-like applications. *)
val nas : app list

(** The 27 Phoronix-like applications (same names as the paper's Table 7). *)
val phoronix : app list

type result = {
  score : float;  (** throughput: normalised work units per second *)
  elapsed : Kernsim.Time.ns;
}

(** Run one app to completion on a freshly supplied machine. *)
val run : Setup.built -> app -> result
