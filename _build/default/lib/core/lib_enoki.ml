let process (Sched_trait.Packed ((module S), st)) (call : Message.call) : Message.reply =
  match call with
  | Get_policy -> R_int (S.get_policy st)
  | Pick_next_task { cpu; curr; curr_runtime } ->
    R_sched_opt (S.pick_next_task st ~cpu ~curr ~curr_runtime)
  | Pnt_err { cpu; pid; err; sched } ->
    S.pnt_err st ~cpu ~pid ~err ~sched;
    R_unit
  | Task_dead { pid } ->
    S.task_dead st ~pid;
    R_unit
  | Task_blocked { pid; runtime; cpu } ->
    S.task_blocked st ~pid ~runtime ~cpu;
    R_unit
  | Task_wakeup { pid; runtime; waker_cpu; sched } ->
    S.task_wakeup st ~pid ~runtime ~waker_cpu ~sched;
    R_unit
  | Task_new { pid; runtime; prio; sched } ->
    S.task_new st ~pid ~runtime ~prio ~sched;
    R_unit
  | Task_preempt { pid; runtime; cpu; sched } ->
    S.task_preempt st ~pid ~runtime ~cpu ~sched;
    R_unit
  | Task_yield { pid; runtime; cpu; sched } ->
    S.task_yield st ~pid ~runtime ~cpu ~sched;
    R_unit
  | Task_departed { pid; cpu } -> R_sched_opt (S.task_departed st ~pid ~cpu)
  | Task_affinity_changed { pid; allowed } ->
    S.task_affinity_changed st ~pid ~allowed;
    R_unit
  | Task_prio_changed { pid; prio } ->
    S.task_prio_changed st ~pid ~prio;
    R_unit
  | Task_tick { cpu; queued } ->
    S.task_tick st ~cpu ~queued;
    R_unit
  | Select_task_rq { pid; waker_cpu; allowed } ->
    R_int (S.select_task_rq st ~pid ~waker_cpu ~allowed)
  | Migrate_task_rq { pid; sched; from_cpu = _ } ->
    R_sched_opt (S.migrate_task_rq st ~pid ~sched)
  | Balance { cpu } -> R_pid_opt (S.balance st ~cpu)
  | Balance_err { cpu; pid; sched } ->
    S.balance_err st ~cpu ~pid ~sched;
    R_unit
  | Parse_hint { pid; hint } ->
    S.parse_hint st ~pid ~hint;
    R_unit
