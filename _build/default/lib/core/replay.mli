(** The replay half of record-and-replay (§3.4).

    Replay consumes a record log and drives the {e same scheduler code} that
    ran in the kernel, now at userspace, sending the recorded messages in
    per-kernel-thread order: one real OS thread is created per recorded
    kernel thread, and {!Lock} admits threads into each critical section in
    the recorded acquisition order.  Responses are validated against the
    recorded ones, flagging any divergence to the user. *)

type entry =
  | Call of { seq : int; tid : int; call : Message.call; reply : Message.reply }
  | Lock_event of { seq : int; tid : int; op : Lock.op; lock_id : int }

type report = {
  total_calls : int;
  threads : int;
  mismatches : (int * string) list;
      (** (log line, description) for every reply diverging from the
          recording *)
  wall_seconds : float;
}

(** Parse a record log (lines not matching the format raise [Failure]). *)
val parse : string -> entry list

(** [run (module S) ~log] replays the log against a fresh instance of [S]
    built with an inert context. *)
val run : (module Sched_trait.S) -> log:string -> report

val pp_report : Format.formatter -> report -> unit
