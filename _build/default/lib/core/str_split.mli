(** Tiny string helpers for the record-log format. *)

(** Split ["lhs => rhs"] into [Some (lhs, rhs)]; [None] when no arrow. *)
val split_arrow : string -> (string * string) option
