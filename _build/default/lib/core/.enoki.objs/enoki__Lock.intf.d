lib/core/lock.mli:
