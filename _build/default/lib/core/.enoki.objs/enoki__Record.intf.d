lib/core/record.mli: Lock Message
