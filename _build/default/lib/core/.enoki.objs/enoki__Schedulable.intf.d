lib/core/schedulable.mli: Format
