lib/core/ctx.ml: Kernsim
