lib/core/enoki_c.mli: Kernsim Message Record Sched_trait Upgrade
