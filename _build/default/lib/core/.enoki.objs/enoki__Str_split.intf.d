lib/core/str_split.mli:
