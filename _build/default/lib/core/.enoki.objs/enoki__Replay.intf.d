lib/core/replay.mli: Format Lock Message Sched_trait
