lib/core/message.ml: Format Hint_codec Kernsim List Printf Schedulable String
