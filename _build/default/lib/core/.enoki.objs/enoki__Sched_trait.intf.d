lib/core/sched_trait.mli: Ctx Kernsim Schedulable Upgrade
