lib/core/record.ml: Buffer Ds Fun List Lock Message Printf
