lib/core/upgrade.ml: Kernsim
