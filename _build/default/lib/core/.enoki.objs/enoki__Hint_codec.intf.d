lib/core/hint_codec.mli: Kernsim
