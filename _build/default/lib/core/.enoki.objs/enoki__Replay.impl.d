lib/core/replay.ml: Ctx Format Fun Hashtbl Int Lib_enoki List Lock Message Mutex Printf Sched_trait Str_split String Thread Unix
