lib/core/enoki_c.ml: Ctx Ds Fun Hashtbl Int Kernsim Lib_enoki List Lock Message Option Record Sched_trait Schedulable Upgrade
