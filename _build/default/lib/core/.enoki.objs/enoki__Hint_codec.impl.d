lib/core/hint_codec.ml: Buffer Char Kernsim Printf String
