lib/core/str_split.ml: String
