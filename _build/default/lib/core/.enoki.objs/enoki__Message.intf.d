lib/core/message.mli: Format Kernsim Schedulable
