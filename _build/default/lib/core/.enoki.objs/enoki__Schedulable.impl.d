lib/core/schedulable.ml: Format Printf
