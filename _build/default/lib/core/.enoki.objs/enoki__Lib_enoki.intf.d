lib/core/lib_enoki.mli: Message Sched_trait
