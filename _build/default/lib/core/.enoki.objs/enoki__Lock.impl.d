lib/core/lock.ml: Condition Fun Mutex
