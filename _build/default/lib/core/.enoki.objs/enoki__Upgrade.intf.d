lib/core/upgrade.mli: Kernsim
