lib/core/ctx.mli: Kernsim
