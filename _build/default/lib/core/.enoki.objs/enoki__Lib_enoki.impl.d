lib/core/lib_enoki.ml: Message Sched_trait
