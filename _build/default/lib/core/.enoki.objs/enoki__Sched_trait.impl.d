lib/core/sched_trait.ml: Ctx Kernsim Schedulable Upgrade
