(** State transfer across live upgrades (§3.2).

    A scheduler's [reregister_prepare] exports its state as a [transfer]
    value; the incoming version's [reregister_init] claims it.  The variant
    is extensible and each scheduler defines its own constructor, mirroring
    the paper's requirement that the state-passing data structure be
    whatever the two versions agree on — and nothing else.  A new version
    that does not recognise the old version's constructor must raise
    {!Incompatible}, which aborts the upgrade and leaves the old scheduler
    registered. *)

type transfer = ..

(** Raised by [reregister_init] when the exported state is not the shape it
    expects (the paper's "must be the same data structure" rule). *)
exception Incompatible of string

(** Outcome of a live upgrade, as measured by {!Enoki_c.upgrade}. *)
type stats = {
  pause : Kernsim.Time.ns;  (** service blackout: time the write lock was held *)
  transferred : bool;  (** whether the old scheduler exported state *)
  tasks_carried : int;  (** tasks whose state crossed the upgrade *)
}
