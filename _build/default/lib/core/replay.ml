type entry =
  | Call of { seq : int; tid : int; call : Message.call; reply : Message.reply }
  | Lock_event of { seq : int; tid : int; op : Lock.op; lock_id : int }

type report = {
  total_calls : int;
  threads : int;
  mismatches : (int * string) list;
  wall_seconds : float;
}

let parse_line seq line =
  match String.index_opt line ' ' with
  | Some 1 when line.[0] = 'C' -> (
    let body = String.sub line 2 (String.length line - 2) in
    match String.index_opt body ' ' with
    | None -> failwith ("Replay: bad call line: " ^ line)
    | Some i -> (
      let tid = int_of_string (String.sub body 0 i) in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      match Str_split.split_arrow rest with
      | Some (c, r) ->
        Call { seq; tid; call = Message.decode_call c; reply = Message.decode_reply r }
      | None -> failwith ("Replay: bad call line: " ^ line)))
  | Some 1 when line.[0] = 'L' -> (
    match String.split_on_char ' ' line with
    | [ "L"; tid; op; lock_id ] ->
      let op =
        match op with
        | "create" -> Lock.Create
        | "acquire" -> Lock.Acquire
        | "release" -> Lock.Release
        | _ -> failwith ("Replay: bad lock op: " ^ op)
      in
      Lock_event { seq; tid = int_of_string tid; op; lock_id = int_of_string lock_id }
    | _ -> failwith ("Replay: bad lock line: " ^ line))
  | _ -> failwith ("Replay: unrecognised line: " ^ line)

let parse log =
  let lines = String.split_on_char '\n' log in
  let rec go seq acc = function
    | [] -> List.rev acc
    | "" :: rest -> go (seq + 1) acc rest
    | line :: rest -> go (seq + 1) (parse_line seq line :: acc) rest
  in
  go 1 [] lines

let run (module S : Sched_trait.S) ~log =
  let entries = parse log in
  (* per-lock acquisition order, and per-thread call streams *)
  let lock_order : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let calls_by_tid : (int, (int * Message.call * Message.reply) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun entry ->
      match entry with
      | Lock_event { tid; op = Lock.Acquire; lock_id; _ } ->
        let r =
          match Hashtbl.find_opt lock_order lock_id with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add lock_order lock_id r;
            r
        in
        r := tid :: !r
      | Lock_event _ -> ()
      | Call { seq; tid; call; reply } ->
        let r =
          match Hashtbl.find_opt calls_by_tid tid with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add calls_by_tid tid r;
            r
        in
        r := (seq, call, reply) :: !r)
    entries;
  let order lock_id =
    match Hashtbl.find_opt lock_order lock_id with Some r -> List.rev !r | None -> []
  in
  (* map OS threads to recorded kernel-thread ids *)
  let tid_table : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let tid_mutex = Mutex.create () in
  let my_tid () =
    Mutex.lock tid_mutex;
    let tid = try Hashtbl.find tid_table (Thread.id (Thread.self ())) with Not_found -> -1 in
    Mutex.unlock tid_mutex;
    tid
  in
  Lock.reset_ids ();
  Lock.set_replay_mode ~order ~tid:my_tid;
  let started = Unix.gettimeofday () in
  let result =
    Fun.protect ~finally:Lock.set_passthrough_mode (fun () ->
        (* identical scheduler code, now constructed at userspace *)
        let st = S.create (Ctx.inert ()) in
        let packed = Sched_trait.Packed ((module S), st) in
        let mismatches = ref [] in
        let mm_mutex = Mutex.create () in
        let total = ref 0 in
        let run_thread (tid, calls) () =
          Mutex.lock tid_mutex;
          Hashtbl.replace tid_table (Thread.id (Thread.self ())) tid;
          Mutex.unlock tid_mutex;
          List.iter
            (fun (seq, call, expected) ->
              let got = Lib_enoki.process packed call in
              if not (Message.reply_matches expected got) then begin
                Mutex.lock mm_mutex;
                mismatches :=
                  ( seq,
                    Printf.sprintf "%s: recorded %s, replayed %s" (Message.call_name call)
                      (Message.encode_reply expected) (Message.encode_reply got) )
                  :: !mismatches;
                Mutex.unlock mm_mutex
              end)
            calls
        in
        let streams =
          Hashtbl.fold (fun tid r acc -> (tid, List.rev !r) :: acc) calls_by_tid []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        List.iter (fun (_, calls) -> total := !total + List.length calls) streams;
        let threads = List.map (fun s -> Thread.create (run_thread s) ()) streams in
        List.iter Thread.join threads;
        (!total, List.length streams, List.sort compare !mismatches))
  in
  let total_calls, threads, mismatches = result in
  { total_calls; threads; mismatches; wall_seconds = Unix.gettimeofday () -. started }

let pp_report fmt r =
  Format.fprintf fmt "replayed %d calls on %d threads in %.3fs: %s" r.total_calls r.threads
    r.wall_seconds
    (match r.mismatches with
    | [] -> "all replies matched"
    | ms -> Printf.sprintf "%d MISMATCHES" (List.length ms))
