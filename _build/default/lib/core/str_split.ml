let split_arrow s =
  let n = String.length s in
  let rec find i =
    if i + 3 >= n then None
    else if s.[i] = ' ' && s.[i + 1] = '=' && s.[i + 2] = '>' && s.[i + 3] = ' ' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 4) (n - i - 4))
