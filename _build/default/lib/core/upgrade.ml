type transfer = ..

exception Incompatible of string

type stats = { pause : Kernsim.Time.ns; transferred : bool; tasks_carried : int }
