(** The libEnoki processing function.

    When a scheduler module registers, libEnoki registers this processing
    function with Enoki-C; it parses each per-function message, calls the
    corresponding scheduler function, and writes the return value back into
    a reply (§3.1).  Replay drives the very same function, which is what
    guarantees the identical scheduler code runs in the kernel and at
    userspace. *)

val process : Sched_trait.packed -> Message.call -> Message.reply
