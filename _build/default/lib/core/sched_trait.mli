(** The EnokiScheduler trait (Table 1 of the paper).

    A scheduler module implements this signature and nothing else: it
    manages only its own state in response to these calls.  The kernel's
    core scheduling code decides when each function is called, and Enoki-C
    ({!Enoki_c}) manages all kernel state.

    Schedulables passed in carry ownership; [pick_next_task] returns one as
    proof of a safe placement, and [migrate_task_rq] / [task_departed]
    return the superseded token.  Shared mutable state inside the scheduler
    must be guarded with {!Lock} so record/replay can reproduce
    concurrency (§3.4). *)

type ns = Kernsim.Time.ns

module type S = sig
  type t

  val name : string

  (** Construct the scheduler (called when the module is loaded). *)
  val create : Ctx.t -> t

  (** The policy number user tasks use to attach to this scheduler. *)
  val get_policy : t -> int

  (** Pick the next task for [cpu].  [curr] is the (still runnable) current
      task's fresh token when there is one. *)
  val pick_next_task :
    t -> cpu:int -> curr:Schedulable.t option -> curr_runtime:ns -> Schedulable.t option

  (** The chosen task could not be scheduled; ownership of the rejected
      token returns to the scheduler. *)
  val pnt_err : t -> cpu:int -> pid:int -> err:string -> sched:Schedulable.t option -> unit

  val task_dead : t -> pid:int -> unit

  val task_blocked : t -> pid:int -> runtime:ns -> cpu:int -> unit

  val task_wakeup : t -> pid:int -> runtime:ns -> waker_cpu:int -> sched:Schedulable.t -> unit

  val task_new : t -> pid:int -> runtime:ns -> prio:int -> sched:Schedulable.t -> unit

  val task_preempt : t -> pid:int -> runtime:ns -> cpu:int -> sched:Schedulable.t -> unit

  val task_yield : t -> pid:int -> runtime:ns -> cpu:int -> sched:Schedulable.t -> unit

  (** A task left this scheduler; return the token it held, if any. *)
  val task_departed : t -> pid:int -> cpu:int -> Schedulable.t option

  val task_affinity_changed : t -> pid:int -> allowed:int list -> unit

  val task_prio_changed : t -> pid:int -> prio:int -> unit

  (** A timer fired on [cpu] (the periodic tick, or a timer this scheduler
      armed via {!Ctx.t.set_timer}).  [queued] = a task is running there. *)
  val task_tick : t -> cpu:int -> queued:bool -> unit

  (** Choose the run-queue for a task; [allowed] is the task's cpumask
      and the returned cpu must be drawn from it. *)
  val select_task_rq : t -> pid:int -> waker_cpu:int -> allowed:int list -> int

  (** The kernel moved [pid] to a new run-queue; [sched] is the token for
      the new cpu.  Return the old token (ownership discipline: the
      scheduler should hold validation for at most one cpu). *)
  val migrate_task_rq : t -> pid:int -> sched:Schedulable.t -> Schedulable.t option

  (** Offer a task to migrate to [cpu] for load balancing. *)
  val balance : t -> cpu:int -> int option

  val balance_err : t -> cpu:int -> pid:int -> sched:Schedulable.t option -> unit

  (** Live upgrade (§3.2): export state to the next version... *)
  val reregister_prepare : t -> Upgrade.transfer option

  (** ...and claim state from the previous one.  Must raise
      {!Upgrade.Incompatible} on an unrecognised transfer shape. *)
  val reregister_init : Ctx.t -> Upgrade.transfer option -> t

  (** A user-to-kernel hint arrived (Enoki-C drains the registered hint
      ring and synchronously parses each entry, §3.3). *)
  val parse_hint : t -> pid:int -> hint:Kernsim.Task.hint -> unit
end

(** No-op implementations of the optional surface, for inclusion:
    [include Sched_trait.Defaults (struct type nonrec t = t end)] then
    shadow what the scheduler actually implements. *)
module Defaults (T : sig
  type t
end) : sig
  val pnt_err : T.t -> cpu:int -> pid:int -> err:string -> sched:Schedulable.t option -> unit

  val task_yield : T.t -> pid:int -> runtime:ns -> cpu:int -> sched:Schedulable.t -> unit

  val task_affinity_changed : T.t -> pid:int -> allowed:int list -> unit

  val task_prio_changed : T.t -> pid:int -> prio:int -> unit

  val task_tick : T.t -> cpu:int -> queued:bool -> unit

  val balance : T.t -> cpu:int -> int option

  val balance_err : T.t -> cpu:int -> pid:int -> sched:Schedulable.t option -> unit

  val reregister_prepare : T.t -> Upgrade.transfer option

  val parse_hint : T.t -> pid:int -> hint:Kernsim.Task.hint -> unit
end

(** A scheduler module packed with an instance of its state. *)
type packed = Packed : (module S with type t = 'a) * 'a -> packed
