type ns = Kernsim.Time.ns

module type S = sig
  type t

  val name : string

  val create : Ctx.t -> t

  val get_policy : t -> int

  val pick_next_task :
    t -> cpu:int -> curr:Schedulable.t option -> curr_runtime:ns -> Schedulable.t option

  val pnt_err : t -> cpu:int -> pid:int -> err:string -> sched:Schedulable.t option -> unit

  val task_dead : t -> pid:int -> unit

  val task_blocked : t -> pid:int -> runtime:ns -> cpu:int -> unit

  val task_wakeup : t -> pid:int -> runtime:ns -> waker_cpu:int -> sched:Schedulable.t -> unit

  val task_new : t -> pid:int -> runtime:ns -> prio:int -> sched:Schedulable.t -> unit

  val task_preempt : t -> pid:int -> runtime:ns -> cpu:int -> sched:Schedulable.t -> unit

  val task_yield : t -> pid:int -> runtime:ns -> cpu:int -> sched:Schedulable.t -> unit

  val task_departed : t -> pid:int -> cpu:int -> Schedulable.t option

  val task_affinity_changed : t -> pid:int -> allowed:int list -> unit

  val task_prio_changed : t -> pid:int -> prio:int -> unit

  val task_tick : t -> cpu:int -> queued:bool -> unit

  val select_task_rq : t -> pid:int -> waker_cpu:int -> allowed:int list -> int

  val migrate_task_rq : t -> pid:int -> sched:Schedulable.t -> Schedulable.t option

  val balance : t -> cpu:int -> int option

  val balance_err : t -> cpu:int -> pid:int -> sched:Schedulable.t option -> unit

  val reregister_prepare : t -> Upgrade.transfer option

  val reregister_init : Ctx.t -> Upgrade.transfer option -> t

  val parse_hint : t -> pid:int -> hint:Kernsim.Task.hint -> unit
end

module Defaults (T : sig
  type t
end) =
struct
  let pnt_err (_ : T.t) ~cpu:_ ~pid:_ ~err:_ ~sched:_ = ()

  let task_yield (_ : T.t) ~pid:_ ~runtime:_ ~cpu:_ ~sched:_ = ()

  let task_affinity_changed (_ : T.t) ~pid:_ ~allowed:_ = ()

  let task_prio_changed (_ : T.t) ~pid:_ ~prio:_ = ()

  let task_tick (_ : T.t) ~cpu:_ ~queued:_ = ()

  let balance (_ : T.t) ~cpu:_ = None

  let balance_err (_ : T.t) ~cpu:_ ~pid:_ ~sched:_ = ()

  let reregister_prepare (_ : T.t) = None

  let parse_hint (_ : T.t) ~pid:_ ~hint:_ = ()
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed
