type Kernsim.Task.hint += Opaque of string

type codec = {
  name : string;
  enc : Kernsim.Task.hint -> string option;
  dec : string -> Kernsim.Task.hint;
}

let codecs : codec list ref = ref []

let register ~name ~encode ~decode =
  codecs := { name; enc = encode; dec = decode } :: !codecs

(* Escape so encoded hints survive the space/newline-delimited log. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ',' | '=' ->
        Buffer.add_char buf c
      | _ -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let encode hint =
  let rec try_codecs = function
    | [] -> (
      match hint with
      | Opaque s -> "opaque:" ^ escape s
      | _ -> "opaque:" ^ escape "?")
    | c :: rest -> (
      match c.enc hint with
      | Some payload -> c.name ^ ":" ^ escape payload
      | None -> try_codecs rest)
  in
  try_codecs !codecs

let decode s =
  match String.index_opt s ':' with
  | None -> Opaque s
  | Some i ->
    let name = String.sub s 0 i in
    let payload = unescape (String.sub s (i + 1) (String.length s - i - 1)) in
    let rec find = function
      | [] -> Opaque payload
      | c :: rest -> if c.name = name then c.dec payload else find rest
    in
    find !codecs
