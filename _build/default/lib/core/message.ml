type ns = Kernsim.Time.ns

type call =
  | Get_policy
  | Pick_next_task of { cpu : int; curr : Schedulable.t option; curr_runtime : ns }
  | Pnt_err of { cpu : int; pid : int; err : string; sched : Schedulable.t option }
  | Task_dead of { pid : int }
  | Task_blocked of { pid : int; runtime : ns; cpu : int }
  | Task_wakeup of { pid : int; runtime : ns; waker_cpu : int; sched : Schedulable.t }
  | Task_new of { pid : int; runtime : ns; prio : int; sched : Schedulable.t }
  | Task_preempt of { pid : int; runtime : ns; cpu : int; sched : Schedulable.t }
  | Task_yield of { pid : int; runtime : ns; cpu : int; sched : Schedulable.t }
  | Task_departed of { pid : int; cpu : int }
  | Task_affinity_changed of { pid : int; allowed : int list }
  | Task_prio_changed of { pid : int; prio : int }
  | Task_tick of { cpu : int; queued : bool }
  | Select_task_rq of { pid : int; waker_cpu : int; allowed : int list }
  | Migrate_task_rq of { pid : int; from_cpu : int; sched : Schedulable.t }
  | Balance of { cpu : int }
  | Balance_err of { cpu : int; pid : int; sched : Schedulable.t option }
  | Parse_hint of { pid : int; hint : Kernsim.Task.hint }

type reply =
  | R_unit
  | R_int of int
  | R_pid_opt of int option
  | R_sched_opt of Schedulable.t option

(* sched tokens travel as pid.cpu.gen triples; "-" is None *)
let enc_sched s =
  Printf.sprintf "%d.%d.%d" (Schedulable.pid s) (Schedulable.cpu s) (Schedulable.generation s)

let enc_sched_opt = function None -> "-" | Some s -> enc_sched s

let dec_sched s =
  match String.split_on_char '.' s with
  | [ pid; cpu; gen ] ->
    Schedulable.Private.create ~pid:(int_of_string pid) ~cpu:(int_of_string cpu)
      ~gen:(int_of_string gen)
  | _ -> failwith ("Message: bad sched " ^ s)

let dec_sched_opt s = if s = "-" then None else Some (dec_sched s)

let enc_ints l = match l with [] -> "-" | l -> String.concat "," (List.map string_of_int l)

let dec_ints s =
  if s = "-" then [] else List.map int_of_string (String.split_on_char ',' s)

let call_name = function
  | Get_policy -> "get_policy"
  | Pick_next_task _ -> "pick_next_task"
  | Pnt_err _ -> "pnt_err"
  | Task_dead _ -> "task_dead"
  | Task_blocked _ -> "task_blocked"
  | Task_wakeup _ -> "task_wakeup"
  | Task_new _ -> "task_new"
  | Task_preempt _ -> "task_preempt"
  | Task_yield _ -> "task_yield"
  | Task_departed _ -> "task_departed"
  | Task_affinity_changed _ -> "task_affinity_changed"
  | Task_prio_changed _ -> "task_prio_changed"
  | Task_tick _ -> "task_tick"
  | Select_task_rq _ -> "select_task_rq"
  | Migrate_task_rq _ -> "migrate_task_rq"
  | Balance _ -> "balance"
  | Balance_err _ -> "balance_err"
  | Parse_hint _ -> "parse_hint"

(* [err] strings are constrained to identifier-ish text by the framework;
   escape anything else defensively. *)
let enc_str s =
  String.map (fun c -> if c = ' ' || c = '\n' || c = '\t' then '_' else c) s

let encode_call c =
  match c with
  | Get_policy -> "get_policy"
  | Pick_next_task { cpu; curr; curr_runtime } ->
    Printf.sprintf "pick_next_task %d %s %d" cpu (enc_sched_opt curr) curr_runtime
  | Pnt_err { cpu; pid; err; sched } ->
    Printf.sprintf "pnt_err %d %d %s %s" cpu pid (enc_str err) (enc_sched_opt sched)
  | Task_dead { pid } -> Printf.sprintf "task_dead %d" pid
  | Task_blocked { pid; runtime; cpu } -> Printf.sprintf "task_blocked %d %d %d" pid runtime cpu
  | Task_wakeup { pid; runtime; waker_cpu; sched } ->
    Printf.sprintf "task_wakeup %d %d %d %s" pid runtime waker_cpu (enc_sched sched)
  | Task_new { pid; runtime; prio; sched } ->
    Printf.sprintf "task_new %d %d %d %s" pid runtime prio (enc_sched sched)
  | Task_preempt { pid; runtime; cpu; sched } ->
    Printf.sprintf "task_preempt %d %d %d %s" pid runtime cpu (enc_sched sched)
  | Task_yield { pid; runtime; cpu; sched } ->
    Printf.sprintf "task_yield %d %d %d %s" pid runtime cpu (enc_sched sched)
  | Task_departed { pid; cpu } -> Printf.sprintf "task_departed %d %d" pid cpu
  | Task_affinity_changed { pid; allowed } ->
    Printf.sprintf "task_affinity_changed %d %s" pid (enc_ints allowed)
  | Task_prio_changed { pid; prio } -> Printf.sprintf "task_prio_changed %d %d" pid prio
  | Task_tick { cpu; queued } -> Printf.sprintf "task_tick %d %b" cpu queued
  | Select_task_rq { pid; waker_cpu; allowed } ->
    Printf.sprintf "select_task_rq %d %d %s" pid waker_cpu (enc_ints allowed)
  | Migrate_task_rq { pid; from_cpu; sched } ->
    Printf.sprintf "migrate_task_rq %d %d %s" pid from_cpu (enc_sched sched)
  | Balance { cpu } -> Printf.sprintf "balance %d" cpu
  | Balance_err { cpu; pid; sched } ->
    Printf.sprintf "balance_err %d %d %s" cpu pid (enc_sched_opt sched)
  | Parse_hint { pid; hint } -> Printf.sprintf "parse_hint %d %s" pid (Hint_codec.encode hint)

let decode_call line =
  let int = int_of_string in
  match String.split_on_char ' ' (String.trim line) with
  | [ "get_policy" ] -> Get_policy
  | [ "pick_next_task"; cpu; curr; rt ] ->
    Pick_next_task { cpu = int cpu; curr = dec_sched_opt curr; curr_runtime = int rt }
  | [ "pnt_err"; cpu; pid; err; sched ] ->
    Pnt_err { cpu = int cpu; pid = int pid; err; sched = dec_sched_opt sched }
  | [ "task_dead"; pid ] -> Task_dead { pid = int pid }
  | [ "task_blocked"; pid; rt; cpu ] ->
    Task_blocked { pid = int pid; runtime = int rt; cpu = int cpu }
  | [ "task_wakeup"; pid; rt; waker; sched ] ->
    Task_wakeup { pid = int pid; runtime = int rt; waker_cpu = int waker; sched = dec_sched sched }
  | [ "task_new"; pid; rt; prio; sched ] ->
    Task_new { pid = int pid; runtime = int rt; prio = int prio; sched = dec_sched sched }
  | [ "task_preempt"; pid; rt; cpu; sched ] ->
    Task_preempt { pid = int pid; runtime = int rt; cpu = int cpu; sched = dec_sched sched }
  | [ "task_yield"; pid; rt; cpu; sched ] ->
    Task_yield { pid = int pid; runtime = int rt; cpu = int cpu; sched = dec_sched sched }
  | [ "task_departed"; pid; cpu ] -> Task_departed { pid = int pid; cpu = int cpu }
  | [ "task_affinity_changed"; pid; allowed ] ->
    Task_affinity_changed { pid = int pid; allowed = dec_ints allowed }
  | [ "task_prio_changed"; pid; prio ] -> Task_prio_changed { pid = int pid; prio = int prio }
  | [ "task_tick"; cpu; queued ] -> Task_tick { cpu = int cpu; queued = bool_of_string queued }
  | [ "select_task_rq"; pid; waker; allowed ] ->
    Select_task_rq { pid = int pid; waker_cpu = int waker; allowed = dec_ints allowed }
  | [ "migrate_task_rq"; pid; from_cpu; sched ] ->
    Migrate_task_rq { pid = int pid; from_cpu = int from_cpu; sched = dec_sched sched }
  | [ "balance"; cpu ] -> Balance { cpu = int cpu }
  | [ "balance_err"; cpu; pid; sched ] ->
    Balance_err { cpu = int cpu; pid = int pid; sched = dec_sched_opt sched }
  | [ "parse_hint"; pid; hint ] -> Parse_hint { pid = int pid; hint = Hint_codec.decode hint }
  | _ -> failwith ("Message: cannot decode call: " ^ line)

let encode_reply = function
  | R_unit -> "unit"
  | R_int i -> Printf.sprintf "int %d" i
  | R_pid_opt None -> "pid -"
  | R_pid_opt (Some p) -> Printf.sprintf "pid %d" p
  | R_sched_opt s -> Printf.sprintf "sched %s" (enc_sched_opt s)

let decode_reply s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "unit" ] -> R_unit
  | [ "int"; i ] -> R_int (int_of_string i)
  | [ "pid"; "-" ] -> R_pid_opt None
  | [ "pid"; p ] -> R_pid_opt (Some (int_of_string p))
  | [ "sched"; sd ] -> R_sched_opt (dec_sched_opt sd)
  | _ -> failwith ("Message: cannot decode reply: " ^ s)

let reply_matches a b =
  match (a, b) with
  | R_unit, R_unit -> true
  | R_int x, R_int y -> x = y
  | R_pid_opt x, R_pid_opt y -> x = y
  | R_sched_opt None, R_sched_opt None -> true
  | R_sched_opt (Some x), R_sched_opt (Some y) ->
    Schedulable.pid x = Schedulable.pid y && Schedulable.cpu x = Schedulable.cpu y
  | _ -> false

let pp_call fmt c = Format.pp_print_string fmt (encode_call c)

let pp_reply fmt r = Format.pp_print_string fmt (encode_reply r)
