type t = { pid : int; cpu : int; gen : int; mutable live : bool }

let pid t = t.pid

let cpu t = t.cpu

let generation t = t.gen

let is_live t = t.live

let describe t =
  Printf.sprintf "sched(pid=%d cpu=%d gen=%d%s)" t.pid t.cpu t.gen
    (if t.live then "" else " consumed")

let pp fmt t = Format.pp_print_string fmt (describe t)

module Private = struct
  let create ~pid ~cpu ~gen = { pid; cpu; gen; live = true }

  let consume t = t.live <- false
end
