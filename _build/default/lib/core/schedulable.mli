(** The [Schedulable] capability (§3.1 of the paper).

    A Schedulable represents a task together with the core it may safely be
    scheduled on.  The framework mints one at every task state transition
    (new, wakeup, preempt, yield, migrate, and as the current task in
    [pick_next_task]) and hands {e ownership} to the scheduler; the
    scheduler returns it from [pick_next_task] as proof that running the
    task on that core is safe.

    Rust enforces the ownership discipline at compile time (the type is
    neither [Copy] nor [Clone]).  OCaml has no affine types, so this module
    enforces the same protocol dynamically: a token is {e consumed} when
    returned to the framework, and any later use — or use on the wrong core,
    or use of a token that a newer state transition superseded — fails
    validation and is routed back through [pnt_err], exactly the
    recoverable-error path the paper describes.  DESIGN.md discusses the
    substitution. *)

type t

val pid : t -> int

(** The core this token licenses the task to run on. *)
val cpu : t -> int

(** Generation stamp; a newer token for the same pid supersedes this one. *)
val generation : t -> int

(** False once the token has been returned to (and consumed by) Enoki. *)
val is_live : t -> bool

val describe : t -> string

val pp : Format.formatter -> t -> unit

(** Framework-internal operations.  Scheduler modules must not call these;
    doing so is the moral equivalent of [unsafe] in the paper's Rust. *)
module Private : sig
  val create : pid:int -> cpu:int -> gen:int -> t

  (** Mark the token used; later validation of it fails. *)
  val consume : t -> unit
end
