type t = Prng.t -> float

let sample t rng = t rng

let constant v _ = v

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform";
  fun rng -> lo +. ((hi -. lo) *. Prng.float rng)

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential";
  fun rng ->
    let u = 1.0 -. Prng.float rng in
    -.mean *. log u

let pareto ~alpha ~lo ~hi =
  if alpha <= 0.0 || lo <= 0.0 || hi < lo then invalid_arg "Dist.pareto";
  (* inverse CDF of the bounded Pareto *)
  let la = lo ** alpha and ha = hi ** alpha in
  fun rng ->
    let u = Prng.float rng in
    ((-.((u *. ha) -. u -. ha) /. (ha *. la)) ** (-1.0 /. alpha))

let lognormal ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Dist.lognormal";
  fun rng ->
    (* Box-Muller *)
    let u1 = 1.0 -. Prng.float rng and u2 = Prng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    exp (mu +. (sigma *. z))

let mixture parts =
  if parts = [] then invalid_arg "Dist.mixture";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
  if total <= 0.0 then invalid_arg "Dist.mixture: weights";
  fun rng ->
    let x = Prng.float rng *. total in
    let rec pick acc = function
      | [ (_, d) ] -> sample d rng
      | (w, d) :: rest -> if x < acc +. w then sample d rng else pick (acc +. w) rest
      | [] -> assert false
    in
    pick 0.0 parts

let discrete pairs = mixture (List.map (fun (w, v) -> (w, constant v)) pairs)

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf";
  (* Precomputed inverse-CDF table; exact for the modest n workloads use. *)
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun rng ->
    let u = Prng.float rng in
    (* binary search for the first cdf entry >= u *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    in
    float_of_int (search 0 (n - 1))

let mean_of_samples t rng ~n =
  if n <= 0 then invalid_arg "Dist.mean_of_samples";
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. t rng
  done;
  !acc /. float_of_int n
