let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stdev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> log (Float.max 1e-9 (Float.abs x))) xs in
    exp (mean logs)

let percent_diff ~baseline ~value =
  if baseline = 0.0 then 0.0 else (baseline -. value) /. baseline *. 100.0

let min = function [] -> 0.0 | x :: xs -> List.fold_left Float.min x xs

let max = function [] -> 0.0 | x :: xs -> List.fold_left Float.max x xs
