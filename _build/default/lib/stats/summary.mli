(** Small-sample summary statistics for benchmark reporting. *)

val mean : float list -> float

val stdev : float list -> float

(** Geometric mean of the absolute values; Table 5 of the paper reports the
    geometric mean of per-benchmark percentage differences. *)
val geomean : float list -> float

(** [percent_diff ~baseline ~value] is the slowdown of [value] relative to
    [baseline] in percent (positive = slower), for higher-is-better
    metrics. *)
val percent_diff : baseline:float -> value:float -> float

val min : float list -> float

val max : float list -> float
