lib/stats/prng.mli:
