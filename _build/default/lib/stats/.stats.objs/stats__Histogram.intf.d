lib/stats/histogram.mli:
