lib/stats/summary.mli:
