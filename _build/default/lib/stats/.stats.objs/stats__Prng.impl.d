lib/stats/prng.ml: Array Int64
