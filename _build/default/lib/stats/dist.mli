(** Sampling from the distributions the workload generators need.

    A distribution is represented as a sampler closure over a {!Prng.t}
    supplied at sample time, so a single distribution value can drive many
    independent streams. *)

type t

(** Draw one sample. *)
val sample : t -> Prng.t -> float

(** Always [v]. *)
val constant : float -> t

(** Uniform on [lo, hi). *)
val uniform : lo:float -> hi:float -> t

(** Exponential with the given [mean] (rate 1/mean); models Poisson
    inter-arrival gaps for the open-loop load generators. *)
val exponential : mean:float -> t

(** Bounded Pareto on [lo, hi] with shape [alpha]; heavy-tailed service
    times. *)
val pareto : alpha:float -> lo:float -> hi:float -> t

(** Log-normal parameterised by the underlying normal's [mu]/[sigma].
    The Facebook ETC key-value workload uses generalised-Pareto/log-normal
    shapes; we use this for value-size-driven service times. *)
val lognormal : mu:float -> sigma:float -> t

(** Discrete mixture: [(weight, dist)] pairs, weights need not sum to 1. *)
val mixture : (float * t) list -> t

(** Finite empirical distribution given as [(weight, value)] pairs. *)
val discrete : (float * float) list -> t

(** Zipf-like rank distribution over [n] items with skew [s]; samples a rank
    in [0, n). Uses the rejection-inversion method. *)
val zipf : n:int -> s:float -> t

(** Mean of [n] samples — test helper. *)
val mean_of_samples : t -> Prng.t -> n:int -> float
