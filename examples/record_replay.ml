(* Record and replay (§3.4): stream a binary record log of a run to disk,
   replay it against the identical scheduler code at "userspace" — on real
   OS threads, with every lock admitting threads in the recorded order —
   and validate the replies.  A wrong-scheduler replay diverges, and
   bisection pinpoints the first divergent call; a recording with ring
   drops is refused instead of silently validating against holes.

     dune exec examples/record_replay.exe *)

module T = Kernsim.Task
module M = Kernsim.Machine

let mixed_workload machine =
  let ch = M.new_chan machine in
  for i = 0 to 5 do
    let beh =
      let steps = ref 200 in
      fun _ ->
        if !steps = 0 then T.Exit
        else begin
          decr steps;
          match !steps mod 4 with
          | 0 -> T.Compute (Kernsim.Time.us 300)
          | 1 -> T.Wake ch
          | 2 -> if i mod 2 = 0 then T.Block ch else T.Yield
          | _ -> T.Sleep (Kernsim.Time.us 100)
        end
    in
    ignore
      (M.spawn machine { (T.default_spec ~name:(Printf.sprintf "mix-%d" i) beh) with T.policy = 0 })
  done

let () =
  (* 1. record a run of the WFQ scheduler, streaming the binary log to a
     file as the ring drains (bounded memory, however long the run) *)
  let path = Filename.temp_file "wfq" ".rec" in
  let record = Enoki.Record.create_file ~path () in
  let enoki = Enoki.Enoki_c.create ~record (module Schedulers.Wfq) in
  let machine =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
      ()
  in
  mixed_workload machine;
  M.run_for machine (Kernsim.Time.ms 500);
  Enoki.Record.close record;
  let d = Enoki.Record.dropped record in
  Printf.printf "recorded %d events to %s (%s)\n" (Enoki.Record.length record) path
    (if d > 0 then Printf.sprintf "WARNING: %d EVENTS DROPPED" d else "0 dropped");

  (* 2. replay the log against the same scheduler code, at userspace *)
  let log = Enoki.Record.load_file ~path in
  let report = Enoki.Replay.run (module Schedulers.Wfq) ~log in
  Format.printf "%a@." Enoki.Replay.pp_report report;

  (* 3. replaying a *different* scheduler flags divergence, and bisection
     narrows the log to the first call whose reply went wrong *)
  let wrong = Enoki.Replay.run (module Schedulers.Fifo_sched) ~log in
  Printf.printf "replaying the wrong scheduler: %d reply mismatches flagged\n"
    (List.length wrong.Enoki.Replay.mismatches);
  (match Enoki.Replay.bisect (module Schedulers.Fifo_sched) ~log with
  | None -> assert false
  | Some dv ->
    Printf.printf "bisect: minimal failing prefix %d entries; first divergence at %d:\n"
      dv.Enoki.Replay.failing_prefix dv.Enoki.Replay.seq;
    Printf.printf "  %s\n" dv.Enoki.Replay.detail);
  Sys.remove path;

  (* 4. a recording that overran its ring has holes: replay refuses it
     loudly instead of validating against a corrupt history *)
  let tiny = Enoki.Record.create ~capacity:8 () in
  let enoki2 = Enoki.Enoki_c.create ~record:tiny (module Schedulers.Wfq) in
  let machine2 =
    M.create ~topology:Kernsim.Topology.one_socket
      ~classes:[ Enoki.Enoki_c.factory enoki2; Kernsim.Cfs.factory () ]
      ()
  in
  mixed_workload machine2;
  M.run_for machine2 (Kernsim.Time.ms 500);
  assert (Enoki.Record.dropped tiny > 0);
  let holey = Enoki.Record.contents tiny in
  (match Enoki.Replay.run (module Schedulers.Wfq) ~log:holey with
  | exception Enoki.Replay.Incomplete_log { dropped } ->
    Printf.printf "replay refused an incomplete log (%d events dropped), as it must\n" dropped
  | _ -> assert false);

  assert (report.Enoki.Replay.mismatches = []);
  assert (wrong.Enoki.Replay.mismatches <> []);
  print_endline "record/replay OK"
