(* Hierarchical timing wheel, Linux-style, specialised for a discrete-event
   simulator: a strict priority queue over [(time, seq)] keys where [time]
   only moves forward (the popper's clock is monotone) and ties are broken
   FIFO by [seq].

   Layout: 4 levels x 256 slots.  An event whose time differs from the
   cursor first in byte [l] (little-endian byte of the int) lives at level
   [l], slot [byte_l time].  Events differing in bits >= 32 go to an
   overflow binary heap.  Invariants maintained by [place]:

   - every stored time is >= cursor;
   - wheel events agree with the cursor on bits >= 32 (so everything in
     the overflow tier is strictly later than everything in the wheel);
   - at level l >= 1, occupied digits are > byte_l cursor; at level 0 the
     digits are >= byte_0 cursor, and all events sharing a level-0 slot
     have exactly the same time.

   Advancing works like Linux's cascade: when level 0 is empty, the lowest
   occupied (level, digit) is opened, the cursor jumps to the start of that
   range (lower bytes zeroed), and its list is re-placed one level down in
   order.  When the whole wheel is empty the cursor jumps to the overflow
   minimum and every overflow event now within the 2^32 horizon migrates in
   heap order — which is exactly (time, seq) order, so FIFO stability
   survives the tier change.

   Slots are sentinel-headed intrusive doubly-linked lists; one-shot nodes
   are recycled through a free list so steady-state [add]/[pop_exn] does
   not allocate.  [make_timer]/[arm]/[cancel] give callers a reusable,
   O(1)-cancellable cell for recurring timers. *)

type 'a node = {
  mutable time : int;
  mutable seq : int;
  mutable value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
  (* -3 sentinel, -2 detached, -1 overflow heap, >= 0 slot index *)
  mutable where : int;
  mutable heap_idx : int;
  pooled : bool;
}

type 'a timer = 'a node

type 'a t = {
  dummy : 'a;
  mutable cursor : int;
  slots : 'a node array; (* 1024 sentinels, index = level*256 + digit *)
  bitmap : int array; (* 4 levels x 8 words x 32 bits *)
  overflow : 'a node Heap.t;
  nil : 'a node;
  mutable pool : 'a node; (* free list chained through [next]; [nil] = empty *)
  mutable count : int;
  occ : int array; (* per-level count of occupied slots *)
  (* No occupied level-0 digit is < [l0from]: pops sweep it forward, so
     the level-0 bitmap scan usually starts at the right word. *)
  mutable l0from : int;
}

let levels = 4
let horizon_bits = 32

let cmp_node a b =
  if a.time < b.time then -1
  else if a.time > b.time then 1
  else if a.seq < b.seq then -1
  else if a.seq > b.seq then 1
  else 0

let make_sentinel dummy =
  let rec s =
    { time = 0; seq = 0; value = dummy; prev = s; next = s; where = -3;
      heap_idx = -1; pooled = false }
  in
  s

let create ~dummy () =
  let nil = make_sentinel dummy in
  { dummy;
    cursor = 0;
    slots = Array.init (levels * 256) (fun _ -> make_sentinel dummy);
    bitmap = Array.make (levels * 8) 0;
    overflow = Heap.create ~on_move:(fun n i -> n.heap_idx <- i) ~compare:cmp_node ();
    nil;
    pool = nil;
    count = 0;
    occ = Array.make levels 0;
    l0from = 0 }

let length t = t.count
let is_empty t = t.count = 0

(* Only called on empty<->nonempty slot transitions, so [occ] counts
   occupied slots exactly. *)
let set_bit t level digit =
  let i = (level lsl 3) + (digit lsr 5) in
  t.bitmap.(i) <- t.bitmap.(i) lor (1 lsl (digit land 31));
  t.occ.(level) <- t.occ.(level) + 1

let clear_bit t level digit =
  let i = (level lsl 3) + (digit lsr 5) in
  t.bitmap.(i) <- t.bitmap.(i) land lnot (1 lsl (digit land 31));
  t.occ.(level) <- t.occ.(level) - 1

(* Index of the lowest set bit of a non-zero 32-bit word, via the classic
   De Bruijn multiply — branch- and allocation-free (this runs on every
   bitmap scan of the pop hot path). *)
let debruijn32 =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 x = Array.unsafe_get debruijn32 ((((x land (-x)) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* Lowest occupied digit at [level], or -1.  [first_from] is toplevel on
   purpose: a local recursive closure here would allocate on every bitmap
   scan of the pop hot path. *)
let rec first_from bitmap base w =
  if w = 8 then -1
  else
    let word = Array.unsafe_get bitmap (base + w) in
    if word <> 0 then (w lsl 5) + ctz32 word else first_from bitmap base (w + 1)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let append sent n =
  n.prev <- sent.prev;
  n.next <- sent;
  sent.prev.next <- n;
  sent.prev <- n

(* File [n] under its level/slot (or overflow) relative to the current
   cursor.  Assumes n.time >= cursor. *)
let place t n =
  let x = n.time lxor t.cursor in
  if x lsr horizon_bits <> 0 then begin
    n.where <- -1;
    Heap.add t.overflow n
  end
  else begin
    let level =
      if x >= 0x100_0000 then 3
      else if x >= 0x1_0000 then 2
      else if x >= 0x100 then 1
      else 0
    in
    let digit = (n.time lsr (level lsl 3)) land 0xff in
    let w = (level lsl 8) lor digit in
    let sent = t.slots.(w) in
    if sent.next == sent then set_bit t level digit;
    if level = 0 && digit < t.l0from then t.l0from <- digit;
    append sent n;
    n.where <- w
  end

(* Lowest occupied (level >= 1, digit), encoded level*256+digit, or -1. *)
let rec lowest_upper_from t l =
  if l >= levels then -1
  else if t.occ.(l) = 0 then lowest_upper_from t (l + 1)
  else (l lsl 8) lor first_from t.bitmap (l lsl 3) 0

let lowest_upper_slot t = lowest_upper_from t 1

(* Cursor value that opening slot [w] commits to: higher bytes kept, the
   slot's digit installed, lower bytes zeroed — the start of the slot's
   time range, hence a lower bound on every event inside it. *)
let cascade_target t w =
  let level = w lsr 8 and digit = w land 0xff in
  let keep = t.cursor land lnot ((1 lsl ((level + 1) lsl 3)) - 1) in
  keep lor (digit lsl (level lsl 3))

let rec drain_replace t sent =
  let n = sent.next in
  if n != sent then begin
    unlink n;
    place t n;
    drain_replace t sent
  end

(* Open slot [w]: move the cursor to the start of its range and re-place
   its events (order-preserving, so same-time events keep their FIFO
   order). *)
let cascade t w =
  t.cursor <- cascade_target t w;
  clear_bit t (w lsr 8) (w land 0xff);
  drain_replace t t.slots.(w)

let rec migrate_overflow t =
  match Heap.peek t.overflow with
  | Some n when (n.time lxor t.cursor) lsr horizon_bits = 0 ->
      ignore (Heap.pop t.overflow);
      place t n;
      migrate_overflow t
  | _ -> ()

(* The wheel proper is empty: jump the cursor to the overflow minimum and
   migrate everything now inside the horizon.  Heap pop order is (time,
   seq) order, so migrated ties land in their slots FIFO-stable. *)
let jump t m =
  t.cursor <- m;
  migrate_overflow t

(* Advance the structure until the minimum event sits in a level-0 slot
   (where all events share one exact time) and its time is <= [until];
   returns that time, or [max_int] if the earliest event is later than
   [until] (or the wheel is empty).

   The gate matters for correctness, not just cost: the cursor never
   advances past [until], so a caller who learns "nothing before [until]"
   can still insert at any time >= [until] without being clamped forward.
   Cursor moves (cascade targets, the overflow minimum, popped times) are
   all lower bounds on the remaining events, so the cursor also never
   overtakes a pending event. *)
let rec next_before t ~until =
  if t.occ.(0) > 0 then begin
    (* fast path: level-0 events are globally earliest, and exact *)
    let d0 = first_from t.bitmap 0 (t.l0from lsr 5) in
    let tn = t.slots.(d0).next.time in
    if tn > until then max_int else tn
  end
  else if t.count = 0 then max_int
  else if t.count - Heap.length t.overflow = 0 then begin
    let m = match Heap.peek t.overflow with Some n -> n.time | None -> assert false in
    if m > until then max_int else (jump t m; next_before t ~until)
  end
  else begin
    let w = lowest_upper_slot t in
    if cascade_target t w > until then max_int
    else (cascade t w; next_before t ~until)
  end

let next_time t = next_before t ~until:max_int

let pop_exn t =
  if t.occ.(0) = 0 && next_time t = max_int then
    invalid_arg "Timer_wheel.pop_exn: empty";
  let s = first_from t.bitmap 0 (t.l0from lsr 5) in
  let sent = t.slots.(s) in
  let n = sent.next in
  unlink n;
  if sent.next == sent then begin
    clear_bit t 0 s;
    t.l0from <- s + 1
  end
  else t.l0from <- s;
  t.cursor <- n.time;
  t.count <- t.count - 1;
  n.where <- -2;
  let v = n.value in
  if n.pooled then begin
    n.value <- t.dummy;
    n.next <- t.pool;
    t.pool <- n
  end;
  v

let add t ~time ~seq v =
  let time = if time < t.cursor then t.cursor else time in
  let n =
    if t.pool != t.nil then begin
      let n = t.pool in
      t.pool <- n.next;
      n.time <- time;
      n.seq <- seq;
      n.value <- v;
      n
    end
    else
      { time; seq; value = v; prev = t.nil; next = t.nil; where = -2;
        heap_idx = -1; pooled = true }
  in
  t.count <- t.count + 1;
  place t n

let make_timer t v =
  { time = 0; seq = 0; value = v; prev = t.nil; next = t.nil; where = -2;
    heap_idx = -1; pooled = false }

let pending n = n.where <> -2

let cancel t n =
  if n.where = -1 then begin
    ignore (Heap.remove_at t.overflow n.heap_idx);
    n.where <- -2;
    t.count <- t.count - 1
  end
  else if n.where >= 0 then begin
    let w = n.where in
    unlink n;
    let sent = t.slots.(w) in
    if sent.next == sent then clear_bit t (w lsr 8) (w land 0xff);
    n.where <- -2;
    t.count <- t.count - 1
  end

let arm t n ~time ~seq =
  if pending n then cancel t n;
  n.time <- (if time < t.cursor then t.cursor else time);
  n.seq <- seq;
  t.count <- t.count + 1;
  place t n
