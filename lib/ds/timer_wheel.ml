(* Hierarchical timing wheel, Linux-style, specialised for a discrete-event
   simulator: a strict priority queue over [(time, seq)] keys where [time]
   only moves forward (the popper's clock is monotone) and ties are broken
   FIFO by [seq].

   Layout: a wide 4096-slot level 0 (bits 0-11) topped by 3 upper levels of
   256 slots each (bits 12-19, 20-27, 28-35), for a 2^36 horizon.  An event
   whose time first differs from the cursor inside level [l]'s bit range
   lives at level [l]; events differing in bits >= 36 go to an overflow
   binary heap.  The wide bottom level is a deliberate trade: simulator
   deltas are overwhelmingly kernel-scale (sub-4-microsecond slice ends and
   wakeups), so a 4096 ns direct-indexed window turns most inserts into
   straight level-0 filing and most pops into cascade-free slot drains —
   cascades only happen when the cursor crosses a 4096 ns boundary.

   Invariants maintained by [place]:

   - every stored time is >= cursor;
   - wheel events agree with the cursor on bits >= 36 (so everything in
     the overflow tier is strictly later than everything in the wheel);
   - at level l >= 1, occupied digits are > digit_l cursor; at level 0 the
     digits are >= digit_0 cursor, and all events sharing a level-0 slot
     have exactly the same time.

   Advancing works like Linux's cascade: when level 0 is empty, the lowest
   occupied (level, digit) is opened, the cursor jumps to the start of that
   range (lower bits zeroed), and its list is re-placed one level down in
   order.  When the whole wheel is empty the cursor jumps to the overflow
   minimum and every overflow event now within the horizon migrates in heap
   order — which is exactly (time, seq) order, so FIFO stability survives
   the tier change.

   Slots are sentinel-headed intrusive doubly-linked lists; one-shot nodes
   are recycled through a free list so steady-state [add]/[pop_exn] does
   not allocate.  [make_timer]/[arm]/[cancel] give callers a reusable,
   O(1)-cancellable cell for recurring timers.  [drain_ready] dispatches a
   whole ready slot per call — the simulator's batched-expiry hook. *)

type 'a node = {
  mutable time : int;
  mutable seq : int;
  mutable value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
  (* -3 sentinel, -2 detached, -1 overflow heap, >= 0 slot index *)
  mutable where : int;
  mutable heap_idx : int;
  pooled : bool;
}

type 'a timer = 'a node

(* Geometry.  Level 0 owns bits 0..11 (4096 slots); levels 1..3 own 8 bits
   each above that.  The hot-path comparisons below use the matching hex
   literals (0x1000, 0x10_0000, 0x1000_0000) directly so they compile to
   immediate operands. *)
let l0_bits = 12
let l0_slots = 0x1000
let upper_levels = 3
let horizon_bits = 36

type 'a t = {
  dummy : 'a;
  mutable cursor : int;
  (* 4096 level-0 sentinels, then 3 x 256 upper sentinels: level-0 digit
     [d] lives at index [d]; upper (level, digit) at
     [l0_slots + (level-1)*256 + digit]. *)
  slots : 'a node array;
  (* Level-0 occupancy: 128 words x 32 bits, summarised twice over — bit
     [w] of [summary0.(w/32)] set iff bitmap word [w] is non-zero, bit [s]
     of [super0] set iff summary word [s] is non-zero.  "Lowest occupied
     level-0 digit" is then three ctz lookups, and "level 0 occupied" a
     single load of [super0]. *)
  bitmap0 : int array;
  summary0 : int array;
  mutable super0 : int;
  (* Upper-level occupancy: 8 words per level plus a per-level summary
     byte (bit [w] set iff word is non-zero), one ctz pair per lookup. *)
  bitmap_up : int array;
  summary_up : int array;
  overflow : 'a node Heap.t;
  nil : 'a node;
  mutable pool : 'a node; (* free list chained through [next]; [nil] = empty *)
  mutable count : int;
  (* Ready-slot cache: when >= 0, the lowest occupied level-0 digit, whose
     slot is non-empty — [next_before]/[pop_exn]/[drain_ready] then skip
     the bitmap scan entirely and drain the slot O(1) per event (all
     events in a level-0 slot share one exact time).  -1 = unknown,
     recompute lazily.  Invariant: [ready >= 0] implies level 0 is
     occupied, so cascades (which require an empty level 0) never run with
     a live cache. *)
  mutable ready : int;
}

let cmp_node a b =
  if a.time < b.time then -1
  else if a.time > b.time then 1
  else if a.seq < b.seq then -1
  else if a.seq > b.seq then 1
  else 0

let make_sentinel dummy =
  let rec s =
    { time = 0; seq = 0; value = dummy; prev = s; next = s; where = -3;
      heap_idx = -1; pooled = false }
  in
  s

let create ~dummy () =
  let nil = make_sentinel dummy in
  { dummy;
    cursor = 0;
    slots = Array.init (l0_slots + (upper_levels * 256)) (fun _ -> make_sentinel dummy);
    bitmap0 = Array.make (l0_slots / 32) 0;
    summary0 = Array.make (l0_slots / 32 / 32) 0;
    super0 = 0;
    bitmap_up = Array.make (upper_levels * 8) 0;
    summary_up = Array.make upper_levels 0;
    overflow = Heap.create ~on_move:(fun n i -> n.heap_idx <- i) ~compare:cmp_node ();
    nil;
    pool = nil;
    count = 0;
    ready = -1 }

let length t = t.count
let is_empty t = t.count = 0

(* Occupancy maintenance.  Only called on empty<->nonempty slot
   transitions, so each summary tier tracks its tier below exactly. *)
let set_bit0 t digit =
  let w = digit lsr 5 in
  t.bitmap0.(w) <- t.bitmap0.(w) lor (1 lsl (digit land 31));
  let s = w lsr 5 in
  t.summary0.(s) <- t.summary0.(s) lor (1 lsl (w land 31));
  t.super0 <- t.super0 lor (1 lsl s)

let clear_bit0 t digit =
  let w = digit lsr 5 in
  let word = t.bitmap0.(w) land lnot (1 lsl (digit land 31)) in
  t.bitmap0.(w) <- word;
  if word = 0 then begin
    let s = w lsr 5 in
    let sw = t.summary0.(s) land lnot (1 lsl (w land 31)) in
    t.summary0.(s) <- sw;
    if sw = 0 then t.super0 <- t.super0 land lnot (1 lsl s)
  end

let set_bit_up t level digit =
  let i = ((level - 1) lsl 3) + (digit lsr 5) in
  t.bitmap_up.(i) <- t.bitmap_up.(i) lor (1 lsl (digit land 31));
  t.summary_up.(level - 1) <- t.summary_up.(level - 1) lor (1 lsl (digit lsr 5))

let clear_bit_up t level digit =
  let i = ((level - 1) lsl 3) + (digit lsr 5) in
  let word = t.bitmap_up.(i) land lnot (1 lsl (digit land 31)) in
  t.bitmap_up.(i) <- word;
  if word = 0 then
    t.summary_up.(level - 1) <- t.summary_up.(level - 1) land lnot (1 lsl (digit lsr 5))

(* Index of the lowest set bit of a non-zero 32-bit word, via the classic
   De Bruijn multiply — branch- and allocation-free (this runs on every
   bitmap scan of the pop hot path). *)
let debruijn32 =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 x = Array.unsafe_get debruijn32 ((((x land (-x)) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* Lowest occupied level-0 digit (level 0 must be occupied): super word
   picks the summary word, summary word picks the bitmap word, bitmap word
   picks the bit. *)
let first_digit0 t =
  let s = ctz32 t.super0 in
  let w = (s lsl 5) + ctz32 (Array.unsafe_get t.summary0 s) in
  (w lsl 5) + ctz32 (Array.unsafe_get t.bitmap0 w)

(* Lowest occupied digit at upper [level], which must be occupied. *)
let first_digit_up t level =
  let w = ctz32 (Array.unsafe_get t.summary_up (level - 1)) in
  (w lsl 5) + ctz32 (Array.unsafe_get t.bitmap_up (((level - 1) lsl 3) + w))

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let append sent n =
  n.prev <- sent.prev;
  n.next <- sent;
  sent.prev.next <- n;
  sent.prev <- n

(* File [n] under its level/slot (or overflow) relative to the current
   cursor.  Assumes n.time >= cursor. *)
let place t n =
  let x = n.time lxor t.cursor in
  if x lsr horizon_bits <> 0 then begin
    n.where <- -1;
    Heap.add t.overflow n
  end
  else if x < 0x1000 then begin
    (* level 0: direct-indexed; the common case for kernel-scale deltas *)
    let digit = n.time land (l0_slots - 1) in
    let sent = t.slots.(digit) in
    if sent.next == sent then set_bit0 t digit;
    (* a lower level-0 digit displaces the cached minimum; with no cache
       (-1) stay lazy — [next_before] recomputes *)
    if t.ready >= 0 && digit < t.ready then t.ready <- digit;
    append sent n;
    n.where <- digit
  end
  else begin
    let level =
      if x >= 0x1000_0000 then 3
      else if x >= 0x10_0000 then 2
      else 1
    in
    let digit = (n.time lsr (l0_bits + ((level - 1) lsl 3))) land 0xff in
    let w = l0_slots + ((level - 1) lsl 8) + digit in
    let sent = t.slots.(w) in
    if sent.next == sent then set_bit_up t level digit;
    append sent n;
    n.where <- w
  end

(* Lowest occupied upper slot, as a [slots] index, or -1. *)
let rec lowest_upper_from t l =
  if l > upper_levels then -1
  else if t.summary_up.(l - 1) = 0 then lowest_upper_from t (l + 1)
  else l0_slots + ((l - 1) lsl 8) + first_digit_up t l

let lowest_upper_slot t = lowest_upper_from t 1

(* Cursor value that opening slot [w] commits to: higher bits kept, the
   slot's digit installed, lower bits zeroed — the start of the slot's
   time range, hence a lower bound on every event inside it. *)
let cascade_target t w =
  let u = w - l0_slots in
  let level = (u lsr 8) + 1 and digit = u land 0xff in
  let shift = l0_bits + ((level - 1) lsl 3) in
  let keep = t.cursor land lnot ((1 lsl (shift + 8)) - 1) in
  keep lor (digit lsl shift)

let rec drain_replace t sent =
  let n = sent.next in
  if n != sent then begin
    unlink n;
    place t n;
    drain_replace t sent
  end

(* Open upper slot [w]: move the cursor to the start of its range and
   re-place its events (order-preserving, so same-time events keep their
   FIFO order). *)
let cascade t w =
  t.cursor <- cascade_target t w;
  let u = w - l0_slots in
  clear_bit_up t ((u lsr 8) + 1) (u land 0xff);
  drain_replace t t.slots.(w)

let rec migrate_overflow t =
  match Heap.peek t.overflow with
  | Some n when (n.time lxor t.cursor) lsr horizon_bits = 0 ->
      ignore (Heap.pop t.overflow);
      place t n;
      migrate_overflow t
  | _ -> ()

(* The wheel proper is empty: jump the cursor to the overflow minimum and
   migrate everything now inside the horizon.  Heap pop order is (time,
   seq) order, so migrated ties land in their slots FIFO-stable. *)
let jump t m =
  t.cursor <- m;
  migrate_overflow t

(* Advance the structure until the minimum event sits in a level-0 slot
   (where all events share one exact time) and its time is <= [until];
   returns that time, or [max_int] if the earliest event is later than
   [until] (or the wheel is empty).

   The gate matters for correctness, not just cost: the cursor never
   advances past [until], so a caller who learns "nothing before [until]"
   can still insert at any time >= [until] without being clamped forward.
   Cursor moves (cascade targets, the overflow minimum, popped times) are
   all lower bounds on the remaining events, so the cursor also never
   overtakes a pending event. *)
let rec next_before t ~until =
  if t.ready >= 0 then begin
    (* fastest path: the lowest occupied level-0 slot is cached from the
       previous scan, no bitmap work at all *)
    let tn = t.slots.(t.ready).next.time in
    if tn > until then max_int else tn
  end
  else if t.super0 <> 0 then begin
    (* fast path: level-0 events are globally earliest, and exact *)
    let d0 = first_digit0 t in
    t.ready <- d0;
    let tn = t.slots.(d0).next.time in
    if tn > until then max_int else tn
  end
  else if t.count = 0 then max_int
  else if t.count - Heap.length t.overflow = 0 then begin
    let m = match Heap.peek t.overflow with Some n -> n.time | None -> assert false in
    if m > until then max_int else (jump t m; next_before t ~until)
  end
  else begin
    let w = lowest_upper_slot t in
    if cascade_target t w > until then max_int
    else (cascade t w; next_before t ~until)
  end

let next_time t = next_before t ~until:max_int

let pop_exn t =
  (* [next_time]'s fast path caches the ready slot whenever level 0 is
     (or becomes, after cascading) occupied, so a cold call both advances
     the structure and fills [ready]; steady-state pops are pure O(1)
     slot drains with no bitmap scan. *)
  if t.ready < 0 && next_time t = max_int then
    invalid_arg "Timer_wheel.pop_exn: empty";
  let s = t.ready in
  let sent = t.slots.(s) in
  let n = sent.next in
  unlink n;
  if sent.next == sent then begin
    clear_bit0 t s;
    t.ready <- -1
  end;
  t.cursor <- n.time;
  t.count <- t.count - 1;
  n.where <- -2;
  let v = n.value in
  if n.pooled then begin
    n.value <- t.dummy;
    n.next <- t.pool;
    t.pool <- n
  end;
  v

(* The drain loop is a toplevel recursive function with an int
   accumulator, not a local closure over a counter ref: both would
   allocate per batch, and batches are usually size 1. *)
let rec drain_loop t sent s k f =
  let n = sent.next in
  if n == sent then k
  else begin
    unlink n;
    if sent.next == sent then begin
      clear_bit0 t s;
      t.ready <- -1
    end;
    t.count <- t.count - 1;
    n.where <- -2;
    let v = n.value in
    if n.pooled then begin
      n.value <- t.dummy;
      n.next <- t.pool;
      t.pool <- n
    end;
    f v;
    drain_loop t sent s (k + 1) f
  end

let drain_ready t f =
  let s = t.ready in
  if s < 0 then invalid_arg "Timer_wheel.drain_ready: no ready slot";
  let sent = t.slots.(s) in
  t.cursor <- sent.next.time;
  drain_loop t sent s 0 f

let add t ~time ~seq v =
  let time = if time < t.cursor then t.cursor else time in
  let n =
    if t.pool != t.nil then begin
      let n = t.pool in
      t.pool <- n.next;
      n.time <- time;
      n.seq <- seq;
      n.value <- v;
      n
    end
    else
      { time; seq; value = v; prev = t.nil; next = t.nil; where = -2;
        heap_idx = -1; pooled = true }
  in
  t.count <- t.count + 1;
  place t n

let make_timer t v =
  { time = 0; seq = 0; value = v; prev = t.nil; next = t.nil; where = -2;
    heap_idx = -1; pooled = false }

let pending n = n.where <> -2

let cancel t n =
  if n.where = -1 then begin
    ignore (Heap.remove_at t.overflow n.heap_idx);
    n.where <- -2;
    t.count <- t.count - 1
  end
  else if n.where >= 0 then begin
    let w = n.where in
    unlink n;
    let sent = t.slots.(w) in
    if sent.next == sent then begin
      if w < l0_slots then begin
        clear_bit0 t w;
        (* emptied the cached ready slot: cache is stale, recompute lazily
           (a cancel below [ready] is impossible — [ready] is the minimum) *)
        if w = t.ready then t.ready <- -1
      end
      else begin
        let u = w - l0_slots in
        clear_bit_up t ((u lsr 8) + 1) (u land 0xff)
      end
    end;
    n.where <- -2;
    t.count <- t.count - 1
  end

let arm t n ~time ~seq =
  if pending n then cancel t n;
  n.time <- (if time < t.cursor then t.cursor else time);
  n.seq <- seq;
  t.count <- t.count + 1;
  place t n
