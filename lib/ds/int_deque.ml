(* A deque specialised to non-negative ints (pids, cpu ids).  Unlike the
   generic {!Deque}, the backing store is a plain [int array]: pushes never
   box the element in an option cell, so hot queue traffic (machine channel
   waiters) is allocation-free in steady state.  -1 is reserved as the
   "empty" sentinel returned by the pop/peek operations. *)

type t = {
  mutable buf : int array;
  mutable head : int; (* index of the front element *)
  mutable len : int;
}

let create () = { buf = Array.make 8 (-1); head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let index t i = (t.head + i) land (Array.length t.buf - 1)

(* capacity is kept a power of two so [index] is a mask, not a division *)
let grow t =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let nbuf = Array.make (cap * 2) (-1) in
    for i = 0 to t.len - 1 do
      nbuf.(i) <- t.buf.(index t i)
    done;
    t.buf <- nbuf;
    t.head <- 0
  end

let push_back t x =
  if x < 0 then invalid_arg "Int_deque.push_back: negative element";
  grow t;
  t.buf.(index t t.len) <- x;
  t.len <- t.len + 1

let push_front t x =
  if x < 0 then invalid_arg "Int_deque.push_front: negative element";
  grow t;
  t.head <- (t.head - 1) land (Array.length t.buf - 1);
  t.buf.(t.head) <- x;
  t.len <- t.len + 1

(* -1 when empty *)
let pop_front t =
  if t.len = 0 then -1
  else begin
    let x = t.buf.(t.head) in
    t.head <- index t 1;
    t.len <- t.len - 1;
    x
  end

let pop_back t =
  if t.len = 0 then -1
  else begin
    t.len <- t.len - 1;
    t.buf.(index t t.len)
  end

let peek_front t = if t.len = 0 then -1 else t.buf.(t.head)

let peek_back t = if t.len = 0 then -1 else t.buf.(index t (t.len - 1))

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(index t i)
  done

let clear t =
  t.head <- 0;
  t.len <- 0
