type 'a t = {
  buf : 'a option array;
  mutable head : int; (* next slot to pop *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create";
  { buf = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf

let length t = t.len

let is_empty t = t.len = 0

let is_full t = t.len = Array.length t.buf

let push t x =
  if is_full t then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let tail = (t.head + t.len) mod Array.length t.buf in
    t.buf.(tail) <- Some x;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.buf.(t.head)

let dropped t = t.dropped

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  (* a cleared ring is as-new: stale drop counts from a previous life
     (e.g. the hint ring surviving a live upgrade) must not leak into the
     next consumer's accounting *)
  t.dropped <- 0
