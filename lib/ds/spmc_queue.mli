(** Single-producer multi-consumer take-queue over a fixed batch.

    The whole batch is published at construction; consumers in any number
    of domains claim items with one [Atomic.fetch_and_add] each — lock-free,
    wait-free, and in a single total order (ascending index), which is what
    makes pool runs deterministic to merge: item [i] is item [i] no matter
    which domain claimed it.

    A queue is one batch: it is never refilled.  Producers wanting a second
    round build a second queue (see {!Domain_pool}, which publishes a fresh
    queue per batch precisely so a straggler domain still draining an old
    batch can never claim work from the next one).

    Domain-safety contract: the backing array must not be mutated after
    {!of_array}; [pop] is safe from any number of domains concurrently. *)

type 'a t

(** [of_array items] wraps [items] as a take-queue.  The array is shared,
    not copied — the caller must not mutate it afterwards. *)
val of_array : 'a array -> 'a t

val of_list : 'a list -> 'a t

(** Claim the next item, or [None] once the batch is exhausted.  Safe from
    any domain; each item is handed out exactly once. *)
val pop : 'a t -> 'a option

(** [pop] that also reports the claimed index (the item's slot in the
    original batch — useful for writing results into a parallel array). *)
val pop_index : 'a t -> (int * 'a) option

(** Batch size. *)
val length : 'a t -> int

(** Items not yet claimed (racy snapshot, for progress reporting). *)
val remaining : 'a t -> int

val exhausted : 'a t -> bool
