(** A persistent pool of OCaml domains draining batches of tasks off an
    {!Spmc_queue}.

    This generalizes the bench harness's [-j N] pattern (spawn domains, race
    a shared atomic index over the cell array, join) into a reusable pool
    that survives across batches: the fleet tier runs one batch per
    simulation epoch — thousands per run — so the domains are spawned once
    at {!create} and parked on a condition variable between batches rather
    than re-spawned per epoch.

    Scheduling is SPMC work-claiming, not work-pushing: every participating
    domain (the [domains - 1] workers plus the caller of {!run}, which
    always joins in) claims tasks with one fetch-and-add each, so load
    balances itself — a domain stuck on a slow task simply claims fewer.
    Each batch publishes a {e fresh} queue; a straggler domain still
    draining an old batch can never claim work from the next one.

    Domain-safety contract: tasks within one batch run concurrently and
    must not contend on shared mutable state (buffer per-task, merge after
    {!run} returns — see [Cluster.Fleet] for the canonical pattern).  [run]
    is a full barrier: every write a task made happens-before [run]'s
    return in the calling domain.  Task execution order within a batch is
    nondeterministic; determinism of results is the {e caller's} job, by
    making tasks independent and merging in a fixed order.

    A pool with [domains <= 1] spawns nothing and runs batches inline in
    the caller — same semantics, no parallelism — so callers can hold one
    code path for both. *)

type t

(** [create ?on_task ~domains ()] spawns [domains - 1] worker domains
    ([domains] counts the caller, which participates in every batch).

    [on_task] runs in the claiming domain immediately before each task —
    the hook point for resetting domain-local state (e.g. the [Enoki.Lock]
    mode/tap context) so a task never inherits a predecessor's; exceptions
    it raises are accounted to the task. *)
val create : ?on_task:(unit -> unit) -> ?domains:int -> unit -> t

(** Total parallelism, caller included (always >= 1). *)
val size : t -> int

(** Run one batch to completion (a full barrier).  The caller's domain
    participates.  If any task raised, the first exception (in claim
    order of detection) is re-raised after the whole batch has settled;
    the remaining tasks still run. *)
val run : t -> (unit -> unit) array -> unit

(** [map t xs ~f] runs [f] on every element as one batch and returns the
    results in input order (claim order does not leak). *)
val map : t -> 'a array -> f:('a -> 'b) -> 'b array

val map_list : t -> 'a list -> f:('a -> 'b) -> 'b list

(** Cumulative [Gc.allocated_bytes] measured inside batch drains across
    every participating domain (caller included) — the figure the bench
    footer reports, since [Gc.allocated_bytes] alone is domain-local. *)
val allocated_bytes : t -> float

(** Stop and join the worker domains.  Idempotent.  [run] after shutdown
    is an error. *)
val shutdown : t -> unit
