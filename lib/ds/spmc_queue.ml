type 'a t = { items : 'a array; head : int Atomic.t }

let of_array items = { items; head = Atomic.make 0 }

let of_list xs = of_array (Array.of_list xs)

(* Claim-by-index: one fetch-and-add both picks the slot and publishes the
   claim, so consumers never hand out the same item twice and never spin.
   Indices past the end are burned (the counter keeps growing on empty
   pops) — fine, a queue is single-batch and never refilled. *)
let pop t =
  let i = Atomic.fetch_and_add t.head 1 in
  if i < Array.length t.items then Some t.items.(i) else None

let pop_index t =
  let i = Atomic.fetch_and_add t.head 1 in
  if i < Array.length t.items then Some (i, t.items.(i)) else None

let length t = Array.length t.items

let remaining t = max 0 (Array.length t.items - Atomic.get t.head)

let exhausted t = Atomic.get t.head >= Array.length t.items
