(** Hierarchical timing wheel — a strict priority queue over [(time, seq)]
    keys for monotone discrete-event simulation.

    Semantically identical to a binary min-heap ordered by [(time, seq)]
    (FIFO-stable for equal times), but O(1) amortised for the simulator's
    hot operations: insert near the cursor, pop-min, and — the reason it
    exists — {e cancellation}, which is O(1) instead of a tombstone
    dispatch.

    Layout is a Linux-style hierarchical wheel with a deliberately wide
    bottom: 4096 level-0 slots (bits 0-11) plus three upper levels of 256
    slots (2^36 horizon), sentinel-headed intrusive lists, hierarchical
    occupancy bitmaps, and an overflow binary heap for events beyond the
    horizon.  Simulator deltas are overwhelmingly sub-4-microsecond, so
    the wide level 0 makes most inserts direct-indexed and most pops
    cascade-free.  One-shot nodes are pooled, so steady-state
    [add]/[pop_exn]/[drain_ready] does not allocate.

    The one contract the caller must respect: times passed to {!add} and
    {!arm} must be >= the time of the last popped event (they are clamped
    up to it otherwise).  The simulator guarantees this — events are only
    scheduled at or after the current clock. *)

type 'a t

(** A caller-owned, reusable, cancellable cell (an intrusive list node).
    Arming an already-pending timer first cancels the previous arm. *)
type 'a timer

(** [create ~dummy ()] makes an empty wheel.  [dummy] is a throwaway value
    of the element type used to fill sentinels and recycled pool slots (so
    popped payloads don't leak). *)
val create : dummy:'a -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [add t ~time ~seq v] schedules one-shot [v].  [seq] must be unique and
    increasing across all inserts (the simulator's global event sequence);
    it breaks ties between equal times, FIFO. *)
val add : 'a t -> time:int -> seq:int -> 'a -> unit

(** Earliest pending [time], or [max_int] when empty. *)
val next_time : 'a t -> int

(** [next_before t ~until] is the earliest pending time if it is
    [<= until], and [max_int] otherwise.  Unlike {!next_time} it never
    advances the internal cursor past [until], so later inserts at any
    time [>= until] keep their requested time — this is what a simulator's
    bounded [run_until] must use. *)
val next_before : 'a t -> until:int -> int

(** Remove and return the payload of the earliest [(time, seq)] event.
    Raises [Invalid_argument] when empty. *)
val pop_exn : 'a t -> 'a

(** [drain_ready t f] — batched expiry: dispatch {e every} event in the
    current minimum level-0 slot (they all share one exact time) in FIFO
    order, calling [f] on each payload as it is removed, and return the
    number dispatched.  Equivalent to, but cheaper than, a [pop_exn] loop:
    the slot scan and ready-cache bookkeeping run once per slot instead of
    once per event.  Callbacks may insert and cancel freely — same-time
    inserts land at the slot tail and are picked up by the same drain
    (FIFO by [seq]), and cancelled events are skipped, because nodes stay
    linked until the moment they are dispatched.  Must be called
    immediately after {!next_before}/{!next_time} returned a real time;
    raises [Invalid_argument] otherwise. *)
val drain_ready : 'a t -> ('a -> unit) -> int

(** [make_timer t v] allocates a detached reusable cell carrying [v].
    Armed cells pop exactly like {!add}ed events. *)
val make_timer : 'a t -> 'a -> 'a timer

(** Arm (or re-arm) a timer cell.  O(1) amortised; never allocates. *)
val arm : 'a t -> 'a timer -> time:int -> seq:int -> unit

(** O(1) disarm; no-op when not pending. *)
val cancel : 'a t -> 'a timer -> unit

(** True while armed and not yet popped. *)
val pending : 'a timer -> bool
