type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
  on_move : ('a -> int -> unit) option;
}

let create ?on_move ~compare () = { compare; data = [||]; len = 0; on_move }

let length t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

(* Every position change goes through [set] so callers tracking element
   indices (for remove_at-based cancellation) stay in sync. *)
let set t i x =
  t.data.(i) <- x;
  match t.on_move with None -> () | Some f -> f x i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      set t i t.data.(parent);
      set t parent tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.compare t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.compare t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    set t i t.data.(!smallest);
    set t !smallest tmp;
    sift_down t !smallest
  end

let add t x =
  grow t x;
  set t t.len x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

(* Non-allocating variants of [peek]/[pop] for hot dispatch loops: the
   option box of a [Some] costs two words per call, which adds up at
   millions of events per second. *)
let top_exn t = if t.len = 0 then invalid_arg "Heap.top_exn: empty" else t.data.(0)

let pop_exn t =
  if t.len = 0 then invalid_arg "Heap.pop_exn: empty";
  let top = t.data.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    set t 0 t.data.(t.len);
    sift_down t 0
  end;
  top

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      set t 0 t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let remove_at t i =
  if i < 0 || i >= t.len then invalid_arg "Heap.remove_at";
  let removed = t.data.(i) in
  let last = t.len - 1 in
  t.len <- last;
  if i <> last then begin
    let x = t.data.(last) in
    set t i x;
    (* the replacement may need to move either way relative to [i] *)
    if i > 0 && t.compare x t.data.((i - 1) / 2) < 0 then sift_up t i else sift_down t i
  end;
  removed

let to_list t = Array.to_list (Array.sub t.data 0 t.len)

let remove_if t f =
  let kept = List.filter (fun x -> not (f x)) (to_list t) in
  t.len <- 0;
  List.iter (add t) kept

let clear t = t.len <- 0
