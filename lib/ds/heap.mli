(** Mutable binary min-heaps.

    Used for the simulator's event queue and the timer wheel's far-future
    overflow tier ({!Kernsim.Sim}, {!Ds.Timer_wheel}).  The comparison is
    supplied at creation; ties are broken by insertion order only if the
    caller encodes a sequence number into the element (the simulator does,
    to keep runs deterministic). *)

type 'a t

(** [create ?on_move ~compare] makes an empty heap ordered by [compare].
    When [on_move] is given it is called as [on_move x i] every time an
    element [x] is (re)placed at index [i] — on add, on every sift swap,
    and when back-filling a removal.  Callers use it to track element
    positions so {!remove_at} can cancel in O(log n). *)
val create : ?on_move:('a -> int -> unit) -> compare:('a -> 'a -> int) -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. *)
val pop : 'a t -> 'a option

(** Smallest element without removing it; allocation-free.
    Raises [Invalid_argument] if the heap is empty. *)
val top_exn : 'a t -> 'a

(** Remove and return the smallest element; allocation-free.
    Raises [Invalid_argument] if the heap is empty. *)
val pop_exn : 'a t -> 'a

(** [remove_at t i] removes and returns the element currently at index
    [i] (as reported by [on_move]) in O(log n).  Raises
    [Invalid_argument] if [i] is out of bounds. *)
val remove_at : 'a t -> int -> 'a

(** Remove every element for which [f] holds.  O(n log n).  Does not
    notify [on_move] for the removed elements, so it must not be mixed
    with index tracking. *)
val remove_if : 'a t -> ('a -> bool) -> unit

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
