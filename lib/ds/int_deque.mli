(** A double-ended queue specialised to non-negative ints.

    The generic {!Deque} stores ['a option] cells, so every push boxes its
    element; this variant backs onto a plain [int array] and is
    allocation-free in steady state (it only allocates when the ring
    doubles).  Hot machine paths (channel waiter queues) use it for pid
    traffic.

    -1 is the reserved "empty" result of the pop/peek operations, so only
    non-negative values may be stored; pushes raise [Invalid_argument] on
    negative input. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val push_back : t -> int -> unit

val push_front : t -> int -> unit

(** Front element, removed; -1 when empty. *)
val pop_front : t -> int

(** Back element, removed; -1 when empty. *)
val pop_back : t -> int

(** Front element, not removed; -1 when empty. *)
val peek_front : t -> int

(** Back element, not removed; -1 when empty. *)
val peek_back : t -> int

(** Front-to-back iteration. *)
val iter : (int -> unit) -> t -> unit

val clear : t -> unit
