(** Bounded single-producer/single-consumer ring buffers.

    These model the shared-memory queues Enoki uses for userspace hints
    (§3.3 of the paper) and for shipping record messages out of the scheduler
    context (§3.4).  Capacity is fixed at creation; when the producer
    overruns the consumer, the push is dropped and counted, mirroring the
    paper's "if the buffer overruns, events may be dropped". *)

type 'a t

(** [create ~capacity] makes an empty ring holding at most [capacity]
    elements.  Raises [Invalid_argument] if [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

(** [push t x] enqueues [x]; returns [false] (and counts a drop) when full. *)
val push : 'a t -> 'a -> bool

(** [pop t] dequeues the oldest element. *)
val pop : 'a t -> 'a option

(** Oldest element without removing it. *)
val peek : 'a t -> 'a option

(** Number of pushes rejected because the ring was full. *)
val dropped : 'a t -> int

(** Drain everything currently queued, oldest first. *)
val drain : 'a t -> 'a list

(** [clear t] empties the ring {e and} resets the drop counter: a cleared
    ring is indistinguishable from a freshly created one.  Consumers that
    reuse a ring across epochs (the hint ring across live upgrades, a
    record ring across runs) rely on [dropped] restarting from zero. *)
val clear : 'a t -> unit
