type batch = { queue : (unit -> unit) Spmc_queue.t }

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* a new batch was published (or shutdown) *)
  idle : Condition.t;  (* the current batch's last task finished *)
  mutable batch : batch option;
  mutable generation : int;
  mutable remaining : int;
  mutable stop : bool;
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
  mutable allocated : float;
  on_task : (unit -> unit) option;
  mutable workers : unit Domain.t list;
}

(* Drain one batch from the calling domain: claim tasks off the SPMC queue
   until it runs dry, then settle the books (allocation + completion count)
   in one critical section.  The first exception is kept and re-raised by
   [run] after the barrier; later tasks still execute, so a failing batch
   finishes in a deterministic state. *)
let drain t (b : batch) =
  let a0 = Gc.allocated_bytes () in
  let rec claim done_count =
    match Spmc_queue.pop b.queue with
    | None -> done_count
    | Some task ->
      (try
         (match t.on_task with Some f -> f () | None -> ());
         task ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.lock;
         if t.first_exn = None then t.first_exn <- Some (e, bt);
         Mutex.unlock t.lock);
      claim (done_count + 1)
  in
  let k = claim 0 in
  if k > 0 then begin
    let bytes = Gc.allocated_bytes () -. a0 in
    Mutex.lock t.lock;
    t.allocated <- t.allocated +. bytes;
    t.remaining <- t.remaining - k;
    if t.remaining = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.lock
  end

(* Workers park on [work] between batches.  Each batch publishes a *fresh*
   queue, so a straggler still claiming from an old batch can never steal
   work from (or double-run work of) the next one. *)
let worker_loop t =
  let rec loop last_gen =
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = last_gen do
      Condition.wait t.work t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let gen = t.generation in
      let b = t.batch in
      Mutex.unlock t.lock;
      (match b with Some b -> drain t b | None -> ());
      loop gen
    end
  in
  loop 0

let create ?on_task ?(domains = 1) () =
  let t =
    {
      size = max 1 domains;
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      generation = 0;
      remaining = 0;
      stop = false;
      first_exn = None;
      allocated = 0.;
      on_task;
      workers = [];
    }
  in
  if t.size > 1 then t.workers <- List.init (t.size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.size <= 1 then
    (* no pool: run in place, same hook semantics, exceptions propagate *)
    Array.iter
      (fun task ->
        (match t.on_task with Some f -> f () | None -> ());
        task ())
      tasks
  else begin
    if t.stop then invalid_arg "Domain_pool.run: pool is shut down";
    let b = { queue = Spmc_queue.of_array tasks } in
    Mutex.lock t.lock;
    t.first_exn <- None;
    t.batch <- Some b;
    t.remaining <- n;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* the calling domain participates instead of idling at the barrier *)
    drain t b;
    Mutex.lock t.lock;
    while t.remaining > 0 do
      Condition.wait t.idle t.lock
    done;
    let exn = t.first_exn in
    t.first_exn <- None;
    Mutex.unlock t.lock;
    match exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map t xs ~f =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t (Array.init n (fun i () -> out.(i) <- Some (f xs.(i))));
    Array.map (function Some v -> v | None -> invalid_arg "Domain_pool.map: task skipped") out
  end

let map_list t xs ~f = Array.to_list (map t (Array.of_list xs) ~f)

let allocated_bytes t =
  Mutex.lock t.lock;
  let v = t.allocated in
  Mutex.unlock t.lock;
  v

let shutdown t =
  Mutex.lock t.lock;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end
