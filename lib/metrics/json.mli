(** A minimal JSON tree: enough for the benchmark trajectory files and the
    metrics summary exporter, with a parser for [bench regress] to read
    committed baselines back.  No external dependency, by design — the
    container bakes in only the base toolchain. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string

(** Strict parse of a complete document; [Error msg] carries an offset. *)
val parse : string -> (t, string) result

val parse_file : path:string -> (t, string) result

val save : path:string -> t -> unit

(** Accessors; lookups on the wrong constructor return [None]. *)

val member : string -> t -> t option

val to_float : t -> float option

val to_int : t -> int option

val to_str : t -> string option

val to_list : t -> t list option
