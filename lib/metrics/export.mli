(** Exporters for the metrics registry and the sampled time series.

    Three formats, matching the three consumers of the observability
    layer: Prometheus text exposition (scrapers, Grafana), CSV time
    series (plotting the trajectory of a run), and a JSON summary (the
    benchmark harness and the regression gate). *)

(** Prometheus text exposition format.  Counters export as [name]
    [value]; histograms as cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count], the shape [histogram_quantile()] expects. *)
val prometheus : Registry.t -> string

(** CSV time series of the sampler's snapshots: one row per tick, one
    column per metric (union across ticks; metrics created mid-run leave
    early cells empty).  Labelled series names (which embed commas and
    quotes) are RFC-4180-quoted in the header so they survive as single
    columns. *)
val csv : Sampler.t -> string

(** RFC-4180 cell quoting as applied to the CSV header: quotes the cell
    when it contains a comma, quote, or newline, doubling embedded
    quotes.  [csv_cell "n{a=\"x\"}"] is ["\"n{a=\"\"x\"\"}\""]. *)
val csv_cell : string -> string

(** Split one CSV line back into cells, honouring {!csv_cell} quoting:
    [csv_split (String.concat "," (List.map csv_cell cells)) = cells]. *)
val csv_split : string -> string list

(** JSON summary: every counter and gauge, plus
    count/min/max/mean/p50/p95/p99/p999 per histogram. *)
val json_summary : ?extra:(string * Json.t) list -> Registry.t -> Json.t

type format = Prometheus | Csv | Json_summary

(** Pick a format from a path extension: [.prom] / [.csv] / anything
    else JSON. *)
val format_of_path : string -> format

(** Render [format] and write it to [path].  [Csv] requires the sampler. *)
val save : path:string -> ?sampler:Sampler.t -> format -> Registry.t -> unit
