(** Exporters for the metrics registry and the sampled time series.

    Three formats, matching the three consumers of the observability
    layer: Prometheus text exposition (scrapers, Grafana), CSV time
    series (plotting the trajectory of a run), and a JSON summary (the
    benchmark harness and the regression gate). *)

(** Prometheus text exposition format.  Counters export as [name]
    [value]; histograms as cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count], the shape [histogram_quantile()] expects. *)
val prometheus : Registry.t -> string

(** CSV time series of the sampler's snapshots: one row per tick, one
    column per metric (union across ticks; metrics created mid-run leave
    early cells empty). *)
val csv : Sampler.t -> string

(** JSON summary: every counter and gauge, plus
    count/min/max/mean/p50/p95/p99/p999 per histogram. *)
val json_summary : ?extra:(string * Json.t) list -> Registry.t -> Json.t

type format = Prometheus | Csv | Json_summary

(** Pick a format from a path extension: [.prom] / [.csv] / anything
    else JSON. *)
val format_of_path : string -> format

(** Render [format] and write it to [path].  [Csv] requires the sampler. *)
val save : path:string -> ?sampler:Sampler.t -> format -> Registry.t -> unit
