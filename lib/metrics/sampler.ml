type sample = { ts : int; values : (string * float) list }

let default_interval = 10_000_000 (* 10 ms of simulated time *)

type t = {
  reg : Registry.t;
  ival : int;
  mutable samples : sample list; (* newest first *)
  mutable ticks : int;
  mutable hooks : (ts:int -> unit) list;
}

let create ?(interval = default_interval) reg =
  if interval <= 0 then invalid_arg "Sampler.create: interval must be positive";
  { reg; ival = interval; samples = []; ticks = 0; hooks = [] }

let interval t = t.ival

let on_flush t f = t.hooks <- t.hooks @ [ f ]

let snapshot reg =
  let acc = ref [] in
  Registry.iter reg (fun ~name ~help:_ v ->
      match v with
      | Registry.Counter_v n -> acc := (name, float_of_int n) :: !acc
      | Registry.Gauge_v g -> acc := (name, g) :: !acc
      | Registry.Histogram_v h ->
        (* a histogram contributes its volume and two tail points to the
           time series; full distributions live in the summary exporters *)
        acc :=
          (name ^ "_p99", float_of_int (Stats.Histogram.percentile h 99.0))
          :: (name ^ "_p50", float_of_int (Stats.Histogram.percentile h 50.0))
          :: (name ^ "_count", float_of_int (Stats.Histogram.count h))
          :: !acc);
  List.rev !acc

let flush t ~ts =
  t.ticks <- t.ticks + 1;
  t.samples <- { ts; values = snapshot t.reg } :: t.samples;
  List.iter (fun f -> f ~ts) t.hooks

let start t ~now ~defer =
  let rec arm () =
    defer ~delay:t.ival (fun () ->
        flush t ~ts:(now ());
        arm ())
  in
  arm ()

let samples t = List.rev t.samples

let ticks t = t.ticks
