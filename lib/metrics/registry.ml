type counter = { c_shards : int array }

type gauge = { mutable g_value : float; mutable g_probe : (unit -> float) option }

type histogram = { h_shards : Stats.Histogram.t array }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type entry = { name : string; help : string; metric : metric }

type t = {
  nr : int;
  tbl : (string, entry) Hashtbl.t;
  mutable order : entry list; (* newest first *)
}

let create ?(nr_cpus = 1) () =
  if nr_cpus <= 0 then invalid_arg "Registry.create: nr_cpus must be positive";
  { nr = nr_cpus; tbl = Hashtbl.create 64; order = [] }

let nr_cpus t = t.nr

let register t ~help name make shape_name extract =
  match Hashtbl.find_opt t.tbl name with
  | Some entry -> (
    match extract entry.metric with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %s already registered with a different shape than %s" name
           shape_name))
  | None ->
    let m = make () in
    let entry = { name; help; metric = m } in
    Hashtbl.replace t.tbl name entry;
    t.order <- entry :: t.order;
    (match extract m with Some v -> v | None -> assert false)

(* Label-decorated metric names, Prometheus style.  The registry itself
   stays a flat name -> metric map: a labelled series is just a metric
   whose name carries its label block, and the exporters split the block
   back out.  Values are escaped so [labeled] round-trips through the
   text exposition format. *)
let labeled name labels =
  match labels with
  | [] -> name
  | _ ->
    let escape v =
      let buf = Buffer.create (String.length v) in
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        v;
      Buffer.contents buf
    in
    Printf.sprintf "%s{%s}" name
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels))

let base_name name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Inverse of [labeled]: parse the label block back into pairs.  Returns
   [(name, [])] when there is no block, and degrades to the stripped base
   name with no labels when the block is malformed — exporters must never
   raise on a hand-written series name. *)
let split name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i ->
    let base = String.sub name 0 i in
    let n = String.length name in
    let malformed = ref false in
    let labels = ref [] in
    let pos = ref (i + 1) in
    let peek () = if !pos < n then Some name.[!pos] else None in
    (* one k="v" pair; cursor left after the closing quote *)
    let parse_pair () =
      let kstart = !pos in
      while !pos < n && name.[!pos] <> '=' do incr pos done;
      if !pos >= n || !pos = kstart then malformed := true
      else begin
        let key = String.sub name kstart (!pos - kstart) in
        incr pos;
        if peek () <> Some '"' then malformed := true
        else begin
          incr pos;
          let buf = Buffer.create 16 in
          let closed = ref false in
          while (not !closed) && (not !malformed) && !pos < n do
            (match name.[!pos] with
            | '\\' ->
              incr pos;
              (match peek () with
              | Some '"' -> Buffer.add_char buf '"'
              | Some '\\' -> Buffer.add_char buf '\\'
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some c -> Buffer.add_char buf c
              | None -> malformed := true)
            | '"' -> closed := true
            | c -> Buffer.add_char buf c);
            incr pos
          done;
          if !closed then labels := (key, Buffer.contents buf) :: !labels
          else malformed := true
        end
      end
    in
    let finished = ref false in
    while (not !finished) && not !malformed do
      parse_pair ();
      if not !malformed then
        match peek () with
        | Some ',' -> incr pos
        | Some '}' when !pos = n - 1 -> finished := true
        | _ -> malformed := true
    done;
    if !malformed then (base, []) else (base, List.rev !labels)

let counter t ?(help = "") name =
  register t ~help name
    (fun () -> Counter { c_shards = Array.make t.nr 0 })
    "counter"
    (function Counter c -> Some c | _ -> None)

let gauge t ?(help = "") name =
  register t ~help name
    (fun () -> Gauge { g_value = 0.0; g_probe = None })
    "gauge"
    (function Gauge g -> Some g | _ -> None)

let gauge_probe t ?help name f =
  let g = gauge t ?help name in
  g.g_probe <- Some f

let histogram t ?(help = "") name =
  register t ~help name
    (fun () -> Histogram { h_shards = Array.init t.nr (fun _ -> Stats.Histogram.create ()) })
    "histogram"
    (function Histogram h -> Some h | _ -> None)

(* ---------- recording ---------- *)

let shard shards cpu = if cpu >= 0 && cpu < Array.length shards then cpu else 0

let incr c ?(cpu = 0) ?(n = 1) () =
  let i = shard c.c_shards cpu in
  c.c_shards.(i) <- c.c_shards.(i) + n

let set g v = g.g_value <- v

let observe h ?(cpu = 0) v = Stats.Histogram.record h.h_shards.(shard h.h_shards cpu) v

(* ---------- reading ---------- *)

let counter_value c = Array.fold_left ( + ) 0 c.c_shards

let gauge_value g = match g.g_probe with Some f -> f () | None -> g.g_value

let merged h =
  let dst = Stats.Histogram.create () in
  Array.iter (fun src -> Stats.Histogram.merge ~dst ~src) h.h_shards;
  dst

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Stats.Histogram.t

let value_of = function
  | Counter c -> Counter_v (counter_value c)
  | Gauge g -> Gauge_v (gauge_value g)
  | Histogram h -> Histogram_v (merged h)

let iter t f =
  List.iter (fun e -> f ~name:e.name ~help:e.help (value_of e.metric)) (List.rev t.order)

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with Some { metric = Counter c; _ } -> Some c | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with Some { metric = Histogram h; _ } -> Some h | _ -> None
