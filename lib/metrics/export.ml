(* Prometheus metric names admit [a-zA-Z0-9_:] only. *)
let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = ':'
      then c
      else '_')
    name

let prometheus reg =
  let buf = Buffer.create 4096 in
  (* emit HELP/TYPE headers once per base name, so the labelled series the
     cluster tier registers (one registry entry per label combination)
     share a single metric family in the exposition *)
  let headed = Hashtbl.create 16 in
  Registry.iter reg (fun ~name ~help v ->
      (* a label block produced by Registry.labeled survives as-is; only
         the base name is sanitized *)
      let base = sanitize (Registry.base_name name) in
      let labels =
        match String.index_opt name '{' with
        | Some i -> String.sub name i (String.length name - i)
        | None -> ""
      in
      (* series name for scalar samples, and a label-splicer for the
         histogram suffixes that must merge [le] into the block *)
      let series = base ^ labels in
      let with_label extra =
        if labels = "" then Printf.sprintf "{%s}" extra
        else Printf.sprintf "%s,%s}" (String.sub labels 0 (String.length labels - 1)) extra
      in
      let header kind =
        if not (Hashtbl.mem headed base) then begin
          Hashtbl.replace headed base ();
          if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base help);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
        end
      in
      match v with
      | Registry.Counter_v n ->
        header "counter";
        Buffer.add_string buf (Printf.sprintf "%s %d\n" series n)
      | Registry.Gauge_v g ->
        header "gauge";
        Buffer.add_string buf (Printf.sprintf "%s %g\n" series g)
      | Registry.Histogram_v h ->
        header "histogram";
        let cum = ref 0 in
        List.iter
          (fun (upper, count) ->
            cum := !cum + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" base
                 (with_label (Printf.sprintf "le=\"%d\"" upper))
                 !cum))
          (Stats.Histogram.to_buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" base (with_label "le=\"+Inf\"") !cum);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %.0f\n" base labels
             (Stats.Histogram.mean h *. float_of_int (Stats.Histogram.count h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" base labels (Stats.Histogram.count h)));
  Buffer.contents buf

(* RFC-4180 quoting: a labelled series name contains commas and double
   quotes ([name{a="x",b="y"}]), which would shear the header row apart
   in any CSV reader.  Quote when needed, doubling embedded quotes. *)
let csv_cell s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* Inverse of one row of [csv]: split a line into cells, honouring
   RFC-4180 quoting.  Used by the round-trip tests and any downstream
   tooling that wants the labelled column names back. *)
let csv_split line =
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 32 in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    (if !in_quotes then
       if c = '"' then
         if !i + 1 < n && line.[!i + 1] = '"' then begin
           Buffer.add_char buf '"';
           incr i
         end
         else in_quotes := false
       else Buffer.add_char buf c
     else
       match c with
       | '"' -> in_quotes := true
       | ',' ->
         cells := Buffer.contents buf :: !cells;
         Buffer.clear buf
       | c -> Buffer.add_char buf c);
    incr i
  done;
  cells := Buffer.contents buf :: !cells;
  List.rev !cells

let csv sampler =
  let samples = Sampler.samples sampler in
  (* column order: first appearance across the run, so metrics created
     mid-run (per-callback counters) append on the right *)
  let cols = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Sampler.sample) ->
      List.iter
        (fun (k, _) ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            cols := k :: !cols
          end)
        s.values)
    samples;
  let cols = List.rev !cols in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," ("ts_ns" :: List.map csv_cell cols));
  Buffer.add_char buf '\n';
  List.iter
    (fun (s : Sampler.sample) ->
      Buffer.add_string buf (string_of_int s.ts);
      List.iter
        (fun col ->
          Buffer.add_char buf ',';
          match List.assoc_opt col s.values with
          | Some v ->
            Buffer.add_string buf
              (if Float.is_integer v && Float.abs v < 1e15 then
                 string_of_int (int_of_float v)
               else Printf.sprintf "%g" v)
          | None -> ())
        cols;
      Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf

let percentiles_json h =
  let p q = Json.Int (Stats.Histogram.percentile h q) in
  Json.Obj
    [
      ("count", Json.Int (Stats.Histogram.count h));
      ("min", Json.Int (Stats.Histogram.min h));
      ("max", Json.Int (Stats.Histogram.max h));
      ("mean", Json.Float (Stats.Histogram.mean h));
      ("p50", p 50.0);
      ("p95", p 95.0);
      ("p99", p 99.0);
      ("p999", p 99.9);
    ]

let json_summary ?(extra = []) reg =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Registry.iter reg (fun ~name ~help:_ v ->
      match v with
      | Registry.Counter_v n -> counters := (name, Json.Int n) :: !counters
      | Registry.Gauge_v g -> gauges := (name, Json.Float g) :: !gauges
      | Registry.Histogram_v h -> histograms := (name, percentiles_json h) :: !histograms);
  Json.Obj
    (extra
    @ [
        ("counters", Json.Obj (List.rev !counters));
        ("gauges", Json.Obj (List.rev !gauges));
        ("histograms", Json.Obj (List.rev !histograms));
      ])

type format = Prometheus | Csv | Json_summary

let format_of_path path =
  if Filename.check_suffix path ".prom" || Filename.check_suffix path ".txt" then Prometheus
  else if Filename.check_suffix path ".csv" then Csv
  else Json_summary

let save ~path ?sampler format reg =
  let contents =
    match format with
    | Prometheus -> prometheus reg
    | Json_summary -> Json.to_string ~pretty:true (json_summary reg) ^ "\n"
    | Csv -> (
      match sampler with
      | Some s -> csv s
      | None -> invalid_arg "Export.save: csv output needs the sampler")
  in
  let oc = open_out path in
  Fun.protect (fun () -> output_string oc contents) ~finally:(fun () -> close_out oc)
