type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 1024 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           if !pos + 4 >= n then fail "bad \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
           (* ASCII range only; anything above folds to '?' — metric names
              and scheduler labels are plain ASCII throughout *)
           Buffer.add_char buf (if code < 128 then Char.chr code else '?');
           pos := !pos + 5
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "json parse error at offset %d: %s" at msg)

let parse_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      (fun () -> really_input_string ic (in_channel_length ic))
      ~finally:(fun () -> close_in ic)
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let save ~path t =
  let oc = open_out path in
  Fun.protect
    (fun () ->
      output_string oc (to_string ~pretty:true t);
      output_char oc '\n')
    ~finally:(fun () -> close_out oc)

(* ---------- accessors ---------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_int = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
