(** Periodic time-series sampler, driven by simulated time.

    Every [interval] simulated nanoseconds the sampler snapshots each
    registry metric into a row of the time series (histograms snapshot
    count/p50/p99) and runs its flush hooks — the machine wiring uses a
    hook to emit a [Metric_flush] trace event.  Sampling only {e reads}
    machine state, never charges time or reschedules a cpu, so an armed
    sampler cannot perturb scheduling decisions. *)

type sample = { ts : int; values : (string * float) list }

type t

val create : ?interval:int -> Registry.t -> t

(** Default interval when [create] is not given one: 10 ms. *)
val default_interval : int

val interval : t -> int

(** Run [f ~ts] at every sampler tick, after the snapshot is taken. *)
val on_flush : t -> (ts:int -> unit) -> unit

(** Arm the periodic tick on a simulator clock: [now] reads the clock,
    [defer] schedules a thunk.  ( {!Kernsim.Machine.at} and
    [Kernsim.Machine.now] have exactly these shapes.) *)
val start : t -> now:(unit -> int) -> defer:(delay:int -> (unit -> unit) -> unit) -> unit

(** Take one snapshot immediately (also used as the final flush at the
    end of a run). *)
val flush : t -> ts:int -> unit

(** Snapshots taken so far, oldest first. *)
val samples : t -> sample list

val ticks : t -> int
