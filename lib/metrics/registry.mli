(** The always-on scheduler metrics registry.

    Everything the machine, the Enoki-C boundary, the trace layer and the
    workload generators count or time flows through one of three metric
    shapes:

    - {b counters}: monotonically increasing integers, sharded per cpu so
      hot paths touch only their own slot (context switches, migrations,
      boundary crossings, panics);
    - {b gauges}: point-in-time floats, either set explicitly or computed
      by a probe at read time (runqueue depth, tracer ring drops);
    - {b histograms}: per-cpu-sharded log-linear latency histograms
      (reusing {!Stats.Histogram}) merged at read time (wakeup latency,
      per-callback latency, request latency).

    Recording never allocates after metric creation and never touches
    simulated time — observability must not perturb scheduling decisions
    (the zero-perturbation contract tested in [test_metrics.ml]).

    Domain-safety contract: registration ({!counter}, {!histogram}, …)
    mutates the registry's table and must stay in one domain (build time).
    After registration, recording into {e distinct} metrics — or distinct
    [cpu] shards of one metric — from different domains is safe as long as
    each series has a single writer at a time and readers ({!merged}, the
    exporters) run after a synchronization point.  This is how the fleet
    tier shares one registry across `-j` domains: each host owns its own
    labelled series during an epoch, multi-writer series are buffered
    per host and applied in fixed host order at the epoch barrier, and all
    reads happen on the coordinating domain after the barrier. *)

type t

type counter

type gauge

type histogram

val create : ?nr_cpus:int -> unit -> t

val nr_cpus : t -> int

(** Get-or-create by name.  Re-registering an existing name returns the
    existing metric; a name registered under a different shape raises
    [Invalid_argument]. *)

(** [labeled name labels] decorates a metric name with a Prometheus-style
    label block: [labeled "fleet_latency_ns" [("tenant", "web")]] is
    ["fleet_latency_ns{tenant=\"web\"}"].  The registry treats the result
    as an ordinary name (one independent series per label combination);
    the exporters split the block back out, so labelled series survive the
    text exposition format intact.  The cluster tier keys its per-tenant
    and per-host series this way.  [labeled name []] is [name]. *)
val labeled : string -> (string * string) list -> string

(** The name with any label block stripped: [base_name (labeled n ls) = n]. *)
val base_name : string -> string

(** Inverse of {!labeled}: [split (labeled n ls) = (n, ls)], unescaping the
    label values.  A name without a block splits to [(name, [])]; a
    malformed block degrades to the stripped base name with no labels
    rather than raising.  Exporters use this for label parity across the
    Prometheus, CSV and JSON paths. *)
val split : string -> string * (string * string) list

val counter : t -> ?help:string -> string -> counter

val gauge : t -> ?help:string -> string -> gauge

(** A gauge evaluated on demand: the probe runs at sample/export time. *)
val gauge_probe : t -> ?help:string -> string -> (unit -> float) -> unit

val histogram : t -> ?help:string -> string -> histogram

(** Recording. [cpu] out of range is folded onto shard 0, mirroring the
    tracer's discipline. *)

val incr : counter -> ?cpu:int -> ?n:int -> unit -> unit

val set : gauge -> float -> unit

val observe : histogram -> ?cpu:int -> int -> unit

(** Reading. *)

val counter_value : counter -> int

val gauge_value : gauge -> float

(** Merge the per-cpu shards into a fresh histogram (the shards are
    untouched). *)
val merged : histogram -> Stats.Histogram.t

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Stats.Histogram.t

(** Iterate name/help/current value in registration order. *)
val iter : t -> (name:string -> help:string -> value -> unit) -> unit

val find_counter : t -> string -> counter option

val find_histogram : t -> string -> histogram option
