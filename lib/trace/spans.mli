(** Latency spans derived from the event stream.

    [Wakeup_to_dispatch] is the scheduling latency schbench reports: from a
    task becoming runnable to its next dispatch.  [Preempt_to_resched] is
    the time a still-runnable task spent off-cpu after being preempted or
    yielding.  Spans are computed from a timestamp-ordered event list (as
    returned by {!Tracer.events}); events lost to ring overrun simply yield
    fewer spans. *)

type kind = Wakeup_to_dispatch | Preempt_to_resched

type t = { pid : int; cpu : int; kind : kind; start_ts : int; stop_ts : int }

val duration : t -> int

val kind_name : kind -> string

val of_events : Event.t list -> t list
