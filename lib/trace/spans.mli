(** Latency spans derived from the event stream.

    [Wakeup_to_dispatch] is the scheduling latency schbench reports: from a
    task becoming runnable to its next dispatch.  [Preempt_to_resched] is
    the time a still-runnable task spent off-cpu after being preempted or
    yielding.  [Migration] runs from a task's first {!Event.Migrate} to its
    next dispatch (chained hops collapse into one span; cleared when the
    task blocks or exits).  [Ingress_wait] is the cluster-tier queue wait:
    {!Event.Req_enqueue} to the matching {!Event.Req_take}, keyed by
    request-id, attributed to the taking worker's pid.  Spans are computed
    from a timestamp-ordered event list (as returned by {!Tracer.events});
    events lost to ring overrun simply yield fewer spans, and interleaved
    observability markers ([Fleet_op], [Metric_flush], DSQ events) never
    break adjacent spans. *)

type kind = Wakeup_to_dispatch | Preempt_to_resched | Migration | Ingress_wait

type t = { pid : int; cpu : int; kind : kind; start_ts : int; stop_ts : int }

val duration : t -> int

val kind_name : kind -> string

val of_events : Event.t list -> t list
