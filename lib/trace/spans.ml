type kind = Wakeup_to_dispatch | Preempt_to_resched

type t = { pid : int; cpu : int; kind : kind; start_ts : int; stop_ts : int }

let duration s = s.stop_ts - s.start_ts

let kind_name = function
  | Wakeup_to_dispatch -> "wakeup_to_dispatch"
  | Preempt_to_resched -> "preempt_to_resched"

let of_events events =
  let pending_wake : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pending_preempt : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun (ev : Event.t) ->
      match ev.kind with
      | Event.Wakeup { pid; _ } ->
        if not (Hashtbl.mem pending_wake pid) then Hashtbl.replace pending_wake pid ev.ts;
        Hashtbl.remove pending_preempt pid
      | Event.Preempt { pid } | Event.Yield { pid } ->
        if not (Hashtbl.mem pending_preempt pid) then Hashtbl.replace pending_preempt pid ev.ts
      | Event.Dispatch { pid } ->
        (match Hashtbl.find_opt pending_wake pid with
        | Some start_ts ->
          Hashtbl.remove pending_wake pid;
          spans :=
            { pid; cpu = ev.cpu; kind = Wakeup_to_dispatch; start_ts; stop_ts = ev.ts } :: !spans
        | None -> (
          match Hashtbl.find_opt pending_preempt pid with
          | Some start_ts ->
            spans :=
              { pid; cpu = ev.cpu; kind = Preempt_to_resched; start_ts; stop_ts = ev.ts }
              :: !spans
          | None -> ()));
        Hashtbl.remove pending_preempt pid
      | Event.Block { pid } | Event.Exit { pid } ->
        Hashtbl.remove pending_wake pid;
        Hashtbl.remove pending_preempt pid
      | Event.Sched_switch _ | Event.Migrate _ | Event.Tick | Event.Idle | Event.Pnt_err _
      | Event.Lock_acquire _ | Event.Lock_release _ | Event.Msg_call _ | Event.Panic _
      | Event.Failover _ | Event.Overrun _ | Event.Watchdog_fire _ | Event.Metric_flush _
      | Event.Dsq_insert _ | Event.Dsq_consume _ | Event.Fleet_op _ -> ())
    events;
  List.rev !spans
