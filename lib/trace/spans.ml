type kind = Wakeup_to_dispatch | Preempt_to_resched | Migration | Ingress_wait

type t = { pid : int; cpu : int; kind : kind; start_ts : int; stop_ts : int }

let duration s = s.stop_ts - s.start_ts

let kind_name = function
  | Wakeup_to_dispatch -> "wakeup_to_dispatch"
  | Preempt_to_resched -> "preempt_to_resched"
  | Migration -> "migration"
  | Ingress_wait -> "ingress_wait"

let of_events events =
  let pending_wake : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pending_preempt : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pending_migrate : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let pending_ingress : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun (ev : Event.t) ->
      match ev.kind with
      | Event.Wakeup { pid; _ } ->
        if not (Hashtbl.mem pending_wake pid) then Hashtbl.replace pending_wake pid ev.ts;
        Hashtbl.remove pending_preempt pid
      | Event.Preempt { pid } | Event.Yield { pid } ->
        if not (Hashtbl.mem pending_preempt pid) then Hashtbl.replace pending_preempt pid ev.ts
      | Event.Migrate { pid; _ } ->
        (* keep the first migration ts so chained migrations measure the full
           off-cpu displacement, not just the last hop *)
        if not (Hashtbl.mem pending_migrate pid) then Hashtbl.replace pending_migrate pid ev.ts
      | Event.Dispatch { pid } ->
        (match Hashtbl.find_opt pending_wake pid with
        | Some start_ts ->
          Hashtbl.remove pending_wake pid;
          spans :=
            { pid; cpu = ev.cpu; kind = Wakeup_to_dispatch; start_ts; stop_ts = ev.ts } :: !spans
        | None -> (
          match Hashtbl.find_opt pending_preempt pid with
          | Some start_ts ->
            spans :=
              { pid; cpu = ev.cpu; kind = Preempt_to_resched; start_ts; stop_ts = ev.ts }
              :: !spans
          | None -> ()));
        (match Hashtbl.find_opt pending_migrate pid with
        | Some start_ts ->
          Hashtbl.remove pending_migrate pid;
          spans := { pid; cpu = ev.cpu; kind = Migration; start_ts; stop_ts = ev.ts } :: !spans
        | None -> ());
        Hashtbl.remove pending_preempt pid
      | Event.Block { pid } | Event.Exit { pid } ->
        Hashtbl.remove pending_wake pid;
        Hashtbl.remove pending_preempt pid;
        Hashtbl.remove pending_migrate pid
      | Event.Req_enqueue { req; _ } ->
        if not (Hashtbl.mem pending_ingress req) then Hashtbl.replace pending_ingress req ev.ts
      | Event.Req_take { req; pid } ->
        (match Hashtbl.find_opt pending_ingress req with
        | Some start_ts ->
          Hashtbl.remove pending_ingress req;
          spans := { pid; cpu = ev.cpu; kind = Ingress_wait; start_ts; stop_ts = ev.ts } :: !spans
        | None -> ())
      | Event.Sched_switch _ | Event.Tick | Event.Idle | Event.Pnt_err _
      | Event.Lock_acquire _ | Event.Lock_release _ | Event.Msg_call _ | Event.Panic _
      | Event.Failover _ | Event.Overrun _ | Event.Watchdog_fire _ | Event.Metric_flush _
      | Event.Dsq_insert _ | Event.Dsq_consume _ | Event.Fleet_op _ | Event.Req_done _ -> ())
    events;
  List.rev !spans
