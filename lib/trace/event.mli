(** The schedtrace event taxonomy.

    One constructor per observable scheduling transition.  The machine
    ({!Kernsim.Machine}), the Enoki-C dispatch boundary, and the lock shim
    all emit these through a {!Tracer}; exporters and the online
    {!Sanitizer} consume the same stream.

    Timestamps are simulated nanoseconds ({!Kernsim.Time.ns} is [int]); the
    trace library deliberately depends only on [Ds] so every layer above it
    (kernsim, core, schedulers) may emit events. *)

type ns = int

type kind =
  | Sched_switch of { prev : int option; next : int option }
      (** a cpu switched contexts; [next = None] means it went idle *)
  | Wakeup of { pid : int; waker_cpu : int; affinity : int list option }
      (** a task became runnable (wakeup or spawn) on the event's cpu *)
  | Dispatch of { pid : int }  (** the task started running on the cpu *)
  | Preempt of { pid : int }  (** descheduled while still runnable *)
  | Yield of { pid : int }
  | Block of { pid : int }  (** blocked on a channel or sleeping *)
  | Exit of { pid : int }
  | Migrate of { pid : int; from_cpu : int; to_cpu : int }
  | Tick  (** periodic scheduler tick on the event's cpu *)
  | Idle  (** the cpu entered its idle loop *)
  | Pnt_err of { pid : int; err : string }
      (** a Schedulable token failed validation ([consumed], [wrong_cpu],
          [stale_generation], [bad_select_cpu]) *)
  | Lock_acquire of { lock_id : int }
  | Lock_release of { lock_id : int }
  | Msg_call of { name : string }
      (** one scheduler invocation crossed the Enoki-C message boundary *)
  | Panic of { call : string; reason : string }
      (** a scheduler module raised out of the named hook; the Enoki-C
          boundary caught it ("module panic") *)
  | Failover of { fallback : string }
      (** Enoki-C quarantined the module and switched the policy's tasks to
          the named built-in fallback class *)
  | Overrun of { call : string; charged : ns; budget : ns }
      (** one dispatch charged more simulated time than the configured
          per-call budget (the infinite-loop stand-in) *)
  | Watchdog_fire of { reason : string }
      (** the fault watchdog tripped on the event stream (panic burst,
          call-budget overrun, sanitizer starvation) *)
  | Metric_flush of { tick : int }
      (** the metrics sampler took periodic snapshot number [tick]; an
          observability marker the sanitizer ignores in invariant checks *)
  | Dsq_insert of { dsq : string; pid : int }
      (** a task entered the named dispatch queue ({!Dsq}); observability
          marker, ignored by the sanitizer's invariant checks *)
  | Dsq_consume of { dsq : string; pid : int; wait : ns }
      (** a task left the named dispatch queue after waiting [wait]
          simulated ns (the DSQ dispatch latency); sanitizer-ignored *)
  | Fleet_op of { host : int; op : string }
      (** a cluster orchestration action ("drain", "admit", "upgrade",
          "panic-drill") hit the labelled fleet host; an observability
          marker the sanitizer ignores in invariant checks *)
  | Req_enqueue of { req : int; tenant : int }
      (** a cluster request with a fleet-wide request-id entered the host's
          ingress queue; an anatomy context marker the sanitizer ignores *)
  | Req_take of { req : int; pid : int }
      (** the worker task [pid] dequeued request [req] and began serving
          it; closes the request's {!Spans.Ingress_wait} span *)
  | Req_done of { req : int; pid : int }
      (** the worker task [pid] completed request [req]; sanitizer-ignored *)

type t = { ts : ns; cpu : int; kind : kind }

(** Stable event name ("sched_switch", "wakeup", ...). *)
val name : kind -> string

(** The subject task, when the event has one. *)
val pid_of : kind -> int option

(** Key/value payload for exporters. *)
val args : kind -> (string * string) list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
