(** Request anatomy: online end-to-end latency decomposition for the
    cluster tier.

    Where did a tenant's p99 go?  Every cluster request carries a compact
    int request-id; the fleet reports three observations per request —
    {!enqueue} (the load balancer placed it on a host), {!take} (a worker
    task dequeued it) and {!complete} — plus two task-side facts at take
    time (the worker's [last_wake] and its lifetime migration counter).
    From these the module decomposes the measured end-to-end latency into
    six phases that {b sum exactly} (zero rounding, see
    {!max_sum_error}):

    - [Lb_decision]: request arrival to ingress-queue admission;
    - [Ingress_wait]: sitting in the host's ingress queue before the
      serving worker was woken (a worker that stayed busy between
      requests never re-blocks, so the whole queue delay lands here);
    - [Rq_wait]: worker wakeup to dispatch — the scheduling latency;
    - [Service]: nominal cpu demand (fleet dispatch overhead + request
      service time);
    - [Preempt_stall]: off-cpu time while preempted mid-service, minus
      the migration share;
    - [Migration_cost]: [migrations_during_service * costs.migration],
      capped by the stall.

    Aggregation is bounded-memory: exact per-tenant and per-host phase
    sums, optional per-tenant/per-host/per-phase histograms registered in
    a {!Metrics.Registry} (series [anatomy_phase_ns{tenant=...,phase=...}],
    [anatomy_phase_ns{host=...,phase=...}], [anatomy_e2e_ns{tenant=...}]),
    and a deterministic top-K worst-request exemplar ring whose timelines
    export as Chrome-trace flow events (arrows LB → host ingress →
    runqueue → worker).  Recording never touches simulated time and draws
    no randomness, so anatomy on/off cannot perturb the simulation. *)

type phase =
  | Lb_decision
  | Ingress_wait
  | Rq_wait
  | Service
  | Preempt_stall
  | Migration_cost

(** All phases in [durations]-index order. *)
val phases : phase list

val nr_phases : int

val phase_index : phase -> int

(** Stable name ("lb_decision", "ingress_wait", ...). *)
val phase_name : phase -> string

type completion = {
  req : int;
  tenant : int;
  host : int;
  pid : int;  (** serving worker *)
  arrived : int;
  enqueued : int;
  woken : int;  (** clamped into [enqueued, taken] *)
  taken : int;
  completed : int;
  migrations : int;  (** cross-cpu moves while serving this request *)
  durations : int array;  (** indexed by {!phase_index}; sums to {!e2e} *)
}

val e2e : completion -> int

type t

(** [create ~migration_cost ~tenants ~hosts ()] sizes the exact
    aggregation arrays.  [top_k] bounds the exemplar ring (default 8).
    When [registry] is given, per-tenant/per-host/per-phase histograms
    are registered up front so the record path never allocates. *)
val create :
  ?top_k:int ->
  ?registry:Metrics.Registry.t ->
  migration_cost:int ->
  tenants:string array ->
  hosts:int ->
  unit ->
  t

(** The LB placed request [req] into host [host]'s ingress queue at
    [now].  [service] is the request's nominal cpu demand including the
    fleet's dispatch overhead; [arrived] is the traffic-engine arrival. *)
val enqueue :
  t -> req:int -> tenant:int -> host:int -> arrived:int -> service:int -> now:int -> unit

(** Worker [pid] dequeued [req] at [now].  [last_wake] and [migrations]
    come from the worker's {!Kernsim.Task.t} at take time. *)
val take : t -> req:int -> pid:int -> last_wake:int -> migrations:int -> now:int -> unit

(** Worker finished [req] at [now]; [migrations] is the worker's counter
    at completion (the delta since take is charged to the request). *)
val complete : t -> req:int -> migrations:int -> now:int -> unit

(** Hook invoked with each completion after aggregation (tests, CLI). *)
val on_complete : t -> (completion -> unit) -> unit

val completions : t -> int

(** Requests enqueued but not yet completed. *)
val inflight : t -> int

(** Take/complete calls whose request-id was unknown (dropped requests). *)
val orphans : t -> int

(** Max |sum(durations) - e2e| seen; 0 by construction. *)
val max_sum_error : t -> int

(** The top-K worst completions, worst first (ties broken by lower
    request-id); deterministic for a fixed event order. *)
val exemplars : t -> completion list

val tenant_names : t -> string array

val nr_hosts : t -> int

val tenant_count : t -> int -> int

val tenant_phase_sum : t -> int -> phase -> int

val tenant_e2e_sum : t -> int -> int

val host_count : t -> int -> int

val host_phase_sum : t -> int -> phase -> int

(** Chrome trace-event JSON for the exemplar ring: one process per host
    plus a "load balancer" process, per-phase slices, and flow arrows
    following each request across tracks.  Load into Perfetto /
    [chrome://tracing]. *)
val chrome_json : t -> string

val save_chrome : t -> path:string -> unit
