type format = Chrome | Ftrace

let format_to_string = function Chrome -> "chrome" | Ftrace -> "ftrace"

let format_of_string = function
  | "chrome" -> Some Chrome
  | "ftrace" -> Some Ftrace
  | _ -> None

(* ---------- JSON helpers ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome's trace-event timestamps are microseconds. *)
let us_of_ns ns = float_of_int ns /. 1e3

let json_args kvs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) kvs)
  ^ "}"

let meta_event ~pid ~tid ~name ~value =
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
    name pid tid (json_escape value)

let instant_event (ev : Event.t) =
  Printf.sprintf "{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":%s}"
    (Event.name ev.kind) (us_of_ns ev.ts) ev.cpu (json_args (Event.args ev.kind))

let complete_event ~name ~cat ~pid ~tid ~start_ns ~stop_ns ~args =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":%s}"
    (json_escape name) cat (us_of_ns start_ns)
    (us_of_ns (max 0 (stop_ns - start_ns)))
    pid tid (json_args args)

(* Reconstruct per-cpu running slices from dispatch/deschedule events so the
   trace shows task occupancy bars, not just instants. *)
let run_slices events =
  let nr_cpus =
    List.fold_left (fun acc (ev : Event.t) -> max acc (ev.cpu + 1)) 1 events
  in
  let open_slice = Array.make nr_cpus None in
  let slices = ref [] in
  let close cpu stop_ns =
    match open_slice.(cpu) with
    | Some (pid, start_ns) ->
      open_slice.(cpu) <- None;
      slices := (cpu, pid, start_ns, stop_ns) :: !slices
    | None -> ()
  in
  List.iter
    (fun (ev : Event.t) ->
      match ev.kind with
      | Event.Dispatch { pid } ->
        close ev.cpu ev.ts;
        open_slice.(ev.cpu) <- Some (pid, ev.ts)
      | Event.Preempt { pid } | Event.Yield { pid } | Event.Block { pid } | Event.Exit { pid } ->
        (match open_slice.(ev.cpu) with
        | Some (p, _) when p = pid -> close ev.cpu ev.ts
        | Some _ | None -> ())
      | Event.Idle | Event.Sched_switch { next = None; _ } -> close ev.cpu ev.ts
      | Event.Sched_switch _ | Event.Wakeup _ | Event.Migrate _ | Event.Tick | Event.Pnt_err _
      | Event.Lock_acquire _ | Event.Lock_release _ | Event.Msg_call _ | Event.Panic _
      | Event.Failover _ | Event.Overrun _ | Event.Watchdog_fire _ | Event.Metric_flush _
      | Event.Dsq_insert _ | Event.Dsq_consume _ | Event.Fleet_op _ | Event.Req_enqueue _
      | Event.Req_take _ | Event.Req_done _ -> ())
    events;
  (* close dangling slices at the last timestamp seen *)
  let last_ts = List.fold_left (fun acc (ev : Event.t) -> max acc ev.ts) 0 events in
  Array.iteri (fun cpu _ -> close cpu last_ts) open_slice;
  (nr_cpus, List.rev !slices)

let chrome_json ?(spans = true) events =
  let nr_cpus, slices = run_slices events in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let add line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf line
  in
  add (meta_event ~pid:0 ~tid:0 ~name:"process_name" ~value:"machine");
  for cpu = 0 to nr_cpus - 1 do
    add (meta_event ~pid:0 ~tid:cpu ~name:"thread_name" ~value:(Printf.sprintf "cpu %d" cpu))
  done;
  List.iter
    (fun (cpu, pid, start_ns, stop_ns) ->
      add
        (complete_event
           ~name:(Printf.sprintf "pid %d" pid)
           ~cat:"run" ~pid:0 ~tid:cpu ~start_ns ~stop_ns
           ~args:[ ("pid", string_of_int pid) ]))
    slices;
  List.iter (fun ev -> add (instant_event ev)) events;
  if spans then begin
    let span_list = Spans.of_events events in
    if span_list <> [] then begin
      add (meta_event ~pid:1 ~tid:0 ~name:"process_name" ~value:"latency spans");
      add (meta_event ~pid:1 ~tid:0 ~name:"thread_name" ~value:"wakeup_to_dispatch");
      add (meta_event ~pid:1 ~tid:1 ~name:"thread_name" ~value:"preempt_to_resched");
      add (meta_event ~pid:1 ~tid:2 ~name:"thread_name" ~value:"migration");
      add (meta_event ~pid:1 ~tid:3 ~name:"thread_name" ~value:"ingress_wait");
      List.iter
        (fun (s : Spans.t) ->
          let tid =
            match s.kind with
            | Spans.Wakeup_to_dispatch -> 0
            | Spans.Preempt_to_resched -> 1
            | Spans.Migration -> 2
            | Spans.Ingress_wait -> 3
          in
          add
            (complete_event
               ~name:(Printf.sprintf "pid %d" s.pid)
               ~cat:"latency" ~pid:1 ~tid ~start_ns:s.start_ts ~stop_ns:s.stop_ts
               ~args:[ ("pid", string_of_int s.pid); ("cpu", string_of_int s.cpu) ]))
        span_list
    end
  end;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ---------- ftrace-style text ---------- *)

let ftrace_line (ev : Event.t) =
  let secs = ev.ts / 1_000_000_000 in
  let usecs = ev.ts mod 1_000_000_000 / 1_000 in
  let args =
    match Event.args ev.kind with
    | [] -> ""
    | kvs -> " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
  in
  Printf.sprintf "          enoki-%-5s [%03d] %6d.%06d: %s:%s"
    (match Event.pid_of ev.kind with Some p -> string_of_int p | None -> "0")
    ev.cpu secs usecs (Event.name ev.kind) args

let ftrace events =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "# tracer: schedtrace\n";
  Buffer.add_string buf "#           TASK-PID    [CPU]  TIMESTAMP: EVENT: ARGS\n";
  List.iter
    (fun ev ->
      Buffer.add_string buf (ftrace_line ev);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let render format events =
  match format with Chrome -> chrome_json events | Ftrace -> ftrace events

let save ~path format events =
  let oc = open_out path in
  Fun.protect
    (fun () -> output_string oc (render format events))
    ~finally:(fun () -> close_out oc)
