(** Trace exporters.

    [Chrome] emits trace-event JSON loadable in [chrome://tracing] or
    Perfetto: one "machine" process with a thread per cpu, run slices
    reconstructed from dispatch/deschedule pairs, instant markers for every
    raw event, and a second "latency spans" process carrying the derived
    {!Spans} (wakeup→dispatch, preempt→resched).

    [Ftrace] emits the familiar one-line-per-event text format
    ([task-pid [cpu] seconds.usecs: event: args]). *)

type format = Chrome | Ftrace

val format_to_string : format -> string

val format_of_string : string -> format option

(** Full Chrome trace-event JSON document ([{"traceEvents": [...]}]).
    [spans] (default true) includes the derived latency spans. *)
val chrome_json : ?spans:bool -> Event.t list -> string

(** Ftrace-style text. *)
val ftrace : Event.t list -> string

val render : format -> Event.t list -> string

val save : path:string -> format -> Event.t list -> unit
