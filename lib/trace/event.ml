type ns = int

type kind =
  | Sched_switch of { prev : int option; next : int option }
  | Wakeup of { pid : int; waker_cpu : int; affinity : int list option }
  | Dispatch of { pid : int }
  | Preempt of { pid : int }
  | Yield of { pid : int }
  | Block of { pid : int }
  | Exit of { pid : int }
  | Migrate of { pid : int; from_cpu : int; to_cpu : int }
  | Tick
  | Idle
  | Pnt_err of { pid : int; err : string }
  | Lock_acquire of { lock_id : int }
  | Lock_release of { lock_id : int }
  | Msg_call of { name : string }
  | Panic of { call : string; reason : string }
  | Failover of { fallback : string }
  | Overrun of { call : string; charged : ns; budget : ns }
  | Watchdog_fire of { reason : string }
  | Metric_flush of { tick : int }
  | Dsq_insert of { dsq : string; pid : int }
  | Dsq_consume of { dsq : string; pid : int; wait : ns }
  | Fleet_op of { host : int; op : string }
      (* a fleet orchestration action (drain/admit/upgrade/drill) touched
         the labelled host; observability marker, sanitizer-ignored *)
  | Req_enqueue of { req : int; tenant : int }
      (* a cluster request landed in the host ingress queue; anatomy
         context marker, sanitizer-ignored *)
  | Req_take of { req : int; pid : int }
      (* a worker task pulled the request off the ingress queue *)
  | Req_done of { req : int; pid : int }
      (* the worker finished serving the request *)

type t = { ts : ns; cpu : int; kind : kind }

let name = function
  | Sched_switch _ -> "sched_switch"
  | Wakeup _ -> "wakeup"
  | Dispatch _ -> "dispatch"
  | Preempt _ -> "preempt"
  | Yield _ -> "yield"
  | Block _ -> "block"
  | Exit _ -> "exit"
  | Migrate _ -> "migrate"
  | Tick -> "tick"
  | Idle -> "idle"
  | Pnt_err _ -> "pnt_err"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_release _ -> "lock_release"
  | Msg_call _ -> "msg_call"
  | Panic _ -> "panic"
  | Failover _ -> "failover"
  | Overrun _ -> "overrun"
  | Watchdog_fire _ -> "watchdog_fire"
  | Metric_flush _ -> "metric_flush"
  | Dsq_insert _ -> "dsq_insert"
  | Dsq_consume _ -> "dsq_consume"
  | Fleet_op _ -> "fleet_op"
  | Req_enqueue _ -> "req_enqueue"
  | Req_take _ -> "req_take"
  | Req_done _ -> "req_done"

let pid_of = function
  | Wakeup { pid; _ }
  | Dispatch { pid }
  | Preempt { pid }
  | Yield { pid }
  | Block { pid }
  | Exit { pid }
  | Migrate { pid; _ }
  | Pnt_err { pid; _ }
  | Dsq_insert { pid; _ }
  | Dsq_consume { pid; _ }
  | Req_take { pid; _ }
  | Req_done { pid; _ } -> Some pid
  | Sched_switch { next = Some pid; _ } -> Some pid
  | Sched_switch _ | Tick | Idle | Lock_acquire _ | Lock_release _ | Msg_call _ | Panic _
  | Failover _ | Overrun _ | Watchdog_fire _ | Metric_flush _ | Fleet_op _ | Req_enqueue _ ->
    None

let opt_pid = function None -> "idle" | Some p -> string_of_int p

let args = function
  | Sched_switch { prev; next } -> [ ("prev", opt_pid prev); ("next", opt_pid next) ]
  | Wakeup { pid; waker_cpu; affinity } ->
    ("pid", string_of_int pid) :: ("waker_cpu", string_of_int waker_cpu)
    ::
    (match affinity with
    | None -> []
    | Some cpus -> [ ("affinity", String.concat "," (List.map string_of_int cpus)) ])
  | Dispatch { pid } | Preempt { pid } | Yield { pid } | Block { pid } | Exit { pid } ->
    [ ("pid", string_of_int pid) ]
  | Migrate { pid; from_cpu; to_cpu } ->
    [ ("pid", string_of_int pid); ("from", string_of_int from_cpu); ("to", string_of_int to_cpu) ]
  | Tick | Idle -> []
  | Pnt_err { pid; err } -> [ ("pid", string_of_int pid); ("err", err) ]
  | Lock_acquire { lock_id } | Lock_release { lock_id } -> [ ("lock", string_of_int lock_id) ]
  | Msg_call { name } -> [ ("call", name) ]
  | Panic { call; reason } -> [ ("call", call); ("reason", reason) ]
  | Failover { fallback } -> [ ("fallback", fallback) ]
  | Overrun { call; charged; budget } ->
    [ ("call", call); ("charged", string_of_int charged); ("budget", string_of_int budget) ]
  | Watchdog_fire { reason } -> [ ("reason", reason) ]
  | Metric_flush { tick } -> [ ("tick", string_of_int tick) ]
  | Dsq_insert { dsq; pid } -> [ ("dsq", dsq); ("pid", string_of_int pid) ]
  | Dsq_consume { dsq; pid; wait } ->
    [ ("dsq", dsq); ("pid", string_of_int pid); ("wait", string_of_int wait) ]
  | Fleet_op { host; op } -> [ ("host", string_of_int host); ("op", op) ]
  | Req_enqueue { req; tenant } ->
    [ ("req", string_of_int req); ("tenant", string_of_int tenant) ]
  | Req_take { req; pid } | Req_done { req; pid } ->
    [ ("req", string_of_int req); ("pid", string_of_int pid) ]

let pp fmt t =
  Format.fprintf fmt "[%d] %d %s" t.cpu t.ts (name t.kind);
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) (args t.kind)

let to_string t = Format.asprintf "%a" pp t
