type violation_kind =
  | Double_run
  | Starvation
  | Work_conservation
  | Token_discipline
  | Lock_imbalance

let kind_name = function
  | Double_run -> "double_run"
  | Starvation -> "starvation"
  | Work_conservation -> "work_conservation"
  | Token_discipline -> "token_discipline"
  | Lock_imbalance -> "lock_imbalance"

type violation = {
  at : int;
  cpu : int;
  vkind : violation_kind;
  detail : string;
  window : Event.t list;
}

type config = {
  starvation_bound : int;
  wc_grace : int;
  window : int;
  disabled : violation_kind list;
}

let default_config =
  {
    (* a runnable task waiting 100ms of simulated time is starved *)
    starvation_bound = 100_000_000;
    (* a cpu idling 5ms while an eligible task waits breaks work conservation *)
    wc_grace = 5_000_000;
    window = 32;
    (* schedulers that renounce an invariant by design (a core arbiter is
       not work-conserving) list the corresponding kinds here *)
    disabled = [];
  }

type t = {
  config : config;
  nr_cpus : int;
  running : (int, int) Hashtbl.t; (* pid -> cpu it is dispatched on *)
  current : int option array; (* per-cpu dispatched pid *)
  runnable : (int, int) Hashtbl.t; (* pid -> runnable-since timestamp *)
  affinity : (int, int list option) Hashtbl.t;
  starved_reported : (int, unit) Hashtbl.t; (* once per runnable episode *)
  wc_reported : bool array; (* once per idle episode, per cpu *)
  lock_stacks : int list array; (* per logical tid, held lock ids *)
  recent : Event.t Ds.Ring_buffer.t; (* trailing context, newest kept *)
  mutable violations : violation list; (* newest first *)
  mutable events_seen : int;
}

let create ?(config = default_config) ~nr_cpus () =
  {
    config;
    nr_cpus;
    running = Hashtbl.create 64;
    current = Array.make nr_cpus None;
    runnable = Hashtbl.create 64;
    affinity = Hashtbl.create 64;
    starved_reported = Hashtbl.create 16;
    wc_reported = Array.make nr_cpus false;
    lock_stacks = Array.make nr_cpus [];
    recent = Ds.Ring_buffer.create ~capacity:(max 1 config.window);
    violations = [];
    events_seen = 0;
  }

let violate t ~at ~cpu vkind detail =
  if not (List.mem vkind t.config.disabled) then begin
    (* snapshot without consuming: drain then re-push the trailing window *)
    let ctx = Ds.Ring_buffer.drain t.recent in
    List.iter (fun ev -> ignore (Ds.Ring_buffer.push t.recent ev)) ctx;
    t.violations <- { at; cpu; vkind; detail; window = ctx } :: t.violations
  end

let allowed t pid cpu =
  match Hashtbl.find_opt t.affinity pid with
  | Some (Some cpus) -> List.mem cpu cpus
  | Some None | None -> true

let set_runnable t pid ts = if not (Hashtbl.mem t.runnable pid) then Hashtbl.replace t.runnable pid ts

let clear_runnable t pid =
  Hashtbl.remove t.runnable pid;
  Hashtbl.remove t.starved_reported pid

let stop_running t pid cpu =
  Hashtbl.remove t.running pid;
  if t.current.(cpu) = Some pid then t.current.(cpu) <- None;
  (* the pid may have been dispatched elsewhere per our bookkeeping if a
     double-run slipped through; clear every slot that names it *)
  Array.iteri (fun c p -> if p = Some pid then t.current.(c) <- None) t.current

let check_starvation t now =
  Hashtbl.iter
    (fun pid since ->
      if now - since > t.config.starvation_bound && not (Hashtbl.mem t.starved_reported pid)
      then begin
        Hashtbl.replace t.starved_reported pid ();
        violate t ~at:now ~cpu:(-1) Starvation
          (Printf.sprintf "pid %d runnable for %dns (bound %dns) without being dispatched" pid
             (now - since) t.config.starvation_bound)
      end)
    t.runnable

let check_work_conservation t now =
  for cpu = 0 to t.nr_cpus - 1 do
    if t.current.(cpu) = None then begin
      if not t.wc_reported.(cpu) then begin
        let waiting =
          Hashtbl.fold
            (fun pid since acc ->
              match acc with
              | Some _ -> acc
              | None ->
                if now - since > t.config.wc_grace && allowed t pid cpu then Some (pid, since)
                else None)
            t.runnable None
        in
        match waiting with
        | Some (pid, since) ->
          t.wc_reported.(cpu) <- true;
          violate t ~at:now ~cpu Work_conservation
            (Printf.sprintf "cpu %d idle while pid %d has been runnable for %dns" cpu pid
               (now - since))
        | None -> ()
      end
    end
    else t.wc_reported.(cpu) <- false
  done

let feed t (ev : Event.t) =
  t.events_seen <- t.events_seen + 1;
  (* trailing window: keep the newest [config.window] events *)
  if Ds.Ring_buffer.is_full t.recent then ignore (Ds.Ring_buffer.pop t.recent);
  ignore (Ds.Ring_buffer.push t.recent ev);
  let cpu = ev.cpu in
  match ev.kind with
  | Event.Wakeup { pid; affinity; _ } ->
    Hashtbl.replace t.affinity pid affinity;
    set_runnable t pid ev.ts
  | Event.Dispatch { pid } ->
    (match Hashtbl.find_opt t.running pid with
    | Some other when other <> cpu ->
      violate t ~at:ev.ts ~cpu Double_run
        (Printf.sprintf "pid %d dispatched on cpu %d while still running on cpu %d" pid cpu
           other)
    | Some _ | None -> ());
    Hashtbl.replace t.running pid cpu;
    t.current.(cpu) <- Some pid;
    t.wc_reported.(cpu) <- false;
    clear_runnable t pid
  | Event.Preempt { pid } | Event.Yield { pid } ->
    stop_running t pid cpu;
    set_runnable t pid ev.ts
  | Event.Block { pid } ->
    stop_running t pid cpu;
    clear_runnable t pid
  | Event.Exit { pid } ->
    stop_running t pid cpu;
    clear_runnable t pid;
    Hashtbl.remove t.affinity pid
  | Event.Idle -> (
    match t.current.(cpu) with
    | Some pid -> stop_running t pid cpu
    | None -> ())
  | Event.Sched_switch { next = None; _ } -> (
    match t.current.(cpu) with
    | Some pid -> stop_running t pid cpu
    | None -> ())
  | Event.Sched_switch _ | Event.Migrate _ -> ()
  | Event.Tick ->
    (* invariants that need the passage of time are evaluated on the
       periodic tick; run the global scans once per tick wave (cpu 0) *)
    if cpu = 0 then begin
      check_starvation t ev.ts;
      check_work_conservation t ev.ts
    end
  | Event.Pnt_err { pid; err } ->
    violate t ~at:ev.ts ~cpu Token_discipline
      (Printf.sprintf "Schedulable token for pid %d rejected on cpu %d: %s" pid cpu err)
  | Event.Lock_acquire { lock_id } ->
    if cpu >= 0 && cpu < t.nr_cpus then t.lock_stacks.(cpu) <- lock_id :: t.lock_stacks.(cpu)
  | Event.Lock_release { lock_id } -> (
    if cpu >= 0 && cpu < t.nr_cpus then
      match t.lock_stacks.(cpu) with
      | top :: rest when top = lock_id -> t.lock_stacks.(cpu) <- rest
      | top :: _ ->
        violate t ~at:ev.ts ~cpu Lock_imbalance
          (Printf.sprintf "cpu %d released lock %d but lock %d was acquired last" cpu lock_id
             top)
      | [] ->
        violate t ~at:ev.ts ~cpu Lock_imbalance
          (Printf.sprintf "cpu %d released lock %d it never acquired" cpu lock_id))
  | Event.Msg_call _ -> ()
  | Event.Panic _ | Event.Failover _ | Event.Overrun _ | Event.Watchdog_fire _ ->
    (* fault-subsystem markers; the watchdog consumes these, the invariant
       checks above keep deriving state from the scheduling events alone *)
    ()
  | Event.Metric_flush _ | Event.Dsq_insert _ | Event.Dsq_consume _ | Event.Fleet_op _
  | Event.Req_enqueue _ | Event.Req_take _ | Event.Req_done _ ->
    (* observability markers (metrics sampler, dispatch-queue movements,
       fleet orchestration, request anatomy): never part of any scheduling
       invariant *)
    ()

let attach t tracer = Tracer.subscribe tracer (feed t)

let violations t = List.rev t.violations

let violations_of_kind t k = List.filter (fun v -> v.vkind = k) (violations t)

let ok t = t.violations = []

let events_seen t = t.events_seen

let pp_violation fmt v =
  Format.fprintf fmt "%s at t=%dns%s: %s" (kind_name v.vkind) v.at
    (if v.cpu >= 0 then Printf.sprintf " [cpu %d]" v.cpu else "")
    v.detail;
  if v.window <> [] then begin
    Format.fprintf fmt "@,  trailing events:";
    List.iter (fun ev -> Format.fprintf fmt "@,    %s" (Event.to_string ev)) v.window
  end

(* a fault-injection storm can rack up tens of thousands of violations;
   print the first few in full and summarise the rest *)
let max_detailed = 20

let pp_report fmt t =
  let vs = violations t in
  let n = List.length vs in
  Format.fprintf fmt "@[<v>sanitizer: %d events checked, %d violation%s" t.events_seen n
    (if n = 1 then "" else "s");
  List.iteri
    (fun i v -> if i < max_detailed then Format.fprintf fmt "@,%a" pp_violation v)
    vs;
  if n > max_detailed then
    Format.fprintf fmt "@,... and %d more (first %d shown)" (n - max_detailed) max_detailed;
  Format.fprintf fmt "@]"

let report_string t = Format.asprintf "%a" pp_report t
