(** Per-CPU bounded event rings with online subscribers.

    The tracer mirrors the record subsystem's transport discipline (§3.4 of
    the paper): events are pushed from "kernel" context onto fixed-capacity
    per-cpu ring buffers and drained later; overruns drop the newest events
    and are counted, never blocking the emitter.  Subscribers (the online
    {!Sanitizer}) additionally observe every event at emission time, before
    any drop, so invariant checking sees the complete stream even when the
    rings overrun.

    When no tracer is attached, emitters skip a single [option] match — the
    zero-cost-when-disabled contract the machine relies on. *)

type t

(** [create ~nr_cpus ()] makes one ring of [capacity] (default 65536)
    events per cpu. *)
val create : ?capacity:int -> nr_cpus:int -> unit -> t

val nr_cpus : t -> int

(** [emit t ~ts ~cpu kind] appends an event: pushed onto [cpu]'s ring
    (dropped and counted when full) and delivered to every subscriber.
    Out-of-range cpus are folded onto cpu 0 rather than lost. *)
val emit : t -> ts:int -> cpu:int -> Event.kind -> unit

(** Register an online consumer, called synchronously on every emit. *)
val subscribe : t -> (Event.t -> unit) -> unit

(** Total events offered to the tracer (including later drops). *)
val emitted : t -> int

(** Events rejected because a ring was full. *)
val dropped : t -> int

val dropped_of_cpu : t -> int -> int

(** Events currently queued across all rings. *)
val buffered : t -> int

(** Drain every ring and return the merged stream in timestamp order.
    Destructive: a second call returns only events emitted in between. *)
val events : t -> Event.t list
