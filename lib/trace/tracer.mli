(** Per-CPU bounded event rings with online subscribers.

    The tracer mirrors the record subsystem's transport discipline (§3.4 of
    the paper): events are pushed from "kernel" context onto fixed-capacity
    per-cpu ring buffers and drained later; overruns drop the newest events
    and are counted, never blocking the emitter.  Subscribers (the online
    {!Sanitizer}) additionally observe every event at emission time, before
    any drop, so invariant checking sees the complete stream even when the
    rings overrun.

    Storage is struct-of-arrays int columns, not boxed {!Event.t} values:
    the hot kinds the machine emits carry at most three small ints, and the
    packed [emit_*] entry points below write them without constructing a
    variant or option — tracing-on runs stay allocation-free on the event
    path.  Cold (string-carrying) kinds fall back to a boxed side column.
    Decoding back to {!Event.t} happens at {!events}-drain time, or per
    event when a subscriber is attached.

    When no tracer is attached, emitters skip a single [option] match — the
    zero-cost-when-disabled contract the machine relies on. *)

type t

(** [create ~nr_cpus ()] makes one ring of [capacity] (default 65536)
    events per cpu. *)
val create : ?capacity:int -> nr_cpus:int -> unit -> t

val nr_cpus : t -> int

(** [emit t ~ts ~cpu kind] appends an event: pushed onto [cpu]'s ring
    (dropped and counted when full) and delivered to every subscriber.
    Out-of-range cpus are folded onto cpu 0 rather than lost.  Hot kinds
    are re-packed into the int columns, so storage and drain order are
    identical whichever entry point an event came in by. *)
val emit : t -> ts:int -> cpu:int -> Event.kind -> unit

(** {2 Packed emitters}

    Allocation-free equivalents of {!emit} for the machine's hot kinds:
    the payload travels as ints, [-1] meaning "no task" where a pid is
    optional.  [emit_wakeup] is the affinity-free wakeup; a wakeup
    carrying an affinity mask must go through {!emit}. *)

val emit_switch : t -> ts:int -> cpu:int -> prev:int -> next:int -> unit
val emit_wakeup : t -> ts:int -> cpu:int -> pid:int -> waker_cpu:int -> unit
val emit_dispatch : t -> ts:int -> cpu:int -> pid:int -> unit
val emit_preempt : t -> ts:int -> cpu:int -> pid:int -> unit
val emit_yield : t -> ts:int -> cpu:int -> pid:int -> unit
val emit_block : t -> ts:int -> cpu:int -> pid:int -> unit
val emit_exit : t -> ts:int -> cpu:int -> pid:int -> unit
val emit_migrate : t -> ts:int -> cpu:int -> pid:int -> from_cpu:int -> to_cpu:int -> unit
val emit_tick : t -> ts:int -> cpu:int -> unit
val emit_idle : t -> ts:int -> cpu:int -> unit

(** Register an online consumer, called synchronously on every emit. *)
val subscribe : t -> (Event.t -> unit) -> unit

(** Total events offered to the tracer (including later drops). *)
val emitted : t -> int

(** Events rejected because a ring was full. *)
val dropped : t -> int

val dropped_of_cpu : t -> int -> int

(** Events currently queued across all rings. *)
val buffered : t -> int

(** Drain every ring and return the merged stream in timestamp order.
    Destructive: a second call returns only events emitted in between. *)
val events : t -> Event.t list
