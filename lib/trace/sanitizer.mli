(** The online scheduling-invariant sanitizer.

    Subscribes to a {!Tracer} and re-derives the authoritative scheduling
    state (who is running where, who is runnable since when, which locks
    are held) from the event stream alone, checking on every event:

    - {b double_run}: no pid is dispatched on two cpus at once — the
      property the Schedulable capability makes unrepresentable for
      well-typed schedulers, re-checked here dynamically;
    - {b starvation}: no runnable task waits longer than
      [config.starvation_bound] without being dispatched;
    - {b work_conservation}: no cpu stays idle past [config.wc_grace]
      while a task it is allowed to run has been runnable that long;
    - {b token_discipline}: every [pnt_err] (consumed / wrong-cpu / stale
      Schedulable use) is surfaced as a violation;
    - {b lock_imbalance}: lock releases pair LIFO with acquires per
      logical kernel thread.

    Each violation captures the trailing [config.window] events as context,
    the record/replay philosophy of §3.4 applied online.  The sanitizer
    subscribes at emission time, so it observes events even when the
    tracer's bounded rings overrun. *)

type violation_kind =
  | Double_run
  | Starvation
  | Work_conservation
  | Token_discipline
  | Lock_imbalance

val kind_name : violation_kind -> string

type violation = {
  at : int;  (** simulated time of detection *)
  cpu : int;  (** cpu involved, [-1] for global checks *)
  vkind : violation_kind;
  detail : string;
  window : Event.t list;  (** trailing events leading up to the violation *)
}

type config = {
  starvation_bound : int;  (** ns a task may stay runnable undispatched *)
  wc_grace : int;  (** ns a cpu may idle while eligible work waits *)
  window : int;  (** trailing events kept as violation context *)
  disabled : violation_kind list;
      (** invariant classes the scheduler under test renounces by design
          (e.g. a core arbiter like Arachne is neither work-conserving nor
          starvation-free for parked activations) *)
}

(** 100ms starvation bound, 5ms work-conservation grace, 32-event window,
    every invariant class enabled. *)
val default_config : config

type t

val create : ?config:config -> nr_cpus:int -> unit -> t

(** Feed one event (timestamp order assumed). *)
val feed : t -> Event.t -> unit

(** Subscribe [t] to every event [tracer] emits. *)
val attach : t -> Tracer.t -> unit

(** All violations, oldest first. *)
val violations : t -> violation list

val violations_of_kind : t -> violation_kind -> violation list

val ok : t -> bool

val events_seen : t -> int

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> t -> unit

val report_string : t -> string
