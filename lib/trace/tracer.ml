(* Per-CPU rings in struct-of-arrays int encoding.  The hot event kinds —
   everything the machine emits on its dispatch path — carry at most three
   small ints, so each ring stores five parallel int columns (ts, tag, a,
   b, c) and the packed [emit_*] entry points write straight into them:
   no [Event.kind] variant, no option boxing, no record per event.  Cold
   kinds (string-carrying diagnostics, affinity-masked wakeups) keep their
   boxed representation in a lazily-allocated side column.  Events are
   decoded back to [Event.t] only at drain time, or when an online
   subscriber is attached (subscribers see complete [Event.t] values, so a
   subscribed tracer pays the boxing — the sanitizer path accepts that).

   Drop discipline is identical to [Ds.Ring_buffer]: a full ring drops the
   {e newest} event and counts it, never blocking the emitter. *)

type ring = {
  r_ts : int array;
  r_tag : int array;
  r_a : int array;
  r_b : int array;
  r_c : int array;
  (* boxed payloads for cold kinds, parallel to the int columns, only read
     where [r_tag] = [tag_cold]; allocated on first cold emit because most
     rings only ever see hot kinds *)
  mutable r_cold : Event.kind array;
  mutable r_head : int; (* next slot to pop *)
  mutable r_len : int;
  mutable r_dropped : int;
}

type t = {
  rings : ring array;
  mutable subscribers : (Event.t -> unit) list;
  mutable emitted : int;
}

let tag_switch = 0
let tag_wakeup = 1 (* affinity-free; a wakeup with an affinity mask goes cold *)
let tag_dispatch = 2
let tag_preempt = 3
let tag_yield = 4
let tag_block = 5
let tag_exit = 6
let tag_migrate = 7
let tag_tick = 8
let tag_idle = 9
let tag_cold = 10

let make_ring capacity =
  {
    r_ts = Array.make capacity 0;
    r_tag = Array.make capacity 0;
    r_a = Array.make capacity 0;
    r_b = Array.make capacity 0;
    r_c = Array.make capacity 0;
    r_cold = [||];
    r_head = 0;
    r_len = 0;
    r_dropped = 0;
  }

let create ?(capacity = 65536) ~nr_cpus () =
  if nr_cpus <= 0 then invalid_arg "Tracer.create: nr_cpus must be positive";
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { rings = Array.init nr_cpus (fun _ -> make_ring capacity); subscribers = []; emitted = 0 }

let nr_cpus t = Array.length t.rings

(* Claim the next write slot, or -1 when the ring is full — the newest
   event is the one dropped, matching [Ring_buffer.push]. *)
let claim r =
  let cap = Array.length r.r_ts in
  if r.r_len = cap then begin
    r.r_dropped <- r.r_dropped + 1;
    -1
  end
  else begin
    let i = (r.r_head + r.r_len) mod cap in
    r.r_len <- r.r_len + 1;
    i
  end

(* Decode a hot tag's int payload back into the variant; never [tag_cold]. *)
let decode_tag tag a b c =
  match tag with
  | 0 ->
    Event.Sched_switch
      { prev = (if a < 0 then None else Some a); next = (if b < 0 then None else Some b) }
  | 1 -> Event.Wakeup { pid = a; waker_cpu = b; affinity = None }
  | 2 -> Event.Dispatch { pid = a }
  | 3 -> Event.Preempt { pid = a }
  | 4 -> Event.Yield { pid = a }
  | 5 -> Event.Block { pid = a }
  | 6 -> Event.Exit { pid = a }
  | 7 -> Event.Migrate { pid = a; from_cpu = b; to_cpu = c }
  | 8 -> Event.Tick
  | _ -> Event.Idle

let deliver t ~ts ~cpu kind =
  let ev = { Event.ts; cpu; kind } in
  List.iter (fun f -> f ev) t.subscribers

let emit_packed t ~ts ~cpu ~tag ~a ~b ~c =
  let cpu = if cpu >= 0 && cpu < Array.length t.rings then cpu else 0 in
  t.emitted <- t.emitted + 1;
  let r = t.rings.(cpu) in
  let i = claim r in
  if i >= 0 then begin
    r.r_ts.(i) <- ts;
    r.r_tag.(i) <- tag;
    r.r_a.(i) <- a;
    r.r_b.(i) <- b;
    r.r_c.(i) <- c
  end;
  match t.subscribers with
  | [] -> ()
  | _ -> deliver t ~ts ~cpu (decode_tag tag a b c)

(* pid columns encode "no task" as -1 (simulator pids are never negative) *)
let emit_switch t ~ts ~cpu ~prev ~next = emit_packed t ~ts ~cpu ~tag:tag_switch ~a:prev ~b:next ~c:0
let emit_wakeup t ~ts ~cpu ~pid ~waker_cpu =
  emit_packed t ~ts ~cpu ~tag:tag_wakeup ~a:pid ~b:waker_cpu ~c:0
let emit_dispatch t ~ts ~cpu ~pid = emit_packed t ~ts ~cpu ~tag:tag_dispatch ~a:pid ~b:0 ~c:0
let emit_preempt t ~ts ~cpu ~pid = emit_packed t ~ts ~cpu ~tag:tag_preempt ~a:pid ~b:0 ~c:0
let emit_yield t ~ts ~cpu ~pid = emit_packed t ~ts ~cpu ~tag:tag_yield ~a:pid ~b:0 ~c:0
let emit_block t ~ts ~cpu ~pid = emit_packed t ~ts ~cpu ~tag:tag_block ~a:pid ~b:0 ~c:0
let emit_exit t ~ts ~cpu ~pid = emit_packed t ~ts ~cpu ~tag:tag_exit ~a:pid ~b:0 ~c:0
let emit_migrate t ~ts ~cpu ~pid ~from_cpu ~to_cpu =
  emit_packed t ~ts ~cpu ~tag:tag_migrate ~a:pid ~b:from_cpu ~c:to_cpu
let emit_tick t ~ts ~cpu = emit_packed t ~ts ~cpu ~tag:tag_tick ~a:0 ~b:0 ~c:0
let emit_idle t ~ts ~cpu = emit_packed t ~ts ~cpu ~tag:tag_idle ~a:0 ~b:0 ~c:0

let emit_cold t ~ts ~cpu kind =
  let cpu = if cpu >= 0 && cpu < Array.length t.rings then cpu else 0 in
  t.emitted <- t.emitted + 1;
  let r = t.rings.(cpu) in
  let i = claim r in
  if i >= 0 then begin
    if Array.length r.r_cold = 0 then r.r_cold <- Array.make (Array.length r.r_ts) Event.Tick;
    r.r_ts.(i) <- ts;
    r.r_tag.(i) <- tag_cold;
    r.r_cold.(i) <- kind
  end;
  match t.subscribers with [] -> () | _ -> deliver t ~ts ~cpu kind

let opt_pid = function None -> -1 | Some p -> p

(* Boxed entry point, kept for the cold emitters (fleet orchestration,
   faults, DSQ diagnostics): hot kinds are re-packed into the int columns
   so storage is uniform regardless of which door an event came in by. *)
let emit t ~ts ~cpu kind =
  match kind with
  | Event.Sched_switch { prev; next } ->
    emit_switch t ~ts ~cpu ~prev:(opt_pid prev) ~next:(opt_pid next)
  | Event.Wakeup { pid; waker_cpu; affinity = None } -> emit_wakeup t ~ts ~cpu ~pid ~waker_cpu
  | Event.Dispatch { pid } -> emit_dispatch t ~ts ~cpu ~pid
  | Event.Preempt { pid } -> emit_preempt t ~ts ~cpu ~pid
  | Event.Yield { pid } -> emit_yield t ~ts ~cpu ~pid
  | Event.Block { pid } -> emit_block t ~ts ~cpu ~pid
  | Event.Exit { pid } -> emit_exit t ~ts ~cpu ~pid
  | Event.Migrate { pid; from_cpu; to_cpu } -> emit_migrate t ~ts ~cpu ~pid ~from_cpu ~to_cpu
  | Event.Tick -> emit_tick t ~ts ~cpu
  | Event.Idle -> emit_idle t ~ts ~cpu
  | Event.Wakeup _ | Event.Pnt_err _ | Event.Lock_acquire _ | Event.Lock_release _
  | Event.Msg_call _ | Event.Panic _ | Event.Failover _ | Event.Overrun _
  | Event.Watchdog_fire _ | Event.Metric_flush _ | Event.Dsq_insert _ | Event.Dsq_consume _
  | Event.Fleet_op _ | Event.Req_enqueue _ | Event.Req_take _ | Event.Req_done _ ->
    emit_cold t ~ts ~cpu kind

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let emitted t = t.emitted

let dropped_of_cpu t cpu = t.rings.(cpu).r_dropped

let dropped t = Array.fold_left (fun acc r -> acc + r.r_dropped) 0 t.rings

let buffered t = Array.fold_left (fun acc r -> acc + r.r_len) 0 t.rings

let drain_ring cpu r =
  let cap = Array.length r.r_ts in
  let rec go acc =
    if r.r_len = 0 then List.rev acc
    else begin
      let i = r.r_head in
      let tag = r.r_tag.(i) in
      let kind =
        if tag = tag_cold then begin
          let k = r.r_cold.(i) in
          r.r_cold.(i) <- Event.Tick;
          k
        end
        else decode_tag tag r.r_a.(i) r.r_b.(i) r.r_c.(i)
      in
      let ev = { Event.ts = r.r_ts.(i); cpu; kind } in
      r.r_head <- (i + 1) mod cap;
      r.r_len <- r.r_len - 1;
      go (ev :: acc)
    end
  in
  go []

let events t =
  (* each per-cpu ring is already time-ordered; a stable sort on the
     timestamp merges them without reordering same-time events of one cpu *)
  Array.to_list (Array.mapi drain_ring t.rings)
  |> List.concat
  |> List.stable_sort (fun (a : Event.t) (b : Event.t) -> Int.compare a.ts b.ts)
