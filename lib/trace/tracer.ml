type t = {
  rings : Event.t Ds.Ring_buffer.t array;
  mutable subscribers : (Event.t -> unit) list;
  mutable emitted : int;
}

let create ?(capacity = 65536) ~nr_cpus () =
  if nr_cpus <= 0 then invalid_arg "Tracer.create: nr_cpus must be positive";
  {
    rings = Array.init nr_cpus (fun _ -> Ds.Ring_buffer.create ~capacity);
    subscribers = [];
    emitted = 0;
  }

let nr_cpus t = Array.length t.rings

let emit t ~ts ~cpu kind =
  let cpu = if cpu >= 0 && cpu < Array.length t.rings then cpu else 0 in
  let ev = { Event.ts; cpu; kind } in
  t.emitted <- t.emitted + 1;
  ignore (Ds.Ring_buffer.push t.rings.(cpu) ev);
  match t.subscribers with
  | [] -> ()
  | subs -> List.iter (fun f -> f ev) subs

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let emitted t = t.emitted

let dropped_of_cpu t cpu = Ds.Ring_buffer.dropped t.rings.(cpu)

let dropped t = Array.fold_left (fun acc r -> acc + Ds.Ring_buffer.dropped r) 0 t.rings

let buffered t = Array.fold_left (fun acc r -> acc + Ds.Ring_buffer.length r) 0 t.rings

let events t =
  (* each per-cpu ring is already time-ordered; a stable sort on the
     timestamp merges them without reordering same-time events of one cpu *)
  Array.to_list t.rings
  |> List.concat_map Ds.Ring_buffer.drain
  |> List.stable_sort (fun (a : Event.t) (b : Event.t) -> Int.compare a.ts b.ts)
