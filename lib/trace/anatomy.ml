(* Request anatomy: online end-to-end latency decomposition for the
   cluster tier.

   Every Traffic request carries a compact int request-id; the fleet calls
   [enqueue] when the LB's pick lands the request in a host ingress queue,
   [take] when a worker task dequeues it, and [complete] when the worker
   finishes.  From those three observations plus two task-side facts (the
   worker's [last_wake] and its migration counter) the module derives an
   exact six-phase decomposition whose parts sum to the measured
   end-to-end latency with zero rounding:

     lb_decision    = enqueued - arrived
     ingress_wait   = woken - enqueued      (woken clamped into [enqueued, taken])
     rq_wait        = taken - woken
     service        = nominal cpu demand (fleet dispatch overhead + request
                      service time), exact because a worker's Compute never
                      pays a fresh machine dispatch overhead mid-segment
     preempt_stall  = whatever of (completed - taken) - service is not
                      attributed to migrations
     migration_cost = min(stall, migrations_during_service * costs.migration)

   The clamp on [woken] makes the busy-worker case exact too: a worker
   that never blocked between requests reports a stale [last_wake], in
   which case the whole queue delay is ingress wait and rq_wait is 0.

   Aggregation is bounded-memory by construction: per-tenant and per-host
   phase sums/counts (exact integers, for reports and tests), optional
   per-tenant/per-host/per-phase histograms in a {!Metrics.Registry}, and
   a top-K worst-request exemplar ring whose full timelines export as
   Chrome-trace flow events.  Recording never touches simulated time. *)

type phase =
  | Lb_decision
  | Ingress_wait
  | Rq_wait
  | Service
  | Preempt_stall
  | Migration_cost

let phases = [ Lb_decision; Ingress_wait; Rq_wait; Service; Preempt_stall; Migration_cost ]

let nr_phases = 6

let phase_index = function
  | Lb_decision -> 0
  | Ingress_wait -> 1
  | Rq_wait -> 2
  | Service -> 3
  | Preempt_stall -> 4
  | Migration_cost -> 5

let phase_name = function
  | Lb_decision -> "lb_decision"
  | Ingress_wait -> "ingress_wait"
  | Rq_wait -> "rq_wait"
  | Service -> "service"
  | Preempt_stall -> "preempt_stall"
  | Migration_cost -> "migration_cost"

type completion = {
  req : int;
  tenant : int;
  host : int;
  pid : int;
  arrived : int;
  enqueued : int;
  woken : int;
  taken : int;
  completed : int;
  migrations : int;
  durations : int array; (* indexed by phase_index, sums to [e2e] exactly *)
}

let e2e c = c.completed - c.arrived

type pending = {
  p_tenant : int;
  p_host : int;
  p_arrived : int;
  p_enqueued : int;
  p_service : int;
  mutable p_pid : int;
  mutable p_woken : int;
  mutable p_taken : int;
  mutable p_mig_at_take : int;
  mutable p_taken_set : bool;
}

type t = {
  top_k : int;
  migration_cost : int;
  tenants : string array;
  hosts : int;
  inflight : (int, pending) Hashtbl.t;
  tenant_phase_sum : int array array; (* tenant -> phase -> total ns *)
  tenant_count : int array;
  tenant_e2e_sum : int array;
  host_phase_sum : int array array; (* host -> phase -> total ns *)
  host_count : int array;
  mutable completions : int;
  mutable orphans : int;
  mutable max_sum_error : int;
  mutable exemplars : completion list; (* worst-first, length <= top_k *)
  mutable hook : (completion -> unit) option;
  (* pre-resolved registry handles; empty arrays when no registry *)
  tenant_phase_hist : Metrics.Registry.histogram array array;
  host_phase_hist : Metrics.Registry.histogram array array;
  tenant_e2e_hist : Metrics.Registry.histogram array;
}

let create ?(top_k = 8) ?registry ~migration_cost ~tenants ~hosts () =
  if top_k <= 0 then invalid_arg "Anatomy.create: top_k must be positive";
  if hosts <= 0 then invalid_arg "Anatomy.create: hosts must be positive";
  let nt = Array.length tenants in
  let tenant_phase_hist, host_phase_hist, tenant_e2e_hist =
    match registry with
    | None -> ([||], [||], [||])
    | Some reg ->
      let phase_hist key value =
        Array.of_list
          (List.map
             (fun ph ->
               Metrics.Registry.histogram reg
                 ~help:"per-phase share of request end-to-end latency"
                 (Metrics.Registry.labeled "anatomy_phase_ns"
                    [ (key, value); ("phase", phase_name ph) ]))
             phases)
      in
      ( Array.map (fun tn -> phase_hist "tenant" tn) tenants,
        Array.init hosts (fun h -> phase_hist "host" (string_of_int h)),
        Array.map
          (fun tn ->
            Metrics.Registry.histogram reg ~help:"request end-to-end latency"
              (Metrics.Registry.labeled "anatomy_e2e_ns" [ ("tenant", tn) ]))
          tenants )
  in
  {
    top_k;
    migration_cost;
    tenants;
    hosts;
    inflight = Hashtbl.create 256;
    tenant_phase_sum = Array.init nt (fun _ -> Array.make nr_phases 0);
    tenant_count = Array.make nt 0;
    tenant_e2e_sum = Array.make nt 0;
    host_phase_sum = Array.init hosts (fun _ -> Array.make nr_phases 0);
    host_count = Array.make hosts 0;
    completions = 0;
    orphans = 0;
    max_sum_error = 0;
    exemplars = [];
    hook = None;
    tenant_phase_hist;
    host_phase_hist;
    tenant_e2e_hist;
  }

let on_complete t f = t.hook <- Some f

let enqueue t ~req ~tenant ~host ~arrived ~service ~now =
  Hashtbl.replace t.inflight req
    {
      p_tenant = tenant;
      p_host = host;
      p_arrived = arrived;
      p_enqueued = now;
      p_service = service;
      p_pid = -1;
      p_woken = now;
      p_taken = now;
      p_mig_at_take = 0;
      p_taken_set = false;
    }

let take t ~req ~pid ~last_wake ~migrations ~now =
  match Hashtbl.find_opt t.inflight req with
  | None -> t.orphans <- t.orphans + 1
  | Some p ->
    p.p_pid <- pid;
    p.p_taken <- now;
    p.p_mig_at_take <- migrations;
    p.p_taken_set <- true;
    (* a worker that stayed busy between requests never re-blocked, so its
       last_wake predates this request: charge the whole queue delay to the
       ingress phase (the request was never on a runqueue) *)
    p.p_woken <-
      (if last_wake >= p.p_enqueued && last_wake <= now then last_wake else now)

(* worst-first total order: longer e2e first, lower request-id on ties *)
let worse a b = e2e a > e2e b || (e2e a = e2e b && a.req < b.req)

let note_exemplar t c =
  let rec insert = function
    | [] -> [ c ]
    | x :: rest -> if worse c x then c :: x :: rest else x :: insert rest
  in
  let rec trim n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: trim (n - 1) rest
  in
  t.exemplars <- trim t.top_k (insert t.exemplars)

let complete t ~req ~migrations ~now =
  match Hashtbl.find_opt t.inflight req with
  | None -> t.orphans <- t.orphans + 1
  | Some p when not p.p_taken_set ->
    Hashtbl.remove t.inflight req;
    t.orphans <- t.orphans + 1
  | Some p ->
    Hashtbl.remove t.inflight req;
    let durations = Array.make nr_phases 0 in
    durations.(0) <- p.p_enqueued - p.p_arrived;
    durations.(1) <- p.p_woken - p.p_enqueued;
    durations.(2) <- p.p_taken - p.p_woken;
    let on_cpu = now - p.p_taken in
    let stall = on_cpu - p.p_service in
    let service, stall = if stall < 0 then (on_cpu, 0) else (p.p_service, stall) in
    let mig = min stall ((migrations - p.p_mig_at_take) * t.migration_cost) in
    let mig = max 0 mig in
    durations.(3) <- service;
    durations.(4) <- stall - mig;
    durations.(5) <- mig;
    let c =
      {
        req;
        tenant = p.p_tenant;
        host = p.p_host;
        pid = p.p_pid;
        arrived = p.p_arrived;
        enqueued = p.p_enqueued;
        woken = p.p_woken;
        taken = p.p_taken;
        completed = now;
        migrations = migrations - p.p_mig_at_take;
        durations;
      }
    in
    let err = abs (Array.fold_left ( + ) 0 durations - e2e c) in
    if err > t.max_sum_error then t.max_sum_error <- err;
    t.completions <- t.completions + 1;
    let tn = c.tenant and h = c.host in
    if tn >= 0 && tn < Array.length t.tenant_count then begin
      t.tenant_count.(tn) <- t.tenant_count.(tn) + 1;
      t.tenant_e2e_sum.(tn) <- t.tenant_e2e_sum.(tn) + e2e c;
      let sums = t.tenant_phase_sum.(tn) in
      Array.iteri (fun i d -> sums.(i) <- sums.(i) + d) durations;
      if Array.length t.tenant_phase_hist > 0 then begin
        let hists = t.tenant_phase_hist.(tn) in
        Array.iteri (fun i d -> Metrics.Registry.observe hists.(i) d) durations;
        Metrics.Registry.observe t.tenant_e2e_hist.(tn) (e2e c)
      end
    end;
    if h >= 0 && h < t.hosts then begin
      t.host_count.(h) <- t.host_count.(h) + 1;
      let sums = t.host_phase_sum.(h) in
      Array.iteri (fun i d -> sums.(i) <- sums.(i) + d) durations;
      if Array.length t.host_phase_hist > 0 then
        let hists = t.host_phase_hist.(h) in
        Array.iteri (fun i d -> Metrics.Registry.observe hists.(i) d) durations
    end;
    note_exemplar t c;
    match t.hook with Some f -> f c | None -> ()

(* ---------- reading ---------- *)

let completions t = t.completions

let inflight t = Hashtbl.length t.inflight

let orphans t = t.orphans

let max_sum_error t = t.max_sum_error

let exemplars t = t.exemplars

let tenant_names t = t.tenants

let nr_hosts t = t.hosts

let tenant_count t tn = t.tenant_count.(tn)

let tenant_phase_sum t tn ph = t.tenant_phase_sum.(tn).(phase_index ph)

let tenant_e2e_sum t tn = t.tenant_e2e_sum.(tn)

let host_count t h = t.host_count.(h)

let host_phase_sum t h ph = t.host_phase_sum.(h).(phase_index ph)

(* ---------- Chrome-trace flow export for the exemplar ring ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us_of_ns ns = float_of_int ns /. 1e3

let lb_pid = 0

let host_pid h = 1 + h

(* Chrome collapses zero-width slices; clamp to 1 ns so every phase of an
   exemplar stays clickable. *)
let slice buf ~first ~name ~cat ~pid ~tid ~start_ns ~stop_ns ~args =
  if !first then first := false else Buffer.add_char buf ',';
  let dur_ns = max 1 (stop_ns - start_ns) in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{%s}}"
       (json_escape name) cat (us_of_ns start_ns) (us_of_ns dur_ns) pid tid
       (String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
             args)))

let flow buf ~first ~ph ~id ~pid ~tid ~ts =
  if !first then first := false else Buffer.add_char buf ',';
  let bp = if ph = "f" then ",\"bp\":\"e\"" else "" in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"req %d\",\"cat\":\"anatomy\",\"ph\":\"%s\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%.3f%s}"
       id ph id pid tid (us_of_ns ts) bp)

let meta buf ~first ~pid ~tid ~name ~value =
  if !first then first := false else Buffer.add_char buf ',';
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
       name pid tid (json_escape value))

let chrome_json t =
  let exs = t.exemplars in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  meta buf ~first ~pid:lb_pid ~tid:0 ~name:"process_name" ~value:"load balancer";
  meta buf ~first ~pid:lb_pid ~tid:0 ~name:"thread_name" ~value:"lb decision";
  let hosts_seen = Hashtbl.create 8 in
  let workers_seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if not (Hashtbl.mem hosts_seen c.host) then begin
        Hashtbl.replace hosts_seen c.host ();
        let pid = host_pid c.host in
        meta buf ~first ~pid ~tid:0 ~name:"process_name"
          ~value:(Printf.sprintf "host %d" c.host);
        meta buf ~first ~pid ~tid:0 ~name:"thread_name" ~value:"ingress queue";
        meta buf ~first ~pid ~tid:1 ~name:"thread_name" ~value:"runqueue"
      end;
      if not (Hashtbl.mem workers_seen (c.host, c.pid)) then begin
        Hashtbl.replace workers_seen (c.host, c.pid) ();
        meta buf ~first ~pid:(host_pid c.host) ~tid:c.pid ~name:"thread_name"
          ~value:(Printf.sprintf "worker %d" c.pid)
      end)
    exs;
  List.iter
    (fun c ->
      let tenant =
        if c.tenant >= 0 && c.tenant < Array.length t.tenants then t.tenants.(c.tenant)
        else string_of_int c.tenant
      in
      let label = Printf.sprintf "req %d" c.req in
      let args ph =
        [
          ("req", string_of_int c.req);
          ("tenant", tenant);
          ("phase", phase_name ph);
          ("ns", string_of_int c.durations.(phase_index ph));
        ]
      in
      let hp = host_pid c.host in
      slice buf ~first ~name:label ~cat:"anatomy" ~pid:lb_pid ~tid:0 ~start_ns:c.arrived
        ~stop_ns:c.enqueued ~args:(args Lb_decision);
      slice buf ~first ~name:label ~cat:"anatomy" ~pid:hp ~tid:0 ~start_ns:c.enqueued
        ~stop_ns:c.woken ~args:(args Ingress_wait);
      slice buf ~first ~name:label ~cat:"anatomy" ~pid:hp ~tid:1 ~start_ns:c.woken
        ~stop_ns:c.taken ~args:(args Rq_wait);
      slice buf ~first ~name:label ~cat:"anatomy" ~pid:hp ~tid:c.pid ~start_ns:c.taken
        ~stop_ns:c.completed
        ~args:
          [
            ("req", string_of_int c.req);
            ("tenant", tenant);
            ("e2e_ns", string_of_int (e2e c));
            ("service_ns", string_of_int c.durations.(phase_index Service));
            ("preempt_stall_ns", string_of_int c.durations.(phase_index Preempt_stall));
            ("migration_cost_ns", string_of_int c.durations.(phase_index Migration_cost));
            ("migrations", string_of_int c.migrations);
          ];
      (* flow arrows LB -> ingress -> runqueue -> worker *)
      flow buf ~first ~ph:"s" ~id:c.req ~pid:lb_pid ~tid:0 ~ts:c.arrived;
      flow buf ~first ~ph:"t" ~id:c.req ~pid:hp ~tid:0 ~ts:c.enqueued;
      flow buf ~first ~ph:"t" ~id:c.req ~pid:hp ~tid:1 ~ts:c.woken;
      flow buf ~first ~ph:"f" ~id:c.req ~pid:hp ~tid:c.pid ~ts:c.taken)
    exs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let save_chrome t ~path =
  let oc = open_out path in
  Fun.protect (fun () -> output_string oc (chrome_json t)) ~finally:(fun () -> close_out oc)
