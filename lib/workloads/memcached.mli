(** The memcached / Mutilate benchmark of §5.6 (Figure 3).

    A Mutilate-style open-loop load generator offers a Facebook-ETC-like
    request mix (mostly tiny GETs, a tail of larger values, 3% updates) to
    a memcached server.  Three server builds are compared:

    - [Cfs]: stock memcached — a thread pool on all eight cores under CFS,
      one kernel wakeup per request;
    - [Arachne_native]: Arachne's userspace core arbiter — activations poll
      for work; core requests travel over a socket (modelled as an extra
      round-trip delay before grants and reclaims apply);
    - [Arachne_enoki]: the same runtime talking to the Enoki in-kernel core
      arbiter ({!Schedulers.Arachne}) through hint queues.

    Both Arachne variants automatically scale between two and seven cores,
    reserving one core for background work, as the paper configures. *)

type mode = Cfs | Arachne_native | Arachne_enoki

type point = {
  offered_kreqs : float;
  achieved_kreqs : float;
  p99_us : float;
  p50_us : float;
  avg_cores : float;  (** mean cores held by the server (Arachne modes) *)
}

type params = {
  mode : mode;
  load_kreqs : float;
  warmup : Kernsim.Time.ns;
  duration : Kernsim.Time.ns;
  seed : int;
}

val default_params : ?seed:int -> mode:mode -> load_kreqs:float -> unit -> params

(** For [Arachne_*] modes the machine must be built with
    [Setup.Enoki_sched (module Schedulers.Arachne)]; for [Cfs], with
    [Setup.Cfs]. *)
val run : Setup.built -> params -> point
