(** The schbench benchmark (§5.2 Table 4, §5.5 Table 6, §5.7).

    [messages] message threads each drive [workers] worker threads: the
    message thread pings every worker, each worker does a small unit of
    work and replies, and the benchmark reports the distribution of worker
    {e wakeup latency} — time from a worker's wakeup to its dispatch.

    [Table 6]'s modified variant sends {!Schedulers.Hints.Locality} hints
    co-locating each message thread with its workers (each set gets its own
    core), exercising Enoki's userspace hinting. *)

type result = {
  p50 : Kernsim.Time.ns;
  p99 : Kernsim.Time.ns;
  samples : int;
}

type params = {
  messages : int;  (** message threads *)
  workers : int;  (** worker threads per message thread *)
  warmup : Kernsim.Time.ns;
  duration : Kernsim.Time.ns;  (** measurement window after warmup *)
  message_work : Kernsim.Time.ns;  (** message-thread work per round *)
  worker_work : Kernsim.Time.ns;  (** worker work per ping *)
  locality_hints : bool;  (** send co-location hints (Table 6) *)
  pin_one_core : bool;  (** cgroup-style: pin every thread to cpu 0 *)
  seed : int;  (** workload PRNG seed; equal seeds replay the same run *)
}

(** Defaults; [?seed] is a root seed split through
    {!Setup.workload_seed} (canonical seed 42 when omitted). *)
val default_params : ?seed:int -> unit -> params

val run : Setup.built -> params -> result

(** The Arachne row: ping-pong between user threads, ~1 us wakeups. *)
val run_userlevel : Setup.built -> params -> result
