module T = Kernsim.Task
module M = Kernsim.Machine

type point = {
  offered_kreqs : float;
  achieved_kreqs : float;
  p99_us : float;
  p50_us : float;
  batch_cpus : float;
}

type params = {
  load_kreqs : float;
  with_batch : bool;
  warmup : Kernsim.Time.ns;
  duration : Kernsim.Time.ns;
  workers : int;
  seed : int;
}

let default_params ?seed ~load_kreqs ~with_batch () =
  {
    load_kreqs;
    with_batch;
    warmup = Kernsim.Time.ms 300;
    duration = Kernsim.Time.ms 1200;
    workers = 50;
    seed = Setup.workload_seed ?seed "rocksdb";
  }

(* the paper's assigned service times *)
let get_service = Kernsim.Time.us 4

let range_service = Kernsim.Time.ms 10

let range_fraction = 0.005

(* core layout on the 8-core box, as §5.4 reserves them *)
let background_cpu = 0

let worker_cpus = [ 1; 2; 3; 4; 5 ]

let loadgen_cpu = 6

type request = { enqueued : Kernsim.Time.ns; service : Kernsim.Time.ns }

let run (b : Setup.built) (p : params) =
  let m = b.machine in
  let rng = Stats.Prng.create ~seed:p.seed in
  let queue : request Queue.t = Queue.create () in
  let req_chan = M.new_chan m in
  let latencies = Stats.Histogram.create () in
  let measuring = ref false in
  let observe = Setup.request_observer b in
  let completed = ref 0 in
  (* open-loop Poisson load generator, pinned to its reserved core *)
  let rate_per_ns = p.load_kreqs *. 1000.0 /. 1e9 in
  let gap_dist = Stats.Dist.exponential ~mean:(1.0 /. rate_per_ns) in
  (* requests are emitted in small batches (RX-coalescing style) so the
     generator's own dispatch overhead never throttles the offered load *)
  let batch = 4 in
  let loadgen =
    let st = ref `Sleep in
    fun (ctx : T.ctx) ->
      match !st with
      | `Sleep ->
        st := `Emit batch;
        let gap = ref 0.0 in
        for _ = 1 to batch do
          gap := !gap +. Stats.Dist.sample gap_dist rng
        done;
        T.Sleep (max 1 (int_of_float !gap))
      | `Emit 0 ->
        st := `Sleep;
        T.Compute 1
      | `Emit k ->
        st := `Emit (k - 1);
        let service =
          if Stats.Prng.float rng < range_fraction then range_service else get_service
        in
        Queue.push { enqueued = ctx.T.now; service } queue;
        T.Wake req_chan
  in
  ignore
    (M.spawn m
       {
         (T.default_spec ~name:"loadgen" loadgen) with
         T.policy = b.cfs_policy;
         group = "loadgen";
         affinity = Some [ loadgen_cpu ];
       });
  (* 50 workers on five cores under the scheduler under test *)
  for i = 1 to p.workers do
    let beh =
      let st = ref `Recv in
      fun (ctx : T.ctx) ->
        match !st with
        | `Recv ->
          st := `Work;
          T.Block req_chan
        | `Work -> (
          match Queue.take_opt queue with
          | None ->
            st := `Recv;
            T.Compute 1
          | Some req ->
            st := `Done req;
            T.Compute req.service)
        | `Done req ->
          if !measuring then begin
            Stats.Histogram.record latencies (ctx.T.now - req.enqueued);
            observe (ctx.T.now - req.enqueued);
            incr completed
          end;
          st := `Work;
          T.Compute 1
    in
    let spec =
      {
        (T.default_spec ~name:(Printf.sprintf "rocksdb-%d" i) beh) with
        T.policy = b.policy;
        group = "rocksdb";
        affinity = Some worker_cpus;
        nice = (if b.policy = b.cfs_policy then -20 else 0);
      }
    in
    ignore (M.spawn m spec)
  done;
  (* background housekeeping on its reserved core *)
  let background =
    let st = ref `Work in
    fun (_ : T.ctx) ->
      match !st with
      | `Work ->
        st := `Sleep;
        T.Compute (Kernsim.Time.us 50)
      | `Sleep ->
        st := `Work;
        T.Sleep (Kernsim.Time.ms 1)
  in
  ignore
    (M.spawn m
       {
         (T.default_spec ~name:"background" background) with
         T.policy = b.cfs_policy;
         group = "background";
         affinity = Some [ background_cpu ];
       });
  (* a ghOSt global agent is a real userspace thread spinning on its
     dedicated core; make it consume the core for real *)
  (match b.agent_core with
  | Some core ->
    let spin (_ : T.ctx) = T.Compute (Kernsim.Time.us 100) in
    ignore
      (M.spawn m
         {
           (T.default_spec ~name:"ghost-agent" spin) with
           T.policy = b.cfs_policy;
           group = "ghost-agent";
           nice = -20;
           affinity = Some [ core ];
         })
  | None -> ());
  (* the co-located batch application: CFS, lowest priority, free to roam *)
  if p.with_batch then
    for i = 1 to 8 do
      let hog (_ : T.ctx) = T.Compute (Kernsim.Time.ms 1) in
      ignore
        (M.spawn m
           {
             (T.default_spec ~name:(Printf.sprintf "batch-%d" i) hog) with
             T.policy = b.cfs_policy;
             group = "batch";
             nice = 19;
           })
    done;
  M.at m ~delay:p.warmup (fun () ->
      Kernsim.Accounting.reset (M.metrics m);
      measuring := true);
  M.run_for m (p.warmup + p.duration);
  let batch_busy = Kernsim.Accounting.busy_of_group (M.metrics m) "batch" in
  {
    offered_kreqs = p.load_kreqs;
    achieved_kreqs = float_of_int !completed /. Kernsim.Time.to_sec p.duration /. 1000.0;
    p99_us = Kernsim.Time.to_us (Stats.Histogram.percentile latencies 99.0);
    p50_us = Kernsim.Time.to_us (Stats.Histogram.percentile latencies 50.0);
    batch_cpus = float_of_int batch_busy /. float_of_int p.duration;
  }
