module T = Kernsim.Task
module M = Kernsim.Machine

type result = {
  us_per_wakeup : float;
  wakeups : int;
  elapsed : Kernsim.Time.ns;
  completed : bool;
}

(* Per-message application work: the read/write syscall pair plus copying
   the token through the pipe. *)
let default_work = 1_650

let run (b : Setup.built) ?(same_core = false) ?(messages = 50_000) ?(work = default_work) () =
  let m = b.machine in
  let ch_ab = M.new_chan m and ch_ba = M.new_chan m in
  let affinity = if same_core then Some [ 0 ] else None in
  let finished = ref 0 in
  let observe = Setup.request_observer b in
  (* sender: work, signal the peer, wait for the reply *)
  let peer ~send ~recv ~first =
    let n = ref 0 and st = ref (if first then `Work else `Recv0) in
    (* round-trip stamp: taken when this peer signals, closed when the
       reply wakes it back up *)
    let t0 = ref (-1) in
    (* the three actions of the message loop, built once per peer: action
       constructors carry payloads, so building them per step would put
       ~100 B/message of boxing on the simulator's zero-alloc fast path *)
    let act_work = T.Compute work in
    let act_send = T.Wake send in
    let act_recv = T.Block recv in
    fun (ctx : T.ctx) ->
      match !st with
      | `Recv0 ->
        st := `Work;
        act_recv
      | `Work ->
        st := `Send;
        act_work
      | `Send ->
        st := `Recv;
        t0 := ctx.T.now;
        act_send
      | `Recv ->
        if !t0 >= 0 then observe (ctx.T.now - !t0);
        t0 := -1;
        incr n;
        if !n >= messages then begin
          incr finished;
          T.Exit
        end
        else begin
          st := `Work;
          act_recv
        end
  in
  let spec name beh =
    { (T.default_spec ~name beh) with T.policy = b.policy; affinity; group = "pipe" }
  in
  ignore (M.spawn m (spec "pipe-a" (peer ~send:ch_ab ~recv:ch_ba ~first:true)));
  ignore (M.spawn m (spec "pipe-b" (peer ~send:ch_ba ~recv:ch_ab ~first:false)));
  let started = M.now m in
  (* generous budget: 100 us per message *)
  M.run_for m (messages * Kernsim.Time.us 100);
  let elapsed = M.now m - started in
  let wakeups = 2 * messages in
  (* if we hit the budget, report the effective elapsed anyway *)
  let completed = !finished = 2 in
  let elapsed =
    if completed then
      (* find the real end: last task exit *)
      List.fold_left
        (fun acc (task : T.t) ->
          match task.exited_at with Some t -> max acc (t - started) | None -> acc)
        0 (M.tasks m)
    else elapsed
  in
  { us_per_wakeup = Kernsim.Time.to_us elapsed /. float_of_int wakeups; wakeups; elapsed; completed }

let user_switch_cost = 90 (* Arachne user-level context switch, ~100ns *)

let cacheline_bounce = 110 (* cross-core line transfer when threads spread *)

let run_userlevel (b : Setup.built) ?(same_core = true) ?(messages = 50_000) () =
  let m = b.machine in
  (* both user threads live in one kernel task (same-core) or two busy
     kernel tasks (spread); each message costs only the user-level switch,
     plus a cache-line bounce when crossing cores *)
  let total = ref 0
  and per_msg = user_switch_cost + if same_core then 0 else cacheline_bounce in
  let beh =
    fun (_ : T.ctx) ->
      if !total >= 2 * messages then T.Exit
      else begin
        incr total;
        T.Compute per_msg
      end
  in
  let spec = { (T.default_spec ~name:"arachne-user" beh) with T.policy = b.policy } in
  ignore (M.spawn m spec);
  let started = M.now m in
  M.run_for m (messages * Kernsim.Time.us 50);
  let exit_time =
    List.fold_left
      (fun acc (task : T.t) ->
        match task.exited_at with Some t -> max acc (t - started) | None -> acc)
      0 (M.tasks m)
  in
  let elapsed = if exit_time > 0 then exit_time else M.now m - started in
  {
    us_per_wakeup = Kernsim.Time.to_us elapsed /. float_of_int (2 * messages);
    wakeups = 2 * messages;
    elapsed;
    completed = true;
  }
