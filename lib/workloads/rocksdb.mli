(** The RocksDB service benchmark of §5.4 (Figure 2).

    Replicates the paper's methodology exactly: an open-loop Poisson load
    generator dispatches requests to 50 worker tasks on five cores; 99.5%
    of requests are GETs of 4 us assigned service time and 0.5% are range
    queries of 10 ms (the paper itself assigns these times and spin-waits).
    One core is reserved for background work, one for the load generator,
    and one for the scheduling agent when a ghOSt configuration runs.

    With [with_batch], a CFS batch application (nice 19) shares the
    machine while RocksDB runs at nice -20 under CFS — Figures 2b/2c. *)

type point = {
  offered_kreqs : float;  (** offered load, thousand requests/second *)
  achieved_kreqs : float;
  p99_us : float;  (** 99th percentile request latency *)
  p50_us : float;
  batch_cpus : float;  (** cores' worth of cpu the batch app received *)
}

type params = {
  load_kreqs : float;
  with_batch : bool;
  warmup : Kernsim.Time.ns;
  duration : Kernsim.Time.ns;
  workers : int;
  seed : int;
}

val default_params : ?seed:int -> load_kreqs:float -> with_batch:bool -> unit -> params

val run : Setup.built -> params -> point
