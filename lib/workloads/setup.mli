(** Machine assembly for the benchmark matrix.

    Builds a simulated machine with the scheduler configuration under test.
    Enoki and ghOSt configurations stack their class above native CFS, so
    tasks outside the tested policy (batch apps, background work) fall
    through to CFS exactly as in the paper's co-location experiments. *)

type kind =
  | Cfs  (** native CFS only *)
  | Enoki_sched of (module Enoki.Sched_trait.S)  (** an Enoki scheduler over CFS *)
  | Ghost of Schedulers.Ghost_sim.policy  (** a ghOSt policy over CFS *)

(** The machine configuration for a scheduler-registry entry. *)
val of_registry : Schedulers.Registry.entry -> kind

(** [workload_seed ?seed name] is the PRNG seed for the generator called
    [name].  With [seed = None] it returns the generator's canonical
    default (schbench 42, rocksdb 7, memcached 11, otherwise 1), keeping
    historical baselines byte-identical.  With [Some root] it mixes [root]
    with a stable hash of [name], so one root seed fans out into an
    independent, reproducible stream per generator — the single splitter
    every workload (and the cluster tier) threads its seeds through. *)
val workload_seed : ?seed:int -> string -> int

type built = {
  machine : Kernsim.Machine.t;
  policy : int;  (** policy id for tasks of the scheduler under test *)
  cfs_policy : int;  (** policy id for co-located CFS tasks *)
  enoki : Enoki.Enoki_c.t option;  (** present for [Enoki_sched] (upgrade, stats) *)
  agent_core : int option;
      (** core occupied by a spinning userspace scheduling agent (ghOSt
          global policies); workloads spawn the spinner so the core is
          really consumed *)
  registry : Metrics.Registry.t option;
      (** the metrics registry handed to [build], so workloads can record
          request latencies into it *)
}

(** Register ring emit/drop/buffered gauge probes for [tracer] in [reg],
    optionally under a {!Metrics.Registry.labeled} block (the fleet labels
    its chaos victim's tracer by host).  [build] calls this automatically
    when given both a registry and a tracer. *)
val register_tracer_probes :
  ?labels:(string * string) list -> Metrics.Registry.t -> Trace.Tracer.t -> unit

(** [tracer] attaches a schedtrace sink to both the machine and (for
    [Enoki_sched]) the Enoki-C layer; building a machine always resets the
    process-global lock trace tap first, so at most one machine traces lock
    events at a time.  [registry] threads a metrics registry through the
    machine and the Enoki-C boundary (and, when a tracer is also given,
    registers ring drop/emit probes); [profile] arms the Enoki-C
    self-profiler.  [sim_backend] selects the machine's event-queue
    backend (timer wheel by default, [`Heap] for the reference heap) —
    both produce the same event stream. *)
val build :
  ?costs:Kernsim.Costs.t ->
  ?record:Enoki.Record.t ->
  ?tracer:Trace.Tracer.t ->
  ?registry:Metrics.Registry.t ->
  ?profile:Profile.t ->
  ?isolate:bool ->
  ?call_budget:Kernsim.Time.ns ->
  ?sim_backend:Kernsim.Sim.backend ->
  topology:Kernsim.Topology.t ->
  kind ->
  built

(** An observation function for workload request latencies: records into
    the built machine's registry histogram
    ([workload_request_latency_ns]) when a registry is attached, and is a
    no-op otherwise. *)
val request_observer : built -> int -> unit

(** Short label for tables ("cfs", "enoki:wfq", "ghost-sol", ...). *)
val label : kind -> string

(** Key/value lines summarising the Enoki-C layer of a built machine —
    calls, violation breakdown, panic/failover counters, upgrade stats —
    for report output; empty for non-Enoki configurations. *)
val enoki_summary : built -> (string * string) list
