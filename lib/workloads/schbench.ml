module T = Kernsim.Task
module M = Kernsim.Machine

type result = { p50 : Kernsim.Time.ns; p99 : Kernsim.Time.ns; samples : int }

type params = {
  messages : int;
  workers : int;
  warmup : Kernsim.Time.ns;
  duration : Kernsim.Time.ns;
  message_work : Kernsim.Time.ns;
  worker_work : Kernsim.Time.ns;
  locality_hints : bool;
  pin_one_core : bool;
  seed : int;
}

let default_params ?seed () =
  {
    messages = 2;
    workers = 2;
    warmup = Kernsim.Time.ms 500;
    duration = Kernsim.Time.sec 2;
    message_work = Kernsim.Time.ms 30;
    worker_work = Kernsim.Time.us 1;
    locality_hints = false;
    pin_one_core = false;
    seed = Setup.workload_seed ?seed "schbench";
  }

(* schbench measures from just before the message thread issues the futex
   wake to when the worker starts running, so the waker's own preemption
   mid-sequence counts -- that is exactly what blows the tail up when
   everything is pinned to one core.  [stamps] carries the per-worker t0. *)
let wake_syscall = 900 (* futex syscall cost in the waker *)

(* One worker: wait for a ping, record its wakeup latency, work, reply. *)
let worker_beh ~ping ~reply ~work ~stamp ~hist ~measuring ~observe =
  let st = ref `Wait in
  fun (ctx : T.ctx) ->
    match !st with
    | `Wait ->
      st := `Work;
      T.Block ping
    | `Work ->
      if !measuring && !stamp >= 0 then begin
        Stats.Histogram.record hist (ctx.T.now - !stamp);
        observe (ctx.T.now - !stamp)
      end;
      stamp := -1;
      st := `Reply;
      T.Compute work
    | `Reply ->
      st := `Wait;
      T.Wake reply

(* One message thread: hint its group once, then loop: work (with random
   round-to-round jitter, so distinct message threads drift out of phase),
   then for each worker stamp t0, pay the wake syscall, wake it; collect
   all replies. *)
let message_beh ~pings ~reply ~work ~rng ~group ~worker_pids =
  let n_workers = List.length pings in
  let st = ref `Hints in
  fun (ctx : T.ctx) ->
    match !st with
    | `Hints -> (
      match group with
      | None ->
        st := `Ping pings;
        T.Compute 1
      | Some g ->
        (* co-locate self and every worker: one hint per task, self last *)
        let hints =
          List.map (fun pid -> Schedulers.Hints.Locality { pid; group = g }) worker_pids
          @ [ Schedulers.Hints.Locality { pid = ctx.T.self; group = g } ]
        in
        st := `Hint_rest (List.tl hints, `Ping pings);
        T.Send_hint (List.hd hints))
    | `Hint_rest ([], _) ->
      st := `Ping pings;
      T.Compute 1
    | `Hint_rest (h :: rest, k) ->
      st := `Hint_rest (rest, k);
      T.Send_hint h
    | `Ping [] ->
      st := `Collect n_workers;
      T.Compute 1
    | `Ping ((ping, stamp) :: rest) ->
      (* timestamp, then the wake syscall runs in our context: if we get
         descheduled here, the sample inflates, as in real schbench *)
      stamp := ctx.T.now;
      st := `Wake (ping, rest);
      T.Compute wake_syscall
    | `Wake (ping, rest) ->
      st := `Ping rest;
      T.Wake ping
    | `Collect 0 ->
      (* work the message before the next round of pings *)
      st := `Ping pings;
      T.Compute ((work / 2) + Stats.Prng.int rng (max 1 work))
    | `Collect k ->
      st := `Collect (k - 1);
      T.Block reply

let run (b : Setup.built) (p : params) =
  let m = b.machine in
  let affinity = if p.pin_one_core then Some [ 0 ] else None in
  let hist = Stats.Histogram.create () in
  let measuring = ref false in
  let observe = Setup.request_observer b in
  let rng0 = Stats.Prng.create ~seed:p.seed in
  for i = 0 to p.messages - 1 do
    let rng = Stats.Prng.split rng0 in
    let reply = M.new_chan m in
    let pings =
      List.init p.workers (fun _ -> (M.new_chan m, ref (-1)))
    in
    let worker_pids =
      List.mapi
        (fun j (ping, stamp) ->
          M.spawn m
            {
              (T.default_spec
                 ~name:(Printf.sprintf "worker-%d-%d" i j)
                 (worker_beh ~ping ~reply ~work:p.worker_work ~stamp ~hist ~measuring ~observe))
              with
              T.policy = b.policy;
              group = "worker";
              affinity;
            })
        pings
    in
    let group = if p.locality_hints then Some i else None in
    ignore
      (M.spawn m
         {
           (T.default_spec
              ~name:(Printf.sprintf "message-%d" i)
              (message_beh ~pings ~reply ~work:p.message_work ~rng ~group ~worker_pids))
           with
           T.policy = b.policy;
           group = "message";
           affinity;
         })
  done;
  M.at m ~delay:p.warmup (fun () ->
      Kernsim.Accounting.reset (M.metrics m);
      measuring := true);
  M.run_for m (p.warmup + p.duration);
  {
    p50 = Stats.Histogram.percentile hist 50.0;
    p99 = Stats.Histogram.percentile hist 99.0;
    samples = Stats.Histogram.count hist;
  }

(* Arachne: user-level threads wake each other inside one kernel task per
   message group; wakeup latency is the user-level switch (~1 us with
   scheduling checks), independent of kernel scheduler load. *)
let run_userlevel (_ : Setup.built) (p : params) =
  let user_wakeup = Kernsim.Time.us 1 in
  ignore p;
  { p50 = user_wakeup; p99 = user_wakeup; samples = 1 }
