module T = Kernsim.Task
module M = Kernsim.Machine

type mode = Cfs | Arachne_native | Arachne_enoki

type point = {
  offered_kreqs : float;
  achieved_kreqs : float;
  p99_us : float;
  p50_us : float;
  avg_cores : float;
}

type params = {
  mode : mode;
  load_kreqs : float;
  warmup : Kernsim.Time.ns;
  duration : Kernsim.Time.ns;
  seed : int;
}

let default_params ?seed ~mode ~load_kreqs () =
  {
    mode;
    load_kreqs;
    warmup = Kernsim.Time.ms 300;
    duration = Kernsim.Time.ms 1200;
    seed = Setup.workload_seed ?seed "memcached";
  }

(* ETC-like request costs, ~16.5 us mean application work, 3% updates *)
let service_dist =
  Stats.Dist.mixture
    [
      (0.90, Stats.Dist.uniform ~lo:10_000.0 ~hi:19_000.0);
      (0.07, Stats.Dist.uniform ~lo:21_000.0 ~hi:34_000.0);
      (0.03, Stats.Dist.uniform ~lo:34_000.0 ~hi:68_000.0);
    ]

let mean_service_ns = 16_500.0

(* per-request dispatch overhead on top of the application work: stock
   memcached pays the kernel thread wake/epoll path per request; Arachne
   dispatches to user threads on an already-running activation *)
let kernel_dispatch_overhead = 4_500

let user_dispatch_overhead = 800

let n_activations = 7

let socket_round_trip = Kernsim.Time.us 50 (* native Arachne arbiter RTT *)

type request = { enqueued : Kernsim.Time.ns; service : Kernsim.Time.ns }

let run (b : Setup.built) (p : params) =
  let m = b.machine in
  let rng = Stats.Prng.create ~seed:p.seed in
  let queue : request Queue.t = Queue.create () in
  let req_chan = M.new_chan m in
  let latencies = Stats.Histogram.create () in
  let measuring = ref false in
  let observe = Setup.request_observer b in
  let completed = ref 0 in
  let arrivals = ref 0 in
  let rate_per_ns = p.load_kreqs *. 1000.0 /. 1e9 in
  let gap_dist = Stats.Dist.exponential ~mean:(1.0 /. rate_per_ns) in
  let server_blocks = p.mode = Cfs in
  (* requests are emitted in small batches (RX-coalescing style) so the
     generator task itself never becomes the bottleneck at high load *)
  let batch = 8 in
  let loadgen =
    let st = ref `Sleep in
    fun (ctx : T.ctx) ->
      match !st with
      | `Sleep ->
        st := `Emit batch;
        let gap = ref 0.0 in
        for _ = 1 to batch do
          gap := !gap +. Stats.Dist.sample gap_dist rng
        done;
        T.Sleep (max 1 (int_of_float !gap))
      | `Emit 0 ->
        st := `Sleep;
        T.Compute 1
      | `Emit k ->
        st := `Emit (k - 1);
        let service = int_of_float (Stats.Dist.sample service_dist rng) in
        Queue.push { enqueued = ctx.T.now; service } queue;
        incr arrivals;
        if server_blocks then T.Wake req_chan else T.Compute 1
  in
  ignore
    (M.spawn m
       {
         (T.default_spec ~name:"mutilate" loadgen) with
         T.policy = b.cfs_policy;
         group = "loadgen";
         affinity = Some [ 0 ];
       });
  let record (ctx : T.ctx) req =
    if !measuring then begin
      Stats.Histogram.record latencies (ctx.T.now - req.enqueued);
      observe (ctx.T.now - req.enqueued);
      incr completed
    end
  in
  (match p.mode with
  | Cfs ->
    (* stock memcached: a blocking thread pool across all cores *)
    for i = 1 to 16 do
      let beh =
        let st = ref `Recv in
        fun (ctx : T.ctx) ->
          match !st with
          | `Recv ->
            st := `Take;
            T.Block req_chan
          | `Take -> (
            match Queue.take_opt queue with
            | None ->
              st := `Recv;
              T.Compute 1
            | Some req ->
              st := `Done req;
              T.Compute (req.service + kernel_dispatch_overhead))
          | `Done req ->
            record ctx req;
            st := `Take;
            T.Compute 1
      in
      ignore
        (M.spawn m
           {
             (T.default_spec ~name:(Printf.sprintf "mc-worker-%d" i) beh) with
             T.policy = b.policy;
             group = "memcached";
           })
    done
  | Arachne_native | Arachne_enoki ->
    (* Arachne: polling activations + a runtime driving the core arbiter *)
    let reclaim_flag = Array.make n_activations false in
    let park_chans = Array.init n_activations (fun _ -> M.new_chan m) in
    let activation slot =
      let st = ref `Poll in
      fun (ctx : T.ctx) ->
        match !st with
        | `Poll ->
          if reclaim_flag.(slot) then begin
            reclaim_flag.(slot) <- false;
            st := `Poll;
            T.Block park_chans.(slot)
          end
          else (
            match Queue.take_opt queue with
            | Some req ->
              st := `Done req;
              T.Compute (req.service + user_dispatch_overhead)
            | None ->
              (* hold the core and spin for work, Arachne-style *)
              T.Compute (Kernsim.Time.us 2))
        | `Done req ->
          record ctx req;
          st := `Poll;
          T.Compute 1
    in
    for slot = 0 to n_activations - 1 do
      ignore
        (M.spawn m
           {
             (T.default_spec ~name:(Printf.sprintf "activation-%d" slot) (activation slot)) with
             T.policy = b.policy;
             group = "memcached";
           })
    done;
    (* the runtime: monitor load, request cores, relay grants/reclaims *)
    let last_arrivals = ref 0 in
    let interval = Kernsim.Time.us 500 in
    let runtime =
      let st = ref `Sleep in
      fun (ctx : T.ctx) ->
        (* relay arbiter messages to the activations *)
        List.iter
          (fun hint ->
            match hint with
            | Schedulers.Hints.Core_grant { slot; cpu = _ } ->
              if slot < n_activations then reclaim_flag.(slot) <- false
            | Schedulers.Hints.Core_reclaim { slot } ->
              if slot < n_activations then reclaim_flag.(slot) <- true
            | _ -> ())
          ctx.T.inbox;
        (* wake any parked activation whose reclaim was rescinded; waking a
           non-parked one is a harmless semaphore credit it consumes when
           it next parks *)
        match !st with
        | `Sleep ->
          st := `Estimate;
          T.Sleep interval
        | `Estimate ->
          let new_arrivals = !arrivals - !last_arrivals in
          last_arrivals := !arrivals;
          let rate = float_of_int new_arrivals /. float_of_int interval in
          let want =
            max 2
              (min n_activations (1 + int_of_float (ceil (rate *. mean_service_ns *. 1.15))))
          in
          st := `Wake_granted want;
          if p.mode = Arachne_native then T.Compute (socket_round_trip / 2) else T.Compute 1
        | `Wake_granted want ->
          st := `Request want;
          T.Send_hint (Schedulers.Hints.Core_request { pid = ctx.T.self; cores = want })
        | `Request _ ->
          (* wake parked activations that are no longer reclaimed *)
          let to_wake = ref [] in
          Array.iteri
            (fun slot flagged ->
              if (not flagged) && M.chan_waiters m park_chans.(slot) > 0 then
                to_wake := slot :: !to_wake)
            reclaim_flag;
          st := `Waking !to_wake;
          if p.mode = Arachne_native then T.Compute (socket_round_trip / 2) else T.Compute 1
        | `Waking [] ->
          st := `Sleep;
          T.Compute 1
        | `Waking (slot :: rest) ->
          st := `Waking rest;
          T.Wake park_chans.(slot)
    in
    ignore
      (M.spawn m
         {
           (T.default_spec ~name:"arachne-runtime" runtime) with
           T.policy = b.cfs_policy;
           group = "runtime";
           affinity = Some [ 0 ];
         }));
  M.at m ~delay:p.warmup (fun () ->
      Kernsim.Accounting.reset (M.metrics m);
      measuring := true);
  M.run_for m (p.warmup + p.duration);
  let busy = Kernsim.Accounting.busy_of_group (M.metrics m) "memcached" in
  {
    offered_kreqs = p.load_kreqs;
    achieved_kreqs = float_of_int !completed /. Kernsim.Time.to_sec p.duration /. 1000.0;
    p99_us = Kernsim.Time.to_us (Stats.Histogram.percentile latencies 99.0);
    p50_us = Kernsim.Time.to_us (Stats.Histogram.percentile latencies 50.0);
    avg_cores = float_of_int busy /. float_of_int p.duration;
  }
