type kind =
  | Cfs
  | Enoki_sched of (module Enoki.Sched_trait.S)
  | Ghost of Schedulers.Ghost_sim.policy

type built = {
  machine : Kernsim.Machine.t;
  policy : int;
  cfs_policy : int;
  enoki : Enoki.Enoki_c.t option;
  agent_core : int option;
}

let build ?costs ?record ?tracer ~topology kind =
  Schedulers.Hints.register_codecs ();
  (* the lock tap is process-global: clear any tap a previous machine
     installed so its (now stale) tracer stops receiving events *)
  Enoki.Lock.set_trace_tap None;
  match kind with
  | Cfs ->
    let machine =
      Kernsim.Machine.create ?costs ?tracer ~topology ~classes:[ Kernsim.Cfs.factory () ] ()
    in
    { machine; policy = 0; cfs_policy = 0; enoki = None; agent_core = None }
  | Enoki_sched m ->
    let enoki = Enoki.Enoki_c.create ?record ?tracer ~policy:0 m in
    let machine =
      Kernsim.Machine.create ?costs ?tracer ~topology
        ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
        ()
    in
    { machine; policy = 0; cfs_policy = 1; enoki = Some enoki; agent_core = None }
  | Ghost policy ->
    let machine =
      Kernsim.Machine.create ?costs ?tracer ~topology
        ~classes:[ Schedulers.Ghost_sim.factory policy; Kernsim.Cfs.factory () ]
        ()
    in
    {
      machine;
      policy = 0;
      cfs_policy = 1;
      enoki = None;
      agent_core =
        Schedulers.Ghost_sim.agent_cpu policy
          ~nr_cpus:(Kernsim.Topology.nr_cpus topology);
    }

let label = function
  | Cfs -> "cfs"
  | Enoki_sched (module S) -> "enoki:" ^ S.name
  | Ghost Schedulers.Ghost_sim.Fifo_per_cpu -> "ghost-fifo"
  | Ghost Schedulers.Ghost_sim.Sol -> "ghost-sol"
  | Ghost Schedulers.Ghost_sim.Gshinjuku -> "ghost-shinjuku"
