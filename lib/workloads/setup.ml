type kind =
  | Cfs
  | Enoki_sched of (module Enoki.Sched_trait.S)
  | Ghost of Schedulers.Ghost_sim.policy

(* ---------- seed plumbing ----------

   Every workload generator draws its PRNG seed through this one splitter
   instead of carrying its own ad-hoc default.  With no root seed each
   generator keeps its historical canonical seed, so published baseline
   numbers stay byte-identical; with [?seed:(Some root)] the root is mixed
   with a stable hash of the generator name, giving each workload an
   independent stream while the whole run stays reproducible from the one
   root value. *)

let canonical_seed = function
  | "schbench" -> 42
  | "rocksdb" -> 7
  | "memcached" -> 11
  | _ -> 1

(* FNV-1a over the name, then two splitmix64-style finalisation rounds
   over (root xor name-hash).  Constants are truncated to OCaml's 63-bit
   native int; quality here only needs "different names -> decorrelated
   streams", not cryptographic strength. *)
let workload_seed ?seed name =
  match seed with
  | None -> canonical_seed name
  | Some root ->
    let h = ref 0x0100_0193 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x0100_0193) name;
    let z = ref (root lxor !h) in
    z := (!z lxor (!z lsr 30)) * 0x2545_F491_4F6C_DD1D;
    z := (!z lxor (!z lsr 27)) * 0x1B87_3593_49BB_0941;
    let s = !z lxor (!z lsr 31) in
    s land max_int

let of_registry (e : Schedulers.Registry.entry) =
  match e.kind with
  | Schedulers.Registry.Builtin_cfs -> Cfs
  | Schedulers.Registry.Enoki m -> Enoki_sched m
  | Schedulers.Registry.Ghost p -> Ghost p

type built = {
  machine : Kernsim.Machine.t;
  policy : int;
  cfs_policy : int;
  enoki : Enoki.Enoki_c.t option;
  agent_core : int option;
  registry : Metrics.Registry.t option;
}

(* Tracer ring accounting surfaces in the registry as probes: reads at
   sample/export time, nothing on the emit path. *)
let register_tracer_probes ?(labels = []) reg tracer =
  let name n = Metrics.Registry.labeled n labels in
  Metrics.Registry.gauge_probe reg ~help:"trace events accepted into rings"
    (name "trace_emitted_total") (fun () -> float_of_int (Trace.Tracer.emitted tracer));
  Metrics.Registry.gauge_probe reg ~help:"trace events dropped on ring overrun"
    (name "trace_dropped_total") (fun () -> float_of_int (Trace.Tracer.dropped tracer));
  Metrics.Registry.gauge_probe reg ~help:"trace events currently buffered"
    (name "trace_buffered") (fun () -> float_of_int (Trace.Tracer.buffered tracer))

let build ?costs ?record ?tracer ?registry ?profile ?isolate ?call_budget ?sim_backend ~topology
    kind =
  Schedulers.Hints.register_codecs ();
  (* the lock tap is process-global: clear any tap a previous machine
     installed so its (now stale) tracer stops receiving events *)
  Enoki.Lock.set_trace_tap None;
  (match (registry, tracer) with
  | Some reg, Some tr -> register_tracer_probes reg tr
  | _ -> ());
  match kind with
  | Cfs ->
    let machine =
      Kernsim.Machine.create ?costs ?registry ?tracer ?sim_backend ~topology
        ~classes:[ Kernsim.Cfs.factory () ] ()
    in
    { machine; policy = 0; cfs_policy = 0; enoki = None; agent_core = None; registry }
  | Enoki_sched m ->
    let enoki =
      Enoki.Enoki_c.create ?record ?tracer ?registry ?profile ?isolate ?call_budget ~policy:0 m
    in
    let machine =
      Kernsim.Machine.create ?costs ?registry ?tracer ?sim_backend ~topology
        ~classes:[ Enoki.Enoki_c.factory enoki; Kernsim.Cfs.factory () ]
        ()
    in
    { machine; policy = 0; cfs_policy = 1; enoki = Some enoki; agent_core = None; registry }
  | Ghost policy ->
    let machine =
      Kernsim.Machine.create ?costs ?registry ?tracer ?sim_backend ~topology
        ~classes:[ Schedulers.Ghost_sim.factory policy; Kernsim.Cfs.factory () ]
        ()
    in
    {
      machine;
      policy = 0;
      cfs_policy = 1;
      enoki = None;
      agent_core =
        Schedulers.Ghost_sim.agent_cpu policy
          ~nr_cpus:(Kernsim.Topology.nr_cpus topology);
      registry;
    }

(* Workload generators record end-to-end request/wakeup latencies through
   this: a registry histogram when one is attached, a no-op otherwise, so
   call sites stay unconditional. *)
let request_observer b =
  match b.registry with
  | None -> fun _ -> ()
  | Some reg ->
    let h =
      Metrics.Registry.histogram reg ~help:"workload request/wakeup latency (ns)"
        "workload_request_latency_ns"
    in
    fun v -> Metrics.Registry.observe h v

let label = function
  | Cfs -> "cfs"
  | Enoki_sched (module S) -> "enoki:" ^ S.name
  | Ghost Schedulers.Ghost_sim.Fifo_per_cpu -> "ghost-fifo"
  | Ghost Schedulers.Ghost_sim.Sol -> "ghost-sol"
  | Ghost Schedulers.Ghost_sim.Gshinjuku -> "ghost-shinjuku"

let fmt_ns ns =
  if ns >= 1_000_000 then Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns

let enoki_summary b =
  match b.enoki with
  | None -> []
  | Some e ->
    let open Enoki.Enoki_c in
    let f = failover_stats e in
    let base =
      [
        ("scheduler", scheduler_name e);
        ("calls", string_of_int (calls e));
        ("violations", string_of_int (violations e));
      ]
    in
    let breakdown =
      List.map
        (fun (kind, n) -> ("violation:" ^ kind, string_of_int n))
        (violation_breakdown e)
    in
    let fault =
      (if f.panics > 0 then [ ("module panics", string_of_int f.panics) ] else [])
      @ (if f.overruns > 0 then [ ("call-budget overruns", string_of_int f.overruns) ] else [])
      @ (match f.quarantined with
        | Some (reason, since) ->
          [ ("quarantined", Printf.sprintf "at %s (%s)" (fmt_ns since) reason) ]
        | None -> [])
      @ (if f.failovers > 0 then [ ("failovers to cfs", string_of_int f.failovers) ] else [])
      @
      match f.blackout with
      | Some ns -> [ ("failover blackout", fmt_ns ns) ]
      | None -> []
    in
    let upgrades =
      match upgrades e with
      | [] -> []
      | us ->
        List.concat_map
          (fun (u : Enoki.Upgrade.stats) ->
            [
              ( "upgrade",
                Printf.sprintf "pause %s, %d task%s %s" (fmt_ns u.pause) u.tasks_carried
                  (if u.tasks_carried = 1 then "" else "s")
                  (if u.transferred then "transferred" else "re-adopted (no transfer)") );
            ])
          (List.rev us)
    in
    base @ breakdown @ fault @ upgrades
