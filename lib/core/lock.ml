type op = Create | Acquire | Release

type event = { lock_id : int; op : op; tid : int }

type t = {
  lock_id : int;
  lock_name : string;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable expected : int list; (* replay: tids in acquisition order *)
  mutable expected_loaded : bool;
}

type mode =
  | Passthrough
  | Record of { sink : event -> unit; tid : unit -> int }
  | Replay of { order : int -> int list; tid : unit -> int }

let mode = ref Passthrough

(* Tracing tap, orthogonal to record/replay: fires in every mode so the
   sanitizer can check acquire/release pairing online. *)
let trace_tap : (op -> lock_id:int -> unit) option ref = ref None

let set_trace_tap f = trace_tap := f

let tap op lock_id = match !trace_tap with None -> () | Some f -> f op ~lock_id

let next_id = ref 0

let reset_ids () = next_id := 0

let create ?(name = "lock") () =
  let lock_id = !next_id in
  incr next_id;
  let t =
    {
      lock_id;
      lock_name = name;
      mutex = Mutex.create ();
      cond = Condition.create ();
      expected = [];
      expected_loaded = false;
    }
  in
  (match !mode with
  | Record { sink; tid } -> sink { lock_id; op = Create; tid = tid () }
  | Passthrough | Replay _ -> ());
  tap Create lock_id;
  t

let id t = t.lock_id

let name t = t.lock_name

let with_lock t f =
  match !mode with
  | Passthrough -> (
    match !trace_tap with
    | None -> f ()
    | Some _ ->
      tap Acquire t.lock_id;
      Fun.protect f ~finally:(fun () -> tap Release t.lock_id))
  | Record { sink; tid } ->
    let tid = tid () in
    sink { lock_id = t.lock_id; op = Acquire; tid };
    tap Acquire t.lock_id;
    Fun.protect f ~finally:(fun () ->
        tap Release t.lock_id;
        sink { lock_id = t.lock_id; op = Release; tid })
  | Replay { order; tid } ->
    let my_tid = tid () in
    Mutex.lock t.mutex;
    if not t.expected_loaded then begin
      t.expected <- order t.lock_id;
      t.expected_loaded <- true
    end;
    (* wait for this thread's turn per the recorded acquisition order *)
    let rec wait () =
      match t.expected with
      | next :: _ when next = my_tid -> ()
      | [] -> () (* more acquisitions than recorded: admit freely *)
      | _ :: _ ->
        Condition.wait t.cond t.mutex;
        wait ()
    in
    wait ();
    (match t.expected with _ :: rest -> t.expected <- rest | [] -> ());
    tap Acquire t.lock_id;
    let finally () =
      tap Release t.lock_id;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    in
    Fun.protect f ~finally

let set_record_mode ~sink ~tid = mode := Record { sink; tid }

let set_replay_mode ~order ~tid = mode := Replay { order; tid }

let set_passthrough_mode () = mode := Passthrough
