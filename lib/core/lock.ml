type op = Create | Acquire | Release

type event = { lock_id : int; op : op; tid : int }

(* Shared by the record writer (text form) and the replay parser, so the
   two ends of the log can never drift apart. *)
let op_name = function Create -> "create" | Acquire -> "acquire" | Release -> "release"

let op_of_name = function
  | "create" -> Some Create
  | "acquire" -> Some Acquire
  | "release" -> Some Release
  | _ -> None

(* Binary-log counterpart of [op_name]. *)
let op_byte = function Create -> 0 | Acquire -> 1 | Release -> 2

let op_of_byte = function
  | 0 -> Some Create
  | 1 -> Some Acquire
  | 2 -> Some Release
  | _ -> None

type t = {
  lock_id : int;
  lock_name : string;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable expected : int list; (* replay: tids in acquisition order *)
  mutable expected_loaded : bool;
}

type mode =
  | Passthrough
  | Record of { sink : event -> unit; tid : unit -> int }
  | Replay of { order : int -> int list; tid : unit -> int }

(* Mode, tap and the id counter are domain-local, not process-global:
   the bench harness runs independent machines in parallel domains, and
   each domain's machine must see only its own tap and id sequence. *)
let mode_key = Domain.DLS.new_key (fun () -> Passthrough)

let mode () = Domain.DLS.get mode_key

(* Tracing tap, orthogonal to record/replay: fires in every mode so the
   sanitizer can check acquire/release pairing online. *)
let tap_key : (op -> lock_id:int -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_trace_tap f = Domain.DLS.set tap_key f

let tap op lock_id =
  match Domain.DLS.get tap_key with None -> () | Some f -> f op ~lock_id

(* Locks created while in replay mode, so the replay harness can release
   the recorded admission order on all of them at once when the replayed
   scheduler has diverged (see [abandon_replay_order]). *)
let replay_locks_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let next_id_key = Domain.DLS.new_key (fun () -> ref 0)

let next_id () = Domain.DLS.get next_id_key

let reset_ids () = next_id () := 0

let create ?(name = "lock") () =
  let ids = next_id () in
  let lock_id = !ids in
  incr ids;
  let t =
    {
      lock_id;
      lock_name = name;
      mutex = Mutex.create ();
      cond = Condition.create ();
      expected = [];
      expected_loaded = false;
    }
  in
  (match mode () with
  | Record { sink; tid } -> sink { lock_id; op = Create; tid = tid () }
  | Replay _ ->
    let locks = Domain.DLS.get replay_locks_key in
    locks := t :: !locks
  | Passthrough -> ());
  tap Create lock_id;
  t

let id t = t.lock_id

let name t = t.lock_name

let with_lock t f =
  match mode () with
  | Passthrough -> (
    match Domain.DLS.get tap_key with
    | None -> f ()
    | Some _ ->
      tap Acquire t.lock_id;
      Fun.protect f ~finally:(fun () -> tap Release t.lock_id))
  | Record { sink; tid } ->
    let tid = tid () in
    sink { lock_id = t.lock_id; op = Acquire; tid };
    tap Acquire t.lock_id;
    Fun.protect f ~finally:(fun () ->
        tap Release t.lock_id;
        sink { lock_id = t.lock_id; op = Release; tid })
  | Replay { order; tid } ->
    let my_tid = tid () in
    Mutex.lock t.mutex;
    if not t.expected_loaded then begin
      t.expected <- order t.lock_id;
      t.expected_loaded <- true
    end;
    (* wait for this thread's turn per the recorded acquisition order *)
    let rec wait () =
      match t.expected with
      | next :: _ when next = my_tid -> ()
      | [] -> () (* more acquisitions than recorded: admit freely *)
      | _ :: _ ->
        Condition.wait t.cond t.mutex;
        wait ()
    in
    wait ();
    (match t.expected with _ :: rest -> t.expected <- rest | [] -> ());
    tap Acquire t.lock_id;
    let finally () =
      tap Release t.lock_id;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    in
    Fun.protect f ~finally

(* The whole domain-local lock state as a first-class value, so a host's
   lock identity (its mode, tap, id counter and replay-created locks) can
   travel with the host rather than with whichever domain happens to run
   it.  The fleet tier installs a host's context around every machine
   advance: under `fleet -j N` a host may run on a different domain each
   epoch, and without this its lock ids, record stream and trace tap would
   come from the wrong host (or from a pristine worker domain) — breaking
   the byte-identity of record logs between sequential and parallel runs. *)
type ctx = {
  ctx_mode : mode;
  ctx_tap : (op -> lock_id:int -> unit) option;
  ctx_ids : int ref;  (* aliased, not copied: creations during a run persist *)
  ctx_replay_locks : t list ref;
}

let fresh_ctx () = { ctx_mode = Passthrough; ctx_tap = None; ctx_ids = ref 0; ctx_replay_locks = ref [] }

let capture_ctx () =
  {
    ctx_mode = Domain.DLS.get mode_key;
    ctx_tap = Domain.DLS.get tap_key;
    ctx_ids = Domain.DLS.get next_id_key;
    ctx_replay_locks = Domain.DLS.get replay_locks_key;
  }

let install_ctx c =
  Domain.DLS.set mode_key c.ctx_mode;
  Domain.DLS.set tap_key c.ctx_tap;
  Domain.DLS.set next_id_key c.ctx_ids;
  Domain.DLS.set replay_locks_key c.ctx_replay_locks

let set_record_mode ~sink ~tid = Domain.DLS.set mode_key (Record { sink; tid })

let set_replay_mode ~order ~tid =
  Domain.DLS.get replay_locks_key := [];
  Domain.DLS.set mode_key (Replay { order; tid })

let set_passthrough_mode () = Domain.DLS.set mode_key Passthrough

(* A replay whose scheduler has diverged from the recording may acquire
   locks a different number of times (or in a different nesting) than the
   log says, wedging every thread on a turn that never comes.  Once
   divergence is established, order fidelity is moot — release the
   recorded order on every replay-created lock so the replay finishes and
   reports instead of hanging. *)
let abandon_replay_order () =
  List.iter
    (fun t ->
      Mutex.lock t.mutex;
      t.expected <- [];
      t.expected_loaded <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex)
    !(Domain.DLS.get replay_locks_key)
