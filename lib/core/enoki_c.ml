module Ops = Kernsim.Sched_class

(* Registry handles for the dispatch boundary, resolved once at [create].
   Per-callback counters are created lazily on first crossing (the call
   vocabulary is small and fixed) and cached by name. *)
type obs = {
  reg : Metrics.Registry.t;
  o_calls : Metrics.Registry.counter;
  o_call_lat : Metrics.Registry.histogram;
  o_panics : Metrics.Registry.counter;
  o_failovers : Metrics.Registry.counter;
  o_overruns : Metrics.Registry.counter;
  o_violations : Metrics.Registry.counter;
  o_per_call : (string, Metrics.Registry.counter) Hashtbl.t;
}

type t = {
  modul : (module Sched_trait.S); (* version registered at load time *)
  policy : int;
  mutable packed : Sched_trait.packed option;
  mutable ops : Ops.kernel_ops option;
  (* pid -> latest Schedulable generation, dense (pids are small and
     contiguous).  0 means "no outstanding capability"; minted generations
     start at 1.  [ngens] counts live (non-zero) entries. *)
  mutable gens : int array;
  mutable ngens : int;
  hint_ring : (int * Kernsim.Task.hint) Ds.Ring_buffer.t;
  record : Record.t option;
  tracer : Trace.Tracer.t option;
  obs : obs option;
  profile : Profile.t option;
  mutable calls : int;
  mutable violations : int;
  violation_kinds : (string, int) Hashtbl.t;
  mutable current_tid : int;
  mutable upgrades : Upgrade.stats list;
  mutable readers : int; (* quiescing read-write lock: in-flight calls *)
  (* fault isolation (the paper's "kernel survives module bugs" property) *)
  isolate : bool;
  call_budget : Kernsim.Time.ns option;
  mutable quarantined : (string * Kernsim.Time.ns) option; (* reason, since *)
  mutable fallback : Ops.t option; (* instantiated CFS, while quarantined *)
  mutable panics : int;
  mutable failovers : int;
  mutable overruns : int;
  mutable blackout : Kernsim.Time.ns option; (* quarantine -> first fallback pick *)
  mutable charged_in_call : Kernsim.Time.ns;
  mutable history : (module Sched_trait.S) list; (* superseded versions, newest first *)
}

let create ?(policy = 0) ?record ?tracer ?registry ?profile ?(hint_capacity = 1024)
    ?(isolate = true) ?call_budget modul =
  let obs =
    Option.map
      (fun reg ->
        {
          reg;
          o_calls =
            Metrics.Registry.counter reg ~help:"Enoki-C boundary crossings" "enoki_calls_total";
          o_call_lat =
            Metrics.Registry.histogram reg ~help:"simulated ns charged per boundary crossing"
              "enoki_call_sim_ns";
          o_panics = Metrics.Registry.counter reg ~help:"module panics caught" "enoki_panics_total";
          o_failovers =
            Metrics.Registry.counter reg ~help:"failovers to the CFS fallback"
              "enoki_failovers_total";
          o_overruns =
            Metrics.Registry.counter reg ~help:"per-call budget overruns" "enoki_overruns_total";
          o_violations =
            Metrics.Registry.counter reg ~help:"API discipline violations" "enoki_violations_total";
          o_per_call = Hashtbl.create 16;
        })
      registry
  in
  {
    modul;
    policy;
    packed = None;
    ops = None;
    gens = Array.make 64 0;
    ngens = 0;
    hint_ring = Ds.Ring_buffer.create ~capacity:hint_capacity;
    record;
    tracer;
    obs;
    profile;
    calls = 0;
    violations = 0;
    violation_kinds = Hashtbl.create 8;
    current_tid = 0;
    upgrades = [];
    readers = 0;
    isolate;
    call_budget;
    quarantined = None;
    fallback = None;
    panics = 0;
    failovers = 0;
    overruns = 0;
    blackout = None;
    charged_in_call = 0;
    history = [];
  }

let ops_exn t =
  match t.ops with
  | Some ops -> ops
  | None -> invalid_arg "Enoki_c: scheduler module not loaded into a machine yet"

(* Schedtrace emitter: a single match when disabled.  Timestamps come from
   the kernel capability table, so this stays silent until registration. *)
let emit t ~cpu kind =
  match (t.tracer, t.ops) with
  | Some tr, Some (ops : Ops.kernel_ops) -> Trace.Tracer.emit tr ~ts:(ops.now ()) ~cpu kind
  | _ -> ()

let packed_exn t =
  match t.packed with
  | Some p -> p
  | None -> invalid_arg "Enoki_c: scheduler module not loaded into a machine yet"

let scheduler_name t =
  match t.packed with
  | Some (Sched_trait.Packed ((module S), _)) -> S.name
  | None ->
    let (module S : Sched_trait.S) = t.modul in
    S.name

let calls t = t.calls

let violations t = t.violations

let count_violation t kind =
  t.violations <- t.violations + 1;
  Hashtbl.replace t.violation_kinds kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.violation_kinds kind));
  match t.obs with Some o -> Metrics.Registry.incr o.o_violations () | None -> ()

(* Per-callback crossing counter, created on first use of each call name. *)
let per_call_counter o name =
  match Hashtbl.find_opt o.o_per_call name with
  | Some c -> c
  | None ->
    let c =
      Metrics.Registry.counter o.reg ~help:"boundary crossings for one callback"
        ("enoki_call_" ^ name ^ "_total")
    in
    Hashtbl.replace o.o_per_call name c;
    c

let violation_breakdown t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.violation_kinds []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let hints_dropped t = Ds.Ring_buffer.dropped t.hint_ring

let upgrades t = t.upgrades

let previous t = match t.history with m :: _ -> Some m | [] -> None

(* ---------- capabilities ---------- *)

let ensure_gens t pid =
  let n = Array.length t.gens in
  if pid >= n then begin
    let a = Array.make (max (n * 2) (pid + 1)) 0 in
    Array.blit t.gens 0 a 0 n;
    t.gens <- a
  end

(* Bump pid's generation; both minting and invalidation go through here
   (a fresh pid starts at 1, exactly as the hash-table version did). *)
let bump_gen t pid =
  ensure_gens t pid;
  let g = Array.unsafe_get t.gens pid in
  if g = 0 then t.ngens <- t.ngens + 1;
  Array.unsafe_set t.gens pid (g + 1);
  g + 1

let forget_gen t pid =
  if pid < Array.length t.gens then begin
    if Array.unsafe_get t.gens pid <> 0 then t.ngens <- t.ngens - 1;
    Array.unsafe_set t.gens pid 0
  end

let mint t ~pid ~cpu =
  let gen = bump_gen t pid in
  Schedulable.Private.create ~pid ~cpu ~gen

(* Any kernel state transition supersedes outstanding tokens. *)
let invalidate t ~pid = ignore (bump_gen t pid)

let token_valid t token ~cpu =
  Schedulable.is_live token
  && Schedulable.cpu token = cpu
  &&
  let pid = Schedulable.pid token in
  pid < Array.length t.gens
  && Array.unsafe_get t.gens pid = Schedulable.generation token

(* ---------- dispatch ---------- *)

(* The synchronous call path: read-lock, translate, invoke the processing
   function, record.  Overheads are charged to the calling cpu's context,
   modelling the 100-150 ns per invocation the paper measures. *)
let dispatch t ~cpu call =
  let ops = ops_exn t in
  ops.charge ~cpu ops.costs.enoki_call;
  emit t ~cpu (Trace.Event.Msg_call { name = Message.call_name call });
  t.calls <- t.calls + 1;
  (match t.obs with
  | Some o ->
    Metrics.Registry.incr o.o_calls ~cpu ();
    Metrics.Registry.incr (per_call_counter o (Message.call_name call)) ~cpu ()
  | None -> ());
  t.current_tid <- cpu;
  t.readers <- t.readers + 1;
  let saved_charge = t.charged_in_call in
  t.charged_in_call <- 0;
  let wall0 =
    match t.profile with Some _ -> Profile.now_wall () | None -> 0.0
  in
  let reply =
    Fun.protect
      (fun () -> Lib_enoki.process (packed_exn t) call)
      ~finally:(fun () ->
        t.readers <- t.readers - 1;
        (* the wedged-module detector: compare what the module charged via
           [Ctx.charge] during this call against the per-call budget.  The
           check runs in [finally] so a call that both overruns and raises
           is still surfaced. *)
        let charged = t.charged_in_call in
        t.charged_in_call <- saved_charge;
        (* per-call latency: the fixed crossing cost plus whatever the
           module charged; profile rows add the host wall clock.  Both
           record into plain OCaml state — no simulated time moves. *)
        (match t.obs with
        | Some o -> Metrics.Registry.observe o.o_call_lat ~cpu (ops.costs.enoki_call + charged)
        | None -> ());
        (match t.profile with
        | Some p ->
          Profile.record p ~sched:(scheduler_name t) ~call:(Message.call_name call)
            ~sim_ns:(ops.costs.enoki_call + charged)
            ~wall_ns:(Profile.now_wall () -. wall0)
        | None -> ());
        match t.call_budget with
        | Some budget when charged > budget ->
          t.overruns <- t.overruns + 1;
          (match t.obs with
          | Some o -> Metrics.Registry.incr o.o_overruns ~cpu ()
          | None -> ());
          count_violation t "call_budget";
          emit t ~cpu (Trace.Event.Overrun { call = Message.call_name call; charged; budget })
        | Some _ | None -> ())
  in
  (match t.record with
  | Some r ->
    ops.charge ~cpu ops.costs.record_msg;
    Record.tap_call r ~tid:cpu call reply
  | None -> ());
  reply

let dispatch_raw t ~tid call = dispatch t ~cpu:tid call

let unit_reply = function
  | Message.R_unit -> ()
  | r -> invalid_arg ("Enoki_c: expected unit reply, got " ^ Message.encode_reply r)

(* ---------- scheduler-class hooks ---------- *)

let select_task_rq t (task : Kernsim.Task.t) ~waker_cpu =
  let allowed =
    match task.affinity with
    | Some cpus -> cpus
    | None -> List.init (ops_exn t).nr_cpus Fun.id
  in
  match dispatch t ~cpu:waker_cpu (Select_task_rq { pid = task.pid; waker_cpu; allowed }) with
  | R_int cpu when cpu >= 0 && cpu < (ops_exn t).nr_cpus && Kernsim.Task.allowed_cpu task cpu
    -> cpu
  | R_int _ ->
    (* scheduler chose a cpu the task may not use; fall back *)
    count_violation t "bad_select_cpu";
    emit t ~cpu:waker_cpu (Trace.Event.Pnt_err { pid = task.pid; err = "bad_select_cpu" });
    (match task.affinity with Some (c :: _) -> c | Some [] | None -> waker_cpu)
  | r -> invalid_arg ("Enoki_c: bad select_task_rq reply " ^ Message.encode_reply r)

let task_new t (task : Kernsim.Task.t) ~cpu =
  let sched = mint t ~pid:task.pid ~cpu in
  unit_reply
    (dispatch t ~cpu
       (Task_new { pid = task.pid; runtime = task.sum_exec; prio = task.nice; sched }))

let task_wakeup t (task : Kernsim.Task.t) ~cpu ~waker_cpu =
  let sched = mint t ~pid:task.pid ~cpu in
  unit_reply
    (dispatch t ~cpu:waker_cpu
       (Task_wakeup { pid = task.pid; runtime = task.sum_exec; waker_cpu; sched }))

let task_blocked t (task : Kernsim.Task.t) ~cpu =
  invalidate t ~pid:task.pid;
  unit_reply
    (dispatch t ~cpu (Task_blocked { pid = task.pid; runtime = task.sum_exec; cpu }))

let task_yield t (task : Kernsim.Task.t) ~cpu =
  let sched = mint t ~pid:task.pid ~cpu in
  unit_reply
    (dispatch t ~cpu (Task_yield { pid = task.pid; runtime = task.sum_exec; cpu; sched }))

let task_preempt t (task : Kernsim.Task.t) ~cpu =
  let sched = mint t ~pid:task.pid ~cpu in
  unit_reply
    (dispatch t ~cpu (Task_preempt { pid = task.pid; runtime = task.sum_exec; cpu; sched }))

let task_dead t (task : Kernsim.Task.t) ~cpu =
  invalidate t ~pid:task.pid;
  forget_gen t task.pid;
  unit_reply (dispatch t ~cpu (Task_dead { pid = task.pid }))

let task_departed t (task : Kernsim.Task.t) ~cpu =
  (match dispatch t ~cpu (Task_departed { pid = task.pid; cpu }) with
  | R_sched_opt tok ->
    (* the scheduler returns whatever token it held; consume it *)
    Option.iter Schedulable.Private.consume tok
  | r -> invalid_arg ("Enoki_c: bad task_departed reply " ^ Message.encode_reply r));
  invalidate t ~pid:task.pid;
  forget_gen t task.pid

let task_tick t ~cpu ~queued = unit_reply (dispatch t ~cpu (Task_tick { cpu; queued }))

(* Int-encoded Sched_class boundary: option/token replies stay on the
   Message wire (record/replay compatibility), but what crosses into the
   machine's per-schedule hot path is a plain pid or -1. *)
let pick_next_task t ~cpu =
  match dispatch t ~cpu (Pick_next_task { cpu; curr = None; curr_runtime = 0 }) with
  | R_sched_opt None -> -1
  | R_sched_opt (Some token) ->
    let reject err =
      (* wrong core, stale or forged token: hand ownership back via
         pnt_err, the recoverable path the Schedulable design exists for *)
      count_violation t err;
      emit t ~cpu (Trace.Event.Pnt_err { pid = Schedulable.pid token; err });
      unit_reply
        (dispatch t ~cpu (Pnt_err { cpu; pid = Schedulable.pid token; err; sched = Some token }));
      -1
    in
    if token_valid t token ~cpu then begin
      let pid = Schedulable.pid token in
      (* the token checks out against our generation table; re-validate
         against the kernel's own task state before letting the pid reach
         the core scheduler, so a bogus reply can never crash the machine *)
      match (ops_exn t).find_task pid with
      | Some task when task.state = Kernsim.Task.Runnable && task.cpu = cpu ->
        Schedulable.Private.consume token;
        invalidate t ~pid;
        pid
      | Some _ | None -> reject "not_runnable"
    end
    else
      reject
        (if not (Schedulable.is_live token) then "consumed"
         else if Schedulable.cpu token <> cpu then "wrong_cpu"
         else "stale_generation")
  | r -> invalid_arg ("Enoki_c: bad pick_next_task reply " ^ Message.encode_reply r)

let balance t ~cpu =
  match dispatch t ~cpu (Balance { cpu }) with
  | R_pid_opt (Some p) -> p
  | R_pid_opt None -> -1
  | r -> invalid_arg ("Enoki_c: bad balance reply " ^ Message.encode_reply r)

let balance_err t (task : Kernsim.Task.t) ~cpu =
  unit_reply (dispatch t ~cpu (Balance_err { cpu; pid = task.pid; sched = None }))

let migrate_task_rq t (task : Kernsim.Task.t) ~from_cpu ~to_cpu =
  let sched = mint t ~pid:task.pid ~cpu:to_cpu in
  match dispatch t ~cpu:to_cpu (Migrate_task_rq { pid = task.pid; from_cpu; sched }) with
  | R_sched_opt old ->
    (* the scheduler returns the superseded token; consume whatever it gave *)
    Option.iter Schedulable.Private.consume old
  | r -> invalid_arg ("Enoki_c: bad migrate reply " ^ Message.encode_reply r)

let task_prio_changed t (task : Kernsim.Task.t) =
  unit_reply
    (dispatch t ~cpu:task.cpu (Task_prio_changed { pid = task.pid; prio = task.nice }))

let task_affinity_changed t (task : Kernsim.Task.t) =
  let allowed =
    match task.affinity with
    | Some cpus -> cpus
    | None -> List.init (ops_exn t).nr_cpus Fun.id
  in
  unit_reply (dispatch t ~cpu:task.cpu (Task_affinity_changed { pid = task.pid; allowed }))

(* User hints go through the shared ring, then Enoki-C synchronously drains
   it into parse_hint calls (the enter_queue protocol of §3.3). *)
let deliver_hint t (task : Kernsim.Task.t) hint =
  if Ds.Ring_buffer.push t.hint_ring (task.pid, hint) then
    List.iter
      (fun (pid, hint) -> unit_reply (dispatch t ~cpu:task.cpu (Parse_hint { pid; hint })))
      (Ds.Ring_buffer.drain t.hint_ring)

(* ---------- registration ---------- *)

let make_ctx t (ops : Ops.kernel_ops) : Ctx.t =
  {
    nr_cpus = ops.nr_cpus;
    policy = t.policy;
    now = ops.now;
    set_timer = (fun ~cpu d -> ops.set_timer ~cpu d);
    cancel_timer = (fun ~cpu -> ops.cancel_timer ~cpu);
    resched = (fun ~cpu -> ops.resched_cpu cpu);
    send_user = (fun ~pid hint -> ops.send_user ~pid hint);
    charge =
      (fun ~cpu ns ->
        (* module compute time: account it on the core and against the
           per-call budget (the infinite-loop stand-in of the fault plan) *)
        t.charged_in_call <- t.charged_in_call + ns;
        ops.charge ~cpu ns);
    log = (fun _ -> ());
    registry = Option.map (fun o -> o.reg) t.obs;
    trace = (fun ~cpu kind -> emit t ~cpu kind);
  }

(* ---------- isolation: quarantine and fallback (ghOSt-style) ---------- *)

let fallback_name = "cfs-fallback"

let fallback_exn t =
  match t.fallback with
  | Some fb -> fb
  | None ->
    let fb = Kernsim.Cfs.factory () (ops_exn t) in
    t.fallback <- Some fb;
    fb

(* A module exception was caught at the dispatch boundary.  First panic
   flips the class into quarantine: instantiate the built-in CFS fallback,
   re-home the policy's runnable tasks into it from the kernel's own task
   list, charge the failover pause everywhere and kick every cpu.  [skip]
   is the task the failed hook was about — the caller re-delegates that
   hook to the fallback, which introduces the task without double-queueing
   it. *)
let quarantine t ~cpu ?skip ~call exn =
  let ops = ops_exn t in
  t.panics <- t.panics + 1;
  (match t.obs with Some o -> Metrics.Registry.incr o.o_panics ~cpu () | None -> ());
  let reason = Printexc.to_string exn in
  emit t ~cpu (Trace.Event.Panic { call; reason });
  match t.quarantined with
  | Some _ -> fallback_exn t
  | None ->
    t.quarantined <- Some (reason, ops.now ());
    t.failovers <- t.failovers + 1;
    (match t.obs with Some o -> Metrics.Registry.incr o.o_failovers ~cpu () | None -> ());
    t.blackout <- None;
    count_violation t "panic";
    emit t ~cpu (Trace.Event.Failover { fallback = fallback_name });
    let fb = fallback_exn t in
    (* Running tasks reach the fallback at their next deschedule and
       blocked ones at wakeup; CFS tolerates pids it has not seen *)
    List.iter
      (fun (task : Kernsim.Task.t) ->
        if task.state = Kernsim.Task.Runnable && Some task.pid <> skip then
          fb.task_new task ~cpu:task.cpu)
      (ops.live_tasks ~policy:t.policy);
    for c = 0 to ops.nr_cpus - 1 do
      ops.charge ~cpu:c ops.costs.failover;
      ops.resched_cpu c
    done;
    fb

(* Every scheduler-class hook runs under this boundary: when quarantined,
   route straight to the fallback; otherwise run the module and convert
   anything it raises into quarantine + failover instead of letting it
   unwind the core scheduler. *)
let guarded t ~cpu ?skip ~call ~(active : unit -> 'a) ~(failed : Ops.t -> 'a) () =
  match t.quarantined with
  | Some _ -> failed (fallback_exn t)
  | None ->
    if not t.isolate then active ()
    else ( try active () with exn -> failed (quarantine t ~cpu ?skip ~call exn))

let rec arm_record_drain t (ops : Ops.kernel_ops) r =
  ops.defer ~delay:(Kernsim.Time.us 100) (fun () ->
      Record.drain r;
      arm_record_drain t ops r)

let factory t : Kernsim.Sched_class.factory =
 fun ops ->
  if t.ops <> None then invalid_arg "Enoki_c: scheduler already registered";
  t.ops <- Some ops;
  (* module load: construct the scheduler against the safe context *)
  Lock.reset_ids ();
  (match t.tracer with
  | Some _ ->
    Lock.set_trace_tap
      (Some
         (fun op ~lock_id ->
           match op with
           | Lock.Acquire -> emit t ~cpu:t.current_tid (Trace.Event.Lock_acquire { lock_id })
           | Lock.Release -> emit t ~cpu:t.current_tid (Trace.Event.Lock_release { lock_id })
           | Lock.Create -> ()))
  | None -> ());
  (match t.record with
  | Some r ->
    Lock.set_record_mode ~sink:(Record.tap_lock r) ~tid:(fun () -> t.current_tid);
    arm_record_drain t ops r
  | None -> ());
  let (module S : Sched_trait.S) = t.modul in
  let st = S.create (make_ctx t ops) in
  t.packed <- Some (Sched_trait.Packed ((module S), st));
  {
    Kernsim.Sched_class.name = "enoki:" ^ S.name;
    select_task_rq =
      (fun task ~waker_cpu ->
        guarded t ~cpu:waker_cpu ~skip:task.pid ~call:"select_task_rq"
          ~active:(fun () -> select_task_rq t task ~waker_cpu)
          ~failed:(fun fb -> fb.select_task_rq task ~waker_cpu)
          ());
    task_new =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_new"
          ~active:(fun () -> task_new t task ~cpu)
          ~failed:(fun fb -> fb.task_new task ~cpu)
          ());
    task_wakeup =
      (fun task ~cpu ~waker_cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_wakeup"
          ~active:(fun () -> task_wakeup t task ~cpu ~waker_cpu)
          ~failed:(fun fb -> fb.task_wakeup task ~cpu ~waker_cpu)
          ());
    task_blocked =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_blocked"
          ~active:(fun () -> task_blocked t task ~cpu)
          ~failed:(fun fb -> fb.task_blocked task ~cpu)
          ());
    task_yield =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_yield"
          ~active:(fun () -> task_yield t task ~cpu)
          ~failed:(fun fb -> fb.task_yield task ~cpu)
          ());
    task_preempt =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_preempt"
          ~active:(fun () -> task_preempt t task ~cpu)
          ~failed:(fun fb -> fb.task_preempt task ~cpu)
          ());
    task_dead =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_dead"
          ~active:(fun () -> task_dead t task ~cpu)
          ~failed:(fun fb -> fb.task_dead task ~cpu)
          ());
    task_departed =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"task_departed"
          ~active:(fun () -> task_departed t task ~cpu)
          ~failed:(fun fb -> fb.task_departed task ~cpu)
          ());
    task_tick =
      (fun ~cpu ~queued ->
        guarded t ~cpu ~call:"task_tick"
          ~active:(fun () -> task_tick t ~cpu ~queued)
          ~failed:(fun fb -> fb.task_tick ~cpu ~queued)
          ());
    pick_next_task =
      (fun ~cpu ->
        let picked =
          guarded t ~cpu ~call:"pick_next_task"
            ~active:(fun () -> pick_next_task t ~cpu)
            ~failed:(fun fb -> fb.pick_next_task ~cpu)
            ()
        in
        (if picked >= 0 then
           match (t.quarantined, t.blackout) with
           | Some (_, since), None ->
             (* first successful dispatch after failover closes the blackout *)
             t.blackout <- Some (ops.now () - since)
           | _ -> ());
        picked);
    balance =
      (fun ~cpu ->
        guarded t ~cpu ~call:"balance"
          ~active:(fun () -> balance t ~cpu)
          ~failed:(fun fb -> fb.balance ~cpu)
          ());
    balance_err =
      (fun task ~cpu ->
        guarded t ~cpu ~skip:task.pid ~call:"balance_err"
          ~active:(fun () -> balance_err t task ~cpu)
          ~failed:(fun fb -> fb.balance_err task ~cpu)
          ());
    migrate_task_rq =
      (fun task ~from_cpu ~to_cpu ->
        guarded t ~cpu:to_cpu ~skip:task.pid ~call:"migrate_task_rq"
          ~active:(fun () -> migrate_task_rq t task ~from_cpu ~to_cpu)
          ~failed:(fun fb -> fb.migrate_task_rq task ~from_cpu ~to_cpu)
          ());
    task_prio_changed =
      (fun task ->
        guarded t ~cpu:task.cpu ~skip:task.pid ~call:"task_prio_changed"
          ~active:(fun () -> task_prio_changed t task)
          ~failed:(fun fb -> fb.task_prio_changed task)
          ());
    task_affinity_changed =
      (fun task ->
        guarded t ~cpu:task.cpu ~skip:task.pid ~call:"task_affinity_changed"
          ~active:(fun () -> task_affinity_changed t task)
          ~failed:(fun fb -> fb.task_affinity_changed task)
          ());
    deliver_hint =
      (fun task hint ->
        guarded t ~cpu:task.cpu ~skip:task.pid ~call:"parse_hint"
          ~active:(fun () -> deliver_hint t task hint)
          ~failed:(fun fb -> fb.deliver_hint task hint)
          ());
  }

(* ---------- live upgrade (§3.2) ---------- *)

(* Rebuild the incoming module's world view from the kernel's own task
   list: introduce every runnable task of the policy with a fresh token.
   Running tasks reach the module at their next deschedule and blocked
   ones at wakeup, mirroring how the machine defers policy changes for
   running tasks. *)
let readopt t (ops : Ops.kernel_ops) =
  List.iter
    (fun (task : Kernsim.Task.t) ->
      if task.state = Kernsim.Task.Runnable then task_new t task ~cpu:task.cpu)
    (ops.live_tasks ~policy:t.policy)

let upgrade t (module New : Sched_trait.S) =
  match t.ops with
  | None -> Error (Invalid_argument "Enoki_c: not registered")
  | Some ops -> (
    let (Sched_trait.Packed ((module Old), old_st)) = packed_exn t in
    (* acquire the per-scheduler lock in write mode: in the simulator all
       calls are instantaneous, so quiescing is immediate *)
    assert (t.readers = 0);
    let tasks_carried = t.ngens in
    let was_quarantined = t.quarantined <> None in
    match
      (* prepare in the old version, init in the new one, swap the pointer.
         A quarantined module's exported state is not trusted — the Rex
         argument: recover from kernel ground truth, not from the crashed
         extension's heap — and a panic inside prepare itself degrades to
         a stateless handoff instead of aborting the upgrade. *)
      let transfer =
        if was_quarantined then None
        else
          try Old.reregister_prepare old_st with
          | Upgrade.Incompatible _ as e -> raise e
          | _ -> None
      in
      let new_st = New.reregister_init (make_ctx t ops) transfer in
      (transfer, new_st)
    with
    | transfer, new_st ->
      t.history <- (module Old : Sched_trait.S) :: t.history;
      t.packed <- Some (Sched_trait.Packed ((module New), new_st));
      (* the write lock was held while both reregister calls ran; model
         that blackout by delaying every cpu's next dispatch *)
      let pause =
        ops.costs.upgrade_base
        + (ops.costs.upgrade_per_cpu * ops.nr_cpus)
        + (ops.costs.upgrade_per_task * tasks_carried)
      in
      for cpu = 0 to ops.nr_cpus - 1 do
        ops.charge ~cpu pause
      done;
      let stats = { Upgrade.pause; transferred = Option.is_some transfer; tasks_carried } in
      t.upgrades <- stats :: t.upgrades;
      (* leaving quarantine (or a stateless handoff): discard the fallback
         instance and re-introduce the kernel's tasks to the new module *)
      if was_quarantined || Option.is_none transfer then begin
        t.quarantined <- None;
        t.fallback <- None;
        (try readopt t ops
         with exn ->
           (* the incoming module panicked during re-adoption *)
           if t.isolate then ignore (quarantine t ~cpu:0 ~call:"reregister_init" exn)
           else raise exn);
        for cpu = 0 to ops.nr_cpus - 1 do
          ops.resched_cpu cpu
        done
      end;
      Ok stats
    | exception e ->
      (* [Incompatible] or any panic out of the new module's init: the old
         version stays registered, the write lock is released *)
      Error e)

(* Watchdog-driven recovery: re-register the previous scheduler version.
   On success both the failed version and its predecessor leave the
   history (the predecessor is current again). *)
let rollback t =
  match t.history with
  | [] -> Error (Invalid_argument "Enoki_c: no previous scheduler version to roll back to")
  | m :: rest -> (
    match upgrade t m with
    | Ok stats ->
      t.history <- rest;
      Ok stats
    | Error _ as e -> e)

(* ---------- fault-isolation counters ---------- *)

(* declared last: the field labels would otherwise shadow [t]'s *)
type failover_stats = {
  panics : int;
  failovers : int;
  overruns : int;
  quarantined : (string * Kernsim.Time.ns) option;
  blackout : Kernsim.Time.ns option;
}

let failover_stats (t : t) =
  {
    panics = t.panics;
    failovers = t.failovers;
    overruns = t.overruns;
    quarantined = t.quarantined;
    blackout = t.blackout;
  }
