(** The capability context libEnoki hands a scheduler at creation.

    Mirrors the safe kernel interfaces the paper's libEnoki exposes: timers
    (Shinjuku arms a 10 us preemption timer through this), the clock, the
    kernel-to-user reverse queue, and logging.  Everything else — run-queue
    manipulation, task state — stays on the Enoki-C side of the boundary. *)

type ns = Kernsim.Time.ns

type t = {
  nr_cpus : int;
  policy : int;  (** the policy id user tasks name to attach to this scheduler *)
  now : unit -> ns;
  set_timer : cpu:int -> ns -> unit;  (** one-shot; fires [task_tick] on [cpu] *)
  cancel_timer : cpu:int -> unit;
  resched : cpu:int -> unit;
      (** ask the kernel to re-run [pick_next_task] on [cpu] soon (sets the
          need-resched flag; safe — policy still only changes via picks) *)
  send_user : pid:int -> Kernsim.Task.hint -> unit;
      (** push onto the kernel-to-user reverse queue for [pid] *)
  charge : cpu:int -> ns -> unit;
      (** account scheduler compute time to [cpu] in simulated time; a
          module that thinks for long stretches (or a fault plan injecting
          latency spikes) charges it here, and Enoki-C counts it against
          the per-call budget *)
  log : string -> unit;
  registry : Metrics.Registry.t option;
      (** the machine's metrics registry when observability is attached;
          library code ({!Dsq}) registers depth/latency probes through it.
          [None] must never change scheduling decisions *)
  trace : cpu:int -> Trace.Event.kind -> unit;
      (** emit a schedtrace event attributed to [cpu] (a no-op when the
          machine has no tracer, and always inert at userspace) *)
}

(** A context whose effects are inert; replay and unit tests construct
    schedulers against this (timers cannot fire at userspace). *)
val inert : ?nr_cpus:int -> ?policy:int -> unit -> t
