let split_arrow s =
  let n = String.length s in
  let rec find i =
    if i + 3 >= n then None
    else if s.[i] = ' ' && s.[i + 1] = '=' && s.[i + 2] = '>' && s.[i + 3] = ' ' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 4) (n - i - 4))

(* Percent-escaping for free-form payloads in the space/newline-delimited
   text log: identifier-ish characters pass through, everything else
   (spaces, newlines, the " => " separator, '%' itself) becomes %XX, so
   the escaped form never contains a field or line delimiter and
   [unescape] is an exact inverse. *)
let escape s =
  let safe = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ',' | '=' -> true
    | _ -> false
  in
  if String.for_all safe s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if safe c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        if s.[i] = '%' && i + 2 < n then begin
          (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code -> Buffer.add_char buf (Char.chr (code land 0xff))
          | None ->
            Buffer.add_char buf s.[i];
            Buffer.add_string buf (String.sub s (i + 1) 2));
          go (i + 3)
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  end
