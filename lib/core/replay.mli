(** The replay half of record-and-replay (§3.4).

    Replay consumes a record log and drives the {e same scheduler code} that
    ran in the kernel, now at userspace, sending the recorded messages in
    per-kernel-thread order: one real OS thread is created per recorded
    kernel thread, and {!Lock} admits threads into each critical section in
    the recorded acquisition order.  Responses are validated against the
    recorded ones, flagging any divergence to the user.

    Both record formats are accepted — logs starting with {!Record.magic}
    are decoded as binary frames, anything else as the text form.  Entry
    [seq] numbers name positions in the source: the file line for text
    logs (comment lines count, so [seq] is exactly the line to open), the
    frame index for binary ones. *)

type entry =
  | Call of { seq : int; tid : int; call : Message.call; reply : Message.reply }
  | Lock_event of { seq : int; tid : int; op : Lock.op; lock_id : int }

type report = {
  total_calls : int;
  threads : int;
  mismatches : (int * string) list;
      (** (log position, description) for every reply diverging from the
          recording, in log order.  The first mismatch is produced under
          the recorded lock order and is authoritative; once divergence is
          established the order is released (see [order_abandoned]), so
          later mismatches are advisory. *)
  wall_seconds : float;
  order_abandoned : bool;
      (** the replayed scheduler diverged far enough (reply mismatch or a
          lock-admission wedge) that the recorded lock order was released
          to keep the replay live *)
}

(** What the log header/trailer says about a recording, without decoding
    entries (cheap even for huge logs). *)
type info = {
  binary : bool;
  recorded_events : int option;  (** [None]: no trailer (e.g. cut-off run) *)
  dropped : int option;
  truncated : bool;  (** binary log ends mid-frame; complete frames salvaged *)
}

(** Raised by {!run} when the log's trailer records ring-overrun drops: the
    recording has holes, so a replay divergence would be meaningless.  Pass
    [~allow_drops:true] to replay anyway. *)
exception Incomplete_log of { dropped : int }

(** The result of {!bisect}: [failing_prefix] is the length of the minimal
    diverging prefix, [seq]/[detail] name the first divergent call, and
    [context] is a window of log entries around it. *)
type divergence = { failing_prefix : int; seq : int; detail : string; context : entry list }

(** Parse a record log of either format.  Malformed text lines and corrupt
    binary frames raise [Failure]; a binary log that simply ends mid-frame
    yields the complete frames (see {!info}). *)
val parse : string -> entry list

(** {!parse} plus the header/trailer {!info} from the same pass. *)
val parse_full : string -> entry list * info

(** Header/trailer inspection only — entries are scanned, not decoded. *)
val info : string -> info

(** [run (module S) ~log] replays the log against a fresh instance of [S]
    built with an inert context.  Raises {!Incomplete_log} if the trailer
    records dropped events, unless [allow_drops] is set. *)
val run : ?allow_drops:bool -> (module Sched_trait.S) -> log:string -> report

(** Replay an already-parsed entry list (no drop check — the caller has the
    {!info} if it wants one). *)
val run_entries : (module Sched_trait.S) -> entry list -> report

(** [bisect (module S) ~log] delta-debugs a diverging log: binary-searches
    for the minimal failing prefix and reports the first divergent call
    with [window] entries of context either side (default 3).  [None] if
    the full log replays clean.  Costs O(log n) replays. *)
val bisect : ?window:int -> (module Sched_trait.S) -> log:string -> divergence option

(** Render an entry in the text-log form (for context printing). *)
val entry_line : entry -> string

(** One-line verdict; on mismatch, also the first few divergences with
    their log positions. *)
val pp_report : Format.formatter -> report -> unit
