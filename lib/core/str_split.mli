(** Tiny string helpers for the record-log text format. *)

(** Split ["lhs => rhs"] into [Some (lhs, rhs)]; [None] when no arrow. *)
val split_arrow : string -> (string * string) option

(** Percent-escape a free-form payload so it can travel as one field of a
    space/newline-delimited log line: identifier-ish characters
    ([a-zA-Z0-9-_.,=]) pass through, everything else — spaces, newlines,
    ['%'], the [" => "] separator — becomes [%XX].  {!unescape} is an
    exact inverse, so escaped payloads round-trip byte-for-byte. *)
val escape : string -> string

val unescape : string -> string
