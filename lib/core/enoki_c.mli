(** Enoki-C: the in-kernel half of the framework.

    Sits between the core scheduling code ({!Kernsim.Machine}) and a loaded
    scheduler module.  It translates every scheduler-class hook into a
    {!Message}, mints and validates {!Schedulable} capabilities, tracks task
    runtimes on the scheduler's behalf, manages the user/kernel hint rings,
    charges the framework's per-invocation overhead in simulated time, taps
    the record subsystem, and implements live upgrade behind a quiescing
    read-write lock (§3, §3.2).

    Usage: [let h = Enoki_c.create (module My_sched) in
            Machine.create ~classes:[ Enoki_c.factory h ] ... ] *)

type t

(** [create (module S)] prepares a registration.  The scheduler itself is
    constructed when the machine instantiates the factory (module load
    time).  [policy] is the id user tasks use to attach (defaults to the
    class's position, 0).  [hint_capacity] bounds the user-to-kernel hint
    ring.  [record] enables the record tap.  [tracer] attaches a schedtrace
    sink: Enoki-C then emits [Msg_call] at every message boundary,
    [Pnt_err] for every rejected Schedulable (and bad [select_task_rq]
    reply), and lock acquire/release events via {!Lock.set_trace_tap}. *)
val create :
  ?policy:int ->
  ?record:Record.t ->
  ?tracer:Trace.Tracer.t ->
  ?hint_capacity:int ->
  (module Sched_trait.S) ->
  t

(** The scheduler-class factory to hand to {!Kernsim.Machine.create}. *)
val factory : t -> Kernsim.Sched_class.factory

(** Live-upgrade to a new scheduler version: quiesce (write-lock), call the
    old module's [reregister_prepare], the new one's [reregister_init] with
    the transferred state, swap the dispatch pointer, release.  Returns
    [Error] (old scheduler still registered) if the new version rejects the
    state shape. *)
val upgrade : t -> (module Sched_trait.S) -> (Upgrade.stats, exn) result

(** Name of the currently registered scheduler version. *)
val scheduler_name : t -> string

(** Total scheduler invocations dispatched. *)
val calls : t -> int

(** Schedulable validation failures routed through [pnt_err]. *)
val violations : t -> int

(** Violations by kind ("wrong_cpu", "stale_generation", "consumed",
    "bad_select_cpu"), most frequent first. *)
val violation_breakdown : t -> (string * int) list

(** Hints dropped because the user-to-kernel ring was full. *)
val hints_dropped : t -> int

(** Upgrades performed, most recent first. *)
val upgrades : t -> Upgrade.stats list

(** Send a call directly to the registered scheduler (tests and the replay
    validator use this; the kernel path goes through the factory). *)
val dispatch_raw : t -> tid:int -> Message.call -> Message.reply
