(** Enoki-C: the in-kernel half of the framework.

    Sits between the core scheduling code ({!Kernsim.Machine}) and a loaded
    scheduler module.  It translates every scheduler-class hook into a
    {!Message}, mints and validates {!Schedulable} capabilities, tracks task
    runtimes on the scheduler's behalf, manages the user/kernel hint rings,
    charges the framework's per-invocation overhead in simulated time, taps
    the record subsystem, and implements live upgrade behind a quiescing
    read-write lock (§3, §3.2).

    Usage: [let h = Enoki_c.create (module My_sched) in
            Machine.create ~classes:[ Enoki_c.factory h ] ... ] *)

type t

(** [create (module S)] prepares a registration.  The scheduler itself is
    constructed when the machine instantiates the factory (module load
    time).  [policy] is the id user tasks use to attach (defaults to the
    class's position, 0).  [hint_capacity] bounds the user-to-kernel hint
    ring.  [record] enables the record tap.  [tracer] attaches a schedtrace
    sink: Enoki-C then emits [Msg_call] at every message boundary,
    [Pnt_err] for every rejected Schedulable (and bad [select_task_rq]
    reply), and lock acquire/release events via {!Lock.set_trace_tap}.

    [isolate] (default [true]) arms the module-panic boundary: an
    exception raised by the scheduler module out of any hook is caught,
    the module is quarantined, and the class fails over to a built-in
    kernsim CFS instance so the machine keeps scheduling (ghOSt's
    fallback-to-CFS, the paper's "kernel survives module bugs" property).
    With [isolate = false] module exceptions propagate and abort the
    machine, the pre-fault-subsystem behaviour.

    [call_budget] bounds the simulated time one dispatch may charge
    through [Ctx.charge]; exceeding it counts a ["call_budget"] violation
    and emits an [Overrun] trace event (the infinite-loop stand-in a
    watchdog keys on).

    [registry] attaches a metrics registry: the boundary then keeps
    total and per-callback crossing counters, a per-call simulated-ns
    histogram, and panic/failover/overrun/violation counters in it.
    [profile] attaches a self-profiler attributing simulated and host
    wall-clock ns to each callback kind (the paper's Table-3 breakdown).
    Neither ever charges simulated time. *)
val create :
  ?policy:int ->
  ?record:Record.t ->
  ?tracer:Trace.Tracer.t ->
  ?registry:Metrics.Registry.t ->
  ?profile:Profile.t ->
  ?hint_capacity:int ->
  ?isolate:bool ->
  ?call_budget:Kernsim.Time.ns ->
  (module Sched_trait.S) ->
  t

(** The scheduler-class factory to hand to {!Kernsim.Machine.create}. *)
val factory : t -> Kernsim.Sched_class.factory

(** Live-upgrade to a new scheduler version: quiesce (write-lock), call the
    old module's [reregister_prepare], the new one's [reregister_init] with
    the transferred state, swap the dispatch pointer, release.  Returns
    [Error] (old scheduler still registered) if the new version rejects the
    state shape. *)
val upgrade : t -> (module Sched_trait.S) -> (Upgrade.stats, exn) result

(** Name of the currently registered scheduler version. *)
val scheduler_name : t -> string

(** Total scheduler invocations dispatched. *)
val calls : t -> int

(** Schedulable validation failures routed through [pnt_err]. *)
val violations : t -> int

(** Violations by kind ("wrong_cpu", "stale_generation", "consumed",
    "bad_select_cpu"), most frequent first. *)
val violation_breakdown : t -> (string * int) list

(** Hints dropped because the user-to-kernel ring was full. *)
val hints_dropped : t -> int

(** Upgrades performed, most recent first. *)
val upgrades : t -> Upgrade.stats list

(** Fault-isolation counters. *)
type failover_stats = {
  panics : int;  (** module exceptions caught at the dispatch boundary *)
  failovers : int;  (** quarantine transitions (fallback instantiations) *)
  overruns : int;  (** dispatches that exceeded the per-call budget *)
  quarantined : (string * Kernsim.Time.ns) option;
      (** reason and simulated time of the active quarantine, if any *)
  blackout : Kernsim.Time.ns option;
      (** ns from the most recent quarantine to the first successful
          fallback dispatch — how long the policy went unscheduled *)
}

val failover_stats : t -> failover_stats

(** The scheduler version superseded by the most recent upgrade, if any
    (the watchdog's rollback target). *)
val previous : t -> (module Sched_trait.S) option

(** Live-upgrade back to the previous version: the recovery action a
    watchdog takes when the current module is wedged or panicking.  Like
    {!upgrade} but pops the version history on success. *)
val rollback : t -> (Upgrade.stats, exn) result

(** Send a call directly to the registered scheduler (tests and the replay
    validator use this; the kernel path goes through the factory). *)
val dispatch_raw : t -> tid:int -> Message.call -> Message.reply
