type ns = Kernsim.Time.ns

type t = {
  nr_cpus : int;
  policy : int;
  now : unit -> ns;
  set_timer : cpu:int -> ns -> unit;
  cancel_timer : cpu:int -> unit;
  resched : cpu:int -> unit;
  send_user : pid:int -> Kernsim.Task.hint -> unit;
  charge : cpu:int -> ns -> unit;
  log : string -> unit;
  registry : Metrics.Registry.t option;
  trace : cpu:int -> Trace.Event.kind -> unit;
}

let inert ?(nr_cpus = 8) ?(policy = 0) () =
  {
    nr_cpus;
    policy;
    now = (fun () -> 0);
    set_timer = (fun ~cpu:_ _ -> ());
    cancel_timer = (fun ~cpu:_ -> ());
    resched = (fun ~cpu:_ -> ());
    send_user = (fun ~pid:_ _ -> ());
    charge = (fun ~cpu:_ _ -> ());
    log = (fun _ -> ());
    registry = None;
    trace = (fun ~cpu:_ _ -> ());
  }
