(** Varint binary primitives for the record log's wire format (§3.4).

    Integers are LEB128 varints ([put_int] zigzags first, so small negative
    values stay small); strings are length-prefixed raw bytes, which makes
    the format escaping-free: payloads containing newlines, spaces or
    [" => "] cannot corrupt the framing, unlike the line-oriented debug
    form.  Readers raise {!Truncated} when the input ends mid-value, which
    the log decoder uses to salvage every complete frame of a cut-off
    recording. *)

exception Truncated

val put_uint : Buffer.t -> int -> unit

(** Zigzag-mapped varint (safe for negative values). *)
val put_int : Buffer.t -> int -> unit

val put_byte : Buffer.t -> int -> unit

val put_bool : Buffer.t -> bool -> unit

(** Length-prefixed raw bytes; no escaping. *)
val put_str : Buffer.t -> string -> unit

type cursor = { src : string; mutable pos : int }

val cursor : ?pos:int -> string -> cursor

val at_end : cursor -> bool

val get_byte : cursor -> int

val get_uint : cursor -> int

val get_int : cursor -> int

val get_bool : cursor -> bool

val get_str : cursor -> string
