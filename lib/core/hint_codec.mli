(** Serialisation registry for scheduler-defined hints.

    Hints are an extensible variant ({!Kernsim.Task.hint}) so each
    scheduler can define its own message shapes (§3.3).  Record/replay
    needs to write them to the log, so a scheduler that uses hints
    registers a codec for its constructors.  Unregistered hints are
    recorded as {!Opaque} strings. *)

(** Fallback constructor used when decoding a hint with no codec. *)
type Kernsim.Task.hint += Opaque of string

(** [register ~name ~encode ~decode] adds a codec.  [encode] returns [None]
    for constructors it does not own; [decode] receives the payload that
    [encode] produced. *)
val register :
  name:string ->
  encode:(Kernsim.Task.hint -> string option) ->
  decode:(string -> Kernsim.Task.hint) ->
  unit

(** Always succeeds; unknown hints become ["opaque"] payloads.  The result
    contains no newlines or spaces (payloads are percent-escaped). *)
val encode : Kernsim.Task.hint -> string

(** Inverse of {!encode}; unknown codec names decode to {!Opaque}. *)
val decode : string -> Kernsim.Task.hint

(** [(codec name, raw payload)] — the unescaped pair the binary record log
    stores length-prefixed, so arbitrary payload bytes round-trip without
    the text form's percent-escaping. *)
val encode_parts : Kernsim.Task.hint -> string * string

val decode_parts : name:string -> payload:string -> Kernsim.Task.hint
