type ns = Kernsim.Time.ns

type call =
  | Get_policy
  | Pick_next_task of { cpu : int; curr : Schedulable.t option; curr_runtime : ns }
  | Pnt_err of { cpu : int; pid : int; err : string; sched : Schedulable.t option }
  | Task_dead of { pid : int }
  | Task_blocked of { pid : int; runtime : ns; cpu : int }
  | Task_wakeup of { pid : int; runtime : ns; waker_cpu : int; sched : Schedulable.t }
  | Task_new of { pid : int; runtime : ns; prio : int; sched : Schedulable.t }
  | Task_preempt of { pid : int; runtime : ns; cpu : int; sched : Schedulable.t }
  | Task_yield of { pid : int; runtime : ns; cpu : int; sched : Schedulable.t }
  | Task_departed of { pid : int; cpu : int }
  | Task_affinity_changed of { pid : int; allowed : int list }
  | Task_prio_changed of { pid : int; prio : int }
  | Task_tick of { cpu : int; queued : bool }
  | Select_task_rq of { pid : int; waker_cpu : int; allowed : int list }
  | Migrate_task_rq of { pid : int; from_cpu : int; sched : Schedulable.t }
  | Balance of { cpu : int }
  | Balance_err of { cpu : int; pid : int; sched : Schedulable.t option }
  | Parse_hint of { pid : int; hint : Kernsim.Task.hint }

type reply =
  | R_unit
  | R_int of int
  | R_pid_opt of int option
  | R_sched_opt of Schedulable.t option

(* sched tokens travel as pid.cpu.gen triples; "-" is None *)
let enc_sched s =
  Printf.sprintf "%d.%d.%d" (Schedulable.pid s) (Schedulable.cpu s) (Schedulable.generation s)

let enc_sched_opt = function None -> "-" | Some s -> enc_sched s

let dec_sched s =
  match String.split_on_char '.' s with
  | [ pid; cpu; gen ] ->
    Schedulable.Private.create ~pid:(int_of_string pid) ~cpu:(int_of_string cpu)
      ~gen:(int_of_string gen)
  | _ -> failwith ("Message: bad sched " ^ s)

let dec_sched_opt s = if s = "-" then None else Some (dec_sched s)

let enc_ints l = match l with [] -> "-" | l -> String.concat "," (List.map string_of_int l)

let dec_ints s =
  if s = "-" then [] else List.map int_of_string (String.split_on_char ',' s)

let call_name = function
  | Get_policy -> "get_policy"
  | Pick_next_task _ -> "pick_next_task"
  | Pnt_err _ -> "pnt_err"
  | Task_dead _ -> "task_dead"
  | Task_blocked _ -> "task_blocked"
  | Task_wakeup _ -> "task_wakeup"
  | Task_new _ -> "task_new"
  | Task_preempt _ -> "task_preempt"
  | Task_yield _ -> "task_yield"
  | Task_departed _ -> "task_departed"
  | Task_affinity_changed _ -> "task_affinity_changed"
  | Task_prio_changed _ -> "task_prio_changed"
  | Task_tick _ -> "task_tick"
  | Select_task_rq _ -> "select_task_rq"
  | Migrate_task_rq _ -> "migrate_task_rq"
  | Balance _ -> "balance"
  | Balance_err _ -> "balance_err"
  | Parse_hint _ -> "parse_hint"

(* [err] strings are usually identifier-ish, but nothing enforces it:
   percent-escape so spaces, newlines or a " => " in the payload can never
   break the line-oriented log (and the round trip is exact, where the old
   [_]-substitution silently corrupted the string). *)
let enc_str = Str_split.escape

let encode_call c =
  match c with
  | Get_policy -> "get_policy"
  | Pick_next_task { cpu; curr; curr_runtime } ->
    Printf.sprintf "pick_next_task %d %s %d" cpu (enc_sched_opt curr) curr_runtime
  | Pnt_err { cpu; pid; err; sched } ->
    Printf.sprintf "pnt_err %d %d %s %s" cpu pid (enc_str err) (enc_sched_opt sched)
  | Task_dead { pid } -> Printf.sprintf "task_dead %d" pid
  | Task_blocked { pid; runtime; cpu } -> Printf.sprintf "task_blocked %d %d %d" pid runtime cpu
  | Task_wakeup { pid; runtime; waker_cpu; sched } ->
    Printf.sprintf "task_wakeup %d %d %d %s" pid runtime waker_cpu (enc_sched sched)
  | Task_new { pid; runtime; prio; sched } ->
    Printf.sprintf "task_new %d %d %d %s" pid runtime prio (enc_sched sched)
  | Task_preempt { pid; runtime; cpu; sched } ->
    Printf.sprintf "task_preempt %d %d %d %s" pid runtime cpu (enc_sched sched)
  | Task_yield { pid; runtime; cpu; sched } ->
    Printf.sprintf "task_yield %d %d %d %s" pid runtime cpu (enc_sched sched)
  | Task_departed { pid; cpu } -> Printf.sprintf "task_departed %d %d" pid cpu
  | Task_affinity_changed { pid; allowed } ->
    Printf.sprintf "task_affinity_changed %d %s" pid (enc_ints allowed)
  | Task_prio_changed { pid; prio } -> Printf.sprintf "task_prio_changed %d %d" pid prio
  | Task_tick { cpu; queued } -> Printf.sprintf "task_tick %d %b" cpu queued
  | Select_task_rq { pid; waker_cpu; allowed } ->
    Printf.sprintf "select_task_rq %d %d %s" pid waker_cpu (enc_ints allowed)
  | Migrate_task_rq { pid; from_cpu; sched } ->
    Printf.sprintf "migrate_task_rq %d %d %s" pid from_cpu (enc_sched sched)
  | Balance { cpu } -> Printf.sprintf "balance %d" cpu
  | Balance_err { cpu; pid; sched } ->
    Printf.sprintf "balance_err %d %d %s" cpu pid (enc_sched_opt sched)
  | Parse_hint { pid; hint } -> Printf.sprintf "parse_hint %d %s" pid (Hint_codec.encode hint)

let decode_call line =
  let int = int_of_string in
  match String.split_on_char ' ' (String.trim line) with
  | [ "get_policy" ] -> Get_policy
  | [ "pick_next_task"; cpu; curr; rt ] ->
    Pick_next_task { cpu = int cpu; curr = dec_sched_opt curr; curr_runtime = int rt }
  | [ "pnt_err"; cpu; pid; err; sched ] ->
    Pnt_err { cpu = int cpu; pid = int pid; err = Str_split.unescape err; sched = dec_sched_opt sched }
  | [ "task_dead"; pid ] -> Task_dead { pid = int pid }
  | [ "task_blocked"; pid; rt; cpu ] ->
    Task_blocked { pid = int pid; runtime = int rt; cpu = int cpu }
  | [ "task_wakeup"; pid; rt; waker; sched ] ->
    Task_wakeup { pid = int pid; runtime = int rt; waker_cpu = int waker; sched = dec_sched sched }
  | [ "task_new"; pid; rt; prio; sched ] ->
    Task_new { pid = int pid; runtime = int rt; prio = int prio; sched = dec_sched sched }
  | [ "task_preempt"; pid; rt; cpu; sched ] ->
    Task_preempt { pid = int pid; runtime = int rt; cpu = int cpu; sched = dec_sched sched }
  | [ "task_yield"; pid; rt; cpu; sched ] ->
    Task_yield { pid = int pid; runtime = int rt; cpu = int cpu; sched = dec_sched sched }
  | [ "task_departed"; pid; cpu ] -> Task_departed { pid = int pid; cpu = int cpu }
  | [ "task_affinity_changed"; pid; allowed ] ->
    Task_affinity_changed { pid = int pid; allowed = dec_ints allowed }
  | [ "task_prio_changed"; pid; prio ] -> Task_prio_changed { pid = int pid; prio = int prio }
  | [ "task_tick"; cpu; queued ] -> Task_tick { cpu = int cpu; queued = bool_of_string queued }
  | [ "select_task_rq"; pid; waker; allowed ] ->
    Select_task_rq { pid = int pid; waker_cpu = int waker; allowed = dec_ints allowed }
  | [ "migrate_task_rq"; pid; from_cpu; sched ] ->
    Migrate_task_rq { pid = int pid; from_cpu = int from_cpu; sched = dec_sched sched }
  | [ "balance"; cpu ] -> Balance { cpu = int cpu }
  | [ "balance_err"; cpu; pid; sched ] ->
    Balance_err { cpu = int cpu; pid = int pid; sched = dec_sched_opt sched }
  | [ "parse_hint"; pid; hint ] -> Parse_hint { pid = int pid; hint = Hint_codec.decode hint }
  | _ -> failwith ("Message: cannot decode call: " ^ line)

let encode_reply = function
  | R_unit -> "unit"
  | R_int i -> Printf.sprintf "int %d" i
  | R_pid_opt None -> "pid -"
  | R_pid_opt (Some p) -> Printf.sprintf "pid %d" p
  | R_sched_opt s -> Printf.sprintf "sched %s" (enc_sched_opt s)

let decode_reply s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "unit" ] -> R_unit
  | [ "int"; i ] -> R_int (int_of_string i)
  | [ "pid"; "-" ] -> R_pid_opt None
  | [ "pid"; p ] -> R_pid_opt (Some (int_of_string p))
  | [ "sched"; sd ] -> R_sched_opt (dec_sched_opt sd)
  | _ -> failwith ("Message: cannot decode reply: " ^ s)

(* --- binary wire form ----------------------------------------------------

   Length-prefixed (no escaping, no delimiters), so payloads containing
   newlines or " => " can never corrupt the log.  Opcodes are the
   constructor declaration order; the format version lives in the record
   log magic, not here. *)

let put_sched buf s =
  Wire.put_uint buf (Schedulable.pid s);
  Wire.put_uint buf (Schedulable.cpu s);
  Wire.put_uint buf (Schedulable.generation s)

let put_sched_opt buf = function
  | None -> Wire.put_byte buf 0
  | Some s ->
    Wire.put_byte buf 1;
    put_sched buf s

let get_sched cur =
  let pid = Wire.get_uint cur in
  let cpu = Wire.get_uint cur in
  let gen = Wire.get_uint cur in
  Schedulable.Private.create ~pid ~cpu ~gen

let get_sched_opt cur =
  match Wire.get_byte cur with 0 -> None | _ -> Some (get_sched cur)

let put_ints buf l =
  Wire.put_uint buf (List.length l);
  List.iter (Wire.put_uint buf) l

let get_ints cur =
  let n = Wire.get_uint cur in
  List.init n (fun _ -> Wire.get_uint cur)

let put_call buf c =
  match c with
  | Get_policy -> Wire.put_byte buf 0
  | Pick_next_task { cpu; curr; curr_runtime } ->
    Wire.put_byte buf 1;
    Wire.put_uint buf cpu;
    put_sched_opt buf curr;
    Wire.put_uint buf curr_runtime
  | Pnt_err { cpu; pid; err; sched } ->
    Wire.put_byte buf 2;
    Wire.put_uint buf cpu;
    Wire.put_uint buf pid;
    Wire.put_str buf err;
    put_sched_opt buf sched
  | Task_dead { pid } ->
    Wire.put_byte buf 3;
    Wire.put_uint buf pid
  | Task_blocked { pid; runtime; cpu } ->
    Wire.put_byte buf 4;
    Wire.put_uint buf pid;
    Wire.put_uint buf runtime;
    Wire.put_uint buf cpu
  | Task_wakeup { pid; runtime; waker_cpu; sched } ->
    Wire.put_byte buf 5;
    Wire.put_uint buf pid;
    Wire.put_uint buf runtime;
    Wire.put_uint buf waker_cpu;
    put_sched buf sched
  | Task_new { pid; runtime; prio; sched } ->
    Wire.put_byte buf 6;
    Wire.put_uint buf pid;
    Wire.put_uint buf runtime;
    Wire.put_int buf prio;
    put_sched buf sched
  | Task_preempt { pid; runtime; cpu; sched } ->
    Wire.put_byte buf 7;
    Wire.put_uint buf pid;
    Wire.put_uint buf runtime;
    Wire.put_uint buf cpu;
    put_sched buf sched
  | Task_yield { pid; runtime; cpu; sched } ->
    Wire.put_byte buf 8;
    Wire.put_uint buf pid;
    Wire.put_uint buf runtime;
    Wire.put_uint buf cpu;
    put_sched buf sched
  | Task_departed { pid; cpu } ->
    Wire.put_byte buf 9;
    Wire.put_uint buf pid;
    Wire.put_uint buf cpu
  | Task_affinity_changed { pid; allowed } ->
    Wire.put_byte buf 10;
    Wire.put_uint buf pid;
    put_ints buf allowed
  | Task_prio_changed { pid; prio } ->
    Wire.put_byte buf 11;
    Wire.put_uint buf pid;
    Wire.put_int buf prio
  | Task_tick { cpu; queued } ->
    Wire.put_byte buf 12;
    Wire.put_uint buf cpu;
    Wire.put_bool buf queued
  | Select_task_rq { pid; waker_cpu; allowed } ->
    Wire.put_byte buf 13;
    Wire.put_uint buf pid;
    Wire.put_uint buf waker_cpu;
    put_ints buf allowed
  | Migrate_task_rq { pid; from_cpu; sched } ->
    Wire.put_byte buf 14;
    Wire.put_uint buf pid;
    Wire.put_uint buf from_cpu;
    put_sched buf sched
  | Balance { cpu } ->
    Wire.put_byte buf 15;
    Wire.put_uint buf cpu
  | Balance_err { cpu; pid; sched } ->
    Wire.put_byte buf 16;
    Wire.put_uint buf cpu;
    Wire.put_uint buf pid;
    put_sched_opt buf sched
  | Parse_hint { pid; hint } ->
    Wire.put_byte buf 17;
    Wire.put_uint buf pid;
    let name, payload = Hint_codec.encode_parts hint in
    Wire.put_str buf name;
    Wire.put_str buf payload

let get_call cur =
  match Wire.get_byte cur with
  | 0 -> Get_policy
  | 1 ->
    let cpu = Wire.get_uint cur in
    let curr = get_sched_opt cur in
    let curr_runtime = Wire.get_uint cur in
    Pick_next_task { cpu; curr; curr_runtime }
  | 2 ->
    let cpu = Wire.get_uint cur in
    let pid = Wire.get_uint cur in
    let err = Wire.get_str cur in
    let sched = get_sched_opt cur in
    Pnt_err { cpu; pid; err; sched }
  | 3 -> Task_dead { pid = Wire.get_uint cur }
  | 4 ->
    let pid = Wire.get_uint cur in
    let runtime = Wire.get_uint cur in
    let cpu = Wire.get_uint cur in
    Task_blocked { pid; runtime; cpu }
  | 5 ->
    let pid = Wire.get_uint cur in
    let runtime = Wire.get_uint cur in
    let waker_cpu = Wire.get_uint cur in
    let sched = get_sched cur in
    Task_wakeup { pid; runtime; waker_cpu; sched }
  | 6 ->
    let pid = Wire.get_uint cur in
    let runtime = Wire.get_uint cur in
    let prio = Wire.get_int cur in
    let sched = get_sched cur in
    Task_new { pid; runtime; prio; sched }
  | 7 ->
    let pid = Wire.get_uint cur in
    let runtime = Wire.get_uint cur in
    let cpu = Wire.get_uint cur in
    let sched = get_sched cur in
    Task_preempt { pid; runtime; cpu; sched }
  | 8 ->
    let pid = Wire.get_uint cur in
    let runtime = Wire.get_uint cur in
    let cpu = Wire.get_uint cur in
    let sched = get_sched cur in
    Task_yield { pid; runtime; cpu; sched }
  | 9 ->
    let pid = Wire.get_uint cur in
    let cpu = Wire.get_uint cur in
    Task_departed { pid; cpu }
  | 10 ->
    let pid = Wire.get_uint cur in
    let allowed = get_ints cur in
    Task_affinity_changed { pid; allowed }
  | 11 ->
    let pid = Wire.get_uint cur in
    let prio = Wire.get_int cur in
    Task_prio_changed { pid; prio }
  | 12 ->
    let cpu = Wire.get_uint cur in
    let queued = Wire.get_bool cur in
    Task_tick { cpu; queued }
  | 13 ->
    let pid = Wire.get_uint cur in
    let waker_cpu = Wire.get_uint cur in
    let allowed = get_ints cur in
    Select_task_rq { pid; waker_cpu; allowed }
  | 14 ->
    let pid = Wire.get_uint cur in
    let from_cpu = Wire.get_uint cur in
    let sched = get_sched cur in
    Migrate_task_rq { pid; from_cpu; sched }
  | 15 -> Balance { cpu = Wire.get_uint cur }
  | 16 ->
    let cpu = Wire.get_uint cur in
    let pid = Wire.get_uint cur in
    let sched = get_sched_opt cur in
    Balance_err { cpu; pid; sched }
  | 17 ->
    let pid = Wire.get_uint cur in
    let name = Wire.get_str cur in
    let payload = Wire.get_str cur in
    Parse_hint { pid; hint = Hint_codec.decode_parts ~name ~payload }
  | op -> failwith (Printf.sprintf "Message: unknown call opcode %d" op)

let put_reply buf = function
  | R_unit -> Wire.put_byte buf 0
  | R_int i ->
    Wire.put_byte buf 1;
    Wire.put_int buf i
  | R_pid_opt None ->
    Wire.put_byte buf 2;
    Wire.put_byte buf 0
  | R_pid_opt (Some p) ->
    Wire.put_byte buf 2;
    Wire.put_byte buf 1;
    Wire.put_uint buf p
  | R_sched_opt s ->
    Wire.put_byte buf 3;
    put_sched_opt buf s

let get_reply cur =
  match Wire.get_byte cur with
  | 0 -> R_unit
  | 1 -> R_int (Wire.get_int cur)
  | 2 -> (
    match Wire.get_byte cur with
    | 0 -> R_pid_opt None
    | _ -> R_pid_opt (Some (Wire.get_uint cur)))
  | 3 -> R_sched_opt (get_sched_opt cur)
  | tag -> failwith (Printf.sprintf "Message: unknown reply tag %d" tag)

let reply_matches a b =
  match (a, b) with
  | R_unit, R_unit -> true
  | R_int x, R_int y -> x = y
  | R_pid_opt x, R_pid_opt y -> x = y
  | R_sched_opt None, R_sched_opt None -> true
  | R_sched_opt (Some x), R_sched_opt (Some y) ->
    Schedulable.pid x = Schedulable.pid y && Schedulable.cpu x = Schedulable.cpu y
  | _ -> false

let pp_call fmt c = Format.pp_print_string fmt (encode_call c)

let pp_reply fmt r = Format.pp_print_string fmt (encode_reply r)
