type Kernsim.Task.hint += Opaque of string

type codec = {
  name : string;
  enc : Kernsim.Task.hint -> string option;
  dec : string -> Kernsim.Task.hint;
}

let codecs : codec list ref = ref []

let register ~name ~encode ~decode =
  codecs := { name; enc = encode; dec = decode } :: !codecs

(* The (codec name, raw payload) pair: what the binary record log stores
   length-prefixed and escaping-free. *)
let encode_parts hint =
  let rec try_codecs = function
    | [] -> (
      match hint with
      | Opaque s -> ("opaque", s)
      | _ -> ("opaque", "?"))
    | c :: rest -> (
      match c.enc hint with
      | Some payload -> (c.name, payload)
      | None -> try_codecs rest)
  in
  try_codecs !codecs

let decode_parts ~name ~payload =
  let rec find = function
    | [] -> Opaque payload
    | c :: rest -> if c.name = name then c.dec payload else find rest
  in
  find !codecs

(* Text form: escape so encoded hints survive the space/newline-delimited
   debug log. *)
let encode hint =
  let name, payload = encode_parts hint in
  name ^ ":" ^ Str_split.escape payload

let decode s =
  match String.index_opt s ':' with
  | None -> Opaque s
  | Some i ->
    let name = String.sub s 0 i in
    let payload = Str_split.unescape (String.sub s (i + 1) (String.length s - i - 1)) in
    decode_parts ~name ~payload
