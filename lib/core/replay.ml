type entry =
  | Call of { seq : int; tid : int; call : Message.call; reply : Message.reply }
  | Lock_event of { seq : int; tid : int; op : Lock.op; lock_id : int }

type report = {
  total_calls : int;
  threads : int;
  mismatches : (int * string) list;
  wall_seconds : float;
  order_abandoned : bool;
}

type info = {
  binary : bool;
  recorded_events : int option;
  dropped : int option;
  truncated : bool;
}

exception Incomplete_log of { dropped : int }

type divergence = { failing_prefix : int; seq : int; detail : string; context : entry list }

let entry_seq = function Call { seq; _ } -> seq | Lock_event { seq; _ } -> seq

let entry_line = function
  | Call { tid; call; reply; _ } ->
    Printf.sprintf "C %d %s => %s" tid (Message.encode_call call) (Message.encode_reply reply)
  | Lock_event { tid; op; lock_id; _ } ->
    Printf.sprintf "L %d %s %d" tid (Lock.op_name op) lock_id

(* ---- text form ---------------------------------------------------------- *)

let parse_line seq line =
  match String.index_opt line ' ' with
  | Some 1 when line.[0] = 'C' -> (
    let body = String.sub line 2 (String.length line - 2) in
    match String.index_opt body ' ' with
    | None -> failwith ("Replay: bad call line: " ^ line)
    | Some i -> (
      let tid = int_of_string (String.sub body 0 i) in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      match Str_split.split_arrow rest with
      | Some (c, r) ->
        Call { seq; tid; call = Message.decode_call c; reply = Message.decode_reply r }
      | None -> failwith ("Replay: bad call line: " ^ line)))
  | Some 1 when line.[0] = 'L' -> (
    match String.split_on_char ' ' line with
    | [ "L"; tid; op; lock_id ] ->
      let op =
        match Lock.op_of_name op with
        | Some op -> op
        | None -> failwith ("Replay: bad lock op: " ^ op)
      in
      Lock_event { seq; tid = int_of_string tid; op; lock_id = int_of_string lock_id }
    | _ -> failwith ("Replay: bad lock line: " ^ line))
  | _ -> failwith ("Replay: unrecognised line: " ^ line)

let parse_text_trailer line =
  try Scanf.sscanf line "# enoki-record: events=%d dropped=%d" (fun e d -> Some (e, d))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* [entry] is called per log entry, in order, with seq = file line number
   (comment lines are skipped but still advance seq, so seq always names
   the line to open in an editor). *)
let fold_text log ~entry =
  let lines = String.split_on_char '\n' log in
  let recorded = ref None and dropped = ref None in
  let rec go seq = function
    | [] -> ()
    | "" :: rest -> go (seq + 1) rest
    | line :: rest ->
      if line.[0] = '#' then begin
        (match parse_text_trailer line with
        | Some (e, d) ->
          recorded := Some e;
          dropped := Some d
        | None -> ())
      end
      else entry (parse_line seq line);
      go (seq + 1) rest
  in
  go 1 lines;
  { binary = false; recorded_events = !recorded; dropped = !dropped; truncated = false }

(* ---- binary form -------------------------------------------------------- *)

let is_binary log =
  String.length log >= String.length Record.magic
  && String.sub log 0 (String.length Record.magic) = Record.magic

(* Decodes every complete frame, then stops: a recording cut off mid-frame
   (crash, full disk) salvages everything before the cut and is flagged
   [truncated] instead of raising.  [decode] controls whether non-trailer
   payloads are parsed at all — [info] skips them, so probing a huge log
   costs no entry allocations. *)
let fold_binary log ~decode ~entry =
  let cur = Wire.cursor ~pos:(String.length Record.magic) log in
  let seq = ref 0 in
  let recorded = ref None and dropped = ref None in
  let truncated = ref false in
  (try
     while not (Wire.at_end cur) do
       let len = Wire.get_uint cur in
       if cur.pos + len > String.length log then raise Wire.Truncated;
       let frame_end = cur.pos + len in
       (match Wire.get_byte cur with
       | 0x01 ->
         incr seq;
         if decode then begin
           let tid = Wire.get_uint cur in
           let call = Message.get_call cur in
           let reply = Message.get_reply cur in
           entry (Call { seq = !seq; tid; call; reply })
         end
       | 0x02 ->
         incr seq;
         if decode then begin
           let tid = Wire.get_uint cur in
           let op =
             match Lock.op_of_byte (Wire.get_byte cur) with
             | Some op -> op
             | None -> failwith "Replay: bad lock op byte"
           in
           let lock_id = Wire.get_uint cur in
           entry (Lock_event { seq = !seq; tid; op; lock_id })
         end
       | 0x7f ->
         let e = Wire.get_uint cur in
         let d = Wire.get_uint cur in
         recorded := Some e;
         dropped := Some d
       | k -> failwith (Printf.sprintf "Replay: unknown record kind 0x%02x" k));
       cur.pos <- frame_end
     done
   with Wire.Truncated -> truncated := true);
  { binary = true; recorded_events = !recorded; dropped = !dropped; truncated = !truncated }

(* ---- parsing entry points ----------------------------------------------- *)

let fold log ~entry =
  if is_binary log then fold_binary log ~decode:true ~entry else fold_text log ~entry

let parse_full log =
  let acc = ref [] in
  let info = fold log ~entry:(fun e -> acc := e :: !acc) in
  (List.rev !acc, info)

let parse log = fst (parse_full log)

let info log =
  if is_binary log then fold_binary log ~decode:false ~entry:(fun _ -> ())
  else fold_text log ~entry:(fun _ -> ())

(* ---- replay ------------------------------------------------------------- *)

let run_entries (module S : Sched_trait.S) entries =
  (* per-lock acquisition order, and per-thread call streams *)
  let lock_order : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let calls_by_tid : (int, (int * Message.call * Message.reply) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun entry ->
      match entry with
      | Lock_event { tid; op = Lock.Acquire; lock_id; _ } ->
        let r =
          match Hashtbl.find_opt lock_order lock_id with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add lock_order lock_id r;
            r
        in
        r := tid :: !r
      | Lock_event _ -> ()
      | Call { seq; tid; call; reply } ->
        let r =
          match Hashtbl.find_opt calls_by_tid tid with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add calls_by_tid tid r;
            r
        in
        r := (seq, call, reply) :: !r)
    entries;
  let order lock_id =
    match Hashtbl.find_opt lock_order lock_id with Some r -> List.rev !r | None -> []
  in
  (* map OS threads to recorded kernel-thread ids *)
  let tid_table : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let tid_mutex = Mutex.create () in
  let my_tid () =
    Mutex.lock tid_mutex;
    let tid = try Hashtbl.find tid_table (Thread.id (Thread.self ())) with Not_found -> -1 in
    Mutex.unlock tid_mutex;
    tid
  in
  Lock.reset_ids ();
  Lock.set_replay_mode ~order ~tid:my_tid;
  let started = Unix.gettimeofday () in
  let result =
    Fun.protect ~finally:Lock.set_passthrough_mode (fun () ->
        (* identical scheduler code, now constructed at userspace *)
        let st = S.create (Ctx.inert ()) in
        let packed = Sched_trait.Packed ((module S), st) in
        let mismatches = ref [] in
        let mm_mutex = Mutex.create () in
        let total = ref 0 in
        (* A diverged scheduler may acquire locks out of step with the
           recording, which would wedge the strict admission order forever.
           Two triggers release the order: the first reply mismatch
           (divergence proven), and a stall watchdog for wedges that bite
           before any reply differs.  Honest replays hit neither. *)
        let abandoned = ref false in
        let progress = Atomic.make 0 in
        let finished = Atomic.make false in
        let abandon () =
          Mutex.lock mm_mutex;
          if not !abandoned then begin
            abandoned := true;
            Lock.abandon_replay_order ()
          end;
          Mutex.unlock mm_mutex
        in
        let run_thread (tid, calls) () =
          Mutex.lock tid_mutex;
          Hashtbl.replace tid_table (Thread.id (Thread.self ())) tid;
          Mutex.unlock tid_mutex;
          List.iter
            (fun (seq, call, expected) ->
              let got = Lib_enoki.process packed call in
              Atomic.incr progress;
              if not (Message.reply_matches expected got) then begin
                Mutex.lock mm_mutex;
                mismatches :=
                  ( seq,
                    Printf.sprintf "%s: recorded %s, replayed %s" (Message.call_name call)
                      (Message.encode_reply expected) (Message.encode_reply got) )
                  :: !mismatches;
                Mutex.unlock mm_mutex;
                abandon ()
              end)
            calls
        in
        let streams =
          Hashtbl.fold (fun tid r acc -> (tid, List.rev !r) :: acc) calls_by_tid []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        List.iter (fun (_, calls) -> total := !total + List.length calls) streams;
        let threads = List.map (fun s -> Thread.create (run_thread s) ()) streams in
        let watchdog =
          Thread.create
            (fun () ->
              let last = ref (-1) in
              let stalled = ref 0 in
              while not (Atomic.get finished) do
                Thread.delay 0.05;
                let p = Atomic.get progress in
                if p = !last then begin
                  incr stalled;
                  if !stalled >= 10 then begin
                    (* half a second with zero calls completing: wedged *)
                    abandon ();
                    stalled := 0
                  end
                end
                else begin
                  last := p;
                  stalled := 0
                end
              done)
            ()
        in
        List.iter Thread.join threads;
        Atomic.set finished true;
        Thread.join watchdog;
        (!total, List.length streams, List.sort compare !mismatches, !abandoned))
  in
  let total_calls, threads, mismatches, order_abandoned = result in
  { total_calls; threads; mismatches; wall_seconds = Unix.gettimeofday () -. started;
    order_abandoned }

let run ?(allow_drops = false) (module S : Sched_trait.S) ~log =
  let entries, info = parse_full log in
  (match info.dropped with
  | Some d when d > 0 && not allow_drops -> raise (Incomplete_log { dropped = d })
  | _ -> ());
  run_entries (module S) entries

(* ---- divergence bisection ----------------------------------------------- *)

let bisect ?(window = 3) (module S : Sched_trait.S) ~log =
  let entries, _ = parse_full log in
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let prefix k = Array.to_list (Array.sub arr 0 k) in
  let fails k = (run_entries (module S) (prefix k)).mismatches <> [] in
  if n = 0 || not (fails n) then None
  else begin
    (* binary search for the smallest failing prefix: replay is
       deterministic (recorded inputs, recorded lock order), so
       fails is monotone in the prefix length *)
    let lo = ref 1 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fails mid then hi := mid else lo := mid + 1
    done;
    let k = !lo in
    let seq, detail =
      match (run_entries (module S) (prefix k)).mismatches with
      | (seq, detail) :: _ -> (seq, detail)
      | [] -> (entry_seq arr.(k - 1), "first divergent entry (mismatch details unavailable)")
    in
    let lo_i = max 0 (k - 1 - window) and hi_i = min (n - 1) (k - 1 + window) in
    let context = Array.to_list (Array.sub arr lo_i (hi_i - lo_i + 1)) in
    Some { failing_prefix = k; seq; detail; context }
  end

(* ---- reporting ---------------------------------------------------------- *)

let pp_report fmt r =
  Format.fprintf fmt "replayed %d calls on %d threads in %.3fs: %s" r.total_calls r.threads
    r.wall_seconds
    (match r.mismatches with
    | [] -> "all replies matched"
    | ms -> Printf.sprintf "%d MISMATCHES" (List.length ms));
  (match r.mismatches with
  | [] -> ()
  | ms ->
    let rec show n = function
      | [] -> ()
      | _ when n = 0 ->
        Format.fprintf fmt "@\n  ... and %d more" (List.length ms - 5)
      | (seq, detail) :: rest ->
        Format.fprintf fmt "@\n  line %d: %s" seq detail;
        show (n - 1) rest
    in
    show 5 ms);
  if r.order_abandoned then
    Format.fprintf fmt "@\n  (recorded lock order released after divergence to keep replay live)"
