(** Messages across the Enoki-C / libEnoki boundary.

    Enoki-C translates every call from the core scheduler code into a
    per-function message (§3): plain data plus Schedulable capabilities —
    never kernel pointers.  The processing function in libEnoki
    ({!Lib_enoki}) parses each message and invokes the scheduler.  The
    record subsystem serialises the same messages, one per line, so replay
    can feed the identical call stream to the identical scheduler code at
    userspace. *)

type ns = Kernsim.Time.ns

type call =
  | Get_policy
  | Pick_next_task of { cpu : int; curr : Schedulable.t option; curr_runtime : ns }
  | Pnt_err of { cpu : int; pid : int; err : string; sched : Schedulable.t option }
  | Task_dead of { pid : int }
  | Task_blocked of { pid : int; runtime : ns; cpu : int }
  | Task_wakeup of { pid : int; runtime : ns; waker_cpu : int; sched : Schedulable.t }
  | Task_new of { pid : int; runtime : ns; prio : int; sched : Schedulable.t }
  | Task_preempt of { pid : int; runtime : ns; cpu : int; sched : Schedulable.t }
  | Task_yield of { pid : int; runtime : ns; cpu : int; sched : Schedulable.t }
  | Task_departed of { pid : int; cpu : int }
  | Task_affinity_changed of { pid : int; allowed : int list }
  | Task_prio_changed of { pid : int; prio : int }
  | Task_tick of { cpu : int; queued : bool }
  | Select_task_rq of { pid : int; waker_cpu : int; allowed : int list }
  | Migrate_task_rq of { pid : int; from_cpu : int; sched : Schedulable.t }
  | Balance of { cpu : int }
  | Balance_err of { cpu : int; pid : int; sched : Schedulable.t option }
  | Parse_hint of { pid : int; hint : Kernsim.Task.hint }

type reply =
  | R_unit
  | R_int of int
  | R_pid_opt of int option
  | R_sched_opt of Schedulable.t option

(** Single-line, space-free-field wire form. *)
val encode_call : call -> string

(** Inverse of {!encode_call}; Schedulable fields are re-minted from their
    recorded pid/cpu/generation.  Raises [Failure] on malformed input. *)
val decode_call : string -> call

val encode_reply : reply -> string

val decode_reply : string -> reply

(** Binary wire form: length-prefixed varint fields, no escaping, so
    free-form payloads (errors, hints) round-trip byte-exactly no matter
    what they contain.  Opcodes follow constructor declaration order.
    Readers raise {!Wire.Truncated} on short input and [Failure] on
    unknown opcodes. *)
val put_call : Buffer.t -> call -> unit

val get_call : Wire.cursor -> call

val put_reply : Buffer.t -> reply -> unit

val get_reply : Wire.cursor -> reply

(** Replies are compared structurally during replay validation;
    Schedulables match on (pid, cpu). *)
val reply_matches : reply -> reply -> bool

val call_name : call -> string

val pp_call : Format.formatter -> call -> unit

val pp_reply : Format.formatter -> reply -> unit
