(** The record half of Enoki's record-and-replay (§3.4).

    Messages cannot be written to a file from scheduler context (the kernel
    may hold interrupts off), so libEnoki pushes events onto a ring buffer
    shared with a userspace record task, which drains them asynchronously.
    The tap path stores typed events — encoding happens at drain time, off
    the scheduler's critical path.  If the ring overruns, events are
    dropped and counted, and the count is written into the log trailer so
    replay can refuse (or be told to tolerate) an incomplete recording.

    Two wire formats:
    - {!Binary} (default): [magic], then one length-prefixed frame per
      event, then a trailer frame carrying (events, dropped).  Fields are
      varints and length-prefixed strings ({!Wire}), so free-form payloads
      round-trip byte-exactly — no escaping, no delimiter corruption.
    - {!Text}: the human-readable debug form, one event per line
      ([C <tid> <call> => <reply>] / [L <tid> <op> <lock_id>]), ending with
      a [# enoki-record: events=N dropped=M] trailer line.

    Sinks: {!create} accumulates drained bytes in memory; {!create_file}
    streams them to a file as they drain, keeping the recorder's live heap
    bounded for arbitrarily long runs. *)

type t

type format = Binary | Text

(** Header of the binary form; the final byte is the format version. *)
val magic : string

(** In-memory recorder (default ring capacity 65536 events). *)
val create : ?capacity:int -> ?format:format -> unit -> t

(** Streaming recorder: drained events are written to [path] incrementally.
    Call {!close} to flush the ring and write the trailer. *)
val create_file : path:string -> ?capacity:int -> ?format:format -> unit -> t

(** Push one invocation record from kernel context. *)
val tap_call : t -> tid:int -> Message.call -> Message.reply -> unit

(** Push one lock event from kernel context. *)
val tap_lock : t -> Lock.event -> unit

(** One step of the userspace record task: encode everything queued in the
    ring and move it to the sink.  No-op after {!close}. *)
val drain : t -> unit

(** Events pushed but lost to ring overrun. *)
val dropped : t -> int

(** Total events captured so far (drains the ring first, so events still
    queued are counted). *)
val length : t -> int

(** Drain remaining events and, for file-backed recorders, write the
    trailer and close the file.  Idempotent. *)
val close : t -> unit

(** The full log including header and trailer (drains first).  In-memory
    recorders only; raises [Invalid_argument] for file-backed ones — close
    those and use {!load_file}. *)
val contents : t -> string

(** Write {!contents} to [path] (in-memory recorders only). *)
val save : t -> path:string -> unit

val load_file : path:string -> string
