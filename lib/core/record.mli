(** The record half of Enoki's record-and-replay (§3.4).

    Messages cannot be written to a file from scheduler context (the kernel
    may hold interrupts off), so libEnoki pushes encoded lines onto a ring
    buffer shared with a userspace record task, which drains them
    asynchronously.  If the ring overruns, events are dropped and counted.

    The log is line-oriented:
    - [C <tid> <call> => <reply>] — one scheduler invocation;
    - [L <tid> <create|acquire|release> <lock_id>] — one lock event. *)

type t

(** [create ()] uses the default ring capacity (65536 lines). *)
val create : ?capacity:int -> unit -> t

(** Push one invocation record from kernel context. *)
val tap_call : t -> tid:int -> Message.call -> Message.reply -> unit

(** Push one lock event from kernel context. *)
val tap_lock : t -> Lock.event -> unit

(** One step of the userspace record task: move everything queued in the
    ring into the log. *)
val drain : t -> unit

(** Lines pushed but lost to ring overrun. *)
val dropped : t -> int

(** Total log lines captured so far (drains the ring first, so lines still
    queued are counted). *)
val length : t -> int

(** The full log (drains first). *)
val contents : t -> string

val save : t -> path:string -> unit

val load_file : path:string -> string
