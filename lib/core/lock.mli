(** Recordable locks for scheduler modules (§3.4).

    Enoki's record/replay hinges on one observation: because schedulers are
    safe Rust (here: OCaml), the only nondeterminism left is timing (which
    the kernel supplies in messages, so it is recorded) and the order of
    lock acquisitions.  LibEnoki therefore shims the kernel lock API to log
    create/acquire/release events; replay re-runs the same scheduler code on
    real OS threads, with each lock admitting threads in the recorded
    order.

    Scheduler modules must guard all shared state with these locks (as the
    paper's schedulers guard theirs with the kernel spinlock wrappers).

    Modes are domain-local: the simulator runs in [Passthrough] (or
    [Record]); the replay harness switches to [Replay].  Each domain has
    its own mode, trace tap, and lock-id sequence, so the bench harness
    can run independent machines in parallel domains. *)

type t

type op = Create | Acquire | Release

type event = { lock_id : int; op : op; tid : int }

(** [create ()] allocates a lock.  Ids are assigned in creation order,
    which is how replay pairs locks with their recorded history (the paper
    assumes locks are created in the same order during replay). *)
val create : ?name:string -> unit -> t

val id : t -> int

val name : t -> string

(** [with_lock l f] runs [f] holding [l].
    - Passthrough: runs [f] directly (the simulator is single-threaded).
    - Record: logs acquire/release events around [f].
    - Replay: blocks the calling OS thread until it is this thread's turn
      per the recorded acquisition order, then runs [f] under a real
      mutex. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** Reset the id counter (call before constructing the scheduler whose lock
    history you are about to record or replay). *)
val reset_ids : unit -> unit

(** Enter record mode: [sink] receives every lock event; [tid] supplies the
    logical kernel-thread id of the current context. *)
val set_record_mode : sink:(event -> unit) -> tid:(unit -> int) -> unit

(** Enter replay mode: [order] lists, per lock id, the tids in acquisition
    order; [tid] maps the calling OS thread to its logical tid. *)
val set_replay_mode : order:(int -> int list) -> tid:(unit -> int) -> unit

val set_passthrough_mode : unit -> unit

(** Tracing tap, orthogonal to the record/replay mode: when set, every
    {!with_lock} reports [Acquire] before running the body and [Release]
    after (and {!create} reports [Create]), in all three modes.  The
    schedtrace subsystem uses this to emit lock events the sanitizer
    checks for pairing; [None] (the default) restores the zero-cost path. *)
val set_trace_tap : (op -> lock_id:int -> unit) option -> unit
