(** Recordable locks for scheduler modules (§3.4).

    Enoki's record/replay hinges on one observation: because schedulers are
    safe Rust (here: OCaml), the only nondeterminism left is timing (which
    the kernel supplies in messages, so it is recorded) and the order of
    lock acquisitions.  LibEnoki therefore shims the kernel lock API to log
    create/acquire/release events; replay re-runs the same scheduler code on
    real OS threads, with each lock admitting threads in the recorded
    order.

    Scheduler modules must guard all shared state with these locks (as the
    paper's schedulers guard theirs with the kernel spinlock wrappers).

    Modes are domain-local: the simulator runs in [Passthrough] (or
    [Record]); the replay harness switches to [Replay].  Each domain has
    its own mode, trace tap, and lock-id sequence, so the bench harness
    can run independent machines in parallel domains. *)

type t

type op = Create | Acquire | Release

type event = { lock_id : int; op : op; tid : int }

(** Wire names for the record-log text form ([create]/[acquire]/[release]);
    {!op_of_name} is the inverse used by the replay parser. *)
val op_name : op -> string

val op_of_name : string -> op option

(** Binary-log counterparts ([Create]=0, [Acquire]=1, [Release]=2). *)
val op_byte : op -> int

val op_of_byte : int -> op option

(** [create ()] allocates a lock.  Ids are assigned in creation order,
    which is how replay pairs locks with their recorded history (the paper
    assumes locks are created in the same order during replay). *)
val create : ?name:string -> unit -> t

val id : t -> int

val name : t -> string

(** [with_lock l f] runs [f] holding [l].
    - Passthrough: runs [f] directly (the simulator is single-threaded).
    - Record: logs acquire/release events around [f].
    - Replay: blocks the calling OS thread until it is this thread's turn
      per the recorded acquisition order, then runs [f] under a real
      mutex. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** Reset the id counter (call before constructing the scheduler whose lock
    history you are about to record or replay). *)
val reset_ids : unit -> unit

(** Enter record mode: [sink] receives every lock event; [tid] supplies the
    logical kernel-thread id of the current context. *)
val set_record_mode : sink:(event -> unit) -> tid:(unit -> int) -> unit

(** Enter replay mode: [order] lists, per lock id, the tids in acquisition
    order; [tid] maps the calling OS thread to its logical tid. *)
val set_replay_mode : order:(int -> int list) -> tid:(unit -> int) -> unit

val set_passthrough_mode : unit -> unit

(** Release the recorded admission order on every lock created since
    {!set_replay_mode}: all waiting threads are admitted freely from here
    on.  The replay harness calls this once a replayed scheduler has
    diverged from the recording (first reply mismatch, or a stall), since
    a divergent scheduler may acquire locks a different number of times
    than the log says and wedge every thread on a turn that never comes. *)
val abandon_replay_order : unit -> unit

(** The domain-local lock state (mode, trace tap, id counter, replay-created
    locks) as a first-class value.

    Domain-safety contract: {!t} values themselves are plain mutable
    structures — a given lock must be used from one domain at a time
    (Passthrough/Record; Replay uses a real mutex and is thread-safe by
    construction).  The {e ambient} state ({!set_record_mode}, the tap, the
    id counter) is domain-local, which is right when one domain owns one
    machine for its whole life (the bench pool) but wrong when a machine
    may advance on a different domain each step: the fleet tier captures a
    context per host at build time and installs it around every machine
    advance, so a host's lock identity travels with the host, not with the
    domain.  Ids then count per host — deterministic for any [-j]. *)
type ctx

(** A pristine context: Passthrough, no tap, ids from 0.  Install one
    before building a machine so the build can't inherit the ambient
    mode/tap of a previously built machine in the same domain. *)
val fresh_ctx : unit -> ctx

(** Snapshot the calling domain's current lock state.  The id counter and
    replay-lock list are aliased, not copied: lock creations that happen
    while a captured context is installed persist into later installs of
    the same context. *)
val capture_ctx : unit -> ctx

(** Make [ctx] the calling domain's lock state.  Callers are expected to
    capture the previous context first and restore it after — see
    [Cluster.Fleet]'s host advance for the pattern. *)
val install_ctx : ctx -> unit

(** Tracing tap, orthogonal to the record/replay mode: when set, every
    {!with_lock} reports [Acquire] before running the body and [Release]
    after (and {!create} reports [Create]), in all three modes.  The
    schedtrace subsystem uses this to emit lock events the sanitizer
    checks for pairing; [None] (the default) restores the zero-cost path. *)
val set_trace_tap : (op -> lock_id:int -> unit) option -> unit
