(* The tap path runs from (simulated) kernel context, so it must be cheap:
   events are pushed onto the ring as typed values — no Printf, no string
   building — and all encoding happens at drain time in the userspace
   record task.  Drained bytes go either to an in-memory buffer or,
   streaming, to an [out_channel], so the recorder's live heap stays
   bounded no matter how long the run. *)

type event =
  | Ev_call of { tid : int; call : Message.call; reply : Message.reply }
  | Ev_lock of Lock.event

type format = Binary | Text

type sink =
  | Memory of Buffer.t
  | Channel of out_channel

type t = {
  ring : event Ds.Ring_buffer.t;
  format : format;
  sink : sink;
  scratch : Buffer.t; (* per-drain staging for Channel sinks; reused, so bounded *)
  frame : Buffer.t; (* per-event staging for length prefixes; reused *)
  mutable events : int;
  mutable closed : bool;
}

(* Log header for the binary form; the final byte is the format version. *)
let magic = "ENOKIREC\x01"

let default_capacity = 65536

let mk ~capacity ~format ~sink =
  {
    ring = Ds.Ring_buffer.create ~capacity;
    format;
    sink;
    scratch = Buffer.create 4096;
    frame = Buffer.create 256;
    events = 0;
    closed = false;
  }

let create ?(capacity = default_capacity) ?(format = Binary) () =
  mk ~capacity ~format ~sink:(Memory (Buffer.create 4096))

let create_file ~path ?(capacity = default_capacity) ?(format = Binary) () =
  let oc = open_out_bin path in
  if format = Binary then output_string oc magic;
  mk ~capacity ~format ~sink:(Channel oc)

let tap_call t ~tid call reply = ignore (Ds.Ring_buffer.push t.ring (Ev_call { tid; call; reply }))

let tap_lock t (ev : Lock.event) = ignore (Ds.Ring_buffer.push t.ring (Ev_lock ev))

let dropped t = Ds.Ring_buffer.dropped t.ring

(* frame = varint payload length, then payload (kind byte + fields) *)
let encode_binary t buf ev =
  Buffer.clear t.frame;
  (match ev with
  | Ev_call { tid; call; reply } ->
    Wire.put_byte t.frame 0x01;
    Wire.put_uint t.frame tid;
    Message.put_call t.frame call;
    Message.put_reply t.frame reply
  | Ev_lock { lock_id; op; tid } ->
    Wire.put_byte t.frame 0x02;
    Wire.put_uint t.frame tid;
    Wire.put_byte t.frame (Lock.op_byte op);
    Wire.put_uint t.frame lock_id);
  Wire.put_uint buf (Buffer.length t.frame);
  Buffer.add_buffer buf t.frame

let encode_text buf ev =
  (match ev with
  | Ev_call { tid; call; reply } ->
    Buffer.add_string buf
      (Printf.sprintf "C %d %s => %s" tid (Message.encode_call call) (Message.encode_reply reply))
  | Ev_lock { lock_id; op; tid } ->
    Buffer.add_string buf (Printf.sprintf "L %d %s %d" tid (Lock.op_name op) lock_id));
  Buffer.add_char buf '\n'

let drain t =
  if not t.closed then
    match Ds.Ring_buffer.drain t.ring with
    | [] -> ()
    | evs ->
      let buf =
        match t.sink with
        | Memory b -> b
        | Channel _ ->
          Buffer.clear t.scratch;
          t.scratch
      in
      List.iter
        (fun ev ->
          (match t.format with
          | Binary -> encode_binary t buf ev
          | Text -> encode_text buf ev);
          t.events <- t.events + 1)
        evs;
      (match t.sink with Memory _ -> () | Channel oc -> Buffer.output_buffer oc t.scratch)

let length t =
  drain t;
  t.events

(* The trailer carries the event and drop counts; it sits at the end so
   entry positions (binary frame index, text line number) are stable
   whether or not the run completed. *)
let add_trailer t buf =
  match t.format with
  | Binary ->
    Buffer.clear t.frame;
    Wire.put_byte t.frame 0x7f;
    Wire.put_uint t.frame t.events;
    Wire.put_uint t.frame (dropped t);
    Wire.put_uint buf (Buffer.length t.frame);
    Buffer.add_buffer buf t.frame
  | Text ->
    Buffer.add_string buf
      (Printf.sprintf "# enoki-record: events=%d dropped=%d\n" t.events (dropped t))

let close t =
  if not t.closed then begin
    drain t;
    (match t.sink with
    | Memory _ -> () (* trailer is composed by [contents]/[save] *)
    | Channel oc ->
      Buffer.clear t.scratch;
      add_trailer t t.scratch;
      Buffer.output_buffer oc t.scratch;
      close_out oc);
    t.closed <- true
  end

let contents t =
  drain t;
  match t.sink with
  | Channel _ -> invalid_arg "Record.contents: file-backed recorder (close it and use load_file)"
  | Memory b ->
    (* compose without mutating [b], so repeated calls are stable *)
    let out = Buffer.create (Buffer.length b + 64) in
    if t.format = Binary then Buffer.add_string out magic;
    Buffer.add_buffer out b;
    add_trailer t out;
    Buffer.contents out

let save t ~path =
  let data = contents t in
  let oc = open_out_bin path in
  Fun.protect (fun () -> output_string oc data) ~finally:(fun () -> close_out oc)

let load_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)
