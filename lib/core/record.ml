type t = {
  ring : string Ds.Ring_buffer.t;
  log : Buffer.t;
  mutable lines : int;
}

let create ?(capacity = 65536) () =
  { ring = Ds.Ring_buffer.create ~capacity; log = Buffer.create 4096; lines = 0 }

let tap_call t ~tid call reply =
  let line =
    Printf.sprintf "C %d %s => %s" tid (Message.encode_call call) (Message.encode_reply reply)
  in
  ignore (Ds.Ring_buffer.push t.ring line)

let op_name = function Lock.Create -> "create" | Lock.Acquire -> "acquire" | Lock.Release -> "release"

let tap_lock t (ev : Lock.event) =
  let line = Printf.sprintf "L %d %s %d" ev.tid (op_name ev.op) ev.lock_id in
  ignore (Ds.Ring_buffer.push t.ring line)

let drain t =
  List.iter
    (fun line ->
      Buffer.add_string t.log line;
      Buffer.add_char t.log '\n';
      t.lines <- t.lines + 1)
    (Ds.Ring_buffer.drain t.ring)

let dropped t = Ds.Ring_buffer.dropped t.ring

let length t =
  (* count what is still sitting in the ring too, not just drained lines *)
  drain t;
  t.lines

let contents t =
  drain t;
  Buffer.contents t.log

let save t ~path =
  let oc = open_out path in
  Fun.protect
    (fun () -> output_string oc (contents t))
    ~finally:(fun () -> close_out oc)

let load_file ~path =
  let ic = open_in path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)
