(* Varint-based binary primitives for the record log (§3.4).

   All integers travel as LEB128; signed values are zigzag-mapped first so
   small negatives (nice levels, R_int error codes) stay one byte.  Strings
   are length-prefixed raw bytes — no escaping, so payloads containing
   newlines, spaces or " => " can never corrupt the framing. *)

exception Truncated

(* LEB128 over the raw bit pattern: [lsr] is a logical shift, so this also
   terminates for a negative pattern (at most ceil(int_size/7) groups),
   which zigzag produces when |n| >= 2^(int_size-2). *)
let put_bits buf n =
  let rec go n =
    if n lsr 7 = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_uint buf n =
  if n < 0 then invalid_arg "Wire.put_uint: negative";
  put_bits buf n

(* zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3 ... *)
let put_int buf n = put_bits buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let put_byte buf b = Buffer.add_char buf (Char.chr (b land 0xff))

let put_bool buf b = put_byte buf (if b then 1 else 0)

let put_str buf s =
  put_uint buf (String.length s);
  Buffer.add_string buf s

type cursor = { src : string; mutable pos : int }

let cursor ?(pos = 0) src = { src; pos }

let at_end c = c.pos >= String.length c.src

let get_byte c =
  if c.pos >= String.length c.src then raise Truncated;
  let b = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_uint c =
  let rec go shift acc =
    let b = get_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int c =
  let n = get_uint c in
  (n lsr 1) lxor (-(n land 1))

let get_bool c = get_byte c <> 0

let get_str c =
  let len = get_uint c in
  if c.pos + len > String.length c.src then raise Truncated;
  let s = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  s
