type cell = { mutable count : int; mutable sim_ns : int; mutable wall_ns : float }

type t = {
  cells : (string * string, cell) Hashtbl.t; (* (sched, call) -> totals *)
  mutable total : int;
}

type row = { sched : string; call : string; count : int; sim_ns : int; wall_ns : float }

let create () = { cells = Hashtbl.create 32; total = 0 }

let now_wall () = Unix.gettimeofday () *. 1e9

let record t ~sched ~call ~sim_ns ~wall_ns =
  let cell =
    match Hashtbl.find_opt t.cells (sched, call) with
    | Some c -> c
    | None ->
      let c = { count = 0; sim_ns = 0; wall_ns = 0.0 } in
      Hashtbl.add t.cells (sched, call) c;
      c
  in
  cell.count <- cell.count + 1;
  cell.sim_ns <- cell.sim_ns + sim_ns;
  cell.wall_ns <- cell.wall_ns +. Float.max 0.0 wall_ns;
  t.total <- t.total + 1

let crossings t = t.total

let rows t =
  Hashtbl.fold
    (fun (sched, call) (c : cell) acc ->
      { sched; call; count = c.count; sim_ns = c.sim_ns; wall_ns = c.wall_ns } :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match String.compare a.sched b.sched with
         | 0 -> (
           match Int.compare b.count a.count with
           | 0 -> String.compare a.call b.call
           | c -> c)
         | c -> c)

let table_header = [ "scheduler"; "callback"; "crossings"; "sim ns/call"; "wall ns/call"; "share" ]

let table_rows t =
  let rs = rows t in
  let total = float_of_int (Stdlib.max 1 t.total) in
  List.map
    (fun r ->
      let n = float_of_int (Stdlib.max 1 r.count) in
      [
        r.sched;
        r.call;
        string_of_int r.count;
        Printf.sprintf "%.0f" (float_of_int r.sim_ns /. n);
        Printf.sprintf "%.0f" (r.wall_ns /. n);
        Printf.sprintf "%.1f%%" (100.0 *. float_of_int r.count /. total);
      ])
    rs

let clear t =
  Hashtbl.reset t.cells;
  t.total <- 0
