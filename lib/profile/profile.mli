(** Self-profiler for the Enoki-C message boundary.

    Reproduces the paper's Table-3-style breakdown: for every
    {!Enoki.Sched_trait} callback kind, per scheduler module, it
    attributes

    - the number of boundary crossings (dispatches),
    - {e simulated} nanoseconds the module charged during those calls
      (via [Ctx.charge]), and
    - {e host wall-clock} nanoseconds the OCaml callback actually took —
      the real cost of our reproduction's dispatch path.

    Recording mutates plain OCaml state and never touches simulated time,
    so profiling cannot perturb scheduling decisions (wall-clock reads
    happen outside the simulator's universe entirely). *)

type t

type row = {
  sched : string;  (** scheduler module name *)
  call : string;  (** callback kind, e.g. ["pick_next_task"] *)
  count : int;  (** boundary crossings *)
  sim_ns : int;  (** total simulated ns charged by the module *)
  wall_ns : float;  (** total host wall-clock ns spent in the callback *)
}

val create : unit -> t

(** Host wall clock in nanoseconds (monotonicity not guaranteed; only
    differences are meaningful). *)
val now_wall : unit -> float

val record : t -> sched:string -> call:string -> sim_ns:int -> wall_ns:float -> unit

(** Total boundary crossings across all callbacks and modules. *)
val crossings : t -> int

(** All rows, grouped by scheduler, busiest callback first. *)
val rows : t -> row list

(** Table-3-style rendering: one row per (scheduler, callback) with
    crossings, mean simulated ns/call and mean wall ns/call; feed to
    [Report.table]. *)
val table_header : string list

val table_rows : t -> string list list

val clear : t -> unit
