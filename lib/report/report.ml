let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let note s = Printf.printf "  %s\n" s

let table ~header rows =
  let all = header :: rows in
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Report.table: ragged rows")
    rows;
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row row =
    print_string "  ";
    List.iteri
      (fun i cell ->
        print_string cell;
        if i < arity - 1 then print_string (String.make (widths.(i) - String.length cell + 2) ' '))
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter print_row rows;
  flush stdout

let kv pairs =
  match pairs with
  | [] -> ()
  | _ ->
    let width = List.fold_left (fun w (k, _) -> max w (String.length k)) 0 pairs in
    List.iter
      (fun (k, v) -> Printf.printf "  %s%s  %s\n" k (String.make (width - String.length k) ' ') v)
      pairs;
    flush stdout

let fmt_f v = Printf.sprintf "%g" v

let fmt_f1 v = Printf.sprintf "%.1f" v

let fmt_f2 v = Printf.sprintf "%.2f" v

let fmt_pct v = Printf.sprintf "%+.2f%%" v
