let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let note s = Printf.printf "  %s\n" s

(* A cell counts as numeric for alignment purposes when it carries a digit
   and only number-shaped characters around it ("3.6", "+0.74%", "1.5x",
   "12us", "(74/320)"); "-" placeholders don't break a numeric column. *)
let numeric_cell cell =
  cell = "-"
  || (String.exists (fun c -> c >= '0' && c <= '9') cell
     && String.for_all
          (fun c ->
            (c >= '0' && c <= '9')
            || String.contains "+-.%/()xkMGuns " c)
          cell)

let table ~header rows =
  let all = header :: rows in
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Report.table: ragged rows")
    rows;
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  (* right-align a column when every data cell in it is number-shaped *)
  let right = Array.make arity (rows <> []) in
  List.iter
    (List.iteri (fun i cell -> if not (numeric_cell cell) then right.(i) <- false))
    rows;
  let print_row ?(pad_right = false) row =
    print_string "  ";
    List.iteri
      (fun i cell ->
        let gap = widths.(i) - String.length cell in
        if right.(i) && pad_right then print_string (String.make gap ' ');
        print_string cell;
        if i < arity - 1 then
          print_string
            (String.make ((if right.(i) && pad_right then 0 else gap) + 2) ' '))
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter (print_row ~pad_right:true) rows;
  flush stdout

let kv pairs =
  match pairs with
  | [] -> ()
  | _ ->
    let width = List.fold_left (fun w (k, _) -> max w (String.length k)) 0 pairs in
    List.iter
      (fun (k, v) ->
        (* continuation lines of a multi-line value stay aligned under the
           value column instead of jumping back to column zero *)
        match String.split_on_char '\n' v with
        | [] -> Printf.printf "  %s%s\n" k (String.make (width - String.length k) ' ')
        | first :: rest ->
          Printf.printf "  %s%s  %s\n" k (String.make (width - String.length k) ' ') first;
          List.iter (fun line -> Printf.printf "  %s  %s\n" (String.make width ' ') line) rest)
      pairs;
    flush stdout

let fmt_f v = Printf.sprintf "%g" v

let fmt_f1 v = Printf.sprintf "%.1f" v

let fmt_f2 v = Printf.sprintf "%.2f" v

let fmt_pct v = Printf.sprintf "%+.2f%%" v
