(** Plain-text table rendering for the benchmark harness. *)

(** Print a section banner. *)
val section : string -> unit

(** Print an indented note line. *)
val note : string -> unit

(** [table ~header rows] prints an aligned table; every row must have the
    same arity as [header].  Columns whose data cells are all
    number-shaped are right-aligned so magnitudes line up. *)
val table : header:string list -> string list list -> unit

(** Aligned key/value lines (violation breakdowns, failover counters,
    upgrade stats); prints nothing for an empty list.  Continuation lines
    of multi-line values stay aligned under the value column. *)
val kv : (string * string) list -> unit

val fmt_f : float -> string

(** Format with a fixed number of decimals. *)
val fmt_f1 : float -> string

val fmt_f2 : float -> string

(** Percentage with sign, two decimals (Table 5 style). *)
val fmt_pct : float -> string
