type ns = int

type config = {
  panic_burst : int;
  overrun_burst : int;
  window : ns;
  starvation : bool;
  cooldown : ns;
  max_fires : int;
}

let default_config =
  {
    panic_burst = 3;
    overrun_burst = 3;
    window = 100_000_000;
    starvation = true;
    cooldown = 50_000_000;
    max_fires = 8;
  }

type fire = { at : ns; reason : string }

type t = {
  config : config;
  sanitizer : Trace.Sanitizer.t option;
  action : reason:string -> at:ns -> unit;
  mutable tracer : Trace.Tracer.t option;
  mutable panic_ts : ns list; (* newest first, pruned to the window *)
  mutable overrun_ts : ns list;
  mutable starved_seen : int;
  mutable fires : fire list; (* newest first *)
  mutable last_fire : ns;
}

let create ?(config = default_config) ?sanitizer ~action () =
  {
    config;
    sanitizer;
    action;
    tracer = None;
    panic_ts = [];
    overrun_ts = [];
    starved_seen = 0;
    fires = [];
    last_fire = min_int;
  }

let fires t = List.rev t.fires

let fire t ~at ~reason =
  if
    List.length t.fires < t.config.max_fires
    && (t.fires = [] || at - t.last_fire >= t.config.cooldown)
  then begin
    t.fires <- { at; reason } :: t.fires;
    t.last_fire <- at;
    (* a fresh detection window for whatever scheduler comes next *)
    t.panic_ts <- [];
    t.overrun_ts <- [];
    (match t.tracer with
    | Some tr -> Trace.Tracer.emit tr ~ts:at ~cpu:0 (Trace.Event.Watchdog_fire { reason })
    | None -> ());
    t.action ~reason ~at
  end

let prune t now l = List.filter (fun ts -> now - ts <= t.config.window) l

let feed t (ev : Trace.Event.t) =
  match ev.kind with
  | Trace.Event.Panic _ ->
    t.panic_ts <- ev.ts :: prune t ev.ts t.panic_ts;
    let n = List.length t.panic_ts in
    if n >= t.config.panic_burst then
      fire t ~at:ev.ts
        ~reason:(Printf.sprintf "panic burst: %d module panics within %dns" n t.config.window)
  | Trace.Event.Overrun { call; _ } ->
    t.overrun_ts <- ev.ts :: prune t ev.ts t.overrun_ts;
    let n = List.length t.overrun_ts in
    if n >= t.config.overrun_burst then
      fire t ~at:ev.ts
        ~reason:
          (Printf.sprintf "wedged: %d call-budget overruns within %dns (last: %s)" n
             t.config.window call)
  | Trace.Event.Tick when ev.cpu = 0 -> (
    match t.sanitizer with
    | Some s when t.config.starvation ->
      let starved =
        List.length (Trace.Sanitizer.violations_of_kind s Trace.Sanitizer.Starvation)
      in
      if starved > t.starved_seen then begin
        t.starved_seen <- starved;
        fire t ~at:ev.ts
          ~reason:(Printf.sprintf "sanitizer reported starvation (%d finding%s)" starved
                     (if starved = 1 then "" else "s"))
      end
    | _ -> ())
  | _ -> ()

let attach t tracer =
  t.tracer <- Some tracer;
  Trace.Tracer.subscribe tracer (feed t)
