(** The recovery watchdog.

    Consumes the schedtrace stream and decides when the registered
    scheduler module is beyond local recovery: a burst of module panics,
    repeated per-call budget overruns (the wedged-module signature), or
    fresh starvation findings from an attached {!Trace.Sanitizer}.  When
    a trigger trips it emits a [Watchdog_fire] event and invokes the
    [action] callback — typically scheduling an {!Enoki.Enoki_c.rollback}
    to the last-known-good scheduler version.

    The callback runs synchronously from inside trace emission, which may
    be the middle of a dispatch; recovery actions that re-enter the
    scheduler (rollback, upgrade) must be deferred to a safe point, e.g.
    [Kernsim.Machine.at ~delay:0].

    Attach the sanitizer to the tracer {e before} the watchdog so its
    verdicts are current when the watchdog polls them on each tick. *)

type ns = int

type config = {
  panic_burst : int;  (** fire at this many panics within [window] *)
  overrun_burst : int;  (** fire at this many budget overruns within [window] *)
  window : ns;
  starvation : bool;  (** fire on new sanitizer starvation violations *)
  cooldown : ns;  (** minimum spacing between fires *)
  max_fires : int;
}

(** 3 panics / 3 overruns per 100 ms window, starvation armed, 50 ms
    cooldown, at most 8 fires. *)
val default_config : config

type fire = { at : ns; reason : string }

type t

val create :
  ?config:config ->
  ?sanitizer:Trace.Sanitizer.t ->
  action:(reason:string -> at:ns -> unit) ->
  unit ->
  t

(** Subscribe to every event [tracer] emits; the watchdog also emits its
    [Watchdog_fire] marker back into this tracer. *)
val attach : t -> Trace.Tracer.t -> unit

(** Feed one event directly (tests). *)
val feed : t -> Trace.Event.t -> unit

(** Fires so far, oldest first. *)
val fires : t -> fire list
