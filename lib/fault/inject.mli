(** The fault injector: wrap a scheduler module in a fault plan.

    [wrap ~seed ~plan (module S)] returns a module with the same
    behaviour as [S] except where [plan] fires: the wrapper evaluates the
    plan's rules on every incoming message (before delegating to [S]) and
    injects the chosen fault — raising {!Plan.Injected} for a panic,
    charging simulated compute time through [Ctx.charge] for latency
    spikes and wedges, or forging the reply for [wrong-reply] /
    [bad-select] / [corrupt-hint].

    All decisions draw from one {!Stats.Prng} stream seeded with [seed],
    and the machine itself is deterministic, so identical
    (seed, plan, workload) runs produce identical fault sequences.

    [tally], when given, is incremented per fired fault under its
    {!Plan.kind_name} — the observability hook for bench tables.

    The wrapper's [reregister_init] re-arms a fresh injector stream from
    the same seed, so a live upgrade {e into} a wrapped module faults
    deterministically too; its [name] is [S.name ^ "+fault"]. *)
val wrap :
  ?tally:(string, int) Hashtbl.t ->
  seed:int ->
  plan:Plan.t ->
  (module Enoki.Sched_trait.S) ->
  (module Enoki.Sched_trait.S)
