(** Deterministic fault plans.

    A plan is an ordered list of rules; {!Inject.wrap} evaluates them
    against every message a scheduler module receives and fires at most
    one fault per call.  All randomness comes from the injector's seeded
    {!Stats.Prng} stream, so a (plan, seed, workload) triple reproduces
    the same faults at the same calls, bit for bit.

    The concrete spec grammar, one rule per [;]-separated item:

    {v kind[@call][:key=val[,key=val...]] v}

    where [kind] is one of [panic], [wrong-reply], [bad-select],
    [latency], [corrupt-hint], [wedge]; [@call] restricts the rule to one
    message kind (a {!Enoki.Message.call_name}, e.g.
    [panic@pick_next_task]); and the keys are [p] (firing probability per
    matching call, default 1.0), [after] (arm only after that many
    matching calls, default 0), [max] (total fires allowed, default
    unlimited), and [ns] (simulated nanoseconds for [latency]/[wedge]).

    [wrong-reply], [bad-select] and [corrupt-hint] only make sense on
    [pick_next_task], [select_task_rq] and [parse_hint] respectively and
    are implicitly restricted to them. *)

type ns = int

type kind =
  | Panic  (** raise out of the hook: a module panic *)
  | Wrong_reply  (** return a forged, stale [Schedulable] from [pick_next_task] *)
  | Bad_select  (** return an absurd cpu from [select_task_rq] *)
  | Latency of ns  (** charge a compute spike to the calling cpu *)
  | Corrupt_hint  (** scramble the pid in a [parse_hint] payload *)
  | Wedge of ns
      (** charge far past any per-call budget: the infinite-loop stand-in *)

type rule = {
  kind : kind;
  call : string option;  (** message-name gate; [None] = every applicable call *)
  prob : float;  (** firing probability per matching call *)
  after : int;  (** matching calls to ignore before arming *)
  max_fires : int;  (** lifetime cap on fires for this rule *)
}

type t = rule list

(** The exception an injected [Panic] raises inside the module. *)
exception Injected of string

val kind_name : kind -> string

(** Does [rule] apply to a call of this name (explicit gate plus the
    implicit per-kind restriction)? *)
val matches : rule -> call:string -> bool

(** Parse a spec string; [Error] carries a human-readable reason.  A spec
    that is exactly a preset name expands to that preset. *)
val parse : string -> (t, string) result

(** Round-trips through {!parse}. *)
val to_string : t -> string

(** Named canned plans ([panic], [wrong-reply], [bad-select], [latency],
    [wedge], [chaos]) for the CLI and the chaos bench sweep. *)
val presets : (string * t) list
