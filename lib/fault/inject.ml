let tally_fire tally kind =
  match tally with
  | None -> ()
  | Some tbl ->
    let k = Plan.kind_name kind in
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let wrap ?tally ~seed ~(plan : Plan.t) (module S : Enoki.Sched_trait.S) :
    (module Enoki.Sched_trait.S) =
  let rules = Array.of_list plan in
  (module struct
    type t = {
      inner : S.t;
      ctx : Enoki.Ctx.t;
      rng : Stats.Prng.t;
      matched : int array; (* per rule: calls that matched its gate *)
      fired : int array; (* per rule: faults it injected *)
      mutable pids : int list; (* live pids the module knows: forgery pool *)
    }

    let name = S.name ^ "+fault"

    let make ctx inner =
      {
        inner;
        ctx;
        rng = Stats.Prng.create ~seed;
        matched = Array.make (Array.length rules) 0;
        fired = Array.make (Array.length rules) 0;
        pids = [];
      }

    let create ctx = make ctx (S.create ctx)

    let get_policy t = S.get_policy t.inner

    (* First matching armed rule that wins its probability draw fires; at
       most one fault per call.  Rules are checked in plan order so the
       draw sequence — and therefore the whole run — is a pure function
       of (plan, seed, workload). *)
    let decide t ~call =
      let rec go i =
        if i >= Array.length rules then None
        else
          let r = rules.(i) in
          if Plan.matches r ~call then begin
            t.matched.(i) <- t.matched.(i) + 1;
            if
              t.fired.(i) < r.max_fires
              && t.matched.(i) > r.after
              && Stats.Prng.float t.rng < r.prob
            then begin
              t.fired.(i) <- t.fired.(i) + 1;
              tally_fire tally r.kind;
              Some r.kind
            end
            else go (i + 1)
          end
          else go (i + 1)
      in
      go 0

    (* Faults every call can suffer; reply forgeries fall through to the
       per-hook handlers below. *)
    let pre t ~call ~cpu =
      match decide t ~call with
      | Some Plan.Panic -> raise (Plan.Injected call)
      | Some (Plan.Latency ns) | Some (Plan.Wedge ns) ->
        t.ctx.charge ~cpu ns;
        None
      | (Some (Plan.Wrong_reply | Plan.Bad_select | Plan.Corrupt_hint) | None) as other -> other

    let know t pid = if not (List.mem pid t.pids) then t.pids <- pid :: t.pids

    let forget t pid = t.pids <- List.filter (fun p -> p <> pid) t.pids

    (* a stale forged token: generation 0 predates every mint, so the
       boundary's validation must catch it *)
    let forge t ~cpu =
      match t.pids with
      | [] -> None
      | pids ->
        let pid = List.nth pids (Stats.Prng.int t.rng (List.length pids)) in
        Some (Enoki.Schedulable.Private.create ~pid ~cpu ~gen:0)

    let pick_next_task t ~cpu ~curr ~curr_runtime =
      match pre t ~call:"pick_next_task" ~cpu with
      | Some Plan.Wrong_reply -> forge t ~cpu
      | _ -> S.pick_next_task t.inner ~cpu ~curr ~curr_runtime

    let select_task_rq t ~pid ~waker_cpu ~allowed =
      match pre t ~call:"select_task_rq" ~cpu:waker_cpu with
      | Some Plan.Bad_select -> t.ctx.nr_cpus + 7
      | _ -> S.select_task_rq t.inner ~pid ~waker_cpu ~allowed

    let parse_hint t ~pid ~hint =
      match pre t ~call:"parse_hint" ~cpu:0 with
      | Some Plan.Corrupt_hint -> S.parse_hint t.inner ~pid:(pid lxor 0x2a) ~hint
      | _ -> S.parse_hint t.inner ~pid ~hint

    let pnt_err t ~cpu ~pid ~err ~sched =
      ignore (pre t ~call:"pnt_err" ~cpu);
      S.pnt_err t.inner ~cpu ~pid ~err ~sched

    let task_dead t ~pid =
      ignore (pre t ~call:"task_dead" ~cpu:0);
      forget t pid;
      S.task_dead t.inner ~pid

    let task_blocked t ~pid ~runtime ~cpu =
      ignore (pre t ~call:"task_blocked" ~cpu);
      S.task_blocked t.inner ~pid ~runtime ~cpu

    let task_wakeup t ~pid ~runtime ~waker_cpu ~sched =
      ignore (pre t ~call:"task_wakeup" ~cpu:waker_cpu);
      know t pid;
      S.task_wakeup t.inner ~pid ~runtime ~waker_cpu ~sched

    let task_new t ~pid ~runtime ~prio ~sched =
      ignore (pre t ~call:"task_new" ~cpu:(Enoki.Schedulable.cpu sched));
      know t pid;
      S.task_new t.inner ~pid ~runtime ~prio ~sched

    let task_preempt t ~pid ~runtime ~cpu ~sched =
      ignore (pre t ~call:"task_preempt" ~cpu);
      S.task_preempt t.inner ~pid ~runtime ~cpu ~sched

    let task_yield t ~pid ~runtime ~cpu ~sched =
      ignore (pre t ~call:"task_yield" ~cpu);
      S.task_yield t.inner ~pid ~runtime ~cpu ~sched

    let task_departed t ~pid ~cpu =
      ignore (pre t ~call:"task_departed" ~cpu);
      forget t pid;
      S.task_departed t.inner ~pid ~cpu

    let task_affinity_changed t ~pid ~allowed =
      ignore (pre t ~call:"task_affinity_changed" ~cpu:0);
      S.task_affinity_changed t.inner ~pid ~allowed

    let task_prio_changed t ~pid ~prio =
      ignore (pre t ~call:"task_prio_changed" ~cpu:0);
      S.task_prio_changed t.inner ~pid ~prio

    let task_tick t ~cpu ~queued =
      ignore (pre t ~call:"task_tick" ~cpu);
      S.task_tick t.inner ~cpu ~queued

    let migrate_task_rq t ~pid ~sched =
      ignore (pre t ~call:"migrate_task_rq" ~cpu:(Enoki.Schedulable.cpu sched));
      S.migrate_task_rq t.inner ~pid ~sched

    let balance t ~cpu =
      ignore (pre t ~call:"balance" ~cpu);
      S.balance t.inner ~cpu

    let balance_err t ~cpu ~pid ~sched =
      ignore (pre t ~call:"balance_err" ~cpu);
      S.balance_err t.inner ~cpu ~pid ~sched

    let reregister_prepare t = S.reregister_prepare t.inner

    let reregister_init ctx transfer = make ctx (S.reregister_init ctx transfer)
  end)
