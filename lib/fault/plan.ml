type ns = int

type kind =
  | Panic
  | Wrong_reply
  | Bad_select
  | Latency of ns
  | Corrupt_hint
  | Wedge of ns

type rule = {
  kind : kind;
  call : string option;
  prob : float;
  after : int;
  max_fires : int;
}

type t = rule list

exception Injected of string

let kind_name = function
  | Panic -> "panic"
  | Wrong_reply -> "wrong-reply"
  | Bad_select -> "bad-select"
  | Latency _ -> "latency"
  | Corrupt_hint -> "corrupt-hint"
  | Wedge _ -> "wedge"

(* faults that forge a specific reply shape only exist on one message *)
let implicit_call = function
  | Wrong_reply -> Some "pick_next_task"
  | Bad_select -> Some "select_task_rq"
  | Corrupt_hint -> Some "parse_hint"
  | Panic | Latency _ | Wedge _ -> None

let matches rule ~call =
  (match rule.call with Some c -> c = call | None -> true)
  && match implicit_call rule.kind with Some c -> c = call | None -> true

(* ---------- spec grammar ---------- *)

let default_latency = 50_000 (* 50 us spike *)

let default_wedge = 20_000_000 (* 20 ms: larger than any sane call budget *)

let parse_rule item =
  let ( let* ) = Result.bind in
  let head, opts =
    match String.index_opt item ':' with
    | Some i ->
      ( String.sub item 0 i,
        String.sub item (i + 1) (String.length item - i - 1) |> String.split_on_char ',' )
    | None -> (item, [])
  in
  let kind_s, call =
    match String.index_opt head '@' with
    | Some i ->
      ( String.sub head 0 i,
        Some (String.sub head (i + 1) (String.length head - i - 1)) )
    | None -> (head, None)
  in
  let* kvs =
    List.fold_left
      (fun acc opt ->
        let* acc = acc in
        match String.split_on_char '=' opt with
        | [ k; v ] -> Ok ((k, v) :: acc)
        | _ -> Error (Printf.sprintf "malformed option %S (want key=val)" opt))
      (Ok []) opts
  in
  let* () =
    match call with
    | Some "" -> Error "empty @call gate"
    | Some _ | None -> Ok ()
  in
  let* () =
    match List.find_opt (fun (k, _) -> not (List.mem k [ "p"; "after"; "max"; "ns" ])) kvs with
    | Some (k, _) -> Error (Printf.sprintf "unknown option %S (p|after|max|ns)" k)
    | None -> Ok ()
  in
  let num conv key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
      match conv v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "bad value %S for %s" v key))
  in
  let* prob = num float_of_string_opt "p" 1.0 in
  let* after = num int_of_string_opt "after" 0 in
  let* max_fires = num int_of_string_opt "max" max_int in
  let* ns_opt =
    match List.assoc_opt "ns" kvs with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok (Some n)
      | None -> Error (Printf.sprintf "bad value %S for ns" v))
  in
  let* kind =
    match kind_s with
    | "panic" -> Ok Panic
    | "wrong-reply" -> Ok Wrong_reply
    | "bad-select" -> Ok Bad_select
    | "latency" -> Ok (Latency (Option.value ns_opt ~default:default_latency))
    | "corrupt-hint" -> Ok Corrupt_hint
    | "wedge" -> Ok (Wedge (Option.value ns_opt ~default:default_wedge))
    | s -> Error (Printf.sprintf "unknown fault kind %S" s)
  in
  if prob < 0.0 || prob > 1.0 then Error (Printf.sprintf "p=%g out of [0,1]" prob)
  else
    match (ns_opt, kind) with
    | Some _, (Panic | Wrong_reply | Bad_select | Corrupt_hint) ->
      Error (Printf.sprintf "ns only applies to latency/wedge, not %s" (kind_name kind))
    | _ -> Ok { kind; call; prob; after; max_fires }

let parse_spec spec =
  let items =
    String.split_on_char ';' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if items = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun rules ->
            Result.map (fun r -> r :: rules) (parse_rule item)))
      (Ok []) items
    |> Result.map List.rev

(* Presets are spec strings themselves, so the grammar is the single
   source of truth and [to_string] round-trips. *)
let preset_specs =
  [
    (* one-shot panic once the run is warm: the quarantine/failover demo *)
    ("panic", "panic@task_wakeup:after=400,max=1");
    (* a stale forged token on ~2% of picks *)
    ("wrong-reply", "wrong-reply:p=0.02");
    (* an absurd cpu on ~5% of selects *)
    ("bad-select", "bad-select:p=0.05");
    (* 250 us compute spikes on ~1% of calls *)
    ("latency", "latency:p=0.01,ns=250000");
    (* the module wedges solid mid-run: watchdog/rollback material *)
    ("wedge", "wedge@pick_next_task:after=800");
    (* everything at once, low probability *)
    ( "chaos",
      "panic@task_wakeup:p=0.002;wrong-reply:p=0.02;bad-select:p=0.02;latency:p=0.01,ns=250000"
    );
  ]

let force = function Ok t -> t | Error e -> invalid_arg ("Fault.Plan preset: " ^ e)

let presets = List.map (fun (name, spec) -> (name, force (parse_spec spec))) preset_specs

let parse spec =
  match List.assoc_opt (String.trim spec) preset_specs with
  | Some canned -> parse_spec canned
  | None -> parse_spec spec

let rule_to_string r =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (kind_name r.kind);
  (match r.call with
  | Some c -> Buffer.add_string buf ("@" ^ c)
  | None -> ());
  let opts = ref [] in
  (match r.kind with
  | Latency ns | Wedge ns -> opts := [ ("ns", string_of_int ns) ]
  | Panic | Wrong_reply | Bad_select | Corrupt_hint -> ());
  if r.max_fires <> max_int then opts := ("max", string_of_int r.max_fires) :: !opts;
  if r.after <> 0 then opts := ("after", string_of_int r.after) :: !opts;
  if r.prob <> 1.0 then opts := ("p", Printf.sprintf "%g" r.prob) :: !opts;
  (match !opts with
  | [] -> ()
  | kvs ->
    Buffer.add_char buf ':';
    Buffer.add_string buf (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)));
  Buffer.contents buf

let to_string t = String.concat ";" (List.map rule_to_string t)
