module Sched = Enoki.Schedulable

module Key = struct
  type t = int * int (* vtime, seq *)

  let compare (v1, s1) (v2, s2) =
    match Int.compare v1 v2 with 0 -> Int.compare s1 s2 | c -> c
end

module Tree = Ds.Rbtree.Make (Key)

type mode = Fifo | Vtime

type entry = { pid : int; token : Sched.t; vtime : int; seq : int; inserted_at : int }

(* FIFO queues ride a deque (O(1) at both ends); vtime queues ride the
   red-black tree keyed by (vtime, insertion seq) — the seq component makes
   equal-vtime consumption stable FIFO, mirroring how the kernel's vtime
   DSQs are rbtree-backed while FIFO DSQs are lists. *)
type repr = Q of entry Ds.Deque.t | T of entry Tree.t ref

type t = {
  name : string;
  mode : mode;
  repr : repr;
  lock : Enoki.Lock.t;
  now : unit -> int;
  observe_wait : cpu:int -> int -> unit;
  trace : cpu:int -> Trace.Event.kind -> unit;
  mutable seq : int;
  mutable inserts : int;
  mutable consumes : int;
}

let dispatch_latency_metric = "dsq_dispatch_latency_ns"

let create ?(mode = Fifo) (ctx : Enoki.Ctx.t) name =
  let repr =
    match mode with Fifo -> Q (Ds.Deque.create ()) | Vtime -> T (ref Tree.empty)
  in
  let observe_wait =
    match ctx.registry with
    | None -> fun ~cpu:_ _ -> ()
    | Some reg ->
      let h =
        Metrics.Registry.histogram reg
          ~help:"enqueue-to-dispatch wait across all dispatch queues (ns)"
          dispatch_latency_metric
      in
      fun ~cpu w -> Metrics.Registry.observe h ~cpu w
  in
  let t =
    {
      name;
      mode;
      repr;
      lock = Enoki.Lock.create ~name:("dsq-" ^ name) ();
      now = ctx.now;
      observe_wait;
      trace = ctx.trace;
      seq = 0;
      inserts = 0;
      consumes = 0;
    }
  in
  (* depth probes read at sample/export time without taking the lock, so an
     attached registry leaves the record log untouched *)
  (match ctx.registry with
  | Some reg ->
    Metrics.Registry.gauge_probe reg ~help:"tasks queued in this dispatch queue"
      ("dsq_depth_" ^ name) (fun () ->
        float_of_int
          (match t.repr with Q q -> Ds.Deque.length q | T tr -> Tree.cardinal !tr))
  | None -> ());
  t

let name t = t.name

let mode t = t.mode

let length t = match t.repr with Q q -> Ds.Deque.length q | T tr -> Tree.cardinal !tr

let is_empty t = length t = 0

let inserts t = t.inserts

let consumes t = t.consumes

let insert t ?(vtime = 0) token =
  Enoki.Lock.with_lock t.lock (fun () ->
      let pid = Sched.pid token in
      let e = { pid; token; vtime; seq = t.seq; inserted_at = t.now () } in
      t.seq <- t.seq + 1;
      t.inserts <- t.inserts + 1;
      (match t.repr with
      | Q q -> Ds.Deque.push_back q e
      | T tr -> tr := Tree.add (vtime, e.seq) e !tr);
      t.trace ~cpu:(Sched.cpu token) (Trace.Event.Dsq_insert { dsq = t.name; pid }))

let pop t =
  match t.repr with
  | Q q -> Ds.Deque.pop_front q
  | T tr -> (
    match Tree.min_binding_opt !tr with
    | Some (k, e) ->
      tr := Tree.remove k !tr;
      Some e
    | None -> None)

let consume t =
  Enoki.Lock.with_lock t.lock (fun () ->
      match pop t with
      | None -> None
      | Some e ->
        t.consumes <- t.consumes + 1;
        let wait = max 0 (t.now () - e.inserted_at) in
        t.observe_wait ~cpu:(Sched.cpu e.token) wait;
        t.trace ~cpu:(Sched.cpu e.token)
          (Trace.Event.Dsq_consume { dsq = t.name; pid = e.pid; wait });
        Some e)

exception Found of Key.t * entry

let tree_take tr ~f =
  match Tree.iter (fun k e -> if f e then raise (Found (k, e))) !tr with
  | () -> None
  | exception Found (k, e) ->
    tr := Tree.remove k !tr;
    Some e

let take_matching t ~f =
  Enoki.Lock.with_lock t.lock (fun () ->
      match t.repr with
      | Q q -> Ds.Deque.remove_first q ~f
      | T tr -> tree_take tr ~f)

(* Silent movement primitives for [Dsq_sched]: a shared-to-local move and a
   balance-time migration are internal queue transfers, not dispatches, so
   they keep the original [inserted_at] (the latency histogram measures
   enqueue to final consume) and emit no trace event. *)

let take_for t ~cpu = take_matching t ~f:(fun e -> Sched.cpu e.token = cpu)

let put t (e : entry) =
  Enoki.Lock.with_lock t.lock (fun () ->
      let e = { e with seq = t.seq } in
      t.seq <- t.seq + 1;
      match t.repr with
      | Q q -> Ds.Deque.push_back q e
      | T tr -> tr := Tree.add (e.vtime, e.seq) e !tr)

let put_front t e =
  Enoki.Lock.with_lock t.lock (fun () ->
      match t.repr with
      | Q q -> Ds.Deque.push_front q e
      | T tr -> tr := Tree.add (e.vtime, e.seq) e !tr)

let remove t ~pid = take_matching t ~f:(fun e -> e.pid = pid)

let peek t =
  match t.repr with
  | Q q -> Ds.Deque.peek_front q
  | T tr -> Option.map snd (Tree.min_binding_opt !tr)

let to_list t =
  match t.repr with Q q -> Ds.Deque.to_list q | T tr -> List.map snd (Tree.to_list !tr)
