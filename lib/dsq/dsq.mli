(** Dispatch queues — the sched_ext DSQ model inside Enoki.

    A [Dsq.t] is a named queue of Schedulable tokens, either FIFO (O(1)
    insert/consume at both ends) or vtime-ordered (red-black tree keyed by
    [(vtime, insertion seq)], so equal vtimes consume in stable FIFO
    order).  {!Dsq_sched} builds per-cpu local queues plus whatever
    shared/global queues a policy asks for, exactly like the kernel's
    per-cpu [SCX_DSQ_LOCAL] and user-created DSQs.

    Every queue is {!Enoki.Lock}-guarded, so record/replay reproduces the
    order of queue operations and the sanitizer's lock-pairing check holds.
    With a metrics registry attached ({!Enoki.Ctx.t.registry}) each queue
    exports a depth gauge probe ([dsq_depth_<name>]) and all queues share
    one enqueue-to-dispatch wait histogram ([dsq_dispatch_latency_ns]);
    inserts and consumes also emit [Dsq_insert]/[Dsq_consume] trace events.
    Observability reads state only — detached, every probe is a no-op and
    scheduling behaviour is bit-identical. *)

type mode = Fifo | Vtime

type entry = {
  pid : int;
  token : Enoki.Schedulable.t;
  vtime : int;  (** ordering key in [Vtime] mode; carried verbatim in [Fifo] *)
  seq : int;  (** insertion sequence inside this queue (FIFO tie-break) *)
  inserted_at : int;  (** simulated ns at first insert, for dispatch latency *)
}

type t

(** [create ctx name] makes an empty queue wired to [ctx]'s clock,
    registry and trace sink (all inert under {!Enoki.Ctx.inert}). *)
val create : ?mode:mode -> Enoki.Ctx.t -> string -> t

val name : t -> string

val mode : t -> mode

val length : t -> int

val is_empty : t -> bool

(** Lifetime insert/consume counts (trace-visible operations only). *)

val inserts : t -> int

val consumes : t -> int

(** Enqueue a token ([vtime] ignored for ordering in [Fifo] mode).  Emits
    [Dsq_insert] and stamps the entry for the latency histogram. *)
val insert : t -> ?vtime:int -> Enoki.Schedulable.t -> unit

(** Dequeue the head (FIFO front, or minimum [(vtime, seq)]).  Emits
    [Dsq_consume] and records the enqueue-to-consume wait. *)
val consume : t -> entry option

(** Silent transfer primitives for the {!Dsq_sched} adapter: queue-to-queue
    moves keep the original [inserted_at] (latency measures enqueue to the
    final consume) and emit no events. *)

(** Remove the first entry whose token licenses [cpu]. *)
val take_for : t -> cpu:int -> entry option

(** Append an entry moved from another queue (fresh [seq], same stamp). *)
val put : t -> entry -> unit

(** Re-insert at the front / at its old vtime position (balance-time
    migration replaces the head's token without losing its turn). *)
val put_front : t -> entry -> unit

(** Remove a queued task wherever it sits (block/exit/departure). *)
val remove : t -> pid:int -> entry option

val peek : t -> entry option

(** Consumption order. *)
val to_list : t -> entry list
