(** [Make]: compile a small sched_ext-style policy into the full
    {!Enoki.Sched_trait.S} trait.

    The adapter owns everything generic — the per-cpu local {!Dsq} queues,
    the task table, token custody (a policy never touches a Schedulable),
    slice preemption, balance-time migration, and live-upgrade transfer of
    the whole queue state — so a policy is the five or so decisions
    sched_ext leaves to BPF: where to place a waking task
    ([select_cpu]), which queue it joins ([enqueue]), how an idle cpu
    refills its local queue ([dispatch]/[steal]), and any accounting on
    deschedule ([stopping]).  See [lib/schedulers/scx_simple.ml] for the
    canonical ~40-line policy. *)

(** Per-task bookkeeping the adapter maintains and hands to every policy
    hook.  [vtime] is policy-owned scratch (carried across live upgrades);
    the rest is kernel-reported. *)
type task = {
  pid : int;
  mutable prio : int;  (** nice value from the last task_new/prio_changed *)
  mutable weight : int;  (** CFS load weight for [prio] *)
  mutable vtime : int;
  mutable last_runtime : int;
  mutable cpu : int;  (** cpu of the task's current/last token *)
}

val nice_0_load : int

(** [weighted ns ~weight] is [ns] scaled as CFS scales vruntime. *)
val weighted : int -> weight:int -> int

module Api : sig
  type t

  val nr_cpus : t -> int

  val now : t -> int

  (** Ask the kernel to re-run pick on [cpu] soon. *)
  val kick : t -> cpu:int -> unit

  val local : t -> cpu:int -> Dsq.t

  (** Get-or-create a shared queue by name (FIFO unless [mode] says
      otherwise); after a live upgrade this finds the adopted queue,
      contents intact. *)
  val shared_dsq : t -> ?mode:Dsq.mode -> string -> Dsq.t

  val queued : t -> Dsq.t -> int

  val running : t -> cpu:int -> int option

  (** Route the task in flight (inside [enqueue] only) into [dsq]; inserts
      aimed at another cpu's local queue are redirected to the token's
      own. *)
  val insert : t -> Dsq.t -> ?vtime:int -> task -> unit

  (** Pull the first entry of [dsq] licensed for [cpu] into its local
      queue; returns whether the local queue now has work. *)
  val move_to_local : t -> cpu:int -> Dsq.t -> bool

  (** Placement helper: previous cpu if idle, else an idle allowed cpu,
      else the shortest allowed local queue. *)
  val select_idle : t -> prev_cpu:int -> allowed:int list -> int

  (** Balance helpers (both return a migration candidate pid). *)

  val steal_head : t -> Dsq.t -> cpu:int -> int option

  val steal_longest_local : t -> cpu:int -> int option

  (** Times a policy forgot to insert an enqueued task and the adapter
      parked it on the fallback (local) queue. *)
  val fallback_inserts : t -> int
end

module type POLICY = sig
  type state

  val name : string

  (** Create policy state; ask {!Api.shared_dsq} for shared queues here. *)
  val init : Api.t -> state

  (** Place a waking/new task ([task.cpu] is its previous cpu). *)
  val select_cpu : state -> Api.t -> task -> waker_cpu:int -> allowed:int list -> int

  (** Route the task in flight into a queue via {!Api.insert}. *)
  val enqueue : state -> Api.t -> task -> unit

  (** [cpu]'s local queue ran dry: move work to it ({!Api.move_to_local}). *)
  val dispatch : state -> Api.t -> cpu:int -> unit

  (** The task came off a cpu having run [ran] more ns (weight-unscaled). *)
  val stopping : state -> Api.t -> task -> ran:int -> runnable:bool -> unit

  (** An idle cpu asks for a cross-cpu migration candidate (pid). *)
  val steal : state -> Api.t -> cpu:int -> int option

  val tick : state -> Api.t -> cpu:int -> queued:bool -> unit
end

(** The one transfer shape shared by every DSQ policy: live upgrade moves
    the queues, task table and running set verbatim between same-policy
    versions; adopting another policy's queues raises
    {!Enoki.Upgrade.Incompatible}. *)
type Enoki.Upgrade.transfer +=
  | Dsq_state of {
      policy : string;
      locals : Dsq.t array;
      shared : (string * Dsq.t) list;
      tasks : (int, task) Hashtbl.t;
      where : (int, Dsq.t) Hashtbl.t;
      running : int option array;
    }

module Make (P : POLICY) : Enoki.Sched_trait.S
