module Sched = Enoki.Schedulable

type task = {
  pid : int;
  mutable prio : int;
  mutable weight : int;
  mutable vtime : int;
  mutable last_runtime : int;
  mutable cpu : int;
}

let nice_0_load = 1024

(* weight-scaled charge, as CFS scales vruntime *)
let weighted ns ~weight = ns * nice_0_load / max 1 weight

(* preempt a running task after this many ticks when work is waiting
   (sched_ext's default slice, in tick units) *)
let slice_ticks = 4

module Api = struct
  type t = {
    ctx : Enoki.Ctx.t;
    locals : Dsq.t array;
    mutable shared : (string * Dsq.t) list; (* creation order *)
    tasks : (int, task) Hashtbl.t;
    where : (int, Dsq.t) Hashtbl.t; (* queued pid -> holding queue *)
    running : int option array; (* pid running per cpu, by our own picks *)
    ticks : int array; (* ticks since the cpu last dispatched *)
    mutable pending : Sched.t option; (* token in flight through P.enqueue *)
    mutable fallback_inserts : int;
    lock : Enoki.Lock.t;
  }

  let make (ctx : Enoki.Ctx.t) =
    {
      ctx;
      locals =
        Array.init ctx.nr_cpus (fun c -> Dsq.create ctx (Printf.sprintf "local_%d" c));
      shared = [];
      tasks = Hashtbl.create 64;
      where = Hashtbl.create 64;
      running = Array.make ctx.nr_cpus None;
      ticks = Array.make ctx.nr_cpus 0;
      pending = None;
      fallback_inserts = 0;
      lock = Enoki.Lock.create ~name:"dsq-sched" ();
    }

  let nr_cpus t = t.ctx.nr_cpus

  let now t = t.ctx.now ()

  let kick t ~cpu = t.ctx.resched ~cpu

  let local t ~cpu = t.locals.(cpu)

  let is_local t d = Array.exists (fun l -> l == d) t.locals

  let queued _t dsq = Dsq.length dsq

  let running t ~cpu = t.running.(cpu)

  (* get-or-create, so [P.init] finds its queues again (contents intact)
     after a live upgrade adopted them *)
  let shared_dsq t ?(mode = Dsq.Fifo) name =
    match List.assoc_opt name t.shared with
    | Some d -> d
    | None ->
      let d = Dsq.create ~mode t.ctx name in
      t.shared <- t.shared @ [ (name, d) ];
      d

  (* scx_bpf_dsq_insert: route the token in flight into [dsq].  A token only
     licenses its own cpu, so an insert aimed at another cpu's local queue is
     redirected to the token's own. *)
  let insert t dsq ?vtime (task : task) =
    match t.pending with
    | None -> invalid_arg "Dsq_sched.Api.insert: no task in flight (call from enqueue only)"
    | Some token ->
      t.pending <- None;
      let dsq =
        let cpu = Sched.cpu token in
        if is_local t dsq && t.locals.(cpu) != dsq then t.locals.(cpu) else dsq
      in
      Dsq.insert dsq ?vtime token;
      Hashtbl.replace t.where task.pid dsq

  (* scx_bpf_dsq_move_to_local: pull the first entry of [dsq] licensed for
     [cpu] into its local queue; says whether the local queue has work. *)
  let move_to_local t ~cpu dsq =
    if dsq == t.locals.(cpu) then not (Dsq.is_empty dsq)
    else
      match Dsq.take_for dsq ~cpu with
      | Some e ->
        Dsq.put t.locals.(cpu) e;
        Hashtbl.replace t.where e.Dsq.pid t.locals.(cpu);
        true
      | None -> false

  (* placement helper: the previous cpu if idle, else any idle allowed cpu,
     else the allowed cpu with the shortest local queue *)
  let select_idle t ~prev_cpu ~allowed =
    let idle c =
      c >= 0 && c < Array.length t.locals && t.running.(c) = None
      && Dsq.is_empty t.locals.(c)
    in
    if List.mem prev_cpu allowed && idle prev_cpu then prev_cpu
    else
      match List.find_opt idle allowed with
      | Some c -> c
      | None ->
        let best = ref (match allowed with c :: _ -> c | [] -> 0)
        and best_len = ref max_int in
        List.iter
          (fun c ->
            if c >= 0 && c < Array.length t.locals then begin
              let len =
                Dsq.length t.locals.(c) + if t.running.(c) = None then 0 else 1
              in
              if len < !best_len then begin
                best := c;
                best_len := len
              end
            end)
          allowed;
        !best

  (* balance-time migration candidate: the head of [dsq], when it is
     licensed for a busy cpu and so cannot drain without help *)
  let steal_head t dsq ~cpu =
    match Dsq.peek dsq with
    | Some e
      when Sched.cpu e.Dsq.token <> cpu && t.running.(Sched.cpu e.Dsq.token) <> None ->
      Some e.Dsq.pid
    | Some _ | None -> None

  (* work stealing for local-queue policies: the head of the longest other
     local queue that cannot drain itself promptly *)
  let steal_longest_local t ~cpu =
    let longest = ref None in
    Array.iteri
      (fun other q ->
        if other <> cpu then
          let len =
            if t.running.(other) <> None then Dsq.length q
            else if Dsq.length q >= 2 then Dsq.length q
            else 0
          in
          match !longest with
          | Some (_, blen) when blen >= len -> ()
          | _ -> if len > 0 then longest := Some (other, len))
      t.locals;
    match !longest with
    | Some (other, _) -> Option.map (fun e -> e.Dsq.pid) (Dsq.peek t.locals.(other))
    | None -> None

  let fallback_inserts t = t.fallback_inserts
end

module type POLICY = sig
  type state

  val name : string

  (** Create policy state; ask {!Api.shared_dsq} for shared queues here. *)
  val init : Api.t -> state

  (** Place a waking/new task ([task.cpu] is its previous cpu). *)
  val select_cpu : state -> Api.t -> task -> waker_cpu:int -> allowed:int list -> int

  (** Route the task in flight into a queue via {!Api.insert}. *)
  val enqueue : state -> Api.t -> task -> unit

  (** [cpu]'s local queue ran dry: move work to it ({!Api.move_to_local}). *)
  val dispatch : state -> Api.t -> cpu:int -> unit

  (** The task came off a cpu having run [ran] more ns (weight-unscaled). *)
  val stopping : state -> Api.t -> task -> ran:int -> runnable:bool -> unit

  (** An idle cpu asks for a cross-cpu migration candidate (pid). *)
  val steal : state -> Api.t -> cpu:int -> int option

  val tick : state -> Api.t -> cpu:int -> queued:bool -> unit
end

(* One transfer shape for the whole DSQ family: queue contents, the task
   table and running set move verbatim; [policy] guards against adopting
   another policy's queues (their invariants differ even when the shapes
   agree). *)
type Enoki.Upgrade.transfer +=
  | Dsq_state of {
      policy : string;
      locals : Dsq.t array;
      shared : (string * Dsq.t) list;
      tasks : (int, task) Hashtbl.t;
      where : (int, Dsq.t) Hashtbl.t;
      running : int option array;
    }

module Make (P : POLICY) : Enoki.Sched_trait.S = struct
  type t = { api : Api.t; state : P.state }

  let name = P.name

  let create ctx =
    let api = Api.make ctx in
    { api; state = P.init api }

  let get_policy t = t.api.Api.ctx.policy

  let task_of (api : Api.t) ~pid ~prio =
    match Hashtbl.find_opt api.tasks pid with
    | Some tk -> tk
    | None ->
      let tk =
        {
          pid;
          prio;
          weight = Kernsim.Cfs.weight_of_nice prio;
          vtime = 0;
          last_runtime = 0;
          cpu = 0;
        }
      in
      Hashtbl.replace api.tasks pid tk;
      tk

  (* kernel-reported cumulative runtime -> delta since the last report *)
  let ran tk ~runtime =
    let d = runtime - tk.last_runtime in
    if d > 0 then begin
      tk.last_runtime <- runtime;
      d
    end
    else 0

  let enqueue_via_policy t token tk =
    let api = t.api in
    api.Api.pending <- Some token;
    tk.cpu <- Sched.cpu token;
    P.enqueue t.state api tk;
    match api.Api.pending with
    | None -> ()
    | Some tok ->
      (* the policy dropped the task: the token's local queue is the
         fallback DSQ, so nothing is ever lost *)
      api.Api.pending <- None;
      api.Api.fallback_inserts <- api.Api.fallback_inserts + 1;
      Dsq.insert api.Api.locals.(Sched.cpu tok) tok;
      Hashtbl.replace api.Api.where tk.pid api.Api.locals.(Sched.cpu tok)

  let remove_queued (api : Api.t) pid =
    match Hashtbl.find_opt api.where pid with
    | None -> None
    | Some d ->
      Hashtbl.remove api.where pid;
      Option.map (fun e -> e.Dsq.token) (Dsq.remove d ~pid)

  let with_lock t f = Enoki.Lock.with_lock t.api.Api.lock f

  let task_new t ~pid ~runtime ~prio ~sched =
    with_lock t (fun () ->
        let tk = task_of t.api ~pid ~prio in
        tk.prio <- prio;
        tk.weight <- Kernsim.Cfs.weight_of_nice prio;
        tk.last_runtime <- runtime;
        enqueue_via_policy t sched tk)

  let task_wakeup t ~pid ~runtime ~waker_cpu:_ ~sched =
    with_lock t (fun () ->
        let tk = task_of t.api ~pid ~prio:0 in
        if runtime > tk.last_runtime then tk.last_runtime <- runtime;
        enqueue_via_policy t sched tk)

  let clear_running (api : Api.t) ~cpu ~pid =
    if api.running.(cpu) = Some pid then api.running.(cpu) <- None

  let requeue t ~pid ~runtime ~cpu ~sched =
    with_lock t (fun () ->
        let tk = task_of t.api ~pid ~prio:0 in
        let d = ran tk ~runtime in
        P.stopping t.state t.api tk ~ran:d ~runnable:true;
        clear_running t.api ~cpu ~pid;
        enqueue_via_policy t sched tk)

  let task_preempt t ~pid ~runtime ~cpu ~sched = requeue t ~pid ~runtime ~cpu ~sched

  let task_yield t ~pid ~runtime ~cpu ~sched = requeue t ~pid ~runtime ~cpu ~sched

  let task_blocked t ~pid ~runtime ~cpu =
    with_lock t (fun () ->
        let tk = task_of t.api ~pid ~prio:0 in
        let d = ran tk ~runtime in
        P.stopping t.state t.api tk ~ran:d ~runnable:false;
        clear_running t.api ~cpu ~pid;
        ignore (remove_queued t.api pid))

  let task_dead t ~pid =
    with_lock t (fun () ->
        Array.iteri
          (fun cpu r -> if r = Some pid then t.api.Api.running.(cpu) <- None)
          t.api.Api.running;
        ignore (remove_queued t.api pid);
        Hashtbl.remove t.api.Api.tasks pid)

  let task_departed t ~pid ~cpu =
    with_lock t (fun () ->
        clear_running t.api ~cpu ~pid;
        let tok = remove_queued t.api pid in
        Hashtbl.remove t.api.Api.tasks pid;
        tok)

  let pick_next_task t ~cpu ~curr ~curr_runtime =
    with_lock t (fun () ->
        let api = t.api in
        let take () =
          match Dsq.consume api.Api.locals.(cpu) with
          | Some e ->
            Hashtbl.remove api.Api.where e.Dsq.pid;
            Some e
          | None -> None
        in
        let entry =
          match take () with
          | Some e -> Some e
          | None ->
            P.dispatch t.state api ~cpu;
            take ()
        in
        match entry with
        | Some e ->
          api.Api.ticks.(cpu) <- 0;
          api.Api.running.(cpu) <- Some e.Dsq.pid;
          (match curr with
          | Some c when Sched.pid c <> e.Dsq.pid ->
            (* the displaced current task re-enters through the policy *)
            let tk = task_of api ~pid:(Sched.pid c) ~prio:0 in
            let d = ran tk ~runtime:curr_runtime in
            P.stopping t.state api tk ~ran:d ~runnable:true;
            enqueue_via_policy t c tk
          | Some _ | None -> ());
          Some e.Dsq.token
        | None ->
          api.Api.running.(cpu) <- Option.map Sched.pid curr;
          curr)

  let pnt_err t ~cpu:_ ~pid ~err:_ ~sched =
    match sched with
    | None -> ()
    | Some tok ->
      with_lock t (fun () ->
          (* ownership returns to us: park the token on its own local queue *)
          Dsq.insert t.api.Api.locals.(Sched.cpu tok) tok;
          Hashtbl.replace t.api.Api.where pid t.api.Api.locals.(Sched.cpu tok))

  let work_waiting (api : Api.t) ~cpu =
    (not (Dsq.is_empty api.locals.(cpu)))
    || List.exists (fun (_, d) -> not (Dsq.is_empty d)) api.shared

  let task_tick t ~cpu ~queued =
    with_lock t (fun () ->
        let api = t.api in
        api.Api.ticks.(cpu) <- api.Api.ticks.(cpu) + 1;
        if queued && api.Api.ticks.(cpu) >= slice_ticks && work_waiting api ~cpu then begin
          api.Api.ticks.(cpu) <- 0;
          api.Api.ctx.resched ~cpu
        end;
        P.tick t.state api ~cpu ~queued)

  let select_task_rq t ~pid ~waker_cpu ~allowed =
    with_lock t (fun () ->
        let tk = task_of t.api ~pid ~prio:0 in
        let cpu = P.select_cpu t.state t.api tk ~waker_cpu ~allowed in
        if List.mem cpu allowed then cpu
        else match allowed with c :: _ -> c | [] -> 0)

  let migrate_task_rq t ~pid ~sched =
    with_lock t (fun () ->
        let api = t.api in
        let tk = task_of api ~pid ~prio:0 in
        tk.cpu <- Sched.cpu sched;
        match Hashtbl.find_opt api.Api.where pid with
        | Some d -> (
          match Dsq.remove d ~pid with
          | Some e ->
            let e' = { e with Dsq.token = sched } in
            if Api.is_local api d then begin
              (* local entries follow the task to its new home cpu *)
              Dsq.put api.Api.locals.(Sched.cpu sched) e';
              Hashtbl.replace api.Api.where pid api.Api.locals.(Sched.cpu sched)
            end
            else
              (* shared entries keep their queue position: balance migrates
                 heads, and losing the turn would starve them *)
              Dsq.put_front d e';
            Some e.Dsq.token
          | None ->
            Hashtbl.remove api.Api.where pid;
            Dsq.insert api.Api.locals.(Sched.cpu sched) sched;
            Hashtbl.replace api.Api.where pid api.Api.locals.(Sched.cpu sched);
            None)
        | None ->
          Dsq.insert api.Api.locals.(Sched.cpu sched) sched;
          Hashtbl.replace api.Api.where pid api.Api.locals.(Sched.cpu sched);
          None)

  let balance t ~cpu =
    with_lock t (fun () ->
        let api = t.api in
        if api.Api.running.(cpu) = None && Dsq.is_empty api.Api.locals.(cpu) then
          P.steal t.state api ~cpu
        else None)

  let balance_err _ ~cpu:_ ~pid:_ ~sched:_ = ()

  let task_affinity_changed _ ~pid:_ ~allowed:_ = ()

  let task_prio_changed t ~pid ~prio =
    with_lock t (fun () ->
        let tk = task_of t.api ~pid ~prio in
        tk.prio <- prio;
        tk.weight <- Kernsim.Cfs.weight_of_nice prio)

  let parse_hint _ ~pid:_ ~hint:_ = ()

  let reregister_prepare t =
    Some
      (Dsq_state
         {
           policy = P.name;
           locals = t.api.Api.locals;
           shared = t.api.Api.shared;
           tasks = t.api.Api.tasks;
           where = t.api.Api.where;
           running = t.api.Api.running;
         })

  let reregister_init (ctx : Enoki.Ctx.t) transfer =
    match transfer with
    | None -> create ctx
    | Some (Dsq_state s) when s.policy = P.name ->
      let api =
        {
          Api.ctx;
          locals = s.locals;
          shared = s.shared;
          tasks = s.tasks;
          where = s.where;
          running = s.running;
          ticks = Array.make ctx.nr_cpus 0;
          pending = None;
          fallback_inserts = 0;
          lock = Enoki.Lock.create ~name:"dsq-sched" ();
        }
      in
      (* P.init re-finds the adopted shared queues by name, contents intact *)
      { api; state = P.init api }
    | Some (Dsq_state s) ->
      raise
        (Enoki.Upgrade.Incompatible
           (Printf.sprintf "%s: cannot adopt queues from DSQ policy %s" P.name s.policy))
    | Some _ ->
      raise (Enoki.Upgrade.Incompatible (P.name ^ ": unrecognised transfer state"))
end
