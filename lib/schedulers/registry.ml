type kind =
  | Builtin_cfs
  | Enoki of (module Enoki.Sched_trait.S)
  | Ghost of Ghost_sim.policy

type entry = { name : string; kind : kind; arbiter : bool }

let enoki ?(arbiter = false) name m = { name; kind = Enoki m; arbiter }

(* The one list every consumer derives from: the CLI's --sched vocabulary,
   bench's sanity/chaos/perf matrices and CI's sanitizer sweep.  A new
   scheduler appears everywhere by registering here once. *)
let all =
  [
    { name = "cfs"; kind = Builtin_cfs; arbiter = false };
    enoki "fifo" (module Fifo_sched : Enoki.Sched_trait.S);
    enoki "wfq" (module Wfq);
    enoki "shinjuku" (module Shinjuku);
    enoki "locality" (module Locality);
    enoki ~arbiter:true "arachne" (module Arachne);
    enoki "edf" (module Edf);
    enoki "nest" (module Nest);
    enoki "rt-fifo" (module Rt_fifo);
    enoki "scx-simple" (module Scx_simple);
    enoki "scx-rr" (module Scx_rr);
    enoki "scx-prio-dq" (module Scx_prio_dq);
    { name = "ghost-sol"; kind = Ghost Ghost_sim.Sol; arbiter = false };
    { name = "ghost-fifo"; kind = Ghost Ghost_sim.Fifo_per_cpu; arbiter = false };
    { name = "ghost-shinjuku"; kind = Ghost Ghost_sim.Gshinjuku; arbiter = false };
  ]

let names = List.map (fun e -> e.name) all

let find name = List.find_opt (fun e -> e.name = name) all

let enoki_module e = match e.kind with Enoki m -> Some m | Builtin_cfs | Ghost _ -> None

let enoki_names =
  List.filter_map (fun e -> if enoki_module e <> None then Some e.name else None) all

let dsq_names = [ "scx-simple"; "scx-rr"; "scx-prio-dq" ]
