(** scx_simple as a DSQ policy: a single global weighted-vtime dispatch
    queue (the ~40-line canonical {!Dsq_sched} policy). *)

include Enoki.Sched_trait.S
