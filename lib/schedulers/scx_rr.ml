(* Round-robin over local DSQs: placement rotates across the allowed cpus,
   every task queues straight onto its cpu's local queue, and idle cpus
   steal from the longest local queue.  Exercises the per-cpu half of the
   DSQ model the way scx_simple exercises the shared half. *)

module A = Dsq_sched.Api

module P = struct
  type state = { mutable next : int }

  let name = "scx-rr"

  let init _api = { next = 0 }

  let select_cpu st _api _task ~waker_cpu:_ ~allowed =
    match allowed with
    | [] -> 0
    | l ->
      st.next <- st.next + 1;
      List.nth l (st.next mod List.length l)

  let enqueue _st api (task : Dsq_sched.task) =
    A.insert api (A.local api ~cpu:task.cpu) task

  let dispatch _st _api ~cpu:_ = ()

  let stopping _st _api _task ~ran:_ ~runnable:_ = ()

  let steal _st api ~cpu = A.steal_longest_local api ~cpu

  let tick _st _api ~cpu:_ ~queued:_ = ()
end

include Dsq_sched.Make (P)
