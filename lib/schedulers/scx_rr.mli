(** Round-robin DSQ policy: rotating placement over per-cpu local queues
    with steal-from-longest balancing. *)

include Enoki.Sched_trait.S
