type Kernsim.Task.hint +=
  | Locality of { pid : int; group : int }
  | Core_request of { pid : int; cores : int }
  | Core_grant of { slot : int; cpu : int }
  | Core_reclaim of { slot : int }
  | Deadline of { pid : int; relative : Kernsim.Time.ns }

let registered = ref false

(* [Hint_codec]'s codec list is process-global, and machines are built
   concurrently in pool domains (the bench matrix, `fleet -j`), so the
   one-shot registration must be mutual-exclusive as well as idempotent:
   two unguarded first calls would interleave their [register] read-modify-
   writes and silently drop codecs. *)
let register_mutex = Mutex.create ()

let register_codecs () =
  Mutex.protect register_mutex @@ fun () ->
  if not !registered then begin
    registered := true;
    Enoki.Hint_codec.register ~name:"locality"
      ~encode:(function
        | Locality { pid; group } -> Some (Printf.sprintf "%d,%d" pid group)
        | _ -> None)
      ~decode:(fun s ->
        match String.split_on_char ',' s with
        | [ pid; group ] -> Locality { pid = int_of_string pid; group = int_of_string group }
        | _ -> failwith "locality hint");
    Enoki.Hint_codec.register ~name:"core_request"
      ~encode:(function
        | Core_request { pid; cores } -> Some (Printf.sprintf "%d,%d" pid cores)
        | _ -> None)
      ~decode:(fun s ->
        match String.split_on_char ',' s with
        | [ pid; cores ] -> Core_request { pid = int_of_string pid; cores = int_of_string cores }
        | _ -> failwith "core_request hint");
    Enoki.Hint_codec.register ~name:"core_grant"
      ~encode:(function
        | Core_grant { slot; cpu } -> Some (Printf.sprintf "%d,%d" slot cpu)
        | _ -> None)
      ~decode:(fun s ->
        match String.split_on_char ',' s with
        | [ slot; cpu ] -> Core_grant { slot = int_of_string slot; cpu = int_of_string cpu }
        | _ -> failwith "core_grant hint");
    Enoki.Hint_codec.register ~name:"core_reclaim"
      ~encode:(function Core_reclaim { slot } -> Some (string_of_int slot) | _ -> None)
      ~decode:(fun s -> Core_reclaim { slot = int_of_string s });
    Enoki.Hint_codec.register ~name:"deadline"
      ~encode:(function
        | Deadline { pid; relative } -> Some (Printf.sprintf "%d,%d" pid relative)
        | _ -> None)
      ~decode:(fun s ->
        match String.split_on_char ',' s with
        | [ pid; relative ] ->
          Deadline { pid = int_of_string pid; relative = int_of_string relative }
        | _ -> failwith "deadline hint")
  end
