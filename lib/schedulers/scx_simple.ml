(* sched_ext's scx_simple: one global weighted-vtime DSQ.  Tasks enqueue at
   their own vtime (clamped so sleepers bank at most one slice of lag), idle
   cpus refill from the global queue in vtime order, and deschedules charge
   weight-scaled runtime — the whole policy is this file. *)

module A = Dsq_sched.Api

let slice_ns = Kernsim.Time.ms 20

module P = struct
  type state = { q : Dsq.t; mutable vtime_now : int }

  let name = "scx-simple"

  let init api = { q = A.shared_dsq api ~mode:Dsq.Vtime "global"; vtime_now = 0 }

  let select_cpu _st api (task : Dsq_sched.task) ~waker_cpu:_ ~allowed =
    A.select_idle api ~prev_cpu:task.cpu ~allowed

  let enqueue st api (task : Dsq_sched.task) =
    if task.vtime < st.vtime_now - slice_ns then task.vtime <- st.vtime_now - slice_ns;
    A.insert api st.q ~vtime:task.vtime task

  let dispatch st api ~cpu = ignore (A.move_to_local api ~cpu st.q)

  let stopping st _api (task : Dsq_sched.task) ~ran ~runnable:_ =
    task.vtime <- task.vtime + Dsq_sched.weighted ran ~weight:task.weight;
    if task.vtime > st.vtime_now then st.vtime_now <- task.vtime

  let steal st api ~cpu = A.steal_head api st.q ~cpu

  let tick _st _api ~cpu:_ ~queued:_ = ()
end

include Dsq_sched.Make (P)
