(* The priority-based dual-queue scheduler (SNIPPETS.md): two shared FIFO
   DSQs — high for interactive tasks (negative nice), low for batch — with
   O(1) enqueue/dispatch on both.  A starvation-promotion counter forces one
   low-queue dispatch after [promote_after] consecutive high-queue
   dispatches while the low queue waits, bounding batch starvation.  The
   source repo claims 65% lower dispatch latency and 33% fewer context
   switches than CFS; EXPERIMENTS.md holds what we measure in the
   simulator's dsq bench suite. *)

module A = Dsq_sched.Api

let promote_after = 4

let high_nice_threshold = 0

(* Which queue the next dispatch drains.  Pulled out of the policy so the
   property tests can check the bound directly: while the low queue is
   non-empty, at most [promote_after] consecutive dispatches come from the
   high queue. *)
let pick_source ~streak ~low_queued =
  if low_queued && streak >= promote_after then `Low else `High

module P = struct
  type state = { high : Dsq.t; low : Dsq.t; mutable streak : int }

  let name = "scx-prio-dq"

  let init api = { high = A.shared_dsq api "high"; low = A.shared_dsq api "low"; streak = 0 }

  let select_cpu _st api (task : Dsq_sched.task) ~waker_cpu:_ ~allowed =
    A.select_idle api ~prev_cpu:task.cpu ~allowed

  let enqueue st api (task : Dsq_sched.task) =
    A.insert api (if task.prio < high_nice_threshold then st.high else st.low) task

  let dispatch st api ~cpu =
    let low_queued = A.queued api st.low > 0 in
    let try_low () =
      if A.move_to_local api ~cpu st.low then begin
        st.streak <- 0;
        true
      end
      else false
    in
    let try_high () =
      if A.move_to_local api ~cpu st.high then begin
        if low_queued then st.streak <- st.streak + 1;
        true
      end
      else false
    in
    match pick_source ~streak:st.streak ~low_queued with
    | `Low -> ignore (try_low () || try_high ())
    | `High -> ignore (try_high () || try_low ())

  let stopping _st _api _task ~ran:_ ~runnable:_ = ()

  let steal st api ~cpu =
    match A.steal_head api st.high ~cpu with
    | Some pid -> Some pid
    | None -> A.steal_head api st.low ~cpu

  let tick _st _api ~cpu:_ ~queued:_ = ()
end

include Dsq_sched.Make (P)
