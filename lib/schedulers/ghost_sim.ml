type policy = Fifo_per_cpu | Sol | Gshinjuku

let agent_cpu policy ~nr_cpus =
  match policy with Fifo_per_cpu -> None | Sol | Gshinjuku -> Some (nr_cpus - 1)

type t = {
  ops : Kernsim.Sched_class.kernel_ops;
  policy : policy;
  queues : int Ds.Deque.t array; (* per-cpu for Fifo_per_cpu; index 0 global otherwise *)
  running : int option array;
  ready : bool array; (* a decision is available for this cpu *)
  pending : bool array; (* a request is with the agent *)
  tasks : (int, Kernsim.Task.t) Hashtbl.t;
  mutable rr : int;
  mutable agent_free_at : int; (* global agent serialization point *)
  assigned : (int, int) Hashtbl.t; (* per-CPU FIFO: sticky pid -> cpu *)
}

let is_global t = t.policy <> Fifo_per_cpu

let queue_for t cpu = if is_global t then t.queues.(0) else t.queues.(cpu)

let agent t = agent_cpu t.policy ~nr_cpus:t.ops.nr_cpus

(* cpus the policy schedules user tasks on (the global agent's core is
   dedicated to the agent) *)
let worker_cpus t =
  let excluded = agent t in
  List.filter (fun c -> Some c <> excluded) (List.init t.ops.nr_cpus Fun.id)

let agent_latency t =
  match t.policy with
  | Fifo_per_cpu -> t.ops.costs.ghost_agent_local
  | Sol | Gshinjuku -> t.ops.costs.ghost_agent_remote

(* every event is a message on the shared queue to the agent; a global
   agent additionally processes messages one at a time, so bursts queue *)
let msg_cost t ~cpu = t.ops.charge ~cpu t.ops.costs.ghost_msg

let select_task_rq t (task : Kernsim.Task.t) ~waker_cpu =
  msg_cost t ~cpu:waker_cpu;
  let candidates = List.filter (Kernsim.Task.allowed_cpu task) (worker_cpus t) in
  match candidates with
  | [] -> waker_cpu
  | cands -> (
    match t.policy with
    | Fifo_per_cpu -> (
      (* per-CPU model: tasks belong to one cpu's queue; wakeups return
         there no matter what is running (no work stealing, no preemption) *)
      match Hashtbl.find_opt t.assigned task.pid with
      | Some c when List.mem c cands -> c
      | Some _ | None ->
        t.rr <- t.rr + 1;
        let c = List.nth cands (t.rr mod List.length cands) in
        Hashtbl.replace t.assigned task.pid c;
        c)
    | Sol | Gshinjuku -> (
      (* prefer an idle worker core, else round-robin *)
      match List.find_opt (fun c -> t.ops.cpu_is_idle c) cands with
      | Some c -> c
      | None ->
        t.rr <- t.rr + 1;
        List.nth cands (t.rr mod List.length cands)))

let enqueue t (task : Kernsim.Task.t) ~cpu =
  Ds.Deque.push_back (queue_for t cpu) task.pid;
  Hashtbl.replace t.tasks task.pid task

let remove_pid t pid =
  Array.iter (fun q -> ignore (Ds.Deque.remove_first q ~f:(fun p -> p = pid))) t.queues

let task_new t (task : Kernsim.Task.t) ~cpu =
  enqueue t task ~cpu;
  (match t.policy with
  | Gshinjuku -> t.ops.set_timer ~cpu:(max 0 (min cpu (t.ops.nr_cpus - 1))) Shinjuku.default_slice
  | Fifo_per_cpu | Sol -> ())

(* start a decision round-trip through the agent for [cpu]; a global
   agent serves one request at a time, so concurrent cpus queue behind
   [agent_free_at] *)
let kick_agent t ~cpu =
  if (not t.pending.(cpu)) && not t.ready.(cpu) then begin
    t.pending.(cpu) <- true;
    let latency = agent_latency t in
    let delay =
      match t.policy with
      | Fifo_per_cpu ->
        (* the per-CPU agent is scheduled and runs on this very core *)
        t.ops.charge ~cpu t.ops.costs.ghost_agent_burn;
        latency
      | Sol | Gshinjuku ->
        (* the global agent burns its dedicated core, serially *)
        (match agent t with Some a -> t.ops.charge ~cpu:a latency | None -> ());
        let now = t.ops.now () in
        let start = max now t.agent_free_at in
        t.agent_free_at <- start + latency;
        t.agent_free_at - now
    in
    t.ops.defer ~delay (fun () ->
        t.pending.(cpu) <- false;
        t.ready.(cpu) <- true;
        t.ops.resched_cpu cpu)
  end

let task_wakeup t (task : Kernsim.Task.t) ~cpu ~waker_cpu =
  msg_cost t ~cpu:waker_cpu;
  enqueue t task ~cpu;
  (* a per-CPU agent picks the wakeup message off its own core's queue
     right away, overlapping the decision with the wakeup IPI *)
  if t.policy = Fifo_per_cpu && t.running.(cpu) = None then kick_agent t ~cpu

let task_blocked t (task : Kernsim.Task.t) ~cpu =
  msg_cost t ~cpu;
  if t.running.(cpu) = Some task.pid then t.running.(cpu) <- None;
  remove_pid t task.pid

let requeue t (task : Kernsim.Task.t) ~cpu =
  msg_cost t ~cpu;
  if t.running.(cpu) = Some task.pid then t.running.(cpu) <- None;
  remove_pid t task.pid;
  enqueue t task ~cpu

let task_dead t (task : Kernsim.Task.t) ~cpu =
  msg_cost t ~cpu;
  Array.iteri (fun c r -> if r = Some task.pid then t.running.(c) <- None) t.running;
  remove_pid t task.pid;
  Hashtbl.remove t.tasks task.pid

(* the asynchronous upcall: no decision ready means the core goes idle
   until the agent answers.  The Shinjuku agent instead keeps a committed
   transaction ready per cpu (it runs hot on its dedicated core), so its
   picks pay a commit cost rather than a blocking round trip. *)
(* -1 = no task (the int-encoded Sched_class convention) *)
let pick_next_task t ~cpu =
  if Some cpu = agent t then -1
  else if t.policy = Gshinjuku || t.ready.(cpu) then begin
    if t.policy = Gshinjuku then begin
      (* commit the agent's transaction: cost on this core, plus the agent
         core burns continuously while transactions flow *)
      t.ops.charge ~cpu (2 * t.ops.costs.ghost_msg);
      match agent t with
      | Some a -> t.ops.charge ~cpu:a t.ops.costs.ghost_agent_remote
      | None -> ()
    end;
    t.ready.(cpu) <- false;
    match Ds.Deque.remove_first (queue_for t cpu) ~f:(fun pid ->
              match Hashtbl.find_opt t.tasks pid with
              | Some task -> task.cpu = cpu && task.state = Kernsim.Task.Runnable
              | None -> false)
    with
    | Some pid ->
      t.running.(cpu) <- Some pid;
      (match t.policy with
      | Gshinjuku -> t.ops.set_timer ~cpu Shinjuku.default_slice
      | Fifo_per_cpu | Sol -> ());
      pid
    | None -> -1
  end
  else begin
    if Ds.Deque.length (queue_for t cpu) > 0 then kick_agent t ~cpu;
    -1
  end

(* pull the global queue head onto this run-queue (the agent's placement
   decision being applied by the kernel); -1 = nothing to pull *)
let balance t ~cpu =
  if Some cpu = agent t then -1
  else if t.policy <> Gshinjuku && not t.ready.(cpu) then -1
  else if is_global t then
    match Ds.Deque.peek_front t.queues.(0) with
    | Some pid -> (
      match Hashtbl.find_opt t.tasks pid with
      | Some task
        when task.cpu <> cpu && task.state = Kernsim.Task.Runnable
             && Kernsim.Task.allowed_cpu task cpu
             && t.running.(task.cpu) <> None ->
        pid
      | Some _ | None -> -1)
    | None -> -1
  else -1

let task_tick t ~cpu ~queued =
  ignore queued;
  match t.policy with
  | Gshinjuku ->
    if queued && Ds.Deque.length (queue_for t cpu) > 0 then t.ops.resched_cpu cpu
  | Fifo_per_cpu | Sol -> ()

let factory policy : Kernsim.Sched_class.factory =
 fun ops ->
  let nq = match policy with Fifo_per_cpu -> ops.nr_cpus | Sol | Gshinjuku -> 1 in
  let t =
    {
      ops;
      policy;
      queues = Array.init nq (fun _ -> Ds.Deque.create ());
      running = Array.make ops.nr_cpus None;
      ready = Array.make ops.nr_cpus false;
      pending = Array.make ops.nr_cpus false;
      tasks = Hashtbl.create 64;
      rr = 0;
      agent_free_at = 0;
      assigned = Hashtbl.create 64;
    }
  in
  let name =
    match policy with
    | Fifo_per_cpu -> "ghost-fifo"
    | Sol -> "ghost-sol"
    | Gshinjuku -> "ghost-shinjuku"
  in
  {
    Kernsim.Sched_class.name;
    select_task_rq = (fun task ~waker_cpu -> select_task_rq t task ~waker_cpu);
    task_new = (fun task ~cpu -> task_new t task ~cpu);
    task_wakeup = (fun task ~cpu ~waker_cpu -> task_wakeup t task ~cpu ~waker_cpu);
    task_blocked = (fun task ~cpu -> task_blocked t task ~cpu);
    task_yield = (fun task ~cpu -> requeue t task ~cpu);
    task_preempt = (fun task ~cpu -> requeue t task ~cpu);
    task_dead = (fun task ~cpu -> task_dead t task ~cpu);
    task_departed = (fun task ~cpu -> task_dead t task ~cpu);
    task_tick = (fun ~cpu ~queued -> task_tick t ~cpu ~queued);
    pick_next_task = (fun ~cpu -> pick_next_task t ~cpu);
    balance = (fun ~cpu -> balance t ~cpu);
    balance_err = (fun _ ~cpu:_ -> ());
    migrate_task_rq = (fun _ ~from_cpu:_ ~to_cpu:_ -> ());
    task_prio_changed = (fun _ -> ());
    task_affinity_changed = (fun _ -> ());
    deliver_hint = (fun _ _ -> ());
  }
