(** The dual-queue O(1) priority DSQ policy: high/low shared FIFO queues
    with a starvation-promotion counter. *)

(** Consecutive high-queue dispatches (while the low queue waits) before
    one low-queue dispatch is forced. *)
val promote_after : int

(** Nice values strictly below this classify as high/interactive. *)
val high_nice_threshold : int

(** The dispatch decision, exposed for the property tests: while
    [low_queued], at most [promote_after] consecutive [`High] results. *)
val pick_source : streak:int -> low_queued:bool -> [ `High | `Low ]

include Enoki.Sched_trait.S
