(** The central scheduler registry.

    One [(name, kind)] list feeds every consumer — [bin/enoki_sim]'s
    [--sched] vocabulary (including its help and bad-name error text) and
    the bench harness's sanity/chaos/perf matrices — so a scheduler
    registers exactly once. *)

type kind =
  | Builtin_cfs  (** the native CFS class *)
  | Enoki of (module Enoki.Sched_trait.S)
  | Ghost of Ghost_sim.policy

type entry = {
  name : string;  (** the CLI/bench spelling ("wfq", "scx-prio-dq", ...) *)
  kind : kind;
  arbiter : bool;
      (** the scheduler is a core arbiter: its tasks are activations that
          are dispatched only once the paired runtime requests cores, so
          bench matrices drive it with the memcached/Arachne runtime and
          relax the work-conservation and starvation checks it renounces
          by design *)
}

(** In presentation order (CFS first, then Enoki modules, then ghOSt). *)
val all : entry list

val names : string list

val find : string -> entry option

val enoki_module : entry -> (module Enoki.Sched_trait.S) option

(** Names of the Enoki-module entries (the record/replay/upgrade-capable
    set), for error messages. *)
val enoki_names : string list

(** The DSQ-based family ({!Dsq_sched} policies). *)
val dsq_names : string list
