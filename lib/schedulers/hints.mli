(** Hint message shapes used by the paper's hint-driven schedulers (§3.3).

    Each scheduler defines its own hint data structures; these are the two
    sets the paper describes: locality hints (task id + locality value) for
    the locality-aware scheduler, and core requests / reclamation for the
    Arachne two-level scheduler.  Codecs are registered so record/replay
    can serialise them. *)

type Kernsim.Task.hint +=
  | Locality of { pid : int; group : int }
      (** user -> kernel: co-locate [pid] with other tasks of [group] *)
  | Core_request of { pid : int; cores : int }
      (** user -> kernel: the runtime [pid] wants [cores] cores *)
  | Core_grant of { slot : int; cpu : int }
      (** kernel -> user: activation slot [slot] was granted [cpu] *)
  | Core_reclaim of { slot : int }
      (** kernel -> user: give back the core held by activation [slot] *)
  | Deadline of { pid : int; relative : Kernsim.Time.ns }
      (** user -> kernel: [pid]'s work should complete within [relative]
          of each wakeup (the EDF extension scheduler) *)

(** Idempotently register the record/replay codecs for the above.  Safe to
    call from any domain (the codec table is process-global, so the
    one-shot registration is mutex-guarded); machines built concurrently
    in pool domains all go through this via [Workloads.Setup.build]. *)
val register_codecs : unit -> unit
