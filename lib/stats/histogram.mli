(** Streaming latency histograms with quantile queries.

    Log-linear bucketing in the style of HdrHistogram: values (nanoseconds,
    in this codebase) are recorded into buckets whose width grows
    geometrically, giving bounded relative error (~4% with the default
    sub-bucket resolution) while using O(log range) memory.  All the p50/p99
    numbers in the benchmark tables come out of this module. *)

type t

(** [create ()] covers values from 1 ns up to ~584 years. *)
val create : unit -> t

val record : t -> int -> unit

(** [record_n t v n] records [v] [n] times. *)
val record_n : t -> int -> int -> unit

val count : t -> int

val min : t -> int

val max : t -> int

val mean : t -> float

(** [percentile t p] for [p] in [0, 100]; 0 when empty.  Returns an upper
    bound of the bucket containing the requested rank. *)
val percentile : t -> float -> int

(** Non-empty buckets as [(inclusive upper bound, count)] pairs in
    ascending value order.  [count t] equals the sum of the counts. *)
val to_buckets : t -> (int * int) list

val clear : t -> unit

(** Merge [src] into [dst]. *)
val merge : dst:t -> src:t -> unit
