(* Log-linear buckets: 64 "orders" (one per bit position of the value), each
   split into [sub] linear sub-buckets.  Bucket index therefore encodes a
   floating-point-like (exponent, mantissa-prefix) pair. *)

let sub_bits = 5

let sub = 1 lsl sub_bits

type t = {
  counts : int array; (* 64 * sub *)
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable sum : int; (* int, not float: a float field would box on every record *)
}

let n_buckets = 64 * sub

let create () =
  { counts = Array.make n_buckets 0; total = 0; min_v = max_int; max_v = 0; sum = 0 }

let bucket_of_value v =
  let v = if v < 1 then 1 else v in
  let order =
    (* position of the highest set bit, in six constant steps — this runs
       per metric record on the event hot path, where the obvious
       shift-until-one loop costs ~10 data-dependent iterations for
       ns-scale values *)
    let o = if v lsr 32 <> 0 then 32 else 0 in
    let x = v lsr o in
    let o = if x lsr 16 <> 0 then o + 16 else o in
    let x = v lsr o in
    let o = if x lsr 8 <> 0 then o + 8 else o in
    let x = v lsr o in
    let o = if x lsr 4 <> 0 then o + 4 else o in
    let x = v lsr o in
    let o = if x lsr 2 <> 0 then o + 2 else o in
    let x = v lsr o in
    if x lsr 1 <> 0 then o + 1 else o
  in
  if order < sub_bits then v
  else
    let shift = order - sub_bits in
    let sub_idx = (v lsr shift) - sub in
    ((order - sub_bits + 1) * sub) + sub_idx

(* Largest value mapping into bucket [i]; used to answer percentile
   queries with an upper bound of the matched bucket. *)
let bucket_upper i =
  if i < sub then i
  else
    let order = (i / sub) + sub_bits - 1 in
    let sub_idx = i mod sub in
    let shift = order - sub_bits in
    (((sub + sub_idx) lsl shift) + (1 lsl shift)) - 1

let record_n t v n =
  if n > 0 then begin
    let v' = if v < 1 then 1 else v in
    let b = bucket_of_value v' in
    t.counts.(b) <- t.counts.(b) + n;
    t.total <- t.total + n;
    if v' < t.min_v then t.min_v <- v';
    if v' > t.max_v then t.max_v <- v';
    t.sum <- t.sum + (v' * n)
  end

let record t v = record_n t v 1

let count t = t.total

let min t = if t.total = 0 then 0 else t.min_v

let max t = t.max_v

let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0
  else begin
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let rank = Stdlib.max 1 rank in
    let rec go i seen =
      if i >= n_buckets then t.max_v
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then Stdlib.min (bucket_upper i) t.max_v else go (i + 1) seen
    in
    go 0 0
  end

(* Non-empty buckets as (inclusive upper bound, count), ascending.  The
   shard aggregation and the CSV exporter both consume this shape. *)
let to_buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_upper i, t.counts.(i)) :: !acc
  done;
  !acc

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  t.sum <- 0

let merge ~dst ~src =
  for i = 0 to n_buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total <- dst.total + src.total;
  if src.total > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v;
    dst.sum <- dst.sum + src.sum
  end
