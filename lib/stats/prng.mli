(** Deterministic pseudo-random number generation.

    Every source of randomness in the simulator and the workload generators
    flows from one of these explicitly-seeded streams, which is what makes
    whole simulation runs (and therefore record/replay) reproducible.

    The generator is xoshiro256** seeded through splitmix64, both from
    Blackman & Vigna; state fits in four [int64]s and splitting a fresh
    independent stream is cheap.

    Domain-safety contract: a [t] is plain mutable state with no global
    backing — safe across domains only with one owner at a time.  Code
    that fans out across domains must {!split} one stream per independent
    unit {e before} the fan-out, in a fixed order (the fleet splits
    traffic/lb/chaos streams at build time and draws from them only on the
    coordinating domain), so the draw sequence — and therefore the whole
    run — is identical for any [-j]. *)

type t

(** [create ~seed] builds a generator; equal seeds yield equal streams. *)
val create : seed:int -> t

(** A new generator whose stream is independent of [t]'s future output. *)
val split : t -> t

(** Uniform non-negative int in [0, 2^62). *)
val next : t -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** [int t bound] is uniform in [0, bound). Raises when [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** Fisher-Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
