(** The kernel-side scheduler-class interface.

    This is the simulator's rendering of Linux's [struct sched_class]: the
    hook set through which the core scheduling code ({!Machine}) drives a
    policy.  The native CFS implementation ({!Cfs}) implements it directly;
    the Enoki framework ({!Enoki_c} in [lib/core]) implements it once and
    translates every hook into a message for a loaded scheduler module,
    exactly as the paper's Enoki-C does.

    A class receives {!Task.t} values (the kernel lets its schedulers read
    [task_struct]); the Enoki layer deliberately never forwards them to
    scheduler modules, passing plain data instead. *)

type ns = Time.ns

(** Capabilities the kernel grants a scheduler class. *)
type kernel_ops = {
  now : unit -> ns;
  nr_cpus : int;
  topology : Topology.t;
  costs : Costs.t;
  defer : delay:ns -> (unit -> unit) -> unit;
      (** run work later in kernel context (workqueue analogue); the record
          subsystem uses it for its userspace writer task *)
  resched_cpu : int -> unit;
      (** ask [cpu] to re-run its scheduler as soon as possible (an IPI when
          called from another cpu's context) *)
  set_timer : cpu:int -> ns -> unit;
      (** arm (or re-arm) the one-shot per-cpu scheduler timer to fire after
          the given delay; fires the class's [task_tick] *)
  cancel_timer : cpu:int -> unit;
  charge : cpu:int -> ns -> unit;
      (** account scheduling overhead to [cpu]; it delays the next dispatch *)
  send_user : pid:int -> Task.hint -> unit;
      (** deliver a kernel-to-user message to [pid]'s inbox *)
  current : cpu:int -> Task.t option;  (** task currently on [cpu] *)
  cpu_is_idle : int -> bool;
  find_task : int -> Task.t option;
      (** look up a task by pid (the kernel's pid table); classes use it to
          re-validate replies from untrusted modules *)
  live_tasks : policy:int -> Task.t list;
      (** every non-dead task attached to [policy], in spawn order; the
          authoritative list a fallback class adopts on failover *)
}

type t = {
  name : string;
  select_task_rq : Task.t -> waker_cpu:int -> int;
      (** choose the run-queue for a new or waking task *)
  task_new : Task.t -> cpu:int -> unit;
  task_wakeup : Task.t -> cpu:int -> waker_cpu:int -> unit;
  task_blocked : Task.t -> cpu:int -> unit;
  task_yield : Task.t -> cpu:int -> unit;
  task_preempt : Task.t -> cpu:int -> unit;
      (** the task was descheduled while still runnable *)
  task_dead : Task.t -> cpu:int -> unit;
  task_departed : Task.t -> cpu:int -> unit;
      (** the task switched to a different scheduling policy *)
  task_tick : cpu:int -> queued:bool -> unit;
      (** periodic tick, or the class's one-shot timer ([queued] = a task is
          running on the cpu) *)
  pick_next_task : cpu:int -> int;
      (** pid of the next task to run on [cpu], or -1 for none; the pid
          must be runnable and on [cpu]'s run-queue.  Int-encoded (not an
          option) so the per-schedule hot path never boxes the reply *)
  balance : cpu:int -> int;
      (** called before every pick and on ticks: pid of a task the class
          wants migrated to [cpu], or -1 for none *)
  balance_err : Task.t -> cpu:int -> unit;
      (** the migration requested by [balance] could not be performed *)
  migrate_task_rq : Task.t -> from_cpu:int -> to_cpu:int -> unit;
      (** the kernel moved the task's run-queue assignment *)
  task_prio_changed : Task.t -> unit;
  task_affinity_changed : Task.t -> unit;
  deliver_hint : Task.t -> Task.hint -> unit;
      (** a user-to-kernel hint arrived from this task *)
}

(** A class is built against the kernel's capability table at machine
    construction time. *)
type factory = kernel_ops -> t

(** A class whose every hook is a no-op and whose picks are always [None];
    useful as a base to override and in tests. *)
val noop : string -> t
