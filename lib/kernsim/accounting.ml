(* Resolved handles for one group: callers on hot paths (the machine's
   per-segment accounting) resolve once and skip the string hash. [reset]
   clears cell contents in place, so cached handles stay live across
   metric-window resets. *)
type cells = { c_busy : int ref; c_wake : Stats.Histogram.t }

type t = {
  wakeup : Stats.Histogram.t;
  wakeup_by_group : (string, Stats.Histogram.t) Hashtbl.t;
  busy_cpu : int array;
  busy_group : (string, int ref) Hashtbl.t;
  (* one record per group, interned: repeated [cells] resolutions return
     the same block instead of allocating a fresh pair of handles *)
  cells_by_group : (string, cells) Hashtbl.t;
  mutable schedules : int;
  mutable migrations : int;
  mutable pick_violations : int;
  mutable context_switches : int;
}

let create ~nr_cpus =
  {
    wakeup = Stats.Histogram.create ();
    wakeup_by_group = Hashtbl.create 16;
    busy_cpu = Array.make nr_cpus 0;
    busy_group = Hashtbl.create 16;
    cells_by_group = Hashtbl.create 16;
    schedules = 0;
    migrations = 0;
    pick_violations = 0;
    context_switches = 0;
  }

(* Detached handles recording nowhere visible: the machine's group memo
   starts out pointing here so the hot path never matches an option. *)
let null_cells () = { c_busy = ref 0; c_wake = Stats.Histogram.create () }

let cells t ~group =
  match Hashtbl.find_opt t.cells_by_group group with
  | Some c -> c
  | None ->
    let c_busy =
      match Hashtbl.find_opt t.busy_group group with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add t.busy_group group r;
        r
    in
    let c_wake =
      match Hashtbl.find_opt t.wakeup_by_group group with
      | Some h -> h
      | None ->
        let h = Stats.Histogram.create () in
        Hashtbl.add t.wakeup_by_group group h;
        h
    in
    let c = { c_busy; c_wake } in
    Hashtbl.add t.cells_by_group group c;
    c

let record_wakeup_fast t c lat =
  Stats.Histogram.record t.wakeup lat;
  Stats.Histogram.record c.c_wake lat

let add_busy_fast t c ~cpu ns =
  t.busy_cpu.(cpu) <- t.busy_cpu.(cpu) + ns;
  let r = c.c_busy in
  r := !r + ns

let record_wakeup_latency t ~group lat = record_wakeup_fast t (cells t ~group) lat

let wakeup_latency t = t.wakeup

let wakeup_latency_of_group t group = Hashtbl.find_opt t.wakeup_by_group group

let add_busy t ~cpu ~group ns = add_busy_fast t (cells t ~group) ~cpu ns

let busy_of_cpu t cpu = t.busy_cpu.(cpu)

let busy_of_group t group =
  match Hashtbl.find_opt t.busy_group group with Some r -> !r | None -> 0

let total_busy t = Array.fold_left ( + ) 0 t.busy_cpu

let count_schedule t ~cpu:_ = t.schedules <- t.schedules + 1

let schedules t = t.schedules

let count_migration t = t.migrations <- t.migrations + 1

let migrations t = t.migrations

let count_pick_violation t = t.pick_violations <- t.pick_violations + 1

let pick_violations t = t.pick_violations

let count_context_switch t = t.context_switches <- t.context_switches + 1

let context_switches t = t.context_switches

let reset t =
  Stats.Histogram.clear t.wakeup;
  (* clear in place, not [Hashtbl.reset]: cached {!cells} stay attached *)
  Hashtbl.iter (fun _ h -> Stats.Histogram.clear h) t.wakeup_by_group;
  Array.fill t.busy_cpu 0 (Array.length t.busy_cpu) 0;
  Hashtbl.iter (fun _ r -> r := 0) t.busy_group;
  t.schedules <- 0;
  t.migrations <- 0;
  t.pick_violations <- 0;
  t.context_switches <- 0
