type ns = Time.ns

type kernel_ops = {
  now : unit -> ns;
  nr_cpus : int;
  topology : Topology.t;
  costs : Costs.t;
  defer : delay:ns -> (unit -> unit) -> unit;
  resched_cpu : int -> unit;
  set_timer : cpu:int -> ns -> unit;
  cancel_timer : cpu:int -> unit;
  charge : cpu:int -> ns -> unit;
  send_user : pid:int -> Task.hint -> unit;
  current : cpu:int -> Task.t option;
  cpu_is_idle : int -> bool;
  find_task : int -> Task.t option;
  live_tasks : policy:int -> Task.t list;
}

type t = {
  name : string;
  select_task_rq : Task.t -> waker_cpu:int -> int;
  task_new : Task.t -> cpu:int -> unit;
  task_wakeup : Task.t -> cpu:int -> waker_cpu:int -> unit;
  task_blocked : Task.t -> cpu:int -> unit;
  task_yield : Task.t -> cpu:int -> unit;
  task_preempt : Task.t -> cpu:int -> unit;
  task_dead : Task.t -> cpu:int -> unit;
  task_departed : Task.t -> cpu:int -> unit;
  task_tick : cpu:int -> queued:bool -> unit;
  pick_next_task : cpu:int -> int;
  balance : cpu:int -> int;
  balance_err : Task.t -> cpu:int -> unit;
  migrate_task_rq : Task.t -> from_cpu:int -> to_cpu:int -> unit;
  task_prio_changed : Task.t -> unit;
  task_affinity_changed : Task.t -> unit;
  deliver_hint : Task.t -> Task.hint -> unit;
}

type factory = kernel_ops -> t

let noop name =
  {
    name;
    select_task_rq = (fun _task ~waker_cpu -> waker_cpu);
    task_new = (fun _ ~cpu:_ -> ());
    task_wakeup = (fun _ ~cpu:_ ~waker_cpu:_ -> ());
    task_blocked = (fun _ ~cpu:_ -> ());
    task_yield = (fun _ ~cpu:_ -> ());
    task_preempt = (fun _ ~cpu:_ -> ());
    task_dead = (fun _ ~cpu:_ -> ());
    task_departed = (fun _ ~cpu:_ -> ());
    task_tick = (fun ~cpu:_ ~queued:_ -> ());
    pick_next_task = (fun ~cpu:_ -> -1);
    balance = (fun ~cpu:_ -> -1);
    balance_err = (fun _ ~cpu:_ -> ());
    migrate_task_rq = (fun _ ~from_cpu:_ ~to_cpu:_ -> ());
    task_prio_changed = (fun _ -> ());
    task_affinity_changed = (fun _ -> ());
    deliver_hint = (fun _ _ -> ());
  }
