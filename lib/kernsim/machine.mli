(** The simulated multicore machine and its core scheduling loop.

    [Machine] plays the role of Linux's core scheduling code ("sched core"
    in Figure 1 of the paper): it owns the authoritative task states and
    run-queue assignments, drives scheduler classes through the
    {!Sched_class} hook set (balance before every pick, wakeup and blocking
    notifications, periodic ticks), charges context-switch / IPI / framework
    overheads in simulated time, and executes task behaviours.

    Scheduler classes are given in priority order: the first class with a
    runnable task for a cpu wins the pick, which is how an Enoki scheduler
    coexists with (and cedes idle cycles to) CFS, as in §5.4's co-location
    experiment.  A task's [policy] field is an index into this list. *)

type t

type ns = Time.ns

(** [create ~topology ~classes ()] builds a machine.  [classes] are
    factories, instantiated with this machine's kernel capability table;
    list position = policy id = pick priority.  [tracer] attaches a
    schedtrace sink: the machine then emits a typed event for every
    wakeup, dispatch, context switch, preemption, block/yield/exit,
    migration, tick, and idle transition; with no tracer each emit site is
    a single [option] match.  [registry] attaches a metrics registry: the
    machine then keeps schedule/context-switch/migration counters, a
    wakeup-latency histogram, and runqueue-depth / busy-idle gauge probes
    in it — recording never charges simulated time, so an attached
    registry cannot change scheduling decisions.  [sim_backend] selects
    the event-queue backend (default: the timer wheel); both backends
    dispatch identical event streams (see [test_core_equiv]). *)
val create :
  ?costs:Costs.t ->
  ?registry:Metrics.Registry.t ->
  ?tracer:Trace.Tracer.t ->
  ?sim_backend:Sim.backend ->
  topology:Topology.t ->
  classes:Sched_class.factory list ->
  unit ->
  t

val topology : t -> Topology.t

(** Which event-queue backend this machine's simulator runs on. *)
val sim_backend : t -> Sim.backend

(** Simulator events dispatched so far — the denominator for the
    events/sec and bytes/event figures in [bench speed]. *)
val events_dispatched : t -> int

val costs : t -> Costs.t

val now : t -> ns

val metrics : t -> Accounting.t

(** Allocate a wait channel (counting semaphore) for task behaviours. *)
val new_chan : t -> int

(** Pending un-consumed signals on a channel. *)
val chan_count : t -> int -> int

(** Tasks currently blocked on a channel. *)
val chan_waiters : t -> int -> int

(** [signal t chan] performs a V on [chan] from outside any task — the
    external-ingress doorbell (a NIC interrupt delivering a request into
    the machine).  Wakes one waiter if any, otherwise leaves a credit for
    the next [Block]; the wakeup path is charged to cpu 0, the IRQ core.
    The cluster tier uses this to hand arriving flows to server tasks. *)
val signal : t -> int -> unit

(** Create a task; it becomes runnable immediately (the class's
    [select_task_rq] then [task_new] run first, as in §3.1's walkthrough). *)
val spawn : t -> Task.spec -> int

val find_task : t -> int -> Task.t option

(** All tasks ever spawned, in pid order. *)
val tasks : t -> Task.t list

val alive_tasks : t -> int

(** Renice a live task; forwards [task_prio_changed] to its class. *)
val set_nice : t -> pid:int -> nice:int -> unit

(** Change a live task's allowed cpus; forwards [task_affinity_changed]. *)
val set_affinity : t -> pid:int -> int list option -> unit

(** Move a task to another scheduler class: the old class gets
    [task_departed] (returning any Schedulable it held, in the Enoki case)
    and the new class adopts the task through [task_new]. *)
val set_policy : t -> pid:int -> policy:int -> unit

(** Schedule an arbitrary callback into the simulation (used by benches to
    trigger live upgrades or metric-window resets mid-run). *)
val at : t -> delay:ns -> (unit -> unit) -> unit

(** Advance the simulation. *)
val run_until : t -> ns -> unit

(** [run_for t d] advances by [d] from the current clock. *)
val run_for : t -> ns -> unit

(** Run until no events remain (all tasks exited or blocked forever). *)
val run_to_completion : t -> unit

(** The instantiated class for a policy id. *)
val class_of_policy : t -> int -> Sched_class.t

(** Per-cpu idle check (true when nothing is dispatched on the cpu). *)
val cpu_idle : t -> int -> bool
