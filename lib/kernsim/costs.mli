(** Calibrated cost constants for the simulated machine.

    These are the knobs that stand in for the real hardware the paper ran
    on (an 8-core i7-9700 and an 80-core Xeon box).  The defaults are tuned
    so the baseline shapes land where the paper's Table 3 puts them:
    ~3.0-3.6 us per sched-pipe wakeup under CFS, with Enoki adding
    100-150 ns per scheduler invocation (4 invocations per schedule
    operation) and ghOSt paying for userspace agent dispatch. *)

type t = {
  context_switch : Time.ns;  (** direct cost of switching the running task *)
  wakeup_path : Time.ns;  (** kernel wakeup bookkeeping, charged to the waker *)
  syscall : Time.ns;  (** per pipe read/write style syscall, in workload models *)
  ipi_latency : Time.ns;  (** cross-cpu reschedule interrupt delivery *)
  idle_exit : Time.ns;
      (** waking a core out of shallow idle (C1-style exit + cold caches) *)
  deep_idle_exit : Time.ns;
      (** waking a core that has idled past [deep_idle_after] (C6-style) *)
  deep_idle_after : Time.ns;  (** idle residency before the deep state is entered *)
  migration : Time.ns;  (** cache penalty charged when a task changes cpus *)
  tick_period : Time.ns;  (** periodic scheduler tick (1 kHz) *)
  timer_arm : Time.ns;  (** arming a one-shot hrtimer from scheduler context *)
  enoki_call : Time.ns;
      (** Enoki framework overhead per scheduler invocation; the paper
          measures 100-150 ns (§5.2) *)
  ghost_agent_local : Time.ns;
      (** per-CPU ghOSt agent: decision turnaround when the agent must be
          scheduled and run on the same core *)
  ghost_agent_burn : Time.ns;
      (** cpu time the per-CPU agent consumes on the core per decision *)
  ghost_agent_remote : Time.ns;
      (** global (SOL-style) agent: decision turnaround on a dedicated core *)
  ghost_msg : Time.ns;  (** enqueueing a message to the ghOSt agent *)
  record_msg : Time.ns;  (** record tap: encode + ring push per message *)
  upgrade_base : Time.ns;  (** live upgrade: fixed quiesce/swap cost *)
  upgrade_per_cpu : Time.ns;  (** live upgrade: per-cpu run-queue quiesce *)
  upgrade_per_task : Time.ns;  (** live upgrade: state transfer per task *)
  failover : Time.ns;
      (** per-cpu pause charged when Enoki-C quarantines a panicked module
          and fails over to the built-in fallback class *)
}

val default : t

(** Default costs with the record tap enabled (nonzero [record_msg]). *)
val with_record : t -> t
