type t = {
  cores : int;
  cores_per_llc : int;
  cores_per_node : int;
  (* The cpu-group lists are queried on every balance and wakeup placement:
     precompute one shared immutable list per group and index it, instead
     of allocating a fresh list per call. *)
  node_lists : int list array; (* cpu -> cpus of its node *)
  llc_lists : int list array; (* cpu -> cpus of its llc *)
  all : int list;
}

let group_lists size cores =
  let n_groups = (cores + size - 1) / size in
  let groups =
    Array.init n_groups (fun g ->
        let base = g * size in
        List.init (min size (cores - base)) (fun i -> base + i))
  in
  Array.init cores (fun cpu -> groups.(cpu / size))

let create ~cores ~cores_per_llc ~cores_per_node =
  if cores <= 0 || cores_per_llc <= 0 || cores_per_node <= 0 then
    invalid_arg "Topology.create";
  if cores mod cores_per_llc <> 0 || cores mod cores_per_node <> 0 then
    invalid_arg "Topology.create: cores must divide evenly";
  {
    cores;
    cores_per_llc;
    cores_per_node;
    node_lists = group_lists cores_per_node cores;
    llc_lists = group_lists cores_per_llc cores;
    all = List.init cores Fun.id;
  }

let one_socket = create ~cores:8 ~cores_per_llc:8 ~cores_per_node:8

let two_socket = create ~cores:80 ~cores_per_llc:40 ~cores_per_node:40

let nr_cpus t = t.cores

let node_of t cpu = cpu / t.cores_per_node

let llc_of t cpu = cpu / t.cores_per_llc

let node_cpus t cpu = t.node_lists.(cpu)

let llc_cpus t cpu = t.llc_lists.(cpu)

let same_node t a b = node_of t a = node_of t b

let same_llc t a b = llc_of t a = llc_of t b

let all_cpus t = t.all
