type ns = Time.ns

type hint = ..

type action =
  | Compute of ns
  | Block of int
  | Wake of int
  | Sleep of ns
  | Yield
  | Send_hint of hint
  | Spawn of spec
  | Exit

and ctx = {
  mutable now : ns;
  mutable self : int;
  mutable cpu : int;
  mutable inbox : hint list;
}

and behaviour = ctx -> action

and spec = {
  name : string;
  group : string;
  nice : int;
  policy : int;
  behaviour : behaviour;
  affinity : int list option;
}

type state = Runnable | Running | Blocked | Dead

type t = {
  pid : int;
  name : string;
  group : string;
  mutable nice : int;
  mutable policy : int;
  behaviour : behaviour;
  mutable state : state;
  mutable cpu : int;
  mutable affinity : int list option;
  mutable remaining : ns;
  mutable sum_exec : ns;
  mutable last_wake : ns;
  mutable wake_pending : bool;
  mutable migrations : int;
  mutable inbox : hint list;
  mutable pending_policy : int option;
  mutable spawned_at : ns;
  mutable exited_at : ns option;
}

let default_spec ~name behaviour =
  { name; group = name; nice = 0; policy = 0; behaviour; affinity = None }

let make (spec : spec) ~pid ~now =
  {
    pid;
    name = spec.name;
    group = spec.group;
    nice = spec.nice;
    policy = spec.policy;
    behaviour = spec.behaviour;
    state = Runnable;
    cpu = 0;
    affinity = spec.affinity;
    remaining = 0;
    sum_exec = 0;
    last_wake = now;
    wake_pending = false;
    migrations = 0;
    inbox = [];
    pending_policy = None;
    spawned_at = now;
    exited_at = None;
  }

let is_runnable t = match t.state with Runnable | Running -> true | Blocked | Dead -> false

let allowed_cpu t cpu =
  match t.affinity with None -> true | Some cpus -> List.mem cpu cpus

let pp_state fmt = function
  | Runnable -> Format.pp_print_string fmt "runnable"
  | Running -> Format.pp_print_string fmt "running"
  | Blocked -> Format.pp_print_string fmt "blocked"
  | Dead -> Format.pp_print_string fmt "dead"
