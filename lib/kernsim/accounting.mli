(** Accounting collected by the machine while a simulation runs.

    The benchmark harness reads latencies and cpu shares from here; workload
    models additionally keep their own request-level histograms. *)

type t

val create : nr_cpus:int -> t

(** Wakeup latency: time from a task's wakeup to its next dispatch
    (what schbench reports). *)

val record_wakeup_latency : t -> group:string -> Time.ns -> unit

(** Resolved per-group handles for hot paths: one string hash at
    resolution, none per record.  Handles stay attached across {!reset}
    (reset clears their contents in place). *)
type cells

val cells : t -> group:string -> cells

(** A detached handle attached to no accounting instance: what memo fields
    point at before their first hit, so hot paths never match an option.
    Records into it are lost by design. *)
val null_cells : unit -> cells

val record_wakeup_fast : t -> cells -> Time.ns -> unit

val add_busy_fast : t -> cells -> cpu:int -> Time.ns -> unit

val wakeup_latency : t -> Stats.Histogram.t

val wakeup_latency_of_group : t -> string -> Stats.Histogram.t option

(** Busy time per cpu and per accounting group. *)

val add_busy : t -> cpu:int -> group:string -> Time.ns -> unit

val busy_of_cpu : t -> int -> Time.ns

val busy_of_group : t -> string -> Time.ns

val total_busy : t -> Time.ns

(** Scheduling events. *)

val count_schedule : t -> cpu:int -> unit

val schedules : t -> int

val count_migration : t -> unit

val migrations : t -> int

val count_pick_violation : t -> unit

(** Picks rejected because the returned Schedulable failed validation. *)
val pick_violations : t -> int

val count_context_switch : t -> unit

val context_switches : t -> int

(** Reset latency histograms and counters but keep identities — used to
    discard warmup. *)
val reset : t -> unit
