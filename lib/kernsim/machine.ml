type ns = Time.ns

type core = {
  id : int;
  mutable curr : int option; (* pid currently dispatched *)
  mutable last_pid : int; (* previously dispatched pid, for switch cost *)
  mutable seg_seq : int; (* invalidates stale run-end events *)
  mutable seg_run_start : ns; (* when the current task's compute started *)
  mutable seg_busy_from : ns; (* busy-time accounting start (incl. overhead) *)
  mutable pending_charge : ns; (* overhead to pay before the next dispatch *)
  mutable resched_queued : bool;
  mutable timer_seq : int; (* invalidates stale custom timers *)
  mutable in_idle : bool; (* the core entered the idle loop *)
  mutable idle_since : ns;
}

type chan = { mutable count : int; waiters : int Ds.Deque.t }

(* Registry handles resolved once at construction so the hot paths pay one
   option match plus an array increment, never a by-name lookup. *)
type obs = {
  o_schedules : Metrics.Registry.counter;
  o_ctx_switches : Metrics.Registry.counter;
  o_migrations : Metrics.Registry.counter;
  o_wakeup_lat : Metrics.Registry.histogram;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  costs : Costs.t;
  metrics : Accounting.t;
  obs : obs option;
  tracer : Trace.Tracer.t option;
  cores : core array;
  mutable classes : Sched_class.t array;
  tasks : (int, Task.t) Hashtbl.t;
  mutable task_order : int list; (* pids, reverse spawn order *)
  mutable next_pid : int;
  mutable chans : chan array;
  mutable nr_chans : int;
  mutable ctx_cpu : int; (* cpu whose kernel context is executing *)
}

let topology t = t.topo

let costs t = t.costs

let now t = Sim.now t.sim

let metrics t = t.metrics

let find_task t pid = Hashtbl.find_opt t.tasks pid

let get_task t pid =
  match find_task t pid with
  | Some task -> task
  | None -> invalid_arg (Printf.sprintf "Machine: unknown pid %d" pid)

let class_of_policy t policy =
  if policy < 0 || policy >= Array.length t.classes then
    invalid_arg (Printf.sprintf "Machine: unknown policy %d" policy);
  t.classes.(policy)

let class_of_task t (task : Task.t) = class_of_policy t task.policy

let cpu_idle t cpu = t.cores.(cpu).curr = None

(* Registry recording: one option match when no registry is attached, and
   the record calls never touch simulated time (zero-perturbation). *)
let obs_incr t ~cpu f =
  match t.obs with None -> () | Some o -> Metrics.Registry.incr (f o) ~cpu ()

let obs_observe t ~cpu f v =
  match t.obs with None -> () | Some o -> Metrics.Registry.observe (f o) ~cpu v

(* One option match when tracing is off: the zero-cost-when-disabled sink. *)
let emit t ~cpu kind =
  match t.tracer with
  | None -> ()
  | Some tr -> Trace.Tracer.emit tr ~ts:(Sim.now t.sim) ~cpu kind

(* ---------- channels ---------- *)

let new_chan t =
  let ch = { count = 0; waiters = Ds.Deque.create () } in
  if t.nr_chans = Array.length t.chans then begin
    let bigger = Array.make (max 8 (2 * Array.length t.chans)) ch in
    Array.blit t.chans 0 bigger 0 t.nr_chans;
    t.chans <- bigger
  end;
  t.chans.(t.nr_chans) <- ch;
  t.nr_chans <- t.nr_chans + 1;
  t.nr_chans - 1

let chan t id =
  if id < 0 || id >= t.nr_chans then invalid_arg "Machine: bad channel id";
  t.chans.(id)

let chan_count t id = (chan t id).count

let chan_waiters t id = Ds.Deque.length (chan t id).waiters

(* ---------- charging & resched ---------- *)

(* Overhead charged to a core in its idle loop is hidden by the idleness;
   overhead charged while the core is doing something delays its next
   dispatch. *)
let charge t ~cpu ns =
  let core = t.cores.(cpu) in
  if ns > 0 && not core.in_idle then core.pending_charge <- core.pending_charge + ns

let rec resched_cpu t cpu =
  let core = t.cores.(cpu) in
  if not core.resched_queued then begin
    core.resched_queued <- true;
    let delay = if cpu = t.ctx_cpu then 0 else t.costs.ipi_latency in
    Sim.after t.sim ~delay (fun () -> do_schedule t cpu)
  end

(* ---------- accounting ---------- *)

(* Checkpoint the running task's consumed cpu time without ending its
   segment, so classes observing [sum_exec] (e.g. at tick) see fresh data. *)
and sync_curr t core =
  match core.curr with
  | None -> ()
  | Some pid ->
    let task = get_task t pid in
    let now_ = Sim.now t.sim in
    if now_ > core.seg_run_start then begin
      let consumed = min (now_ - core.seg_run_start) task.remaining in
      task.remaining <- task.remaining - consumed;
      task.sum_exec <- task.sum_exec + consumed;
      core.seg_run_start <- now_
    end;
    if now_ > core.seg_busy_from then begin
      Accounting.add_busy t.metrics ~cpu:core.id ~group:task.group (now_ - core.seg_busy_from);
      core.seg_busy_from <- now_
    end

(* ---------- wakeups ---------- *)

and wake_task t (task : Task.t) ~waker_cpu =
  match task.state with
  | Task.Blocked ->
    let now_ = Sim.now t.sim in
    task.state <- Task.Runnable;
    task.last_wake <- now_;
    task.wake_pending <- true;
    let cl = class_of_task t task in
    let cpu = cl.select_task_rq task ~waker_cpu in
    let cpu = if Task.allowed_cpu task cpu then cpu else first_allowed t task in
    task.cpu <- cpu;
    emit t ~cpu (Trace.Event.Wakeup { pid = task.pid; waker_cpu; affinity = task.affinity });
    cl.task_wakeup task ~cpu ~waker_cpu;
    charge t ~cpu:waker_cpu t.costs.wakeup_path;
    if cpu_idle t cpu then resched_cpu t cpu
  | Task.Runnable | Task.Running | Task.Dead -> ()

and first_allowed t (task : Task.t) =
  match task.affinity with
  | None -> 0
  | Some [] -> invalid_arg "Machine: empty affinity"
  | Some (c :: _) ->
    if c < 0 || c >= Topology.nr_cpus t.topo then invalid_arg "Machine: bad affinity" else c

and do_wake_chan t ch_id ~waker_cpu =
  let ch = chan t ch_id in
  match Ds.Deque.pop_front ch.waiters with
  | Some pid -> wake_task t (get_task t pid) ~waker_cpu
  | None -> ch.count <- ch.count + 1

(* ---------- behaviour execution ---------- *)

(* Run the task's behaviour through instantaneous actions until it yields a
   verdict on what the kernel should do with the task. *)
and next_actions t core (task : Task.t) =
  let now_ = Sim.now t.sim in
  let inbox = List.rev task.inbox in
  task.inbox <- [];
  let ctx = { Task.now = now_; self = task.pid; cpu = core.id; inbox } in
  match task.behaviour ctx with
  | Task.Compute d -> if d > 0 then `Run d else next_actions t core task
  | Task.Block ch_id ->
    let ch = chan t ch_id in
    if ch.count > 0 then begin
      ch.count <- ch.count - 1;
      next_actions t core task
    end
    else begin
      Ds.Deque.push_back ch.waiters task.pid;
      `Blocked
    end
  | Task.Wake ch_id ->
    do_wake_chan t ch_id ~waker_cpu:core.id;
    next_actions t core task
  | Task.Sleep d -> `Sleep d
  | Task.Yield -> `Yield
  | Task.Send_hint h ->
    (* hint queues are registered per scheduler; any task may write into
       them (the Arachne runtime runs under CFS but talks to the arbiter),
       so the hint is offered to every class *)
    Array.iter (fun (cl : Sched_class.t) -> cl.deliver_hint task h) t.classes;
    next_actions t core task
  | Task.Spawn spec ->
    ignore (spawn t spec);
    next_actions t core task
  | Task.Exit -> `Exit

(* ---------- task creation ---------- *)

and spawn t (spec : Task.spec) =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let task = Task.make spec ~pid ~now:(Sim.now t.sim) in
  Hashtbl.replace t.tasks pid task;
  t.task_order <- pid :: t.task_order;
  let cl = class_of_task t task in
  let waker_cpu = t.ctx_cpu in
  let cpu = cl.select_task_rq task ~waker_cpu in
  let cpu = if Task.allowed_cpu task cpu then cpu else first_allowed t task in
  task.cpu <- cpu;
  task.state <- Task.Runnable;
  task.last_wake <- Sim.now t.sim;
  task.wake_pending <- true;
  emit t ~cpu
    (Trace.Event.Wakeup { pid = task.pid; waker_cpu; affinity = task.affinity });
  cl.task_new task ~cpu;
  if cpu_idle t cpu then resched_cpu t cpu;
  pid

(* ---------- migration ---------- *)

and try_migrate t pid ~to_cpu (cl : Sched_class.t) =
  match find_task t pid with
  | None -> ()
  | Some task ->
    if
      task.state = Task.Runnable && task.cpu <> to_cpu && Task.allowed_cpu task to_cpu
      && (* the task must not be dispatched anywhere *)
      t.cores.(task.cpu).curr <> Some pid
    then begin
      let from_cpu = task.cpu in
      task.cpu <- to_cpu;
      Accounting.count_migration t.metrics;
      obs_incr t ~cpu:to_cpu (fun o -> o.o_migrations);
      charge t ~cpu:to_cpu t.costs.migration;
      emit t ~cpu:to_cpu (Trace.Event.Migrate { pid = task.pid; from_cpu; to_cpu });
      cl.migrate_task_rq task ~from_cpu ~to_cpu
    end
    else cl.balance_err task ~cpu:to_cpu

(* Move a runnable task between classes: the old class releases it via
   task_departed, the new one adopts it via select_task_rq + task_new. *)
and apply_policy_change t (task : Task.t) ~policy =
  (class_of_task t task).task_departed task ~cpu:task.cpu;
  task.policy <- policy;
  task.pending_policy <- None;
  let new_cl = class_of_policy t policy in
  let cpu = new_cl.select_task_rq task ~waker_cpu:t.ctx_cpu in
  let cpu = if Task.allowed_cpu task cpu then cpu else first_allowed t task in
  task.cpu <- cpu;
  new_cl.task_new task ~cpu;
  if cpu_idle t cpu then resched_cpu t cpu

(* ---------- the schedule operation ---------- *)

and do_schedule t cpu =
  let core = t.cores.(cpu) in
  core.resched_queued <- false;
  let prev_ctx = t.ctx_cpu in
  t.ctx_cpu <- cpu;
  let prev_pid = core.curr in
  (* deschedule the current task, if any *)
  (match core.curr with
  | Some pid ->
    sync_curr t core;
    core.seg_seq <- core.seg_seq + 1;
    let task = get_task t pid in
    core.curr <- None;
    if task.state = Task.Running then begin
      task.state <- Task.Runnable;
      emit t ~cpu (Trace.Event.Preempt { pid });
      (class_of_task t task).task_preempt task ~cpu;
      match task.pending_policy with
      | Some policy -> apply_policy_change t task ~policy
      | None -> ()
    end
  | None -> ());
  Accounting.count_schedule t.metrics ~cpu;
  obs_incr t ~cpu (fun o -> o.o_schedules);
  (* balance + pick, classes in priority order, until a task sticks *)
  let rec pick_loop () =
    let chosen = ref None in
    Array.iter
      (fun (cl : Sched_class.t) ->
        if !chosen = None then begin
          (match cl.balance ~cpu with
          | Some pid -> try_migrate t pid ~to_cpu:cpu cl
          | None -> ());
          match cl.pick_next_task ~cpu with
          | Some pid ->
            let task = get_task t pid in
            if task.state = Task.Runnable && task.cpu = cpu then chosen := Some task
            else begin
              (* a native class returning an unrunnable task is the kernel
                 crash the paper describes; surface it loudly *)
              Accounting.count_pick_violation t.metrics;
              invalid_arg
                (Printf.sprintf "Machine: class %s picked invalid pid %d (%s, cpu %d vs %d)"
                   cl.name pid
                   (Format.asprintf "%a" Task.pp_state task.state)
                   task.cpu cpu)
            end
          | None -> ()
        end)
      t.classes;
    match !chosen with
    | None ->
      if not core.in_idle then begin
        core.in_idle <- true;
        core.idle_since <- Sim.now t.sim;
        emit t ~cpu (Trace.Event.Sched_switch { prev = prev_pid; next = None });
        emit t ~cpu Trace.Event.Idle
      end
    | Some task -> dispatch_loop task
  and dispatch_loop (task : Task.t) =
    (* charge pending overhead + context switch before the task computes *)
    let now_ = Sim.now t.sim in
    let switch_cost = if core.last_pid <> task.pid then t.costs.context_switch else 0 in
    if switch_cost > 0 then begin
      Accounting.count_context_switch t.metrics;
      obs_incr t ~cpu (fun o -> o.o_ctx_switches)
    end;
    let wake_cost =
      if core.in_idle then
        if now_ - core.idle_since >= t.costs.deep_idle_after then t.costs.deep_idle_exit
        else t.costs.idle_exit
      else 0
    in
    core.in_idle <- false;
    let overhead = core.pending_charge + switch_cost + wake_cost in
    core.pending_charge <- 0;
    core.seg_busy_from <- now_;
    core.curr <- Some task.pid;
    core.last_pid <- task.pid;
    task.state <- Task.Running;
    emit t ~cpu (Trace.Event.Sched_switch { prev = prev_pid; next = Some task.pid });
    emit t ~cpu (Trace.Event.Dispatch { pid = task.pid });
    let run_start = now_ + overhead in
    if task.wake_pending then begin
      task.wake_pending <- false;
      Accounting.record_wakeup_latency t.metrics ~group:task.group (run_start - task.last_wake);
      obs_observe t ~cpu (fun o -> o.o_wakeup_lat) (run_start - task.last_wake)
    end;
    (* the behaviour advances only once the dispatch costs have elapsed;
       a task with no compute left runs its next actions at [run_start] *)
    start_segment task ~run_start
  and start_segment (task : Task.t) ~run_start =
    core.seg_run_start <- run_start;
    core.seg_seq <- core.seg_seq + 1;
    let seq = core.seg_seq in
    Sim.at t.sim ~time:(run_start + task.remaining) (fun () ->
        if core.seg_seq = seq && core.curr = Some task.pid then segment_end t cpu task)
  in
  pick_loop ();
  t.ctx_cpu <- prev_ctx

(* What to do when a task's behaviour stopped computing. *)
and apply_verdict t core (task : Task.t) verdict =
  let cpu = core.id in
  let cl = class_of_task t task in
  match verdict with
  | `Run _ -> assert false
  | `Blocked ->
    task.state <- Task.Blocked;
    emit t ~cpu (Trace.Event.Block { pid = task.pid });
    cl.task_blocked task ~cpu
  | `Sleep d ->
    task.state <- Task.Blocked;
    emit t ~cpu (Trace.Event.Block { pid = task.pid });
    cl.task_blocked task ~cpu;
    let pid = task.pid in
    Sim.after t.sim ~delay:d (fun () ->
        match find_task t pid with
        | Some task when task.state = Task.Blocked ->
          (* timer fires on the cpu the task last ran on *)
          let prev = t.ctx_cpu in
          t.ctx_cpu <- task.cpu;
          wake_task t task ~waker_cpu:task.cpu;
          t.ctx_cpu <- prev
        | Some _ | None -> ())
  | `Yield ->
    task.state <- Task.Runnable;
    emit t ~cpu (Trace.Event.Yield { pid = task.pid });
    cl.task_yield task ~cpu
  | `Exit ->
    task.state <- Task.Dead;
    task.exited_at <- Some (Sim.now t.sim);
    emit t ~cpu (Trace.Event.Exit { pid = task.pid });
    cl.task_dead task ~cpu

(* The running task finished its compute quantum: advance its behaviour. *)
and segment_end t cpu (task : Task.t) =
  let core = t.cores.(cpu) in
  let prev_ctx = t.ctx_cpu in
  t.ctx_cpu <- cpu;
  sync_curr t core;
  (match next_actions t core task with
  | `Run d ->
    task.remaining <- d;
    (* continue on-cpu without a context switch *)
    core.seg_run_start <- Sim.now t.sim;
    core.seg_seq <- core.seg_seq + 1;
    let seq = core.seg_seq in
    Sim.at t.sim ~time:(Sim.now t.sim + d) (fun () ->
        if core.seg_seq = seq && core.curr = Some task.pid then segment_end t cpu task)
  | verdict ->
    core.seg_seq <- core.seg_seq + 1;
    core.curr <- None;
    apply_verdict t core task verdict;
    do_schedule t cpu);
  t.ctx_cpu <- prev_ctx

(* ---------- ticks & timers ---------- *)

let tick t =
  let nr = Topology.nr_cpus t.topo in
  (* refresh accounting so classes see up-to-date runtimes *)
  for cpu = 0 to nr - 1 do
    sync_curr t t.cores.(cpu);
    emit t ~cpu Trace.Event.Tick
  done;
  Array.iter
    (fun (cl : Sched_class.t) ->
      for cpu = 0 to nr - 1 do
        let prev = t.ctx_cpu in
        t.ctx_cpu <- cpu;
        cl.task_tick ~cpu ~queued:(t.cores.(cpu).curr <> None);
        t.ctx_cpu <- prev
      done)
    t.classes;
  (* newidle-style pull for cpus sitting idle between wakeups *)
  for cpu = 0 to nr - 1 do
    if cpu_idle t cpu && not t.cores.(cpu).resched_queued then begin
      let prev = t.ctx_cpu in
      t.ctx_cpu <- cpu;
      do_schedule t cpu;
      t.ctx_cpu <- prev
    end
  done

let rec arm_tick t =
  Sim.after t.sim ~delay:t.costs.tick_period (fun () ->
      tick t;
      arm_tick t)

(* ---------- construction ---------- *)

let create ?(costs = Costs.default) ?registry ?tracer ~topology ~classes () =
  let nr = Topology.nr_cpus topology in
  let obs =
    Option.map
      (fun reg ->
        {
          o_schedules =
            Metrics.Registry.counter reg ~help:"schedule operations" "sched_schedules_total";
          o_ctx_switches =
            Metrics.Registry.counter reg ~help:"context switches charged"
              "sched_context_switches_total";
          o_migrations =
            Metrics.Registry.counter reg ~help:"task migrations" "sched_migrations_total";
          o_wakeup_lat =
            Metrics.Registry.histogram reg ~help:"wakeup-to-dispatch latency (ns)"
              "sched_wakeup_latency_ns";
        })
      registry
  in
  let cores =
    Array.init nr (fun id ->
        {
          id;
          curr = None;
          last_pid = -1;
          seg_seq = 0;
          seg_run_start = 0;
          seg_busy_from = 0;
          pending_charge = 0;
          resched_queued = false;
          timer_seq = 0;
          in_idle = true;
          idle_since = 0;
        })
  in
  let t =
    {
      sim = Sim.create ();
      topo = topology;
      costs;
      metrics = Accounting.create ~nr_cpus:nr;
      obs;
      tracer;
      cores;
      classes = [||];
      tasks = Hashtbl.create 64;
      task_order = [];
      next_pid = 1;
      chans = [||];
      nr_chans = 0;
      ctx_cpu = 0;
    }
  in
  let make_ops (slot : Sched_class.t option ref) : Sched_class.kernel_ops =
    {
      now = (fun () -> Sim.now t.sim);
      nr_cpus = nr;
      topology;
      costs;
      defer = (fun ~delay f -> Sim.after t.sim ~delay f);
      resched_cpu = (fun cpu -> resched_cpu t cpu);
      set_timer =
        (fun ~cpu delay ->
          let core = t.cores.(cpu) in
          charge t ~cpu costs.timer_arm;
          core.timer_seq <- core.timer_seq + 1;
          let seq = core.timer_seq in
          Sim.after t.sim ~delay (fun () ->
              if t.cores.(cpu).timer_seq = seq then
                match !slot with
                | Some cl ->
                  let prev = t.ctx_cpu in
                  t.ctx_cpu <- cpu;
                  sync_curr t t.cores.(cpu);
                  cl.task_tick ~cpu ~queued:(t.cores.(cpu).curr <> None);
                  t.ctx_cpu <- prev
                | None -> ()))
      ;
      cancel_timer = (fun ~cpu -> t.cores.(cpu).timer_seq <- t.cores.(cpu).timer_seq + 1);
      charge = (fun ~cpu ns -> charge t ~cpu ns);
      send_user =
        (fun ~pid hint ->
          match find_task t pid with
          | Some task -> task.inbox <- hint :: task.inbox
          | None -> ());
      current =
        (fun ~cpu -> match t.cores.(cpu).curr with Some pid -> find_task t pid | None -> None);
      cpu_is_idle = (fun cpu -> cpu_idle t cpu);
      find_task = (fun pid -> find_task t pid);
      live_tasks =
        (fun ~policy ->
          (* spawn order keeps failover adoption deterministic *)
          List.rev
            (List.filter_map
               (fun pid ->
                 match find_task t pid with
                 | Some (task : Task.t) when task.policy = policy && task.state <> Task.Dead ->
                   Some task
                 | Some _ | None -> None)
               t.task_order));
    }
  in
  let instantiated =
    List.map
      (fun factory ->
        let slot = ref None in
        let cl = factory (make_ops slot) in
        slot := Some cl;
        cl)
      classes
  in
  t.classes <- Array.of_list instantiated;
  (* Probes read machine state at sample/export time; they never run on a
     scheduling path, so they may fold over the task table freely. *)
  (match registry with
  | Some reg ->
    Metrics.Registry.gauge_probe reg ~help:"runnable tasks (queued or running)"
      "machine_runq_depth" (fun () ->
        float_of_int
          (Hashtbl.fold
             (fun _ (task : Task.t) acc -> if task.state = Task.Runnable then acc + 1 else acc)
             t.tasks 0));
    Metrics.Registry.gauge_probe reg ~help:"tasks not yet exited" "machine_tasks_alive"
      (fun () ->
        float_of_int
          (Hashtbl.fold
             (fun _ (task : Task.t) acc -> if task.state = Task.Dead then acc else acc + 1)
             t.tasks 0));
    Metrics.Registry.gauge_probe reg ~help:"cumulative busy ns across cpus"
      "machine_busy_ns_total" (fun () -> float_of_int (Accounting.total_busy t.metrics));
    Metrics.Registry.gauge_probe reg ~help:"cumulative idle ns across cpus"
      "machine_idle_ns_total" (fun () ->
        float_of_int ((nr * Sim.now t.sim) - Accounting.total_busy t.metrics))
  | None -> ());
  arm_tick t;
  t

(* ---------- public control ---------- *)

let tasks t = List.rev_map (get_task t) t.task_order

let alive_tasks t =
  Hashtbl.fold (fun _ (task : Task.t) acc -> if task.state = Task.Dead then acc else acc + 1) t.tasks 0

let set_nice t ~pid ~nice =
  let task = get_task t pid in
  task.nice <- nice;
  (class_of_task t task).task_prio_changed task

let rec enforce_affinity t pid =
  match find_task t pid with
  | None -> ()
  | Some task ->
    if not (Task.allowed_cpu task task.cpu) then begin
      match task.state with
      | Task.Runnable ->
        (* sitting on a forbidden rq: move it now *)
        let cl = class_of_task t task in
        let to_cpu = first_allowed t task in
        let from_cpu = task.cpu in
        task.cpu <- to_cpu;
        Accounting.count_migration t.metrics;
        obs_incr t ~cpu:to_cpu (fun o -> o.o_migrations);
        emit t ~cpu:to_cpu (Trace.Event.Migrate { pid = task.pid; from_cpu; to_cpu });
        cl.migrate_task_rq task ~from_cpu ~to_cpu;
        if cpu_idle t to_cpu then resched_cpu t to_cpu
      | Task.Running ->
        (* kick it off the forbidden cpu, then finish the move *)
        resched_cpu t task.cpu;
        Sim.after t.sim ~delay:(t.costs.ipi_latency + 1) (fun () -> enforce_affinity t pid)
      | Task.Blocked | Task.Dead -> ()
    end

let set_affinity t ~pid affinity =
  let task = get_task t pid in
  task.affinity <- affinity;
  (class_of_task t task).task_affinity_changed task;
  enforce_affinity t pid

let set_policy t ~pid ~policy =
  let task = get_task t pid in
  ignore (class_of_policy t policy);
  if policy <> task.policy then
    match task.state with
    | Task.Running ->
      (* applied by do_schedule once the task is off its cpu *)
      task.pending_policy <- Some policy;
      resched_cpu t task.cpu
    | Task.Runnable ->
      apply_policy_change t task ~policy
    | Task.Blocked ->
      (* not queued anywhere: depart the old class now; the new class
         adopts the task at its next wakeup *)
      (class_of_task t task).task_departed task ~cpu:task.cpu;
      task.policy <- policy
    | Task.Dead -> ()

let at t ~delay f = Sim.after t.sim ~delay f

let run_until t until = Sim.run_until t.sim ~until

let run_for t d = Sim.run_until t.sim ~until:(Sim.now t.sim + d)

let run_to_completion t = Sim.run t.sim

let spawn = spawn

let new_chan = new_chan

let chan_count = chan_count

let chan_waiters = chan_waiters

let cpu_idle = cpu_idle

let class_of_policy = class_of_policy
